// Reproduce the paper's Appendix C step-by-step verification example:
// prefix 103.162.114.0/23 with AS-path {3257 1299 6939 133840 56239 141893},
// printing the same report lines (BadExport / MehImport / OkImport /
// UnrecExport with their items).

#include <iostream>

#include "rpslyzer/rpslyzer.hpp"

int main() {
  using namespace rpslyzer;

  // The policies Appendix C quotes (plus the open policies needed for the
  // Ok hops), reconstructed as a miniature IRR.
  const std::string irr_text = R"(
aut-num: AS141893
export: to AS58552 announce AS141893
export: to AS131755 announce AS141893
import: from AS58552 accept ANY

aut-num: AS56239
import: from AS55685 accept ANY
export: to AS133840 announce AS56239

aut-num: AS133840
import: from AS55685 accept ANY
export: to AS55685 announce AS133840

aut-num: AS6939
import: from AS-ANY accept ANY
export: to AS-ANY announce ANY

aut-num: AS1299
export: to AS3257 announce AS1299:AS-TWELVE99-CUSTOMER-V4 OR AS1299:AS-TWELVE99-PEER-V4
import: from AS6939 accept ANY

aut-num: AS3257
import: from AS12 accept ANY
export: to AS12 announce ANY

route: 103.123.0.0/16
origin: AS56239
)";

  // CAIDA-style relationships: the Tier-1 clique, the provider chains, and
  // notably NO relationship between AS141893 and AS56239 (Appendix C:
  // AS137296 is "the only AS in AS56239's customer cone").
  const std::string relationships =
      "# inferred clique: 1299 3257\n"
      "1299|3257|0\n"
      "56239|137296|-1\n"
      "55685|56239|-1\n"
      "55685|133840|-1\n"
      "133840|56239|-1\n"
      "6939|133840|-1\n"
      "1299|6939|-1\n";

  Rpslyzer lyzer = Rpslyzer::from_texts({{"DEMO", irr_text}}, relationships);
  verify::Verifier verifier = lyzer.verifier();

  bgp::Route route{*net::Prefix::parse("103.162.114.0/23"),
                   {3257, 1299, 6939, 133840, 56239, 141893}};
  std::cout << "Verification report for " << route.prefix.to_string() << " via {";
  for (std::size_t i = 0; i < route.path.size(); ++i) {
    std::cout << (i == 0 ? "" : " ") << route.path[i];
  }
  std::cout << "}:\n\n" << verifier.report(route);
  return 0;
}
