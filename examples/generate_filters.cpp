// Generate router filters from IRR data, the BGPq4 workflow the paper's
// introduction motivates: a provider resolves a customer's as-set to the
// prefixes it may announce and installs them as an import filter.
//
// Usage: generate_filters [dir] [object]   (synthetic corpus by default)

#include <iostream>

#include "rpslyzer/filtergen/filtergen.hpp"
#include "rpslyzer/rpslyzer.hpp"
#include "rpslyzer/synth/generator.hpp"

int main(int argc, char** argv) {
  using namespace rpslyzer;
  std::optional<Rpslyzer> lyzer;
  std::string object;
  if (argc > 1 && std::filesystem::is_directory(argv[1])) {
    lyzer = Rpslyzer::from_files(argv[1], std::filesystem::path(argv[1]) / "relationships.txt");
    if (argc > 2) object = argv[2];
  } else {
    synth::SynthConfig config;
    config.scale = 0.25;
    synth::InternetGenerator generator(config);
    std::vector<std::pair<std::string, std::string>> ordered;
    for (const auto& name : synth::irr_names()) {
      ordered.emplace_back(name, generator.irr_dumps().at(name));
    }
    lyzer = Rpslyzer::from_texts(ordered, generator.caida_serial1());
  }
  irr::Index index(lyzer->ir());

  if (object.empty()) {
    // Pick the largest defined as-set for the demo.
    std::size_t best = 0;
    for (const auto& [name, set] : lyzer->ir().as_sets) {
      const irr::FlattenedAsSet* flat = index.flattened(name);
      if (flat != nullptr && flat->asns.size() > best) {
        best = flat->asns.size();
        object = name;
      }
    }
  }
  if (object.empty()) {
    std::cerr << "no as-sets in the corpus\n";
    return 1;
  }

  filtergen::FilterOptions options;
  options.range_op = net::RangeOp::range(8, 24);
  options.aggregate = true;
  auto filter = filtergen::generate(index, object, options);
  if (!filter) {
    std::cerr << "unknown object: " << object << "\n";
    return 1;
  }
  std::cout << "# " << object << ": " << filter->member_ases << " member ASes, "
            << filter->route_objects << " route objects, " << filter->entries.size()
            << " filter entries";
  if (!filter->missing_sets.empty()) {
    std::cout << " (" << filter->missing_sets.size() << " member sets missing!)";
  }
  std::cout << "\n\n--- Cisco IOS ---\n"
            << filtergen::render_cisco_prefix_list(*filter, "AS-IMPORT")
            << "\n--- Juniper ---\n"
            << filtergen::render_juniper_route_filter(*filter, "as-import")
            << "\n--- BIRD ---\n"
            << filtergen::render_bird_prefix_set(*filter, "as_import");
  return 0;
}
