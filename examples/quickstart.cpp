// Quickstart: parse RPSL policies, inspect the IR, and verify a BGP route.
//
// This is the smallest end-to-end use of the public API:
//   1. feed RPSL text (normally IRR dump files) into Rpslyzer;
//   2. feed AS relationships (CAIDA serial-1 format);
//   3. ask a Verifier whether observed routes comply with the policies.

#include <iostream>

#include "rpslyzer/report/render.hpp"
#include "rpslyzer/rpslyzer.hpp"

int main() {
  using namespace rpslyzer;

  // A miniature IRR: AS64500 is a transit provider for AS64501, which
  // originates 192.0.2.0/24. AS64502 peers with AS64500.
  const std::string irr_text = R"(
aut-num: AS64500
as-name: DEMO-TRANSIT
import: from AS64501 accept AS64501
import: from AS64502 accept AS-DEMO-PEER
export: to AS64502 announce AS-DEMO-CONE
export: to AS64501 announce ANY

aut-num: AS64501
as-name: DEMO-EDGE
export: to AS64500 announce AS64501
import: from AS64500 accept ANY

as-set: AS-DEMO-CONE
members: AS64500, AS64501

as-set: AS-DEMO-PEER
members: AS64502

route: 192.0.2.0/24
origin: AS64501
)";

  // Business relationships: AS64500 is AS64501's provider and AS64502's peer.
  const std::string relationships =
      "64500|64501|-1\n"
      "64500|64502|0\n";

  Rpslyzer lyzer = Rpslyzer::from_texts({{"DEMO", irr_text}}, relationships);
  std::cout << "Parsed " << lyzer.ir().object_count() << " objects ("
            << lyzer.diagnostics().error_count() << " diagnostics)\n\n";

  // The intermediate representation is a first-class citizen: print one
  // rule back and export everything as JSON.
  const ir::AutNum& transit = lyzer.ir().aut_nums.at(64500);
  std::cout << "AS64500's first import rule, round-tripped from the IR:\n  "
            << ir::to_string(transit.imports.front()) << "\n\n";

  // Verify a route: 192.0.2.0/24 as seen by a collector peering with
  // AS64502, having traversed AS64500 from the origin AS64501.
  verify::Verifier verifier = lyzer.verifier();
  bgp::Route route{*net::Prefix::parse("192.0.2.0/24"), {64502, 64500, 64501}};
  std::cout << "Verification report for 192.0.2.0/24 via {64502 64500 64501}:\n"
            << verifier.report(route);

  // Summarize the statuses.
  report::StatusCounts totals;
  for (const auto& hop : verifier.verify_route(route)) {
    totals.add(hop.export_result.status);
    totals.add(hop.import_result.status);
  }
  std::cout << "\nSummary: " << report::render_composition(totals) << "\n";
  return 0;
}
