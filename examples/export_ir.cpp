// Export the intermediate representation to JSON (§3: "RPSLyzer ... can
// export it to JSON files for integration with other tools that leverage
// RPSL information").
//
// Usage:
//   export_ir [out.json]            — synthetic corpus -> JSON file
//   export_ir <irr-dir> [out.json]  — parse dumps from a directory

#include <fstream>
#include <iostream>

#include "rpslyzer/rpslyzer.hpp"
#include "rpslyzer/synth/generator.hpp"

int main(int argc, char** argv) {
  using namespace rpslyzer;

  std::string out_path = "ir.json";
  std::optional<Rpslyzer> lyzer;
  if (argc > 1 && std::filesystem::is_directory(argv[1])) {
    lyzer = Rpslyzer::from_files(argv[1],
                                 std::filesystem::path(argv[1]) / "relationships.txt");
    if (argc > 2) out_path = argv[2];
  } else {
    if (argc > 1) out_path = argv[1];
    synth::SynthConfig config;
    config.scale = 0.2;  // keep the demo file small
    synth::InternetGenerator generator(config);
    std::vector<std::pair<std::string, std::string>> ordered;
    for (const auto& name : synth::irr_names()) {
      ordered.emplace_back(name, generator.irr_dumps().at(name));
    }
    lyzer = Rpslyzer::from_texts(ordered, generator.caida_serial1());
  }

  json::Value exported = lyzer->export_ir();
  std::ofstream out(out_path, std::ios::binary);
  const std::string text = json::dump_pretty(exported);
  out << text;
  std::cout << "Exported " << lyzer->ir().object_count() << " objects ("
            << lyzer->ir().aut_nums.size() << " aut-nums, " << lyzer->ir().routes.size()
            << " routes) to " << out_path << " (" << text.size() << " bytes)\n";

  // Round-trip sanity: the exported JSON reconstructs the identical IR.
  ir::Ir round_tripped = ir::ir_from_json(json::parse(text));
  std::cout << "Round-trip check: "
            << (round_tripped == lyzer->ir() ? "identical" : "MISMATCH") << "\n";
  return round_tripped == lyzer->ir() ? 0 : 1;
}
