// IRRd-style query REPL: the query surface tools like bgpq4 use, answered
// from the RPSLyzer index. Run without arguments for a scripted demo on a
// synthetic corpus, or pass a data directory and type queries on stdin
// ("!gAS1000", "!iAS-1000-CONE,1", "!aAS-1000-CONE", ... ; EOF ends).

#include <iostream>

#include "rpslyzer/query/query.hpp"
#include "rpslyzer/rpslyzer.hpp"
#include "rpslyzer/synth/generator.hpp"

int main(int argc, char** argv) {
  using namespace rpslyzer;
  std::optional<Rpslyzer> lyzer;
  if (argc > 1) {
    lyzer = Rpslyzer::from_files(argv[1], std::filesystem::path(argv[1]) / "relationships.txt");
  } else {
    synth::SynthConfig config;
    config.scale = 0.25;
    synth::InternetGenerator generator(config);
    std::vector<std::pair<std::string, std::string>> ordered;
    for (const auto& name : synth::irr_names()) {
      ordered.emplace_back(name, generator.irr_dumps().at(name));
    }
    lyzer = Rpslyzer::from_texts(ordered, generator.caida_serial1());
  }
  irr::Index index(lyzer->ir());
  query::QueryEngine engine(index);

  if (argc <= 1) {
    // Scripted demo against the first transit AS that has routes.
    for (const auto& [asn, an] : lyzer->ir().aut_nums) {
      if (!index.has_routes(asn)) continue;
      const std::string as = "AS" + std::to_string(asn);
      for (const std::string q : {"!g" + as, "!6" + as, "!o" + as}) {
        std::cout << "> " << q << "\n" << engine.evaluate(q);
      }
      break;
    }
    for (const auto& [name, set] : lyzer->ir().as_sets) {
      if (set.members.empty()) continue;
      for (const std::string q : {"!i" + name, "!i" + name + ",1", "!a4" + name}) {
        std::cout << "> " << q << "\n" << engine.evaluate(q);
      }
      break;
    }
    return 0;
  }

  std::string line;
  while (std::getline(std::cin, line)) {
    if (line == "!q" || line == "q") break;  // IRRd quit command
    std::cout << engine.evaluate(line);
  }
  return 0;
}
