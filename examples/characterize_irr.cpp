// Characterize RPSL usage (the paper's §4 analyses) over an IRR corpus.
//
// Usage:
//   characterize_irr              — generate a synthetic Internet and analyze it
//   characterize_irr <dir>        — analyze <dir>/{apnic,...,altdb}.db dumps
//
// Prints the §4 censuses: per-IRR object counts (Table 1 shape), defined vs
// referenced objects (Table 2), the rules-per-aut-num CCDF (Figure 1), and
// the route-object / as-set / error censuses.

#include <cstdio>
#include <iostream>

#include "rpslyzer/rpslyzer.hpp"
#include "rpslyzer/stats/census.hpp"
#include "rpslyzer/synth/generator.hpp"

namespace {

using namespace rpslyzer;

Rpslyzer load(int argc, char** argv) {
  if (argc > 1) {
    std::cout << "Loading IRR dumps from " << argv[1] << " ...\n";
    return Rpslyzer::from_files(argv[1], std::filesystem::path(argv[1]) / "relationships.txt");
  }
  std::cout << "Generating a synthetic Internet (pass a directory to analyze real dumps)...\n";
  synth::InternetGenerator generator;
  std::vector<std::pair<std::string, std::string>> ordered;
  for (const auto& name : synth::irr_names()) {
    ordered.emplace_back(name, generator.irr_dumps().at(name));
  }
  return Rpslyzer::from_texts(ordered, generator.caida_serial1());
}

void print_percent(const char* label, std::size_t part, std::size_t whole) {
  std::printf("  %-52s %8zu (%5.1f%%)\n", label, part,
              whole == 0 ? 0.0 : 100.0 * double(part) / double(whole));
}

}  // namespace

int main(int argc, char** argv) {
  Rpslyzer lyzer = load(argc, argv);
  const ir::Ir& ir = lyzer.ir();
  irr::Index index(ir);

  std::cout << "\n=== Per-IRR census (Table 1 shape) ===\n";
  std::printf("  %-10s %10s %9s %9s %9s %9s\n", "IRR", "bytes", "aut-num", "route",
              "import", "export");
  for (const auto& counts : lyzer.irr_counts()) {
    std::printf("  %-10s %10zu %9zu %9zu %9zu %9zu\n", counts.name.c_str(), counts.bytes,
                counts.aut_nums, counts.routes, counts.imports, counts.exports);
  }

  std::cout << "\n=== Rules per aut-num (Figure 1) ===\n";
  auto rules = stats::RulesPerAutNum::compute(ir);
  print_percent("aut-nums with zero rules", rules.zero_rule_aut_nums, rules.aut_num_count);
  print_percent("aut-nums with >= 10 rules", rules.ten_plus_rule_aut_nums,
                rules.aut_num_count);
  print_percent("aut-nums with > 1000 rules", rules.thousand_plus_rule_aut_nums,
                rules.aut_num_count);
  std::cout << "  CCDF (rules >= x):\n";
  auto ccdf = stats::RulesPerAutNum::ccdf(rules.all);
  std::size_t printed = 0;
  for (const auto& [x, p] : ccdf) {
    if (printed++ % std::max<std::size_t>(1, ccdf.size() / 12) != 0) continue;
    std::printf("    x=%-6zu P=%.4f\n", x, p);
  }

  std::cout << "\n=== Defined vs referenced (Table 2) ===\n";
  auto refs = stats::ReferenceCensus::compute(ir);
  std::printf("  %-14s %9s %9s %9s %9s\n", "class", "defined", "overall", "peering",
              "filter");
  auto row = [](const char* name, const stats::ReferenceCensus::PerClass& c) {
    std::printf("  %-14s %9zu %9zu %9zu %9zu\n", name, c.defined, c.referenced_overall,
                c.referenced_in_peering, c.referenced_in_filter);
  };
  row("aut-num", refs.aut_nums);
  row("as-set", refs.as_sets);
  row("route-set", refs.route_sets);
  row("peering-set", refs.peering_sets);
  row("filter-set", refs.filter_sets);

  std::cout << "\n=== Rule shapes (§4 prose) ===\n";
  auto shapes = stats::ShapeCensus::compute(ir);
  print_percent("peerings that are a single ASN or ANY", shapes.peerings_single_asn_or_any,
                shapes.peerings_total);
  print_percent("filters that are an as-set", shapes.filters_as_set, shapes.filters_total);
  print_percent("filters that are an ASN", shapes.filters_asn, shapes.filters_total);
  print_percent("ASes with all rules BGPq4-compatible",
                shapes.ases_all_rules_bgpq4_compatible, shapes.ases_with_rules);

  std::cout << "\n=== Route objects (§4 prose) ===\n";
  auto routes = stats::RouteObjectStats::compute(ir);
  std::printf("  route objects (unique prefix-origin pairs)   %8zu\n", routes.route_objects);
  std::printf("  unique prefixes                              %8zu\n", routes.unique_prefixes);
  print_percent("prefixes with multiple route objects",
                routes.prefixes_with_multiple_objects, routes.unique_prefixes);
  print_percent("... with different origins", routes.prefixes_with_multiple_origins,
                routes.prefixes_with_multiple_objects);
  print_percent("prefixes with multiple maintainers",
                routes.prefixes_with_multiple_maintainers, routes.unique_prefixes);

  std::cout << "\n=== as-set opacity (§4 prose) ===\n";
  auto sets = stats::AsSetStats::compute(ir, index);
  print_percent("empty as-sets", sets.empty, sets.total);
  print_percent("single-member as-sets", sets.single_member, sets.total);
  print_percent("recursive as-sets", sets.recursive, sets.total);
  print_percent("... in loops", sets.in_loops, sets.recursive);
  print_percent("... with depth >= 5", sets.depth_5_plus, sets.recursive);
  std::printf("  as-sets containing the keyword ANY           %8zu\n", sets.with_any_keyword);

  std::cout << "\n=== RPSL errors (§4 prose) ===\n";
  auto errors = stats::ErrorCensus::compute(lyzer.diagnostics(), ir);
  std::printf("  syntax errors                                %8zu\n", errors.syntax_errors);
  std::printf("  invalid as-set names                         %8zu\n",
              errors.invalid_as_set_names);
  std::printf("  invalid route-set names                      %8zu\n",
              errors.invalid_route_set_names);

  std::cout << "\n=== Misuse patterns (Appendix E) ===\n";
  auto patterns = stats::MisusePatterns::compute(ir);
  std::printf("  ASes with 'import: from X accept X' rules    %8zu\n",
              patterns.import_customer.size());
  std::printf("  ASes with 'export: to P announce self' rules %8zu\n",
              patterns.export_self.size());
  return 0;
}
