// Lint an IRR corpus and classify ASes by RPSL usage — the paper's §7
// future-work tooling, built on the RPSLyzer IR.
//
// Usage: lint_irr [dir]   (synthetic corpus when no directory is given)

#include <cstdio>
#include <iostream>

#include "rpslyzer/lint/classify.hpp"
#include "rpslyzer/lint/linter.hpp"
#include "rpslyzer/rpslyzer.hpp"
#include "rpslyzer/synth/generator.hpp"

int main(int argc, char** argv) {
  using namespace rpslyzer;
  std::optional<Rpslyzer> lyzer;
  if (argc > 1) {
    lyzer = Rpslyzer::from_files(argv[1], std::filesystem::path(argv[1]) / "relationships.txt");
  } else {
    synth::SynthConfig config;
    config.scale = 0.25;
    synth::InternetGenerator generator(config);
    std::vector<std::pair<std::string, std::string>> ordered;
    for (const auto& name : synth::irr_names()) {
      ordered.emplace_back(name, generator.irr_dumps().at(name));
    }
    lyzer = Rpslyzer::from_texts(ordered, generator.caida_serial1());
  }

  irr::Index index(lyzer->ir());
  auto findings = lint::lint(lyzer->ir(), index);
  std::map<lint::LintCode, std::size_t> by_code;
  for (const auto& f : findings) ++by_code[f.code];
  std::printf("=== lint summary (%zu findings) ===\n", findings.size());
  for (const auto& [code, count] : by_code) {
    std::printf("  %-28s %6zu\n", lint::to_string(code), count);
  }
  std::printf("\nfirst findings:\n");
  std::size_t shown = 0;
  for (const auto& f : findings) {
    if (++shown > 12) break;
    std::printf("  %s\n", lint::render({f}).c_str());
  }

  auto classes = lint::histogram(lint::classify_all(lyzer->ir()));
  std::printf("=== AS usage classes ===\n");
  for (const auto& [cls, count] : classes) {
    std::printf("  %-12s %6zu\n", lint::to_string(cls), count);
  }
  return 0;
}
