// Verify BGP routes against RPSL policies (the paper's §5 experiment) and
// print the Figure 2/3/4 aggregations plus the Figure 5/6 breakdowns.
//
// Usage:
//   verify_routes              — synthetic Internet end to end
//   verify_routes <dir>        — <dir>/{apnic..altdb}.db + relationships.txt
//                                + collector-*.dump files

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "rpslyzer/report/aggregate.hpp"
#include "rpslyzer/report/render.hpp"
#include "rpslyzer/rpslyzer.hpp"
#include "rpslyzer/synth/generator.hpp"

namespace {

using namespace rpslyzer;

void print_percent(const char* label, std::size_t part, std::size_t whole) {
  std::printf("  %-52s %8zu (%5.1f%%)\n", label, part,
              whole == 0 ? 0.0 : 100.0 * double(part) / double(whole));
}

}  // namespace

int main(int argc, char** argv) {
  std::optional<synth::InternetGenerator> generator;
  std::optional<Rpslyzer> lyzer;
  std::vector<std::string> bgp_dumps;

  if (argc > 1) {
    const std::filesystem::path dir = argv[1];
    lyzer = Rpslyzer::from_files(dir, dir / "relationships.txt");
    for (std::size_t i = 0;; ++i) {
      std::ifstream in(dir / ("collector-" + std::to_string(i) + ".dump"), std::ios::binary);
      if (!in) break;
      std::ostringstream buffer;
      buffer << in.rdbuf();
      bgp_dumps.push_back(std::move(buffer).str());
    }
  } else {
    std::cout << "Generating a synthetic Internet (pass a directory for real data)...\n";
    generator.emplace();
    std::vector<std::pair<std::string, std::string>> ordered;
    for (const auto& name : synth::irr_names()) {
      ordered.emplace_back(name, generator->irr_dumps().at(name));
    }
    lyzer = Rpslyzer::from_texts(ordered, generator->caida_serial1());
    bgp_dumps = generator->bgp_dumps();
  }

  verify::Verifier verifier = lyzer->verifier();
  report::Aggregator agg;
  bgp::DumpStats dump_stats;
  const auto start = std::chrono::steady_clock::now();
  for (const auto& dump : bgp_dumps) {
    for (const auto& route : bgp::parse_table_dump(dump, &dump_stats)) {
      agg.add(route, verifier.verify_route(route));
    }
  }
  const auto elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - start);

  std::printf("\nVerified %zu routes (%zu checks) from %zu collectors in %.2fs\n",
              agg.total_routes(), agg.total_checks(), bgp_dumps.size(), elapsed.count());
  std::printf("Ignored: %zu single-AS, %zu with BGP AS-sets, %zu malformed\n",
              dump_stats.single_as, dump_stats.with_as_set, dump_stats.malformed);

  std::cout << "\n=== Per-AS statuses (Figure 2) ===\n";
  std::vector<report::StatusCounts> per_as;
  report::StatusCounts totals;
  for (const auto& [asn, counts] : agg.as_combined()) {
    per_as.push_back(counts);
    totals.merge(counts);
  }
  std::cout << report::render_stacked(per_as);
  auto fig2 = report::Fig2Summary::compute(agg);
  print_percent("ASes with one status for all their checks", fig2.all_same_status, fig2.ases);
  print_percent("... all verified", fig2.all_verified, fig2.ases);
  print_percent("... all unrecorded", fig2.all_unrecorded, fig2.ases);
  print_percent("... all relaxed", fig2.all_relaxed, fig2.ases);
  print_percent("... all safelisted", fig2.all_safelisted, fig2.ases);
  print_percent("ASes with any skipped check", fig2.any_skip, fig2.ases);
  std::cout << "  overall: " << report::render_composition(totals) << "\n";

  std::cout << "\n=== Per-AS-pair statuses (Figure 3) ===\n";
  auto fig3 = report::Fig3Summary::compute(agg);
  print_percent("import pairs with a single status", fig3.pairs_import_single_status,
                fig3.pairs_import);
  print_percent("export pairs with a single status", fig3.pairs_export_single_status,
                fig3.pairs_export);
  print_percent("pairs with unverified routes", fig3.pairs_with_unverified,
                fig3.pairs_import);
  print_percent("unverified checks from undeclared peerings",
                fig3.unverified_checks_peering_undeclared, fig3.unverified_checks_total);

  std::cout << "\n=== Per-route statuses (Figure 4) ===\n";
  auto fig4 = report::Fig4Summary::compute(agg);
  print_percent("routes with one status across all hops", fig4.single_status, fig4.routes);
  print_percent("... all verified", fig4.single_verified, fig4.routes);
  print_percent("... all unrecorded", fig4.single_unrecorded, fig4.routes);
  print_percent("... all unverified", fig4.single_unverified, fig4.routes);
  std::cout << "  first hops: " << report::render_composition(agg.first_hops()) << "\n";

  std::cout << "\n=== Unrecorded breakdown (Figure 5) ===\n";
  std::array<std::size_t, report::kUnrecordedCategoryCount> unrecorded_ases{};
  for (const auto& [asn, categories] : agg.unrecorded()) {
    for (std::size_t i = 0; i < categories.size(); ++i) {
      if (categories[i] > 0) ++unrecorded_ases[i];
    }
  }
  for (std::size_t i = 0; i < unrecorded_ases.size(); ++i) {
    print_percent(report::to_string(static_cast<report::UnrecordedCategory>(i)),
                  unrecorded_ases[i], fig2.ases);
  }

  std::cout << "\n=== Special-case breakdown (Figure 6) ===\n";
  std::array<std::size_t, report::kSpecialCategoryCount> special_ases{};
  for (const auto& [asn, categories] : agg.special_cases()) {
    for (std::size_t i = 0; i < categories.size(); ++i) {
      if (categories[i] > 0) ++special_ases[i];
    }
  }
  for (std::size_t i = 0; i < special_ases.size(); ++i) {
    print_percent(report::to_string(static_cast<report::SpecialCategory>(i)), special_ases[i],
                  fig2.ases);
  }
  print_percent("ASes with at least one special case", agg.special_cases().size(),
                fig2.ases);
  return 0;
}
