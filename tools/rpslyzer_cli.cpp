// rpslyzer — command-line front end to the library.
//
//   rpslyzer generate <dir> [scale] [seed]   synthesize a corpus to <dir>
//   rpslyzer parse <dir>                     parse dumps, print a census
//   rpslyzer lint <dir>                      lint the corpus
//   rpslyzer export <dir> <out.json>         export the IR as JSON
//   rpslyzer report <dir> <prefix> <asn...>  verify one route, print report
//   rpslyzer verify <dir>                    verify collector-*.dump files
//   rpslyzer query <dir> <!query...>         evaluate IRRd queries, print framed
//   rpslyzer compile <dir> --out <snap>      compile + write a snapshot file
//   rpslyzer journal synth|apply <dir> ...   generate / apply NRTM delta journals
//   rpslyzer serve <dir>|--synth [flags]     run the rpslyzerd query daemon
//
// <dir> holds <irr>.db dumps (Table 1 names) plus relationships.txt and,
// for `verify`, collector-<n>.dump files — exactly what `generate` writes.

#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>

#include "rpslyzer/delta/equiv.hpp"
#include "rpslyzer/delta/follower.hpp"
#include "rpslyzer/lint/classify.hpp"
#include "rpslyzer/lint/linter.hpp"
#include "rpslyzer/obs/log.hpp"
#include "rpslyzer/obs/trace.hpp"
#include "rpslyzer/persist/cache.hpp"
#include "rpslyzer/persist/snapshot_io.hpp"
#include "rpslyzer/query/query.hpp"
#include "rpslyzer/repl/edge.hpp"
#include "rpslyzer/repl/publisher.hpp"
#include "rpslyzer/report/aggregate.hpp"
#include "rpslyzer/report/render.hpp"
#include "rpslyzer/rpslyzer.hpp"
#include "rpslyzer/server/server.hpp"
#include "rpslyzer/stats/census.hpp"
#include "rpslyzer/synth/churn.hpp"
#include "rpslyzer/synth/generator.hpp"
#include "rpslyzer/verify/parallel.hpp"

namespace {

using namespace rpslyzer;

int usage() {
  std::fprintf(stderr,
               "usage: rpslyzer [--log-level L] [--log-json] <command> ...\n"
               "  generate <dir> [scale] [seed]   synthesize an IRR+BGP corpus\n"
               "  parse <dir>                     parse dumps and print a census\n"
               "  load <dir> [--threads N] [--shard-kb N] [--trace-out F]\n"
               "                                  load + index, print per-stage timings\n"
               "                                  (--threads 1 = serial; default: all cores)\n"
               "  lint <dir>                      lint the corpus\n"
               "  export <dir> <out.json>         export the IR as JSON\n"
               "  report <dir> <prefix> <asn...>  verify one route (Appendix-C style)\n"
               "  verify <dir> [--threads N] [--interpreted]\n"
               "                                  verify collector-*.dump files\n"
               "                                  (--threads 0 = all cores; --interpreted\n"
               "                                   skips the compiled policy snapshot)\n"
               "  query <dir> <!query...>         evaluate IRRd queries, print framed\n"
               "  compile <dir> --out <snap> [--threads N]\n"
               "                                  parse + compile, write a relocatable\n"
               "                                  snapshot file loadable via mmap\n"
               "  journal synth <dir> --out JDIR [--batches N] [--ops M] [--seed S]\n"
               "                [--start-serial S] [--protect ASN]\n"
               "                                  emit seeded NRTM churn batches against\n"
               "                                  the corpus (--protect: never touch that\n"
               "                                  origin's routes; repeatable)\n"
               "  journal apply <dir> --journal JDIR [--verify-full] [--threads N]\n"
               "                                  apply batches through the incremental\n"
               "                                  delta pipeline (--verify-full: after\n"
               "                                  every batch, compare byte-for-byte\n"
               "                                  against a from-scratch compile)\n"
               "  serve <dir>|--synth|--snapshot <snap> [flags]\n"
               "                                  run the rpslyzerd query daemon\n"
               "    serve flags: [--port N] [--threads N] [--cache N] [--max-conns N]\n"
               "                 [--idle-ms N] [--stats-ms N] [--deadline-ms N]\n"
               "                 [--max-out-kb N] [--stall-grace-ms N] [--retry-ms N]\n"
               "                 [--retry-max-ms N] [--scale F] [--seed N]\n"
               "                 [--metrics-file PATH] [--metrics-file-ms N]\n"
               "                 [--snapshot-cache DIR]\n"
               "                 [--journal JDIR [--journal-poll-ms N]]\n"
               "                                  follow an NRTM journal directory: each\n"
               "                                  batch publishes a new generation via\n"
               "                                  the incremental delta pipeline (needs a\n"
               "                                  corpus <dir>; default poll 1000 ms)\n"
               "                 [--slow-ms N]    copy queries slower than N ms into the\n"
               "                                  `!slow` log (0 = off)\n"
               "                 [--flight-cap N] flight-recorder ring capacity (0 = off;\n"
               "                                  default 4096; `!trace <id>` replays one\n"
               "                                  query's stage timings)\n"
               "                 (--threads also sets load/reload ingestion parallelism;\n"
               "                  --snapshot serves a compile --out file, --snapshot-cache\n"
               "                  keys mmap-cached generations by corpus content)\n"
               "    replication: [--publish [--chunk-kb N]]   announce + stream snapshot\n"
               "                                              generations to edges\n"
               "                 [--origin HOST:PORT --repl-dir DIR [--edge-id NAME]\n"
               "                  [--poll-ms N] [--heartbeat-ms N] [--origin-timeout-ms N]]\n"
               "                                              serve snapshots replicated\n"
               "                                              from an origin (no local\n"
               "                                              corpus; DIR keeps last-good)\n"
               "  log levels: debug info warn error off (also via RPSLYZER_LOG)\n");
  return 2;
}

Rpslyzer load(const std::filesystem::path& dir, const irr::LoadOptions& options = {}) {
  return Rpslyzer::from_files(dir, dir / "relationships.txt", options);
}

// from_files() treats a missing directory as an empty corpus, which is the
// wrong default for a daemon: `serve /typo` would happily answer `D` to every
// query. Require at least one dump file before loading.
bool corpus_dir_ok(const std::filesystem::path& dir) {
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".db") return true;
  }
  std::fprintf(stderr, "%s: %s\n", dir.c_str(),
               ec ? "cannot read directory" : "no .db dump files found");
  return false;
}

std::optional<std::string> read_text_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return std::nullopt;
  return std::move(buffer).str();
}

// Dump texts in Table 1 priority order — what the delta pipeline's
// CorpusStore and the churn generator both catalog. Missing files degrade
// like the batch loader (skipped).
std::vector<std::pair<std::string, std::string>> read_dumps(
    const std::filesystem::path& dir) {
  std::vector<std::pair<std::string, std::string>> dumps;
  for (const irr::IrrSource& source : irr::table1_sources(dir)) {
    if (auto text = read_text_file(source.path)) {
      dumps.emplace_back(source.name, std::move(*text));
    }
  }
  return dumps;
}

int cmd_generate(int argc, char** argv) {
  if (argc < 1) return usage();
  synth::SynthConfig config;
  if (argc >= 2) config.scale = std::atof(argv[1]);
  if (argc >= 3) config.seed = static_cast<std::uint32_t>(std::atoi(argv[2]));
  synth::InternetGenerator generator(config);
  const std::size_t files = generator.write_to(argv[0]);
  std::printf("wrote %zu files to %s (%zu ASes, %zu aut-nums planned, %zu collectors)\n",
              files, argv[0], generator.topology().size(),
              generator.topology().size() - generator.plan().missing_aut_num.size(),
              generator.collector_peers().size());
  return 0;
}

int cmd_parse(int argc, char** argv) {
  if (argc < 1) return usage();
  Rpslyzer lyzer = load(argv[0]);
  std::printf("%-10s %9s %9s %9s %9s\n", "IRR", "aut-num", "route", "import", "export");
  for (const auto& counts : lyzer.irr_counts()) {
    std::printf("%-10s %9zu %9zu %9zu %9zu\n", counts.name.c_str(), counts.aut_nums,
                counts.routes, counts.imports, counts.exports);
  }
  std::printf("\nmerged corpus: %zu objects (%zu aut-nums, %zu routes after dedup)\n",
              lyzer.ir().object_count(), lyzer.ir().aut_nums.size(),
              lyzer.ir().routes.size());
  stats::ErrorCensus errors = stats::ErrorCensus::compute(lyzer.diagnostics(), lyzer.ir());
  std::printf("diagnostics: %zu syntax errors, %zu invalid as-set names, %zu invalid "
              "route-set names\n",
              errors.syntax_errors, errors.invalid_as_set_names,
              errors.invalid_route_set_names);
  auto classes = lint::histogram(lint::classify_all(lyzer.ir()));
  std::printf("usage classes:");
  for (const auto& [cls, count] : classes) {
    std::printf("  %s=%zu", lint::to_string(cls), count);
  }
  std::printf("\n");
  return 0;
}

// `load` is the pipeline under a stopwatch: every stage the loader and
// indexer run is wrapped in an obs::Span, so this prints a per-stage
// wall/CPU table and (with --trace-out) writes the same spans as a
// chrome://tracing JSON file for flame-style inspection.
int cmd_load(int argc, char** argv) {
  if (argc < 1) return usage();
  std::string dir;
  std::string trace_out;
  irr::LoadOptions options;
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--trace-out") {
      if (i + 1 >= argc) return usage();
      trace_out = argv[++i];
    } else if (arg == "--threads") {
      if (i + 1 >= argc) return usage();
      options.threads = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (arg == "--shard-kb") {
      if (i + 1 >= argc) return usage();
      options.shard_target_bytes = static_cast<std::size_t>(std::atoll(argv[++i])) * 1024;
    } else if (!arg.empty() && arg.front() != '-' && dir.empty()) {
      dir = arg;
    } else {
      std::fprintf(stderr, "load: unknown flag %s\n", argv[i]);
      return usage();
    }
  }
  if (dir.empty()) return usage();
  if (!corpus_dir_ok(dir)) return 1;

  obs::Tracer::global().set_enabled(true);
  {
    Rpslyzer lyzer = load(dir, options);
    irr::Index index(lyzer.ir());
    index.prewarm();
    std::printf("loaded %zu objects (%zu aut-nums, %zu routes) from %s\n",
                lyzer.ir().object_count(), lyzer.ir().aut_nums.size(),
                lyzer.ir().routes.size(), dir.c_str());
  }
  obs::Tracer::global().set_enabled(false);

  std::fputs(obs::Tracer::global().summary_table().c_str(), stdout);
  if (!trace_out.empty()) {
    std::string error;
    if (!obs::Tracer::global().write_chrome_trace(trace_out, &error)) {
      std::fprintf(stderr, "load: %s\n", error.c_str());
      return 1;
    }
    std::printf("wrote %zu trace spans to %s (open in chrome://tracing)\n",
                obs::Tracer::global().records().size(), trace_out.c_str());
  }
  return 0;
}

int cmd_lint(int argc, char** argv) {
  if (argc < 1) return usage();
  Rpslyzer lyzer = load(argv[0]);
  irr::Index index(lyzer.ir());
  auto findings = lint::lint(lyzer.ir(), index);
  std::fputs(lint::render(findings).c_str(), stdout);
  std::printf("%zu findings\n", findings.size());
  return findings.empty() ? 0 : 1;
}

int cmd_export(int argc, char** argv) {
  if (argc < 2) return usage();
  Rpslyzer lyzer = load(argv[0]);
  std::ofstream out(argv[1], std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", argv[1]);
    return 1;
  }
  const std::string text = json::dump_pretty(lyzer.export_ir());
  out << text;
  std::printf("exported %zu objects to %s (%zu bytes)\n", lyzer.ir().object_count(),
              argv[1], text.size());
  return 0;
}

int cmd_report(int argc, char** argv) {
  if (argc < 2) return usage();
  Rpslyzer lyzer = load(argv[0]);
  auto prefix = net::Prefix::parse(argv[1]);
  if (!prefix) {
    std::fprintf(stderr, "bad prefix: %s\n", argv[1]);
    return 1;
  }
  bgp::Route route;
  route.prefix = *prefix;
  for (int i = 2; i < argc; ++i) {
    std::string_view token = argv[i];
    if (token.starts_with("AS") || token.starts_with("as")) token.remove_prefix(2);
    auto asn = util::parse_u32(token);
    if (!asn) {
      std::fprintf(stderr, "bad ASN: %s\n", argv[i]);
      return 1;
    }
    route.path.push_back(*asn);
  }
  route.path = bgp::strip_prepends(route.path);
  if (route.path.size() < 2) {
    std::fprintf(stderr, "need an AS path with at least two ASes\n");
    return 1;
  }
  std::fputs(lyzer.verifier().report(route).c_str(), stdout);
  return 0;
}

int cmd_verify(int argc, char** argv) {
  if (argc < 1) return usage();
  std::filesystem::path dir;
  unsigned threads = 1;
  verify::VerifyOptions verify_options;
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--threads") {
      if (i + 1 >= argc) return usage();
      threads = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (arg == "--interpreted") {
      verify_options.use_snapshot = false;
    } else if (!arg.empty() && arg.front() != '-' && dir.empty()) {
      dir = arg;
    } else {
      std::fprintf(stderr, "verify: unknown flag %s\n", argv[i]);
      return usage();
    }
  }
  if (dir.empty()) return usage();
  Rpslyzer lyzer = load(dir);
  report::Aggregator agg;
  bgp::DumpStats dump_stats;
  std::size_t dumps = 0;
  std::vector<bgp::Route> routes;
  for (std::size_t i = 0;; ++i) {
    std::ifstream in(dir / ("collector-" + std::to_string(i) + ".dump"), std::ios::binary);
    if (!in) break;
    ++dumps;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string text = std::move(buffer).str();
    for (auto& route : bgp::parse_table_dump(text, &dump_stats)) {
      routes.push_back(std::move(route));
    }
  }
  if (dumps == 0) {
    std::fprintf(stderr, "no collector-*.dump files under %s\n", dir.string().c_str());
    return 1;
  }
  const std::vector<std::vector<verify::HopCheck>> checks =
      verify::verify_routes_parallel(lyzer.index(), lyzer.relations(), routes,
                                     verify_options, threads);
  for (std::size_t i = 0; i < routes.size(); ++i) {
    agg.add(routes[i], checks[i]);
  }
  report::StatusCounts totals;
  for (const auto& [asn, counts] : agg.as_combined()) totals.merge(counts);
  std::printf("%zu routes, %zu checks from %zu dumps\n", agg.total_routes(),
              agg.total_checks(), dumps);
  std::printf("%s\n", report::render_composition(totals).c_str());
  std::vector<report::StatusCounts> per_as;
  for (const auto& [asn, counts] : agg.as_combined()) per_as.push_back(counts);
  std::fputs(report::render_stacked(per_as).c_str(), stdout);
  return 0;
}

int cmd_query(int argc, char** argv) {
  if (argc < 2) return usage();
  if (!corpus_dir_ok(argv[0])) return 1;
  Rpslyzer lyzer = load(argv[0]);
  query::QueryEngine engine(lyzer.index());
  for (int i = 1; i < argc; ++i) {
    const std::string response = engine.evaluate(argv[i]);
    std::fwrite(response.data(), 1, response.size(), stdout);
  }
  return 0;
}

// `compile` is the write half of snapshot persistence: parse + compile once,
// then serialize the compiled snapshot into a relocatable arena file that
// `serve --snapshot` (or the --snapshot-cache generation cache) loads back
// with a single mmap instead of repeating the whole pipeline.
int cmd_compile(int argc, char** argv) {
  std::filesystem::path dir;
  std::filesystem::path out;
  irr::LoadOptions options;
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--out") {
      if (i + 1 >= argc) return usage();
      out = argv[++i];
    } else if (arg == "--threads") {
      if (i + 1 >= argc) return usage();
      options.threads = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (!arg.empty() && arg.front() != '-' && dir.empty()) {
      dir = arg;
    } else {
      std::fprintf(stderr, "compile: unknown flag %s\n", argv[i]);
      return usage();
    }
  }
  if (dir.empty() || out.empty()) return usage();
  if (!corpus_dir_ok(dir)) return 1;
  try {
    Rpslyzer lyzer = load(dir, options);
    auto snapshot = lyzer.snapshot();
    const std::uint64_t bytes = persist::write_snapshot(*snapshot, out);
    std::printf("wrote %s (%llu bytes, build-id %llu, %zu interned symbols, "
                "%zu trie nodes)\n",
                out.c_str(), static_cast<unsigned long long>(bytes),
                static_cast<unsigned long long>(snapshot->build_id()),
                snapshot->interned_symbols(), snapshot->trie_nodes());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "compile: %s\n", e.what());
    return 1;
  }
  return 0;
}

int cmd_journal_synth(const std::filesystem::path& dir, int argc, char** argv) {
  std::string out_dir;
  std::size_t batches = 10;
  synth::ChurnConfig churn_config;
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto next_value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--out") {
      const char* v = next_value();
      if (!v) return usage();
      out_dir = v;
    } else if (arg == "--batches") {
      const char* v = next_value();
      if (!v) return usage();
      batches = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--ops") {
      const char* v = next_value();
      if (!v) return usage();
      churn_config.ops_per_batch = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--seed") {
      const char* v = next_value();
      if (!v) return usage();
      churn_config.seed = static_cast<std::uint32_t>(std::atoi(v));
    } else if (arg == "--start-serial") {
      const char* v = next_value();
      if (!v) return usage();
      churn_config.start_serial = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--protect") {
      const char* v = next_value();
      if (!v) return usage();
      churn_config.protect_origins.insert(
          static_cast<synth::Asn>(std::atoll(*v == 'A' || *v == 'a' ? v + 2 : v)));
    } else {
      std::fprintf(stderr, "journal synth: unknown flag %s\n", argv[i]);
      return usage();
    }
  }
  if (out_dir.empty() || batches == 0) return usage();
  if (!corpus_dir_ok(dir)) return 1;
  std::map<std::string, std::string> dumps;
  for (auto& [name, text] : read_dumps(dir)) dumps.emplace(name, std::move(text));
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  synth::ChurnGenerator churn(dumps, churn_config);
  for (std::size_t b = 0; b < batches; ++b) {
    const delta::JournalBatch batch = churn.next_batch();
    const std::filesystem::path path =
        std::filesystem::path(out_dir) / delta::journal_file_name(batch.first_serial);
    // Write via tmp + rename so a concurrent follower never sees a torn file.
    const std::filesystem::path tmp = path.string() + ".tmp";
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      out << delta::render_journal(batch);
      if (!out) {
        std::fprintf(stderr, "journal synth: cannot write %s\n", tmp.c_str());
        return 1;
      }
    }
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
      std::fprintf(stderr, "journal synth: rename %s: %s\n", tmp.c_str(),
                   ec.message().c_str());
      return 1;
    }
    std::printf("wrote %s (%zu ops, serials %llu..%llu)\n", path.c_str(), batch.ops.size(),
                static_cast<unsigned long long>(batch.first_serial),
                static_cast<unsigned long long>(batch.last_serial));
  }
  return 0;
}

int cmd_journal_apply(const std::filesystem::path& dir, int argc, char** argv) {
  std::string journal_dir;
  bool verify_full = false;
  irr::LoadOptions load_options;
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto next_value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--journal") {
      const char* v = next_value();
      if (!v) return usage();
      journal_dir = v;
    } else if (arg == "--verify-full") {
      verify_full = true;
    } else if (arg == "--threads") {
      const char* v = next_value();
      if (!v) return usage();
      load_options.threads = static_cast<unsigned>(std::atoi(v));
    } else {
      std::fprintf(stderr, "journal apply: unknown flag %s\n", argv[i]);
      return usage();
    }
  }
  if (journal_dir.empty()) return usage();
  if (!corpus_dir_ok(dir)) return 1;
  const auto relationships = read_text_file(dir / "relationships.txt");
  if (!relationships) {
    std::fprintf(stderr, "journal apply: cannot read %s\n",
                 (dir / "relationships.txt").c_str());
    return 1;
  }
  const auto files = delta::list_journal_files(journal_dir);
  if (files.empty()) {
    std::fprintf(stderr, "journal apply: no .nrtm batch files in %s\n",
                 journal_dir.c_str());
    return 1;
  }
  try {
    auto pipeline =
        std::make_shared<delta::DeltaPipeline>(read_dumps(dir), *relationships);
    for (const std::filesystem::path& path : files) {
      const auto text = read_text_file(path);
      if (!text) {
        std::fprintf(stderr, "journal apply: cannot read %s\n", path.c_str());
        return 1;
      }
      std::string parse_error;
      const auto batch = delta::parse_journal(*text, &parse_error);
      if (!batch) {
        std::fprintf(stderr, "journal apply: %s: %s\n", path.c_str(),
                     parse_error.c_str());
        return 1;
      }
      const delta::ApplyResult result = pipeline->apply(*batch);
      if (result.refused) {
        std::fprintf(stderr, "journal apply: %s refused: %s\n", path.c_str(),
                     result.error.c_str());
        return 1;
      }
      const auto generation = pipeline->current();
      std::printf("%s: serials %llu..%llu ops=%zu skipped=%zu dirty=%zu gen=%llu%s\n",
                  path.filename().c_str(),
                  static_cast<unsigned long long>(batch->first_serial),
                  static_cast<unsigned long long>(batch->last_serial),
                  result.ops_applied, result.ops_skipped, result.dirty_objects,
                  static_cast<unsigned long long>(generation->number),
                  generation->stats.full_rebuild ? " (full rebuild)" : "");
      if (verify_full && result.applied) {
        // Reference side: from-scratch compile of the mutated corpus through
        // the ordinary batch loader. Byte equality here is the pipeline's
        // whole correctness contract.
        auto lyzer = std::make_shared<Rpslyzer>(Rpslyzer::from_texts(
            pipeline->store().source_texts(), *relationships, load_options));
        auto snapshot = lyzer->snapshot();
        const std::shared_ptr<const compile::CompiledPolicySnapshot> reference{
            std::move(lyzer), snapshot.get()};
        const delta::EquivalenceResult eq =
            delta::compare_snapshots(pipeline->current_snapshot(), reference);
        if (!eq.equal) {
          std::fprintf(stderr,
                       "journal apply: %s: incremental snapshot diverged from full "
                       "compile (%zu/%zu probes mismatched)\n%s\n",
                       path.c_str(), eq.mismatches, eq.probes,
                       eq.first_mismatch.c_str());
          return 1;
        }
        std::printf("  equiv ok: %zu probes, digest %016llx\n", eq.probes,
                    static_cast<unsigned long long>(eq.digest_left));
      }
    }
    std::printf("%s\n", pipeline->stats_line().c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "journal apply: %s\n", e.what());
    return 1;
  }
  return 0;
}

int cmd_journal(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string_view mode = argv[0];
  const std::filesystem::path dir = argv[1];
  if (mode == "synth") return cmd_journal_synth(dir, argc - 2, argv + 2);
  if (mode == "apply") return cmd_journal_apply(dir, argc - 2, argv + 2);
  return usage();
}

// `serve` wires signals straight into the daemon: SIGINT/SIGTERM drain and
// stop, SIGHUP reloads the corpus (both entry points are async-signal-safe).
server::Server* g_server = nullptr;

void on_stop_signal(int) {
  if (g_server != nullptr) g_server->request_stop();
}

void on_hup_signal(int) {
  if (g_server != nullptr) g_server->request_reload();
}

int cmd_serve(int argc, char** argv) {
  std::string data_dir;
  std::string snapshot_path;
  std::string snapshot_cache_dir;
  std::string journal_dir;
  std::chrono::milliseconds journal_poll_ms{1000};
  bool synthetic = false;
  double scale = 0.2;
  std::uint32_t seed = 7;
  bool publish = false;
  std::size_t chunk_kb = 256;
  std::string origin_spec;
  std::string repl_dir;
  std::string edge_id;
  std::chrono::milliseconds poll_ms{2000};
  std::chrono::milliseconds heartbeat_ms{1000};
  std::chrono::milliseconds origin_timeout_ms{30000};
  server::ServerConfig config;
  config.stats_log_interval = std::chrono::milliseconds(10000);
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto next_value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--synth") {
      synthetic = true;
    } else if (arg == "--snapshot") {
      const char* v = next_value();
      if (!v) return usage();
      snapshot_path = v;
    } else if (arg == "--snapshot-cache") {
      const char* v = next_value();
      if (!v) return usage();
      snapshot_cache_dir = v;
    } else if (arg == "--journal") {
      const char* v = next_value();
      if (!v) return usage();
      journal_dir = v;
    } else if (arg == "--journal-poll-ms") {
      const char* v = next_value();
      if (!v) return usage();
      journal_poll_ms = std::chrono::milliseconds(std::atoll(v));
    } else if (arg == "--port") {
      const char* v = next_value();
      if (!v) return usage();
      config.port = static_cast<std::uint16_t>(std::atoi(v));
    } else if (arg == "--threads") {
      const char* v = next_value();
      if (!v) return usage();
      config.worker_threads = static_cast<unsigned>(std::atoi(v));
    } else if (arg == "--cache") {
      const char* v = next_value();
      if (!v) return usage();
      config.cache_capacity = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--max-conns") {
      const char* v = next_value();
      if (!v) return usage();
      config.max_connections = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--idle-ms") {
      const char* v = next_value();
      if (!v) return usage();
      config.idle_timeout = std::chrono::milliseconds(std::atoll(v));
    } else if (arg == "--stats-ms") {
      const char* v = next_value();
      if (!v) return usage();
      config.stats_log_interval = std::chrono::milliseconds(std::atoll(v));
    } else if (arg == "--deadline-ms") {
      const char* v = next_value();
      if (!v) return usage();
      config.query_deadline = std::chrono::milliseconds(std::atoll(v));
    } else if (arg == "--max-out-kb") {
      const char* v = next_value();
      if (!v) return usage();
      config.max_output_buffer_bytes = static_cast<std::size_t>(std::atoll(v)) * 1024;
    } else if (arg == "--stall-grace-ms") {
      const char* v = next_value();
      if (!v) return usage();
      config.write_stall_grace = std::chrono::milliseconds(std::atoll(v));
    } else if (arg == "--retry-ms") {
      const char* v = next_value();
      if (!v) return usage();
      config.reload_retry_initial = std::chrono::milliseconds(std::atoll(v));
    } else if (arg == "--retry-max-ms") {
      const char* v = next_value();
      if (!v) return usage();
      config.reload_retry_max = std::chrono::milliseconds(std::atoll(v));
    } else if (arg == "--metrics-file") {
      const char* v = next_value();
      if (!v) return usage();
      config.metrics_snapshot_path = v;
    } else if (arg == "--metrics-file-ms") {
      const char* v = next_value();
      if (!v) return usage();
      config.metrics_snapshot_interval = std::chrono::milliseconds(std::atoll(v));
    } else if (arg == "--slow-ms") {
      const char* v = next_value();
      if (!v) return usage();
      config.slow_threshold = std::chrono::milliseconds(std::atoll(v));
    } else if (arg == "--flight-cap") {
      const char* v = next_value();
      if (!v) return usage();
      config.flight_capacity = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--scale") {
      const char* v = next_value();
      if (!v) return usage();
      scale = std::atof(v);
    } else if (arg == "--seed") {
      const char* v = next_value();
      if (!v) return usage();
      seed = static_cast<std::uint32_t>(std::atoi(v));
    } else if (arg == "--publish") {
      publish = true;
    } else if (arg == "--chunk-kb") {
      const char* v = next_value();
      if (!v) return usage();
      chunk_kb = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--origin") {
      const char* v = next_value();
      if (!v) return usage();
      origin_spec = v;
    } else if (arg == "--repl-dir") {
      const char* v = next_value();
      if (!v) return usage();
      repl_dir = v;
    } else if (arg == "--edge-id") {
      const char* v = next_value();
      if (!v) return usage();
      edge_id = v;
    } else if (arg == "--poll-ms") {
      const char* v = next_value();
      if (!v) return usage();
      poll_ms = std::chrono::milliseconds(std::atoll(v));
    } else if (arg == "--heartbeat-ms") {
      const char* v = next_value();
      if (!v) return usage();
      heartbeat_ms = std::chrono::milliseconds(std::atoll(v));
    } else if (arg == "--origin-timeout-ms") {
      const char* v = next_value();
      if (!v) return usage();
      origin_timeout_ms = std::chrono::milliseconds(std::atoll(v));
    } else if (!arg.empty() && arg.front() != '-' && data_dir.empty()) {
      data_dir = arg;
    } else {
      std::fprintf(stderr, "serve: unknown flag %s\n", argv[i]);
      return usage();
    }
  }
  // Exactly one corpus source: a data dir, --synth, or --snapshot — unless
  // this is a replication edge, whose only corpus source IS the origin.
  const int sources = (!data_dir.empty() ? 1 : 0) + (synthetic ? 1 : 0) +
                      (!snapshot_path.empty() ? 1 : 0);
  if (!origin_spec.empty()) {
    if (publish || sources != 0 || repl_dir.empty()) return usage();
  } else if (sources != 1) {
    return usage();
  }
  // --snapshot-cache only makes sense when reloads re-read a data dir.
  if (!snapshot_cache_dir.empty() && data_dir.empty()) return usage();
  // --journal follows a corpus dir through the incremental delta pipeline;
  // it subsumes reload-from-disk, so the snapshot cache does not apply.
  if (!journal_dir.empty() && (data_dir.empty() || !snapshot_cache_dir.empty())) {
    return usage();
  }

  server::CorpusLoader loader;
  // Journal mode: the delta pipeline owns the corpus; the follower feeds it
  // batches and a reload just republishes the pipeline's current generation.
  std::shared_ptr<delta::DeltaPipeline> pipeline;
  std::shared_ptr<delta::JournalFollower> follower;
  // The daemon's --threads knob doubles as ingestion parallelism: the
  // initial load and every SIGHUP/!reload re-ingest through the sharded
  // parallel pipeline with the same thread budget as the worker pool.
  irr::LoadOptions load_options;
  load_options.threads = config.worker_threads;
  if (!snapshot_path.empty()) {
    // Every (re)load re-opens the file, so SIGHUP picks up a snapshot that
    // `compile --out` replaced in place; a corrupt or version-mismatched
    // file throws SnapshotError, which the server turns into "keep serving
    // the last good generation, degraded".
    loader = [snapshot_path]() -> std::shared_ptr<const compile::CompiledPolicySnapshot> {
      return persist::open_snapshot(snapshot_path);
    };
  } else if (synthetic) {
    loader = [scale, seed,
              load_options]() -> std::shared_ptr<const compile::CompiledPolicySnapshot> {
      synth::SynthConfig synth_config;
      synth_config.scale = scale;
      synth_config.seed = seed;
      synth::InternetGenerator generator(synth_config);
      std::vector<std::pair<std::string, std::string>> ordered;
      for (const auto& name : synth::irr_names()) {
        ordered.emplace_back(name, generator.irr_dumps().at(name));
      }
      auto lyzer = std::make_shared<Rpslyzer>(
          Rpslyzer::from_texts(ordered, generator.caida_serial1(), load_options));
      // The memoized snapshot aliases into *lyzer; re-wrap it so the
      // returned pointer also owns the Rpslyzer bundle.
      auto snapshot = lyzer->snapshot();
      return {std::move(lyzer), snapshot.get()};
    };
  } else if (!journal_dir.empty()) {
    if (!corpus_dir_ok(data_dir)) return 1;
    const auto relationships = read_text_file(std::filesystem::path(data_dir) /
                                              "relationships.txt");
    if (!relationships) {
      std::fprintf(stderr, "rpslyzerd: cannot read %s/relationships.txt\n",
                   data_dir.c_str());
      return 1;
    }
    try {
      pipeline = std::make_shared<delta::DeltaPipeline>(read_dumps(data_dir),
                                                        *relationships);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "rpslyzerd: delta pipeline: %s\n", e.what());
      return 1;
    }
    delta::FollowerConfig follower_config;
    follower_config.directory = journal_dir;
    follower_config.poll_interval = journal_poll_ms;
    follower = std::make_shared<delta::JournalFollower>(pipeline, follower_config);
    // Catch up on any batches already on disk before the daemon starts, so
    // the first served generation reflects the full journal.
    follower->poll_now();
    loader = [pipeline]() -> std::shared_ptr<const compile::CompiledPolicySnapshot> {
      return pipeline->current_snapshot();
    };
  } else {
    loader = [data_dir, snapshot_cache_dir,
              load_options]() -> std::shared_ptr<const compile::CompiledPolicySnapshot> {
      if (!corpus_dir_ok(data_dir)) return nullptr;  // start + reload both bail
      if (!snapshot_cache_dir.empty()) {
        // Generation cache: key the compiled artifact by the content of the
        // dumps + relationships file. Unchanged corpus → mmap the cached
        // snapshot; changed or absent/corrupt entry → full rebuild below,
        // then repopulate the entry for the next reload.
        persist::SnapshotCache cache{std::filesystem::path(snapshot_cache_dir)};
        const persist::CacheKey key = persist::derive_cache_key(data_dir, load_options);
        if (auto cached = cache.try_load(key)) return cached;
        auto lyzer = std::make_shared<Rpslyzer>(load(data_dir, load_options));
        auto snapshot = lyzer->snapshot();
        cache.store(key, *snapshot);
        return {std::move(lyzer), snapshot.get()};
      }
      auto lyzer = std::make_shared<Rpslyzer>(load(data_dir, load_options));
      auto snapshot = lyzer->snapshot();
      return {std::move(lyzer), snapshot.get()};
    };
  }

  // Origin role: every successful (re)load republishes through the
  // publisher, which deduplicates by content checksum — a reload that
  // recompiled identical dumps is a no-op for the fleet.
  std::shared_ptr<repl::Publisher> publisher;
  if (publish) {
    publisher = std::make_shared<repl::Publisher>(chunk_kb * 1024);
    auto inner = std::move(loader);
    loader = [inner, publisher]() -> std::shared_ptr<const compile::CompiledPolicySnapshot> {
      auto snap = inner();
      if (snap) publisher->publish(*snap);
      return snap;
    };
  }

  // Edge role: the replication client keeps state_dir/current.rps in sync
  // with the origin; the loader just mmaps whatever generation is current.
  // The daemon pointer lives in an atomic slot because the client's agent
  // thread outlives neither and must stop calling into the daemon once the
  // slot is cleared during shutdown.
  std::shared_ptr<repl::ReplicationClient> rclient;
  auto daemon_slot = std::make_shared<std::atomic<server::Server*>>(nullptr);
  if (!origin_spec.empty()) {
    const std::size_t colon = origin_spec.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 >= origin_spec.size()) {
      std::fprintf(stderr, "serve: --origin expects HOST:PORT\n");
      return usage();
    }
    repl::EdgeConfig econfig;
    econfig.origin_host = origin_spec.substr(0, colon);
    econfig.origin_port = static_cast<std::uint16_t>(std::atoi(origin_spec.c_str() + colon + 1));
    econfig.state_dir = repl_dir;
    econfig.edge_id =
        edge_id.empty() ? "edge-" + std::to_string(static_cast<long>(::getpid())) : edge_id;
    econfig.poll_interval = poll_ms;
    econfig.heartbeat_period = heartbeat_ms;
    // The poll interval already defines how stale an edge may run; letting
    // reconnect backoff grow past it would only delay recovery after an
    // origin outage. Cap at 2x poll so a returning origin is picked up
    // within ~3 poll intervals even from the deepest backoff step.
    econfig.backoff_initial = std::min(econfig.backoff_initial, poll_ms);
    econfig.backoff_max = poll_ms * 2;
    rclient = std::make_shared<repl::ReplicationClient>(econfig);
    rclient->set_activation_callback([daemon_slot](const repl::Current&) {
      if (auto* s = daemon_slot->load()) s->request_reload();
    });
    rclient->set_local_state([daemon_slot]() {
      repl::LocalState state;
      if (auto* s = daemon_slot->load()) {
        state.health = server::to_string(s->health().state);
        const server::ServerStats::Snapshot snap = s->stats().snapshot();
        state.queries_total = snap.queries_total;
        const server::CacheStats cache = s->cache_stats();
        state.cache_hits = cache.hits;
        state.cache_misses = cache.misses;
        state.recorder_drops = s->flight().dropped();
        state.latency_count = snap.latency.count;
        state.latency_sum_micros =
            static_cast<std::uint64_t>(snap.latency.sum * 1e6 + 0.5);
        state.latency_buckets = snap.latency.buckets;
      }
      return state;
    });
    const bool recovered = rclient->recover_last_good();
    rclient->start();
    if (!recovered && !rclient->wait_for_snapshot(origin_timeout_ms)) {
      std::fprintf(stderr,
                   "rpslyzerd: no last-good snapshot and the origin %s produced none within "
                   "%lld ms\n",
                   origin_spec.c_str(), static_cast<long long>(origin_timeout_ms.count()));
      rclient->stop();
      return 1;
    }
    loader = [rclient]() -> std::shared_ptr<const compile::CompiledPolicySnapshot> {
      const auto cur = rclient->current();
      if (!cur) return nullptr;
      return persist::open_snapshot(cur->path, "repl:" + std::to_string(cur->gen));
    };
  }

  server::Server daemon(config, std::move(loader));
  if (publisher) {
    daemon.set_repl_handler(
        [publisher](std::string_view body) { return publisher->handle(body); });
    daemon.set_stats_extra([publisher] { return publisher->stats_line(); });
    // Fleet aggregation: `!fleet` merges the per-edge heartbeat digests;
    // the same aggregate rides `!metrics` as rpslyzer_fleet_* families.
    publisher->set_latency_bounds(config.latency_bounds);
    daemon.set_fleet_handler([publisher] { return publisher->fleet_payload(); });
    daemon.set_metrics_extra([publisher] { return publisher->fleet_prometheus(); });
  } else if (rclient) {
    daemon.set_repl_handler([rclient](std::string_view body) -> std::string {
      if (body.empty()) return query::frame_response(rclient->status_payload());
      return "F this instance is not an origin\n";
    });
    daemon.set_stats_extra([rclient] { return rclient->stats_line(); });
  }
  if (follower) {
    if (publisher) {
      daemon.set_stats_extra([publisher, follower] {
        return publisher->stats_line() + "\n" + follower->stats_line();
      });
    } else {
      daemon.set_stats_extra([follower] { return follower->stats_line(); });
    }
  }
  std::string error;
  if (!daemon.start(&error)) {
    std::fprintf(stderr, "rpslyzerd: %s\n", error.c_str());
    if (rclient) rclient->stop();
    return 1;
  }
  daemon_slot->store(&daemon);
  if (follower) {
    // Each applied batch published a new generation; the reload just swaps
    // the daemon's snapshot pointer (and republishes when --publish is on).
    follower->set_activation_callback([daemon_slot](std::uint64_t) {
      if (auto* s = daemon_slot->load()) s->request_reload();
    });
    follower->start();
  }
  g_server = &daemon;
  std::signal(SIGINT, on_stop_signal);
  std::signal(SIGTERM, on_stop_signal);
  std::signal(SIGHUP, on_hup_signal);
  const std::string corpus_desc = !origin_spec.empty() ? "repl:" + origin_spec
                                  : synthetic          ? std::string("synthetic")
                                  : !snapshot_path.empty() ? snapshot_path
                                  : !journal_dir.empty() ? data_dir + " journal:" + journal_dir
                                                         : data_dir;
  std::printf("rpslyzerd listening on %s:%u (workers=%u cache=%zu corpus=%s%s)\n",
              config.bind_address.c_str(), daemon.port(), config.worker_threads,
              config.cache_capacity, corpus_desc.c_str(), publish ? " publish" : "");
  std::fflush(stdout);
  daemon.wait();
  const std::string final_stats = daemon.stats_payload();
  daemon_slot->store(nullptr);
  if (follower) follower->stop();
  if (rclient) rclient->stop();
  daemon.stop();
  g_server = nullptr;
  std::printf("%s\nrpslyzerd: shut down cleanly\n", final_stats.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Global telemetry flags may precede the command; RPSLYZER_LOG already
  // configured the defaults, these override it.
  int first = 1;
  while (first < argc) {
    const std::string_view arg = argv[first];
    if (arg == "--log-json") {
      rpslyzer::obs::set_log_json(true);
      ++first;
    } else if (arg == "--log-level") {
      if (first + 1 >= argc) return usage();
      const auto level = rpslyzer::obs::parse_log_level(argv[first + 1]);
      if (!level) {
        std::fprintf(stderr, "bad --log-level %s\n", argv[first + 1]);
        return usage();
      }
      rpslyzer::obs::set_log_level(*level);
      first += 2;
    } else {
      break;
    }
  }
  if (argc - first < 1) return usage();
  const char* command = argv[first];
  argv += first + 1;
  argc -= first + 1;
  if (std::strcmp(command, "generate") == 0) return cmd_generate(argc, argv);
  if (std::strcmp(command, "parse") == 0) return cmd_parse(argc, argv);
  if (std::strcmp(command, "load") == 0) return cmd_load(argc, argv);
  if (std::strcmp(command, "lint") == 0) return cmd_lint(argc, argv);
  if (std::strcmp(command, "export") == 0) return cmd_export(argc, argv);
  if (std::strcmp(command, "report") == 0) return cmd_report(argc, argv);
  if (std::strcmp(command, "verify") == 0) return cmd_verify(argc, argv);
  if (std::strcmp(command, "query") == 0) return cmd_query(argc, argv);
  if (std::strcmp(command, "compile") == 0) return cmd_compile(argc, argv);
  if (std::strcmp(command, "journal") == 0) return cmd_journal(argc, argv);
  if (std::strcmp(command, "serve") == 0) return cmd_serve(argc, argv);
  return usage();
}
