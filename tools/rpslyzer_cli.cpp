// rpslyzer — command-line front end to the library.
//
//   rpslyzer generate <dir> [scale] [seed]   synthesize a corpus to <dir>
//   rpslyzer parse <dir>                     parse dumps, print a census
//   rpslyzer lint <dir>                      lint the corpus
//   rpslyzer export <dir> <out.json>         export the IR as JSON
//   rpslyzer report <dir> <prefix> <asn...>  verify one route, print report
//   rpslyzer verify <dir>                    verify collector-*.dump files
//
// <dir> holds <irr>.db dumps (Table 1 names) plus relationships.txt and,
// for `verify`, collector-<n>.dump files — exactly what `generate` writes.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "rpslyzer/lint/classify.hpp"
#include "rpslyzer/lint/linter.hpp"
#include "rpslyzer/report/aggregate.hpp"
#include "rpslyzer/report/render.hpp"
#include "rpslyzer/rpslyzer.hpp"
#include "rpslyzer/stats/census.hpp"
#include "rpslyzer/synth/generator.hpp"

namespace {

using namespace rpslyzer;

int usage() {
  std::fprintf(stderr,
               "usage: rpslyzer <command> ...\n"
               "  generate <dir> [scale] [seed]   synthesize an IRR+BGP corpus\n"
               "  parse <dir>                     parse dumps and print a census\n"
               "  lint <dir>                      lint the corpus\n"
               "  export <dir> <out.json>         export the IR as JSON\n"
               "  report <dir> <prefix> <asn...>  verify one route (Appendix-C style)\n"
               "  verify <dir>                    verify collector-*.dump files\n");
  return 2;
}

Rpslyzer load(const std::filesystem::path& dir) {
  return Rpslyzer::from_files(dir, dir / "relationships.txt");
}

int cmd_generate(int argc, char** argv) {
  if (argc < 1) return usage();
  synth::SynthConfig config;
  if (argc >= 2) config.scale = std::atof(argv[1]);
  if (argc >= 3) config.seed = static_cast<std::uint32_t>(std::atoi(argv[2]));
  synth::InternetGenerator generator(config);
  const std::size_t files = generator.write_to(argv[0]);
  std::printf("wrote %zu files to %s (%zu ASes, %zu aut-nums planned, %zu collectors)\n",
              files, argv[0], generator.topology().size(),
              generator.topology().size() - generator.plan().missing_aut_num.size(),
              generator.collector_peers().size());
  return 0;
}

int cmd_parse(int argc, char** argv) {
  if (argc < 1) return usage();
  Rpslyzer lyzer = load(argv[0]);
  std::printf("%-10s %9s %9s %9s %9s\n", "IRR", "aut-num", "route", "import", "export");
  for (const auto& counts : lyzer.irr_counts()) {
    std::printf("%-10s %9zu %9zu %9zu %9zu\n", counts.name.c_str(), counts.aut_nums,
                counts.routes, counts.imports, counts.exports);
  }
  std::printf("\nmerged corpus: %zu objects (%zu aut-nums, %zu routes after dedup)\n",
              lyzer.ir().object_count(), lyzer.ir().aut_nums.size(),
              lyzer.ir().routes.size());
  stats::ErrorCensus errors = stats::ErrorCensus::compute(lyzer.diagnostics(), lyzer.ir());
  std::printf("diagnostics: %zu syntax errors, %zu invalid as-set names, %zu invalid "
              "route-set names\n",
              errors.syntax_errors, errors.invalid_as_set_names,
              errors.invalid_route_set_names);
  auto classes = lint::histogram(lint::classify_all(lyzer.ir()));
  std::printf("usage classes:");
  for (const auto& [cls, count] : classes) {
    std::printf("  %s=%zu", lint::to_string(cls), count);
  }
  std::printf("\n");
  return 0;
}

int cmd_lint(int argc, char** argv) {
  if (argc < 1) return usage();
  Rpslyzer lyzer = load(argv[0]);
  irr::Index index(lyzer.ir());
  auto findings = lint::lint(lyzer.ir(), index);
  std::fputs(lint::render(findings).c_str(), stdout);
  std::printf("%zu findings\n", findings.size());
  return findings.empty() ? 0 : 1;
}

int cmd_export(int argc, char** argv) {
  if (argc < 2) return usage();
  Rpslyzer lyzer = load(argv[0]);
  std::ofstream out(argv[1], std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", argv[1]);
    return 1;
  }
  const std::string text = json::dump_pretty(lyzer.export_ir());
  out << text;
  std::printf("exported %zu objects to %s (%zu bytes)\n", lyzer.ir().object_count(),
              argv[1], text.size());
  return 0;
}

int cmd_report(int argc, char** argv) {
  if (argc < 2) return usage();
  Rpslyzer lyzer = load(argv[0]);
  auto prefix = net::Prefix::parse(argv[1]);
  if (!prefix) {
    std::fprintf(stderr, "bad prefix: %s\n", argv[1]);
    return 1;
  }
  bgp::Route route;
  route.prefix = *prefix;
  for (int i = 2; i < argc; ++i) {
    std::string_view token = argv[i];
    if (token.starts_with("AS") || token.starts_with("as")) token.remove_prefix(2);
    auto asn = util::parse_u32(token);
    if (!asn) {
      std::fprintf(stderr, "bad ASN: %s\n", argv[i]);
      return 1;
    }
    route.path.push_back(*asn);
  }
  route.path = bgp::strip_prepends(route.path);
  if (route.path.size() < 2) {
    std::fprintf(stderr, "need an AS path with at least two ASes\n");
    return 1;
  }
  std::fputs(lyzer.verifier().report(route).c_str(), stdout);
  return 0;
}

int cmd_verify(int argc, char** argv) {
  if (argc < 1) return usage();
  const std::filesystem::path dir = argv[0];
  Rpslyzer lyzer = load(dir);
  verify::Verifier verifier = lyzer.verifier();
  report::Aggregator agg;
  bgp::DumpStats dump_stats;
  std::size_t dumps = 0;
  for (std::size_t i = 0;; ++i) {
    std::ifstream in(dir / ("collector-" + std::to_string(i) + ".dump"), std::ios::binary);
    if (!in) break;
    ++dumps;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string text = std::move(buffer).str();
    for (const auto& route : bgp::parse_table_dump(text, &dump_stats)) {
      agg.add(route, verifier.verify_route(route));
    }
  }
  if (dumps == 0) {
    std::fprintf(stderr, "no collector-*.dump files under %s\n", dir.string().c_str());
    return 1;
  }
  report::StatusCounts totals;
  for (const auto& [asn, counts] : agg.as_combined()) totals.merge(counts);
  std::printf("%zu routes, %zu checks from %zu dumps\n", agg.total_routes(),
              agg.total_checks(), dumps);
  std::printf("%s\n", report::render_composition(totals).c_str());
  std::vector<report::StatusCounts> per_as;
  for (const auto& [asn, counts] : agg.as_combined()) per_as.push_back(counts);
  std::fputs(report::render_stacked(per_as).c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const char* command = argv[1];
  argc -= 2;
  argv += 2;
  if (std::strcmp(command, "generate") == 0) return cmd_generate(argc, argv);
  if (std::strcmp(command, "parse") == 0) return cmd_parse(argc, argv);
  if (std::strcmp(command, "lint") == 0) return cmd_lint(argc, argv);
  if (std::strcmp(command, "export") == 0) return cmd_export(argc, argv);
  if (std::strcmp(command, "report") == 0) return cmd_report(argc, argv);
  if (std::strcmp(command, "verify") == 0) return cmd_verify(argc, argv);
  return usage();
}
