// loadgen — concurrent load generator for rpslyzerd.
//
//   loadgen [--host H] [--port P] [--connections N] [--pipeline K]
//           [--requests N] [--duration-ms D] [--json] [--stats] <query...>
//
// Opens N concurrent connections, each cycling through the given query mix
// in pipelined batches of K, and reports sustained throughput. With
// --duration-ms the run is time-boxed; otherwise each connection issues
// --requests queries (default 1000). --stats fetches the daemon's `!stats`
// afterwards (cache hit ratio, latency percentiles); --json emits one
// machine-readable line for trend tracking across PRs.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "rpslyzer/server/client.hpp"

namespace {

using rpslyzer::server::Client;
using Clock = std::chrono::steady_clock;

struct Options {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::size_t connections = 8;
  std::size_t pipeline = 16;
  std::size_t requests = 1000;  // per connection, when no duration given
  long long duration_ms = 0;
  bool json = false;
  bool stats = false;
  std::vector<std::string> queries;
};

int usage() {
  std::fprintf(stderr,
               "usage: loadgen --port P [--host H] [--connections N] [--pipeline K]\n"
               "               [--requests N] [--duration-ms D] [--json] [--stats]\n"
               "               <query...>\n");
  return 2;
}

struct WorkerResult {
  std::uint64_t responses = 0;
  std::uint64_t errors = 0;     // 'F' responses
  std::uint64_t not_found = 0;  // 'D' responses
  bool failed = false;          // connect/protocol failure
};

void run_worker(const Options& options, Clock::time_point deadline,
                WorkerResult& result) {
  std::string error;
  auto client = Client::connect(options.host, options.port, &error);
  if (!client) {
    std::fprintf(stderr, "loadgen: %s\n", error.c_str());
    result.failed = true;
    return;
  }
  std::size_t cursor = 0;
  std::uint64_t sent_total = 0;
  const bool timed = options.duration_ms > 0;
  while (true) {
    if (timed) {
      if (Clock::now() >= deadline) break;
    } else if (sent_total >= options.requests) {
      break;
    }
    std::size_t batch = options.pipeline;
    if (!timed) batch = std::min<std::uint64_t>(batch, options.requests - sent_total);
    for (std::size_t i = 0; i < batch; ++i) {
      if (!client->send_line(options.queries[cursor])) {
        result.failed = true;
        return;
      }
      cursor = (cursor + 1) % options.queries.size();
    }
    sent_total += batch;
    for (std::size_t i = 0; i < batch; ++i) {
      auto response = client->read_response();
      if (!response) {
        result.failed = true;
        return;
      }
      ++result.responses;
      if (!response->empty() && response->front() == 'F') ++result.errors;
      if (*response == "D\n") ++result.not_found;
    }
  }
  client->send_line("!q");
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto next_value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--host") {
      const char* v = next_value();
      if (!v) return usage();
      options.host = v;
    } else if (arg == "--port") {
      const char* v = next_value();
      if (!v) return usage();
      options.port = static_cast<std::uint16_t>(std::atoi(v));
    } else if (arg == "--connections") {
      const char* v = next_value();
      if (!v) return usage();
      options.connections = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--pipeline") {
      const char* v = next_value();
      if (!v) return usage();
      options.pipeline = std::max<std::size_t>(1, static_cast<std::size_t>(std::atoll(v)));
    } else if (arg == "--requests") {
      const char* v = next_value();
      if (!v) return usage();
      options.requests = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--duration-ms") {
      const char* v = next_value();
      if (!v) return usage();
      options.duration_ms = std::atoll(v);
    } else if (arg == "--json") {
      options.json = true;
    } else if (arg == "--stats") {
      options.stats = true;
    } else {
      options.queries.emplace_back(arg);
    }
  }
  if (options.port == 0 || options.queries.empty() || options.connections == 0) {
    return usage();
  }

  const auto start = Clock::now();
  const auto deadline = start + std::chrono::milliseconds(options.duration_ms);
  std::vector<WorkerResult> results(options.connections);
  std::vector<std::thread> workers;
  workers.reserve(options.connections);
  for (std::size_t i = 0; i < options.connections; ++i) {
    workers.emplace_back(run_worker, std::cref(options), deadline, std::ref(results[i]));
  }
  for (auto& worker : workers) worker.join();
  const double seconds = std::chrono::duration<double>(Clock::now() - start).count();

  WorkerResult total;
  bool any_failed = false;
  for (const auto& result : results) {
    total.responses += result.responses;
    total.errors += result.errors;
    total.not_found += result.not_found;
    any_failed = any_failed || result.failed;
  }
  const double qps = seconds > 0 ? static_cast<double>(total.responses) / seconds : 0;

  if (options.json) {
    std::printf("{\"tool\":\"loadgen\",\"connections\":%zu,\"pipeline\":%zu,"
                "\"responses\":%llu,\"errors\":%llu,\"not_found\":%llu,"
                "\"seconds\":%.3f,\"qps\":%.0f,\"failed\":%s}\n",
                options.connections, options.pipeline,
                static_cast<unsigned long long>(total.responses),
                static_cast<unsigned long long>(total.errors),
                static_cast<unsigned long long>(total.not_found), seconds, qps,
                any_failed ? "true" : "false");
  } else {
    std::printf("loadgen: %llu responses over %zu connections in %.3fs (%.0f q/s, "
                "%llu errors, %llu not-found)\n",
                static_cast<unsigned long long>(total.responses), options.connections,
                seconds, qps, static_cast<unsigned long long>(total.errors),
                static_cast<unsigned long long>(total.not_found));
  }

  if (options.stats) {
    if (auto client = Client::connect(options.host, options.port)) {
      if (client->send_line("!stats")) {
        if (auto response = client->read_response()) {
          std::fwrite(response->data(), 1, response->size(), stdout);
        }
      }
      client->send_line("!q");
    }
  }
  return any_failed ? 1 : 0;
}
