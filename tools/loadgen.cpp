// loadgen — concurrent load generator for rpslyzerd.
//
//   loadgen [--host H] [--port P] [--connections N] [--pipeline K]
//           [--requests N] [--duration-ms D] [--fault-churn] [--json]
//           [--stats] <query...>
//
// Opens N concurrent connections, each cycling through the given query mix
// in pipelined batches of K, and reports sustained throughput. With
// --duration-ms the run is time-boxed; otherwise each connection issues
// --requests queries (default 1000). --stats fetches the daemon's `!stats`
// afterwards (cache hit ratio, latency percentiles); --json emits one
// machine-readable line for trend tracking across PRs.
//
// --fault-churn turns each worker into a hostile client: it randomly drops
// connections without `!q`, reconnects, leaves half-written lines on the
// wire, and occasionally walks away mid-pipeline. The daemon under test
// must survive the whole run and keep answering the workers' complete
// queries correctly — pair it with RPSLYZER_FAILPOINTS on the server side
// to exercise both ends of the fault model at once.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "rpslyzer/server/client.hpp"

namespace {

using rpslyzer::server::Client;
using Clock = std::chrono::steady_clock;

struct Options {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::size_t connections = 8;
  std::size_t pipeline = 16;
  std::size_t requests = 1000;  // per connection, when no duration given
  long long duration_ms = 0;
  bool fault_churn = false;
  bool json = false;
  bool stats = false;
  std::vector<std::string> queries;
};

int usage() {
  std::fprintf(stderr,
               "usage: loadgen --port P [--host H] [--connections N] [--pipeline K]\n"
               "               [--requests N] [--duration-ms D] [--fault-churn]\n"
               "               [--json] [--stats] <query...>\n");
  return 2;
}

struct WorkerResult {
  std::uint64_t responses = 0;
  std::uint64_t errors = 0;      // 'F' responses
  std::uint64_t not_found = 0;   // 'D' responses
  std::uint64_t reconnects = 0;  // fault-churn: abrupt drop + reopen cycles
  std::uint64_t half_lines = 0;  // fault-churn: unterminated lines left behind
  bool failed = false;           // connect/protocol failure
};

void run_worker(const Options& options, Clock::time_point deadline,
                WorkerResult& result) {
  std::string error;
  auto client = Client::connect(options.host, options.port, &error);
  if (!client) {
    std::fprintf(stderr, "loadgen: %s\n", error.c_str());
    result.failed = true;
    return;
  }
  std::size_t cursor = 0;
  std::uint64_t sent_total = 0;
  const bool timed = options.duration_ms > 0;
  while (true) {
    if (timed) {
      if (Clock::now() >= deadline) break;
    } else if (sent_total >= options.requests) {
      break;
    }
    std::size_t batch = options.pipeline;
    if (!timed) batch = std::min<std::uint64_t>(batch, options.requests - sent_total);
    for (std::size_t i = 0; i < batch; ++i) {
      if (!client->send_line(options.queries[cursor])) {
        result.failed = true;
        return;
      }
      cursor = (cursor + 1) % options.queries.size();
    }
    sent_total += batch;
    for (std::size_t i = 0; i < batch; ++i) {
      auto response = client->read_response();
      if (!response) {
        result.failed = true;
        return;
      }
      ++result.responses;
      if (!response->empty() && response->front() == 'F') ++result.errors;
      if (*response == "D\n") ++result.not_found;
    }
  }
  client->send_line("!q");
}

/// Hostile-client mode: connect, issue a few real pipelined queries, then
/// misbehave — leave a half-written line, or vanish mid-pipeline without
/// `!q` — and reconnect. A connect failure is the only thing that counts as
/// the *server* failing; everything else is the worker being rude on purpose.
void run_churn_worker(const Options& options, Clock::time_point deadline,
                      std::uint64_t seed, WorkerResult& result) {
  // splitmix64: each worker gets its own deterministic misbehaviour stream.
  auto next_random = [state = seed]() mutable {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  std::size_t cursor = 0;
  while (Clock::now() < deadline) {
    std::string error;
    auto client = Client::connect(options.host, options.port, &error);
    if (!client) {
      std::fprintf(stderr, "loadgen: %s\n", error.c_str());
      result.failed = true;
      return;
    }
    // A short burst of honest pipelined traffic...
    const std::size_t burst = 1 + next_random() % options.pipeline;
    std::size_t sent = 0;
    for (std::size_t i = 0; i < burst; ++i) {
      if (!client->send_line(options.queries[cursor])) break;
      cursor = (cursor + 1) % options.queries.size();
      ++sent;
    }
    // ...of which we may only read a random prefix before misbehaving.
    const std::size_t reads = next_random() % (sent + 1);
    for (std::size_t i = 0; i < reads && Clock::now() < deadline; ++i) {
      auto response = client->read_response();
      if (!response) break;  // server may have dropped us; that's the game
      ++result.responses;
      if (!response->empty() && response->front() == 'F') ++result.errors;
      if (*response == "D\n") ++result.not_found;
    }
    switch (next_random() % 4) {
      case 0: {  // half-written line, then vanish
        const std::string& query = options.queries[cursor];
        client->send_raw(query.substr(0, std::max<std::size_t>(1, query.size() / 2)));
        ++result.half_lines;
        break;
      }
      case 1:  // polite goodbye (the control case)
        client->send_line("!q");
        break;
      default:  // abrupt close with responses still in flight
        break;
    }
    ++result.reconnects;  // Client destructor closes the socket abruptly
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto next_value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--host") {
      const char* v = next_value();
      if (!v) return usage();
      options.host = v;
    } else if (arg == "--port") {
      const char* v = next_value();
      if (!v) return usage();
      options.port = static_cast<std::uint16_t>(std::atoi(v));
    } else if (arg == "--connections") {
      const char* v = next_value();
      if (!v) return usage();
      options.connections = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--pipeline") {
      const char* v = next_value();
      if (!v) return usage();
      options.pipeline = std::max<std::size_t>(1, static_cast<std::size_t>(std::atoll(v)));
    } else if (arg == "--requests") {
      const char* v = next_value();
      if (!v) return usage();
      options.requests = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--duration-ms") {
      const char* v = next_value();
      if (!v) return usage();
      options.duration_ms = std::atoll(v);
    } else if (arg == "--fault-churn") {
      options.fault_churn = true;
    } else if (arg == "--json") {
      options.json = true;
    } else if (arg == "--stats") {
      options.stats = true;
    } else {
      options.queries.emplace_back(arg);
    }
  }
  if (options.port == 0 || options.queries.empty() || options.connections == 0) {
    return usage();
  }

  // Churn mode is inherently time-boxed; give it a default window.
  if (options.fault_churn && options.duration_ms <= 0) options.duration_ms = 2000;

  const auto start = Clock::now();
  const auto deadline = start + std::chrono::milliseconds(options.duration_ms);
  std::vector<WorkerResult> results(options.connections);
  std::vector<std::thread> workers;
  workers.reserve(options.connections);
  for (std::size_t i = 0; i < options.connections; ++i) {
    if (options.fault_churn) {
      workers.emplace_back(run_churn_worker, std::cref(options), deadline,
                           static_cast<std::uint64_t>(i + 1), std::ref(results[i]));
    } else {
      workers.emplace_back(run_worker, std::cref(options), deadline,
                           std::ref(results[i]));
    }
  }
  for (auto& worker : workers) worker.join();
  const double seconds = std::chrono::duration<double>(Clock::now() - start).count();

  WorkerResult total;
  bool any_failed = false;
  for (const auto& result : results) {
    total.responses += result.responses;
    total.errors += result.errors;
    total.not_found += result.not_found;
    total.reconnects += result.reconnects;
    total.half_lines += result.half_lines;
    any_failed = any_failed || result.failed;
  }
  const double qps = seconds > 0 ? static_cast<double>(total.responses) / seconds : 0;

  if (options.json) {
    std::printf("{\"tool\":\"loadgen\",\"connections\":%zu,\"pipeline\":%zu,"
                "\"responses\":%llu,\"errors\":%llu,\"not_found\":%llu,"
                "\"reconnects\":%llu,\"half_lines\":%llu,"
                "\"seconds\":%.3f,\"qps\":%.0f,\"failed\":%s}\n",
                options.connections, options.pipeline,
                static_cast<unsigned long long>(total.responses),
                static_cast<unsigned long long>(total.errors),
                static_cast<unsigned long long>(total.not_found),
                static_cast<unsigned long long>(total.reconnects),
                static_cast<unsigned long long>(total.half_lines), seconds, qps,
                any_failed ? "true" : "false");
  } else {
    std::printf("loadgen: %llu responses over %zu connections in %.3fs (%.0f q/s, "
                "%llu errors, %llu not-found)\n",
                static_cast<unsigned long long>(total.responses), options.connections,
                seconds, qps, static_cast<unsigned long long>(total.errors),
                static_cast<unsigned long long>(total.not_found));
    if (options.fault_churn) {
      std::printf("loadgen: fault-churn: %llu reconnects, %llu half-written lines\n",
                  static_cast<unsigned long long>(total.reconnects),
                  static_cast<unsigned long long>(total.half_lines));
    }
  }

  if (options.stats) {
    if (auto client = Client::connect(options.host, options.port)) {
      if (client->send_line("!stats")) {
        if (auto response = client->read_response()) {
          std::fwrite(response->data(), 1, response->size(), stdout);
        }
      }
      client->send_line("!q");
    }
  }
  return any_failed ? 1 : 0;
}
