// loadgen — concurrent load generator for rpslyzerd.
//
//   loadgen [--host H] [--port P] [--connections N] [--pipeline K]
//           [--requests N] [--duration-ms D] [--fault-churn] [--json]
//           [--stats] [--metrics-ms D] [--target-qps Q]
//           [--divergence-ratio R] [--trace]
//           [--expect-file F] <query...>
//
// Opens N concurrent connections, each cycling through the given query mix
// in pipelined batches of K, and reports sustained throughput. With
// --duration-ms the run is time-boxed; otherwise each connection issues
// --requests queries (default 1000). --stats fetches the daemon's `!stats`
// afterwards (cache hit ratio, latency percentiles); --json emits one
// machine-readable line for trend tracking across PRs.
//
// --metrics-ms polls the daemon's `!metrics` Prometheus page on a side
// connection during the run and, at the end, reports the *server-side* p50
// and p99 service latency computed from the latency histogram's bucket
// deltas (start-of-run vs end-of-run, so a long-lived daemon's history does
// not pollute the numbers). --target-qps Q adds an achieved-vs-target line.
//
// Client-observed p50/p99 (send-to-receive, pipeline queueing included) are
// always reported next to the server-side numbers. --divergence-ratio R
// flags — without failing — a run whose client-observed p99 exceeds R times
// the server-side p99: the gap is time spent outside the server's service
// window (accept queues, output buffering, the network), invisible to the
// daemon's own histogram.
//
// --trace prefixes every request with `!id <hex>` — a client-chosen trace
// id the daemon threads through its logs and flight recorder — so any
// query from a loadgen run can be replayed later via `!trace <id>`.
// Responses are byte-identical either way, keeping --expect-file oracles
// valid under tracing.
//
// --expect-file F turns the run into a correctness oracle: every response
// to the FIRST query in the mix must byte-match the framed response stored
// in F (captured beforehand from a known-good daemon). Any deviation counts
// as `wrong` — the number the replication chaos harness drives to zero.
// Works because the protocol answers pipelined requests strictly in order.
//
// --fault-churn turns each worker into a hostile client: it randomly drops
// connections without `!q`, reconnects, leaves half-written lines on the
// wire, and occasionally walks away mid-pipeline. The daemon under test
// must survive the whole run and keep answering the workers' complete
// queries correctly — pair it with RPSLYZER_FAILPOINTS on the server side
// to exercise both ends of the fault model at once.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "rpslyzer/server/client.hpp"
#include "rpslyzer/util/rand.hpp"

namespace {

using rpslyzer::server::Client;
using Clock = std::chrono::steady_clock;

struct Options {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::size_t connections = 8;
  std::size_t pipeline = 16;
  std::size_t requests = 1000;  // per connection, when no duration given
  long long duration_ms = 0;
  long long metrics_ms = 0;  // poll !metrics every D ms (0 = off)
  double target_qps = 0;     // compare achieved throughput against this
  double divergence_ratio = 0;  // flag client p99 > R x server p99 (0 = off)
  bool fault_churn = false;
  bool trace = false;  // send `!id <hex>` trace-context prefixes
  bool json = false;
  bool stats = false;
  std::string expect_file;  // oracle for responses to queries[0]
  std::string expect_body;  // its contents, loaded once up front
  std::vector<std::string> queries;
};

int usage() {
  std::fprintf(stderr,
               "usage: loadgen --port P [--host H] [--connections N] [--pipeline K]\n"
               "               [--requests N] [--duration-ms D] [--fault-churn]\n"
               "               [--json] [--stats] [--metrics-ms D] [--target-qps Q]\n"
               "               [--divergence-ratio R] [--trace]\n"
               "               [--expect-file F] <query...>\n");
  return 2;
}

// ---------------------------------------------------------------------------
// !metrics scraping: enough Prometheus text parsing to pull the server-side
// latency histogram and query counter out of the exposition page.
// ---------------------------------------------------------------------------

struct MetricsSample {
  std::vector<std::pair<double, std::uint64_t>> buckets;  // (le, cumulative)
  std::uint64_t latency_count = 0;
  std::uint64_t queries_total = 0;
  bool ok = false;
};

/// Strip the IRRd frame ("A<len>\n<payload>C\n") down to the payload.
std::string unframe(const std::string& response) {
  if (response.empty() || response.front() != 'A') return {};
  const std::size_t newline = response.find('\n');
  if (newline == std::string::npos) return {};
  const long long length = std::atoll(response.c_str() + 1);
  if (length <= 0 ||
      newline + 1 + static_cast<std::size_t>(length) > response.size()) {
    return {};
  }
  return response.substr(newline + 1, static_cast<std::size_t>(length));
}

MetricsSample scrape_metrics(const Options& options) {
  MetricsSample sample;
  auto client = Client::connect(options.host, options.port);
  if (!client) return sample;
  if (!client->send_line("!metrics")) return sample;
  auto response = client->read_response();
  client->send_line("!q");
  if (!response) return sample;
  const std::string page = unframe(*response);

  constexpr std::string_view kBucket =
      "rpslyzer_server_query_latency_seconds_bucket{le=\"";
  constexpr std::string_view kCount = "rpslyzer_server_query_latency_seconds_count ";
  constexpr std::string_view kQueries = "rpslyzer_server_queries_total ";
  std::size_t pos = 0;
  while (pos < page.size()) {
    std::size_t end = page.find('\n', pos);
    if (end == std::string::npos) end = page.size();
    const std::string_view line(page.data() + pos, end - pos);
    pos = end + 1;
    if (line.substr(0, kBucket.size()) == kBucket) {
      const std::string_view rest = line.substr(kBucket.size());
      const std::size_t quote = rest.find('"');
      const std::size_t space = rest.rfind(' ');
      if (quote == std::string_view::npos || space == std::string_view::npos) continue;
      const std::string le_text(rest.substr(0, quote));
      const double le = le_text == "+Inf" ? HUGE_VAL : std::atof(le_text.c_str());
      sample.buckets.emplace_back(
          le, std::strtoull(rest.data() + space + 1, nullptr, 10));
    } else if (line.substr(0, kCount.size()) == kCount) {
      sample.latency_count = std::strtoull(line.data() + kCount.size(), nullptr, 10);
      sample.ok = true;
    } else if (line.substr(0, kQueries.size()) == kQueries) {
      sample.queries_total = std::strtoull(line.data() + kQueries.size(), nullptr, 10);
    }
  }
  return sample;
}

/// Percentile over the *delta* between two cumulative-histogram samples, in
/// microseconds: what this run alone did to the server, independent of any
/// traffic the daemon saw before the run started.
std::uint64_t delta_percentile_micros(const MetricsSample& before,
                                      const MetricsSample& after, double p) {
  if (!before.ok || !after.ok || before.buckets.size() != after.buckets.size()) {
    return 0;
  }
  const std::uint64_t total = after.latency_count - before.latency_count;
  if (total == 0) return 0;
  const double target = static_cast<double>(total) * p / 100.0;
  double last_finite = 0;
  for (std::size_t i = 0; i < after.buckets.size(); ++i) {
    const double le = after.buckets[i].first;
    if (std::isfinite(le)) last_finite = le;
    const std::uint64_t cumulative =
        after.buckets[i].second - before.buckets[i].second;
    if (static_cast<double>(cumulative) >= target) {
      return static_cast<std::uint64_t>(
          std::llround((std::isfinite(le) ? le : last_finite) * 1e6));
    }
  }
  return static_cast<std::uint64_t>(std::llround(last_finite * 1e6));
}

struct WorkerResult {
  std::uint64_t responses = 0;
  std::uint64_t errors = 0;      // 'F' responses
  std::uint64_t not_found = 0;   // 'D' responses
  std::uint64_t wrong = 0;       // --expect-file: oracle-query byte mismatches
  std::uint64_t checked = 0;     // --expect-file: oracle-query responses seen
  std::uint64_t reconnects = 0;  // fault-churn: abrupt drop + reopen cycles
  std::uint64_t half_lines = 0;  // fault-churn: unterminated lines left behind
  std::vector<std::uint64_t> latencies_us;  // client-observed, send→receive
  bool failed = false;           // connect/protocol failure
};

/// Trace-id stream for --trace: splitmix64 per worker, never 0 (a zero id
/// means "no trace context" to the daemon).
std::uint64_t next_trace_id(rpslyzer::util::SplitMix64& stream) {
  const std::uint64_t z = stream.next();
  return z == 0 ? 1 : z;
}

std::string with_trace_prefix(std::uint64_t id, const std::string& query) {
  char prefix[32];
  std::snprintf(prefix, sizeof(prefix), "!id %016llx ",
                static_cast<unsigned long long>(id));
  return prefix + query;
}

/// Sorted-sample percentile (nearest-rank), in microseconds.
std::uint64_t sample_percentile(const std::vector<std::uint64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  const double rank = p / 100.0 * static_cast<double>(sorted.size());
  std::size_t index = static_cast<std::size_t>(std::ceil(rank));
  if (index > 0) --index;
  if (index >= sorted.size()) index = sorted.size() - 1;
  return sorted[index];
}

/// Score one response against the oracle when it answers queries[0].
/// `query_index` is the position in the mix that this response answers —
/// derivable because responses arrive in request order.
void check_expected(const Options& options, std::size_t query_index,
                    const std::string& response, WorkerResult& result) {
  if (options.expect_file.empty() || query_index != 0) return;
  ++result.checked;
  if (response != options.expect_body) ++result.wrong;
}

void run_worker(const Options& options, Clock::time_point deadline,
                std::uint64_t seed, WorkerResult& result) {
  std::string error;
  auto client = Client::connect(options.host, options.port, &error);
  if (!client) {
    std::fprintf(stderr, "loadgen: %s\n", error.c_str());
    result.failed = true;
    return;
  }
  std::size_t cursor = 0;
  std::size_t read_cursor = 0;  // mix position of the next response to arrive
  std::uint64_t sent_total = 0;
  rpslyzer::util::SplitMix64 trace_state(seed);
  std::vector<Clock::time_point> send_times(options.pipeline);
  const bool timed = options.duration_ms > 0;
  while (true) {
    if (timed) {
      if (Clock::now() >= deadline) break;
    } else if (sent_total >= options.requests) {
      break;
    }
    std::size_t batch = options.pipeline;
    if (!timed) batch = std::min<std::uint64_t>(batch, options.requests - sent_total);
    for (std::size_t i = 0; i < batch; ++i) {
      send_times[i] = Clock::now();
      const std::string& query = options.queries[cursor];
      const bool sent =
          options.trace
              ? client->send_line(with_trace_prefix(next_trace_id(trace_state), query))
              : client->send_line(query);
      if (!sent) {
        result.failed = true;
        return;
      }
      cursor = (cursor + 1) % options.queries.size();
    }
    sent_total += batch;
    for (std::size_t i = 0; i < batch; ++i) {
      auto response = client->read_response();
      if (!response) {
        result.failed = true;
        return;
      }
      // Send→receive latency, pipeline queueing included: the client's view
      // of this query, as opposed to the server's service-time histogram.
      result.latencies_us.push_back(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                send_times[i])
              .count()));
      ++result.responses;
      if (!response->empty() && response->front() == 'F') ++result.errors;
      if (*response == "D\n") ++result.not_found;
      check_expected(options, read_cursor, *response, result);
      read_cursor = (read_cursor + 1) % options.queries.size();
    }
  }
  client->send_line("!q");
}

/// Hostile-client mode: connect, issue a few real pipelined queries, then
/// misbehave — leave a half-written line, or vanish mid-pipeline without
/// `!q` — and reconnect. A connect failure is the only thing that counts as
/// the *server* failing; everything else is the worker being rude on purpose.
void run_churn_worker(const Options& options, Clock::time_point deadline,
                      std::uint64_t seed, WorkerResult& result) {
  // splitmix64: each worker gets its own deterministic misbehaviour stream.
  auto next_random = [stream = rpslyzer::util::SplitMix64(seed)]() mutable {
    return stream.next();
  };
  std::size_t cursor = 0;
  while (Clock::now() < deadline) {
    std::string error;
    auto client = Client::connect(options.host, options.port, &error);
    if (!client) {
      std::fprintf(stderr, "loadgen: %s\n", error.c_str());
      result.failed = true;
      return;
    }
    // A short burst of honest pipelined traffic...
    const std::size_t burst = 1 + next_random() % options.pipeline;
    const std::size_t burst_start = cursor;
    std::size_t sent = 0;
    for (std::size_t i = 0; i < burst; ++i) {
      if (!client->send_line(options.queries[cursor])) break;
      cursor = (cursor + 1) % options.queries.size();
      ++sent;
    }
    // ...of which we may only read a random prefix before misbehaving.
    const std::size_t reads = next_random() % (sent + 1);
    for (std::size_t i = 0; i < reads && Clock::now() < deadline; ++i) {
      auto response = client->read_response();
      if (!response) break;  // server may have dropped us; that's the game
      ++result.responses;
      if (!response->empty() && response->front() == 'F') ++result.errors;
      if (*response == "D\n") ++result.not_found;
      check_expected(options, (burst_start + i) % options.queries.size(), *response,
                     result);
    }
    switch (next_random() % 4) {
      case 0: {  // half-written line, then vanish
        const std::string& query = options.queries[cursor];
        client->send_raw(query.substr(0, std::max<std::size_t>(1, query.size() / 2)));
        ++result.half_lines;
        break;
      }
      case 1:  // polite goodbye (the control case)
        client->send_line("!q");
        break;
      default:  // abrupt close with responses still in flight
        break;
    }
    ++result.reconnects;  // Client destructor closes the socket abruptly
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto next_value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--host") {
      const char* v = next_value();
      if (!v) return usage();
      options.host = v;
    } else if (arg == "--port") {
      const char* v = next_value();
      if (!v) return usage();
      options.port = static_cast<std::uint16_t>(std::atoi(v));
    } else if (arg == "--connections") {
      const char* v = next_value();
      if (!v) return usage();
      options.connections = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--pipeline") {
      const char* v = next_value();
      if (!v) return usage();
      options.pipeline = std::max<std::size_t>(1, static_cast<std::size_t>(std::atoll(v)));
    } else if (arg == "--requests") {
      const char* v = next_value();
      if (!v) return usage();
      options.requests = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--duration-ms") {
      const char* v = next_value();
      if (!v) return usage();
      options.duration_ms = std::atoll(v);
    } else if (arg == "--metrics-ms") {
      const char* v = next_value();
      if (!v) return usage();
      options.metrics_ms = std::atoll(v);
    } else if (arg == "--target-qps") {
      const char* v = next_value();
      if (!v) return usage();
      options.target_qps = std::atof(v);
    } else if (arg == "--divergence-ratio") {
      const char* v = next_value();
      if (!v) return usage();
      options.divergence_ratio = std::atof(v);
    } else if (arg == "--trace") {
      options.trace = true;
    } else if (arg == "--expect-file") {
      const char* v = next_value();
      if (!v) return usage();
      options.expect_file = v;
    } else if (arg == "--fault-churn") {
      options.fault_churn = true;
    } else if (arg == "--json") {
      options.json = true;
    } else if (arg == "--stats") {
      options.stats = true;
    } else {
      options.queries.emplace_back(arg);
    }
  }
  if (options.port == 0 || options.queries.empty() || options.connections == 0) {
    return usage();
  }

  if (!options.expect_file.empty()) {
    std::FILE* f = std::fopen(options.expect_file.c_str(), "rb");
    if (!f) {
      std::fprintf(stderr, "loadgen: cannot read --expect-file %s\n",
                   options.expect_file.c_str());
      return 2;
    }
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      options.expect_body.append(buf, n);
    }
    std::fclose(f);
    if (options.expect_body.empty()) {
      std::fprintf(stderr, "loadgen: --expect-file %s is empty\n",
                   options.expect_file.c_str());
      return 2;
    }
  }

  // Churn mode is inherently time-boxed; give it a default window.
  if (options.fault_churn && options.duration_ms <= 0) options.duration_ms = 2000;

  // Metrics polling rides a side connection: one scrape before the workers
  // start, periodic scrapes during the run (for progress), one at the end.
  MetricsSample metrics_before;
  std::atomic<bool> poll_stop{false};
  std::thread poller;
  if (options.metrics_ms > 0) {
    metrics_before = scrape_metrics(options);
    if (!metrics_before.ok) {
      std::fprintf(stderr, "loadgen: cannot scrape !metrics from %s:%u\n",
                   options.host.c_str(), options.port);
    }
    poller = std::thread([&options, &poll_stop] {
      std::uint64_t last_queries = 0;
      auto last_when = Clock::now();
      bool first = true;
      while (!poll_stop.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(options.metrics_ms));
        if (poll_stop.load(std::memory_order_acquire)) break;
        const MetricsSample sample = scrape_metrics(options);
        if (!sample.ok) continue;
        const auto now = Clock::now();
        const double seconds = std::chrono::duration<double>(now - last_when).count();
        if (!first && seconds > 0) {
          const double interval_qps =
              static_cast<double>(sample.queries_total - last_queries) / seconds;
          std::fprintf(stderr, "loadgen: server queries=%llu (~%.0f q/s)\n",
                       static_cast<unsigned long long>(sample.queries_total),
                       interval_qps);
        }
        last_queries = sample.queries_total;
        last_when = now;
        first = false;
      }
    });
  }

  const auto start = Clock::now();
  const auto deadline = start + std::chrono::milliseconds(options.duration_ms);
  std::vector<WorkerResult> results(options.connections);
  std::vector<std::thread> workers;
  workers.reserve(options.connections);
  for (std::size_t i = 0; i < options.connections; ++i) {
    if (options.fault_churn) {
      workers.emplace_back(run_churn_worker, std::cref(options), deadline,
                           static_cast<std::uint64_t>(i + 1), std::ref(results[i]));
    } else {
      workers.emplace_back(run_worker, std::cref(options), deadline,
                           static_cast<std::uint64_t>(i + 1), std::ref(results[i]));
    }
  }
  for (auto& worker : workers) worker.join();
  const double seconds = std::chrono::duration<double>(Clock::now() - start).count();
  MetricsSample metrics_after;
  if (options.metrics_ms > 0) {
    poll_stop.store(true, std::memory_order_release);
    metrics_after = scrape_metrics(options);
    if (poller.joinable()) poller.join();
  }

  WorkerResult total;
  bool any_failed = false;
  std::vector<std::uint64_t> latencies;
  for (const auto& result : results) {
    total.responses += result.responses;
    total.errors += result.errors;
    total.not_found += result.not_found;
    total.wrong += result.wrong;
    total.checked += result.checked;
    total.reconnects += result.reconnects;
    total.half_lines += result.half_lines;
    latencies.insert(latencies.end(), result.latencies_us.begin(),
                     result.latencies_us.end());
    any_failed = any_failed || result.failed;
  }
  const double qps = seconds > 0 ? static_cast<double>(total.responses) / seconds : 0;
  std::sort(latencies.begin(), latencies.end());
  const std::uint64_t client_p50 = sample_percentile(latencies, 50);
  const std::uint64_t client_p99 = sample_percentile(latencies, 99);
  const std::uint64_t server_p99 =
      (options.metrics_ms > 0 && metrics_before.ok && metrics_after.ok)
          ? delta_percentile_micros(metrics_before, metrics_after, 99)
          : 0;
  const bool diverged = options.divergence_ratio > 0 && server_p99 > 0 &&
                        static_cast<double>(client_p99) >
                            options.divergence_ratio * static_cast<double>(server_p99);

  if (options.json) {
    std::printf("{\"tool\":\"loadgen\",\"connections\":%zu,\"pipeline\":%zu,"
                "\"responses\":%llu,\"errors\":%llu,\"not_found\":%llu,"
                "\"wrong\":%llu,\"checked\":%llu,"
                "\"reconnects\":%llu,\"half_lines\":%llu,"
                "\"client_p50_us\":%llu,\"client_p99_us\":%llu,"
                "\"server_p99_us\":%llu,\"diverged\":%s,"
                "\"seconds\":%.3f,\"qps\":%.0f,\"failed\":%s}\n",
                options.connections, options.pipeline,
                static_cast<unsigned long long>(total.responses),
                static_cast<unsigned long long>(total.errors),
                static_cast<unsigned long long>(total.not_found),
                static_cast<unsigned long long>(total.wrong),
                static_cast<unsigned long long>(total.checked),
                static_cast<unsigned long long>(total.reconnects),
                static_cast<unsigned long long>(total.half_lines),
                static_cast<unsigned long long>(client_p50),
                static_cast<unsigned long long>(client_p99),
                static_cast<unsigned long long>(server_p99),
                diverged ? "true" : "false", seconds, qps,
                any_failed ? "true" : "false");
  } else {
    std::printf("loadgen: %llu responses over %zu connections in %.3fs (%.0f q/s, "
                "%llu errors, %llu not-found)\n",
                static_cast<unsigned long long>(total.responses), options.connections,
                seconds, qps, static_cast<unsigned long long>(total.errors),
                static_cast<unsigned long long>(total.not_found));
    if (options.fault_churn) {
      std::printf("loadgen: fault-churn: %llu reconnects, %llu half-written lines\n",
                  static_cast<unsigned long long>(total.reconnects),
                  static_cast<unsigned long long>(total.half_lines));
    }
    if (!options.expect_file.empty()) {
      std::printf("loadgen: oracle: %llu responses checked, %llu wrong\n",
                  static_cast<unsigned long long>(total.checked),
                  static_cast<unsigned long long>(total.wrong));
    }
  }

  if (options.target_qps > 0) {
    std::printf("loadgen: achieved %.0f q/s of %.0f q/s target (%.1f%%)\n", qps,
                options.target_qps, 100.0 * qps / options.target_qps);
  }
  if (!latencies.empty() && !options.json) {
    std::printf("loadgen: client-observed latency: p50=%lluus p99=%lluus "
                "(%zu samples, pipeline queueing included)\n",
                static_cast<unsigned long long>(client_p50),
                static_cast<unsigned long long>(client_p99), latencies.size());
  }
  if (options.metrics_ms > 0 && metrics_before.ok && metrics_after.ok) {
    const std::uint64_t observed = metrics_after.latency_count - metrics_before.latency_count;
    std::printf("loadgen: server-side latency over this run: p50<=%lluus p99<=%lluus "
                "(%llu queries observed via !metrics)\n",
                static_cast<unsigned long long>(
                    delta_percentile_micros(metrics_before, metrics_after, 50)),
                static_cast<unsigned long long>(server_p99),
                static_cast<unsigned long long>(observed));
  }
  if (diverged) {
    // Deliberately non-fatal: divergence means the client spent its time
    // somewhere the server's histogram cannot see, which is a capacity or
    // queueing signal worth investigating, not a correctness failure.
    std::fprintf(stderr,
                 "loadgen: WARNING: client-observed p99 (%lluus) exceeds %gx the "
                 "server-side p99 (%lluus) — time is being lost outside the "
                 "server's service window\n",
                 static_cast<unsigned long long>(client_p99),
                 options.divergence_ratio,
                 static_cast<unsigned long long>(server_p99));
  }

  if (options.stats) {
    if (auto client = Client::connect(options.host, options.port)) {
      if (client->send_line("!stats")) {
        if (auto response = client->read_response()) {
          std::fwrite(response->data(), 1, response->size(), stdout);
        }
      }
      client->send_line("!q");
    }
  }
  // A wrong answer is a correctness failure even if every socket behaved.
  return (any_failed || total.wrong > 0) ? 1 : 0;
}
