#!/usr/bin/env bash
# End-to-end smoke test of the rpslyzer CLI: generate a corpus, then run
# every subcommand against it — including a live rpslyzerd round trip.
set -euo pipefail
CLI="$1"
LOADGEN="${2:-}"
DIR="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT

# NB: plain `grep X >/dev/null`, not `grep -q`: -q exits at the first match,
# which under pipefail turns a chatty writer into a SIGPIPE (exit 141) flake.
"$CLI" generate "$DIR" 0.1 7 | grep "wrote" >/dev/null
"$CLI" parse "$DIR" | grep "merged corpus" >/dev/null
"$CLI" export "$DIR" "$DIR/ir.json" | grep "exported" >/dev/null
test -s "$DIR/ir.json"
"$CLI" lint "$DIR" | grep "findings" >/dev/null || true   # exits 1 when findings exist
# Parallel sharded ingestion with tracing: the trace must record the
# per-shard parse spans, proving the load actually went through the pool.
"$CLI" load "$DIR" --threads 2 --shard-kb 4 --trace-out "$DIR/trace.json" \
  | grep "loaded" >/dev/null
grep -q '"irr.shard"' "$DIR/trace.json"
grep -q '"irr.parse"' "$DIR/trace.json"
"$CLI" verify "$DIR" | grep "checks from" >/dev/null
# Verify one concrete route: pick a line whose AS path has >= 2 hops
# (single-AS routes are the collector peer's own prefixes).
LINE="$(awk -F'|' 'split($2, a, " ") >= 2 {print; exit}' "$DIR/collector-0.dump")"
PREFIX="${LINE%%|*}"
ASPATH="${LINE#*|}"
"$CLI" report "$DIR" "$PREFIX" $ASPATH | grep -E "(Ok|Meh|Bad|Unrec|Skip)(Import|Export)" >/dev/null
# One-shot IRRd query against an origin that certainly has route objects.
ASN="$(awk '/^origin:/ {print $2; exit}' "$DIR"/*.db)"
"$CLI" query "$DIR" "!g$ASN" > "$DIR/oneshot.txt"
grep -q "^A" "$DIR/oneshot.txt"
"$CLI" query "$DIR" "!gAS4199999999" | grep -x "D" >/dev/null

# Query server: start on an ephemeral port, compare a daemon answer byte for
# byte with the one-shot result, push load through loadgen, then assert a
# clean SIGTERM shutdown.
"$CLI" serve "$DIR" --port 0 --threads 2 --stats-ms 0 > "$DIR/serve.log" 2>&1 &
SERVER_PID=$!
for _ in $(seq 1 100); do
  grep -q "listening" "$DIR/serve.log" 2>/dev/null && break
  sleep 0.1
done
PORT="$(sed -n 's/.*127\.0\.0\.1:\([0-9]*\).*/\1/p' "$DIR/serve.log" | head -1)"
test -n "$PORT"

exec 3<>"/dev/tcp/127.0.0.1/$PORT"
printf '!g%s\n!q\n' "$ASN" >&3
cat <&3 > "$DIR/daemon.txt"
exec 3<&- 3>&-
cmp "$DIR/daemon.txt" "$DIR/oneshot.txt"

if [ -n "$LOADGEN" ]; then
  "$LOADGEN" --port "$PORT" --connections 4 --pipeline 8 --requests 100 \
      --json "!g$ASN" "!stats" "!iAS-NOPE" | grep '"failed":false' >/dev/null
fi

kill -TERM "$SERVER_PID"
wait "$SERVER_PID"   # non-zero here means the daemon did not shut down cleanly
SERVER_PID=""
grep -q "shut down cleanly" "$DIR/serve.log"

# Snapshot persistence round-trip: compile the corpus once into a
# relocatable snapshot file, serve the file (no dumps in sight), and check
# the daemon's query and verify answers against the dump-backed results.
"$CLI" compile "$DIR" --out "$DIR/snap.rps" | grep "wrote" >/dev/null
test -s "$DIR/snap.rps"
"$CLI" serve --snapshot "$DIR/snap.rps" --port 0 --threads 2 --stats-ms 0 \
  > "$DIR/serve-snap.log" 2>&1 &
SERVER_PID=$!
for _ in $(seq 1 100); do
  grep -q "listening" "$DIR/serve-snap.log" 2>/dev/null && break
  sleep 0.1
done
PORT="$(sed -n 's/.*127\.0\.0\.1:\([0-9]*\).*/\1/p' "$DIR/serve-snap.log" | head -1)"
test -n "$PORT"

# !g from the mmap-served snapshot must be byte-identical to the one-shot
# answer computed from the dumps.
exec 3<>"/dev/tcp/127.0.0.1/$PORT"
printf '!g%s\n!q\n' "$ASN" >&3
cat <&3 > "$DIR/daemon-snap.txt"
exec 3<&- 3>&-
cmp "$DIR/daemon-snap.txt" "$DIR/oneshot.txt"

# !v against the snapshot answers (framed A response), and !stats names the
# snapshot file as the corpus source.
exec 3<>"/dev/tcp/127.0.0.1/$PORT"
printf '!v %s %s\n!stats\n!q\n' "$PREFIX" "$ASPATH" >&3
cat <&3 > "$DIR/daemon-verify.txt"
exec 3<&- 3>&-
grep -q "^A" "$DIR/daemon-verify.txt"
grep -q "source=file:" "$DIR/daemon-verify.txt"

kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
SERVER_PID=""
grep -q "shut down cleanly" "$DIR/serve-snap.log"

# A corrupt snapshot file must refuse to serve.
head -c 100 "$DIR/snap.rps" > "$DIR/snap-truncated.rps"
if "$CLI" serve --snapshot "$DIR/snap-truncated.rps" --port 0 >/dev/null 2>&1; then exit 1; fi

# Replication round trip: an origin publishes the corpus, an edge downloads
# and serves it, and the edge's answers are byte-identical to the one-shot
# result. NB: the port regex is anchored to the start of the listening line
# because an edge's own line embeds the ORIGIN's port in "corpus=repl:...".
ORIGIN_PID=""
EDGE_PID=""
repl_cleanup() {
  [ -n "$EDGE_PID" ] && kill "$EDGE_PID" 2>/dev/null || true
  [ -n "$ORIGIN_PID" ] && kill "$ORIGIN_PID" 2>/dev/null || true
  cleanup
}
trap repl_cleanup EXIT
"$CLI" serve "$DIR" --publish --port 0 --threads 2 --stats-ms 0 \
  > "$DIR/origin.log" 2>&1 &
ORIGIN_PID=$!
for _ in $(seq 1 100); do
  grep -q "listening" "$DIR/origin.log" 2>/dev/null && break
  sleep 0.1
done
OPORT="$(sed -n 's/^rpslyzerd listening on 127\.0\.0\.1:\([0-9]*\) .*/\1/p' "$DIR/origin.log" | head -1)"
test -n "$OPORT"
grep -q "publish" "$DIR/origin.log"

mkdir -p "$DIR/edge-state"
"$CLI" serve --origin "127.0.0.1:$OPORT" --repl-dir "$DIR/edge-state" \
  --edge-id smoke-edge --poll-ms 200 --heartbeat-ms 200 --port 0 --threads 2 \
  --stats-ms 0 > "$DIR/edge.log" 2>&1 &
EDGE_PID=$!
for _ in $(seq 1 150); do
  grep -q "listening" "$DIR/edge.log" 2>/dev/null && break
  sleep 0.1
done
EPORT="$(sed -n 's/^rpslyzerd listening on 127\.0\.0\.1:\([0-9]*\) .*/\1/p' "$DIR/edge.log" | head -1)"
test -n "$EPORT"
test "$EPORT" != "$OPORT"

# The edge serves the replicated generation byte-for-byte, and its !stats
# names the replicated snapshot as the corpus source.
exec 3<>"/dev/tcp/127.0.0.1/$EPORT"
printf '!g%s\n!stats\n!repl\n!q\n' "$ASN" >&3
cat <&3 > "$DIR/edge-answers.txt"
exec 3<&- 3>&-
head -c "$(wc -c < "$DIR/oneshot.txt")" "$DIR/edge-answers.txt" > "$DIR/edge-g.txt"
cmp "$DIR/edge-g.txt" "$DIR/oneshot.txt"
grep -q "source=repl:" "$DIR/edge-answers.txt"
grep -q "role: edge" "$DIR/edge-answers.txt"

# The origin's fleet page eventually lists the edge's heartbeat.
BEAT_SEEN=""
for _ in $(seq 1 50); do
  exec 3<>"/dev/tcp/127.0.0.1/$OPORT"
  printf '!repl\n!q\n' >&3
  cat <&3 > "$DIR/origin-repl.txt"
  exec 3<&- 3>&-
  if grep -q "edge: smoke-edge" "$DIR/origin-repl.txt"; then BEAT_SEEN=1; break; fi
  sleep 0.1
done
test -n "$BEAT_SEEN"
grep -q "role: origin" "$DIR/origin-repl.txt"

kill -TERM "$EDGE_PID"
wait "$EDGE_PID"
EDGE_PID=""
grep -q "shut down cleanly" "$DIR/edge.log"
kill -TERM "$ORIGIN_PID"
wait "$ORIGIN_PID"
ORIGIN_PID=""
grep -q "shut down cleanly" "$DIR/origin.log"

# Bad usage exits non-zero.
if "$CLI" nonsense >/dev/null 2>&1; then exit 1; fi
if "$CLI" serve >/dev/null 2>&1; then exit 1; fi
# A missing corpus dir must refuse to serve, not answer D to everything.
if "$CLI" serve "$DIR/nope" --port 0 >/dev/null 2>&1; then exit 1; fi
if "$CLI" query "$DIR/nope" '!gAS1' >/dev/null 2>&1; then exit 1; fi
echo "cli smoke ok"
