#!/usr/bin/env bash
# End-to-end smoke test of the rpslyzer CLI: generate a corpus, then run
# every subcommand against it.
set -euo pipefail
CLI="$1"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

"$CLI" generate "$DIR" 0.1 7 | grep -q "wrote"
"$CLI" parse "$DIR" | grep -q "merged corpus"
"$CLI" export "$DIR" "$DIR/ir.json" | grep -q "exported"
test -s "$DIR/ir.json"
"$CLI" lint "$DIR" | grep -q "findings" || true   # exits 1 when findings exist
"$CLI" verify "$DIR" | grep -q "checks from"
# Verify one concrete route: pick a line whose AS path has >= 2 hops
# (single-AS routes are the collector peer's own prefixes).
LINE="$(awk -F'|' 'split($2, a, " ") >= 2 {print; exit}' "$DIR/collector-0.dump")"
PREFIX="${LINE%%|*}"
ASPATH="${LINE#*|}"
"$CLI" report "$DIR" "$PREFIX" $ASPATH | grep -qE "(Ok|Meh|Bad|Unrec|Skip)(Import|Export)"
# Bad usage exits non-zero.
if "$CLI" nonsense >/dev/null 2>&1; then exit 1; fi
echo "cli smoke ok"
