// §3 performance claim: "RPSLyzer parses the 13 IRRs ... totaling 6.9 GiB
// of data, and exports the IR, all in under five minutes on an Apple M1."
// This bench measures parse and IR-export throughput on the synthetic dumps
// and extrapolates to the paper's corpus size.

#include <benchmark/benchmark.h>

#include "common.hpp"
#include "rpslyzer/irr/loader.hpp"
#include "rpslyzer/rpsl/object_lexer.hpp"

namespace {

using namespace rpslyzer;

const synth::InternetGenerator& generator() {
  static synth::InternetGenerator gen(
      [] {
        synth::SynthConfig config;
        config.scale = bench::scale_from_env();
        return config;
      }());
  return gen;
}

std::size_t total_bytes() {
  std::size_t bytes = 0;
  for (const auto& [name, text] : generator().irr_dumps()) bytes += text.size();
  return bytes;
}

void BM_ParseAllIrrs(benchmark::State& state) {
  const auto& dumps = generator().irr_dumps();
  std::size_t objects = 0;
  for (auto _ : state) {
    util::Diagnostics diag;
    ir::Ir merged;
    objects = 0;
    for (const auto& name : synth::irr_names()) {
      ir::Ir parsed = irr::parse_dump(dumps.at(name), name, diag);
      objects += parsed.object_count();
      irr::merge_into(merged, std::move(parsed));
    }
    benchmark::DoNotOptimize(merged.object_count());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * total_bytes()));
  state.counters["objects"] = static_cast<double>(objects);
  // google-benchmark reports bytes/second; compare against the paper's §3
  // claim by extrapolation: 6.9 GiB at the reported rate must stay under
  // five minutes (printed rate of ~25 MB/s suffices: 6.9 GiB / 25 MB/s ≈
  // 4.6 min single-threaded).
}
BENCHMARK(BM_ParseAllIrrs)->Unit(benchmark::kMillisecond);

void BM_ObjectLexOnly(benchmark::State& state) {
  const auto& dumps = generator().irr_dumps();
  for (auto _ : state) {
    util::Diagnostics diag;
    std::size_t n = 0;
    for (const auto& [name, text] : dumps) {
      n += rpsl::lex_objects(text, name, diag).size();
    }
    benchmark::DoNotOptimize(n);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * total_bytes()));
}
BENCHMARK(BM_ObjectLexOnly)->Unit(benchmark::kMillisecond);

void BM_ExportIrJson(benchmark::State& state) {
  util::Diagnostics diag;
  ir::Ir merged;
  for (const auto& name : synth::irr_names()) {
    irr::merge_into(merged,
                    irr::parse_dump(generator().irr_dumps().at(name), name, diag));
  }
  std::size_t bytes = 0;
  for (auto _ : state) {
    std::string text = json::dump(ir::to_json(merged));
    bytes = text.size();
    benchmark::DoNotOptimize(text.data());
  }
  state.counters["json_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_ExportIrJson)->Unit(benchmark::kMillisecond);

void BM_IndexBuild(benchmark::State& state) {
  util::Diagnostics diag;
  ir::Ir merged;
  for (const auto& name : synth::irr_names()) {
    irr::merge_into(merged,
                    irr::parse_dump(generator().irr_dumps().at(name), name, diag));
  }
  for (auto _ : state) {
    irr::Index index(merged);
    benchmark::DoNotOptimize(index.origins_of(100).size());
  }
}
BENCHMARK(BM_IndexBuild)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
