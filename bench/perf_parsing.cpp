// §3 performance claim: "RPSLyzer parses the 13 IRRs ... totaling 6.9 GiB
// of data, and exports the IR, all in under five minutes on an Apple M1."
// This bench measures parse and IR-export throughput on the synthetic dumps
// and extrapolates to the paper's corpus size. A custom main() additionally
// hand-times the sharded parallel parse at threads ∈ {1, 2, 4, 8} and emits
// BENCH_parsing.json (mirroring perf_metrics_overhead's BENCH_metrics.json):
// bytes/s and objects/s per thread count, speedup vs the serial reference,
// and a ≥2× speedup gate at 4 threads that only applies when the host
// actually has ≥4 hardware threads (single-core CI boxes report the numbers
// but cannot honestly gate on parallel speedup).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <thread>

#include "bench_meta.hpp"
#include "common.hpp"
#include "rpslyzer/irr/loader.hpp"
#include "rpslyzer/json/json.hpp"
#include "rpslyzer/rpsl/object_lexer.hpp"

namespace {

using namespace rpslyzer;

const synth::InternetGenerator& generator() {
  static synth::InternetGenerator gen(
      [] {
        synth::SynthConfig config;
        config.scale = bench::scale_from_env();
        return config;
      }());
  return gen;
}

std::size_t total_bytes() {
  std::size_t bytes = 0;
  for (const auto& [name, text] : generator().irr_dumps()) bytes += text.size();
  return bytes;
}

void BM_ParseAllIrrs(benchmark::State& state) {
  const auto& dumps = generator().irr_dumps();
  std::size_t objects = 0;
  for (auto _ : state) {
    util::Diagnostics diag;
    ir::Ir merged;
    objects = 0;
    for (const auto& name : synth::irr_names()) {
      ir::Ir parsed = irr::parse_dump(dumps.at(name), name, diag);
      objects += parsed.object_count();
      irr::merge_into(merged, std::move(parsed));
    }
    benchmark::DoNotOptimize(merged.object_count());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * total_bytes()));
  state.counters["objects_per_second"] = benchmark::Counter(
      static_cast<double>(state.iterations() * objects), benchmark::Counter::kIsRate);
  // google-benchmark reports bytes/second; compare against the paper's §3
  // claim by extrapolation: 6.9 GiB at the reported rate must stay under
  // five minutes (printed rate of ~25 MB/s suffices: 6.9 GiB / 25 MB/s ≈
  // 4.6 min single-threaded).
}
BENCHMARK(BM_ParseAllIrrs)->Unit(benchmark::kMillisecond);

// Sharded parallel parse of all 13 dumps at a given thread count. The
// result is byte-identical to BM_ParseAllIrrs (tests/parallel_loader_test
// proves it); only wall-clock should move.
void BM_ParseAllIrrsParallel(benchmark::State& state) {
  const auto& dumps = generator().irr_dumps();
  const unsigned threads = static_cast<unsigned>(state.range(0));
  std::size_t objects = 0;
  for (auto _ : state) {
    util::Diagnostics diag;
    ir::Ir merged;
    objects = 0;
    for (const auto& name : synth::irr_names()) {
      ir::Ir parsed =
          irr::parse_dump_parallel(dumps.at(name), name, diag, nullptr, threads);
      objects += parsed.object_count();
      irr::merge_into(merged, std::move(parsed));
    }
    benchmark::DoNotOptimize(merged.object_count());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * total_bytes()));
  state.counters["objects_per_second"] = benchmark::Counter(
      static_cast<double>(state.iterations() * objects), benchmark::Counter::kIsRate);
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_ParseAllIrrsParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_ObjectLexOnly(benchmark::State& state) {
  const auto& dumps = generator().irr_dumps();
  std::size_t objects = 0;
  for (auto _ : state) {
    util::Diagnostics diag;
    objects = 0;
    for (const auto& [name, text] : dumps) {
      objects += rpsl::lex_objects(text, name, diag).size();
    }
    benchmark::DoNotOptimize(objects);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * total_bytes()));
  state.counters["objects_per_second"] = benchmark::Counter(
      static_cast<double>(state.iterations() * objects), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ObjectLexOnly)->Unit(benchmark::kMillisecond);

void BM_ExportIrJson(benchmark::State& state) {
  util::Diagnostics diag;
  ir::Ir merged;
  for (const auto& name : synth::irr_names()) {
    irr::merge_into(merged,
                    irr::parse_dump(generator().irr_dumps().at(name), name, diag));
  }
  std::size_t bytes = 0;
  for (auto _ : state) {
    std::string text = json::dump(ir::to_json(merged));
    bytes = text.size();
    benchmark::DoNotOptimize(text.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * bytes));
  state.counters["json_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_ExportIrJson)->Unit(benchmark::kMillisecond);

void BM_IndexBuild(benchmark::State& state) {
  util::Diagnostics diag;
  ir::Ir merged;
  for (const auto& name : synth::irr_names()) {
    irr::merge_into(merged,
                    irr::parse_dump(generator().irr_dumps().at(name), name, diag));
  }
  for (auto _ : state) {
    irr::Index index(merged);
    benchmark::DoNotOptimize(index.origins_of(100).size());
  }
}
BENCHMARK(BM_IndexBuild)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Hand-timed threads sweep → BENCH_parsing.json. Min-over-reps wall time of
// the full 13-dump sharded parse, like perf_metrics_overhead: the JSON is a
// machine gate, not a human report.

struct SweepPoint {
  unsigned threads = 0;
  double seconds = 0.0;
  double bytes_per_second = 0.0;
  double objects_per_second = 0.0;
  double speedup = 1.0;
};

SweepPoint time_parse(unsigned threads, int repetitions) {
  const auto& dumps = generator().irr_dumps();
  SweepPoint point;
  point.threads = threads;
  point.seconds = 1e9;
  std::size_t objects = 0;
  for (int rep = 0; rep < repetitions; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    util::Diagnostics diag;
    ir::Ir merged;
    objects = 0;
    for (const auto& name : synth::irr_names()) {
      ir::Ir parsed =
          irr::parse_dump_parallel(dumps.at(name), name, diag, nullptr, threads);
      objects += parsed.object_count();
      irr::merge_into(merged, std::move(parsed));
    }
    benchmark::DoNotOptimize(merged.object_count());
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    if (elapsed.count() < point.seconds) point.seconds = elapsed.count();
  }
  point.bytes_per_second = static_cast<double>(total_bytes()) / point.seconds;
  point.objects_per_second = static_cast<double>(objects) / point.seconds;
  return point;
}

int write_parsing_json() {
  const unsigned hardware = bench::hardware_threads();
  constexpr int kRepetitions = 3;
  std::vector<SweepPoint> sweep;
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    sweep.push_back(time_parse(threads, kRepetitions));
    sweep.back().speedup = sweep.front().seconds / sweep.back().seconds;
  }

  // Gate: ≥2× at 4 threads vs the serial reference — only meaningful when
  // the host has ≥4 hardware threads. Single-core boxes record the sweep
  // (speedups ≈ 1 or below from sharding overhead) without gating on it.
  const bool gate_applicable = hardware >= 4;
  const double speedup_at_4 = sweep[2].speedup;
  const bool pass = !gate_applicable || speedup_at_4 >= 2.0;

  json::Object doc;
  doc["bench"] = "parsing";
  doc["scale"] = bench::scale_from_env();
  doc["corpus_bytes"] = static_cast<std::int64_t>(total_bytes());
  bench::add_host_metadata(doc);
  doc["repetitions"] = kRepetitions;
  json::Array points;
  for (const SweepPoint& point : sweep) {
    json::Object row;
    row["threads"] = static_cast<std::int64_t>(point.threads);
    row["seconds"] = point.seconds;
    row["bytes_per_second"] = point.bytes_per_second;
    // Normalized per worker thread: the honest cross-host comparison (a
    // 1-core box and a 16-core box report comparable numbers here).
    row["bytes_per_second_per_core"] = point.bytes_per_second / point.threads;
    row["objects_per_second"] = point.objects_per_second;
    row["speedup_vs_serial"] = point.speedup;
    points.emplace_back(std::move(row));
  }
  doc["sweep"] = points;
  doc["single_thread_bytes_per_second"] = sweep[0].bytes_per_second;
  doc["gate_speedup_at_4_threads"] = 2.0;
  doc["gate_applicable"] = gate_applicable;
  doc["gate"] = bench::gate_marker(gate_applicable);
  doc["speedup_at_4_threads"] = speedup_at_4;
  doc["pass"] = pass;
  const std::string text = json::dump_pretty(json::Value(doc)) + "\n";

  std::FILE* out = std::fopen("BENCH_parsing.json", "wb");
  if (out != nullptr) {
    std::fwrite(text.data(), 1, text.size(), out);
    std::fclose(out);
  }
  std::fputs(text.c_str(), stdout);
  std::printf("perf_parsing threads sweep: %s\n",
              !gate_applicable ? bench::gate_marker(false).c_str()
              : pass           ? "PASS"
                               : "FAIL");
  return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return write_parsing_json();
}
