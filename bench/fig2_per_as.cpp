// Regenerates Figure 2: route verification status for each AS (stacked
// composition, ASes ordered by correctness), plus the §5.2 per-AS claims.

#include <cstdio>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "common.hpp"
#include "rpslyzer/report/render.hpp"

namespace {
/// Write a figure's CSV series when RPSLYZER_CSV_DIR is set.
void maybe_write_csv(const char* name, std::vector<rpslyzer::report::StatusCounts> entities) {
  const char* dir = std::getenv("RPSLYZER_CSV_DIR");
  if (dir == nullptr) return;
  std::filesystem::create_directories(dir);
  std::ofstream out(std::filesystem::path(dir) / name, std::ios::binary);
  out << rpslyzer::report::to_csv(std::move(entities));
  std::printf("wrote %s/%s\n", dir, name);
}
}  // namespace


int main() {
  using namespace rpslyzer;
  bench::World world;
  bench::print_header("Figure 2: route verification status for each AS", world);

  report::Aggregator agg = world.verify_all();
  report::Fig2Summary summary = report::Fig2Summary::compute(agg);

  bench::print_row("ASes with one status for all checks", "74.4%",
                   bench::pct(summary.all_same_status, summary.ases));
  bench::print_row("... 100% verified", "14.2%",
                   bench::pct(summary.all_verified, summary.ases));
  bench::print_row("... 100% unrecorded", "51.6%",
                   bench::pct(summary.all_unrecorded, summary.ases));
  bench::print_row("... 100% relaxed", "0.34%",
                   bench::pct(summary.all_relaxed, summary.ases));
  bench::print_row("... 100% safelisted", "6.9%",
                   bench::pct(summary.all_safelisted, summary.ases));
  bench::print_row("ASes with any skipped check", "0.03%",
                   bench::pct(summary.any_skip, summary.ases));
  bench::print_row("ASes with any unrecorded check", "54.9%",
                   bench::pct(summary.any_unrecorded, summary.ases));

  // "Excluding ASes with skipped or unrecorded cases, we find more ASes
  // with verified (76.3%) or special-cased (62.5%) routes than ASes with
  // unverified routes (23.1%)."
  std::size_t covered = 0;
  std::size_t with_verified = 0;
  std::size_t with_special = 0;
  std::size_t with_unverified = 0;
  for (const auto& [asn, counts] : agg.as_combined()) {
    if (counts.of(verify::Status::kSkip) > 0 ||
        counts.of(verify::Status::kUnrecorded) > 0) {
      continue;
    }
    ++covered;
    if (counts.of(verify::Status::kVerified) > 0) ++with_verified;
    if (counts.of(verify::Status::kRelaxed) + counts.of(verify::Status::kSafelisted) > 0) {
      ++with_special;
    }
    if (counts.of(verify::Status::kUnverified) > 0) ++with_unverified;
  }
  bench::print_row("covered ASes with verified routes", "76.3%",
                   bench::pct(with_verified, covered));
  bench::print_row("covered ASes with special-cased routes", "62.5%",
                   bench::pct(with_special, covered));
  bench::print_row("covered ASes with unverified routes", "23.1%",
                   bench::pct(with_unverified, covered));

  std::printf("\nstacked per-AS composition (x: ASes ordered by correctness):\n");
  std::vector<report::StatusCounts> per_as;
  for (const auto& [asn, counts] : agg.as_combined()) per_as.push_back(counts);
  std::printf("%s", report::render_stacked(per_as).c_str());
  maybe_write_csv("fig2_per_as.csv", per_as);
  return 0;
}
