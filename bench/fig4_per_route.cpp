// Regenerates Figure 4: verification status for all hops in BGP routes,
// plus the first-hop analysis from §5.2.

#include <cstdio>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "common.hpp"
#include "rpslyzer/report/render.hpp"

namespace {
/// Write a figure's CSV series when RPSLYZER_CSV_DIR is set.
void maybe_write_csv(const char* name, std::vector<rpslyzer::report::StatusCounts> entities) {
  const char* dir = std::getenv("RPSLYZER_CSV_DIR");
  if (dir == nullptr) return;
  std::filesystem::create_directories(dir);
  std::ofstream out(std::filesystem::path(dir) / name, std::ios::binary);
  out << rpslyzer::report::to_csv(std::move(entities));
  std::printf("wrote %s/%s\n", dir, name);
}
}  // namespace


int main() {
  using namespace rpslyzer;
  bench::World world;
  bench::print_header("Figure 4: verification status for all hops in BGP routes", world);

  report::Aggregator agg = world.verify_all();
  report::Fig4Summary summary = report::Fig4Summary::compute(agg);

  bench::print_row("routes with one status across all hops", "6.6%",
                   bench::pct(summary.single_status, summary.routes));
  bench::print_row("... all verified", "1.6%",
                   bench::pct(summary.single_verified, summary.routes));
  bench::print_row("... all unrecorded", "3.0%",
                   bench::pct(summary.single_unrecorded, summary.routes));
  bench::print_row("... all unverified", "1.6%",
                   bench::pct(summary.single_unverified, summary.routes));

  // Mix statistics: "Most AS-paths have a mix of two or three statuses."
  std::size_t with_two_or_three = 0;
  for (const auto& counts : agg.routes()) {
    int statuses = 0;
    for (std::size_t s = 0; s < report::kStatusCount; ++s) {
      if (counts.counts[s] > 0) ++statuses;
    }
    if (statuses == 2 || statuses == 3) ++with_two_or_three;
  }
  bench::print_row("routes mixing two or three statuses", "most",
                   bench::pct(with_two_or_three, summary.routes));

  // First-hop status (the route-leak/hijack filtering discussion): fewer
  // unverified, more safelisted than all-hops.
  report::StatusCounts all_hops;
  for (const auto& counts : agg.routes()) all_hops.merge(counts);
  std::printf("\nall hops:   %s\n", report::render_composition(all_hops).c_str());
  std::printf("first hops: %s\n", report::render_composition(agg.first_hops()).c_str());
  const double unverified_all =
      double(all_hops.of(verify::Status::kUnverified)) / double(all_hops.total());
  const double unverified_first = double(agg.first_hops().of(verify::Status::kUnverified)) /
                                  double(agg.first_hops().total());
  bench::print_row("first hops less unverified than all hops", "yes (slightly)",
                   unverified_first <= unverified_all ? "yes" : "NO");

  std::printf("\nstacked per-route composition (x: routes by correctness):\n");
  std::printf("%s", report::render_stacked(agg.routes(), 72, 12).c_str());
  maybe_write_csv("fig4_per_route.csv", agg.routes());
  return 0;
}
