// Regenerates Table 1: per-IRR dump sizes and object/attribute counts.
// Absolute counts scale with the synthetic corpus; the reproduced shape is
// the *relative* distribution (RIPE/APNIC dominate aut-nums, RADB/APNIC
// dominate route objects, LACNIC has zero import/export rules).

#include <cstdio>

#include "common.hpp"

int main() {
  using namespace rpslyzer;
  bench::World world;
  bench::print_header("Table 1: IRRs used, grouped and ordered by priority", world);

  // Paper totals for the right-hand comparison column.
  struct PaperRow {
    const char* irr;
    std::size_t aut_num, route, imports, exports;
  };
  static const PaperRow kPaper[] = {
      {"APNIC", 20680, 988665, 15615, 15905}, {"AFRINIC", 2314, 105835, 331, 340},
      {"ARIN", 3047, 94365, 6940, 7359},      {"LACNIC", 1847, 12759, 0, 0},
      {"RIPE", 38573, 533159, 368008, 357317},{"IDNIC", 2276, 6114, 3918, 3938},
      {"JPIRR", 455, 14013, 305, 307},        {"RADB", 9471, 1619366, 12655, 12834},
      {"NTTCOM", 549, 375836, 921, 1016},     {"LEVEL3", 300, 79152, 6228, 5826},
      {"TC", 4205, 25333, 3911, 3964},        {"REACH", 2, 20238, 3, 3},
      {"ALTDB", 1680, 29517, 3241, 3143},
  };

  std::printf("%-9s | %27s | %27s\n", "", "paper (aut-num/route/imp/exp)",
              "measured (aut-num/route/imp/exp)");
  irr::IrrCounts totals;
  for (std::size_t i = 0; i < world.lyzer.irr_counts().size(); ++i) {
    const auto& c = world.lyzer.irr_counts()[i];
    const auto& p = kPaper[i];
    std::printf("%-9s | %7zu %9zu %7zu %7zu | %7zu %9zu %7zu %7zu\n", c.name.c_str(),
                p.aut_num, p.route, p.imports, p.exports, c.aut_nums, c.routes, c.imports,
                c.exports);
    totals.aut_nums += c.aut_nums;
    totals.routes += c.routes;
    totals.imports += c.imports;
    totals.exports += c.exports;
    totals.bytes += c.bytes;
  }
  std::printf("%-9s | %7zu %9zu %7zu %7zu | %7zu %9zu %7zu %7zu\n", "Total", 78701ul,
              3904352ul, 416312ul, 405895ul, totals.aut_nums, totals.routes, totals.imports,
              totals.exports);
  std::printf("\ntotal dump bytes: %zu; unique (prefix, origin) pairs after merge: %zu\n",
              totals.bytes, world.lyzer.ir().routes.size());
  std::printf("invariant checks: LACNIC imports+exports == %zu (paper: 0)\n",
              world.lyzer.irr_counts()[3].imports + world.lyzer.irr_counts()[3].exports);
  return 0;
}
