// §5 verification throughput: the paper checks 779M route announcements
// against the compiled policies of 13 IRRs. This bench measures routes/s
// through both verification backends on the synthetic corpus — the
// interpreted evaluator (walks ir::Rule trees and flattens sets through
// the index's lazy memo) and the CompiledPolicySnapshot (pre-flattened
// sets, pre-composed range-op intervals, pre-lowered AS-path NFAs, flat
// rule arrays with a plain-ASN peer fast reject). A custom main()
// hand-times both single-threaded, sweeps the snapshot path across
// threads ∈ {1, 2, 4, 8}, and emits BENCH_verify.json (mirroring
// perf_parsing's BENCH_parsing.json) with a ≥2× single-thread
// snapshot-vs-interpreted speedup gate: compiling policies once must pay
// for itself on every route thereafter.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <thread>

#include "bench_meta.hpp"
#include "common.hpp"
#include "rpslyzer/json/json.hpp"
#include "rpslyzer/verify/parallel.hpp"

namespace {

using namespace rpslyzer;

const bench::World& world() {
  static bench::World w;
  return w;
}

const std::vector<bgp::Route>& routes() {
  static std::vector<bgp::Route> all = world().all_routes();
  return all;
}

void BM_VerifyInterpreted(benchmark::State& state) {
  const auto& w = world();
  const auto& rs = routes();
  w.lyzer.index().prewarm();  // flattening is a pure read during timing
  std::size_t checks = 0;
  for (auto _ : state) {
    verify::VerifyOptions options;
    options.use_snapshot = false;
    verify::Verifier verifier(w.lyzer.index(), w.lyzer.relations(), options);
    checks = 0;
    for (const auto& route : rs) checks += verifier.verify_route(route).size();
    benchmark::DoNotOptimize(checks);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * rs.size()));
  state.counters["hop_checks"] = static_cast<double>(checks);
}
BENCHMARK(BM_VerifyInterpreted)->Unit(benchmark::kMillisecond);

void BM_VerifySnapshot(benchmark::State& state) {
  const auto& w = world();
  const auto& rs = routes();
  auto snapshot = w.lyzer.snapshot();  // built (and memoized) outside timing
  std::size_t checks = 0;
  for (auto _ : state) {
    verify::Verifier verifier(snapshot);
    checks = 0;
    for (const auto& route : rs) checks += verifier.verify_route(route).size();
    benchmark::DoNotOptimize(checks);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * rs.size()));
  state.counters["hop_checks"] = static_cast<double>(checks);
}
BENCHMARK(BM_VerifySnapshot)->Unit(benchmark::kMillisecond);

void BM_VerifySnapshotParallel(benchmark::State& state) {
  const auto& w = world();
  const auto& rs = routes();
  auto snapshot = w.lyzer.snapshot();
  const unsigned threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    auto results = verify::verify_routes_parallel(snapshot, rs, {}, threads);
    benchmark::DoNotOptimize(results.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * rs.size()));
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_VerifySnapshotParallel)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Hand-timed gate → BENCH_verify.json. Min-over-reps wall time, like
// perf_parsing: the JSON is a machine gate, not a human report.

constexpr int kRepetitions = 3;

double time_interpreted_once() {
  const auto& w = world();
  const auto& rs = routes();
  double best = 1e9;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    verify::VerifyOptions options;
    options.use_snapshot = false;
    verify::Verifier verifier(w.lyzer.index(), w.lyzer.relations(), options);
    std::size_t checks = 0;
    for (const auto& route : rs) checks += verifier.verify_route(route).size();
    benchmark::DoNotOptimize(checks);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    if (elapsed.count() < best) best = elapsed.count();
  }
  return best;
}

double time_snapshot(unsigned threads) {
  const auto& w = world();
  const auto& rs = routes();
  auto snapshot = w.lyzer.snapshot();
  double best = 1e9;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    if (threads == 1) {
      verify::Verifier verifier(snapshot);
      std::size_t checks = 0;
      for (const auto& route : rs) checks += verifier.verify_route(route).size();
      benchmark::DoNotOptimize(checks);
    } else {
      auto results = verify::verify_routes_parallel(snapshot, rs, {}, threads);
      benchmark::DoNotOptimize(results.size());
    }
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    if (elapsed.count() < best) best = elapsed.count();
  }
  return best;
}

int write_verify_json() {
  const auto& rs = routes();
  const double route_count = static_cast<double>(rs.size());

  world().lyzer.index().prewarm();
  world().lyzer.snapshot();  // pay the one-time build before any stopwatch
  const double interpreted_seconds = time_interpreted_once();
  const double snapshot_seconds = time_snapshot(1);
  const double speedup = interpreted_seconds / snapshot_seconds;
  // The snapshot exists to be compiled once and consulted per route: if it
  // cannot beat tree-walking twice over, the lowering is not earning its
  // complexity. On starved CI hosts (<4 hardware threads) the interpreted
  // baseline and the snapshot run contend with each other and the ratio is
  // noise — record it, warn, but do not fail the build over it.
  const bool enforced = bench::hardware_threads() >= 4;
  const bool pass = speedup >= 2.0 || !enforced;

  json::Object doc;
  doc["bench"] = "verify";
  doc["scale"] = bench::scale_from_env();
  doc["routes"] = static_cast<std::int64_t>(rs.size());
  bench::add_host_metadata(doc);
  doc["repetitions"] = kRepetitions;
  doc["interpreted_seconds"] = interpreted_seconds;
  doc["interpreted_routes_per_second"] = route_count / interpreted_seconds;
  doc["snapshot_seconds"] = snapshot_seconds;
  doc["snapshot_routes_per_second"] = route_count / snapshot_seconds;
  doc["snapshot_speedup_vs_interpreted"] = speedup;

  json::Array sweep;
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    const double seconds = threads == 1 ? snapshot_seconds : time_snapshot(threads);
    json::Object row;
    row["threads"] = static_cast<std::int64_t>(threads);
    row["seconds"] = seconds;
    row["routes_per_second"] = route_count / seconds;
    row["routes_per_second_per_core"] = route_count / seconds / threads;
    row["speedup_vs_single"] = snapshot_seconds / seconds;
    sweep.emplace_back(std::move(row));
  }
  doc["sweep"] = sweep;
  doc["gate_single_thread_speedup"] = 2.0;
  doc["gate"] = bench::gate_marker(enforced);
  doc["pass"] = pass;
  const std::string text = json::dump_pretty(json::Value(doc)) + "\n";

  std::FILE* out = std::fopen("BENCH_verify.json", "wb");
  if (out != nullptr) {
    std::fwrite(text.data(), 1, text.size(), out);
    std::fclose(out);
  }
  std::fputs(text.c_str(), stdout);
  if (!enforced && speedup < 2.0) {
    std::printf("perf_verify snapshot-vs-interpreted: WARN %.2fx < 2x "
                "(gate skipped: %u hardware threads)\n",
                speedup, bench::hardware_threads());
  } else {
    std::printf("perf_verify snapshot-vs-interpreted: %s\n", pass ? "PASS" : "FAIL");
  }
  return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return write_verify_json();
}
