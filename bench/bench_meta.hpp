#pragma once
// Host/toolchain provenance stamped into every BENCH_*.json: a throughput
// or speedup number is meaningless next to one measured on a different core
// count, compiler, or build type, so each writer records all three. Header
// only — perf_metrics_overhead links rpslyzer_json but not bench_common.

#include <algorithm>
#include <string>
#include <thread>

#include "rpslyzer/json/json.hpp"

namespace rpslyzer::bench {

inline unsigned hardware_threads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

inline void add_host_metadata(json::Object& doc) {
  doc["hardware_threads"] = static_cast<std::int64_t>(hardware_threads());
#if defined(__clang__)
  doc["compiler"] = std::string("clang ") + __VERSION__;
#elif defined(__GNUC__)
  doc["compiler"] = std::string("gcc ") + __VERSION__;
#else
  doc["compiler"] = "unknown";
#endif
#if defined(NDEBUG)
  doc["build_type"] = "release";
#else
  doc["build_type"] = "debug";
#endif
}

/// Gate marker stamped into every BENCH_*.json next to the measured ratio:
/// "enforced" when the threshold fails the build, or an explicit
/// "warn (N cores)" when the host is too starved to gate honestly — the
/// ratio is still recorded and printed, it just cannot fail the run. The
/// explicit form keeps a green run on a 1-core host from being mistaken
/// for a measured pass.
inline std::string gate_marker(bool enforced) {
  if (enforced) return "enforced";
  return "warn (" + std::to_string(hardware_threads()) + " cores)";
}

}  // namespace rpslyzer::bench
