#pragma once
// Host/toolchain provenance stamped into every BENCH_*.json: a throughput
// or speedup number is meaningless next to one measured on a different core
// count, compiler, or build type, so each writer records all three. Header
// only — perf_metrics_overhead links rpslyzer_json but not bench_common.

#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "rpslyzer/json/json.hpp"

// Total operator-new calls so far, counted by bench/alloc_probe.cpp. Weak:
// binaries that do not link the probe (perf_metrics_overhead links only
// rpslyzer_json) resolve it to null and record allocations = -1 ("not
// instrumented") instead of failing to link.
extern "C" std::uint64_t rpslyzer_bench_alloc_count() __attribute__((weak));

namespace rpslyzer::bench {

inline unsigned hardware_threads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

/// Peak resident set size of this process in KiB, or 0 when the platform
/// offers no getrusage. Stamped into BENCH_*.json: a throughput number from
/// a run that also doubled its footprint is a regression, not a win.
inline std::int64_t peak_rss_kb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::int64_t>(usage.ru_maxrss / 1024);  // bytes on macOS
#else
  return static_cast<std::int64_t>(usage.ru_maxrss);  // KiB on Linux
#endif
#else
  return 0;
#endif
}

/// Heap allocation count so far, or -1 when alloc_probe is not linked in.
inline std::int64_t allocation_count() {
  if (rpslyzer_bench_alloc_count == nullptr) return -1;
  return static_cast<std::int64_t>(rpslyzer_bench_alloc_count());
}

inline void add_host_metadata(json::Object& doc) {
  doc["hardware_threads"] = static_cast<std::int64_t>(hardware_threads());
  doc["peak_rss_kb"] = peak_rss_kb();
  doc["allocations"] = allocation_count();
#if defined(__clang__)
  doc["compiler"] = std::string("clang ") + __VERSION__;
#elif defined(__GNUC__)
  doc["compiler"] = std::string("gcc ") + __VERSION__;
#else
  doc["compiler"] = "unknown";
#endif
#if defined(NDEBUG)
  doc["build_type"] = "release";
#else
  doc["build_type"] = "debug";
#endif
}

/// Gate marker stamped into every BENCH_*.json next to the measured ratio:
/// "enforced" when the threshold fails the build, or an explicit
/// "warn (N cores)" when the host is too starved to gate honestly — the
/// ratio is still recorded and printed, it just cannot fail the run. The
/// explicit form keeps a green run on a 1-core host from being mistaken
/// for a measured pass.
inline std::string gate_marker(bool enforced) {
  if (enforced) return "enforced";
  return "warn (" + std::to_string(hardware_threads()) + " cores)";
}

}  // namespace rpslyzer::bench
