// perf_metrics_overhead — proves the telemetry layer's hot-path claims.
//
// Hand-rolled timing (no google-benchmark: the numbers feed a JSON gate, not
// a human report). Each primitive is timed as the minimum mean-ns/op over
// several repetitions of a large batch, which filters scheduler noise while
// staying honest about the steady-state cost.
//
// Emits BENCH_metrics.json in the working directory and exits non-zero if
// the budget is blown:
//   * disabled counter inc / disabled span:   < 5 ns/op
//   * enabled counter inc:                    < 20 ns/op
// (enabled histogram/span numbers are reported for trend tracking but not
// gated — they are off the per-query fast path).

#include <cstdint>
#include <cstdio>
#include <string>

#include <chrono>

#include "bench_meta.hpp"
#include "rpslyzer/json/json.hpp"
#include "rpslyzer/obs/log.hpp"
#include "rpslyzer/obs/metrics.hpp"
#include "rpslyzer/obs/trace.hpp"

namespace {

using Clock = std::chrono::steady_clock;

/// Defeat dead-code elimination without perturbing the measured loop.
template <typename T>
inline void do_not_optimize(T const& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

constexpr std::uint64_t kOpsPerBatch = 2'000'000;
constexpr int kRepetitions = 5;

template <typename Fn>
double min_ns_per_op(Fn&& fn) {
  double best = 1e9;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    const auto start = Clock::now();
    for (std::uint64_t i = 0; i < kOpsPerBatch; ++i) fn(i);
    const auto stop = Clock::now();
    const double ns =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start).count()) /
        static_cast<double>(kOpsPerBatch);
    if (ns < best) best = ns;
  }
  return best;
}

}  // namespace

int main() {
  using namespace rpslyzer;

  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.counter("bench_ops_total", "bench");
  obs::Histogram& histogram =
      registry.histogram("bench_seconds", "bench", obs::exponential_bounds(1e-6, 2.0, 24));
  obs::set_log_level(obs::LogLevel::kWarn);
  obs::Tracer::global().set_enabled(false);

  obs::set_metrics_enabled(false);
  const double disabled_counter_ns = min_ns_per_op([&](std::uint64_t) {
    counter.inc();
    do_not_optimize(counter);
  });
  const double disabled_histogram_ns = min_ns_per_op([&](std::uint64_t i) {
    histogram.observe(static_cast<double>(i) * 1e-9);
    do_not_optimize(histogram);
  });
  obs::set_metrics_enabled(true);

  const double disabled_span_ns = min_ns_per_op([&](std::uint64_t) {
    obs::Span span("bench.disabled");
    do_not_optimize(span.active());
  });
  const double suppressed_log_ns = min_ns_per_op([&](std::uint64_t) {
    obs::log_debug("bench", "below threshold");  // one load + branch
  });

  const double enabled_counter_ns = min_ns_per_op([&](std::uint64_t) {
    counter.inc();
    do_not_optimize(counter);
  });
  const double enabled_histogram_ns = min_ns_per_op([&](std::uint64_t i) {
    histogram.observe(static_cast<double>(i & 0xffff) * 1e-6);
    do_not_optimize(histogram);
  });

  constexpr double kDisabledBudgetNs = 5.0;
  constexpr double kEnabledCounterBudgetNs = 20.0;
  const bool pass = disabled_counter_ns < kDisabledBudgetNs &&
                    disabled_span_ns < kDisabledBudgetNs &&
                    enabled_counter_ns < kEnabledCounterBudgetNs;

  json::Object doc;
  doc["bench"] = "metrics_overhead";
  bench::add_host_metadata(doc);
  doc["ops_per_batch"] = static_cast<std::int64_t>(kOpsPerBatch);
  doc["repetitions"] = kRepetitions;
  doc["disabled_counter_ns"] = disabled_counter_ns;
  doc["disabled_histogram_ns"] = disabled_histogram_ns;
  doc["disabled_span_ns"] = disabled_span_ns;
  doc["suppressed_log_ns"] = suppressed_log_ns;
  doc["enabled_counter_ns"] = enabled_counter_ns;
  doc["enabled_histogram_ns"] = enabled_histogram_ns;
  doc["budget_disabled_ns"] = kDisabledBudgetNs;
  doc["budget_enabled_counter_ns"] = kEnabledCounterBudgetNs;
  doc["gate"] = bench::gate_marker(true);  // single-thread: any host can gate
  doc["pass"] = pass;
  const std::string text = json::dump_pretty(json::Value(doc)) + "\n";

  std::FILE* out = std::fopen("BENCH_metrics.json", "wb");
  if (out != nullptr) {
    std::fwrite(text.data(), 1, text.size(), out);
    std::fclose(out);
  }
  std::fputs(text.c_str(), stdout);
  std::printf("perf_metrics_overhead: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
