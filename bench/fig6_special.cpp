// Regenerates Figure 6: breakdown of special cases per AS (Appendix D) and
// the §5.2 special-case claims.

#include <cstdio>

#include "common.hpp"
#include "rpslyzer/stats/census.hpp"

int main() {
  using namespace rpslyzer;
  bench::World world;
  bench::print_header("Figure 6: breakdown of special cases per AS", world);

  report::Aggregator agg = world.verify_all();
  report::Fig2Summary fig2 = report::Fig2Summary::compute(agg);

  std::array<std::size_t, report::kSpecialCategoryCount> ases_per_category{};
  for (const auto& [asn, categories] : agg.special_cases()) {
    for (std::size_t i = 0; i < categories.size(); ++i) {
      if (categories[i] > 0) ++ases_per_category[i];
    }
  }
  auto category = [&](report::SpecialCategory c) {
    return ases_per_category[static_cast<std::size_t>(c)];
  };

  bench::print_row("ASes with any special case", "30.9% (25596)",
                   bench::pct(agg.special_cases().size(), fig2.ases));
  bench::print_row("... export self", "1.2% (994)",
                   bench::pct(category(report::SpecialCategory::kExportSelf), fig2.ases));
  bench::print_row("... import customer", "0.4% (325)",
                   bench::pct(category(report::SpecialCategory::kImportCustomer), fig2.ases));
  bench::print_row("... missing route objects", "6.2% (5181)",
                   bench::pct(category(report::SpecialCategory::kMissingRoutes), fig2.ases));
  bench::print_row("... only provider policies", "0.06% (46)",
                   bench::pct(category(report::SpecialCategory::kOnlyProviderPolicies),
                              fig2.ases));
  bench::print_row("... Tier-1 peering", "-",
                   bench::pct(category(report::SpecialCategory::kTier1Pair), fig2.ases));
  bench::print_row("... uphill propagation", "28.1% (23298)",
                   bench::pct(category(report::SpecialCategory::kUphill), fig2.ases));

  // §5.2: "more incorrectly allow customer route exports ('export self')
  // than imports ('import customer')".
  bench::print_row("export-self ASes > import-customer ASes (shape)", "yes",
                   category(report::SpecialCategory::kExportSelf) >=
                           category(report::SpecialCategory::kImportCustomer)
                       ? "yes"
                       : "NO");
  // "most of the special cases are due to uphill propagation ... or
  // missing route objects".
  const std::size_t dominant = category(report::SpecialCategory::kUphill) +
                               category(report::SpecialCategory::kMissingRoutes);
  const std::size_t misuse = category(report::SpecialCategory::kExportSelf) +
                             category(report::SpecialCategory::kImportCustomer);
  bench::print_row("uphill+missing-routes dominate misuse (shape)", "yes",
                   dominant >= misuse ? "yes" : "NO");

  // Appendix E rule-shape extraction, the survey candidate population.
  stats::MisusePatterns patterns = stats::MisusePatterns::compute(world.lyzer.ir());
  bench::print_row("rule-shape candidates (App. E extraction)", "1102",
                   std::to_string(patterns.import_customer.size() +
                                  patterns.export_self.size()));
  return 0;
}
