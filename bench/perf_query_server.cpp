// Server-throughput benchmark: starts rpslyzerd in-process on an ephemeral
// loopback port over the synthetic corpus and hammers it through real
// sockets, so the measured queries/sec includes the epoll loop, framing,
// worker handoff, and response cache — the whole serving path, not just
// QueryEngine::evaluate. Run with --benchmark_format=json to feed the bench
// trajectory; `hit_ratio` and items/sec (= queries/sec) are the counters
// to track across PRs. Threads(N) multiplies concurrent client connections.

#include <benchmark/benchmark.h>

#include "common.hpp"
#include "rpslyzer/server/client.hpp"
#include "rpslyzer/server/server.hpp"

namespace {

using namespace rpslyzer;

constexpr std::size_t kPipeline = 16;

struct ServerFixture {
  bench::World world;
  server::Server daemon;
  std::vector<std::string> queries;

  explicit ServerFixture(std::size_t cache_capacity)
      : daemon(config_with(cache_capacity),
               // The fixture outlives the daemon; the memoized snapshot holds
               // non-owning views into world.lyzer.
               [this]() { return world.lyzer.snapshot(); }) {
    const ir::Ir& ir = world.lyzer.ir();
    std::size_t taken = 0;
    for (const auto& [asn, aut_num] : ir.aut_nums) {
      queries.push_back("!gAS" + std::to_string(asn));
      if (++taken >= 64) break;
    }
    taken = 0;
    for (const auto& [name, set] : ir.as_sets) {
      queries.push_back("!i" + ir::to_string(set.name) + ",1");
      queries.push_back("!a4" + ir::to_string(set.name));
      if (++taken >= 16) break;
    }
    std::string error;
    if (!daemon.start(&error)) {
      std::fprintf(stderr, "perf_query_server: %s\n", error.c_str());
      std::abort();
    }
  }

  static server::ServerConfig config_with(std::size_t cache_capacity) {
    server::ServerConfig config;
    config.port = 0;
    config.worker_threads = 4;
    config.cache_capacity = cache_capacity;
    return config;
  }
};

ServerFixture& cached_fixture() {
  static ServerFixture fixture(/*cache_capacity=*/16384);
  return fixture;
}

ServerFixture& uncached_fixture() {
  static ServerFixture fixture(/*cache_capacity=*/0);
  return fixture;
}

void run_load(benchmark::State& state, ServerFixture& fixture) {
  auto client = server::Client::connect("127.0.0.1", fixture.daemon.port());
  if (!client) {
    state.SkipWithError("connect failed");
    return;
  }
  // Decorrelate the query mix across client threads.
  std::size_t cursor =
      static_cast<std::size_t>(state.thread_index()) * 7 % fixture.queries.size();
  for (auto _ : state) {
    for (std::size_t i = 0; i < kPipeline; ++i) {
      if (!client->send_line(fixture.queries[cursor])) {
        state.SkipWithError("send failed");
        return;
      }
      cursor = (cursor + 1) % fixture.queries.size();
    }
    for (std::size_t i = 0; i < kPipeline; ++i) {
      if (!client->read_response()) {
        state.SkipWithError("read failed");
        return;
      }
    }
  }
  client->send_line("!q");
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kPipeline));
  if (state.thread_index() == 0) {
    state.counters["hit_ratio"] = fixture.daemon.cache_stats().hit_ratio();
    const auto& stats = fixture.daemon.stats();
    state.counters["p99_us"] = static_cast<double>(
        stats.snapshot().latency_percentile_micros(99, stats.latency.bounds()));
  }
}

void BM_ServerThroughputCached(benchmark::State& state) {
  run_load(state, cached_fixture());
}
BENCHMARK(BM_ServerThroughputCached)->Threads(1)->Threads(4)->Threads(8)
    ->Unit(benchmark::kMicrosecond)->UseRealTime();

void BM_ServerThroughputUncached(benchmark::State& state) {
  run_load(state, uncached_fixture());
}
BENCHMARK(BM_ServerThroughputUncached)->Threads(1)->Threads(4)
    ->Unit(benchmark::kMicrosecond)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
