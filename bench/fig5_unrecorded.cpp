// Regenerates Figure 5: breakdown of route verification failures due to
// unrecorded RPSL objects, per AS (Appendix D).

#include <cstdio>

#include "common.hpp"

int main() {
  using namespace rpslyzer;
  bench::World world;
  bench::print_header("Figure 5: breakdown of unrecorded verification failures", world);

  report::Aggregator agg = world.verify_all();
  report::Fig2Summary fig2 = report::Fig2Summary::compute(agg);

  std::array<std::size_t, report::kUnrecordedCategoryCount> ases_per_category{};
  for (const auto& [asn, categories] : agg.unrecorded()) {
    for (std::size_t i = 0; i < categories.size(); ++i) {
      if (categories[i] > 0) ++ases_per_category[i];
    }
  }

  // Paper: 22,562 ASes missing aut-num; 20,048 with zero rules for the
  // direction; 2706 zero-route ASes; 414 with missing set objects —
  // out of 78,701 ASes.
  bench::print_row("ASes w/ unrecorded: missing aut-num", "28.7% (22562)",
                   bench::pct(ases_per_category[size_t(
                                  report::UnrecordedCategory::kMissingAutNum)],
                              fig2.ases));
  bench::print_row("ASes w/ unrecorded: zero rules for direction", "25.5% (20048)",
                   bench::pct(ases_per_category[size_t(report::UnrecordedCategory::kNoRules)],
                              fig2.ases));
  bench::print_row("ASes w/ unrecorded: zero-route AS in filter", "3.4% (2706)",
                   bench::pct(ases_per_category[size_t(
                                  report::UnrecordedCategory::kZeroRouteAs)],
                              fig2.ases));
  bench::print_row("ASes w/ unrecorded: missing set object", "0.5% (414)",
                   bench::pct(ases_per_category[size_t(
                                  report::UnrecordedCategory::kMissingSet)],
                              fig2.ases));

  // Ordering check: the paper's dominance order is aut-num > no-rules >
  // zero-route > missing sets.
  const bool dominance =
      ases_per_category[0] + ases_per_category[1] >=
      ases_per_category[2] + ases_per_category[3];
  bench::print_row("adoption gaps dominate reference gaps (shape)", "yes",
                   dominance ? "yes" : "NO");

  // ASes missing an aut-num have the unrecorded status for every check
  // ("the same color across the y-axis").
  std::size_t missing_all_unrecorded = 0;
  std::size_t missing_total = 0;
  auto combined = agg.as_combined();
  for (const auto& [asn, categories] : agg.unrecorded()) {
    if (categories[size_t(report::UnrecordedCategory::kMissingAutNum)] == 0) continue;
    ++missing_total;
    report::Status which;
    if (combined.at(asn).single_status(&which) && which == report::Status::kUnrecorded) {
      ++missing_all_unrecorded;
    }
  }
  bench::print_row("missing-aut-num ASes with 100% unrecorded checks", "100%",
                   bench::pct(missing_all_unrecorded, missing_total));
  return 0;
}
