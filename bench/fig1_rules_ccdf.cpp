// Regenerates Figure 1: the complementary CDF of rules per aut-num, for all
// rules and for the BGPq4-compatible subset. The paper's shape: 35.2% of
// aut-nums have zero rules, 10.9% have >= 10, a thin heavy tail has > 1000;
// the BGPq4-compatible distribution is quantitatively similar to all rules.

#include <cstdio>

#include "common.hpp"
#include "rpslyzer/stats/census.hpp"

int main() {
  using namespace rpslyzer;
  bench::World world;
  bench::print_header("Figure 1: CCDF of the number of rules per aut-num", world);

  stats::RulesPerAutNum rules = stats::RulesPerAutNum::compute(world.lyzer.ir());

  bench::print_row("aut-nums with zero rules", "35.2%",
                   bench::pct(rules.zero_rule_aut_nums, rules.aut_num_count));
  bench::print_row("aut-nums with >= 10 rules", "10.9%",
                   bench::pct(rules.ten_plus_rule_aut_nums, rules.aut_num_count));
  bench::print_row("aut-nums with > 1000 rules", "0.13% (101)",
                   bench::pct(rules.thousand_plus_rule_aut_nums, rules.aut_num_count));

  auto all = stats::RulesPerAutNum::ccdf(rules.all);
  auto compatible = stats::RulesPerAutNum::ccdf(rules.bgpq4_compatible);

  std::printf("\nCCDF series (x = rules, P[rules >= x]):\n");
  std::printf("%8s %12s %18s\n", "x", "all rules", "bgpq4-compatible");
  auto p_at = [](const std::vector<std::pair<std::size_t, double>>& ccdf, std::size_t x) {
    // P[rules >= x] = P at the first support point >= x (0 past the tail).
    for (const auto& [value, prob] : ccdf) {
      if (value >= x) return prob;
    }
    return 0.0;
  };
  // A log-ish x grid like the figure's axis.
  for (std::size_t x : {1, 2, 3, 5, 10, 20, 50, 100, 200, 500, 1000}) {
    std::printf("%8zu %12.4f %18.4f\n", x, p_at(all, x), p_at(compatible, x));
  }

  // The paper's qualitative claim: the two distributions are similar.
  double max_gap = 0.0;
  for (std::size_t x : {1, 2, 3, 5, 10, 20, 50}) {
    max_gap = std::max(max_gap, p_at(all, x) - p_at(compatible, x));
  }
  std::printf("\nmax CCDF gap (all vs bgpq4-compatible) on x<=50: %.4f (paper: 'similar')\n",
              max_gap);
  return 0;
}
