// Regenerates the §4 prose censuses that have no figure number: peering and
// filter shapes, route-object multiplicity and maintenance burden, as-set
// opacity, and the RPSL error counts.

#include "common.hpp"
#include "rpslyzer/stats/census.hpp"

int main() {
  using namespace rpslyzer;
  bench::World world;
  bench::print_header("Section 4 prose: rule shapes, route objects, as-sets, errors", world);
  irr::Index index(world.lyzer.ir());

  stats::ShapeCensus shapes = stats::ShapeCensus::compute(world.lyzer.ir());
  bench::print_row("peerings that are a single ASN or ANY", "98.4%",
                   bench::pct(shapes.peerings_single_asn_or_any, shapes.peerings_total));
  bench::print_row("filters that are an as-set", "43.4%",
                   bench::pct(shapes.filters_as_set, shapes.filters_total));
  bench::print_row("filters that are an ASN", "24.1%",
                   bench::pct(shapes.filters_asn, shapes.filters_total));
  bench::print_row("ASes w/ rules, all BGPq4-compatible", "94.5%",
                   bench::pct(shapes.ases_all_rules_bgpq4_compatible,
                              shapes.ases_with_rules));

  stats::RouteObjectStats routes = stats::RouteObjectStats::compute(world.lyzer.ir());
  bench::print_row("unique prefixes w/ multiple route objects", "24.7%",
                   bench::pct(routes.prefixes_with_multiple_objects,
                              routes.unique_prefixes));
  bench::print_row("... of those, different origins", "58.1%",
                   bench::pct(routes.prefixes_with_multiple_origins,
                              routes.prefixes_with_multiple_objects));
  bench::print_row("prefixes w/ multiple maintainers", "67.3% (of multi)",
                   bench::pct(routes.prefixes_with_multiple_maintainers,
                              routes.unique_prefixes));
  {
    // "about 3x more prefixes than in current global BGP tables".
    const std::size_t announced = world.generator.topology().prefix_count();
    char measured[32];
    std::snprintf(measured, sizeof measured, "%.1fx",
                  announced == 0 ? 0.0 : double(routes.unique_prefixes) / double(announced));
    bench::print_row("registered prefixes vs announced prefixes", "~3x", measured);
  }

  stats::AsSetStats sets = stats::AsSetStats::compute(world.lyzer.ir(), index);
  bench::print_row("empty as-sets", "14.5%", bench::pct(sets.empty, sets.total));
  bench::print_row("single-member as-sets", "32.7%",
                   bench::pct(sets.single_member, sets.total));
  bench::print_row("as-sets containing keyword ANY", "3",
                   std::to_string(sets.with_any_keyword));
  bench::print_row("as-sets with >10000 members", "1.4%",
                   bench::pct(sets.huge, sets.total));
  bench::print_row("recursive as-sets", "25.5%", bench::pct(sets.recursive, sets.total));
  bench::print_row("... of those, in loops", "22.4%",
                   bench::pct(sets.in_loops, sets.recursive));
  bench::print_row("... of those, depth >= 5", "23.0%",
                   bench::pct(sets.depth_5_plus, sets.recursive));

  stats::ErrorCensus errors =
      stats::ErrorCensus::compute(world.lyzer.diagnostics(), world.lyzer.ir());
  bench::print_row("syntax errors", "663", std::to_string(errors.syntax_errors));
  bench::print_row("invalid as-set names", "12", std::to_string(errors.invalid_as_set_names));
  bench::print_row("invalid route-set names", "17",
                   std::to_string(errors.invalid_route_set_names));

  stats::MisusePatterns patterns = stats::MisusePatterns::compute(world.lyzer.ir());
  bench::print_row("ASes with export-self rule shape (App. E)", "1102 candidates (total)",
                   std::to_string(patterns.export_self.size()));
  bench::print_row("ASes with import-customer rule shape (App. E)", "-",
                   std::to_string(patterns.import_customer.size()));
  return 0;
}
