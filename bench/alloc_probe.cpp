// Global allocation counter for BENCH_*.json provenance: replaces the four
// replaceable operator new forms with counting wrappers over malloc. Linked
// into bench_common so every bench binary reports how many heap allocations
// its run cost — the zero-copy parse work gates on this trending down, not
// just on wall time. The counter is relaxed-atomic: benches only read it
// from one thread between phases, never concurrently with precision needs.

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::uint64_t> g_alloc_count{0};

void* counted_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

}  // namespace

extern "C" std::uint64_t rpslyzer_bench_alloc_count() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
