// Regenerates Table 2: numbers of objects defined and referenced in rules
// (overall, in peerings, or in filters). The reproduced shape: aut-nums and
// as-sets are heavily referenced; route-sets much less so despite being
// defined in quantity — the basis for the paper's route-set recommendation.

#include <cstdio>

#include "common.hpp"
#include "rpslyzer/stats/census.hpp"

int main() {
  using namespace rpslyzer;
  bench::World world;
  bench::print_header("Table 2: objects defined and referenced in rules", world);

  stats::ReferenceCensus census = stats::ReferenceCensus::compute(world.lyzer.ir());

  struct PaperRow {
    const char* cls;
    std::size_t defined, overall, peering, filter;
  };
  static const PaperRow kPaper[] = {
      {"aut-num", 78701, 52028, 37595, 47503}, {"as-set", 53268, 17789, 2519, 16891},
      {"route-set", 24460, 1711, 0, 1711},     {"peering-set", 342, 64, 64, 0},
      {"filter-set", 203, 50, 0, 50},
  };
  const stats::ReferenceCensus::PerClass* rows[] = {
      &census.aut_nums, &census.as_sets, &census.route_sets, &census.peering_sets,
      &census.filter_sets};

  std::printf("%-12s | %27s | %27s\n", "", "paper (def/all/peering/filter)",
              "measured (def/all/peering/filter)");
  for (std::size_t i = 0; i < 5; ++i) {
    const auto& p = kPaper[i];
    const auto& m = *rows[i];
    std::printf("%-12s | %6zu %6zu %6zu %6zu | %6zu %6zu %6zu %6zu\n", p.cls, p.defined,
                p.overall, p.peering, p.filter, m.defined, m.referenced_overall,
                m.referenced_in_peering, m.referenced_in_filter);
  }

  // Shape checks the paper calls out in §4 prose.
  std::printf("\n");
  bench::print_row("aut-nums referenced in filters",
                   "60.4% of defined",
                   bench::pct(census.aut_nums.referenced_in_filter, census.aut_nums.defined));
  bench::print_row("as-sets referenced overall", "31.7% of defined",
                   bench::pct(census.as_sets.referenced_overall, census.as_sets.defined));
  bench::print_row("route-sets referenced overall", "7.0% of defined",
                   bench::pct(census.route_sets.referenced_overall,
                              census.route_sets.defined));
  bench::print_row("as-sets referenced more than route-sets (shape)", "yes",
                   census.as_sets.referenced_overall > census.route_sets.referenced_overall
                       ? "yes"
                       : "NO");
  return 0;
}
