// Ablation benches for the design choices DESIGN.md calls out:
//
//  1. AS-path regex: predicate NFA (ours) vs the paper's symbolic
//     Cartesian-product construction vs the backtracking reference.
//  2. Route-object lookup: per-origin binary search (the paper's choice,
//     Appendix B) vs a linear scan baseline.
//  3. as-set membership: memoized flattening (the paper's choice) vs
//     match-time recursive descent.

#include <benchmark/benchmark.h>

#include "common.hpp"
#include "rpslyzer/aspath/engine.hpp"
#include "rpslyzer/rpsl/expr_parser.hpp"

namespace {

using namespace rpslyzer;

const bench::World& world() {
  static bench::World w(std::min(bench::scale_from_env(), 1.0));
  return w;
}

const irr::Index& index() {
  static irr::Index idx(world().lyzer.ir());
  return idx;
}

// ---------------------------------------------------------------------------
// 1. Regex engines
// ---------------------------------------------------------------------------

ir::AsPathRegex make_regex(std::string_view text) {
  util::Diagnostics diag;
  rpsl::ParseContext ctx{&diag, "bench", "BENCH", 1};
  auto regex = rpsl::parse_aspath_regex(text, ctx);
  if (!regex) std::abort();
  return std::move(*regex);
}

const std::vector<ir::AsPathRegex>& regexes() {
  static std::vector<ir::AsPathRegex> r = [] {
    std::vector<ir::AsPathRegex> out;
    out.push_back(make_regex("^AS100 AS1000+$"));
    out.push_back(make_regex("^[^AS64512-AS65535]*$"));
    out.push_back(make_regex("(AS100|AS101|AS102) .* AS20000"));
    out.push_back(make_regex("^AS100 . AS5000{1,3}$"));
    out.push_back(make_regex(".* PeerAS$"));
    return out;
  }();
  return r;
}

std::vector<std::vector<aspath::Asn>> sample_paths(std::size_t count) {
  std::vector<std::vector<aspath::Asn>> paths;
  for (const auto& route : world().all_routes()) {
    paths.push_back(route.path);
    if (paths.size() >= count) break;
  }
  return paths;
}

template <aspath::RegexMatch (*Engine)(const ir::AsPathRegex&, const aspath::MatchEnv&)>
void run_engine(benchmark::State& state) {
  auto paths = sample_paths(512);
  std::size_t matches = 0;
  for (auto _ : state) {
    matches = 0;
    for (const auto& path : paths) {
      aspath::MatchEnv env{path, path.empty() ? 0 : path.front(), &index()};
      for (const auto& regex : regexes()) {
        if (Engine(regex, env) == aspath::RegexMatch::kMatch) ++matches;
      }
    }
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * paths.size() * regexes().size()));
  state.counters["matches"] = static_cast<double>(matches);
}

aspath::RegexMatch symbolic_adapter(const ir::AsPathRegex& regex,
                                    const aspath::MatchEnv& env) {
  return aspath::match_symbolic(regex, env, 1u << 20);
}

void BM_RegexNfa(benchmark::State& state) { run_engine<aspath::match_nfa>(state); }
void BM_RegexBacktrack(benchmark::State& state) {
  run_engine<aspath::match_backtrack>(state);
}
void BM_RegexSymbolicCartesian(benchmark::State& state) {
  run_engine<symbolic_adapter>(state);
}
BENCHMARK(BM_RegexNfa)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RegexBacktrack)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RegexSymbolicCartesian)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// 2. Route-object lookup
// ---------------------------------------------------------------------------

std::vector<std::pair<ir::Asn, net::Prefix>> lookup_queries() {
  std::vector<std::pair<ir::Asn, net::Prefix>> queries;
  for (const auto& route : world().all_routes()) {
    queries.emplace_back(route.origin(), route.prefix);
    if (queries.size() >= 4096) break;
  }
  return queries;
}

void BM_OriginLookupBinarySearch(benchmark::State& state) {
  auto queries = lookup_queries();
  std::size_t hits = 0;
  for (auto _ : state) {
    hits = 0;
    for (const auto& [asn, prefix] : queries) {
      if (index().origin_matches(asn, net::RangeOp::none(), prefix) == irr::Lookup::kMatch) {
        ++hits;
      }
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * queries.size()));
  state.counters["hits"] = static_cast<double>(hits);
}
BENCHMARK(BM_OriginLookupBinarySearch)->Unit(benchmark::kMicrosecond);

void BM_OriginLookupLinearScan(benchmark::State& state) {
  // Baseline: scan every route object of the corpus per query.
  auto queries = lookup_queries();
  const auto& all_routes = world().lyzer.ir().routes;
  std::size_t hits = 0;
  for (auto _ : state) {
    hits = 0;
    for (const auto& [asn, prefix] : queries) {
      for (const auto& object : all_routes) {
        if (object.origin == asn && object.prefix == prefix) {
          ++hits;
          break;
        }
      }
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * queries.size()));
  state.counters["hits"] = static_cast<double>(hits);
}
BENCHMARK(BM_OriginLookupLinearScan)->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------------
// 3. as-set membership: flattened vs recursive descent
// ---------------------------------------------------------------------------

std::vector<std::pair<std::string, ir::Asn>> membership_queries() {
  std::vector<std::pair<std::string, ir::Asn>> queries;
  const auto& routes = world().all_routes();
  std::size_t i = 0;
  for (const auto& [name, set] : world().lyzer.ir().as_sets) {
    if (routes.empty()) break;
    queries.emplace_back(name, routes[i++ % routes.size()].origin());
    if (queries.size() >= 1024) break;
  }
  return queries;
}

/// Match-time recursive membership test without memoized flattening.
bool recursive_contains(const ir::Ir& ir, std::string_view name, ir::Asn asn,
                        std::set<std::string, util::ILess>& visiting) {
  auto it = ir.as_sets.find(name);
  if (it == ir.as_sets.end()) return false;
  if (!visiting.insert(std::string(name)).second) return false;
  bool found = false;
  for (const auto& member : it->second.members) {
    if (member.kind == ir::AsSetMember::Kind::kAsn && member.asn == asn) {
      found = true;
    } else if (member.kind == ir::AsSetMember::Kind::kSet &&
               recursive_contains(ir, ir::sym_view(member.name), asn, visiting)) {
      found = true;
    }
    if (found) break;
  }
  visiting.erase(std::string(name));
  return found;
}

void BM_AsSetMembershipFlattened(benchmark::State& state) {
  auto queries = membership_queries();
  std::size_t hits = 0;
  for (auto _ : state) {
    hits = 0;
    for (const auto& [name, asn] : queries) {
      if (index().contains(name, asn)) ++hits;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * queries.size()));
  state.counters["hits"] = static_cast<double>(hits);
}
BENCHMARK(BM_AsSetMembershipFlattened)->Unit(benchmark::kMicrosecond);

void BM_AsSetMembershipRecursive(benchmark::State& state) {
  auto queries = membership_queries();
  std::size_t hits = 0;
  for (auto _ : state) {
    hits = 0;
    for (const auto& [name, asn] : queries) {
      std::set<std::string, util::ILess> visiting;
      if (recursive_contains(world().lyzer.ir(), name, asn, visiting)) ++hits;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * queries.size()));
  state.counters["hits"] = static_cast<double>(hits);
}
BENCHMARK(BM_AsSetMembershipRecursive)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
