// Regenerates Figure 3: verification status for each AS pair (both
// propagation directions), plus the §5.2 per-pair claims.

#include <cstdio>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "common.hpp"
#include "rpslyzer/report/render.hpp"

namespace {
/// Write a figure's CSV series when RPSLYZER_CSV_DIR is set.
void maybe_write_csv(const char* name, std::vector<rpslyzer::report::StatusCounts> entities) {
  const char* dir = std::getenv("RPSLYZER_CSV_DIR");
  if (dir == nullptr) return;
  std::filesystem::create_directories(dir);
  std::ofstream out(std::filesystem::path(dir) / name, std::ios::binary);
  out << rpslyzer::report::to_csv(std::move(entities));
  std::printf("wrote %s/%s\n", dir, name);
}
}  // namespace


int main() {
  using namespace rpslyzer;
  bench::World world;
  bench::print_header("Figure 3: route verification status for each AS pair", world);

  report::Aggregator agg = world.verify_all();
  report::Fig3Summary summary = report::Fig3Summary::compute(agg);

  bench::print_row("import pairs with a single status", "91.7%",
                   bench::pct(summary.pairs_import_single_status, summary.pairs_import));
  bench::print_row("export pairs with a single status", "92%",
                   bench::pct(summary.pairs_export_single_status, summary.pairs_export));
  bench::print_row("pairs with unverified routes", "63.0%",
                   bench::pct(summary.pairs_with_unverified, summary.pairs_import));
  bench::print_row("unverified checks due to undeclared peerings", "98.98%",
                   bench::pct(summary.unverified_checks_peering_undeclared,
                              summary.unverified_checks_total));

  // "Most AS pairs show either consistent status ... or two statuses in an
  // even split."
  std::size_t pairs = 0;
  std::size_t single_or_two = 0;
  for (const auto* direction : {&agg.pair_imports(), &agg.pair_exports()}) {
    for (const auto& [pair, counts] : *direction) {
      ++pairs;
      int statuses = 0;
      for (std::size_t s = 0; s < report::kStatusCount; ++s) {
        if (counts.counts[s] > 0) ++statuses;
      }
      if (statuses <= 2) ++single_or_two;
    }
  }
  bench::print_row("pairs with at most two statuses", "most",
                   bench::pct(single_or_two, pairs));

  std::printf("\nstacked per-pair composition, imports (x: pairs by correctness):\n");
  std::vector<report::StatusCounts> import_pairs;
  for (const auto& [pair, counts] : agg.pair_imports()) import_pairs.push_back(counts);
  std::printf("%s", report::render_stacked(import_pairs, 72, 12).c_str());

  std::printf("\nstacked per-pair composition, exports:\n");
  std::vector<report::StatusCounts> export_pairs;
  for (const auto& [pair, counts] : agg.pair_exports()) export_pairs.push_back(counts);
  std::printf("%s", report::render_stacked(export_pairs, 72, 12).c_str());
  maybe_write_csv("fig3_pairs_import.csv", import_pairs);
  maybe_write_csv("fig3_pairs_export.csv", export_pairs);
  return 0;
}
