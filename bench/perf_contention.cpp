// Interner contention gate → BENCH_contention.json.
//
// Two questions, both hand-timed (no google-benchmark: the JSON is a machine
// gate, not a human report, mirroring perf_flight):
//
//  1. How fast are concurrent SymbolTable lookups? The zero-copy refactor
//     put an interner probe on every parsed name, so reads must scale:
//     lookups take no lock and touch only acquire-loaded cells.
//  2. What does one shared atomic counter cost the workers versus per-thread
//     cache-line-padded counters? This is the measured justification for
//     verify_routes_parallel's per-worker result buffers: the padded
//     variant's advantage at 4 threads is the gate.
//
// On hosts with <4 hardware threads the contention ratio is noise (threads
// time-slice instead of contending), so the gate records and warns instead
// of failing — same policy as perf_parsing / perf_verify.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_meta.hpp"
#include "rpslyzer/json/json.hpp"
#include "rpslyzer/util/interner.hpp"
#include "rpslyzer/util/rand.hpp"

namespace rpslyzer {
namespace {

constexpr std::size_t kNames = 1 << 14;
constexpr std::size_t kLookupsPerThread = 1 << 19;

/// Synthetic RPSL-shaped spellings: as-set names with mixed case so both
/// the exact table and the fold index get exercised.
std::vector<std::string> make_names() {
  std::vector<std::string> names;
  names.reserve(kNames);
  util::SplitMix64 rng(0x5eedu);
  for (std::size_t i = 0; i < kNames; ++i) {
    std::string name = "AS-SET-" + std::to_string(rng.next() % 100000) + "-" +
                       std::to_string(i);
    if ((i & 3u) == 0) {
      for (char& c : name) c = static_cast<char>(std::tolower(c));
    }
    names.push_back(std::move(name));
  }
  return names;
}

struct alignas(64) PaddedCount {
  std::uint64_t value = 0;
  char pad[64 - sizeof(std::uint64_t)];
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  const std::chrono::duration<double> d = std::chrono::steady_clock::now() - start;
  return d.count();
}

/// Concurrent lookup sweep. `shared_counter` selects the bookkeeping mode:
/// every hit bumps either one process-wide atomic (the anti-pattern) or a
/// per-thread padded slot (what the verify pool does with result chunks).
double time_lookups(const util::SymbolTable& table,
                    const std::vector<std::string>& names, unsigned threads,
                    bool shared_counter, std::uint64_t* hits_out) {
  std::atomic<std::uint64_t> shared{0};
  std::vector<PaddedCount> padded(threads);
  std::vector<std::thread> pool;
  pool.reserve(threads);
  const auto start = std::chrono::steady_clock::now();
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      util::SplitMix64 rng(0x1234u + t);
      std::uint64_t local = 0;
      for (std::size_t i = 0; i < kLookupsPerThread; ++i) {
        const std::string& name = names[rng.next() % names.size()];
        if (table.find(name).has_value()) {
          if (shared_counter) {
            shared.fetch_add(1, std::memory_order_relaxed);
          } else {
            ++padded[t].value;
          }
        }
        ++local;
      }
      (void)local;
    });
  }
  for (auto& thread : pool) thread.join();
  const double seconds = seconds_since(start);
  std::uint64_t hits = shared.load(std::memory_order_relaxed);
  for (const PaddedCount& p : padded) hits += p.value;
  if (hits_out != nullptr) *hits_out = hits;
  return seconds;
}

int run() {
  const std::vector<std::string> names = make_names();
  util::SymbolTable table(util::SymbolTable::Mode::kExact);
  for (const std::string& name : names) table.intern(name);

  const unsigned hardware = bench::hardware_threads();
  json::Object doc;
  doc["bench"] = "contention";
  bench::add_host_metadata(doc);
  doc["names"] = static_cast<std::int64_t>(names.size());
  doc["lookups_per_thread"] = static_cast<std::int64_t>(kLookupsPerThread);

  json::Array sweep;
  double padded_at_4 = 0.0;
  double shared_at_4 = 0.0;
  for (unsigned threads : {1u, 2u, 4u}) {
    std::uint64_t hits = 0;
    const double shared_seconds = time_lookups(table, names, threads, true, &hits);
    const double padded_seconds = time_lookups(table, names, threads, false, &hits);
    const double total = static_cast<double>(kLookupsPerThread) * threads;
    json::Object row;
    row["threads"] = static_cast<std::int64_t>(threads);
    row["hits"] = static_cast<std::int64_t>(hits);
    row["shared_counter_seconds"] = shared_seconds;
    row["padded_counter_seconds"] = padded_seconds;
    row["lookups_per_second"] = total / padded_seconds;
    row["lookups_per_second_per_core"] = total / padded_seconds / threads;
    row["padded_vs_shared"] = shared_seconds / padded_seconds;
    sweep.emplace_back(std::move(row));
    if (threads == 4) {
      padded_at_4 = padded_seconds;
      shared_at_4 = shared_seconds;
    }
  }
  doc["sweep"] = sweep;

  // Gate: at 4 threads, per-thread padded bookkeeping must not lose to the
  // shared atomic (ratio ≥ 1.0 with 5% noise margin). Only meaningful when
  // 4 workers actually run in parallel.
  const double ratio = shared_at_4 / padded_at_4;
  const bool enforced = hardware >= 4;
  const bool pass = !enforced || ratio >= 0.95;
  doc["padded_vs_shared_at_4_threads"] = ratio;
  doc["gate_padded_vs_shared"] = 0.95;
  doc["gate"] = bench::gate_marker(enforced);
  doc["pass"] = pass;

  const std::string text = json::dump_pretty(json::Value(doc)) + "\n";
  std::FILE* out = std::fopen("BENCH_contention.json", "wb");
  if (out != nullptr) {
    std::fwrite(text.data(), 1, text.size(), out);
    std::fclose(out);
  }
  std::fputs(text.c_str(), stdout);
  std::printf("perf_contention: %s\n", !enforced ? bench::gate_marker(false).c_str()
                                       : pass    ? "PASS"
                                                 : "FAIL");
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace rpslyzer

int main() { return rpslyzer::run(); }
