// §5 performance claim: "Verifying the 779.3 million routes in all 60 BGP
// dumps took 2h49m and less than 2 GiB of RAM" (~76.8k routes/s on dual
// EPYC 7763). This bench measures single-thread verification throughput on
// the synthetic corpus and reports routes/second for comparison.

#include <benchmark/benchmark.h>

#include "common.hpp"
#include "rpslyzer/verify/parallel.hpp"

namespace {

using namespace rpslyzer;

const bench::World& world() {
  static bench::World w;
  return w;
}

const std::vector<bgp::Route>& routes() {
  static std::vector<bgp::Route> r = world().all_routes();
  return r;
}

void BM_VerifyRoutes(benchmark::State& state) {
  verify::Verifier verifier = world().lyzer.verifier();
  std::size_t checks = 0;
  for (auto _ : state) {
    checks = 0;
    for (const auto& route : routes()) {
      checks += verifier.verify_route(route).size();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * routes().size()));
  state.counters["routes"] = static_cast<double>(routes().size());
  state.counters["hop_checks"] = static_cast<double>(checks);
  state.counters["routes_per_s"] =
      benchmark::Counter(static_cast<double>(state.iterations() * routes().size()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_VerifyRoutes)->Unit(benchmark::kMillisecond);

void BM_VerifyRoutesStrict(benchmark::State& state) {
  verify::VerifyOptions options;
  options.relaxations = false;
  options.safelists = false;
  verify::Verifier verifier = world().lyzer.verifier(options);
  for (auto _ : state) {
    std::size_t checks = 0;
    for (const auto& route : routes()) {
      checks += verifier.verify_route(route).size();
    }
    benchmark::DoNotOptimize(checks);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * routes().size()));
}
BENCHMARK(BM_VerifyRoutesStrict)->Unit(benchmark::kMillisecond);

void BM_ParseBgpDump(benchmark::State& state) {
  std::size_t bytes = 0;
  for (const auto& dump : world().bgp_dumps) bytes += dump.size();
  for (auto _ : state) {
    std::size_t n = 0;
    for (const auto& dump : world().bgp_dumps) {
      n += bgp::parse_table_dump(dump).size();
    }
    benchmark::DoNotOptimize(n);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * bytes));
}
BENCHMARK(BM_ParseBgpDump)->Unit(benchmark::kMillisecond);

void BM_VerifyRoutesParallel(benchmark::State& state) {
  const auto thread_count = static_cast<unsigned>(state.range(0));
  world().lyzer.index().prewarm();
  for (auto _ : state) {
    auto results = verify::verify_routes_parallel(world().lyzer.index(), world().lyzer.relations(),
                                          routes(), {}, thread_count);
    benchmark::DoNotOptimize(results.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * routes().size()));
  state.counters["threads"] = thread_count;
  state.counters["routes_per_s"] =
      benchmark::Counter(static_cast<double>(state.iterations() * routes().size()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_VerifyRoutesParallel)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_SingleRouteVerify(benchmark::State& state) {
  verify::Verifier verifier = world().lyzer.verifier();
  const auto& all = routes();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(verifier.verify_route(all[i++ % all.size()]).size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SingleRouteVerify);

}  // namespace

BENCHMARK_MAIN();
