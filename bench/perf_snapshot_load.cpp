// perf_snapshot_load — proves the persistence layer's reason to exist: an
// mmap load of a compiled snapshot must be at least 10× faster than
// rebuilding the same snapshot from the raw IRR dumps (13-dump parse +
// merge + index + policy compile). If a cold open cannot beat the pipeline
// by an order of magnitude, `serve --snapshot` and the generation cache
// are just complexity.
//
// Hand-rolled timing (no google-benchmark: the numbers feed a JSON gate,
// not a human report). Min-over-reps wall time on both sides; the snapshot
// file is written once outside every stopwatch. Emits BENCH_snapshot.json
// and exits non-zero when the gate fails.

#include <chrono>
#include <cstdio>
#include <filesystem>

#include <unistd.h>

#include "bench_meta.hpp"
#include "common.hpp"
#include "rpslyzer/json/json.hpp"
#include "rpslyzer/persist/snapshot_io.hpp"

namespace {

using namespace rpslyzer;

constexpr int kBuildRepetitions = 3;
constexpr int kLoadRepetitions = 30;

// One full parse + compile, exactly what `serve <dir>` pays per reload:
// 13-dump ingest, merge, index, relations, and the policy snapshot build.
double time_parse_compile(const synth::InternetGenerator& generator) {
  std::vector<std::pair<std::string, std::string>> ordered;
  for (const auto& name : synth::irr_names()) {
    ordered.emplace_back(name, generator.irr_dumps().at(name));
  }
  double best = 1e9;
  for (int rep = 0; rep < kBuildRepetitions; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    Rpslyzer lyzer = Rpslyzer::from_texts(ordered, generator.caida_serial1());
    auto snapshot = lyzer.snapshot();
    if (snapshot->interned_symbols() == 0 && snapshot->trie_nodes() == 0) {
      std::fprintf(stderr, "empty snapshot — synthetic corpus broke\n");
      std::exit(1);
    }
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    if (elapsed.count() < best) best = elapsed.count();
  }
  return best;
}

double time_mmap_load(const std::filesystem::path& path) {
  double best = 1e9;
  for (int rep = 0; rep < kLoadRepetitions; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    auto snapshot = persist::open_snapshot(path);
    if (snapshot->interned_symbols() == 0 && snapshot->trie_nodes() == 0) {
      std::fprintf(stderr, "empty snapshot — load broke\n");
      std::exit(1);
    }
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    if (elapsed.count() < best) best = elapsed.count();
  }
  return best;
}

}  // namespace

int main() {
  const bench::World world;
  const std::filesystem::path snap =
      std::filesystem::temp_directory_path() /
      ("rpslyzer-bench-snapshot-" + std::to_string(::getpid()) + ".rps");
  const std::uint64_t snapshot_bytes = persist::write_snapshot(*world.lyzer.snapshot(), snap);

  const double build_seconds = time_parse_compile(world.generator);
  const double load_seconds = time_mmap_load(snap);
  std::filesystem::remove(snap);
  const double speedup = build_seconds / load_seconds;
  const bool pass = speedup >= 10.0;

  json::Object doc;
  doc["bench"] = "snapshot_load";
  doc["scale"] = bench::scale_from_env();
  bench::add_host_metadata(doc);
  doc["aut_nums"] = static_cast<std::int64_t>(world.lyzer.ir().aut_nums.size());
  doc["snapshot_bytes"] = static_cast<std::int64_t>(snapshot_bytes);
  doc["build_repetitions"] = kBuildRepetitions;
  doc["load_repetitions"] = kLoadRepetitions;
  doc["parse_compile_seconds"] = build_seconds;
  doc["mmap_load_seconds"] = load_seconds;
  doc["load_speedup_vs_parse_compile"] = speedup;
  doc["gate_load_speedup"] = 10.0;
  doc["gate"] = bench::gate_marker(true);  // single-thread: any host can gate
  doc["pass"] = pass;
  const std::string text = json::dump_pretty(json::Value(doc)) + "\n";

  std::FILE* out = std::fopen("BENCH_snapshot.json", "wb");
  if (out != nullptr) {
    std::fwrite(text.data(), 1, text.size(), out);
    std::fclose(out);
  }
  std::fputs(text.c_str(), stdout);
  std::printf("perf_snapshot_load mmap-vs-rebuild: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
