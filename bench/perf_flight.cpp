// perf_flight — proves the flight recorder's hot-path claims.
//
// The recorder sits on every query the worker pool completes, so its cost
// must be invisible next to evaluation: a disabled recorder (capacity 0 or
// set_enabled(false)) is one relaxed load + branch, an enabled one is a
// seqlock ticket plus a handful of relaxed word stores into a fixed ring.
// Same hand-rolled methodology as perf_metrics_overhead (min mean-ns/op
// over repetitions of a large batch).
//
// Emits BENCH_flight.json in the working directory and exits non-zero if
// the budget is blown:
//   * disabled record():   < 10 ns/op
//   * enabled record():    < 100 ns/op

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_meta.hpp"
#include "rpslyzer/json/json.hpp"
#include "rpslyzer/obs/flight.hpp"

namespace {

using Clock = std::chrono::steady_clock;

/// Defeat dead-code elimination without perturbing the measured loop.
template <typename T>
inline void do_not_optimize(T const& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

constexpr std::uint64_t kOpsPerBatch = 2'000'000;
constexpr int kRepetitions = 5;

template <typename Fn>
double min_ns_per_op(Fn&& fn) {
  double best = 1e9;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    const auto start = Clock::now();
    for (std::uint64_t i = 0; i < kOpsPerBatch; ++i) fn(i);
    const auto stop = Clock::now();
    const double ns =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start).count()) /
        static_cast<double>(kOpsPerBatch);
    if (ns < best) best = ns;
  }
  return best;
}

rpslyzer::obs::FlightRecord sample_record(std::uint64_t i) {
  rpslyzer::obs::FlightRecord record;
  record.trace_id = i | 1;
  std::memcpy(record.verb, "!gas", 4);
  record.end_us = i;
  record.generation = 3;
  record.queue_us = 5;
  record.eval_us = 40;
  record.total_us = 50;
  record.bytes = 128;
  record.cache = 'm';
  record.outcome = 'A';
  return record;
}

}  // namespace

int main() {
  using namespace rpslyzer;

  obs::FlightRecorder recorder(4096);  // the daemon's default ring

  recorder.set_enabled(false);
  const double disabled_ns = min_ns_per_op([&](std::uint64_t i) {
    if (recorder.enabled()) recorder.record(sample_record(i));
    do_not_optimize(recorder);
  });

  recorder.set_enabled(true);
  const double enabled_ns = min_ns_per_op([&](std::uint64_t i) {
    recorder.record(sample_record(i));
    do_not_optimize(recorder);
  });
  // Sanity: the enabled loop must actually have recorded (and wrapped).
  const std::uint64_t recorded = recorder.total();

  constexpr double kDisabledBudgetNs = 10.0;
  constexpr double kEnabledBudgetNs = 100.0;
  const bool pass = disabled_ns < kDisabledBudgetNs && enabled_ns < kEnabledBudgetNs &&
                    recorded >= kOpsPerBatch;

  json::Object doc;
  doc["bench"] = "flight_recorder";
  bench::add_host_metadata(doc);
  doc["ops_per_batch"] = static_cast<std::int64_t>(kOpsPerBatch);
  doc["repetitions"] = kRepetitions;
  doc["ring_capacity"] = static_cast<std::int64_t>(recorder.capacity());
  doc["disabled_record_ns"] = disabled_ns;
  doc["enabled_record_ns"] = enabled_ns;
  doc["records_written"] = static_cast<std::int64_t>(recorded);
  doc["budget_disabled_ns"] = kDisabledBudgetNs;
  doc["budget_enabled_ns"] = kEnabledBudgetNs;
  doc["gate"] = bench::gate_marker(true);  // single-thread: any host can gate
  doc["pass"] = pass;
  const std::string text = json::dump_pretty(json::Value(doc)) + "\n";

  std::FILE* out = std::fopen("BENCH_flight.json", "wb");
  if (out != nullptr) {
    std::fwrite(text.data(), 1, text.size(), out);
    std::fclose(out);
  }
  std::fputs(text.c_str(), stdout);
  std::printf("perf_flight: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
