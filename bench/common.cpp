#include "common.hpp"

#include <cstdio>
#include <cstdlib>

namespace rpslyzer::bench {

double scale_from_env() {
  const char* env = std::getenv("RPSLYZER_SCALE");
  if (env == nullptr) return 1.0;
  const double value = std::atof(env);
  if (value < 0.05) return 0.05;
  if (value > 50.0) return 50.0;
  return value;
}

namespace {

synth::SynthConfig config_for(double scale) {
  synth::SynthConfig config;
  config.scale = scale;
  return config;
}

Rpslyzer parse_world(const synth::InternetGenerator& generator) {
  std::vector<std::pair<std::string, std::string>> ordered;
  for (const auto& name : synth::irr_names()) {
    ordered.emplace_back(name, generator.irr_dumps().at(name));
  }
  return Rpslyzer::from_texts(ordered, generator.caida_serial1());
}

}  // namespace

World::World(double scale)
    : generator(config_for(scale)),
      lyzer(parse_world(generator)),
      bgp_dumps(generator.bgp_dumps()) {}

report::Aggregator World::verify_all(verify::VerifyOptions options) const {
  verify::Verifier verifier = lyzer.verifier(options);
  report::Aggregator agg;
  for (const auto& dump : bgp_dumps) {
    for (const auto& route : bgp::parse_table_dump(dump)) {
      agg.add(route, verifier.verify_route(route));
    }
  }
  return agg;
}

std::vector<bgp::Route> World::all_routes() const {
  std::vector<bgp::Route> routes;
  for (const auto& dump : bgp_dumps) {
    for (auto& route : bgp::parse_table_dump(dump)) routes.push_back(std::move(route));
  }
  return routes;
}

void print_header(const std::string& title, const World& world) {
  std::printf("=== %s ===\n", title.c_str());
  std::printf("synthetic corpus: %zu ASes, %zu aut-nums, %zu route objects, %zu collectors\n",
              world.generator.topology().size(), world.lyzer.ir().aut_nums.size(),
              world.lyzer.ir().routes.size(), world.bgp_dumps.size());
  std::printf("%-52s | %-16s | %-16s\n", "metric", "paper", "measured");
  std::printf("%s\n", std::string(90, '-').c_str());
}

void print_row(const std::string& label, const std::string& paper,
               const std::string& measured) {
  std::printf("%-52s | %-16s | %-16s\n", label.c_str(), paper.c_str(), measured.c_str());
}

std::string pct(std::size_t part, std::size_t whole) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%",
                whole == 0 ? 0.0 : 100.0 * double(part) / double(whole));
  return buf;
}

}  // namespace rpslyzer::bench
