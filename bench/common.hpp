#pragma once
// Shared scaffolding for the benchmark/figure binaries: build one synthetic
// world (scaled by the RPSLYZER_SCALE environment variable), run the
// pipeline, and print "paper vs measured" rows.

#include <optional>
#include <string>

#include "rpslyzer/report/aggregate.hpp"
#include "rpslyzer/rpslyzer.hpp"
#include "rpslyzer/synth/generator.hpp"

namespace rpslyzer::bench {

/// Scale factor from $RPSLYZER_SCALE (default 1.0, clamped to [0.05, 50]).
double scale_from_env();

struct World {
  synth::InternetGenerator generator;
  Rpslyzer lyzer;
  std::vector<std::string> bgp_dumps;

  explicit World(double scale = scale_from_env());

  /// Verify every route in every dump and aggregate (§5 pipeline).
  report::Aggregator verify_all(verify::VerifyOptions options = {}) const;
  std::vector<bgp::Route> all_routes() const;
};

/// Print a section header naming the table/figure being regenerated.
void print_header(const std::string& title, const World& world);

/// Print one "paper vs measured" row. `paper` may be "-" when the paper
/// gives no number for the cell.
void print_row(const std::string& label, const std::string& paper,
               const std::string& measured);

std::string pct(std::size_t part, std::size_t whole);

}  // namespace rpslyzer::bench
