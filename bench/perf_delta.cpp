// perf_delta — gates the incremental rebuild's reason to exist: applying a
// small churn batch through the delta pipeline must be much faster than the
// full recompile a server without it would pay per batch.
//
// Hand-rolled timing (the numbers feed a JSON gate, not a human report).
// Distinct pre-generated churn batches — each ≤1% of the corpus's objects —
// are applied in sequence. The incremental side is the pipeline's whole
// apply (store mutation, materialize, index, dirty closure, incremental
// compile, publish). The full side is the from-scratch reload path the
// journal replaces: Rpslyzer::from_texts over the post-batch dump texts
// plus the eager compiled-snapshot build — exactly the reference the
// differential-equivalence harness compiles (rendering the texts happens
// outside the timer: a non-incremental server starts from dump files, it
// does not pay our store's rendering). ApplyResult::compile_seconds is
// recorded per batch for visibility into the rebuild stage alone. Emits
// BENCH_delta.json and fails (non-zero exit) when the aggregate speedup is
// < 5×; on starved hosts (<4 hardware threads) the ratio is noise, so it
// is recorded and warned about but not gated (bench_meta.hpp's gate_marker
// convention).

#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_meta.hpp"
#include "common.hpp"
#include "rpslyzer/delta/journal.hpp"
#include "rpslyzer/delta/pipeline.hpp"
#include "rpslyzer/json/json.hpp"
#include "rpslyzer/rpslyzer.hpp"
#include "rpslyzer/synth/churn.hpp"

namespace {

using namespace rpslyzer;
using Clock = std::chrono::steady_clock;

constexpr int kBatches = 6;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main() {
  const double scale = bench::scale_from_env();
  synth::SynthConfig config;
  config.scale = scale;
  synth::InternetGenerator generator(config);
  std::vector<std::pair<std::string, std::string>> dumps;
  for (const auto& name : synth::irr_names()) {
    dumps.emplace_back(name, generator.irr_dumps().at(name));
  }
  const std::string relationships = generator.caida_serial1();

  delta::DeltaPipeline incremental(dumps, relationships);

  // ≤1% churn per batch (floor 4 ops so tiny scales still mutate enough to
  // dirty something every batch).
  const std::size_t corpus_objects = incremental.store().object_count();
  synth::ChurnConfig churn_config;
  churn_config.seed = 20260807u;
  churn_config.ops_per_batch =
      std::max<std::size_t>(4, corpus_objects / 200);  // ≈0.5% of objects
  synth::ChurnGenerator churn(generator.irr_dumps(), churn_config);
  std::vector<delta::JournalBatch> batches;
  for (int b = 0; b < kBatches; ++b) batches.push_back(churn.next_batch());

  double incremental_total = 0.0;
  double full_total = 0.0;
  json::Array rows;
  for (int b = 0; b < kBatches; ++b) {
    auto start = Clock::now();
    const delta::ApplyResult inc_result = incremental.apply(batches[b]);
    const double inc_seconds = seconds_since(start);
    if (inc_result.refused) {
      std::fprintf(stderr, "perf_delta: batch %d refused: %s\n", b,
                   inc_result.error.c_str());
      return 1;
    }

    // Full-recompile side: parse + index + compile the same post-batch
    // corpus from scratch. Text rendering stays outside the timer.
    const auto texts = incremental.store().source_texts();
    start = Clock::now();
    Rpslyzer lyzer = Rpslyzer::from_texts(texts, relationships);
    const auto reference = lyzer.snapshot();  // eager compile; keep it alive
    const double full_seconds = seconds_since(start);

    incremental_total += inc_seconds;
    full_total += full_seconds;
    json::Object row;
    row["batch"] = static_cast<std::int64_t>(b);
    row["ops"] = static_cast<std::int64_t>(inc_result.ops_applied);
    row["dirty_objects"] = static_cast<std::int64_t>(inc_result.dirty_objects);
    row["incremental_apply_seconds"] = inc_seconds;
    row["incremental_compile_seconds"] = inc_result.compile_seconds;
    row["full_reload_seconds"] = full_seconds;
    row["reference_build_id"] = static_cast<std::int64_t>(reference->build_id());
    row["speedup"] = full_seconds / inc_seconds;
    rows.emplace_back(std::move(row));
  }
  const double speedup = full_total / incremental_total;
  const bool enforced = bench::hardware_threads() >= 4;
  const bool pass = speedup >= 5.0 || !enforced;

  json::Object doc;
  doc["bench"] = "delta";
  doc["scale"] = scale;
  bench::add_host_metadata(doc);
  doc["corpus_objects"] = static_cast<std::int64_t>(corpus_objects);
  doc["ops_per_batch"] = static_cast<std::int64_t>(churn_config.ops_per_batch);
  doc["churn_fraction"] =
      static_cast<double>(churn_config.ops_per_batch) /
      static_cast<double>(corpus_objects);
  doc["batches"] = static_cast<std::int64_t>(kBatches);
  doc["batch_rows"] = rows;
  doc["incremental_apply_seconds_total"] = incremental_total;
  doc["full_reload_seconds_total"] = full_total;
  doc["incremental_speedup_vs_full"] = speedup;
  doc["gate_speedup"] = 5.0;
  doc["gate"] = bench::gate_marker(enforced);
  doc["pass"] = pass;
  const std::string text = json::dump_pretty(json::Value(doc)) + "\n";

  std::FILE* out = std::fopen("BENCH_delta.json", "wb");
  if (out != nullptr) {
    std::fwrite(text.data(), 1, text.size(), out);
    std::fclose(out);
  }
  std::fputs(text.c_str(), stdout);
  if (!enforced && speedup < 5.0) {
    std::printf("perf_delta incremental-vs-full: WARN %.2fx < 5x "
                "(gate warn-only: %u hardware threads)\n",
                speedup, bench::hardware_threads());
  } else {
    std::printf("perf_delta incremental-vs-full: %s (%.2fx)\n",
                pass ? "PASS" : "FAIL", speedup);
  }
  return pass ? 0 : 1;
}
