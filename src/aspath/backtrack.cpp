// Reference backtracking engine for AS-path regexes.
//
// Direct AST interpretation with memoization keyed on (node, position).
// Supports the full language, including the "same pattern" operators
// (~*, ~+, ~{m,n}) that require all repeated ASes to be identical — those
// cannot be captured by a finite predicate NFA, which is why the paper's
// tool skips them (Appendix B notes they could be supported symbolically;
// this engine does exactly that).

#include <unordered_map>
#include <vector>

#include "rpslyzer/aspath/engine.hpp"
#include "rpslyzer/util/strings.hpp"

namespace rpslyzer::aspath {

namespace {

using ir::AsPathRegexNode;

class Evaluator {
 public:
  Evaluator(const MatchEnv& env) : env_(env) {}

  bool unsupported() const noexcept { return unsupported_; }

  /// All positions reachable by matching `node` starting at `pos`.
  const std::vector<std::size_t>& ends(const AsPathRegexNode& node, std::size_t pos) {
    auto key = std::make_pair(&node, pos);
    if (auto it = memo_.find(key); it != memo_.end()) return it->second;
    // Insert a placeholder first: the grammar has no left recursion at the
    // same position except via zero-width repeats, which we cut below.
    memo_.emplace(key, std::vector<std::size_t>{});
    std::vector<std::size_t> result = compute(node, pos);
    // Re-find: nested ends() calls during compute may have rehashed the map.
    auto& slot = memo_[key];
    slot = std::move(result);
    return slot;
  }

 private:
  struct KeyHash {
    std::size_t operator()(const std::pair<const AsPathRegexNode*, std::size_t>& k) const {
      return std::hash<const void*>{}(k.first) ^ (k.second * 0x9e3779b97f4a7c15ULL);
    }
  };

  const MatchEnv& env_;
  bool unsupported_ = false;
  std::unordered_map<std::pair<const AsPathRegexNode*, std::size_t>, std::vector<std::size_t>,
                     KeyHash>
      memo_;

  static void add_unique(std::vector<std::size_t>& v, std::size_t e) {
    for (std::size_t x : v) {
      if (x == e) return;
    }
    v.push_back(e);
  }

  std::vector<std::size_t> compute(const AsPathRegexNode& node, std::size_t pos) {
    return std::visit(
        util::overloaded{
            [&](const ir::ReEmpty&) { return std::vector<std::size_t>{pos}; },
            [&](const ir::ReBeginAnchor&) {
              return pos == 0 ? std::vector<std::size_t>{pos} : std::vector<std::size_t>{};
            },
            [&](const ir::ReEndAnchor&) {
              return pos == env_.path.size() ? std::vector<std::size_t>{pos}
                                             : std::vector<std::size_t>{};
            },
            [&](const ir::ReTokenNode& t) {
              if (pos < env_.path.size() && token_matches(t.token, env_.path[pos], env_)) {
                return std::vector<std::size_t>{pos + 1};
              }
              return std::vector<std::size_t>{};
            },
            [&](const ir::ReConcat& c) {
              std::vector<std::size_t> current{pos};
              for (const auto& part : c.parts) {
                std::vector<std::size_t> next;
                for (std::size_t p : current) {
                  for (std::size_t e : ends(*part, p)) add_unique(next, e);
                }
                current = std::move(next);
                if (current.empty()) break;
              }
              return current;
            },
            [&](const ir::ReAlt& a) {
              std::vector<std::size_t> out;
              for (const auto& option : a.options) {
                for (std::size_t e : ends(*option, pos)) add_unique(out, e);
              }
              return out;
            },
            [&](const ir::ReRepeatNode& r) { return compute_repeat(r, pos); },
        },
        node.node);
  }

  std::vector<std::size_t> compute_repeat(const ir::ReRepeatNode& r, std::size_t pos) {
    if (r.repeat.same_pattern) return compute_same_pattern(r, pos);
    std::vector<std::size_t> out;
    std::vector<std::size_t> current{pos};
    std::vector<bool> visited(env_.path.size() + 1, false);
    visited[pos] = true;
    std::uint32_t iteration = 0;
    const std::uint32_t hard_cap =
        static_cast<std::uint32_t>(env_.path.size()) + r.repeat.min + 1;
    while (!current.empty() && iteration <= hard_cap) {
      if (iteration >= r.repeat.min && (!r.repeat.max || iteration <= *r.repeat.max)) {
        for (std::size_t p : current) add_unique(out, p);
      }
      if (r.repeat.max && iteration == *r.repeat.max) break;
      std::vector<std::size_t> next;
      for (std::size_t p : current) {
        for (std::size_t e : ends(*r.inner, p)) {
          if (e == p) {
            // A zero-width inner match can be pumped any number of times,
            // so every count in [min, max] is reachable at `p`.
            add_unique(out, p);
            continue;
          }
          // Advance only through new positions to guarantee termination.
          if (e <= env_.path.size() && !visited[e]) {
            visited[e] = true;
            next.push_back(e);
          }
        }
      }
      current = std::move(next);
      ++iteration;
    }
    return out;
  }

  /// Same-pattern repetition: every repetition must consume exactly one AS,
  /// all equal. Defined for single-token operands (the shape operators use
  /// in the wild: <[AS64512-AS65535]~*> and friends).
  std::vector<std::size_t> compute_same_pattern(const ir::ReRepeatNode& r, std::size_t pos) {
    const auto* token_node = std::get_if<ir::ReTokenNode>(&r.inner->node);
    if (token_node == nullptr) {
      unsupported_ = true;
      return {};
    }
    std::vector<std::size_t> out;
    if (r.repeat.min == 0) out.push_back(pos);
    if (pos >= env_.path.size()) return out;
    const Asn first = env_.path[pos];
    if (!token_matches(token_node->token, first, env_)) return out;
    std::size_t run = pos;
    std::uint32_t count = 0;
    while (run < env_.path.size() && env_.path[run] == first) {
      ++run;
      ++count;
      if (count >= r.repeat.min && (!r.repeat.max || count <= *r.repeat.max)) {
        add_unique(out, run);
      }
      if (r.repeat.max && count == *r.repeat.max) break;
    }
    return out;
  }
};

}  // namespace

RegexMatch match_backtrack(const ir::AsPathRegex& regex, const MatchEnv& env) {
  Evaluator eval(env);
  // Search semantics: try every start position.
  for (std::size_t start = 0; start <= env.path.size(); ++start) {
    if (!eval.ends(*regex.root, start).empty()) {
      if (eval.unsupported()) return RegexMatch::kUnsupported;
      return RegexMatch::kMatch;
    }
    if (eval.unsupported()) return RegexMatch::kUnsupported;
  }
  return RegexMatch::kNoMatch;
}

}  // namespace rpslyzer::aspath
