// The paper's symbolic Cartesian-product matcher (Appendix B):
//
//   "we first replace each AS token t_i in R with a symbol σ(t_i), and
//    generate a symbolic regex R'. We convert each ASN n_j in A to the set
//    N_j of all symbols that n_j can match ... We then generate a set of
//    symbol strings from the original AS-path A by taking the Cartesian
//    product of N_j for all n_j in A. Finally, if any symbol string matches
//    the symbolic regex R', we consider the AS-path A a match."
//
// Kept as a literal implementation for the ablation benchmark against the
// predicate-NFA engine; a budget guard bounds the exponential product.

#include <vector>

#include "rpslyzer/aspath/engine.hpp"
#include "rpslyzer/util/strings.hpp"

namespace rpslyzer::aspath {

namespace {

using ir::AsPathRegexNode;

/// A reserved symbol meaning "matched by no token" — needed so path
/// elements outside the (searched) match region still yield symbol strings.
constexpr int kOtherSymbol = -1;

void collect_tokens(const AsPathRegexNode& node, std::vector<const ir::ReToken*>& tokens,
                    bool& unsupported) {
  std::visit(util::overloaded{
                 [&](const ir::ReEmpty&) {},
                 [&](const ir::ReBeginAnchor&) {},
                 [&](const ir::ReEndAnchor&) {},
                 [&](const ir::ReTokenNode& t) { tokens.push_back(&t.token); },
                 [&](const ir::ReConcat& c) {
                   for (const auto& p : c.parts) collect_tokens(*p, tokens, unsupported);
                 },
                 [&](const ir::ReAlt& a) {
                   for (const auto& o : a.options) collect_tokens(*o, tokens, unsupported);
                 },
                 [&](const ir::ReRepeatNode& r) {
                   if (r.repeat.same_pattern) unsupported = true;
                   collect_tokens(*r.inner, tokens, unsupported);
                 },
             },
             node.node);
}

/// Matches the symbolic regex against one symbol string. Minimal recursive
/// evaluator: a token matches symbol s iff s is that token's symbol id.
class SymbolMatcher {
 public:
  SymbolMatcher(const std::vector<int>& symbols,
                const std::vector<const ir::ReToken*>& tokens)
      : symbols_(symbols), tokens_(tokens) {}

  bool search(const AsPathRegexNode& root) {
    for (std::size_t start = 0; start <= symbols_.size(); ++start) {
      if (!ends(root, start).empty()) return true;
    }
    return false;
  }

 private:
  const std::vector<int>& symbols_;
  const std::vector<const ir::ReToken*>& tokens_;

  int symbol_of(const ir::ReToken& token) const {
    for (std::size_t i = 0; i < tokens_.size(); ++i) {
      if (tokens_[i] == &token) return static_cast<int>(i);
    }
    return kOtherSymbol;
  }

  static void add_unique(std::vector<std::size_t>& v, std::size_t e) {
    for (std::size_t x : v) {
      if (x == e) return;
    }
    v.push_back(e);
  }

  std::vector<std::size_t> ends(const AsPathRegexNode& node, std::size_t pos) {
    return std::visit(
        util::overloaded{
            [&](const ir::ReEmpty&) { return std::vector<std::size_t>{pos}; },
            [&](const ir::ReBeginAnchor&) {
              return pos == 0 ? std::vector<std::size_t>{pos} : std::vector<std::size_t>{};
            },
            [&](const ir::ReEndAnchor&) {
              return pos == symbols_.size() ? std::vector<std::size_t>{pos}
                                            : std::vector<std::size_t>{};
            },
            [&](const ir::ReTokenNode& t) {
              if (pos < symbols_.size() && symbols_[pos] == symbol_of(t.token)) {
                return std::vector<std::size_t>{pos + 1};
              }
              return std::vector<std::size_t>{};
            },
            [&](const ir::ReConcat& c) {
              std::vector<std::size_t> current{pos};
              for (const auto& part : c.parts) {
                std::vector<std::size_t> next;
                for (std::size_t p : current) {
                  for (std::size_t e : ends(*part, p)) add_unique(next, e);
                }
                current = std::move(next);
                if (current.empty()) break;
              }
              return current;
            },
            [&](const ir::ReAlt& a) {
              std::vector<std::size_t> out;
              for (const auto& option : a.options) {
                for (std::size_t e : ends(*option, pos)) add_unique(out, e);
              }
              return out;
            },
            [&](const ir::ReRepeatNode& r) {
              std::vector<std::size_t> out;
              std::vector<std::size_t> current{pos};
              std::vector<bool> visited(symbols_.size() + 1, false);
              visited[pos] = true;
              std::uint32_t iteration = 0;
              while (!current.empty() && iteration <= symbols_.size() + r.repeat.min + 1) {
                if (iteration >= r.repeat.min &&
                    (!r.repeat.max || iteration <= *r.repeat.max)) {
                  for (std::size_t p : current) add_unique(out, p);
                }
                if (r.repeat.max && iteration == *r.repeat.max) break;
                std::vector<std::size_t> next;
                for (std::size_t p : current) {
                  for (std::size_t e : ends(*r.inner, p)) {
                    if (e == p) {
                      // Zero-width inner match: pumpable to any count.
                      add_unique(out, p);
                      continue;
                    }
                    if (!visited[e]) {
                      visited[e] = true;
                      next.push_back(e);
                    }
                  }
                }
                current = std::move(next);
                ++iteration;
              }
              return out;
            },
        },
        node.node);
  }
};

}  // namespace

RegexMatch match_symbolic(const ir::AsPathRegex& regex, const MatchEnv& env,
                          std::size_t budget) {
  std::vector<const ir::ReToken*> tokens;
  bool unsupported = false;
  collect_tokens(*regex.root, tokens, unsupported);
  if (unsupported) return RegexMatch::kUnsupported;

  // N_j: the symbols each path element can take (always including ⊥).
  std::vector<std::vector<int>> candidates(env.path.size());
  std::size_t total = 1;
  for (std::size_t j = 0; j < env.path.size(); ++j) {
    candidates[j].push_back(kOtherSymbol);
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      if (token_matches(*tokens[i], env.path[j], env)) {
        candidates[j].push_back(static_cast<int>(i));
      }
    }
    if (total > budget / candidates[j].size()) return RegexMatch::kUnsupported;
    total *= candidates[j].size();
  }

  // Enumerate the Cartesian product.
  std::vector<std::size_t> index(env.path.size(), 0);
  std::vector<int> symbols(env.path.size(), kOtherSymbol);
  SymbolMatcher matcher(symbols, tokens);
  for (std::size_t n = 0; n < total; ++n) {
    std::size_t rest = n;
    for (std::size_t j = 0; j < env.path.size(); ++j) {
      symbols[j] = candidates[j][rest % candidates[j].size()];
      rest /= candidates[j].size();
    }
    if (matcher.search(*regex.root)) return RegexMatch::kMatch;
  }
  // The empty path has exactly one (empty) symbol string.
  if (env.path.empty() && matcher.search(*regex.root)) return RegexMatch::kMatch;
  return RegexMatch::kNoMatch;
}

}  // namespace rpslyzer::aspath
