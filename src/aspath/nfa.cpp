// Predicate-NFA engine for AS-path regexes.
//
// Thompson construction over AS tokens. Edges are epsilon, positional
// assertions ('^' start / '$' end), or token edges that consume one AS and
// test it against an AS predicate (ASN equality, as-set membership, PeerAS,
// wildcard, complemented sets). Search semantics come from implicit
// consume-anything self-loops at the start and accept states; explicit
// anchors still bind because assertions check the absolute position.

#include <stdexcept>
#include <vector>

#include "rpslyzer/aspath/engine.hpp"
#include "rpslyzer/util/strings.hpp"

namespace rpslyzer::aspath {

namespace {

using ir::AsPathRegexNode;

struct Edge {
  enum class Kind : std::uint8_t { kEps, kAssertBegin, kAssertEnd, kToken, kAnyToken };
  Kind kind = Kind::kEps;
  int token = -1;  // index into Nfa::tokens for kToken
  int to = -1;
};

struct Nfa {
  std::vector<std::vector<Edge>> states;
  std::vector<ir::ReToken> tokens;
  int start = -1;
  int accept = -1;
  bool unsupported = false;

  int new_state() {
    states.emplace_back();
    return static_cast<int>(states.size()) - 1;
  }
  void add_edge(int from, Edge e) { states[static_cast<std::size_t>(from)].push_back(e); }
};

struct Fragment {
  int in = -1;
  int out = -1;
};

class Builder {
 public:
  explicit Builder(Nfa& nfa) : nfa_(nfa) {}

  Fragment build(const AsPathRegexNode& node) {
    return std::visit(
        util::overloaded{
            [&](const ir::ReEmpty&) { return epsilon_fragment(); },
            [&](const ir::ReBeginAnchor&) {
              Fragment f{nfa_.new_state(), nfa_.new_state()};
              nfa_.add_edge(f.in, {Edge::Kind::kAssertBegin, -1, f.out});
              return f;
            },
            [&](const ir::ReEndAnchor&) {
              Fragment f{nfa_.new_state(), nfa_.new_state()};
              nfa_.add_edge(f.in, {Edge::Kind::kAssertEnd, -1, f.out});
              return f;
            },
            [&](const ir::ReTokenNode& t) {
              Fragment f{nfa_.new_state(), nfa_.new_state()};
              nfa_.tokens.push_back(t.token);
              nfa_.add_edge(f.in, {Edge::Kind::kToken,
                                   static_cast<int>(nfa_.tokens.size()) - 1, f.out});
              return f;
            },
            [&](const ir::ReConcat& c) {
              Fragment f = epsilon_fragment();
              for (const auto& part : c.parts) {
                Fragment p = build(*part);
                nfa_.add_edge(f.out, {Edge::Kind::kEps, -1, p.in});
                f.out = p.out;
              }
              return f;
            },
            [&](const ir::ReAlt& a) {
              Fragment f{nfa_.new_state(), nfa_.new_state()};
              for (const auto& option : a.options) {
                Fragment o = build(*option);
                nfa_.add_edge(f.in, {Edge::Kind::kEps, -1, o.in});
                nfa_.add_edge(o.out, {Edge::Kind::kEps, -1, f.out});
              }
              return f;
            },
            [&](const ir::ReRepeatNode& r) { return build_repeat(r); },
        },
        node.node);
  }

 private:
  Nfa& nfa_;

  Fragment epsilon_fragment() {
    Fragment f{nfa_.new_state(), nfa_.new_state()};
    nfa_.add_edge(f.in, {Edge::Kind::kEps, -1, f.out});
    return f;
  }

  Fragment build_star(const AsPathRegexNode& inner) {
    Fragment f{nfa_.new_state(), nfa_.new_state()};
    Fragment body = build(inner);
    nfa_.add_edge(f.in, {Edge::Kind::kEps, -1, f.out});
    nfa_.add_edge(f.in, {Edge::Kind::kEps, -1, body.in});
    nfa_.add_edge(body.out, {Edge::Kind::kEps, -1, body.in});
    nfa_.add_edge(body.out, {Edge::Kind::kEps, -1, f.out});
    return f;
  }

  Fragment build_repeat(const ir::ReRepeatNode& r) {
    // "Same pattern" repetition cannot be expressed by a finite automaton
    // over AS predicates (it needs equality with the previously consumed
    // AS); the backtracking engine handles it.
    if (r.repeat.same_pattern) {
      nfa_.unsupported = true;
      return epsilon_fragment();
    }
    const std::uint32_t min = r.repeat.min;
    if (min > kMaxRepeatExpansion ||
        (r.repeat.max && *r.repeat.max > kMaxRepeatExpansion)) {
      nfa_.unsupported = true;
      return epsilon_fragment();
    }
    Fragment f = epsilon_fragment();
    for (std::uint32_t i = 0; i < min; ++i) {
      Fragment copy = build(*r.inner);
      nfa_.add_edge(f.out, {Edge::Kind::kEps, -1, copy.in});
      f.out = copy.out;
    }
    if (!r.repeat.max) {
      Fragment star = build_star(*r.inner);
      nfa_.add_edge(f.out, {Edge::Kind::kEps, -1, star.in});
      f.out = star.out;
    } else {
      for (std::uint32_t i = min; i < *r.repeat.max; ++i) {
        // Optional copy.
        Fragment copy = build(*r.inner);
        int join = nfa_.new_state();
        nfa_.add_edge(f.out, {Edge::Kind::kEps, -1, copy.in});
        nfa_.add_edge(f.out, {Edge::Kind::kEps, -1, join});
        nfa_.add_edge(copy.out, {Edge::Kind::kEps, -1, join});
        f.out = join;
      }
    }
    return f;
  }
};

Nfa compile(const ir::AsPathRegex& regex) {
  Nfa nfa;
  Builder builder(nfa);
  Fragment body = builder.build(*regex.root);
  // Search semantics: consume-anything self-loops around the body.
  nfa.start = nfa.new_state();
  nfa.accept = nfa.new_state();
  nfa.add_edge(nfa.start, {Edge::Kind::kAnyToken, -1, nfa.start});
  nfa.add_edge(nfa.start, {Edge::Kind::kEps, -1, body.in});
  nfa.add_edge(body.out, {Edge::Kind::kEps, -1, nfa.accept});
  nfa.add_edge(nfa.accept, {Edge::Kind::kAnyToken, -1, nfa.accept});
  return nfa;
}

/// Epsilon/assertion closure of `frontier` at path position `pos`.
void close(const Nfa& nfa, std::vector<bool>& frontier, std::size_t pos, std::size_t len) {
  std::vector<int> stack;
  for (std::size_t s = 0; s < frontier.size(); ++s) {
    if (frontier[s]) stack.push_back(static_cast<int>(s));
  }
  while (!stack.empty()) {
    int s = stack.back();
    stack.pop_back();
    for (const Edge& e : nfa.states[static_cast<std::size_t>(s)]) {
      bool traverse = false;
      switch (e.kind) {
        case Edge::Kind::kEps:
          traverse = true;
          break;
        case Edge::Kind::kAssertBegin:
          traverse = pos == 0;
          break;
        case Edge::Kind::kAssertEnd:
          traverse = pos == len;
          break;
        case Edge::Kind::kToken:
        case Edge::Kind::kAnyToken:
          break;
      }
      if (traverse && !frontier[static_cast<std::size_t>(e.to)]) {
        frontier[static_cast<std::size_t>(e.to)] = true;
        stack.push_back(e.to);
      }
    }
  }
}

}  // namespace

bool token_matches(const ir::ReToken& token, Asn asn, const MatchEnv& env) {
  auto set_contains = [&](std::string_view name) {
    return env.membership != nullptr && env.membership->contains(name, asn);
  };
  switch (token.kind) {
    case ir::ReToken::Kind::kAsn:
      return token.asn == asn;
    case ir::ReToken::Kind::kAny:
      return true;
    case ir::ReToken::Kind::kPeerAs:
      return asn == env.peer_asn;
    case ir::ReToken::Kind::kAsSet:
      return set_contains(token.as_set);
    case ir::ReToken::Kind::kSet: {
      bool hit = false;
      for (const auto& item : token.items) {
        switch (item.kind) {
          case ir::ReSetItem::Kind::kAsn:
            hit = item.asn == asn;
            break;
          case ir::ReSetItem::Kind::kAsnRange:
            hit = item.asn <= asn && asn <= item.asn_hi;
            break;
          case ir::ReSetItem::Kind::kAsSet:
            hit = set_contains(item.as_set);
            break;
          case ir::ReSetItem::Kind::kPeerAs:
            hit = asn == env.peer_asn;
            break;
        }
        if (hit) break;
      }
      return token.complemented ? !hit : hit;
    }
  }
  return false;
}

struct CompiledRegex::Impl {
  Nfa nfa;
};

namespace {

/// Rebuild the internal automaton from flat tables, validating every index
/// so a damaged snapshot cannot produce out-of-bounds edges.
Nfa from_image(const NfaImage& image) {
  if (image.state_offsets.empty()) throw std::invalid_argument("NfaImage: empty automaton");
  const std::size_t states = image.state_offsets.size() - 1;
  const auto in_states = [&](std::int32_t s) {
    return s >= 0 && static_cast<std::size_t>(s) < states;
  };
  if (!in_states(image.start) || !in_states(image.accept)) {
    throw std::invalid_argument("NfaImage: start/accept out of range");
  }
  Nfa nfa;
  nfa.start = image.start;
  nfa.accept = image.accept;
  nfa.unsupported = image.unsupported;
  nfa.tokens = image.tokens;
  nfa.states.resize(states);
  for (std::size_t s = 0; s < states; ++s) {
    const std::uint32_t begin = image.state_offsets[s];
    const std::uint32_t end = image.state_offsets[s + 1];
    if (begin > end || end > image.edges.size()) {
      throw std::invalid_argument("NfaImage: bad state offsets");
    }
    for (std::uint32_t e = begin; e < end; ++e) {
      const NfaImage::Edge& img = image.edges[e];
      if (img.kind > static_cast<std::uint8_t>(Edge::Kind::kAnyToken)) {
        throw std::invalid_argument("NfaImage: unknown edge kind");
      }
      const auto kind = static_cast<Edge::Kind>(img.kind);
      if (!in_states(img.to)) throw std::invalid_argument("NfaImage: edge target out of range");
      if (kind == Edge::Kind::kToken &&
          (img.token < 0 || static_cast<std::size_t>(img.token) >= image.tokens.size())) {
        throw std::invalid_argument("NfaImage: token index out of range");
      }
      nfa.states[s].push_back({kind, img.token, img.to});
    }
  }
  return nfa;
}

}  // namespace

CompiledRegex::CompiledRegex(const ir::AsPathRegex& regex)
    : impl_(std::make_unique<Impl>(Impl{compile(regex)})) {}
CompiledRegex::CompiledRegex(const NfaImage& image)
    : impl_(std::make_unique<Impl>(Impl{from_image(image)})) {}
CompiledRegex::CompiledRegex(CompiledRegex&&) noexcept = default;
CompiledRegex& CompiledRegex::operator=(CompiledRegex&&) noexcept = default;
CompiledRegex::~CompiledRegex() = default;

bool CompiledRegex::supported() const noexcept { return !impl_->nfa.unsupported; }

NfaImage CompiledRegex::image() const {
  const Nfa& nfa = impl_->nfa;
  NfaImage out;
  out.start = nfa.start;
  out.accept = nfa.accept;
  out.unsupported = nfa.unsupported;
  out.tokens = nfa.tokens;
  out.state_offsets.reserve(nfa.states.size() + 1);
  out.state_offsets.push_back(0);
  for (const auto& edges : nfa.states) {
    for (const Edge& e : edges) {
      out.edges.push_back({static_cast<std::uint8_t>(e.kind), e.token, e.to});
    }
    out.state_offsets.push_back(static_cast<std::uint32_t>(out.edges.size()));
  }
  return out;
}

RegexMatch CompiledRegex::match(const MatchEnv& env) const {
  const Nfa& nfa = impl_->nfa;
  if (nfa.unsupported) return RegexMatch::kUnsupported;

  const std::size_t len = env.path.size();
  std::vector<bool> frontier(nfa.states.size(), false);
  frontier[static_cast<std::size_t>(nfa.start)] = true;
  close(nfa, frontier, 0, len);

  for (std::size_t i = 0; i < len; ++i) {
    std::vector<bool> next(nfa.states.size(), false);
    bool any = false;
    for (std::size_t s = 0; s < frontier.size(); ++s) {
      if (!frontier[s]) continue;
      for (const Edge& e : nfa.states[s]) {
        if (e.kind == Edge::Kind::kToken || e.kind == Edge::Kind::kAnyToken) {
          if (e.kind == Edge::Kind::kAnyToken ||
              token_matches(nfa.tokens[static_cast<std::size_t>(e.token)], env.path[i], env)) {
            next[static_cast<std::size_t>(e.to)] = true;
            any = true;
          }
        }
      }
    }
    if (!any) return RegexMatch::kNoMatch;
    close(nfa, next, i + 1, len);
    frontier = std::move(next);
  }
  return frontier[static_cast<std::size_t>(nfa.accept)] ? RegexMatch::kMatch
                                                        : RegexMatch::kNoMatch;
}

RegexMatch match_nfa(const ir::AsPathRegex& regex, const MatchEnv& env) {
  return CompiledRegex(regex).match(env);
}

}  // namespace rpslyzer::aspath
