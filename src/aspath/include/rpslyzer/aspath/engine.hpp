#pragma once
// AS-path regex evaluation (paper Appendix B, "AS-Path Regex Matching").
//
// Three interchangeable engines are provided:
//
//  * NFA engine (the default): compiles the token regex into a Thompson NFA
//    whose edges carry AS predicates. Equivalent to the paper's symbolic
//    construction but never materializes symbol strings, so matching is
//    O(path × states).
//  * Backtracking engine: a direct AST interpreter. Slower, but supports
//    the "same pattern" unary postfix operators (~*, ~+) that no finite
//    NFA over AS predicates can express; also serves as the reference in
//    engine-equivalence property tests.
//  * Symbolic engine: the paper's literal construction — replace each AS
//    token with a symbol, convert each path ASN to its set of matching
//    symbols, enumerate the Cartesian product of symbol strings, and match
//    each string. Exponential in the worst case (kept for the ablation
//    bench with a budget guard).
//
// Matching semantics: POSIX-style *search* — the regex may match any
// substring of the AS path unless anchored with '^' (path start: the
// neighbor the route was received from) and '$' (path end: the origin AS).

#include <memory>
#include <span>
#include <string_view>

#include "rpslyzer/ir/aspath_regex.hpp"

namespace rpslyzer::aspath {

using ir::Asn;

/// Resolves as-set membership for regex tokens that name sets. Implemented
/// by the IRR index; a null membership treats every set as empty/unknown.
class AsSetMembership {
 public:
  virtual ~AsSetMembership() = default;
  /// Does the (recursively flattened) as-set contain `asn`?
  virtual bool contains(std::string_view as_set, Asn asn) const = 0;
  /// Is the as-set defined at all? (Unknown sets make a rule Unrecorded.)
  virtual bool is_known(std::string_view as_set) const = 0;
};

/// Evaluation environment for one match.
struct MatchEnv {
  /// AS path in BGP order: element 0 is the most recent hop (the neighbor
  /// announcing the route), the last element is the origin AS.
  std::span<const Asn> path;
  /// Binding for the PeerAS keyword.
  Asn peer_asn = 0;
  /// Set membership oracle; may be null.
  const AsSetMembership* membership = nullptr;
};

enum class RegexMatch {
  kMatch,
  kNoMatch,
  kUnsupported,  // construct outside the engine's language (or budget)
};

/// Does a single token match one AS under `env`?
bool token_matches(const ir::ReToken& token, Asn asn, const MatchEnv& env);

/// Primary engine: predicate NFA. kUnsupported for same-pattern operators
/// and repetition counts above kMaxRepeatExpansion.
RegexMatch match_nfa(const ir::AsPathRegex& regex, const MatchEnv& env);

/// A compiled NFA flattened to plain tables, the serialization surface the
/// snapshot persistence layer writes into its arena file. Offsets replace
/// pointers: the edges of state `s` are `edges[state_offsets[s]` ..
/// `state_offsets[s + 1])`. Kinds mirror the engine's internal edge kinds
/// (0 = epsilon, 1 = assert-begin, 2 = assert-end, 3 = token, 4 = any).
struct NfaImage {
  struct Edge {
    std::uint8_t kind = 0;
    std::int32_t token = -1;  // index into `tokens` for kind 3
    std::int32_t to = -1;
  };

  std::vector<std::uint32_t> state_offsets;  // size = states + 1
  std::vector<Edge> edges;
  std::vector<ir::ReToken> tokens;
  std::int32_t start = -1;
  std::int32_t accept = -1;
  bool unsupported = false;
};

/// A regex pre-lowered to its predicate NFA. match_nfa() rebuilds the
/// Thompson automaton on every call; compiling once and matching many times
/// is what the §5-scale hot loop (and the compiled policy snapshot) wants.
/// match() is const and allocates only local frontier vectors, so one
/// CompiledRegex is safely shared across threads.
class CompiledRegex {
 public:
  explicit CompiledRegex(const ir::AsPathRegex& regex);
  /// Rehydrate from a previously exported image (snapshot load path).
  /// Throws std::invalid_argument when the image's indices are out of
  /// bounds or an edge kind is unknown.
  explicit CompiledRegex(const NfaImage& image);
  CompiledRegex(CompiledRegex&&) noexcept;
  CompiledRegex& operator=(CompiledRegex&&) noexcept;
  CompiledRegex(const CompiledRegex&) = delete;
  CompiledRegex& operator=(const CompiledRegex&) = delete;
  ~CompiledRegex();

  /// False when the regex uses constructs outside the NFA language
  /// (same-pattern operators, oversized repeats); match() then returns
  /// kUnsupported and the caller should fall back to match_backtrack.
  bool supported() const noexcept;

  /// Export the automaton as flat relocatable tables; image() followed by
  /// CompiledRegex(image) reproduces identical match behaviour.
  NfaImage image() const;

  RegexMatch match(const MatchEnv& env) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Reference engine: memoized backtracking over the AST. Supports the full
/// language including same-pattern operators.
RegexMatch match_backtrack(const ir::AsPathRegex& regex, const MatchEnv& env);

/// The paper's symbolic Cartesian-product construction. `budget` caps the
/// number of symbol strings enumerated; kUnsupported when exceeded.
RegexMatch match_symbolic(const ir::AsPathRegex& regex, const MatchEnv& env,
                          std::size_t budget = 1u << 16);

/// Bounded repeat expansion in the NFA ({m,n} with n beyond this is
/// refused rather than exploding the automaton).
inline constexpr std::uint32_t kMaxRepeatExpansion = 64;

}  // namespace rpslyzer::aspath
