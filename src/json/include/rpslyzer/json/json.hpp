#pragma once
// Minimal JSON document model, writer and parser.
//
// RPSLyzer exports its intermediate representation to JSON "for integration
// with other tools that leverage RPSL information" (§3). This module is the
// self-contained substrate for that export: a value type, a compact/pretty
// writer, and a strict RFC 8259 parser used to round-trip the IR in tests.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace rpslyzer::json {

class Value;

using Array = std::vector<Value>;
// std::map keeps object keys ordered, which makes exports deterministic and
// diffable — important for the golden-file tests.
using Object = std::map<std::string, Value, std::less<>>;

/// Thrown by the parser on malformed input and by typed accessors on
/// type mismatch.
class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A JSON value: null, bool, integer, double, string, array, or object.
/// Integers are kept distinct from doubles so ASNs and counters survive a
/// round-trip exactly.
class Value {
 public:
  Value() : data_(nullptr) {}
  Value(std::nullptr_t) : data_(nullptr) {}
  Value(bool b) : data_(b) {}
  Value(std::int64_t i) : data_(i) {}
  Value(int i) : data_(static_cast<std::int64_t>(i)) {}
  Value(unsigned i) : data_(static_cast<std::int64_t>(i)) {}
  Value(std::uint64_t i) : data_(static_cast<std::int64_t>(i)) {}
  Value(double d) : data_(d) {}
  Value(const char* s) : data_(std::string(s)) {}
  Value(std::string_view s) : data_(std::string(s)) {}
  Value(std::string s) : data_(std::move(s)) {}
  Value(Array a) : data_(std::move(a)) {}
  Value(Object o) : data_(std::move(o)) {}

  bool is_null() const noexcept { return std::holds_alternative<std::nullptr_t>(data_); }
  bool is_bool() const noexcept { return std::holds_alternative<bool>(data_); }
  bool is_int() const noexcept { return std::holds_alternative<std::int64_t>(data_); }
  bool is_double() const noexcept { return std::holds_alternative<double>(data_); }
  bool is_number() const noexcept { return is_int() || is_double(); }
  bool is_string() const noexcept { return std::holds_alternative<std::string>(data_); }
  bool is_array() const noexcept { return std::holds_alternative<Array>(data_); }
  bool is_object() const noexcept { return std::holds_alternative<Object>(data_); }

  bool as_bool() const;
  std::int64_t as_int() const;
  double as_double() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  Array& as_array();
  const Object& as_object() const;
  Object& as_object();

  /// Object member access; throws JsonError if not an object or key missing.
  const Value& at(std::string_view key) const;
  /// Object member lookup; nullptr when absent (or not an object).
  const Value* find(std::string_view key) const noexcept;
  /// Array element access; throws JsonError when out of range.
  const Value& at(std::size_t index) const;

  /// Insert-or-assign into an object value (converts null to object first).
  Value& operator[](std::string_view key);

  friend bool operator==(const Value&, const Value&) = default;

 private:
  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, Array, Object> data_;
};

/// Serialize compactly (no whitespace).
std::string dump(const Value& v);

/// Serialize with 2-space indentation.
std::string dump_pretty(const Value& v);

/// Parse a complete JSON document; throws JsonError on malformed input or
/// trailing garbage.
Value parse(std::string_view text);

}  // namespace rpslyzer::json
