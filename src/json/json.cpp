#include "rpslyzer/json/json.hpp"

#include <array>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace rpslyzer::json {

namespace {

[[noreturn]] void type_error(const char* expected) {
  throw JsonError(std::string("json: value is not ") + expected);
}

}  // namespace

bool Value::as_bool() const {
  if (const auto* b = std::get_if<bool>(&data_)) return *b;
  type_error("a bool");
}

std::int64_t Value::as_int() const {
  if (const auto* i = std::get_if<std::int64_t>(&data_)) return *i;
  if (const auto* d = std::get_if<double>(&data_)) {
    if (*d == std::floor(*d)) return static_cast<std::int64_t>(*d);
  }
  type_error("an integer");
}

double Value::as_double() const {
  if (const auto* d = std::get_if<double>(&data_)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(&data_)) return static_cast<double>(*i);
  type_error("a number");
}

const std::string& Value::as_string() const {
  if (const auto* s = std::get_if<std::string>(&data_)) return *s;
  type_error("a string");
}

const Array& Value::as_array() const {
  if (const auto* a = std::get_if<Array>(&data_)) return *a;
  type_error("an array");
}

Array& Value::as_array() {
  if (auto* a = std::get_if<Array>(&data_)) return *a;
  type_error("an array");
}

const Object& Value::as_object() const {
  if (const auto* o = std::get_if<Object>(&data_)) return *o;
  type_error("an object");
}

Object& Value::as_object() {
  if (auto* o = std::get_if<Object>(&data_)) return *o;
  type_error("an object");
}

const Value& Value::at(std::string_view key) const {
  const Object& o = as_object();
  auto it = o.find(key);
  if (it == o.end()) throw JsonError("json: missing key '" + std::string(key) + "'");
  return it->second;
}

const Value* Value::find(std::string_view key) const noexcept {
  const auto* o = std::get_if<Object>(&data_);
  if (o == nullptr) return nullptr;
  auto it = o->find(key);
  return it == o->end() ? nullptr : &it->second;
}

const Value& Value::at(std::size_t index) const {
  const Array& a = as_array();
  if (index >= a.size()) throw JsonError("json: array index out of range");
  return a[index];
}

Value& Value::operator[](std::string_view key) {
  if (is_null()) data_ = Object{};
  return as_object()[std::string(key)];
}

namespace {

void write_escaped(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void write_number(std::string& out, double d) {
  if (!std::isfinite(d)) {
    // JSON has no Inf/NaN; emit null like most tolerant writers.
    out += "null";
    return;
  }
  std::array<char, 32> buf{};
  auto [ptr, ec] = std::to_chars(buf.data(), buf.data() + buf.size(), d);
  out.append(buf.data(), ptr);
}

void write_value(std::string& out, const Value& v, int indent, int depth) {
  const bool pretty = indent > 0;
  auto newline = [&](int d) {
    if (pretty) {
      out.push_back('\n');
      out.append(static_cast<std::size_t>(indent * d), ' ');
    }
  };

  if (v.is_null()) {
    out += "null";
  } else if (v.is_bool()) {
    out += v.as_bool() ? "true" : "false";
  } else if (v.is_int()) {
    out += std::to_string(v.as_int());
  } else if (v.is_double()) {
    write_number(out, v.as_double());
  } else if (v.is_string()) {
    write_escaped(out, v.as_string());
  } else if (v.is_array()) {
    const Array& a = v.as_array();
    if (a.empty()) {
      out += "[]";
      return;
    }
    out.push_back('[');
    bool first = true;
    for (const Value& e : a) {
      if (!first) out.push_back(',');
      first = false;
      newline(depth + 1);
      write_value(out, e, indent, depth + 1);
    }
    newline(depth);
    out.push_back(']');
  } else {
    const Object& o = v.as_object();
    if (o.empty()) {
      out += "{}";
      return;
    }
    out.push_back('{');
    bool first = true;
    for (const auto& [key, value] : o) {
      if (!first) out.push_back(',');
      first = false;
      newline(depth + 1);
      write_escaped(out, key);
      out.push_back(':');
      if (pretty) out.push_back(' ');
      write_value(out, value, indent, depth + 1);
    }
    newline(depth);
    out.push_back('}');
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;

  [[noreturn]] void fail(const std::string& why) {
    throw JsonError("json parse error at offset " + std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Value parse_value() {
    skip_ws();
    char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Value(parse_string());
      case 't':
        if (consume_literal("true")) return Value(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Value(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Value(nullptr);
        fail("invalid literal");
      default:
        return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Object o;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(o));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      o.insert_or_assign(std::move(key), parse_value());
      skip_ws();
      char c = peek();
      if (c == ',') {
        ++pos_;
      } else if (c == '}') {
        ++pos_;
        return Value(std::move(o));
      } else {
        fail("expected ',' or '}' in object");
      }
    }
  }

  Value parse_array() {
    expect('[');
    Array a;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(a));
    }
    while (true) {
      a.push_back(parse_value());
      skip_ws();
      char c = peek();
      if (c == ',') {
        ++pos_;
      } else if (c == ']') {
        ++pos_;
        return Value(std::move(a));
      } else {
        fail("expected ',' or ']' in array");
      }
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("invalid \\u escape");
            }
          }
          // Encode as UTF-8; surrogate pairs are not needed for RPSL data
          // (ASCII), but handle the BMP correctly anyway.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          fail("invalid escape character");
      }
    }
  }

  Value parse_number() {
    std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool has_digits = false;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
      has_digits = true;
    }
    if (!has_digits) fail("invalid number");
    bool is_integer = true;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      is_integer = false;
      ++pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_integer = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    std::string_view token = text_.substr(start, pos_ - start);
    if (is_integer) {
      std::int64_t value = 0;
      auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
      if (ec == std::errc() && ptr == token.data() + token.size()) return Value(value);
      // fall through to double on int64 overflow
    }
    double value = 0;
    auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc() || ptr != token.data() + token.size()) fail("invalid number");
    return Value(value);
  }
};

}  // namespace

std::string dump(const Value& v) {
  std::string out;
  write_value(out, v, 0, 0);
  return out;
}

std::string dump_pretty(const Value& v) {
  std::string out;
  write_value(out, v, 2, 0);
  return out;
}

Value parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace rpslyzer::json
