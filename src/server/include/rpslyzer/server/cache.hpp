#pragma once
// Sharded LRU cache for framed query responses.
//
// The daemon serves a read-mostly corpus: the same `!g`/`!a` queries arrive
// from many bgpq4-style clients, and every response is a pure function of
// (normalized query, corpus). Caching the framed response string therefore
// needs no invalidation logic beyond "which corpus answered it": every
// entry is stamped with the corpus *generation* at insert time, and a
// reload simply bumps the server's generation counter — stale entries fail
// the stamp check on lookup and are evicted lazily, so a reload is O(1)
// and never blocks serving.
//
// Sharding: the cache is split into N independently locked shards selected
// by key hash, so worker threads rarely contend on the same mutex.

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace rpslyzer::server {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;    // LRU-capacity evictions
  std::uint64_t invalidated = 0;  // stale-generation entries dropped on get
  std::size_t entries = 0;
  std::size_t bytes = 0;  // key + value payload bytes currently held

  double hit_ratio() const noexcept {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class ResponseCache {
 public:
  /// `capacity` is the total entry budget across all shards (each shard
  /// gets an equal slice, at least one). `shards` is rounded up to 1.
  explicit ResponseCache(std::size_t capacity, std::size_t shards = 8);

  /// Returns the cached response if present *and* stamped with
  /// `generation`; entries from older generations are dropped and counted
  /// as `invalidated` misses.
  std::optional<std::string> get(std::string_view key, std::uint64_t generation);

  /// Insert (or refresh) an entry, evicting the shard's LRU tail when over
  /// budget. A zero-capacity cache is a valid no-op configuration.
  void put(std::string_view key, std::uint64_t generation, std::string value);

  /// Drop every entry (used by tests; reloads rely on generations instead).
  void clear();

  /// Aggregated counters across shards (racy snapshot, fine for stats).
  CacheStats stats() const;

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t shard_count() const noexcept { return shards_.size(); }

 private:
  struct Entry {
    std::string key;
    std::string value;
    std::uint64_t generation = 0;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    // string_view keys point into the stable std::list nodes.
    std::unordered_map<std::string_view, std::list<Entry>::iterator> map;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t invalidated = 0;
    std::size_t bytes = 0;
  };

  Shard& shard_for(std::string_view key);
  void erase_locked(Shard& shard, std::list<Entry>::iterator it);

  std::size_t capacity_;
  std::size_t per_shard_capacity_;
  std::vector<Shard> shards_;
};

/// Canonical cache key for a query line: trimmed, leading '!' dropped,
/// ASCII-lowercased (RPSL names are case-insensitive, so differently-cased
/// queries share one entry).
std::string normalize_query_key(std::string_view line);

}  // namespace rpslyzer::server
