#pragma once
// Lock-free server observability: monotone counters plus a log2-bucketed
// service-latency histogram, all plain atomics so the hot path never takes
// a lock to record a sample. Percentiles (p50/p99) are reconstructed from
// the bucket counts — exact enough for an ops dashboard, and bounded
// memory no matter how many queries flow through.

#include <array>
#include <atomic>
#include <cstdint>

namespace rpslyzer::server {

class LatencyHistogram {
 public:
  // Bucket i holds samples in [2^i, 2^(i+1)) microseconds; bucket 0 also
  // absorbs sub-microsecond samples, the last bucket absorbs the tail.
  static constexpr std::size_t kBuckets = 24;  // up to ~2^24 us ≈ 16.7 s

  void record(std::uint64_t micros) noexcept {
    buckets_[bucket_for(micros)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_micros_.fetch_add(micros, std::memory_order_relaxed);
  }

  std::uint64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }

  std::uint64_t mean_micros() const noexcept {
    const std::uint64_t n = count();
    return n == 0 ? 0 : sum_micros_.load(std::memory_order_relaxed) / n;
  }

  /// Upper bound (in microseconds) of the bucket containing the p-th
  /// percentile sample, p in [0, 100]. Returns 0 with no samples.
  std::uint64_t percentile_micros(double p) const noexcept;

  void reset() noexcept;

 private:
  static std::size_t bucket_for(std::uint64_t micros) noexcept;

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_micros_{0};
};

/// Counters shared by the event loop and the worker pool. Everything is
/// relaxed-atomic: stats reads are advisory snapshots, never synchronization.
struct ServerStats {
  std::atomic<std::uint64_t> connections_accepted{0};
  std::atomic<std::uint64_t> connections_rejected{0};  // max-connection guard
  std::atomic<std::uint64_t> connections_open{0};
  std::atomic<std::uint64_t> connections_idle_closed{0};
  std::atomic<std::uint64_t> queries_total{0};
  std::atomic<std::uint64_t> queries_errors{0};  // responses starting with 'F'
  std::atomic<std::uint64_t> admin_queries{0};   // !stats / !health / !reload / !t / !q
  std::atomic<std::uint64_t> queries_timed_out{0};  // deadline sweep sent "F timeout"
  std::atomic<std::uint64_t> bytes_in{0};
  std::atomic<std::uint64_t> bytes_out{0};
  std::atomic<std::uint64_t> reloads{0};            // successful corpus swaps
  std::atomic<std::uint64_t> reload_failures{0};    // loader errored; stale gen kept
  std::atomic<std::uint64_t> reload_retries{0};     // backoff retries fired
  std::atomic<std::uint64_t> reads_paused{0};       // backpressure pause events
  std::atomic<std::uint64_t> slow_client_disconnects{0};  // unwritable past grace
  LatencyHistogram latency;
};

}  // namespace rpslyzer::server
