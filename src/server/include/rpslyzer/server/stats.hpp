#pragma once
// Server observability, as a view over the obs metrics registry.
//
// Every counter the event loop and worker pool touch is an obs::Counter /
// obs::Gauge / obs::Histogram handle resolved once at Server construction
// from the server's private MetricsRegistry — so `!stats` and `!metrics`
// are two renderings of the same storage, recording stays a relaxed atomic
// RMW with no lock on the hot path, and the latency bucket layout comes
// from configuration instead of being hard-coded (the old LatencyHistogram
// fixed 24 log2 µs buckets at compile time).
//
// Snapshot coherence: `snapshot()` reads every counter exactly once, reads
// subordinate counters (errors, admin, timeouts) *before* the totals they
// are a subset of, and takes the histogram's retry-until-stable snapshot —
// so a rendered stats page can never report errors > queries or a
// mean/percentile pair computed from two different populations.

#include <cstdint>
#include <vector>

#include "rpslyzer/obs/metrics.hpp"

namespace rpslyzer::server {

struct ServerStats {
  /// Doubling bounds from 1 µs to ~8 s, expressed in seconds — the default
  /// for ServerConfig::latency_bounds.
  static std::vector<double> default_latency_bounds();

  explicit ServerStats(obs::MetricsRegistry& registry,
                       std::vector<double> latency_bounds);

  obs::Counter& connections_accepted;
  obs::Counter& connections_rejected;  // max-connection guard
  obs::Gauge& connections_open;
  obs::Counter& connections_idle_closed;
  obs::Counter& queries_total;
  obs::Counter& queries_errors;  // responses starting with 'F'
  obs::Counter& admin_queries;   // !stats / !health / !reload / !metrics / !t / !q
  obs::Counter& queries_timed_out;  // deadline sweep sent "F timeout"
  obs::Counter& bytes_in;
  obs::Counter& bytes_out;
  obs::Counter& reloads;            // successful corpus swaps
  obs::Counter& reload_failures;    // loader errored; stale gen kept
  obs::Counter& reload_retries;     // backoff retries fired
  obs::Counter& reads_paused;       // backpressure pause events
  obs::Counter& slow_client_disconnects;  // unwritable past grace
  obs::Histogram& latency;                // query service time, in seconds

  /// One coherent read of everything above.
  struct Snapshot {
    std::uint64_t connections_accepted = 0;
    std::uint64_t connections_rejected = 0;
    std::int64_t connections_open = 0;
    std::uint64_t connections_idle_closed = 0;
    std::uint64_t queries_total = 0;
    std::uint64_t queries_errors = 0;
    std::uint64_t admin_queries = 0;
    std::uint64_t queries_timed_out = 0;
    std::uint64_t bytes_in = 0;
    std::uint64_t bytes_out = 0;
    std::uint64_t reloads = 0;
    std::uint64_t reload_failures = 0;
    std::uint64_t reload_retries = 0;
    std::uint64_t reads_paused = 0;
    std::uint64_t slow_client_disconnects = 0;
    obs::Histogram::Snapshot latency;

    std::uint64_t latency_mean_micros() const noexcept;
    std::uint64_t latency_percentile_micros(double p,
                                            const std::vector<double>& bounds) const noexcept;
  };

  Snapshot snapshot() const noexcept;
};

}  // namespace rpslyzer::server
