#pragma once
// rpslyzerd — a concurrent IRRd-compatible query daemon.
//
// Serves the pipelined IRRd "!" query protocol (the wire format bgpq4 and
// peers speak, [45] in the paper) over the RPSLyzer index, turning the IR
// from an analysis substrate into an actual registry server:
//
//   * one epoll event loop with edge-triggered non-blocking sockets does
//     all accepting, line framing, and writing — it never parses RPSL or
//     resolves sets, so accept latency stays flat under load;
//   * a fixed worker pool evaluates queries against an immutable corpus
//     snapshot and posts framed responses back through a completion queue
//     (an eventfd wakes the loop), with per-connection sequence numbers so
//     pipelined responses are written strictly in request order;
//   * a sharded LRU response cache fronts the engine; entries are stamped
//     with a corpus generation, so a reload (admin `!reload` or SIGHUP via
//     request_reload) atomically swaps the index and implicitly invalidates
//     every stale entry without pausing service;
//   * `!stats` reports connections, query counts, cache hit ratio, and
//     p50/p99 service latency; an optional periodic log line mirrors it;
//   * stop() drains in-flight responses (bounded by drain_timeout) before
//     closing sockets and joining every thread — no leaks under ASan/TSan.
//
// Degraded-mode serving: a failed reload never takes the daemon down — the
// last good generation stays live, the event loop schedules retries with
// capped exponential backoff + jitter (reload_backoff), and `!health`
// reports healthy / degraded(reason, stale age) / loading. Per-query
// deadlines (`query_deadline`) answer overdue queries with `F timeout`
// while the stalled worker's late result is discarded, and slow clients
// whose output buffer exceeds `max_output_buffer_bytes` stop being read
// (and are disconnected after `write_stall_grace` of unwritability), so one
// bad peer cannot exhaust daemon memory. Failpoint sites ("server.read",
// "server.send", "server.dispatch"; see util/failpoint.hpp) make each
// failure injectable.
//
// Protocol notes: engine queries (!g !6 !i !a !o) answer exactly what
// query::QueryEngine::evaluate returns, byte for byte. Admin extensions:
// `!q` closes the connection after pending responses flush, `!!` is the
// IRRd keep-alive no-op, `!t<seconds>` adjusts this connection's idle
// timeout, `!stats`, `!health`, and `!reload` as above.
//
// Fleet observability (PR 8): an optional `!id <hex>` prefix supplies the
// query's 64-bit trace id (server-assigned otherwise), `!slow` dumps the
// slow-query log, `!trace <hex>` replays one query's flight record(s),
// and `!fleet` (origin only) renders per-edge heartbeat-digest
// aggregation.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "rpslyzer/irr/index.hpp"
#include "rpslyzer/obs/flight.hpp"
#include "rpslyzer/obs/metrics.hpp"
#include "rpslyzer/server/cache.hpp"
#include "rpslyzer/server/stats.hpp"

namespace rpslyzer::compile {
class CompiledPolicySnapshot;
}  // namespace rpslyzer::compile

namespace rpslyzer::server {

/// Produces a fresh compiled corpus snapshot (index + relations lowered by
/// compile::CompiledPolicySnapshot::build); called once at start() and
/// again on every reload, off the event loop. The returned pointer must
/// keep whatever owns the underlying Index alive — build from aliasing
/// shared_ptrs over the owner. Return nullptr (or throw) on failure: the
/// server keeps serving the previous generation and answers the reload
/// with an error.
using CorpusLoader = std::function<std::shared_ptr<const compile::CompiledPolicySnapshot>()>;

struct ServerConfig {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = ephemeral; see Server::port() after start()
  unsigned worker_threads = 4;  // 0 = hardware concurrency
  std::size_t cache_capacity = 16384;  // cached responses (0 disables)
  std::size_t cache_shards = 8;
  std::size_t max_connections = 1024;  // beyond this, accept+refuse
  std::size_t max_line_bytes = 4096;   // longest accepted query line
  std::chrono::milliseconds idle_timeout{30000};  // 0 = never
  std::chrono::milliseconds drain_timeout{5000};  // graceful-shutdown budget
  std::chrono::milliseconds stats_log_interval{0};  // 0 = no periodic line

  // Robustness knobs (PR 2). Deadlines and stall handling are enforced on
  // the event loop's sweep tick, so they resolve at ~100 ms granularity.
  std::chrono::milliseconds query_deadline{0};  // 0 = none; overdue → "F timeout"
  std::size_t max_output_buffer_bytes = 4u << 20;  // 0 = unlimited; pause reads past this
  std::chrono::milliseconds write_stall_grace{5000};  // 0 = never drop stalled peers
  std::chrono::milliseconds reload_retry_initial{1000};  // first backoff step
  std::chrono::milliseconds reload_retry_max{60000};     // backoff cap

  // Telemetry (PR 3). Latency buckets are inclusive upper bounds in
  // *seconds* (default 1 µs … ~8 s doubling); `!metrics` always works, and
  // a non-empty snapshot path additionally dumps the same Prometheus page
  // to a file every snapshot interval for offline diffing.
  std::vector<double> latency_bounds = ServerStats::default_latency_bounds();
  std::string metrics_snapshot_path;                     // empty = no dumps
  std::chrono::milliseconds metrics_snapshot_interval{10000};

  // Fleet observability (PR 8). Every accepted query gets a 64-bit trace id
  // (client-supplied via `!id <hex>` or server-assigned) and leaves one
  // record in a lock-free flight-recorder ring, dumped by `!slow` /
  // `!trace <id>`. Queries slower than `slow_threshold` are copied to the
  // bounded slow-query log (0 = keep no slow log); deadline misses snapshot
  // the ring next to the metrics file for post-mortem.
  std::chrono::milliseconds slow_threshold{0};  // `--slow-ms`; 0 = off
  std::size_t flight_capacity = 4096;           // ring slots (0 disables recording)
};

/// Daemon health, as served by `!health`.
enum class Health : std::uint8_t {
  kHealthy,   // current generation loaded cleanly
  kLoading,   // a (re)load is in flight and the last one succeeded
  kDegraded,  // last reload failed; serving the previous good generation
};

const char* to_string(Health h) noexcept;

struct HealthStatus {
  Health state = Health::kLoading;
  std::string reason;  // degraded: why the last reload failed
  std::uint64_t generation = 0;
  std::chrono::milliseconds generation_age{0};  // since this generation loaded
  unsigned reload_attempts = 0;                 // consecutive failed reloads
  bool retry_armed = false;
  std::chrono::milliseconds next_retry{0};  // until the armed retry fires
  bool reload_in_flight = false;
};

/// Deterministic capped exponential backoff with multiplicative jitter in
/// [0.75, 1.25]·step: attempt 0 ≈ initial, doubling up to `max_backoff`.
/// Pure — the retry schedule is unit-testable without a clock.
std::chrono::milliseconds reload_backoff(unsigned attempt,
                                         std::chrono::milliseconds initial,
                                         std::chrono::milliseconds max_backoff,
                                         std::uint64_t seed) noexcept;

class Server {
 public:
  Server(ServerConfig config, CorpusLoader loader);
  ~Server();  // stops and joins if still running

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Load the corpus, bind, and spawn the event loop + workers. Returns
  /// false (with *error set) on load/bind failure. Non-blocking.
  bool start(std::string* error = nullptr);

  /// Graceful shutdown: stop accepting, drain in-flight responses (up to
  /// drain_timeout), close every socket, join every thread. Idempotent.
  void stop();

  /// Block until stop() or request_stop() completes the shutdown.
  void wait();

  bool running() const noexcept { return running_.load(std::memory_order_acquire); }

  /// Bound port (useful with config.port == 0). Valid after start().
  std::uint16_t port() const noexcept { return port_; }

  /// Async-signal-safe: flag a graceful shutdown / corpus reload and wake
  /// the event loop. Safe to call from SIGTERM/SIGHUP handlers.
  void request_stop() noexcept;
  void request_reload() noexcept;

  std::uint64_t generation() const noexcept {
    return generation_.load(std::memory_order_relaxed);
  }
  const ServerStats& stats() const noexcept { return stats_; }
  CacheStats cache_stats() const { return cache_.stats(); }

  /// This server's private metric storage (merged with the process-global
  /// registry by metrics_payload()).
  const obs::MetricsRegistry& metrics_registry() const noexcept { return registry_; }

  /// Current health (the structured form of `!health`).
  HealthStatus health() const;

  /// The text behind `!stats` (unframed; one "key: value" line per stat).
  std::string stats_payload() const;

  /// The text behind `!metrics`: Prometheus text exposition merging the
  /// process-global registry (loader, query engine, failpoints) with this
  /// server's own (connections, queries, cache, latency).
  std::string metrics_payload() const;

  /// The text behind `!health`: first line "status: <state>", then
  /// machine-parseable "key: value" detail lines.
  std::string health_payload() const;

  /// Install the `!repl*` admin-verb handler (replication publisher or
  /// edge status). The handler receives the query body after the "repl"
  /// token ("", ".info", ".fetch ...", ".beat ...") and returns a COMPLETE
  /// framed response — repl chunk responses are megabytes of binary and
  /// must bypass both frame_response's newline canonicalization and the
  /// response cache, so they never flow through the worker/answer path.
  /// Set before start(); the handler runs on the event-loop thread.
  void set_repl_handler(std::function<std::string(std::string_view)> handler) {
    repl_handler_ = std::move(handler);
  }

  /// Extra line(s) appended to the `!stats` payload (no trailing newline),
  /// e.g. the replication role/generation line. Set before start().
  void set_stats_extra(std::function<std::string()> fn) { stats_extra_ = std::move(fn); }

  /// Install the `!fleet` admin-verb payload (origin-side aggregation of
  /// per-edge heartbeat digests). Returns the unframed payload text; unset
  /// means `!fleet` answers "F fleet aggregation not enabled". Set before
  /// start(); runs on the event-loop thread.
  void set_fleet_handler(std::function<std::string()> fn) {
    fleet_handler_ = std::move(fn);
  }

  /// Extra Prometheus exposition text appended to `!metrics` (and the
  /// metrics snapshot file), e.g. the origin's per-edge fleet series. Must
  /// return complete families (`# HELP`/`# TYPE` + samples) whose names are
  /// disjoint from the server's own. Set before start().
  void set_metrics_extra(std::function<std::string()> fn) {
    metrics_extra_ = std::move(fn);
  }

  /// This server's per-query flight recorder (`!slow` / `!trace` storage).
  const obs::FlightRecorder& flight() const noexcept { return flight_; }

 private:
  struct Connection;
  struct Task {
    std::uint64_t conn_id = 0;
    std::uint64_t seq = 0;
    std::string line;
    std::chrono::steady_clock::time_point t0;
    bool reload = false;
    std::uint64_t trace_id = 0;
  };
  /// answer() reports how it resolved a query so the worker can file a
  /// complete flight record without re-deriving cache state.
  struct EvalInfo {
    char cache = '-';  // 'h' hit, 'm' miss
    std::uint32_t eval_us = 0;
    std::uint64_t generation = 0;
  };
  struct Completion {
    std::uint64_t conn_id = 0;
    std::uint64_t seq = 0;
    std::string response;
  };
  struct Snapshot {
    std::shared_ptr<const compile::CompiledPolicySnapshot> corpus;
    std::uint64_t generation = 0;
  };

  bool setup_listener(std::string* error);
  void event_loop();
  void worker_loop();

  void accept_ready();
  void handle_conn_event(std::uint64_t id, std::uint32_t events);
  void read_ready(Connection& conn);
  void parse_lines(Connection& conn);
  void dispatch_line(Connection& conn, std::string_view raw);
  void deliver(Connection& conn, std::uint64_t seq, std::string response);
  void flush_writes(Connection& conn);
  void refresh_epoll_interest(Connection& conn, bool want_write);
  void apply_backpressure(Connection& conn);
  void close_if_drained(Connection& conn);
  void destroy_conn(std::uint64_t id);
  void drain_completions();
  void sweep_idle(std::chrono::steady_clock::time_point now);
  void sweep_deadlines(std::chrono::steady_clock::time_point now);
  void sweep_stalled(std::chrono::steady_clock::time_point now);
  void maybe_schedule_retry(std::chrono::steady_clock::time_point now);
  void resume_paused_reads();
  void maybe_log_stats(std::chrono::steady_clock::time_point now);
  void maybe_dump_metrics(std::chrono::steady_clock::time_point now);
  void begin_shutdown();
  void enqueue_task(Task task);
  void wake() noexcept;

  Snapshot snapshot() const;
  std::string answer(const std::string& line, EvalInfo* info = nullptr);
  static std::string verify_query(const compile::CompiledPolicySnapshot& corpus,
                                  std::string_view args);
  std::string do_reload();

  // Flight-recorder plumbing.
  void record_flight(std::uint64_t trace_id, std::string_view verb,
                     std::chrono::steady_clock::time_point t0,
                     std::uint32_t queue_us, const EvalInfo& info, char outcome,
                     std::uint32_t bytes);
  void dump_flight_snapshot(const char* reason, std::uint64_t trace_id);
  std::string slow_payload() const;
  std::string trace_payload(std::uint64_t trace_id) const;

  ServerConfig config_;
  CorpusLoader loader_;
  std::function<std::string(std::string_view)> repl_handler_;
  std::function<std::string()> stats_extra_;
  std::function<std::string()> fleet_handler_;
  std::function<std::string()> metrics_extra_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::uint16_t port_ = 0;

  std::thread loop_thread_;
  std::vector<std::thread> worker_threads_;

  std::atomic<bool> running_{false};
  std::atomic<bool> loop_exited_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> reload_requested_{false};
  bool started_ = false;
  bool shutting_down_ = false;  // event-loop-thread only
  std::chrono::steady_clock::time_point drain_deadline_;

  // Corpus snapshot; swapped wholesale on reload.
  mutable std::mutex corpus_mu_;
  std::shared_ptr<const compile::CompiledPolicySnapshot> corpus_;
  std::atomic<std::uint64_t> generation_{0};
  std::mutex reload_mu_;  // serializes overlapping reload requests

  // Health + retry bookkeeping. Written by workers (do_reload) and the
  // event loop (retry arming); read by any thread via health().
  mutable std::mutex health_mu_;
  Health health_state_ = Health::kLoading;
  std::string health_reason_;
  unsigned reload_attempts_ = 0;  // consecutive failures
  std::chrono::steady_clock::time_point last_good_load_;
  bool retry_armed_ = false;
  std::chrono::steady_clock::time_point retry_at_;
  std::atomic<std::uint32_t> reloads_in_flight_{0};

  // Worker queue.
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Task> tasks_;
  bool workers_stop_ = false;

  // Completion queue (workers -> event loop).
  std::mutex done_mu_;
  std::vector<Completion> done_;

  // Connections, event-loop-thread only. Keyed by a monotone id (not the
  // fd) so a completion for a closed connection can never reach a new
  // connection that reused the same fd number.
  std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> conns_;
  std::uint64_t next_conn_id_ = 16;
  // Connections un-paused this tick: re-read them once in case bytes
  // arrived while EPOLLIN was disarmed (event-loop thread only).
  std::vector<std::uint64_t> resumed_reads_;

  ResponseCache cache_;
  obs::FlightRecorder flight_;
  std::chrono::steady_clock::time_point flight_epoch_;  // FlightRecord.end_us zero
  std::atomic<std::uint32_t> flight_dumps_{0};          // post-mortem file cap
  // Private registry: per-server counts stay exact even with several Server
  // instances in one process (tests run many). Declared before stats_,
  // whose handles resolve into it at construction.
  obs::MetricsRegistry registry_;
  ServerStats stats_;
  std::chrono::steady_clock::time_point start_time_;
  std::chrono::steady_clock::time_point last_stats_log_;
  std::chrono::steady_clock::time_point last_metrics_dump_;
  std::uint64_t last_logged_queries_ = 0;

  // Shutdown-complete signal for wait().
  std::mutex stopped_mu_;
  std::condition_variable stopped_cv_;
};

}  // namespace rpslyzer::server
