#pragma once
// rpslyzerd — a concurrent IRRd-compatible query daemon.
//
// Serves the pipelined IRRd "!" query protocol (the wire format bgpq4 and
// peers speak, [45] in the paper) over the RPSLyzer index, turning the IR
// from an analysis substrate into an actual registry server:
//
//   * one epoll event loop with edge-triggered non-blocking sockets does
//     all accepting, line framing, and writing — it never parses RPSL or
//     resolves sets, so accept latency stays flat under load;
//   * a fixed worker pool evaluates queries against an immutable corpus
//     snapshot and posts framed responses back through a completion queue
//     (an eventfd wakes the loop), with per-connection sequence numbers so
//     pipelined responses are written strictly in request order;
//   * a sharded LRU response cache fronts the engine; entries are stamped
//     with a corpus generation, so a reload (admin `!reload` or SIGHUP via
//     request_reload) atomically swaps the index and implicitly invalidates
//     every stale entry without pausing service;
//   * `!stats` reports connections, query counts, cache hit ratio, and
//     p50/p99 service latency; an optional periodic log line mirrors it;
//   * stop() drains in-flight responses (bounded by drain_timeout) before
//     closing sockets and joining every thread — no leaks under ASan/TSan.
//
// Protocol notes: engine queries (!g !6 !i !a !o) answer exactly what
// query::QueryEngine::evaluate returns, byte for byte. Admin extensions:
// `!q` closes the connection after pending responses flush, `!!` is the
// IRRd keep-alive no-op, `!t<seconds>` adjusts this connection's idle
// timeout, `!stats` and `!reload` as above.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "rpslyzer/irr/index.hpp"
#include "rpslyzer/server/cache.hpp"
#include "rpslyzer/server/stats.hpp"

namespace rpslyzer::server {

/// Produces a fresh corpus snapshot; called once at start() and again on
/// every reload. The returned pointer must keep whatever owns the Index
/// alive — use the shared_ptr aliasing constructor over the owner. Return
/// nullptr (or throw) on failure: the server keeps serving the previous
/// generation and answers the reload with an error.
using CorpusLoader = std::function<std::shared_ptr<const irr::Index>()>;

struct ServerConfig {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = ephemeral; see Server::port() after start()
  unsigned worker_threads = 4;  // 0 = hardware concurrency
  std::size_t cache_capacity = 16384;  // cached responses (0 disables)
  std::size_t cache_shards = 8;
  std::size_t max_connections = 1024;  // beyond this, accept+refuse
  std::size_t max_line_bytes = 4096;   // longest accepted query line
  std::chrono::milliseconds idle_timeout{30000};  // 0 = never
  std::chrono::milliseconds drain_timeout{5000};  // graceful-shutdown budget
  std::chrono::milliseconds stats_log_interval{0};  // 0 = no periodic line
};

class Server {
 public:
  Server(ServerConfig config, CorpusLoader loader);
  ~Server();  // stops and joins if still running

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Load the corpus, bind, and spawn the event loop + workers. Returns
  /// false (with *error set) on load/bind failure. Non-blocking.
  bool start(std::string* error = nullptr);

  /// Graceful shutdown: stop accepting, drain in-flight responses (up to
  /// drain_timeout), close every socket, join every thread. Idempotent.
  void stop();

  /// Block until stop() or request_stop() completes the shutdown.
  void wait();

  bool running() const noexcept { return running_.load(std::memory_order_acquire); }

  /// Bound port (useful with config.port == 0). Valid after start().
  std::uint16_t port() const noexcept { return port_; }

  /// Async-signal-safe: flag a graceful shutdown / corpus reload and wake
  /// the event loop. Safe to call from SIGTERM/SIGHUP handlers.
  void request_stop() noexcept;
  void request_reload() noexcept;

  std::uint64_t generation() const noexcept {
    return generation_.load(std::memory_order_relaxed);
  }
  const ServerStats& stats() const noexcept { return stats_; }
  CacheStats cache_stats() const { return cache_.stats(); }

  /// The text behind `!stats` (unframed; one "key: value" line per stat).
  std::string stats_payload() const;

 private:
  struct Connection;
  struct Task {
    std::uint64_t conn_id = 0;
    std::uint64_t seq = 0;
    std::string line;
    std::chrono::steady_clock::time_point t0;
    bool reload = false;
  };
  struct Completion {
    std::uint64_t conn_id = 0;
    std::uint64_t seq = 0;
    std::string response;
  };
  struct Snapshot {
    std::shared_ptr<const irr::Index> index;
    std::uint64_t generation = 0;
  };

  bool setup_listener(std::string* error);
  void event_loop();
  void worker_loop();

  void accept_ready();
  void handle_conn_event(std::uint64_t id, std::uint32_t events);
  void read_ready(Connection& conn);
  void parse_lines(Connection& conn);
  void dispatch_line(Connection& conn, std::string_view raw);
  void deliver(Connection& conn, std::uint64_t seq, std::string response);
  void flush_writes(Connection& conn);
  void update_write_interest(Connection& conn, bool want);
  void close_if_drained(Connection& conn);
  void destroy_conn(std::uint64_t id);
  void drain_completions();
  void sweep_idle(std::chrono::steady_clock::time_point now);
  void maybe_log_stats(std::chrono::steady_clock::time_point now);
  void begin_shutdown();
  void enqueue_task(Task task);
  void wake() noexcept;

  Snapshot snapshot() const;
  std::string answer(const std::string& line);
  std::string do_reload();

  ServerConfig config_;
  CorpusLoader loader_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::uint16_t port_ = 0;

  std::thread loop_thread_;
  std::vector<std::thread> worker_threads_;

  std::atomic<bool> running_{false};
  std::atomic<bool> loop_exited_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> reload_requested_{false};
  bool started_ = false;
  bool shutting_down_ = false;  // event-loop-thread only
  std::chrono::steady_clock::time_point drain_deadline_;

  // Corpus snapshot; swapped wholesale on reload.
  mutable std::mutex corpus_mu_;
  std::shared_ptr<const irr::Index> corpus_;
  std::atomic<std::uint64_t> generation_{0};
  std::mutex reload_mu_;  // serializes overlapping reload requests

  // Worker queue.
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Task> tasks_;
  bool workers_stop_ = false;

  // Completion queue (workers -> event loop).
  std::mutex done_mu_;
  std::vector<Completion> done_;

  // Connections, event-loop-thread only. Keyed by a monotone id (not the
  // fd) so a completion for a closed connection can never reach a new
  // connection that reused the same fd number.
  std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> conns_;
  std::uint64_t next_conn_id_ = 16;

  ResponseCache cache_;
  ServerStats stats_;
  std::chrono::steady_clock::time_point start_time_;
  std::chrono::steady_clock::time_point last_stats_log_;
  std::uint64_t last_logged_queries_ = 0;

  // Shutdown-complete signal for wait().
  std::mutex stopped_mu_;
  std::condition_variable stopped_cv_;
};

}  // namespace rpslyzer::server
