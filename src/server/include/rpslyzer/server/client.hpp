#pragma once
// Minimal blocking client for the IRRd framed query protocol. This is the
// counterpart every consumer of rpslyzerd shares: the `loadgen` tool, the
// server benchmark, and the loopback tests all need to send pipelined "!"
// lines and read back exact framed responses ("A<len>\n<data>C\n", "C\n",
// "D\n", or "F <error>\n") for byte-identical comparison with the
// in-process engine.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace rpslyzer::server {

class Client {
 public:
  /// Connect to host:port (IPv4 dotted quad). Returns nullopt on failure
  /// and fills *error when given.
  static std::optional<Client> connect(const std::string& host, std::uint16_t port,
                                       std::string* error = nullptr);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// Send one query line (a trailing '\n' is appended). Returns false on a
  /// broken connection. Pipelining = calling this repeatedly before reading.
  bool send_line(std::string_view query);

  /// Send raw bytes with no terminator — for fault tooling that needs to
  /// leave a half-written line on the wire (loadgen --fault-churn, tests).
  bool send_raw(std::string_view bytes);

  /// Block until one complete framed response is available and return its
  /// exact bytes. nullopt on EOF/error before a full response arrived.
  std::optional<std::string> read_response();

  /// Half-close the write side (tells the server we are done sending).
  void shutdown_write();

  int fd() const noexcept { return fd_; }

 private:
  explicit Client(int fd) : fd_(fd) {}
  bool fill();  // read more bytes into buf_; false on EOF/error

  int fd_ = -1;
  std::string buf_;
};

}  // namespace rpslyzer::server
