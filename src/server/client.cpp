#include "rpslyzer/server/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "rpslyzer/util/failpoint.hpp"
#include "rpslyzer/util/strings.hpp"

namespace rpslyzer::server {

namespace fp = util::failpoint;

std::optional<Client> Client::connect(const std::string& host, std::uint16_t port,
                                      std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    if (error) *error = std::string("socket: ") + std::strerror(errno);
    return std::nullopt;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error) *error = "bad host (IPv4 only): " + host;
    ::close(fd);
    return std::nullopt;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error) *error = std::string("connect: ") + std::strerror(errno);
    ::close(fd);
    return std::nullopt;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Client(fd);
}

Client::Client(Client&& other) noexcept : fd_(other.fd_), buf_(std::move(other.buf_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    buf_ = std::move(other.buf_);
    other.fd_ = -1;
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

bool Client::send_line(std::string_view query) {
  std::string line(query);
  line.push_back('\n');
  return send_raw(line);
}

bool Client::send_raw(std::string_view bytes) {
  if (const fp::Hit hit = fp::hit("client.send"); hit && hit.is_error()) {
    return false;
  }
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

void Client::shutdown_write() { ::shutdown(fd_, SHUT_WR); }

bool Client::fill() {
  if (const fp::Hit hit = fp::hit("client.read"); hit && hit.is_error()) {
    return false;
  }
  char chunk[4096];
  while (true) {
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n > 0) {
      buf_.append(chunk, static_cast<std::size_t>(n));
      return true;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;  // EOF or hard error
  }
}

std::optional<std::string> Client::read_response() {
  while (true) {
    const std::size_t newline = buf_.find('\n');
    if (newline == std::string::npos) {
      if (!fill()) return std::nullopt;
      continue;
    }
    if (buf_[0] != 'A') {
      // Single-line response: "C\n", "D\n", or "F ...\n".
      std::string response = buf_.substr(0, newline + 1);
      buf_.erase(0, newline + 1);
      return response;
    }
    // "A<len>\n" + len data bytes + "C\n".
    const auto len = util::parse_u32(std::string_view(buf_).substr(1, newline - 1));
    if (!len) return std::nullopt;  // protocol violation
    const std::size_t total = newline + 1 + *len + 2;
    while (buf_.size() < total) {
      if (!fill()) return std::nullopt;
    }
    std::string response = buf_.substr(0, total);
    buf_.erase(0, total);
    return response;
  }
}

}  // namespace rpslyzer::server
