#include "rpslyzer/server/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <map>
#include <set>

#include "rpslyzer/compile/snapshot.hpp"
#include "rpslyzer/obs/failpoint_bridge.hpp"
#include "rpslyzer/obs/log.hpp"
#include "rpslyzer/obs/trace.hpp"
#include "rpslyzer/query/query.hpp"
#include "rpslyzer/util/failpoint.hpp"
#include "rpslyzer/util/rand.hpp"
#include "rpslyzer/util/strings.hpp"
#include "rpslyzer/verify/verifier.hpp"

namespace rpslyzer::server {

namespace {

namespace fp = util::failpoint;

constexpr std::uint64_t kListenTag = 1;
constexpr std::uint64_t kWakeTag = 2;
constexpr int kMaxEvents = 64;
constexpr auto kSweepGranularity = std::chrono::milliseconds(100);
constexpr std::uint32_t kMaxFlightDumps = 16;  // post-mortem files per run

double seconds_between(std::chrono::steady_clock::time_point a,
                       std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

std::uint32_t micros_between_u32(std::chrono::steady_clock::time_point a,
                                 std::chrono::steady_clock::time_point b) {
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(b - a).count();
  if (us <= 0) return 0;
  return static_cast<std::uint32_t>(
      std::min<long long>(us, std::numeric_limits<std::uint32_t>::max()));
}

std::string_view first_token(std::string_view line) {
  line = util::trim(line);
  return line.substr(0, line.find_first_of(" \t"));
}

}  // namespace

const char* to_string(Health h) noexcept {
  switch (h) {
    case Health::kHealthy:
      return "healthy";
    case Health::kLoading:
      return "loading";
    case Health::kDegraded:
      return "degraded";
  }
  return "?";
}

std::chrono::milliseconds reload_backoff(unsigned attempt,
                                         std::chrono::milliseconds initial,
                                         std::chrono::milliseconds max_backoff,
                                         std::uint64_t seed) noexcept {
  if (initial.count() <= 0) initial = std::chrono::milliseconds(1);
  if (max_backoff < initial) max_backoff = initial;
  const std::uint64_t cap = static_cast<std::uint64_t>(max_backoff.count());
  std::uint64_t base = static_cast<std::uint64_t>(initial.count());
  for (unsigned i = 0; i < attempt && base < cap; ++i) base *= 2;
  base = std::min(base, cap);
  // splitmix64 over (seed, attempt): deterministic jitter in [0.75, 1.25].
  const std::uint64_t z =
      util::splitmix64_at(seed, static_cast<std::uint64_t>(attempt));
  const std::uint64_t jittered = base * (750 + z % 501) / 1000;
  return std::chrono::milliseconds(
      std::clamp<std::uint64_t>(jittered, 1, cap));
}

/// Per-connection state, touched only by the event-loop thread. Pipelined
/// queries are numbered at parse time (`next_seq`); workers may finish out
/// of order, so completed responses park in `ready` until every earlier
/// sequence number has been appended to the write buffer.
struct Server::Connection {
  int fd = -1;
  std::uint64_t id = 0;
  std::string in;
  std::string out;
  std::size_t out_off = 0;
  std::uint64_t next_seq = 0;    // next sequence number to assign
  std::uint64_t next_write = 0;  // next sequence to append to `out`
  std::map<std::uint64_t, std::string> ready;
  std::size_t in_flight = 0;  // assigned but not yet delivered
  // Engine queries awaiting a worker, by enqueue time: the deadline sweep
  // answers overdue entries with "F timeout" and moves them to `timed_out`
  // so the worker's late completion is discarded instead of re-delivered.
  // Trace id + verb ride along so the sweep can file a complete flight
  // record (and name the offending trace in the post-mortem snapshot).
  struct PendingQuery {
    std::chrono::steady_clock::time_point t0;
    std::uint64_t trace_id = 0;
    char verb[16] = {};
  };
  std::map<std::uint64_t, PendingQuery> pending;
  std::set<std::uint64_t> timed_out;
  std::chrono::steady_clock::time_point last_activity;
  std::chrono::milliseconds idle_timeout{0};
  bool closing = false;      // no more reads; close once drained
  bool want_write = false;   // EPOLLOUT currently armed
  bool read_paused = false;  // EPOLLIN disarmed: output buffer over budget
  bool stalled = false;      // last send hit EAGAIN with bytes pending
  std::chrono::steady_clock::time_point stalled_since;
};

Server::Server(ServerConfig config, CorpusLoader loader)
    : config_(std::move(config)),
      loader_(std::move(loader)),
      cache_(config_.cache_capacity, config_.cache_shards),
      flight_(config_.flight_capacity),
      flight_epoch_(std::chrono::steady_clock::now()),
      stats_(registry_, config_.latency_bounds) {
  // Scrape-time mirrors: the cache keeps its own per-shard counters and the
  // health/generation state lives behind mutexes — a collector copies them
  // onto the page at render time instead of double-booking every update.
  registry_.register_collector([this](obs::CollectSink& sink) {
    const CacheStats cache = cache_.stats();
    sink.counter("rpslyzer_cache_hits_total", "Response-cache hits", {},
                 static_cast<double>(cache.hits));
    sink.counter("rpslyzer_cache_misses_total", "Response-cache misses", {},
                 static_cast<double>(cache.misses));
    sink.counter("rpslyzer_cache_evictions_total", "LRU-capacity evictions", {},
                 static_cast<double>(cache.evictions));
    sink.counter("rpslyzer_cache_invalidated_total",
                 "Stale-generation entries dropped on lookup", {},
                 static_cast<double>(cache.invalidated));
    sink.gauge("rpslyzer_cache_entries", "Cached responses currently held", {},
               static_cast<double>(cache.entries));
    sink.gauge("rpslyzer_cache_bytes", "Key + value payload bytes held", {},
               static_cast<double>(cache.bytes));

    sink.counter("rpslyzer_server_flight_records_total",
                 "Queries recorded by the flight recorder", {},
                 static_cast<double>(flight_.total()));
    sink.counter("rpslyzer_server_flight_dropped_total",
                 "Flight records overwritten by ring wraparound", {},
                 static_cast<double>(flight_.dropped()));

    const HealthStatus status = health();
    sink.gauge("rpslyzer_server_generation", "Current corpus generation", {},
               static_cast<double>(status.generation));
    sink.gauge("rpslyzer_server_health",
               "Daemon health (0 healthy, 1 loading, 2 degraded)", {},
               static_cast<double>(static_cast<int>(status.state)));
    sink.gauge("rpslyzer_server_uptime_seconds", "Seconds since start()", {},
               running() ? seconds_between(start_time_, std::chrono::steady_clock::now())
                         : 0.0);
  });
}

Server::~Server() { stop(); }

bool Server::setup_listener(std::string* error) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    if (error) *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1) {
    if (error) *error = "bad bind address (IPv4 only): " + config_.bind_address;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error) *error = std::string("bind: ") + std::strerror(errno);
    return false;
  }
  if (::listen(listen_fd_, 128) != 0) {
    if (error) *error = std::string("listen: ") + std::strerror(errno);
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    if (error) *error = std::string("getsockname: ") + std::strerror(errno);
    return false;
  }
  port_ = ntohs(addr.sin_port);
  return true;
}

bool Server::start(std::string* error) {
  if (started_) {
    if (error) *error = "server already started";
    return false;
  }
  std::shared_ptr<const compile::CompiledPolicySnapshot> corpus;
  try {
    corpus = loader_();
  } catch (const std::exception& e) {
    if (error) *error = std::string("corpus load failed: ") + e.what();
    return false;
  }
  if (corpus == nullptr) {
    if (error) *error = "corpus load failed";
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(corpus_mu_);
    corpus_ = std::move(corpus);
    generation_.store(1, std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(health_mu_);
    health_state_ = Health::kHealthy;
    health_reason_.clear();
    reload_attempts_ = 0;
    retry_armed_ = false;
    last_good_load_ = std::chrono::steady_clock::now();
  }
  if (!setup_listener(error)) {
    if (listen_fd_ >= 0) ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    if (error) *error = std::string("epoll/eventfd: ") + std::strerror(errno);
    for (int* fd : {&listen_fd_, &epoll_fd_, &wake_fd_}) {
      if (*fd >= 0) ::close(*fd);
      *fd = -1;
    }
    return false;
  }
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLET;
  ev.data.u64 = kListenTag;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.events = EPOLLIN;  // level-triggered: stays readable until drained
  ev.data.u64 = kWakeTag;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  stop_requested_.store(false, std::memory_order_relaxed);
  reload_requested_.store(false, std::memory_order_relaxed);
  loop_exited_.store(false, std::memory_order_relaxed);
  workers_stop_ = false;
  shutting_down_ = false;
  start_time_ = std::chrono::steady_clock::now();
  last_stats_log_ = start_time_;
  last_metrics_dump_ = start_time_;
  last_logged_queries_ = 0;
  obs::install_failpoint_observer();

  unsigned workers = config_.worker_threads;
  if (workers == 0) workers = std::max(1u, std::thread::hardware_concurrency());
  obs::log_info("server", "listening",
                {{"port", static_cast<unsigned>(port_)}, {"workers", workers}});
  worker_threads_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    worker_threads_.emplace_back([this] { worker_loop(); });
  }
  loop_thread_ = std::thread([this] { event_loop(); });
  started_ = true;
  running_.store(true, std::memory_order_release);
  return true;
}

void Server::stop() {
  if (!started_) return;
  request_stop();
  if (loop_thread_.joinable()) loop_thread_.join();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    workers_stop_ = true;
  }
  queue_cv_.notify_all();
  for (auto& worker : worker_threads_) {
    if (worker.joinable()) worker.join();
  }
  worker_threads_.clear();
  for (int* fd : {&listen_fd_, &epoll_fd_, &wake_fd_}) {
    if (*fd >= 0) ::close(*fd);
    *fd = -1;
  }
  {
    std::lock_guard<std::mutex> lock(done_mu_);
    done_.clear();
  }
  started_ = false;
  running_.store(false, std::memory_order_release);
  stopped_cv_.notify_all();
}

void Server::wait() {
  std::unique_lock<std::mutex> lock(stopped_mu_);
  stopped_cv_.wait(lock, [this] {
    return loop_exited_.load(std::memory_order_acquire) || !running();
  });
}

void Server::request_stop() noexcept {
  stop_requested_.store(true, std::memory_order_release);
  wake();
}

void Server::request_reload() noexcept {
  reload_requested_.store(true, std::memory_order_release);
  wake();
}

void Server::wake() noexcept {
  if (wake_fd_ < 0) return;
  std::uint64_t one = 1;
  // write(2) is async-signal-safe; short/failed writes just mean the
  // eventfd counter is already non-zero, which still wakes the loop.
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

Server::Snapshot Server::snapshot() const {
  std::lock_guard<std::mutex> lock(corpus_mu_);
  return Snapshot{corpus_, generation_.load(std::memory_order_relaxed)};
}

std::string Server::answer(const std::string& line, EvalInfo* info) {
  Snapshot snap = snapshot();
  if (info != nullptr) info->generation = snap.generation;
  const std::string key = normalize_query_key(line);
  std::optional<std::string> hit;
  {
    obs::Span cache_span("server.cache");
    hit = cache_.get(key, snap.generation);
  }
  if (hit) {
    if (info != nullptr) info->cache = 'h';
    return std::move(*hit);
  }
  if (info != nullptr) info->cache = 'm';
  const auto eval_start = std::chrono::steady_clock::now();
  std::string response;
  std::string_view trimmed = util::trim(line);
  if (!trimmed.empty() && trimmed.front() == '!') trimmed.remove_prefix(1);
  if (!trimmed.empty() && (trimmed.front() == 'v' || trimmed.front() == 'V')) {
    obs::Span eval_span("server.verify");
    response = verify_query(*snap.corpus, trimmed.substr(1));
  } else {
    obs::Span eval_span("server.eval");
    query::QueryEngine engine(*snap.corpus);
    response = engine.evaluate(line);
  }
  if (info != nullptr) {
    info->eval_us = static_cast<std::uint32_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - eval_start)
            .count());
  }
  cache_.put(key, snap.generation, response);
  return response;
}

std::string Server::verify_query(const compile::CompiledPolicySnapshot& corpus,
                                 std::string_view args) {
  // `!v <prefix> <as-path>` — verify one announced route against the
  // compiled policies and report per-hop verdicts. The AS path is listed
  // origin-last, exactly as it appears in a table dump.
  std::vector<std::string_view> tokens;
  for (std::string_view rest = args;;) {
    while (!rest.empty() && (rest.front() == ' ' || rest.front() == '\t')) {
      rest.remove_prefix(1);
    }
    if (rest.empty()) break;
    std::size_t end = rest.find_first_of(" \t");
    tokens.push_back(rest.substr(0, end));
    if (end == std::string_view::npos) break;
    rest.remove_prefix(end);
  }
  if (tokens.size() < 3) {
    return "F usage: !v <prefix> <asn> <asn> [<asn>...]\n";
  }
  std::optional<net::Prefix> prefix = net::Prefix::parse(tokens.front());
  if (!prefix) {
    return "F bad prefix: " + std::string(tokens.front()) + "\n";
  }
  bgp::Route route;
  route.prefix = *prefix;
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    std::optional<ir::Asn> asn = ir::parse_as_ref(tokens[i]);
    if (!asn) return "F bad AS number: " + std::string(tokens[i]) + "\n";
    route.path.push_back(*asn);
  }
  verify::Verifier verifier(
      std::shared_ptr<const compile::CompiledPolicySnapshot>(
          std::shared_ptr<void>(), &corpus));
  return query::frame_response(verifier.report(route));
}

std::string Server::do_reload() {
  reloads_in_flight_.fetch_add(1, std::memory_order_acq_rel);
  std::lock_guard<std::mutex> serialize(reload_mu_);
  std::shared_ptr<const compile::CompiledPolicySnapshot> fresh;
  std::string why;
  try {
    fresh = loader_();
  } catch (const std::exception& e) {
    why = e.what();
  } catch (...) {
    why = "unknown exception";
  }
  if (fresh == nullptr) {
    if (why.empty()) why = "loader returned no corpus";
    stats_.reload_failures.inc();
    unsigned attempts = 0;
    {
      std::lock_guard<std::mutex> lock(health_mu_);
      health_state_ = Health::kDegraded;
      health_reason_ = why;
      attempts = ++reload_attempts_;
    }
    obs::log_error("server", "reload failed; serving stale generation",
                   {{"reason", why},
                    {"attempts", attempts},
                    {"generation", generation()}});
    reloads_in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    // Quarantine-class event: snapshot the flight ring so the queries that
    // surrounded the failed reload are preserved for post-mortem.
    dump_flight_snapshot("degraded", obs::current_trace_id());
    wake();  // let the event loop arm the backoff retry promptly
    return "F reload failed: " + why + "\n";
  }
  // "memory" = full parse + compile; "cache:<key>" / "file:<path>" = served
  // by the persistence layer without recompiling.
  const std::string source = fresh->source();
  {
    std::lock_guard<std::mutex> lock(corpus_mu_);
    corpus_ = std::move(fresh);
    generation_.fetch_add(1, std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(health_mu_);
    health_state_ = Health::kHealthy;
    health_reason_.clear();
    reload_attempts_ = 0;
    last_good_load_ = std::chrono::steady_clock::now();
  }
  stats_.reloads.inc();
  obs::log_info("server", "corpus reloaded",
                {{"generation", generation()}, {"source", source}});
  reloads_in_flight_.fetch_sub(1, std::memory_order_acq_rel);
  wake();  // disarm any pending retry
  return "C\n";
}

HealthStatus Server::health() const {
  const auto now = std::chrono::steady_clock::now();
  HealthStatus status;
  std::lock_guard<std::mutex> lock(health_mu_);
  status.reload_in_flight = reloads_in_flight_.load(std::memory_order_acquire) > 0;
  status.state = health_state_;
  if (status.state == Health::kHealthy && status.reload_in_flight) {
    status.state = Health::kLoading;  // degraded wins over loading
  }
  status.reason = health_reason_;
  status.generation = generation_.load(std::memory_order_relaxed);
  status.generation_age =
      std::chrono::duration_cast<std::chrono::milliseconds>(now - last_good_load_);
  status.reload_attempts = reload_attempts_;
  status.retry_armed = retry_armed_;
  if (retry_armed_ && retry_at_ > now) {
    status.next_retry =
        std::chrono::duration_cast<std::chrono::milliseconds>(retry_at_ - now);
  }
  return status;
}

std::string Server::health_payload() const {
  const HealthStatus status = health();
  std::string out = "status: ";
  out += to_string(status.state);
  out += "\ngeneration: " + std::to_string(status.generation);
  out += "\ngeneration-age-ms: " + std::to_string(status.generation_age.count());
  if (status.state == Health::kDegraded) {
    out += "\nreason: " + status.reason;
    out += "\nstale-generation-age-ms: " + std::to_string(status.generation_age.count());
    out += "\nreload-attempts: " + std::to_string(status.reload_attempts);
    if (status.retry_armed) {
      out += "\nnext-retry-ms: " + std::to_string(status.next_retry.count());
    }
  }
  out += std::string("\nreload-in-flight: ") + (status.reload_in_flight ? "1" : "0");
  const auto failpoints = fp::active();
  if (!failpoints.empty()) {
    out += "\nfailpoints:";
    for (const auto& [site, action] : failpoints) {
      out += " " + site + "=" + action;
    }
  }
  return out;
}

std::string Server::stats_payload() const {
  // One coherent snapshot of everything: `snapshot()` orders its reads so a
  // rendered page can never show errors > queries or admin > queries, no
  // matter how hard the worker pool is hammering the counters.
  const ServerStats::Snapshot snap = stats_.snapshot();
  const CacheStats cache = cache_.stats();
  const auto uptime = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start_time_);
  const Snapshot corpus_snap = snapshot();
  char buffer[2560];
  std::snprintf(
      buffer, sizeof(buffer),
      "generation: %llu\n"
      "snapshot: build-id=%llu interned-symbols=%zu trie-nodes=%zu source=%s\n"
      "health: %s\n"
      "uptime-ms: %lld\n"
      "connections: open=%lld accepted=%llu rejected=%llu idle-closed=%llu "
      "slow-closed=%llu\n"
      "queries: total=%llu errors=%llu admin=%llu timeouts=%llu\n"
      "cache: entries=%zu capacity=%zu hits=%llu misses=%llu hit-ratio=%.3f "
      "evictions=%llu invalidated=%llu\n"
      "latency-us: mean=%llu p50=%llu p99=%llu\n"
      "bytes: in=%llu out=%llu\n"
      "backpressure: reads-paused=%llu\n"
      "reloads: %llu\n"
      "reload-failures: %llu retries=%llu",
      static_cast<unsigned long long>(generation()),
      static_cast<unsigned long long>(
          corpus_snap.corpus ? corpus_snap.corpus->build_id() : 0),
      corpus_snap.corpus ? corpus_snap.corpus->interned_symbols() : std::size_t{0},
      corpus_snap.corpus ? corpus_snap.corpus->trie_nodes() : std::size_t{0},
      corpus_snap.corpus ? corpus_snap.corpus->source().c_str() : "none",
      to_string(health().state),
      static_cast<long long>(uptime.count()),
      static_cast<long long>(snap.connections_open),
      static_cast<unsigned long long>(snap.connections_accepted),
      static_cast<unsigned long long>(snap.connections_rejected),
      static_cast<unsigned long long>(snap.connections_idle_closed),
      static_cast<unsigned long long>(snap.slow_client_disconnects),
      static_cast<unsigned long long>(snap.queries_total),
      static_cast<unsigned long long>(snap.queries_errors),
      static_cast<unsigned long long>(snap.admin_queries),
      static_cast<unsigned long long>(snap.queries_timed_out), cache.entries,
      cache_.capacity(), static_cast<unsigned long long>(cache.hits),
      static_cast<unsigned long long>(cache.misses), cache.hit_ratio(),
      static_cast<unsigned long long>(cache.evictions),
      static_cast<unsigned long long>(cache.invalidated),
      static_cast<unsigned long long>(snap.latency_mean_micros()),
      static_cast<unsigned long long>(
          snap.latency_percentile_micros(50, stats_.latency.bounds())),
      static_cast<unsigned long long>(
          snap.latency_percentile_micros(99, stats_.latency.bounds())),
      static_cast<unsigned long long>(snap.bytes_in),
      static_cast<unsigned long long>(snap.bytes_out),
      static_cast<unsigned long long>(snap.reads_paused),
      static_cast<unsigned long long>(snap.reloads),
      static_cast<unsigned long long>(snap.reload_failures),
      static_cast<unsigned long long>(snap.reload_retries));
  std::string out = buffer;
  if (stats_extra_) {
    const std::string extra = stats_extra_();
    if (!extra.empty()) {
      out += "\n";
      out += extra;
    }
  }
  return out;
}

std::string Server::metrics_payload() const {
  // Process-wide metrics (loader, query engine, failpoints) plus this
  // server's private page, in one Prometheus exposition document. The
  // optional extra block (origin fleet aggregation) arrives pre-rendered:
  // its families carry their own HELP/TYPE headers.
  std::string out = obs::to_prometheus({&obs::MetricsRegistry::global(), &registry_});
  if (metrics_extra_) out += metrics_extra_();
  return out;
}

void Server::maybe_dump_metrics(std::chrono::steady_clock::time_point now) {
  if (config_.metrics_snapshot_path.empty()) return;
  if (config_.metrics_snapshot_interval.count() <= 0) return;
  if (now - last_metrics_dump_ < config_.metrics_snapshot_interval) return;
  last_metrics_dump_ = now;
  // Write-then-rename so a scraper never reads a half-written page.
  const std::string tmp = config_.metrics_snapshot_path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      obs::log_warn("server", "metrics snapshot write failed",
                    {{"path", config_.metrics_snapshot_path}});
      return;
    }
    out << metrics_payload();
  }
  if (std::rename(tmp.c_str(), config_.metrics_snapshot_path.c_str()) != 0) {
    obs::log_warn("server", "metrics snapshot rename failed",
                  {{"path", config_.metrics_snapshot_path}});
  }
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

void Server::record_flight(std::uint64_t trace_id, std::string_view verb,
                           std::chrono::steady_clock::time_point t0,
                           std::uint32_t queue_us, const EvalInfo& info, char outcome,
                           std::uint32_t bytes) {
  if (!flight_.enabled()) return;
  const auto now = std::chrono::steady_clock::now();
  obs::FlightRecord record;
  record.trace_id = trace_id;
  const std::size_t verb_len = std::min(verb.size(), sizeof(record.verb) - 1);
  std::memcpy(record.verb, verb.data(), verb_len);
  record.end_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(now - flight_epoch_)
          .count());
  record.generation = info.generation != 0 ? info.generation : generation();
  record.queue_us = queue_us;
  record.eval_us = info.eval_us;
  const auto total =
      std::chrono::duration_cast<std::chrono::microseconds>(now - t0).count();
  record.total_us = static_cast<std::uint32_t>(
      std::min<long long>(total, std::numeric_limits<std::uint32_t>::max()));
  record.bytes = bytes;
  record.cache = info.cache;
  record.outcome = outcome;
  flight_.record(record);
  if (config_.slow_threshold.count() > 0 &&
      static_cast<std::uint64_t>(record.total_us) >=
          static_cast<std::uint64_t>(config_.slow_threshold.count()) * 1000) {
    flight_.note_slow(record);
    obs::log_warn("server", "slow query",
                  {{"trace", obs::trace_hex(trace_id)},
                   {"verb", std::string(verb.substr(0, verb_len))},
                   {"total_us", static_cast<std::uint64_t>(record.total_us)},
                   {"eval_us", static_cast<std::uint64_t>(record.eval_us)}});
  }
}

void Server::dump_flight_snapshot(const char* reason, std::uint64_t trace_id) {
  if (config_.metrics_snapshot_path.empty()) return;
  // Cap post-mortem files: a deadline storm should not fill the disk with
  // near-identical ring dumps.
  if (flight_dumps_.fetch_add(1, std::memory_order_relaxed) >= kMaxFlightDumps) return;
  std::string dir = config_.metrics_snapshot_path;
  const std::size_t slash = dir.find_last_of('/');
  dir = slash == std::string::npos ? std::string(".") : dir.substr(0, slash);
  const std::string path =
      dir + "/flight-" + reason + "-" + obs::trace_hex(trace_id) + ".log";
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      obs::log_warn("server", "flight snapshot write failed", {{"path", path}});
      return;
    }
    out << "reason: " << reason << "\ntrace: " << obs::trace_hex(trace_id) << "\n";
    for (const obs::FlightRecord& record : flight_.snapshot()) {
      out << obs::format_flight_record(record) << "\n";
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    obs::log_warn("server", "flight snapshot rename failed", {{"path", path}});
    return;
  }
  obs::log_warn("server", "flight recorder snapshot written",
                {{"path", path},
                 {"trace", obs::trace_hex(trace_id)},
                 {"reason", std::string(reason)}});
}

std::string Server::slow_payload() const {
  const std::vector<obs::FlightRecord> slow = flight_.slow_snapshot();
  std::string out = "slow-queries: " + std::to_string(slow.size());
  out += " threshold-ms: " + std::to_string(config_.slow_threshold.count());
  out += "\nrecorder: total=" + std::to_string(flight_.total()) +
         " dropped=" + std::to_string(flight_.dropped()) +
         " capacity=" + std::to_string(flight_.capacity());
  for (const obs::FlightRecord& record : slow) {
    out += "\n";
    out += obs::format_flight_record(record);
  }
  return out;
}

std::string Server::trace_payload(std::uint64_t trace_id) const {
  const std::vector<obs::FlightRecord> records = flight_.find(trace_id);
  if (records.empty()) return {};
  std::string out = "trace: " + obs::trace_hex(trace_id);
  out += "\nrecords: " + std::to_string(records.size());
  for (const obs::FlightRecord& record : records) {
    char verb[sizeof(record.verb) + 1];
    std::memcpy(verb, record.verb, sizeof(record.verb));
    verb[sizeof(record.verb)] = '\0';
    const char* cache = record.cache == 'h'   ? "hit"
                        : record.cache == 'm' ? "miss"
                                              : "-";
    char buffer[256];
    std::snprintf(buffer, sizeof(buffer),
                  "\nverb: %s\noutcome: %c\ncache: %s\ngeneration: %llu\n"
                  "bytes: %u\nstage-queue-us: %u\nstage-eval-us: %u\n"
                  "stage-total-us: %u",
                  verb[0] != '\0' ? verb : "?", record.outcome, cache,
                  static_cast<unsigned long long>(record.generation), record.bytes,
                  record.queue_us, record.eval_us, record.total_us);
    out += buffer;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------------

void Server::enqueue_task(Task task) {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    tasks_.push_back(std::move(task));
  }
  queue_cv_.notify_one();
}

void Server::worker_loop() {
  while (true) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return workers_stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // workers_stop_ with a drained queue
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    const std::uint64_t trace_id =
        task.trace_id != 0 ? task.trace_id : obs::next_trace_id();
    const std::uint32_t queue_us =
        micros_between_u32(task.t0, std::chrono::steady_clock::now());
    EvalInfo info;
    std::string response;
    {
      // Install the query's trace context for the whole evaluation: every
      // span recorded and every log line emitted below carries this id.
      obs::TraceContext trace_scope(trace_id);
      obs::Span span(task.reload ? "server.reload" : "server.query");
      // "server.dispatch": delay stalls this worker (driving the deadline
      // path); error fails the query without touching the engine. Reloads are
      // exempt so injected dispatch faults never masquerade as loader faults.
      if (const fp::Hit hit = fp::hit("server.dispatch");
          hit && hit.is_error() && !task.reload) {
        response = "F " + hit.message + "\n";
      } else {
        response = task.reload ? do_reload() : answer(task.line, &info);
      }
    }
    stats_.latency.observe(
        seconds_between(task.t0, std::chrono::steady_clock::now()));
    if (!response.empty() && response.front() == 'F') {
      stats_.queries_errors.inc();
    }
    record_flight(trace_id, task.reload ? "!reload" : first_token(task.line),
                  task.t0, queue_us, info,
                  response.empty() ? '?' : response.front(),
                  static_cast<std::uint32_t>(
                      std::min<std::size_t>(response.size(),
                                            std::numeric_limits<std::uint32_t>::max())));
    if (task.conn_id != 0) {
      std::lock_guard<std::mutex> lock(done_mu_);
      done_.push_back(Completion{task.conn_id, task.seq, std::move(response)});
    }
    wake();
  }
}

// ---------------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------------

void Server::event_loop() {
  epoll_event events[kMaxEvents];
  while (true) {
    const int timeout_ms = static_cast<int>(kSweepGranularity.count());
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, timeout_ms);
    if (n < 0 && errno != EINTR) break;
    for (int i = 0; i < std::max(n, 0); ++i) {
      const std::uint64_t tag = events[i].data.u64;
      if (tag == kListenTag) {
        accept_ready();
      } else if (tag == kWakeTag) {
        std::uint64_t drained = 0;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
      } else {
        handle_conn_event(tag, events[i].events);
      }
    }
    drain_completions();
    resume_paused_reads();
    if (reload_requested_.exchange(false, std::memory_order_acq_rel)) {
      // SIGHUP path: a detached reload with no connection to answer.
      enqueue_task(Task{0, 0, {}, std::chrono::steady_clock::now(), true});
    }
    const auto now = std::chrono::steady_clock::now();
    sweep_deadlines(now);
    sweep_stalled(now);
    sweep_idle(now);
    maybe_schedule_retry(now);
    maybe_log_stats(now);
    maybe_dump_metrics(now);
    if (stop_requested_.load(std::memory_order_acquire) && !shutting_down_) {
      begin_shutdown();
    }
    if (shutting_down_) {
      if (conns_.empty()) break;
      if (now >= drain_deadline_) {
        std::vector<std::uint64_t> ids;
        ids.reserve(conns_.size());
        for (const auto& [id, conn] : conns_) ids.push_back(id);
        for (std::uint64_t id : ids) destroy_conn(id);
        break;
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(stopped_mu_);
    loop_exited_.store(true, std::memory_order_release);
  }
  stopped_cv_.notify_all();
}

void Server::begin_shutdown() {
  shutting_down_ = true;
  drain_deadline_ = std::chrono::steady_clock::now() + config_.drain_timeout;
  if (listen_fd_ >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Stop reading; deliver what is in flight, then close. Iterate over a
  // snapshot of ids: close_if_drained can erase map entries.
  std::vector<std::uint64_t> ids;
  ids.reserve(conns_.size());
  for (const auto& [id, conn] : conns_) ids.push_back(id);
  for (std::uint64_t id : ids) {
    auto found = conns_.find(id);
    if (found == conns_.end()) continue;
    found->second->closing = true;
    close_if_drained(*found->second);
  }
}

void Server::accept_ready() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // EMFILE etc: drop and retry on the next readiness event
    }
    if (conns_.size() >= config_.max_connections) {
      stats_.connections_rejected.inc();
      obs::log_warn("server", "connection rejected: at max-connections",
                    {{"open", static_cast<std::uint64_t>(conns_.size())},
                     {"max", static_cast<std::uint64_t>(config_.max_connections)}});
      static constexpr char kRefusal[] = "F too many connections\n";
      [[maybe_unused]] ssize_t n =
          ::send(fd, kRefusal, sizeof(kRefusal) - 1, MSG_NOSIGNAL);
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->id = next_conn_id_++;
    conn->last_activity = std::chrono::steady_clock::now();
    conn->idle_timeout = config_.idle_timeout;
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLET | EPOLLRDHUP;
    ev.data.u64 = conn->id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    stats_.connections_accepted.inc();
    stats_.connections_open.add(1);
    conns_.emplace(conn->id, std::move(conn));
  }
}

void Server::handle_conn_event(std::uint64_t id, std::uint32_t events) {
  auto found = conns_.find(id);
  if (found == conns_.end()) return;
  Connection& conn = *found->second;
  if (events & (EPOLLHUP | EPOLLERR)) {
    destroy_conn(id);
    return;
  }
  if (events & (EPOLLIN | EPOLLRDHUP)) read_ready(conn);
  // read_ready may destroy the connection on fatal errors.
  auto again = conns_.find(id);
  if (again == conns_.end()) return;
  if (events & EPOLLOUT) flush_writes(*again->second);
}

void Server::read_ready(Connection& conn) {
  if (const fp::Hit hit = fp::hit("server.read"); hit && hit.is_error()) {
    destroy_conn(conn.id);
    return;
  }
  char buffer[4096];
  bool saw_eof = false;
  while (true) {
    const ssize_t n = ::read(conn.fd, buffer, sizeof(buffer));
    if (n > 0) {
      stats_.bytes_in.inc(static_cast<std::uint64_t>(n));
      conn.last_activity = std::chrono::steady_clock::now();
      if (!conn.closing) {
        conn.in.append(buffer, static_cast<std::size_t>(n));
        // Parse eagerly once the buffer crosses the line cap so an endless
        // unterminated line is refused here instead of accumulating for as
        // long as the peer keeps streaming.
        if (conn.in.size() > config_.max_line_bytes) parse_lines(conn);
      }
      continue;
    }
    if (n == 0) {
      saw_eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    destroy_conn(conn.id);
    return;
  }
  parse_lines(conn);
  if (saw_eof) {
    // Half-close: the client is done sending; finish in-flight responses.
    conn.closing = true;
  }
  flush_writes(conn);
  // flush_writes closes drained connections itself.
}

void Server::parse_lines(Connection& conn) {
  std::size_t start = 0;
  while (!conn.closing) {
    const std::size_t newline = conn.in.find('\n', start);
    if (newline == std::string::npos) break;
    std::string_view line(conn.in.data() + start, newline - start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    start = newline + 1;
    if (line.size() > config_.max_line_bytes) {
      ++conn.in_flight;
      deliver(conn, conn.next_seq++, "F query too long\n");
      conn.closing = true;
      break;
    }
    dispatch_line(conn, line);
  }
  conn.in.erase(0, start);
  if (!conn.closing && conn.in.size() > config_.max_line_bytes) {
    // An unterminated line beyond the cap cannot become a valid query, and
    // buffering more of it would hand the peer our memory.
    ++conn.in_flight;
    deliver(conn, conn.next_seq++, "F line too long\n");
    conn.closing = true;
    conn.in.clear();
  }
}

void Server::dispatch_line(Connection& conn, std::string_view raw) {
  std::string_view trimmed = util::trim(raw);
  if (trimmed == "!!") return;  // IRRd keep-alive toggle: no response
  std::string_view body = trimmed;
  if (!body.empty() && body.front() == '!') body.remove_prefix(1);

  // Optional trace-context prefix: `!id <hex> <query...>` lets the client
  // name the query's 64-bit trace id (loadgen does); the prefix is stripped
  // before dispatch so the cache key and the engine see the bare query.
  std::uint64_t trace_id = 0;
  bool bad_trace = false;
  if (body.size() >= 3 && (body[0] == 'i' || body[0] == 'I') &&
      (body[1] == 'd' || body[1] == 'D') && (body[2] == ' ' || body[2] == '\t')) {
    std::string_view rest = body.substr(3);
    while (!rest.empty() && (rest.front() == ' ' || rest.front() == '\t')) {
      rest.remove_prefix(1);
    }
    const std::size_t end = rest.find_first_of(" \t");
    const std::string_view token = rest.substr(0, end);
    if (!obs::parse_trace_hex(token, &trace_id) || trace_id == 0) {
      bad_trace = true;
    } else {
      trimmed = end == std::string_view::npos
                    ? std::string_view{}
                    : util::trim(rest.substr(end));
      body = trimmed;
      if (!body.empty() && body.front() == '!') body.remove_prefix(1);
    }
  }
  if (trace_id == 0) trace_id = obs::next_trace_id();

  const auto t0 = std::chrono::steady_clock::now();
  // Ordering note: the total is bumped before any admin/error subset counter,
  // which is what lets ServerStats::snapshot() guarantee subset <= total.
  stats_.queries_total.inc();

  // Inline verbs file their flight record here: zero queue/eval time, the
  // response's first byte as the outcome.
  const auto deliver_inline = [&](std::uint64_t seq, std::string_view verb,
                                  std::string response) {
    if (flight_.enabled()) {
      EvalInfo info;
      record_flight(trace_id, verb, t0, 0, info,
                    response.empty() ? '?' : response.front(),
                    static_cast<std::uint32_t>(std::min<std::size_t>(
                        response.size(), std::numeric_limits<std::uint32_t>::max())));
    }
    deliver(conn, seq, std::move(response));
  };

  if (util::iequals(body, "q")) {
    stats_.admin_queries.inc();
    conn.closing = true;  // close after pipelined predecessors flush
    return;
  }
  const std::uint64_t seq = conn.next_seq++;
  ++conn.in_flight;
  if (bad_trace) {
    stats_.queries_errors.inc();
    deliver(conn, seq, "F invalid trace id (expect 1-16 hex digits)\n");
    return;
  }
  if (util::iequals(body, "stats")) {
    stats_.admin_queries.inc();
    deliver_inline(seq, "!stats", query::frame_response(stats_payload()));
    return;
  }
  if (util::iequals(body, "metrics")) {
    stats_.admin_queries.inc();
    deliver_inline(seq, "!metrics", query::frame_response(metrics_payload()));
    return;
  }
  if (util::iequals(body, "health")) {
    stats_.admin_queries.inc();
    deliver_inline(seq, "!health", query::frame_response(health_payload()));
    return;
  }
  if (util::iequals(body, "slow")) {
    stats_.admin_queries.inc();
    deliver_inline(seq, "!slow", query::frame_response(slow_payload()));
    return;
  }
  if (body.size() >= 6 && util::iequals(body.substr(0, 5), "trace") &&
      (body[5] == ' ' || body[5] == '\t')) {
    stats_.admin_queries.inc();
    std::uint64_t wanted = 0;
    if (!obs::parse_trace_hex(util::trim(body.substr(6)), &wanted)) {
      deliver_inline(seq, "!trace", "F usage: !trace <hex-id>\n");
      return;
    }
    std::string payload = trace_payload(wanted);
    deliver_inline(seq, "!trace",
                   payload.empty() ? std::string("D\n")
                                   : query::frame_response(payload));
    return;
  }
  if (util::iequals(body, "fleet")) {
    stats_.admin_queries.inc();
    deliver_inline(seq, "!fleet",
                   fleet_handler_
                       ? query::frame_response(fleet_handler_())
                       : std::string("F fleet aggregation not enabled\n"));
    return;
  }
  if (util::iequals(body, "reload")) {
    stats_.admin_queries.inc();
    enqueue_task(Task{conn.id, seq, {}, t0, true, trace_id});
    return;
  }
  if (body == "repl" || body.rfind("repl.", 0) == 0) {
    // Replication verbs are answered inline on the event-loop thread: the
    // handler is a pointer swap + memcpy (publisher) or a counter read
    // (edge), and routing them through answer() would push multi-megabyte
    // chunk responses into the query LRU.
    stats_.admin_queries.inc();
    deliver(conn, seq,
            repl_handler_ ? repl_handler_(body.substr(4))
                          : std::string("F replication not enabled\n"));
    return;
  }
  if (body.size() >= 2 && (body.front() == 't' || body.front() == 'T') &&
      util::is_digit(body[1])) {
    stats_.admin_queries.inc();
    if (auto seconds = util::parse_u32(body.substr(1))) {
      conn.idle_timeout = std::chrono::seconds(*seconds);
      deliver_inline(seq, "!t", "C\n");
    } else {
      deliver_inline(seq, "!t", "F invalid timeout\n");
    }
    return;
  }
  if (config_.query_deadline.count() > 0) {
    Connection::PendingQuery pending{t0, trace_id, {}};
    const std::string_view verb = first_token(trimmed);
    std::memcpy(pending.verb, verb.data(),
                std::min(verb.size(), sizeof(pending.verb) - 1));
    conn.pending.emplace(seq, pending);
  }
  enqueue_task(Task{conn.id, seq, std::string(trimmed), t0, false, trace_id});
}

void Server::deliver(Connection& conn, std::uint64_t seq, std::string response) {
  --conn.in_flight;  // every deliver() pairs with one in_flight increment
  conn.ready.emplace(seq, std::move(response));
  while (true) {
    auto next = conn.ready.find(conn.next_write);
    if (next == conn.ready.end()) break;
    conn.out += next->second;
    conn.ready.erase(next);
    ++conn.next_write;
  }
}

void Server::refresh_epoll_interest(Connection& conn, bool want_write) {
  const bool changed = conn.want_write != want_write;
  conn.want_write = want_write;
  if (!changed) return;
  epoll_event ev{};
  ev.events = EPOLLET | (conn.read_paused ? 0u : (EPOLLIN | EPOLLRDHUP)) |
              (conn.want_write ? EPOLLOUT : 0u);
  ev.data.u64 = conn.id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

void Server::apply_backpressure(Connection& conn) {
  if (config_.max_output_buffer_bytes == 0) return;
  const std::size_t outstanding = conn.out.size() - conn.out_off;
  bool changed = false;
  if (!conn.read_paused && outstanding > config_.max_output_buffer_bytes) {
    // The peer is not consuming responses: stop reading new queries from it
    // rather than buffering unboundedly on its behalf.
    conn.read_paused = true;
    stats_.reads_paused.inc();
    obs::log_warn("server", "reads paused: client not draining responses",
                  {{"conn", conn.id},
                   {"buffered_bytes", static_cast<std::uint64_t>(outstanding)}});
    changed = true;
  } else if (conn.read_paused && outstanding <= config_.max_output_buffer_bytes / 2) {
    conn.read_paused = false;
    resumed_reads_.push_back(conn.id);
    changed = true;
  }
  if (changed) {
    epoll_event ev{};
    ev.events = EPOLLET | (conn.read_paused ? 0u : (EPOLLIN | EPOLLRDHUP)) |
                (conn.want_write ? EPOLLOUT : 0u);
    ev.data.u64 = conn.id;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
  }
}

void Server::resume_paused_reads() {
  if (resumed_reads_.empty()) return;
  std::vector<std::uint64_t> ids;
  ids.swap(resumed_reads_);
  for (std::uint64_t id : ids) {
    auto found = conns_.find(id);
    if (found == conns_.end() || found->second->read_paused) continue;
    // Bytes may have queued in the kernel while EPOLLIN was disarmed; the
    // re-arm above reports edges for them, but reading now is cheaper than
    // waiting a poll cycle (and immune to missed-edge corner cases).
    read_ready(*found->second);
  }
}

void Server::flush_writes(Connection& conn) {
  if (const fp::Hit hit = fp::hit("server.send"); hit && hit.is_error()) {
    destroy_conn(conn.id);
    return;
  }
  while (conn.out_off < conn.out.size()) {
    const ssize_t n = ::send(conn.fd, conn.out.data() + conn.out_off,
                             conn.out.size() - conn.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      stats_.bytes_out.inc(static_cast<std::uint64_t>(n));
      conn.out_off += static_cast<std::size_t>(n);
      conn.last_activity = std::chrono::steady_clock::now();
      conn.stalled = false;
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn.stalled) {
        conn.stalled = true;
        conn.stalled_since = std::chrono::steady_clock::now();
      }
      refresh_epoll_interest(conn, true);
      apply_backpressure(conn);
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    destroy_conn(conn.id);
    return;
  }
  conn.out.clear();
  conn.out_off = 0;
  conn.stalled = false;
  refresh_epoll_interest(conn, false);
  apply_backpressure(conn);
  close_if_drained(conn);
}

void Server::close_if_drained(Connection& conn) {
  if (conn.closing && conn.in_flight == 0 && conn.ready.empty() &&
      conn.out_off >= conn.out.size()) {
    destroy_conn(conn.id);
  }
}

void Server::destroy_conn(std::uint64_t id) {
  auto found = conns_.find(id);
  if (found == conns_.end()) return;
  Connection& conn = *found->second;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.fd, nullptr);
  ::close(conn.fd);
  conns_.erase(found);
  stats_.connections_open.add(-1);
}

void Server::drain_completions() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(done_mu_);
    batch.swap(done_);
  }
  for (Completion& completion : batch) {
    auto found = conns_.find(completion.conn_id);
    if (found == conns_.end()) continue;  // connection died while computing
    Connection& conn = *found->second;
    if (conn.timed_out.erase(completion.seq) > 0) {
      // The deadline sweep already answered this sequence with "F timeout";
      // the worker's late result must not be delivered twice.
      continue;
    }
    conn.pending.erase(completion.seq);
    deliver(conn, completion.seq, std::move(completion.response));
    flush_writes(conn);
  }
}

void Server::sweep_deadlines(std::chrono::steady_clock::time_point now) {
  if (config_.query_deadline.count() <= 0) return;
  std::vector<std::uint64_t> affected;
  for (auto& [id, conn] : conns_) {
    bool any = false;
    for (auto it = conn->pending.begin(); it != conn->pending.end();) {
      if (now - it->second.t0 < config_.query_deadline) {
        ++it;
        continue;
      }
      const std::uint64_t seq = it->first;
      const Connection::PendingQuery timed = it->second;
      it = conn->pending.erase(it);
      conn->timed_out.insert(seq);
      stats_.queries_timed_out.inc();
      stats_.queries_errors.inc();
      obs::log_warn("server", "query deadline exceeded; answered F timeout",
                    {{"conn", id},
                     {"seq", seq},
                     {"trace", obs::trace_hex(timed.trace_id)},
                     {"verb", std::string(timed.verb)}});
      if (flight_.enabled()) {
        EvalInfo info;
        record_flight(timed.trace_id, timed.verb, timed.t0, 0, info, 'T',
                      sizeof("F timeout\n") - 1);
      }
      dump_flight_snapshot("deadline", timed.trace_id);
      deliver(*conn, seq, "F timeout\n");
      any = true;
    }
    if (any) affected.push_back(id);
  }
  // Flush after iterating: flush_writes can destroy a connection, which
  // would invalidate the map iterator above.
  for (std::uint64_t id : affected) {
    auto found = conns_.find(id);
    if (found != conns_.end()) flush_writes(*found->second);
  }
}

void Server::sweep_stalled(std::chrono::steady_clock::time_point now) {
  if (config_.write_stall_grace.count() <= 0) return;
  std::vector<std::uint64_t> expired;
  for (const auto& [id, conn] : conns_) {
    if (!conn->stalled) continue;
    if (now - conn->stalled_since >= config_.write_stall_grace) expired.push_back(id);
  }
  for (std::uint64_t id : expired) {
    obs::log_warn("server", "slow client disconnected: unwritable past grace",
                  {{"conn", id}});
    // Close first, count second: an observer that has seen the disconnect
    // counter must also see connections_open already decremented.
    destroy_conn(id);
    stats_.slow_client_disconnects.inc();
  }
}

void Server::maybe_schedule_retry(std::chrono::steady_clock::time_point now) {
  bool fire = false;
  {
    std::lock_guard<std::mutex> lock(health_mu_);
    if (health_state_ != Health::kDegraded) {
      retry_armed_ = false;
      return;
    }
    if (reloads_in_flight_.load(std::memory_order_acquire) > 0) return;
    if (!retry_armed_) {
      const unsigned attempt = reload_attempts_ > 0 ? reload_attempts_ - 1 : 0;
      const auto delay =
          reload_backoff(attempt, config_.reload_retry_initial,
                         config_.reload_retry_max, generation());
      retry_at_ = now + delay;
      retry_armed_ = true;
      return;
    }
    if (now >= retry_at_) {
      retry_armed_ = false;
      fire = true;
    }
  }
  if (fire) {
    stats_.reload_retries.inc();
    obs::log_info("server", "reload retry fired", {{"generation", generation()}});
    enqueue_task(Task{0, 0, {}, now, true});
  }
}

void Server::sweep_idle(std::chrono::steady_clock::time_point now) {
  std::vector<std::uint64_t> expired;
  for (const auto& [id, conn] : conns_) {
    if (conn->idle_timeout.count() <= 0) continue;
    if (conn->in_flight > 0 || !conn->ready.empty()) continue;
    if (conn->out_off < conn->out.size()) continue;
    if (now - conn->last_activity >= conn->idle_timeout) expired.push_back(id);
  }
  for (std::uint64_t id : expired) {
    stats_.connections_idle_closed.inc();
    destroy_conn(id);
  }
}

void Server::maybe_log_stats(std::chrono::steady_clock::time_point now) {
  if (config_.stats_log_interval.count() <= 0) return;
  if (now - last_stats_log_ < config_.stats_log_interval) return;
  const std::uint64_t total = stats_.queries_total.value();
  const double seconds =
      std::chrono::duration<double>(now - last_stats_log_).count();
  const double qps =
      seconds > 0 ? static_cast<double>(total - last_logged_queries_) / seconds : 0;
  const CacheStats cache = cache_.stats();
  const obs::Histogram::Snapshot latency = stats_.latency.snapshot();
  obs::log_info(
      "server", "periodic stats",
      {{"conns", stats_.connections_open.value()},
       {"qps", qps},
       {"queries", total},
       {"hit_ratio", cache.hit_ratio()},
       {"p50_us", latency.percentile(50, stats_.latency.bounds()) * 1e6},
       {"p99_us", latency.percentile(99, stats_.latency.bounds()) * 1e6},
       {"generation", generation()},
       {"health", to_string(health().state)}});
  last_stats_log_ = now;
  last_logged_queries_ = total;
}

}  // namespace rpslyzer::server
