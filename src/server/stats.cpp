#include "rpslyzer/server/stats.hpp"

#include <bit>

namespace rpslyzer::server {

std::size_t LatencyHistogram::bucket_for(std::uint64_t micros) noexcept {
  if (micros <= 1) return 0;
  const std::size_t log2 = static_cast<std::size_t>(std::bit_width(micros) - 1);
  return log2 < kBuckets ? log2 : kBuckets - 1;
}

std::uint64_t LatencyHistogram::percentile_micros(double p) const noexcept {
  std::array<std::uint64_t, kBuckets> snapshot;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    snapshot[i] = buckets_[i].load(std::memory_order_relaxed);
    total += snapshot[i];
  }
  if (total == 0) return 0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  // Rank of the percentile sample, 1-based.
  std::uint64_t rank = static_cast<std::uint64_t>(p / 100.0 * static_cast<double>(total));
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += snapshot[i];
    if (seen >= rank) return std::uint64_t{1} << (i + 1);  // bucket upper bound
  }
  return std::uint64_t{1} << kBuckets;
}

void LatencyHistogram::reset() noexcept {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_micros_.store(0, std::memory_order_relaxed);
}

}  // namespace rpslyzer::server
