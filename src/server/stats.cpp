#include "rpslyzer/server/stats.hpp"

#include <cmath>

namespace rpslyzer::server {

std::vector<double> ServerStats::default_latency_bounds() {
  // 1 µs … ~8.4 s doubling: the same span the old log2-µs histogram covered,
  // now in seconds (the Prometheus base unit) and overridable per server.
  return obs::exponential_bounds(1e-6, 2.0, 24);
}

namespace {

obs::Counter& c(obs::MetricsRegistry& registry, const char* name, const char* help) {
  return registry.counter(name, help);
}

}  // namespace

ServerStats::ServerStats(obs::MetricsRegistry& registry,
                         std::vector<double> latency_bounds)
    : connections_accepted(c(registry, "rpslyzer_server_connections_accepted_total",
                             "TCP connections accepted")),
      connections_rejected(c(registry, "rpslyzer_server_connections_rejected_total",
                             "Connections refused by the max-connection guard")),
      connections_open(registry.gauge("rpslyzer_server_connections_open",
                                      "Currently open client connections")),
      connections_idle_closed(c(registry,
                                "rpslyzer_server_connections_idle_closed_total",
                                "Connections closed by the idle sweep")),
      queries_total(c(registry, "rpslyzer_server_queries_total",
                      "Query lines dispatched (engine + admin)")),
      queries_errors(c(registry, "rpslyzer_server_query_errors_total",
                       "Responses that reported an error ('F ...')")),
      admin_queries(c(registry, "rpslyzer_server_admin_queries_total",
                      "Admin queries (!stats !health !reload !metrics !t !q)")),
      queries_timed_out(c(registry, "rpslyzer_server_query_timeouts_total",
                          "Queries answered 'F timeout' by the deadline sweep")),
      bytes_in(c(registry, "rpslyzer_server_bytes_in_total",
                 "Bytes read from clients")),
      bytes_out(c(registry, "rpslyzer_server_bytes_out_total",
                  "Bytes written to clients")),
      reloads(c(registry, "rpslyzer_server_reloads_total",
                "Successful corpus reloads")),
      reload_failures(c(registry, "rpslyzer_server_reload_failures_total",
                        "Reloads that failed (stale generation kept serving)")),
      reload_retries(c(registry, "rpslyzer_server_reload_retries_total",
                       "Backoff-scheduled reload retries fired")),
      reads_paused(c(registry, "rpslyzer_server_reads_paused_total",
                     "Backpressure events: reads paused on a slow client")),
      slow_client_disconnects(c(registry,
                                "rpslyzer_server_slow_client_disconnects_total",
                                "Clients dropped after staying unwritable past the "
                                "stall grace")),
      latency(registry.histogram("rpslyzer_server_query_latency_seconds",
                                 "Query service time (enqueue to response ready)",
                                 std::move(latency_bounds))) {}

ServerStats::Snapshot ServerStats::snapshot() const noexcept {
  Snapshot snap;
  // Subordinate counters first, their totals after: writers bump the total
  // before the subset (dispatch_line increments queries_total before any
  // admin/error counter), so subset ≤ total holds in every snapshot.
  snap.queries_errors = queries_errors.value();
  snap.admin_queries = admin_queries.value();
  snap.queries_timed_out = queries_timed_out.value();
  snap.queries_total = queries_total.value();

  snap.connections_rejected = connections_rejected.value();
  snap.connections_idle_closed = connections_idle_closed.value();
  snap.slow_client_disconnects = slow_client_disconnects.value();
  snap.connections_open = connections_open.value();
  snap.connections_accepted = connections_accepted.value();

  snap.bytes_in = bytes_in.value();
  snap.bytes_out = bytes_out.value();
  snap.reload_failures = reload_failures.value();
  snap.reload_retries = reload_retries.value();
  snap.reloads = reloads.value();
  snap.reads_paused = reads_paused.value();
  snap.latency = latency.snapshot();
  return snap;
}

std::uint64_t ServerStats::Snapshot::latency_mean_micros() const noexcept {
  return static_cast<std::uint64_t>(std::llround(latency.mean() * 1e6));
}

std::uint64_t ServerStats::Snapshot::latency_percentile_micros(
    double p, const std::vector<double>& bounds) const noexcept {
  return static_cast<std::uint64_t>(std::llround(latency.percentile(p, bounds) * 1e6));
}

}  // namespace rpslyzer::server
