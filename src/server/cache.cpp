#include "rpslyzer/server/cache.hpp"

#include <functional>

#include "rpslyzer/util/failpoint.hpp"
#include "rpslyzer/util/strings.hpp"

namespace rpslyzer::server {

namespace fp = util::failpoint;

ResponseCache::ResponseCache(std::size_t capacity, std::size_t shards)
    : capacity_(capacity), shards_(std::max<std::size_t>(shards, 1)) {
  per_shard_capacity_ = capacity_ / shards_.size();
  if (capacity_ > 0 && per_shard_capacity_ == 0) per_shard_capacity_ = 1;
}

ResponseCache::Shard& ResponseCache::shard_for(std::string_view key) {
  return shards_[std::hash<std::string_view>{}(key) % shards_.size()];
}

void ResponseCache::erase_locked(Shard& shard, std::list<Entry>::iterator it) {
  shard.bytes -= it->key.size() + it->value.size();
  shard.map.erase(std::string_view(it->key));
  shard.lru.erase(it);
}

std::optional<std::string> ResponseCache::get(std::string_view key,
                                              std::uint64_t generation) {
  // "cache.get" error = simulated lookup failure; served as a miss, so the
  // daemon stays correct (every response recomputed) just slower.
  if (const fp::Hit hit = fp::hit("cache.get"); hit && hit.is_error()) {
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    ++shard.misses;
    return std::nullopt;
  }
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto found = shard.map.find(key);
  if (found == shard.map.end()) {
    ++shard.misses;
    return std::nullopt;
  }
  auto it = found->second;
  if (it->generation != generation) {
    ++shard.invalidated;
    ++shard.misses;
    erase_locked(shard, it);
    return std::nullopt;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it);
  return it->value;
}

void ResponseCache::put(std::string_view key, std::uint64_t generation,
                        std::string value) {
  if (per_shard_capacity_ == 0) return;
  // "cache.put" error = simulated insert failure; the entry is dropped,
  // which only costs a future miss.
  if (const fp::Hit hit = fp::hit("cache.put"); hit && hit.is_error()) return;
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto found = shard.map.find(key);
  if (found != shard.map.end()) {
    auto it = found->second;
    shard.bytes += value.size();
    shard.bytes -= it->value.size();
    it->value = std::move(value);
    it->generation = generation;
    shard.lru.splice(shard.lru.begin(), shard.lru, it);
    return;
  }
  while (shard.lru.size() >= per_shard_capacity_) {
    ++shard.evictions;
    erase_locked(shard, std::prev(shard.lru.end()));
  }
  shard.lru.push_front(Entry{std::string(key), std::move(value), generation});
  auto it = shard.lru.begin();
  shard.bytes += it->key.size() + it->value.size();
  shard.map.emplace(std::string_view(it->key), it);
}

void ResponseCache::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.clear();
    shard.lru.clear();
    shard.bytes = 0;
  }
}

CacheStats ResponseCache::stats() const {
  CacheStats total;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total.hits += shard.hits;
    total.misses += shard.misses;
    total.evictions += shard.evictions;
    total.invalidated += shard.invalidated;
    total.entries += shard.lru.size();
    total.bytes += shard.bytes;
  }
  return total;
}

std::string normalize_query_key(std::string_view line) {
  std::string_view trimmed = util::trim(line);
  if (!trimmed.empty() && trimmed.front() == '!') trimmed.remove_prefix(1);
  return util::lower(trimmed);
}

}  // namespace rpslyzer::server
