#include "rpslyzer/lint/linter.hpp"

#include <algorithm>

#include "rpslyzer/stats/census.hpp"
#include "rpslyzer/util/strings.hpp"

namespace rpslyzer::lint {

namespace {

using util::overloaded;

const char* severity_name(LintSeverity s) {
  switch (s) {
    case LintSeverity::kInfo:
      return "info";
    case LintSeverity::kWarning:
      return "warning";
    case LintSeverity::kError:
      return "error";
  }
  return "?";
}

class Linter {
 public:
  Linter(const ir::Ir& ir, const irr::Index& index, const LintOptions& options)
      : ir_(ir), index_(index), options_(options) {}

  std::vector<LintFinding> run() {
    if (options_.check_aut_nums) lint_aut_nums();
    if (options_.check_as_sets) lint_as_sets();
    if (options_.check_route_sets) lint_route_sets();
    if (options_.check_route_objects) lint_route_objects();
    std::sort(findings_.begin(), findings_.end(),
              [](const LintFinding& a, const LintFinding& b) {
                if (a.object != b.object) return a.object < b.object;
                return static_cast<int>(a.code) < static_cast<int>(b.code);
              });
    return std::move(findings_);
  }

 private:
  const ir::Ir& ir_;
  const irr::Index& index_;
  const LintOptions& options_;
  std::vector<LintFinding> findings_;

  void add(LintCode code, LintSeverity severity, std::string object, std::string message) {
    if (severity == LintSeverity::kInfo && !options_.include_info) return;
    findings_.push_back({code, severity, std::move(object), std::move(message)});
  }

  // --- aut-num checks -----------------------------------------------------

  void check_filter_references(const ir::Filter& filter, const std::string& object) {
    std::visit(
        overloaded{
            [&](const ir::FilterAsNum& f) {
              if (!index_.has_routes(f.asn)) {
                add(LintCode::kRuleReferencesZeroRouteAs, LintSeverity::kWarning, object,
                    "filter references AS" + std::to_string(f.asn) +
                        ", which originates no route objects; register route objects or "
                        "use a route-set");
              }
            },
            [&](const ir::FilterAsSet& f) {
              if (index_.as_set(f.name) == nullptr) {
                add(LintCode::kRuleReferencesMissingSet, LintSeverity::kError, object,
                    "filter references undefined as-set " + f.name);
              }
            },
            [&](const ir::FilterRouteSet& f) {
              if (index_.route_set(f.name) == nullptr) {
                add(LintCode::kRuleReferencesMissingSet, LintSeverity::kError, object,
                    "filter references undefined route-set " + f.name);
              }
            },
            [&](const ir::FilterFilterSet& f) {
              if (index_.filter_set(f.name) == nullptr) {
                add(LintCode::kRuleReferencesMissingSet, LintSeverity::kError, object,
                    "filter references undefined filter-set " + f.name);
              }
            },
            [&](const ir::FilterCommunity&) {
              add(LintCode::kSkippedConstruct, LintSeverity::kInfo, object,
                  "community() filters cannot be checked against collector routes "
                  "(communities may be stripped in flight)");
            },
            [&](const ir::FilterAsPath& f) {
              if (ir::uses_skipped_constructs(f.regex)) {
                add(LintCode::kSkippedConstruct, LintSeverity::kInfo, object,
                    "AS-path regex uses ASN ranges or same-pattern operators, which "
                    "verification tools commonly skip");
              }
            },
            [&](const ir::FilterUnknown& f) {
              add(LintCode::kUnparseableFilter, LintSeverity::kError, object,
                  "unparseable filter: '" + f.text + "'");
            },
            [&](const ir::FilterAnd& f) {
              check_filter_references(*f.left, object);
              check_filter_references(*f.right, object);
            },
            [&](const ir::FilterOr& f) {
              check_filter_references(*f.left, object);
              check_filter_references(*f.right, object);
            },
            [&](const ir::FilterNot& f) { check_filter_references(*f.inner, object); },
            [&](const auto&) {},
        },
        filter.node);
  }

  void check_peering_references(const ir::Peering& peering, const std::string& object) {
    std::visit(overloaded{
                   [&](const ir::PeeringSpec& spec) {
                     check_as_expr_references(spec.as_expr, object);
                   },
                   [&](const ir::PeeringSetRef& ref) {
                     if (index_.peering_set(ref.name) == nullptr) {
                       add(LintCode::kRuleReferencesMissingSet, LintSeverity::kError, object,
                           "peering references undefined peering-set " + ref.name);
                     }
                   },
               },
               peering.node);
  }

  void check_as_expr_references(const ir::AsExpr& expr, const std::string& object) {
    std::visit(overloaded{
                   [&](const ir::AsExprSet& s) {
                     if (index_.as_set(s.name) == nullptr) {
                       add(LintCode::kRuleReferencesMissingSet, LintSeverity::kError, object,
                           "peering references undefined as-set " + s.name);
                     }
                   },
                   [&](const ir::AsExprAnd& n) {
                     check_as_expr_references(*n.left, object);
                     check_as_expr_references(*n.right, object);
                   },
                   [&](const ir::AsExprOr& n) {
                     check_as_expr_references(*n.left, object);
                     check_as_expr_references(*n.right, object);
                   },
                   [&](const ir::AsExprExcept& n) {
                     check_as_expr_references(*n.left, object);
                     check_as_expr_references(*n.right, object);
                   },
                   [&](const auto&) {},
               },
               expr.node);
  }

  void check_entry(const ir::Entry& entry, const std::string& object) {
    std::visit(overloaded{
                   [&](const ir::EntryTerm& term) {
                     for (const auto& factor : term.factors) {
                       for (const auto& pa : factor.peerings) {
                         check_peering_references(pa.peering, object);
                       }
                       check_filter_references(factor.filter, object);
                     }
                   },
                   [&](const ir::EntryExcept& e) {
                     check_entry(*e.left, object);
                     check_entry(*e.right, object);
                   },
                   [&](const ir::EntryRefine& e) {
                     check_entry(*e.left, object);
                     check_entry(*e.right, object);
                   },
               },
               entry.node);
  }

  void lint_aut_nums() {
    stats::MisusePatterns patterns = stats::MisusePatterns::compute(ir_);
    for (const auto& [asn, an] : ir_.aut_nums) {
      const std::string object = "aut-num:AS" + std::to_string(asn);
      if (an.imports.empty() && an.exports.empty()) {
        add(LintCode::kNoRules, LintSeverity::kInfo, object,
            "no import/export rules; neighbors cannot verify routes through this AS");
        continue;
      }
      if (patterns.export_self.contains(asn)) {
        add(LintCode::kExportSelfShape, LintSeverity::kWarning, object,
            "'export: to <peer> announce AS" + std::to_string(asn) +
                "' only covers self-originated routes; announce an as-set or route-set "
                "covering the customer cone instead");
      }
      if (patterns.import_customer.contains(asn)) {
        add(LintCode::kImportCustomerShape, LintSeverity::kWarning, object,
            "'import: from <C> accept <C>' only admits C's own route objects; accept C's "
            "customer-cone set if routes from C's customers are expected");
      }
      for (const auto* rules : {&an.imports, &an.exports}) {
        for (const auto& rule : *rules) check_entry(rule.entry, object);
      }
    }
  }

  // --- as-set checks --------------------------------------------------------

  void lint_as_sets() {
    for (const auto& [name, set] : ir_.as_sets) {
      const std::string object = "as-set:" + name;
      if (util::iequals(name, "AS-ANY")) {
        add(LintCode::kReservedSetName, LintSeverity::kError, object,
            "a set must not be named after the reserved keyword AS-ANY");
      }
      if (set.members.empty() && set.mbrs_by_ref.empty()) {
        add(LintCode::kEmptyAsSet, LintSeverity::kWarning, object,
            "empty as-set; using it in a rule matches nothing");
      }
      if (set.members.size() == 1 && set.members[0].kind == ir::AsSetMember::Kind::kAsn &&
          set.mbrs_by_ref.empty()) {
        add(LintCode::kSingleMemberAsSet, LintSeverity::kInfo, object,
            "single-member as-set; rules could reference AS" +
                std::to_string(set.members[0].asn) + " directly");
      }
      for (const auto& member : set.members) {
        if (member.kind == ir::AsSetMember::Kind::kAny) {
          add(LintCode::kAsSetContainsAny, LintSeverity::kError, object,
              "member 'ANY' makes the set match every AS, which is almost never intended");
        }
        if (member.kind == ir::AsSetMember::Kind::kSet &&
            index_.as_set(ir::sym_view(member.name)) == nullptr) {
          add(LintCode::kAsSetMissingMember, LintSeverity::kError, object,
              "member set " + ir::to_string(member.name) + " is not defined in any IRR");
        }
      }
      const irr::FlattenedAsSet* flat = index_.flattened(name);
      if (flat != nullptr) {
        if (flat->has_loop) {
          add(LintCode::kAsSetLoop, LintSeverity::kWarning, object,
              "membership cycle detected; tools must guard against infinite recursion");
        }
        if (flat->depth >= 5) {
          add(LintCode::kAsSetDeepNesting, LintSeverity::kInfo, object,
              "member chain depth " + std::to_string(flat->depth) +
                  "; deeply nested sets are hard to audit manually");
        }
      }
    }
  }

  // --- route-set checks -------------------------------------------------------

  void lint_route_sets() {
    stats::ReferenceCensus census = stats::ReferenceCensus::compute(ir_);
    (void)census;
    // Collect referenced route-set names from all rules.
    std::set<std::string, util::ILess> referenced;
    for (const auto& [asn, an] : ir_.aut_nums) {
      for (const auto* rules : {&an.imports, &an.exports}) {
        for (const auto& rule : *rules) collect_route_set_refs(rule.entry, referenced);
      }
    }
    for (const auto& [name, set] : ir_.route_sets) {
      if (util::iequals(name, "RS-ANY")) {
        add(LintCode::kReservedSetName, LintSeverity::kError, "route-set:" + name,
            "a set must not be named after the reserved keyword RS-ANY");
      }
      if (!referenced.contains(name)) {
        add(LintCode::kRouteSetUnreferenced, LintSeverity::kInfo, "route-set:" + name,
            "defined but referenced by no rule");
      }
    }
  }

  void collect_route_set_refs(const ir::Entry& entry,
                              std::set<std::string, util::ILess>& out) {
    std::visit(overloaded{
                   [&](const ir::EntryTerm& term) {
                     for (const auto& factor : term.factors) {
                       collect_route_set_refs_filter(factor.filter, out);
                     }
                   },
                   [&](const ir::EntryExcept& e) {
                     collect_route_set_refs(*e.left, out);
                     collect_route_set_refs(*e.right, out);
                   },
                   [&](const ir::EntryRefine& e) {
                     collect_route_set_refs(*e.left, out);
                     collect_route_set_refs(*e.right, out);
                   },
               },
               entry.node);
  }

  void collect_route_set_refs_filter(const ir::Filter& filter,
                                     std::set<std::string, util::ILess>& out) {
    std::visit(overloaded{
                   [&](const ir::FilterRouteSet& f) { out.insert(f.name); },
                   [&](const ir::FilterAnd& f) {
                     collect_route_set_refs_filter(*f.left, out);
                     collect_route_set_refs_filter(*f.right, out);
                   },
                   [&](const ir::FilterOr& f) {
                     collect_route_set_refs_filter(*f.left, out);
                     collect_route_set_refs_filter(*f.right, out);
                   },
                   [&](const ir::FilterNot& f) {
                     collect_route_set_refs_filter(*f.inner, out);
                   },
                   [&](const auto&) {},
               },
               filter.node);
  }

  // --- route-object checks ------------------------------------------------------

  void lint_route_objects() {
    std::map<net::Prefix, std::set<ir::Asn>> origins_by_prefix;
    for (const auto& route : ir_.routes) {
      origins_by_prefix[route.prefix].insert(route.origin);
    }
    for (const auto& [prefix, origins] : origins_by_prefix) {
      if (origins.size() > 1) {
        std::string list;
        for (ir::Asn asn : origins) {
          if (!list.empty()) list += ", ";
          list += "AS" + std::to_string(asn);
        }
        add(LintCode::kMultiOriginPrefix, LintSeverity::kWarning,
            "route:" + prefix.to_string(),
            "registered under multiple origins (" + list +
                "); stale or conflicting registrations hide the legitimate origin");
      }
    }
  }
};

}  // namespace

const char* to_string(LintCode code) noexcept {
  switch (code) {
    case LintCode::kNoRules:
      return "no-rules";
    case LintCode::kExportSelfShape:
      return "export-self-shape";
    case LintCode::kImportCustomerShape:
      return "import-customer-shape";
    case LintCode::kRuleReferencesMissingSet:
      return "missing-set-reference";
    case LintCode::kRuleReferencesZeroRouteAs:
      return "zero-route-as-reference";
    case LintCode::kSkippedConstruct:
      return "skipped-construct";
    case LintCode::kUnparseableFilter:
      return "unparseable-filter";
    case LintCode::kEmptyAsSet:
      return "empty-as-set";
    case LintCode::kSingleMemberAsSet:
      return "single-member-as-set";
    case LintCode::kAsSetContainsAny:
      return "as-set-contains-any";
    case LintCode::kAsSetLoop:
      return "as-set-loop";
    case LintCode::kAsSetDeepNesting:
      return "as-set-deep-nesting";
    case LintCode::kAsSetMissingMember:
      return "as-set-missing-member";
    case LintCode::kReservedSetName:
      return "reserved-set-name";
    case LintCode::kRouteSetUnreferenced:
      return "route-set-unreferenced";
    case LintCode::kAnnouncedPrefixUnregistered:
      return "announced-prefix-unregistered";
    case LintCode::kMultiOriginPrefix:
      return "multi-origin-prefix";
  }
  return "unknown";
}

std::vector<LintFinding> lint(const ir::Ir& ir, const irr::Index& index,
                              const LintOptions& options) {
  return Linter(ir, index, options).run();
}

std::string render(const std::vector<LintFinding>& findings) {
  std::string out;
  for (const auto& f : findings) {
    out += std::string(severity_name(f.severity)) + " [" + to_string(f.code) + "] " +
           f.object + ": " + f.message + "\n";
  }
  return out;
}

}  // namespace rpslyzer::lint
