#include "rpslyzer/lint/classify.hpp"

#include "rpslyzer/stats/bgpq4.hpp"
#include "rpslyzer/util/strings.hpp"

namespace rpslyzer::lint {

namespace {

using util::overloaded;

bool entry_uses_sets(const ir::Entry& entry);

bool filter_uses_sets(const ir::Filter& filter) {
  return std::visit(overloaded{
                        [](const ir::FilterAsSet&) { return true; },
                        [](const ir::FilterRouteSet&) { return true; },
                        [](const ir::FilterFilterSet&) { return true; },
                        [](const ir::FilterAnd& f) {
                          return filter_uses_sets(*f.left) || filter_uses_sets(*f.right);
                        },
                        [](const ir::FilterOr& f) {
                          return filter_uses_sets(*f.left) || filter_uses_sets(*f.right);
                        },
                        [](const ir::FilterNot& f) { return filter_uses_sets(*f.inner); },
                        [](const auto&) { return false; },
                    },
                    filter.node);
}

bool entry_uses_sets(const ir::Entry& entry) {
  return std::visit(
      overloaded{
          [](const ir::EntryTerm& term) {
            for (const auto& factor : term.factors) {
              if (filter_uses_sets(factor.filter)) return true;
              for (const auto& pa : factor.peerings) {
                const auto* spec = std::get_if<ir::PeeringSpec>(&pa.peering.node);
                if (spec != nullptr &&
                    std::holds_alternative<ir::AsExprSet>(spec->as_expr.node)) {
                  return true;
                }
                if (std::holds_alternative<ir::PeeringSetRef>(pa.peering.node)) return true;
              }
            }
            return false;
          },
          [](const ir::EntryExcept& e) {
            return entry_uses_sets(*e.left) || entry_uses_sets(*e.right);
          },
          [](const ir::EntryRefine& e) {
            return entry_uses_sets(*e.left) || entry_uses_sets(*e.right);
          },
      },
      entry.node);
}

}  // namespace

const char* to_string(UsageClass c) noexcept {
  switch (c) {
    case UsageClass::kAbsent:
      return "absent";
    case UsageClass::kSilent:
      return "silent";
    case UsageClass::kMinimal:
      return "minimal";
    case UsageClass::kBasic:
      return "basic";
    case UsageClass::kExpressive:
      return "expressive";
    case UsageClass::kPolicyRich:
      return "policy-rich";
  }
  return "unknown";
}

Classification classify(const ir::AutNum* aut_num) {
  Classification out;
  if (aut_num == nullptr) {
    out.usage = UsageClass::kAbsent;
    return out;
  }
  out.rules = aut_num->imports.size() + aut_num->exports.size();
  for (const auto* rules : {&aut_num->imports, &aut_num->exports}) {
    for (const auto& rule : *rules) {
      if (!stats::bgpq4_compatible(rule)) ++out.compound_rules;
      if (!out.uses_sets && entry_uses_sets(rule.entry)) out.uses_sets = true;
    }
  }
  if (out.rules == 0) {
    out.usage = UsageClass::kSilent;
  } else if (out.rules > 200) {
    out.usage = UsageClass::kPolicyRich;
  } else if (out.compound_rules > 0) {
    out.usage = UsageClass::kExpressive;
  } else if (out.rules <= 2) {
    out.usage = UsageClass::kMinimal;
  } else {
    out.usage = UsageClass::kBasic;
  }
  return out;
}

std::map<ir::Asn, Classification> classify_all(const ir::Ir& ir,
                                               const std::vector<ir::Asn>& universe) {
  std::map<ir::Asn, Classification> out;
  for (const auto& [asn, an] : ir.aut_nums) out.emplace(asn, classify(&an));
  for (ir::Asn asn : universe) {
    if (!out.contains(asn)) out.emplace(asn, classify(nullptr));
  }
  return out;
}

std::map<UsageClass, std::size_t> histogram(const std::map<ir::Asn, Classification>& all) {
  std::map<UsageClass, std::size_t> out;
  for (const auto& [asn, c] : all) ++out[c.usage];
  return out;
}

}  // namespace rpslyzer::lint
