#pragma once
// RPSL linter — the paper's first named piece of future work (§7: "further
// RPSL tooling such as linters"). Each check flags a concrete §4/§5 finding
// so operators can fix their objects before the issues surface as
// unrecorded or unverified routes.

#include <string>
#include <vector>

#include "rpslyzer/irr/index.hpp"

namespace rpslyzer::lint {

enum class LintCode : std::uint8_t {
  // aut-num findings.
  kNoRules,                 // aut-num declares no policy at all (§4: 35.2%)
  kExportSelfShape,         // transit "to P announce <self>" (§5.1.1)
  kImportCustomerShape,     // "from C accept C" / accept PeerAS (§5.1.1)
  kRuleReferencesMissingSet,     // as/route/peering/filter-set not in any IRR
  kRuleReferencesZeroRouteAs,    // filter AS never originates route objects
  kSkippedConstruct,        // community filter / ASN-range regex / ~ operators
  kUnparseableFilter,       // filter text the parser could not interpret
  // as-set findings (§4's opacity census).
  kEmptyAsSet,
  kSingleMemberAsSet,
  kAsSetContainsAny,
  kAsSetLoop,
  kAsSetDeepNesting,        // flattening depth >= 5
  kAsSetMissingMember,      // member set not defined in any IRR
  kReservedSetName,         // a set named AS-ANY / RS-ANY
  // route-set findings.
  kRouteSetUnreferenced,    // defined but never used by any rule
  // route-object findings.
  kAnnouncedPrefixUnregistered,  // aut-num rules imply origination, but no
                                 // route object exists (needs BGP data; the
                                 // static variant checks filter self-refs)
  kMultiOriginPrefix,            // same prefix registered under 2+ origins
};

const char* to_string(LintCode code) noexcept;

enum class LintSeverity : std::uint8_t { kInfo, kWarning, kError };

struct LintFinding {
  LintCode code;
  LintSeverity severity = LintSeverity::kWarning;
  std::string object;   // "aut-num:AS64500", "as-set:AS-FOO", ...
  std::string message;  // human-readable explanation with a recommendation
};

struct LintOptions {
  bool check_aut_nums = true;
  bool check_as_sets = true;
  bool check_route_sets = true;
  bool check_route_objects = true;
  /// Suppress the (noisy) info-level findings.
  bool include_info = true;
};

/// Lint a whole corpus. Findings are ordered by object key.
std::vector<LintFinding> lint(const ir::Ir& ir, const irr::Index& index,
                              const LintOptions& options = {});

/// Render findings as "level object: message" lines.
std::string render(const std::vector<LintFinding>& findings);

}  // namespace rpslyzer::lint
