#pragma once
// AS classification by RPSL usage — another piece of the paper's stated
// future work (§7: "classifying ASes by RPSL usage"). Buckets each AS by
// how much policy it publishes and how expressive that policy is.

#include <map>

#include "rpslyzer/ir/objects.hpp"

namespace rpslyzer::lint {

enum class UsageClass : std::uint8_t {
  kAbsent,       // no aut-num object in any IRR
  kSilent,       // aut-num exists but declares no rules
  kMinimal,      // 1-2 simple rules (typically one upstream)
  kBasic,        // simple (BGPq4-compatible) rules only
  kExpressive,   // uses compound filters, structured policies, or regexes
  kPolicyRich,   // hundreds of rules (per-session/per-neighbor variants)
};

const char* to_string(UsageClass c) noexcept;

struct Classification {
  UsageClass usage = UsageClass::kAbsent;
  std::size_t rules = 0;
  std::size_t compound_rules = 0;  // not BGPq4-compatible
  bool uses_sets = false;          // references any as-set/route-set
};

/// Classify one aut-num (pass nullptr for an AS with no aut-num).
Classification classify(const ir::AutNum* aut_num);

/// Classify a whole corpus; `universe` optionally adds ASes that appear in
/// BGP but not the IRRs (classified kAbsent).
std::map<ir::Asn, Classification> classify_all(const ir::Ir& ir,
                                               const std::vector<ir::Asn>& universe = {});

/// Count ASes per class.
std::map<UsageClass, std::size_t> histogram(const std::map<ir::Asn, Classification>& all);

}  // namespace rpslyzer::lint
