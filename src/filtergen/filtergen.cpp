#include "rpslyzer/filtergen/filtergen.hpp"

#include <algorithm>

#include "rpslyzer/util/strings.hpp"

namespace rpslyzer::filtergen {

namespace {

/// ge/le interval implied by an entry for coverage comparisons: an exact
/// entry admits only its own length.
std::pair<std::uint8_t, std::uint8_t> interval_of(const FilterEntry& e) {
  if (e.exact()) return {e.prefix.length(), e.prefix.length()};
  return {e.ge, e.le};
}

FilterEntry entry_for(const net::Prefix& prefix, const net::RangeOp& op) {
  FilterEntry e;
  e.prefix = prefix;
  auto interval = net::length_interval(op, prefix.length(), prefix.family());
  if (op.is_none() || !interval) {
    // kNone: exact. An empty interval cannot happen for prefixes taken
    // from route objects (length <= family max), but fall back to exact.
    return e;
  }
  if (interval->first == prefix.length() && interval->second == prefix.length()) return e;
  e.ge = interval->first;
  e.le = interval->second;
  return e;
}

}  // namespace

std::vector<FilterEntry> aggregate(std::vector<FilterEntry> entries) {
  std::sort(entries.begin(), entries.end());
  entries.erase(std::unique(entries.begin(), entries.end()), entries.end());
  std::vector<FilterEntry> out;
  for (const FilterEntry& entry : entries) {
    bool covered = false;
    for (const FilterEntry& kept : out) {
      if (!kept.prefix.covers(entry.prefix)) continue;
      auto [klo, khi] = interval_of(kept);
      auto [elo, ehi] = interval_of(entry);
      if (klo <= elo && ehi <= khi) {
        covered = true;
        break;
      }
    }
    if (!covered) out.push_back(entry);
  }
  return out;
}

std::optional<GeneratedFilter> generate(const irr::Index& index, std::string_view object,
                                        const FilterOptions& options) {
  GeneratedFilter out;
  std::vector<ir::Asn> members;
  if (auto asn = ir::parse_as_ref(object)) {
    members.push_back(*asn);
  } else if (const irr::FlattenedAsSet* flat = index.flattened(object)) {
    members.assign(flat->asns.begin(), flat->asns.end());
    out.missing_sets = flat->missing_sets;
  } else {
    return std::nullopt;
  }
  out.member_ases = members.size();

  for (ir::Asn asn : members) {
    for (const net::Prefix& prefix : index.origins_of(asn)) {
      if ((prefix.family() == options.family)) {
        ++out.route_objects;
        out.entries.push_back(entry_for(prefix, options.range_op));
      }
    }
  }
  if (out.entries.empty() && out.member_ases == 1 && !index.has_routes(members.front()) &&
      index.as_set(object) == nullptr) {
    // A bare ASN with no registrations at all: unknown object (bgpq4
    // reports an empty list error).
    return std::nullopt;
  }
  std::sort(out.entries.begin(), out.entries.end());
  out.entries.erase(std::unique(out.entries.begin(), out.entries.end()), out.entries.end());
  if (options.aggregate) out.entries = aggregate(std::move(out.entries));
  return out;
}

std::string render_cisco_prefix_list(const GeneratedFilter& filter, std::string_view name) {
  std::string out;
  if (filter.entries.empty()) {
    out += "! empty prefix-list " + std::string(name) + "\n";
    return out;
  }
  std::size_t seq = 5;
  for (const FilterEntry& e : filter.entries) {
    out += "ip prefix-list " + std::string(name) + " seq " + std::to_string(seq) +
           " permit " + e.prefix.to_string();
    if (!e.exact()) {
      if (e.ge > e.prefix.length()) out += " ge " + std::to_string(e.ge);
      if (e.le >= e.ge && e.le != e.prefix.length()) out += " le " + std::to_string(e.le);
    }
    out += "\n";
    seq += 5;
  }
  return out;
}

std::string render_juniper_route_filter(const GeneratedFilter& filter,
                                        std::string_view policy_name) {
  std::string out = "policy-statement " + std::string(policy_name) + " {\n    term irr {\n";
  out += "        from {\n";
  for (const FilterEntry& e : filter.entries) {
    out += "            route-filter " + e.prefix.to_string();
    if (e.exact()) {
      out += " exact;";
    } else if (e.ge == e.prefix.length()) {
      out += " upto /" + std::to_string(e.le) + ";";
    } else {
      out += " prefix-length-range /" + std::to_string(e.ge) + "-/" + std::to_string(e.le) +
             ";";
    }
    out += "\n";
  }
  out += "        }\n        then accept;\n    }\n    then reject;\n}\n";
  return out;
}

std::string render_bird_prefix_set(const GeneratedFilter& filter, std::string_view name) {
  std::string out = "define " + std::string(name) + " = [";
  bool first = true;
  for (const FilterEntry& e : filter.entries) {
    out += first ? " " : ", ";
    first = false;
    out += e.prefix.to_string();
    if (!e.exact()) {
      out += "{" + std::to_string(e.ge) + "," + std::to_string(e.le) + "}";
    }
  }
  out += first ? "];" : " ];";
  out += "\n";
  return out;
}

std::string render_plain(const GeneratedFilter& filter) {
  std::string out;
  for (const FilterEntry& e : filter.entries) {
    out += e.prefix.to_string();
    if (!e.exact()) {
      out += "^" + std::to_string(e.ge) + "-" + std::to_string(e.le);
    }
    out += "\n";
  }
  return out;
}

}  // namespace rpslyzer::filtergen
