#pragma once
// Router filter generation from IRR data — the BGPq4 use case the paper
// opens with (§1: transit providers require customers to register routes
// "so that they can input them into tools like IRRToolSet or BGPq4 to
// automatically generate route filters"). Resolving an ASN or as-set to a
// prefix list is exactly the single-term resolution BGPq4 performs; this
// module reproduces it on top of the RPSLyzer index, including prefix
// aggregation and the common router syntaxes.

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "rpslyzer/irr/index.hpp"

namespace rpslyzer::filtergen {

/// One entry of a generated filter: a prefix, optionally allowing a range
/// of more-specific lengths (ge/le in router syntax).
struct FilterEntry {
  net::Prefix prefix;
  std::uint8_t ge = 0;  // 0 = exact-length only
  std::uint8_t le = 0;

  bool exact() const noexcept { return ge == 0 && le == 0; }
  friend bool operator==(const FilterEntry&, const FilterEntry&) = default;
  friend auto operator<=>(const FilterEntry&, const FilterEntry&) = default;
};

struct FilterOptions {
  net::Family family = net::Family::kIpv4;
  /// Aggregate adjacent/covered prefixes into ge/le ranges (bgpq4 -A).
  bool aggregate = false;
  /// Apply a range operator to every resolved prefix (bgpq4 -R / -m are
  /// length filters; this is the RPSL-side equivalent, e.g. ^+ or ^24-32).
  net::RangeOp range_op = net::RangeOp::none();
};

/// The resolved filter plus provenance counters.
struct GeneratedFilter {
  std::vector<FilterEntry> entries;  // sorted, deduplicated
  std::size_t member_ases = 0;       // flattened ASNs consulted
  std::size_t route_objects = 0;     // registrations in the chosen family
  std::vector<std::string> missing_sets;  // undefined as-sets hit during flattening
};

/// Resolve an ASN or as-set name to a prefix filter, like `bgpq4 AS-FOO`.
/// nullopt when the object is unknown (no as-set and no route objects).
std::optional<GeneratedFilter> generate(const irr::Index& index, std::string_view object,
                                        const FilterOptions& options = {});

/// Collapse exact entries into ge/le ranges where a covering entry admits
/// everything a covered entry would (bgpq4's aggregation).
std::vector<FilterEntry> aggregate(std::vector<FilterEntry> entries);

// --- rendering -------------------------------------------------------------

/// Cisco IOS: `ip prefix-list <name> permit 10.0.0.0/8 le 24` lines.
std::string render_cisco_prefix_list(const GeneratedFilter& filter, std::string_view name);

/// Juniper: `route-filter 10.0.0.0/8 upto /24;` policy terms.
std::string render_juniper_route_filter(const GeneratedFilter& filter,
                                        std::string_view policy_name);

/// BIRD 2: `prefix set` literal `[ 10.0.0.0/8{8,24}, ... ]`.
std::string render_bird_prefix_set(const GeneratedFilter& filter, std::string_view name);

/// Plain one-prefix-per-line text.
std::string render_plain(const GeneratedFilter& filter);

}  // namespace rpslyzer::filtergen
