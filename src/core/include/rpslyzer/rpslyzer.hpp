#pragma once
// RPSLyzer: the end-to-end pipeline (§3 + §5).
//
//   Rpslyzer lyzer = Rpslyzer::from_texts(irr_dumps, caida_serial1);
//   verify::Verifier verifier = lyzer.verifier();
//   auto hops = verifier.verify_route(route);
//
// Owns the parsed corpus (IR), the query index, relationship data, and
// accumulated diagnostics; hands out verifiers and JSON exports.

#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "rpslyzer/compile/snapshot.hpp"
#include "rpslyzer/ir/json_io.hpp"
#include "rpslyzer/irr/index.hpp"
#include "rpslyzer/irr/loader.hpp"
#include "rpslyzer/relations/relations.hpp"
#include "rpslyzer/verify/verifier.hpp"

namespace rpslyzer {

class Rpslyzer {
 public:
  /// Parse in-memory dumps (IRR name -> text, merged in the given map's
  /// iteration order, which must be priority order — or use the overload
  /// with an explicit order) plus CAIDA serial-1 relationship text.
  /// `options.threads` controls the sharded parallel parse (0 = hardware
  /// concurrency, 1 = serial); the result is identical either way.
  static Rpslyzer from_texts(const std::vector<std::pair<std::string, std::string>>& dumps,
                             const std::string& caida_serial1,
                             const irr::LoadOptions& options = {});

  /// Load "<irr>.db" files for the 13 Table-1 IRRs from `irr_directory`
  /// plus `relationships` (CAIDA serial-1). Missing files are tolerated.
  /// `options` carries the integrity-guard and parallelism knobs handed to
  /// irr::load_irrs.
  static Rpslyzer from_files(const std::filesystem::path& irr_directory,
                             const std::filesystem::path& relationships,
                             const irr::LoadOptions& options = {});

  const ir::Ir& ir() const noexcept { return *ir_; }
  const irr::Index& index() const noexcept { return *index_; }
  const relations::AsRelations& relations() const noexcept { return relations_; }
  const util::Diagnostics& diagnostics() const noexcept { return diagnostics_; }
  const std::vector<irr::IrrCounts>& irr_counts() const noexcept { return irr_counts_; }
  /// Per-source load outcome (ok | degraded | quarantined), priority order.
  const std::vector<irr::SourceOutcome>& source_outcomes() const noexcept {
    return source_outcomes_;
  }
  std::size_t raw_route_objects() const noexcept { return raw_route_objects_; }

  /// The compiled policy snapshot for this corpus, built on first use and
  /// memoized (thread-safe). Like verifier(), the result references this
  /// object's members: call it at the Rpslyzer's final address.
  std::shared_ptr<const compile::CompiledPolicySnapshot> snapshot() const;

  /// A verifier bound to this corpus, using the snapshot backend unless
  /// options.use_snapshot is off.
  verify::Verifier verifier(verify::VerifyOptions options = {}) const {
    if (options.use_snapshot) return verify::Verifier(snapshot(), options);
    return verify::Verifier(*index_, relations_, options);
  }

  /// Export the IR to JSON (§3's integration story).
  json::Value export_ir() const { return ir::to_json(*ir_); }

 private:
  Rpslyzer() = default;

  // Pointer members keep Index's reference into Ir stable across moves.
  std::unique_ptr<ir::Ir> ir_;
  std::unique_ptr<irr::Index> index_;
  relations::AsRelations relations_;
  util::Diagnostics diagnostics_;
  std::vector<irr::IrrCounts> irr_counts_;
  std::vector<irr::SourceOutcome> source_outcomes_;
  std::size_t raw_route_objects_ = 0;

  // Snapshot memo. The mutex lives behind a pointer so Rpslyzer stays
  // movable (from_texts/from_files return by value).
  mutable std::unique_ptr<std::mutex> snapshot_mu_ = std::make_unique<std::mutex>();
  mutable std::shared_ptr<const compile::CompiledPolicySnapshot> snapshot_;
};

}  // namespace rpslyzer
