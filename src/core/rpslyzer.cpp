#include "rpslyzer/rpslyzer.hpp"

#include <fstream>
#include <set>
#include <sstream>

namespace rpslyzer {

Rpslyzer Rpslyzer::from_texts(const std::vector<std::pair<std::string, std::string>>& dumps,
                              const std::string& caida_serial1) {
  Rpslyzer lyzer;
  lyzer.ir_ = std::make_unique<ir::Ir>();
  std::set<std::pair<net::Prefix, ir::Asn>> seen_routes;
  for (const auto& [name, text] : dumps) {
    irr::IrrCounts counts;
    counts.name = name;
    ir::Ir parsed = irr::parse_dump(text, name, lyzer.diagnostics_, &counts);
    lyzer.raw_route_objects_ += parsed.routes.size();
    lyzer.ir_->aut_nums.merge(parsed.aut_nums);
    lyzer.ir_->as_sets.merge(parsed.as_sets);
    lyzer.ir_->route_sets.merge(parsed.route_sets);
    lyzer.ir_->peering_sets.merge(parsed.peering_sets);
    lyzer.ir_->filter_sets.merge(parsed.filter_sets);
    for (auto& route : parsed.routes) {
      if (seen_routes.emplace(route.prefix, route.origin).second) {
        lyzer.ir_->routes.push_back(std::move(route));
      }
    }
    lyzer.irr_counts_.push_back(std::move(counts));
  }
  lyzer.relations_ = relations::AsRelations::parse(caida_serial1, lyzer.diagnostics_);
  lyzer.index_ = std::make_unique<irr::Index>(*lyzer.ir_);
  return lyzer;
}

Rpslyzer Rpslyzer::from_files(const std::filesystem::path& irr_directory,
                              const std::filesystem::path& relationships) {
  Rpslyzer lyzer;
  irr::LoadResult loaded = irr::load_irrs(irr::table1_sources(irr_directory));
  lyzer.ir_ = std::make_unique<ir::Ir>(std::move(loaded.ir));
  lyzer.diagnostics_ = std::move(loaded.diagnostics);
  lyzer.irr_counts_ = std::move(loaded.counts);
  lyzer.raw_route_objects_ = loaded.raw_route_objects;

  std::ifstream in(relationships, std::ios::binary);
  if (in) {
    std::ostringstream buffer;
    buffer << in.rdbuf();
    lyzer.relations_ =
        relations::AsRelations::parse(std::move(buffer).str(), lyzer.diagnostics_);
  } else {
    lyzer.diagnostics_.warning(util::DiagnosticKind::kOther,
                               "relationship file unavailable: " + relationships.string());
  }
  lyzer.index_ = std::make_unique<irr::Index>(*lyzer.ir_);
  return lyzer;
}

}  // namespace rpslyzer
