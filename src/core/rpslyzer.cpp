#include "rpslyzer/rpslyzer.hpp"

#include <fstream>
#include <set>
#include <sstream>

#include "rpslyzer/obs/trace.hpp"

namespace rpslyzer {

Rpslyzer Rpslyzer::from_texts(const std::vector<std::pair<std::string, std::string>>& dumps,
                              const std::string& caida_serial1,
                              const irr::LoadOptions& options) {
  Rpslyzer lyzer;
  lyzer.ir_ = std::make_unique<ir::Ir>();
  irr::RouteKeySet seen_routes;
  for (const auto& [name, text] : dumps) {
    irr::IrrCounts counts;
    counts.name = name;
    ir::Ir parsed = irr::parse_dump_parallel(text, name, lyzer.diagnostics_, &counts,
                                             options.threads, options.shard_target_bytes);
    lyzer.raw_route_objects_ += parsed.routes.size();
    irr::merge_into(*lyzer.ir_, std::move(parsed), &seen_routes);
    lyzer.irr_counts_.push_back(std::move(counts));
    lyzer.source_outcomes_.push_back({name, irr::SourceStatus::kOk, {}});
  }
  {
    obs::Span span("relations.parse");
    lyzer.relations_ = relations::AsRelations::parse(caida_serial1, lyzer.diagnostics_);
  }
  lyzer.index_ = std::make_unique<irr::Index>(*lyzer.ir_);
  return lyzer;
}

Rpslyzer Rpslyzer::from_files(const std::filesystem::path& irr_directory,
                              const std::filesystem::path& relationships,
                              const irr::LoadOptions& options) {
  Rpslyzer lyzer;
  irr::LoadResult loaded = irr::load_irrs(irr::table1_sources(irr_directory), options);
  lyzer.ir_ = std::make_unique<ir::Ir>(std::move(loaded.ir));
  lyzer.diagnostics_ = std::move(loaded.diagnostics);
  lyzer.irr_counts_ = std::move(loaded.counts);
  lyzer.source_outcomes_ = std::move(loaded.outcomes);
  lyzer.raw_route_objects_ = loaded.raw_route_objects;

  std::ifstream in(relationships, std::ios::binary);
  if (in) {
    obs::Span span("relations.parse");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    lyzer.relations_ =
        relations::AsRelations::parse(std::move(buffer).str(), lyzer.diagnostics_);
  } else {
    lyzer.diagnostics_.warning(util::DiagnosticKind::kOther,
                               "relationship file unavailable: " + relationships.string());
  }
  lyzer.index_ = std::make_unique<irr::Index>(*lyzer.ir_);
  return lyzer;
}

std::shared_ptr<const compile::CompiledPolicySnapshot> Rpslyzer::snapshot() const {
  std::lock_guard<std::mutex> lock(*snapshot_mu_);
  if (snapshot_ == nullptr) {
    // Non-owning aliases: this Rpslyzer owns index and relations, and the
    // memoized snapshot cannot outlive it.
    snapshot_ = compile::CompiledPolicySnapshot::build(
        std::shared_ptr<const irr::Index>(std::shared_ptr<void>(), index_.get()),
        std::shared_ptr<const relations::AsRelations>(std::shared_ptr<void>(),
                                                      &relations_));
  }
  return snapshot_;
}

}  // namespace rpslyzer
