#include "rpslyzer/stats/census.hpp"

#include <algorithm>

#include "rpslyzer/stats/bgpq4.hpp"
#include "rpslyzer/util/strings.hpp"

namespace rpslyzer::stats {

namespace {

using util::overloaded;

/// Collected references from one rule, classified by where they appear.
struct References {
  std::set<Asn> asns_peering;
  std::set<Asn> asns_filter;
  std::set<std::string, util::ILess> as_sets_peering;
  std::set<std::string, util::ILess> as_sets_filter;
  std::set<std::string, util::ILess> route_sets_filter;
  std::set<std::string, util::ILess> peering_sets;
  std::set<std::string, util::ILess> filter_sets;
};

void collect_as_expr(const ir::AsExpr& expr, References& refs) {
  std::visit(overloaded{
                 [&](const ir::AsExprAsn& a) { refs.asns_peering.insert(a.asn); },
                 [&](const ir::AsExprSet& s) { refs.as_sets_peering.insert(s.name); },
                 [&](const ir::AsExprAny&) {},
                 [&](const ir::AsExprAnd& n) {
                   collect_as_expr(*n.left, refs);
                   collect_as_expr(*n.right, refs);
                 },
                 [&](const ir::AsExprOr& n) {
                   collect_as_expr(*n.left, refs);
                   collect_as_expr(*n.right, refs);
                 },
                 [&](const ir::AsExprExcept& n) {
                   collect_as_expr(*n.left, refs);
                   collect_as_expr(*n.right, refs);
                 },
             },
             expr.node);
}

void collect_regex(const ir::AsPathRegexNode& node, References& refs) {
  std::visit(overloaded{
                 [&](const ir::ReEmpty&) {},
                 [&](const ir::ReBeginAnchor&) {},
                 [&](const ir::ReEndAnchor&) {},
                 [&](const ir::ReTokenNode& t) {
                   if (t.token.kind == ir::ReToken::Kind::kAsn) {
                     refs.asns_filter.insert(t.token.asn);
                   } else if (t.token.kind == ir::ReToken::Kind::kAsSet) {
                     refs.as_sets_filter.insert(t.token.as_set);
                   } else if (t.token.kind == ir::ReToken::Kind::kSet) {
                     for (const auto& item : t.token.items) {
                       if (item.kind == ir::ReSetItem::Kind::kAsn) {
                         refs.asns_filter.insert(item.asn);
                       } else if (item.kind == ir::ReSetItem::Kind::kAsSet) {
                         refs.as_sets_filter.insert(item.as_set);
                       }
                     }
                   }
                 },
                 [&](const ir::ReConcat& c) {
                   for (const auto& p : c.parts) collect_regex(*p, refs);
                 },
                 [&](const ir::ReAlt& a) {
                   for (const auto& o : a.options) collect_regex(*o, refs);
                 },
                 [&](const ir::ReRepeatNode& r) { collect_regex(*r.inner, refs); },
             },
             node.node);
}

void collect_filter(const ir::Filter& filter, References& refs) {
  std::visit(overloaded{
                 [&](const ir::FilterAny&) {},
                 [&](const ir::FilterPeerAs&) {},
                 [&](const ir::FilterFltrMartian&) {},
                 [&](const ir::FilterAsNum& f) { refs.asns_filter.insert(f.asn); },
                 [&](const ir::FilterAsSet& f) { refs.as_sets_filter.insert(f.name); },
                 [&](const ir::FilterRouteSet& f) { refs.route_sets_filter.insert(f.name); },
                 [&](const ir::FilterFilterSet& f) { refs.filter_sets.insert(f.name); },
                 [&](const ir::FilterPrefixes&) {},
                 [&](const ir::FilterAsPath& f) { collect_regex(*f.regex.root, refs); },
                 [&](const ir::FilterCommunity&) {},
                 [&](const ir::FilterAnd& f) {
                   collect_filter(*f.left, refs);
                   collect_filter(*f.right, refs);
                 },
                 [&](const ir::FilterOr& f) {
                   collect_filter(*f.left, refs);
                   collect_filter(*f.right, refs);
                 },
                 [&](const ir::FilterNot& f) { collect_filter(*f.inner, refs); },
                 [&](const ir::FilterUnknown&) {},
             },
             filter.node);
}

void collect_entry(const ir::Entry& entry, References& refs) {
  std::visit(overloaded{
                 [&](const ir::EntryTerm& term) {
                   for (const auto& factor : term.factors) {
                     for (const auto& pa : factor.peerings) {
                       std::visit(overloaded{
                                      [&](const ir::PeeringSpec& spec) {
                                        collect_as_expr(spec.as_expr, refs);
                                      },
                                      [&](const ir::PeeringSetRef& ref) {
                                        refs.peering_sets.insert(ref.name);
                                      },
                                  },
                                  pa.peering.node);
                     }
                     collect_filter(factor.filter, refs);
                   }
                 },
                 [&](const ir::EntryExcept& e) {
                   collect_entry(*e.left, refs);
                   collect_entry(*e.right, refs);
                 },
                 [&](const ir::EntryRefine& e) {
                   collect_entry(*e.left, refs);
                   collect_entry(*e.right, refs);
                 },
             },
             entry.node);
}

References collect_all_references(const ir::Ir& ir) {
  References refs;
  for (const auto& [asn, an] : ir.aut_nums) {
    for (const auto* rules : {&an.imports, &an.exports}) {
      for (const auto& rule : *rules) collect_entry(rule.entry, refs);
    }
  }
  return refs;
}

}  // namespace

// ---------------------------------------------------------------------------
// Figure 1
// ---------------------------------------------------------------------------

RulesPerAutNum RulesPerAutNum::compute(const ir::Ir& ir) {
  RulesPerAutNum out;
  out.aut_num_count = ir.aut_nums.size();
  for (const auto& [asn, an] : ir.aut_nums) {
    const std::size_t rules = an.imports.size() + an.exports.size();
    ++out.all[rules];
    std::size_t compatible = 0;
    for (const auto* list : {&an.imports, &an.exports}) {
      for (const auto& rule : *list) {
        // Qualified: the member histogram shares the free function's name.
        if (rpslyzer::stats::bgpq4_compatible(rule)) ++compatible;
      }
    }
    ++out.bgpq4_compatible[compatible];
    if (rules == 0) ++out.zero_rule_aut_nums;
    if (rules >= 10) ++out.ten_plus_rule_aut_nums;
    if (rules > 1000) ++out.thousand_plus_rule_aut_nums;
  }
  return out;
}

std::vector<std::pair<std::size_t, double>> RulesPerAutNum::ccdf(
    const std::map<std::size_t, std::size_t>& histogram) {
  std::size_t total = 0;
  for (const auto& [value, count] : histogram) total += count;
  std::vector<std::pair<std::size_t, double>> points;
  if (total == 0) return points;
  std::size_t at_least = total;
  for (const auto& [value, count] : histogram) {
    points.emplace_back(value, static_cast<double>(at_least) / static_cast<double>(total));
    at_least -= count;
  }
  return points;
}

// ---------------------------------------------------------------------------
// Table 2
// ---------------------------------------------------------------------------

ReferenceCensus ReferenceCensus::compute(const ir::Ir& ir) {
  ReferenceCensus out;
  out.aut_nums.defined = ir.aut_nums.size();
  out.as_sets.defined = ir.as_sets.size();
  out.route_sets.defined = ir.route_sets.size();
  out.peering_sets.defined = ir.peering_sets.size();
  out.filter_sets.defined = ir.filter_sets.size();

  References refs = collect_all_references(ir);

  out.aut_nums.referenced_in_peering = refs.asns_peering.size();
  out.aut_nums.referenced_in_filter = refs.asns_filter.size();
  std::set<Asn> asns_overall = refs.asns_peering;
  asns_overall.insert(refs.asns_filter.begin(), refs.asns_filter.end());
  out.aut_nums.referenced_overall = asns_overall.size();

  out.as_sets.referenced_in_peering = refs.as_sets_peering.size();
  out.as_sets.referenced_in_filter = refs.as_sets_filter.size();
  std::set<std::string, util::ILess> sets_overall = refs.as_sets_peering;
  sets_overall.insert(refs.as_sets_filter.begin(), refs.as_sets_filter.end());
  out.as_sets.referenced_overall = sets_overall.size();

  out.route_sets.referenced_in_filter = refs.route_sets_filter.size();
  out.route_sets.referenced_overall = refs.route_sets_filter.size();

  out.peering_sets.referenced_in_peering = refs.peering_sets.size();
  out.peering_sets.referenced_overall = refs.peering_sets.size();

  out.filter_sets.referenced_in_filter = refs.filter_sets.size();
  out.filter_sets.referenced_overall = refs.filter_sets.size();
  return out;
}

// ---------------------------------------------------------------------------
// Shapes
// ---------------------------------------------------------------------------

namespace {

void shape_of_entry(const ir::Entry& entry, ShapeCensus& out) {
  std::visit(
      overloaded{
          [&](const ir::EntryTerm& term) {
            for (const auto& factor : term.factors) {
              for (const auto& pa : factor.peerings) {
                ++out.peerings_total;
                const auto* spec = std::get_if<ir::PeeringSpec>(&pa.peering.node);
                if (spec != nullptr &&
                    (std::holds_alternative<ir::AsExprAsn>(spec->as_expr.node) ||
                     std::holds_alternative<ir::AsExprAny>(spec->as_expr.node))) {
                  ++out.peerings_single_asn_or_any;
                }
              }
              ++out.filters_total;
              std::visit(overloaded{
                             [&](const ir::FilterAsSet&) { ++out.filters_as_set; },
                             [&](const ir::FilterAsNum&) { ++out.filters_asn; },
                             [&](const ir::FilterRouteSet&) { ++out.filters_route_set; },
                             [&](const ir::FilterAny&) { ++out.filters_any; },
                             [&](const ir::FilterPrefixes&) { ++out.filters_prefix_set; },
                             [&](const ir::FilterAsPath&) { ++out.filters_as_path; },
                             [&](const ir::FilterAnd&) { ++out.filters_compound; },
                             [&](const ir::FilterOr&) { ++out.filters_compound; },
                             [&](const ir::FilterNot&) { ++out.filters_compound; },
                             [&](const auto&) { ++out.filters_other; },
                         },
                         factor.filter.node);
            }
          },
          [&](const ir::EntryExcept& e) {
            shape_of_entry(*e.left, out);
            shape_of_entry(*e.right, out);
          },
          [&](const ir::EntryRefine& e) {
            shape_of_entry(*e.left, out);
            shape_of_entry(*e.right, out);
          },
      },
      entry.node);
}

}  // namespace

ShapeCensus ShapeCensus::compute(const ir::Ir& ir) {
  ShapeCensus out;
  for (const auto& [asn, an] : ir.aut_nums) {
    const std::size_t rules = an.imports.size() + an.exports.size();
    if (rules == 0) continue;
    ++out.ases_with_rules;
    bool all_compatible = true;
    for (const auto* list : {&an.imports, &an.exports}) {
      for (const auto& rule : *list) {
        ++out.rules_total;
        if (bgpq4_compatible(rule)) {
          ++out.rules_bgpq4_compatible;
        } else {
          all_compatible = false;
        }
        shape_of_entry(rule.entry, out);
      }
    }
    if (all_compatible) ++out.ases_all_rules_bgpq4_compatible;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Route objects
// ---------------------------------------------------------------------------

RouteObjectStats RouteObjectStats::compute(const ir::Ir& ir) {
  RouteObjectStats out;
  struct PerPrefix {
    std::size_t objects = 0;
    std::set<Asn> origins;
    std::set<std::string, util::ILess> maintainers;
  };
  std::map<net::Prefix, PerPrefix> per_prefix;
  for (const auto& route : ir.routes) {
    ++out.route_objects;
    PerPrefix& entry = per_prefix[route.prefix];
    ++entry.objects;
    entry.origins.insert(route.origin);
    for (const ir::Symbol mnt : route.mnt_by) entry.maintainers.insert(ir::to_string(mnt));
  }
  out.unique_prefixes = per_prefix.size();
  for (const auto& [prefix, entry] : per_prefix) {
    if (entry.objects > 1) ++out.prefixes_with_multiple_objects;
    if (entry.origins.size() > 1) ++out.prefixes_with_multiple_origins;
    if (entry.maintainers.size() > 1) ++out.prefixes_with_multiple_maintainers;
  }
  return out;
}

// ---------------------------------------------------------------------------
// as-sets
// ---------------------------------------------------------------------------

AsSetStats AsSetStats::compute(const ir::Ir& ir, const irr::Index& index) {
  AsSetStats out;
  out.total = ir.as_sets.size();
  for (const auto& [name, set] : ir.as_sets) {
    if (set.members.empty() && set.mbrs_by_ref.empty()) ++out.empty;
    if (set.members.size() == 1 && set.members[0].kind == ir::AsSetMember::Kind::kAsn) {
      ++out.single_member;
    }
    bool has_any = false;
    bool recursive = false;
    for (const auto& member : set.members) {
      has_any = has_any || member.kind == ir::AsSetMember::Kind::kAny;
      recursive = recursive || member.kind == ir::AsSetMember::Kind::kSet;
    }
    if (has_any) ++out.with_any_keyword;
    if (recursive) ++out.recursive;
    const irr::FlattenedAsSet* flat = index.flattened(name);
    if (flat != nullptr) {
      if (flat->asns.size() > 10000) ++out.huge;
      if (flat->has_loop) ++out.in_loops;
      if (flat->depth >= 5) ++out.depth_5_plus;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

ErrorCensus ErrorCensus::compute(const util::Diagnostics& diagnostics, const ir::Ir& ir) {
  ErrorCensus out;
  out.syntax_errors = diagnostics.count(util::DiagnosticKind::kSyntaxError);
  for (const auto& d : diagnostics.all()) {
    if (d.kind != util::DiagnosticKind::kInvalidSetName) continue;
    if (d.object_key.starts_with("as-set:")) ++out.invalid_as_set_names;
    if (d.object_key.starts_with("route-set:")) ++out.invalid_route_set_names;
  }
  (void)ir;
  return out;
}

// ---------------------------------------------------------------------------
// Appendix E patterns
// ---------------------------------------------------------------------------

namespace {

/// The single-ASN remote of a simple one-peering term, or 0.
Asn simple_remote(const ir::PolicyFactor& factor) {
  if (factor.peerings.size() != 1) return 0;
  const auto* spec = std::get_if<ir::PeeringSpec>(&factor.peerings[0].peering.node);
  if (spec == nullptr) return 0;
  const auto* asn = std::get_if<ir::AsExprAsn>(&spec->as_expr.node);
  return asn == nullptr ? 0 : asn->asn;
}

}  // namespace

MisusePatterns MisusePatterns::compute(const ir::Ir& ir) {
  MisusePatterns out;
  for (const auto& [asn, an] : ir.aut_nums) {
    for (const auto& rule : an.imports) {
      const auto* term = std::get_if<ir::EntryTerm>(&rule.entry.node);
      if (term == nullptr) continue;
      for (const auto& factor : term->factors) {
        const Asn remote = simple_remote(factor);
        if (remote == 0) continue;
        const auto* filter_asn = std::get_if<ir::FilterAsNum>(&factor.filter.node);
        const bool peeras = std::holds_alternative<ir::FilterPeerAs>(factor.filter.node);
        if (peeras || (filter_asn != nullptr && filter_asn->asn == remote)) {
          out.import_customer.insert(asn);
        }
      }
    }
    for (const auto& rule : an.exports) {
      const auto* term = std::get_if<ir::EntryTerm>(&rule.entry.node);
      if (term == nullptr) continue;
      for (const auto& factor : term->factors) {
        if (simple_remote(factor) == 0) continue;
        const auto* filter_asn = std::get_if<ir::FilterAsNum>(&factor.filter.node);
        if (filter_asn != nullptr && filter_asn->asn == asn) out.export_self.insert(asn);
      }
    }
  }
  return out;
}

}  // namespace rpslyzer::stats
