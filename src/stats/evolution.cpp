#include "rpslyzer/stats/evolution.hpp"

#include <set>

namespace rpslyzer::stats {

namespace {

/// Generic map diff into added/removed/changed key lists.
template <typename Map, typename Key>
void diff_maps(const Map& before, const Map& after, std::vector<Key>& added,
               std::vector<Key>& removed, std::vector<Key>& changed) {
  for (const auto& [key, value] : after) {
    auto it = before.find(key);
    if (it == before.end()) {
      added.push_back(key);
    } else if (!(it->second == value)) {
      changed.push_back(key);
    }
  }
  for (const auto& [key, value] : before) {
    if (!after.contains(key)) removed.push_back(key);
  }
}

std::size_t rule_count(const ir::Ir& ir) {
  std::size_t n = 0;
  for (const auto& [asn, an] : ir.aut_nums) n += an.imports.size() + an.exports.size();
  return n;
}

}  // namespace

IrDiff IrDiff::compute(const ir::Ir& before, const ir::Ir& after) {
  IrDiff diff;

  // aut-nums: distinguish rule churn from any other attribute change.
  for (const auto& [asn, an] : after.aut_nums) {
    auto it = before.aut_nums.find(asn);
    if (it == before.aut_nums.end()) {
      diff.aut_nums_added.push_back(asn);
    } else if (it->second.imports != an.imports || it->second.exports != an.exports) {
      diff.aut_nums_rules_changed.push_back(asn);
    }
  }
  for (const auto& [asn, an] : before.aut_nums) {
    if (!after.aut_nums.contains(asn)) diff.aut_nums_removed.push_back(asn);
  }
  diff.rules_before = rule_count(before);
  diff.rules_after = rule_count(after);

  diff_maps(before.as_sets, after.as_sets, diff.as_sets_added, diff.as_sets_removed,
            diff.as_sets_changed);
  diff_maps(before.route_sets, after.route_sets, diff.route_sets_added,
            diff.route_sets_removed, diff.route_sets_changed);

  std::set<std::pair<net::Prefix, ir::Asn>> before_routes;
  for (const auto& route : before.routes) before_routes.emplace(route.prefix, route.origin);
  std::set<std::pair<net::Prefix, ir::Asn>> after_routes;
  for (const auto& route : after.routes) after_routes.emplace(route.prefix, route.origin);
  for (const auto& key : after_routes) {
    if (!before_routes.contains(key)) ++diff.routes_added;
  }
  for (const auto& key : before_routes) {
    if (!after_routes.contains(key)) ++diff.routes_removed;
  }
  return diff;
}

std::string IrDiff::summary() const {
  auto triple = [](std::size_t added, std::size_t removed, std::size_t changed) {
    return "+" + std::to_string(added) + " -" + std::to_string(removed) + " ~" +
           std::to_string(changed);
  };
  std::string out;
  out += "aut-nums: " + triple(aut_nums_added.size(), aut_nums_removed.size(),
                               aut_nums_rules_changed.size());
  out += "; rules: " + std::to_string(rules_before) + " -> " + std::to_string(rules_after);
  out += "; as-sets: " +
         triple(as_sets_added.size(), as_sets_removed.size(), as_sets_changed.size());
  out += "; route-sets: " + triple(route_sets_added.size(), route_sets_removed.size(),
                                   route_sets_changed.size());
  out += "; routes: +" + std::to_string(routes_added) + " -" + std::to_string(routes_removed);
  return out;
}

}  // namespace rpslyzer::stats
