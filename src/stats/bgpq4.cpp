#include "rpslyzer/stats/bgpq4.hpp"

#include "rpslyzer/util/strings.hpp"

namespace rpslyzer::stats {

bool bgpq4_compatible(const ir::Filter& filter) {
  return std::visit(
      util::overloaded{
          [](const ir::FilterAny&) { return true; },
          [](const ir::FilterPeerAs&) { return true; },
          [](const ir::FilterFltrMartian&) { return false; },
          [](const ir::FilterAsNum&) { return true; },
          [](const ir::FilterAsSet&) { return true; },
          [](const ir::FilterRouteSet&) { return true; },
          [](const ir::FilterFilterSet&) { return false; },
          [](const ir::FilterPrefixes&) { return true; },
          [](const ir::FilterAsPath&) { return false; },
          [](const ir::FilterCommunity&) { return false; },
          [](const ir::FilterAnd&) { return false; },
          [](const ir::FilterOr&) { return false; },
          [](const ir::FilterNot&) { return false; },
          [](const ir::FilterUnknown&) { return false; },
      },
      filter.node);
}

bool bgpq4_compatible(const ir::Rule& rule) {
  const auto* term = std::get_if<ir::EntryTerm>(&rule.entry.node);
  if (term == nullptr) return false;  // Structured Policies are unsupported
  for (const auto& factor : term->factors) {
    if (!bgpq4_compatible(factor.filter)) return false;
  }
  return true;
}

}  // namespace rpslyzer::stats
