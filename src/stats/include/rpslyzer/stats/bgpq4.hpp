#pragma once
// BGPq4 compatibility classification (§4): "BGPq4 does not support filters
// comprising filter-set, AS-path regex, BGP communities, Composite Policy
// Filters (with AND, OR, or NOT), or Structured Policies (with refine or
// except)."

#include "rpslyzer/ir/policy.hpp"

namespace rpslyzer::stats {

/// Can BGPq4 resolve this filter? (single-term: ANY, ASN, as-set,
/// route-set, prefix set, PeerAS.)
bool bgpq4_compatible(const ir::Filter& filter);

/// Can BGPq4 handle this whole rule? (simple policy + compatible filter.)
bool bgpq4_compatible(const ir::Rule& rule);

}  // namespace rpslyzer::stats
