#pragma once
// §4 characterization analyses ("RPSL Use in the Wild").
//
// Each struct computes one of the paper's reported censuses: rules per
// aut-num (Figure 1), defined-vs-referenced objects (Table 2), peering and
// filter shapes, route-object multiplicity, as-set opacity, the RPSL error
// census, and the Appendix E misuse-pattern extraction.

#include <map>
#include <set>
#include <vector>

#include "rpslyzer/irr/index.hpp"
#include "rpslyzer/util/diagnostics.hpp"

namespace rpslyzer::stats {

using ir::Asn;

// ---------------------------------------------------------------------------
// Figure 1: CCDF of rules per aut-num.
// ---------------------------------------------------------------------------

struct RulesPerAutNum {
  /// rule count -> number of aut-nums with exactly that many rules.
  std::map<std::size_t, std::size_t> all;
  /// Same, counting only BGPq4-compatible rules per aut-num.
  std::map<std::size_t, std::size_t> bgpq4_compatible;

  std::size_t aut_num_count = 0;
  std::size_t zero_rule_aut_nums = 0;        // paper: 35.2%
  std::size_t ten_plus_rule_aut_nums = 0;    // paper: 10.9%
  std::size_t thousand_plus_rule_aut_nums = 0;  // paper: 0.13% (101)

  static RulesPerAutNum compute(const ir::Ir& ir);

  /// CCDF points (x, P[rules >= x]) for a histogram.
  static std::vector<std::pair<std::size_t, double>> ccdf(
      const std::map<std::size_t, std::size_t>& histogram);
};

// ---------------------------------------------------------------------------
// Table 2: objects defined and referenced in rules.
// ---------------------------------------------------------------------------

struct ReferenceCensus {
  struct PerClass {
    std::size_t defined = 0;
    std::size_t referenced_overall = 0;
    std::size_t referenced_in_peering = 0;
    std::size_t referenced_in_filter = 0;
  };
  PerClass aut_nums;      // referenced = distinct ASNs appearing in rules
  PerClass as_sets;
  PerClass route_sets;
  PerClass peering_sets;
  PerClass filter_sets;

  static ReferenceCensus compute(const ir::Ir& ir);
};

// ---------------------------------------------------------------------------
// §4 prose: peering and filter shapes.
// ---------------------------------------------------------------------------

struct ShapeCensus {
  // Peerings.
  std::size_t peerings_total = 0;
  std::size_t peerings_single_asn_or_any = 0;  // paper: 98.4%
  // Filters, by top-level shape.
  std::size_t filters_total = 0;
  std::size_t filters_as_set = 0;    // paper: 43.4%
  std::size_t filters_asn = 0;       // paper: 24.1%
  std::size_t filters_route_set = 0;
  std::size_t filters_any = 0;
  std::size_t filters_prefix_set = 0;
  std::size_t filters_as_path = 0;
  std::size_t filters_compound = 0;  // AND/OR/NOT at the top
  std::size_t filters_other = 0;
  // Rules and ASes.
  std::size_t rules_total = 0;
  std::size_t rules_bgpq4_compatible = 0;
  std::size_t ases_with_rules = 0;
  std::size_t ases_all_rules_bgpq4_compatible = 0;  // paper: 94.5% of ASes with rules

  static ShapeCensus compute(const ir::Ir& ir);
};

// ---------------------------------------------------------------------------
// §4 prose: route objects require management.
// ---------------------------------------------------------------------------

struct RouteObjectStats {
  std::size_t route_objects = 0;          // unique (prefix, origin) pairs
  std::size_t unique_prefixes = 0;
  std::size_t prefixes_with_multiple_objects = 0;   // paper: 24.7%
  std::size_t prefixes_with_multiple_origins = 0;   // paper: 58.1% of the above
  std::size_t prefixes_with_multiple_maintainers = 0;  // paper: 67.3%

  static RouteObjectStats compute(const ir::Ir& ir);
};

// ---------------------------------------------------------------------------
// §4 prose: opaqueness of as-sets.
// ---------------------------------------------------------------------------

struct AsSetStats {
  std::size_t total = 0;
  std::size_t empty = 0;             // paper: 14.5%
  std::size_t single_member = 0;     // paper: 32.7% (one member AS)
  std::size_t with_any_keyword = 0;  // paper: 3
  std::size_t huge = 0;              // >10,000 flattened members; paper: 772
  std::size_t recursive = 0;         // contain other as-sets; paper: 13,602
  std::size_t in_loops = 0;          // paper: 3050 (22.4% of recursive)
  std::size_t depth_5_plus = 0;      // paper: 3129 (23.0% of recursive)

  static AsSetStats compute(const ir::Ir& ir, const irr::Index& index);
};

// ---------------------------------------------------------------------------
// §4 prose: RPSL errors.
// ---------------------------------------------------------------------------

struct ErrorCensus {
  std::size_t syntax_errors = 0;        // paper: 663
  std::size_t invalid_as_set_names = 0;    // paper: 12
  std::size_t invalid_route_set_names = 0;  // paper: 17

  static ErrorCensus compute(const util::Diagnostics& diagnostics, const ir::Ir& ir);
};

// ---------------------------------------------------------------------------
// Appendix E: misuse-pattern extraction (the operator-survey population).
// ---------------------------------------------------------------------------

struct MisusePatterns {
  /// ASes with an "import: from X accept X" rule (import-customer shape).
  std::set<Asn> import_customer;
  /// ASes with an "export: to <peer> announce <self>" rule (export-self).
  std::set<Asn> export_self;

  static MisusePatterns compute(const ir::Ir& ir);
};

}  // namespace rpslyzer::stats
