#pragma once
// Snapshot-to-snapshot evolution tracking — §7 future work ("tracking the
// evolution of RPSL policy usage over time"). IRRs expose no history, so
// studies scrape periodic dumps ([16, 20] in the paper); this diff engine
// turns two parsed snapshots into the churn series such a study needs.

#include <string>
#include <vector>

#include "rpslyzer/ir/objects.hpp"

namespace rpslyzer::stats {

/// Structural difference between two parsed corpora ("before" -> "after").
struct IrDiff {
  // aut-nums.
  std::vector<ir::Asn> aut_nums_added;
  std::vector<ir::Asn> aut_nums_removed;
  /// aut-num present in both with a different rule set.
  std::vector<ir::Asn> aut_nums_rules_changed;
  std::size_t rules_before = 0;
  std::size_t rules_after = 0;

  // Sets (names).
  std::vector<std::string> as_sets_added, as_sets_removed, as_sets_changed;
  std::vector<std::string> route_sets_added, route_sets_removed, route_sets_changed;

  // route/route6 objects, keyed by (prefix, origin).
  std::size_t routes_added = 0;
  std::size_t routes_removed = 0;

  bool empty() const noexcept {
    return aut_nums_added.empty() && aut_nums_removed.empty() &&
           aut_nums_rules_changed.empty() && as_sets_added.empty() &&
           as_sets_removed.empty() && as_sets_changed.empty() && route_sets_added.empty() &&
           route_sets_removed.empty() && route_sets_changed.empty() && routes_added == 0 &&
           routes_removed == 0;
  }

  static IrDiff compute(const ir::Ir& before, const ir::Ir& after);

  /// Human-readable churn summary ("aut-nums: +3 -1 ~2; rules: 120 -> 141; ...").
  std::string summary() const;
};

}  // namespace rpslyzer::stats
