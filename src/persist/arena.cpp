#include "rpslyzer/persist/arena.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <cstdio>
#include <cstring>
#include <system_error>

#include "rpslyzer/util/failpoint.hpp"

namespace rpslyzer::persist {

namespace {

namespace fp = util::failpoint;

struct FixedHeader {
  std::uint64_t magic;
  std::uint32_t format_version;
  std::uint32_t header_size;
  std::uint32_t section_count;
  std::uint32_t flags;
  std::uint64_t build_id;
  std::uint64_t file_size;
  std::uint64_t checksum;
};
static_assert(sizeof(FixedHeader) == kFixedHeaderSize);

struct SectionEntry {
  std::uint32_t id;
  std::uint32_t pad;
  std::uint64_t offset;
  std::uint64_t size;
};
static_assert(sizeof(SectionEntry) == 24);

std::size_t align_up(std::size_t n, std::size_t a) { return (n + a - 1) & ~(a - 1); }

/// Close-on-scope-exit fd.
struct Fd {
  int fd = -1;
  ~Fd() {
    if (fd >= 0) ::close(fd);
  }
};

std::string errno_message(const char* what, const std::filesystem::path& path) {
  return std::string(what) + " " + path.string() + ": " + std::strerror(errno);
}

}  // namespace

const char* section_name(SectionId id) noexcept {
  switch (id) {
    case SectionId::kSymbols: return "symbols";
    case SectionId::kIr: return "ir";
    case SectionId::kRelations: return "relations";
    case SectionId::kAsSetPool: return "as-set-pool";
    case SectionId::kAsSets: return "as-sets";
    case SectionId::kOriginPool: return "origin-pool";
    case SectionId::kOrigins: return "origins";
    case SectionId::kIntervalPool: return "interval-pool";
    case SectionId::kRouteSets: return "route-sets";
    case SectionId::kConePool: return "cone-pool";
    case SectionId::kAutNums: return "aut-nums";
    case SectionId::kNfa: return "nfa";
  }
  return "unknown";
}

void ArenaWriter::add_section(SectionId id, std::vector<std::byte> payload) {
  for (const Section& s : sections_) {
    if (s.id == id) throw SnapshotError("duplicate snapshot section id");
  }
  sections_.push_back({id, std::move(payload)});
}

std::vector<std::byte> ArenaWriter::build_image(std::uint64_t build_id) const {
  // Assemble the full image in memory: header + section table + payloads.
  const std::size_t table_bytes = sections_.size() * sizeof(SectionEntry);
  std::size_t cursor = align_up(kFixedHeaderSize + table_bytes, kSectionAlignment);
  std::vector<SectionEntry> table;
  table.reserve(sections_.size());
  for (const Section& s : sections_) {
    table.push_back({static_cast<std::uint32_t>(s.id), 0, cursor, s.payload.size()});
    cursor = align_up(cursor + s.payload.size(), kSectionAlignment);
  }
  const std::uint64_t file_size = cursor;

  std::vector<std::byte> image(file_size, std::byte{0});
  FixedHeader header{};
  header.magic = kMagic;
  header.format_version = kFormatVersion;
  header.header_size = kFixedHeaderSize;
  header.section_count = static_cast<std::uint32_t>(sections_.size());
  header.flags = 0;
  header.build_id = build_id;
  header.file_size = file_size;
  std::memcpy(image.data() + kFixedHeaderSize, table.data(), table_bytes);
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    std::memcpy(image.data() + table[i].offset, sections_[i].payload.data(),
                sections_[i].payload.size());
  }
  header.checksum = digest64(
      std::span<const std::byte>(image).subspan(kFixedHeaderSize, file_size - kFixedHeaderSize));
  static_assert(offsetof(FixedHeader, checksum) == kChecksumOffset);
  std::memcpy(image.data(), &header, sizeof(header));
  return image;
}

std::uint64_t ArenaWriter::write(const std::filesystem::path& path,
                                 std::uint64_t build_id) const {
  const std::vector<std::byte> image = build_image(build_id);
  const std::uint64_t file_size = image.size();

  // An injected truncation publishes a deliberately short file (for the
  // corruption-recovery tests); an injected error aborts with nothing left.
  std::size_t publish_bytes = image.size();
  if (auto hit = fp::hit("persist.write"); hit.is_error()) {
    throw SnapshotError("persist.write failpoint: " + hit.message);
  } else if (hit.is_truncate()) {
    publish_bytes = std::min<std::size_t>(publish_bytes, hit.truncate_at);
  }

  const std::filesystem::path tmp =
      path.string() + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  Fd fd{::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644)};
  if (fd.fd < 0) throw SnapshotError(errno_message("cannot create", tmp));
  std::size_t written = 0;
  while (written < publish_bytes) {
    const ssize_t n =
        ::write(fd.fd, reinterpret_cast<const char*>(image.data()) + written,
                publish_bytes - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string why = errno_message("cannot write", tmp);
      ::unlink(tmp.c_str());
      throw SnapshotError(why);
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd.fd) != 0 || ::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string why = errno_message("cannot publish", path);
    ::unlink(tmp.c_str());
    throw SnapshotError(why);
  }
  return file_size;
}

ArenaView ArenaView::open(const std::filesystem::path& path) {
  if (auto hit = fp::hit("persist.open"); hit.is_error()) {
    throw SnapshotError("persist.open failpoint: " + hit.message);
  }
  Fd fd{::open(path.c_str(), O_RDONLY | O_CLOEXEC)};
  if (fd.fd < 0) throw SnapshotError(errno_message("cannot open snapshot", path));
  struct stat st{};
  if (::fstat(fd.fd, &st) != 0) throw SnapshotError(errno_message("cannot stat snapshot", path));
  const auto actual_size = static_cast<std::uint64_t>(st.st_size);
  if (actual_size < kFixedHeaderSize) {
    throw SnapshotError("snapshot file too small for its header: " + path.string());
  }
  void* mapping = ::mmap(nullptr, actual_size, PROT_READ, MAP_PRIVATE, fd.fd, 0);
  if (mapping == MAP_FAILED) throw SnapshotError(errno_message("cannot mmap snapshot", path));

  ArenaView view;
  view.base_ = static_cast<const std::byte*>(mapping);
  view.size_ = actual_size;

  FixedHeader header{};
  std::memcpy(&header, view.base_, sizeof(header));
  if (header.magic != kMagic) {
    throw SnapshotError("not a snapshot file (bad magic): " + path.string());
  }
  if (header.format_version != kFormatVersion) {
    throw SnapshotError("snapshot format version mismatch (file v" +
                        std::to_string(header.format_version) + ", loader v" +
                        std::to_string(kFormatVersion) + "): " + path.string());
  }
  if (header.header_size != kFixedHeaderSize || header.file_size != actual_size) {
    throw SnapshotError("snapshot header inconsistent with file size (declared " +
                        std::to_string(header.file_size) + " bytes, found " +
                        std::to_string(actual_size) + "): " + path.string());
  }
  std::uint64_t checksum = digest64(std::span<const std::byte>(view.base_, view.size_)
                                       .subspan(kFixedHeaderSize));
  if (auto hit = fp::hit("persist.verify"); hit.is_error()) checksum = ~checksum;
  if (checksum != header.checksum) {
    throw SnapshotError("snapshot checksum mismatch: " + path.string());
  }

  const std::uint64_t table_end =
      kFixedHeaderSize + std::uint64_t{header.section_count} * sizeof(SectionEntry);
  if (table_end > actual_size) {
    throw SnapshotError("snapshot section table out of bounds: " + path.string());
  }
  view.table_.reserve(header.section_count);
  for (std::uint32_t i = 0; i < header.section_count; ++i) {
    SectionEntry entry{};
    std::memcpy(&entry, view.base_ + kFixedHeaderSize + i * sizeof(SectionEntry),
                sizeof(entry));
    if (entry.offset > actual_size || entry.size > actual_size - entry.offset ||
        entry.offset % kSectionAlignment != 0) {
      throw SnapshotError("snapshot section out of bounds: " + path.string());
    }
    view.table_.push_back({static_cast<SectionId>(entry.id), entry.offset, entry.size});
  }
  view.build_id_ = header.build_id;
  return view;
}

ArenaView::ArenaView(ArenaView&& other) noexcept
    : base_(other.base_),
      size_(other.size_),
      build_id_(other.build_id_),
      table_(std::move(other.table_)) {
  other.base_ = nullptr;
  other.size_ = 0;
}

ArenaView& ArenaView::operator=(ArenaView&& other) noexcept {
  if (this != &other) {
    if (base_ != nullptr) ::munmap(const_cast<std::byte*>(base_), size_);
    base_ = other.base_;
    size_ = other.size_;
    build_id_ = other.build_id_;
    table_ = std::move(other.table_);
    other.base_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

ArenaView::~ArenaView() {
  if (base_ != nullptr) ::munmap(const_cast<std::byte*>(base_), size_);
}

std::span<const std::byte> ArenaView::section(SectionId id) const {
  for (const SectionRef& ref : table_) {
    if (ref.id == id) return {base_ + ref.offset, ref.size};
  }
  throw SnapshotError(std::string("snapshot is missing required section ") +
                      section_name(id) + " (id " +
                      std::to_string(static_cast<std::uint32_t>(id)) + ")");
}

bool ArenaView::has_section(SectionId id) const noexcept {
  for (const SectionRef& ref : table_) {
    if (ref.id == id) return true;
  }
  return false;
}

std::uint64_t ArenaView::section_offset(SectionId id) const noexcept {
  for (const SectionRef& ref : table_) {
    if (ref.id == id) return ref.offset;
  }
  return 0;
}

}  // namespace rpslyzer::persist
