#pragma once
// The relocatable arena file underlying snapshot persistence.
//
// A snapshot file is one contiguous buffer laid out as
//
//   +-------------------------------+  offset 0
//   | fixed header (48 bytes)       |  magic, version, build-id, checksum
//   +-------------------------------+  offset 48
//   | section table                 |  {id, offset, size} per section
//   +-------------------------------+
//   | section payloads              |  each 16-byte aligned
//   +-------------------------------+  offset file_size
//
// Every cross-reference inside a payload is an *offset* (into the file or
// into a sibling pool section), never a pointer, so the file is position
// independent: loading is a single read-only mmap plus header/checksum
// validation, after which flat pool sections (ASN arrays, length-interval
// arrays) are referenced in place via spans — zero copy, zero fixup writes.
//
// The digest64 checksum covers every byte after the fixed header (section
// table included), so any flipped byte or mid-section truncation is caught
// before a single payload byte is interpreted. Numbers are little-endian
// host order; the format is not intended as a cross-endian interchange
// format (a snapshot is a cache artifact regenerated from the dumps).
//
// Failure injection: ArenaWriter honors the `persist.write` failpoint
// (error → throw with no file left behind; truncate(n) → publish only the
// first n bytes, producing the corrupt artifact the recovery tests need);
// ArenaView::open honors `persist.open` (error → throw before mapping) and
// `persist.verify` (error → forced checksum mismatch).

#include <bit>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace rpslyzer::persist {

/// Current arena format version. Bump on any layout or codec change; a
/// loader refuses files with a different version (the generation cache then
/// treats them as misses and rebuilds).
inline constexpr std::uint32_t kFormatVersion = 1;

/// File magic: "RPSZSNP1".
inline constexpr std::uint64_t kMagic = 0x31504E535A535052ull;

inline constexpr std::size_t kFixedHeaderSize = 48;
inline constexpr std::size_t kSectionAlignment = 16;

/// Section identifiers. Order in the file follows write order; lookup is by
/// id, so sections may be added without renumbering (with a version bump).
enum class SectionId : std::uint32_t {
  kSymbols = 1,       // interned set names: offsets + blob
  kIr = 2,            // binary-encoded ir::Ir
  kRelations = 3,     // binary AS-relationship links + tier-1 clique
  kAsSetPool = 4,     // flattened as-set member ASNs (u32 array)
  kAsSets = 5,        // per-symbol as-set entries referencing the pool
  kOriginPool = 6,    // origin ASNs per route base prefix (u32 array)
  kOrigins = 7,       // origin-trie entries referencing the pool
  kIntervalPool = 8,  // route-set length intervals ({u8 lo, u8 hi} array)
  kRouteSets = 9,     // per-symbol route-set entries referencing the pool
  kConePool = 10,     // customer-cone ASNs (u32 array)
  kAutNums = 11,      // per-AS lowered rules referencing the cone pool
  kNfa = 12,          // AS-path NFA tables in deterministic build order
};

/// Human-readable section name for error messages and replication status
/// pages ("symbols", "ir", ... , "nfa"); "unknown" for out-of-range ids.
const char* section_name(SectionId id) noexcept;

/// Byte offset within the image where the checksum field of the fixed
/// header lives. The checksum covers everything *after* the fixed header,
/// so it is a content identity independent of build_id — the replication
/// layer reads it straight out of a serialized image to deduplicate
/// publishes across origin restarts.
inline constexpr std::size_t kChecksumOffset = 40;

/// Any malformed, truncated, corrupted, or version-mismatched snapshot file
/// surfaces as this exception; callers (server reload, generation cache)
/// treat it as "no snapshot" and fall back to a full rebuild.
class SnapshotError : public std::runtime_error {
 public:
  explicit SnapshotError(const std::string& what) : std::runtime_error(what) {}
};

/// Content digest for the whole-file checksum and the generation-cache key
/// derivation: xor-rotate-multiply mixing over 64-bit words in four
/// independent lanes (so the multiply chains pipeline instead of
/// serializing), with the tail folded in under a length marker and a final
/// avalanche. The rotation is load-bearing: a plain xor-multiply chain only
/// diffuses upward, so a difference in the high bits of a late word is
/// marched past bit 63 by subsequent multiplies and erased mod 2^64; the
/// rotate feeds high bits back down every step. Digesting is on the
/// mmap-load fast path — a byte-at-a-time loop would cost more than the
/// decode it protects.
inline std::uint64_t digest64(std::span<const std::byte> bytes,
                              std::uint64_t seed = 0xcbf29ce484222325ull) noexcept {
  constexpr std::uint64_t kPrime = 0x100000001b3ull;
  std::uint64_t lane[4] = {seed, seed ^ 0x9e3779b97f4a7c15ull, seed + 0x6a09e667f3bcc909ull,
                           ~seed};
  std::size_t i = 0;
  for (; i + 32 <= bytes.size(); i += 32) {
    std::uint64_t v[4];
    std::memcpy(v, bytes.data() + i, 32);
    for (int l = 0; l < 4; ++l) {
      lane[l] = std::rotl(lane[l] ^ v[l], 27) * kPrime;
    }
  }
  std::uint64_t h = lane[0];
  for (int l = 1; l < 4; ++l) {
    h = std::rotl(h ^ lane[l], 31) * kPrime;
  }
  for (; i + 8 <= bytes.size(); i += 8) {
    std::uint64_t v;
    std::memcpy(&v, bytes.data() + i, 8);
    h = std::rotl(h ^ v, 27) * kPrime;
  }
  std::uint64_t tail = 0x80;  // marker keeps "abc" and "abc\0" distinct
  for (; i < bytes.size(); ++i) {
    tail = (tail << 8) | static_cast<std::uint64_t>(bytes[i]);
  }
  h = std::rotl(h ^ tail, 27) * kPrime;
  h ^= h >> 33;  // fmix-style finalizer: every input bit reaches every output bit
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}

inline std::uint64_t digest64(std::string_view text,
                              std::uint64_t seed = 0xcbf29ce484222325ull) noexcept {
  return digest64(std::as_bytes(std::span<const char>(text.data(), text.size())), seed);
}

/// Little-endian append-only byte buffer for section payloads.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { raw(&v, 1); }
  void u16(std::uint16_t v) { raw(&v, 2); }
  void u32(std::uint32_t v) { raw(&v, 4); }
  void u64(std::uint64_t v) { raw(&v, 8); }
  void i32(std::int32_t v) { raw(&v, 4); }

  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }

  void bytes(std::span<const std::byte> b) { raw(b.data(), b.size()); }

  std::size_t size() const noexcept { return buf_.size(); }
  std::span<const std::byte> view() const noexcept { return buf_; }
  std::vector<std::byte> take() && noexcept { return std::move(buf_); }

 private:
  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::byte*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }

  std::vector<std::byte> buf_;
};

/// Bounds-checked little-endian reader over a mapped section. Every
/// overrun throws SnapshotError, so a truncated or corrupted payload can
/// never walk past the mapping.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) : data_(data) {}

  std::uint8_t u8() { return read<std::uint8_t>(); }
  std::uint16_t u16() { return read<std::uint16_t>(); }
  std::uint32_t u32() { return read<std::uint32_t>(); }
  std::uint64_t u64() { return read<std::uint64_t>(); }
  std::int32_t i32() { return read<std::int32_t>(); }

  std::string str() {
    const std::uint32_t n = u32();
    return chars(n);
  }

  /// `n` raw bytes as a string (no length prefix; callers that store
  /// external offset tables use this).
  std::string chars(std::size_t n) {
    need(n);
    std::string out(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return out;
  }

  bool at_end() const noexcept { return pos_ == data_.size(); }
  std::size_t remaining() const noexcept { return data_.size() - pos_; }

 private:
  template <typename T>
  T read() {
    need(sizeof(T));
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  void need(std::size_t n) const {
    if (n > data_.size() - pos_) {
      throw SnapshotError("snapshot section payload truncated");
    }
  }

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

/// Assembles sections and publishes the arena file atomically: the image is
/// built in memory, checksummed, written to `<path>.tmp.<pid>`, and
/// renamed into place, so readers only ever see complete files (absent a
/// deliberately injected `persist.write` truncation).
class ArenaWriter {
 public:
  /// Append a section. Ids must be unique per file.
  void add_section(SectionId id, std::vector<std::byte> payload);
  void add_section(SectionId id, ByteWriter&& payload) {
    add_section(id, std::move(payload).take());
  }

  /// Assemble, checksum, and atomically publish. Returns the final file
  /// size in bytes. Throws SnapshotError on I/O failure or an injected
  /// `persist.write` error (no file is left at `path` in either case).
  std::uint64_t write(const std::filesystem::path& path, std::uint64_t build_id) const;

  /// Assemble and checksum the complete in-memory image without touching
  /// the filesystem — the exact bytes write() would publish. The
  /// replication publisher serves generations straight from this buffer.
  std::vector<std::byte> build_image(std::uint64_t build_id) const;

 private:
  struct Section {
    SectionId id;
    std::vector<std::byte> payload;
  };
  std::vector<Section> sections_;
};

/// A validated read-only mapping of an arena file. Move-only; the mapping
/// lives until destruction, and the snapshot loader ties spans into it to
/// the restored snapshot via shared ownership.
class ArenaView {
 public:
  /// mmap `path` and validate magic, format version, declared file size,
  /// section table bounds, and the whole-file checksum. Throws
  /// SnapshotError on any mismatch (and on the `persist.open` /
  /// `persist.verify` failpoints).
  static ArenaView open(const std::filesystem::path& path);

  /// An empty view (no mapping); assign from open() to populate.
  ArenaView() = default;
  ArenaView(ArenaView&& other) noexcept;
  ArenaView& operator=(ArenaView&& other) noexcept;
  ArenaView(const ArenaView&) = delete;
  ArenaView& operator=(const ArenaView&) = delete;
  ~ArenaView();

  /// Payload bytes of a section; throws SnapshotError when absent.
  std::span<const std::byte> section(SectionId id) const;
  bool has_section(SectionId id) const noexcept;

  /// File offset of a section's payload, for error messages that name the
  /// byte range a validation failure landed in; 0 when absent.
  std::uint64_t section_offset(SectionId id) const noexcept;

  /// A pool section reinterpreted as an array of trivially-copyable T.
  /// Section payloads are 16-byte aligned within the page-aligned mapping,
  /// so the cast is well-formed for any pool element type we store.
  template <typename T>
  std::span<const T> pool(SectionId id) const {
    static_assert(std::is_trivially_copyable_v<T>);
    std::span<const std::byte> raw = section(id);
    if (raw.size() % sizeof(T) != 0) {
      throw SnapshotError("snapshot pool section size is not a multiple of its element size");
    }
    return {reinterpret_cast<const T*>(raw.data()), raw.size() / sizeof(T)};
  }

  std::uint64_t build_id() const noexcept { return build_id_; }
  std::uint64_t file_size() const noexcept { return size_; }

 private:
  struct SectionRef {
    SectionId id;
    std::uint64_t offset;
    std::uint64_t size;
  };

  const std::byte* base_ = nullptr;
  std::size_t size_ = 0;
  std::uint64_t build_id_ = 0;
  std::vector<SectionRef> table_;
};

}  // namespace rpslyzer::persist
