#pragma once
// Snapshot persistence: serialize a compile::CompiledPolicySnapshot into a
// relocatable arena file and restore it with one mmap plus O(1) fixup.
//
// What "restore" means here: the heavy precomputed arrays — flattened
// as-set memberships, per-prefix origin lists, customer cones, route-set
// length intervals — are *not* copied out of the file; the restored
// snapshot's spans point straight into the read-only mapping. The small
// structures that carry pointers into the IR (rule arrays, the regex table)
// are rebuilt from the file's binary IR by ordinal fixup: the i-th stored
// rule of AS n binds to `&ir.aut_nums.at(n).imports[i]`, and NFA images
// pair positionally with the deterministic filter-walk order the compiler
// itself uses. No RPSL parsing, no set flattening, no cone computation, and
// no NFA construction happens on the load path.
//
// Lifetime: open_snapshot() returns an aliasing shared_ptr whose control
// block owns the whole LoadedCorpus (mapping, decoded IR, index,
// relations, snapshot), so the mapping outlives every span into it for as
// long as any caller holds the snapshot.

#include <filesystem>
#include <memory>
#include <string>

#include "rpslyzer/compile/snapshot.hpp"
#include "rpslyzer/persist/arena.hpp"

namespace rpslyzer::persist {

/// Serialize `snap` and atomically publish it at `path`. Returns the file
/// size in bytes. Throws SnapshotError on I/O failure or the
/// `persist.write` failpoint. Observability: `persist.write` trace span,
/// rpslyzer_persist_write_seconds, rpslyzer_persist_snapshot_bytes.
std::uint64_t write_snapshot(const compile::CompiledPolicySnapshot& snap,
                             const std::filesystem::path& path);

/// mmap + validate + restore. `source` labels the snapshot for `!stats`
/// ("file:<path>" when empty). Throws SnapshotError for any unreadable,
/// corrupted, truncated, or version-mismatched file — callers treat that
/// as "rebuild from dumps". Observability: `persist.open` trace span,
/// rpslyzer_persist_load_seconds, rpslyzer_persist_open_failures_total.
std::shared_ptr<const compile::CompiledPolicySnapshot> open_snapshot(
    const std::filesystem::path& path, std::string source = {});

/// Validate `path` without restoring (header, checksum, section bounds).
/// Returns the build id recorded at write time; throws SnapshotError on
/// any mismatch.
std::uint64_t verify_snapshot(const std::filesystem::path& path);

/// The serialization/restoration implementation. A class (not free
/// functions) because it is the one `friend` the snapshot grants access to
/// its private tables.
class SnapshotCodec {
 public:
  /// Append every snapshot section to `writer` (header fields are the
  /// ArenaWriter's concern).
  static void write(const compile::CompiledPolicySnapshot& snap, ArenaWriter& writer);

  /// Rebuild a snapshot over `view`. `index` must wrap the ir::Ir decoded
  /// from this same view (ordinal fixups bind rule pointers into it), and
  /// the caller must keep `view` alive for the snapshot's lifetime.
  static std::shared_ptr<const compile::CompiledPolicySnapshot> restore(
      const ArenaView& view, std::shared_ptr<const irr::Index> index,
      std::shared_ptr<const relations::AsRelations> relations, std::string source);
};

/// Everything a restored snapshot hangs on to. Member order is the
/// destruction contract: the snapshot (whose spans point into `view`) dies
/// before the index (which references `*ir`), which dies before the IR,
/// which dies before the mapping.
struct LoadedCorpus {
  ArenaView view;
  std::unique_ptr<ir::Ir> ir;
  std::shared_ptr<const irr::Index> index;
  std::shared_ptr<const relations::AsRelations> relations;
  std::shared_ptr<const compile::CompiledPolicySnapshot> snapshot;
};

}  // namespace rpslyzer::persist
