#pragma once
// On-disk generation cache for compiled snapshots.
//
// The cache key is a content hash over everything that determines a
// compiled generation: the arena format version, each Table-1 IRR dump the
// loader would read (name, presence, and full bytes), the CAIDA
// relationships file, and the load options that change parse results.
// Identical inputs on a reload therefore hit `<dir>/snap-<key>.rps` and
// come up via mmap instead of a full parse + compile; any changed byte in
// any input derives a different key and misses cleanly. Corrupt or
// version-mismatched entries are also misses (never errors): the caller
// rebuilds and overwrites the entry.

#include <filesystem>
#include <memory>
#include <optional>
#include <string>

#include "rpslyzer/compile/snapshot.hpp"
#include "rpslyzer/irr/loader.hpp"

namespace rpslyzer::persist {

/// A derived cache key (digest64 over the inputs described above).
struct CacheKey {
  std::uint64_t value = 0;

  std::string hex() const;
  friend bool operator==(const CacheKey&, const CacheKey&) = default;
};

/// Derive the key for a corpus directory (Table-1 "<irr>.db" dumps +
/// "relationships.txt") under `options`. Missing files hash as absent, so
/// adding or removing a dump also changes the key.
CacheKey derive_cache_key(const std::filesystem::path& corpus_dir,
                          const irr::LoadOptions& options);

/// The cache directory. try_load/store maintain the hit/miss counters
/// (rpslyzer_persist_cache_{hits,misses}_total) the serve reload path
/// reports.
class SnapshotCache {
 public:
  explicit SnapshotCache(std::filesystem::path directory);

  const std::filesystem::path& directory() const noexcept { return directory_; }
  std::filesystem::path entry_path(const CacheKey& key) const;

  /// mmap-load the entry for `key`. Returns nullptr (and counts a miss) when
  /// the entry is absent, corrupt, truncated, or version-mismatched; counts
  /// a hit and labels the snapshot "cache:<key>" otherwise.
  std::shared_ptr<const compile::CompiledPolicySnapshot> try_load(const CacheKey& key) const;

  /// Serialize `snap` into the entry for `key` (atomic overwrite). Failures
  /// are logged and swallowed — a broken cache write must never take down
  /// the generation that was just built.
  void store(const CacheKey& key, const compile::CompiledPolicySnapshot& snap) const;

 private:
  std::filesystem::path directory_;
};

}  // namespace rpslyzer::persist
