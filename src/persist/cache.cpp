#include "rpslyzer/persist/cache.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "rpslyzer/obs/log.hpp"
#include "rpslyzer/obs/metrics.hpp"
#include "rpslyzer/persist/snapshot_io.hpp"

namespace rpslyzer::persist {

namespace {

obs::Counter& cache_hits() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "rpslyzer_persist_cache_hits_total",
      "Reload generations served from the on-disk snapshot cache");
  return c;
}

obs::Counter& cache_misses() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "rpslyzer_persist_cache_misses_total",
      "Reload generations that required a full parse + compile");
  return c;
}

/// Fold one byte buffer (length-prefixed, so "ab"+"c" != "a"+"bc").
std::uint64_t mix_bytes(std::uint64_t h, std::string_view bytes) {
  std::uint64_t len = bytes.size();
  h = digest64(std::as_bytes(std::span<const std::uint64_t>(&len, 1)), h);
  return digest64(bytes, h);
}

std::optional<std::string> read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

}  // namespace

std::string CacheKey::hex() const {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(value));
  return buf;
}

CacheKey derive_cache_key(const std::filesystem::path& corpus_dir,
                          const irr::LoadOptions& options) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  h = mix_bytes(h, "rpslyzer-snapshot-v" + std::to_string(kFormatVersion));
  for (const irr::IrrSource& source : irr::table1_sources(corpus_dir)) {
    h = mix_bytes(h, source.name);
    const std::optional<std::string> bytes = read_file(source.path);
    h = mix_bytes(h, bytes ? "present" : "absent");
    if (bytes) h = mix_bytes(h, *bytes);
  }
  const std::optional<std::string> relationships = read_file(corpus_dir / "relationships.txt");
  h = mix_bytes(h, relationships ? "present" : "absent");
  if (relationships) h = mix_bytes(h, *relationships);
  const std::uint64_t max_bytes = options.max_object_bytes;
  h = digest64(std::as_bytes(std::span<const std::uint64_t>(&max_bytes, 1)), h);
  return CacheKey{h};
}

SnapshotCache::SnapshotCache(std::filesystem::path directory)
    : directory_(std::move(directory)) {
  std::error_code ec;
  std::filesystem::create_directories(directory_, ec);  // best effort
}

std::filesystem::path SnapshotCache::entry_path(const CacheKey& key) const {
  return directory_ / ("snap-" + key.hex() + ".rps");
}

std::shared_ptr<const compile::CompiledPolicySnapshot> SnapshotCache::try_load(
    const CacheKey& key) const {
  const std::filesystem::path path = entry_path(key);
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) {
    cache_misses().inc();
    obs::log_info("persist", "snapshot cache miss", {{"key", key.hex()}});
    return nullptr;
  }
  try {
    auto snapshot = open_snapshot(path, "cache:" + key.hex());
    cache_hits().inc();
    obs::log_info("persist", "snapshot cache hit",
                  {{"key", key.hex()}, {"path", path.string()}});
    return snapshot;
  } catch (const SnapshotError& e) {
    // A corrupt entry is a miss, not an error: the caller rebuilds and
    // store() replaces the bad file.
    cache_misses().inc();
    obs::log_warn("persist", "snapshot cache entry rejected",
                  {{"key", key.hex()}, {"error", e.what()}});
    return nullptr;
  }
}

void SnapshotCache::store(const CacheKey& key,
                          const compile::CompiledPolicySnapshot& snap) const {
  const std::filesystem::path path = entry_path(key);
  try {
    write_snapshot(snap, path);
  } catch (const SnapshotError& e) {
    obs::log_warn("persist", "snapshot cache store failed",
                  {{"key", key.hex()}, {"error", e.what()}});
  }
}

}  // namespace rpslyzer::persist
