#include "ir_codec.hpp"

#include <algorithm>
#include <limits>

#include "rpslyzer/ir/policy.hpp"
#include "rpslyzer/util/strings.hpp"

namespace rpslyzer::persist {

namespace {

// Every enum is written as u8 and range-checked on decode: a corrupted tag
// must become SnapshotError, never an out-of-range enum value.
std::uint8_t checked_tag(ByteReader& r, std::uint8_t max, const char* what) {
  const std::uint8_t tag = r.u8();
  if (tag > max) throw SnapshotError(std::string("snapshot IR codec: bad ") + what + " tag");
  return tag;
}

template <typename Fn>
void decode_vector_into(ByteReader& r, Fn&& per_element) {
  const std::uint32_t count = r.u32();
  for (std::uint32_t i = 0; i < count; ++i) per_element();
}

// Same, but reserving the destination up front. Every encoded element is at
// least one byte, so clamping the reservation to the bytes actually left in
// the section keeps a corrupted count from driving a huge allocation while
// still sizing honest vectors exactly.
template <typename T, typename Fn>
void decode_elements_into(ByteReader& r, std::vector<T>& out, Fn&& per_element) {
  const std::uint32_t count = r.u32();
  out.reserve(std::min<std::size_t>(count, r.remaining()));
  for (std::uint32_t i = 0; i < count; ++i) per_element();
}

void encode_count(ByteWriter& w, std::size_t n) {
  if (n > std::numeric_limits<std::uint32_t>::max()) {
    throw SnapshotError("snapshot IR codec: collection too large");
  }
  w.u32(static_cast<std::uint32_t>(n));
}

void encode_string_vector(ByteWriter& w, const std::vector<std::string>& v) {
  encode_count(w, v.size());
  for (const std::string& s : v) w.str(s);
}

std::vector<std::string> decode_string_vector(ByteReader& r) {
  std::vector<std::string> out;
  decode_elements_into(r, out, [&] { out.push_back(r.str()); });
  return out;
}

// Interned symbols go over the wire as their exact spelling, so the
// encoded bytes are identical to the std::string era and decode simply
// re-interns (idempotent, process-wide table).
void encode_symbol(ByteWriter& w, ir::Symbol s) { w.str(ir::sym_view(s)); }

ir::Symbol decode_symbol(ByteReader& r) { return ir::sym(r.str()); }

void encode_symbol_vector(ByteWriter& w, const std::vector<ir::Symbol>& v) {
  encode_count(w, v.size());
  for (const ir::Symbol s : v) encode_symbol(w, s);
}

std::vector<ir::Symbol> decode_symbol_vector(ByteReader& r) {
  std::vector<ir::Symbol> out;
  decode_elements_into(r, out, [&] { out.push_back(decode_symbol(r)); });
  return out;
}

// --- net primitives --------------------------------------------------------

void encode_prefix_range(ByteWriter& w, const net::PrefixRange& pr) {
  encode_prefix(w, pr.prefix);
  encode_range_op(w, pr.op);
}

net::PrefixRange decode_prefix_range(ByteReader& r) {
  net::PrefixRange pr;
  pr.prefix = decode_prefix(r);
  pr.op = decode_range_op(r);
  return pr;
}

// --- AS-path regexes -------------------------------------------------------

void encode_regex_node(ByteWriter& w, const ir::AsPathRegexNode& node);

ir::AsPathRegexNode decode_regex_node(ByteReader& r);

void encode_regex_box(ByteWriter& w, const ir::AsPathRegexBox& box) {
  encode_regex_node(w, *box);
}

ir::AsPathRegexBox decode_regex_box(ByteReader& r) {
  return ir::AsPathRegexBox(decode_regex_node(r));
}

void encode_regex_node(ByteWriter& w, const ir::AsPathRegexNode& node) {
  std::visit(util::overloaded{
                 [&](const ir::ReEmpty&) { w.u8(0); },
                 [&](const ir::ReTokenNode& n) {
                   w.u8(1);
                   encode_re_token(w, n.token);
                 },
                 [&](const ir::ReBeginAnchor&) { w.u8(2); },
                 [&](const ir::ReEndAnchor&) { w.u8(3); },
                 [&](const ir::ReConcat& n) {
                   w.u8(4);
                   encode_count(w, n.parts.size());
                   for (const auto& part : n.parts) encode_regex_box(w, part);
                 },
                 [&](const ir::ReAlt& n) {
                   w.u8(5);
                   encode_count(w, n.options.size());
                   for (const auto& option : n.options) encode_regex_box(w, option);
                 },
                 [&](const ir::ReRepeatNode& n) {
                   w.u8(6);
                   encode_regex_box(w, n.inner);
                   w.u32(n.repeat.min);
                   w.u8(n.repeat.max.has_value() ? 1 : 0);
                   w.u32(n.repeat.max.value_or(0));
                   w.u8(n.repeat.same_pattern ? 1 : 0);
                 },
             },
             node.node);
}

ir::AsPathRegexNode decode_regex_node(ByteReader& r) {
  ir::AsPathRegexNode out;
  switch (checked_tag(r, 6, "regex node")) {
    case 0:
      out.node = ir::ReEmpty{};
      break;
    case 1: {
      ir::ReTokenNode n;
      n.token = decode_re_token(r);
      out.node = std::move(n);
      break;
    }
    case 2:
      out.node = ir::ReBeginAnchor{};
      break;
    case 3:
      out.node = ir::ReEndAnchor{};
      break;
    case 4: {
      ir::ReConcat n;
      decode_elements_into(r, n.parts, [&] { n.parts.push_back(decode_regex_box(r)); });
      out.node = std::move(n);
      break;
    }
    case 5: {
      ir::ReAlt n;
      decode_elements_into(r, n.options, [&] { n.options.push_back(decode_regex_box(r)); });
      out.node = std::move(n);
      break;
    }
    case 6: {
      ir::ReRepeatNode n;
      n.inner = decode_regex_box(r);
      n.repeat.min = r.u32();
      const bool has_max = r.u8() != 0;
      const std::uint32_t max = r.u32();
      if (has_max) n.repeat.max = max;
      n.repeat.same_pattern = r.u8() != 0;
      out.node = std::move(n);
      break;
    }
  }
  return out;
}

void encode_aspath_regex(ByteWriter& w, const ir::AsPathRegex& regex) {
  encode_regex_box(w, regex.root);
  w.str(regex.text);
}

ir::AsPathRegex decode_aspath_regex(ByteReader& r) {
  ir::AsPathRegex out;
  out.root = decode_regex_box(r);
  out.text = r.str();
  return out;
}

// --- peerings, actions, filters --------------------------------------------

void encode_as_expr(ByteWriter& w, const ir::AsExpr& expr) {
  std::visit(util::overloaded{
                 [&](const ir::AsExprAsn& e) {
                   w.u8(0);
                   w.u32(e.asn);
                 },
                 [&](const ir::AsExprSet& e) {
                   w.u8(1);
                   w.str(e.name);
                 },
                 [&](const ir::AsExprAny&) { w.u8(2); },
                 [&](const ir::AsExprAnd& e) {
                   w.u8(3);
                   encode_as_expr(w, *e.left);
                   encode_as_expr(w, *e.right);
                 },
                 [&](const ir::AsExprOr& e) {
                   w.u8(4);
                   encode_as_expr(w, *e.left);
                   encode_as_expr(w, *e.right);
                 },
                 [&](const ir::AsExprExcept& e) {
                   w.u8(5);
                   encode_as_expr(w, *e.left);
                   encode_as_expr(w, *e.right);
                 },
             },
             expr.node);
}

ir::AsExpr decode_as_expr(ByteReader& r) {
  ir::AsExpr out;
  switch (checked_tag(r, 5, "as-expr")) {
    case 0:
      out.node = ir::AsExprAsn{r.u32()};
      break;
    case 1:
      out.node = ir::AsExprSet{r.str()};
      break;
    case 2:
      out.node = ir::AsExprAny{};
      break;
    case 3: {
      ir::AsExprAnd e;
      *e.left = decode_as_expr(r);
      *e.right = decode_as_expr(r);
      out.node = std::move(e);
      break;
    }
    case 4: {
      ir::AsExprOr e;
      *e.left = decode_as_expr(r);
      *e.right = decode_as_expr(r);
      out.node = std::move(e);
      break;
    }
    case 5: {
      ir::AsExprExcept e;
      *e.left = decode_as_expr(r);
      *e.right = decode_as_expr(r);
      out.node = std::move(e);
      break;
    }
  }
  return out;
}

void encode_peering(ByteWriter& w, const ir::Peering& peering) {
  std::visit(util::overloaded{
                 [&](const ir::PeeringSpec& p) {
                   w.u8(0);
                   encode_as_expr(w, p.as_expr);
                   w.str(p.remote_router);
                   w.str(p.local_router);
                 },
                 [&](const ir::PeeringSetRef& p) {
                   w.u8(1);
                   w.str(p.name);
                 },
             },
             peering.node);
}

ir::Peering decode_peering(ByteReader& r) {
  ir::Peering out;
  if (checked_tag(r, 1, "peering") == 0) {
    ir::PeeringSpec p;
    p.as_expr = decode_as_expr(r);
    p.remote_router = r.str();
    p.local_router = r.str();
    out.node = std::move(p);
  } else {
    out.node = ir::PeeringSetRef{r.str()};
  }
  return out;
}

void encode_action(ByteWriter& w, const ir::Action& a) {
  w.u8(static_cast<std::uint8_t>(a.kind));
  w.str(a.attribute);
  w.str(a.op);
  w.str(a.method);
  w.str(a.value);
}

ir::Action decode_action(ByteReader& r) {
  ir::Action a;
  a.kind = static_cast<ir::Action::Kind>(checked_tag(r, 1, "action"));
  a.attribute = r.str();
  a.op = r.str();
  a.method = r.str();
  a.value = r.str();
  return a;
}

void encode_filter(ByteWriter& w, const ir::Filter& filter) {
  std::visit(
      util::overloaded{
          [&](const ir::FilterAny&) { w.u8(0); },
          [&](const ir::FilterPeerAs&) { w.u8(1); },
          [&](const ir::FilterFltrMartian&) { w.u8(2); },
          [&](const ir::FilterAsNum& f) {
            w.u8(3);
            w.u32(f.asn);
            encode_range_op(w, f.op);
          },
          [&](const ir::FilterAsSet& f) {
            w.u8(4);
            w.str(f.name);
            encode_range_op(w, f.op);
          },
          [&](const ir::FilterRouteSet& f) {
            w.u8(5);
            w.str(f.name);
            encode_range_op(w, f.op);
          },
          [&](const ir::FilterFilterSet& f) {
            w.u8(6);
            w.str(f.name);
          },
          [&](const ir::FilterPrefixes& f) {
            w.u8(7);
            encode_count(w, f.prefixes.ranges().size());
            for (const net::PrefixRange& pr : f.prefixes.ranges()) encode_prefix_range(w, pr);
            encode_range_op(w, f.op);
          },
          [&](const ir::FilterAsPath& f) {
            w.u8(8);
            encode_aspath_regex(w, f.regex);
          },
          [&](const ir::FilterCommunity& f) {
            w.u8(9);
            w.str(f.method);
            encode_string_vector(w, f.args);
          },
          [&](const ir::FilterAnd& f) {
            w.u8(10);
            encode_filter(w, *f.left);
            encode_filter(w, *f.right);
          },
          [&](const ir::FilterOr& f) {
            w.u8(11);
            encode_filter(w, *f.left);
            encode_filter(w, *f.right);
          },
          [&](const ir::FilterNot& f) {
            w.u8(12);
            encode_filter(w, *f.inner);
          },
          [&](const ir::FilterUnknown& f) {
            w.u8(13);
            w.str(f.text);
          },
      },
      filter.node);
}

ir::Filter decode_filter(ByteReader& r) {
  ir::Filter out;
  switch (checked_tag(r, 13, "filter")) {
    case 0:
      out.node = ir::FilterAny{};
      break;
    case 1:
      out.node = ir::FilterPeerAs{};
      break;
    case 2:
      out.node = ir::FilterFltrMartian{};
      break;
    case 3: {
      ir::FilterAsNum f;
      f.asn = r.u32();
      f.op = decode_range_op(r);
      out.node = f;
      break;
    }
    case 4: {
      ir::FilterAsSet f;
      f.name = r.str();
      f.op = decode_range_op(r);
      out.node = std::move(f);
      break;
    }
    case 5: {
      ir::FilterRouteSet f;
      f.name = r.str();
      f.op = decode_range_op(r);
      out.node = std::move(f);
      break;
    }
    case 6:
      out.node = ir::FilterFilterSet{r.str()};
      break;
    case 7: {
      std::vector<net::PrefixRange> ranges;
      decode_elements_into(r, ranges, [&] { ranges.push_back(decode_prefix_range(r)); });
      ir::FilterPrefixes f;
      f.prefixes = net::PrefixSet(std::move(ranges));
      f.op = decode_range_op(r);
      out.node = std::move(f);
      break;
    }
    case 8: {
      ir::FilterAsPath f;
      f.regex = decode_aspath_regex(r);
      out.node = std::move(f);
      break;
    }
    case 9: {
      ir::FilterCommunity f;
      f.method = r.str();
      f.args = decode_string_vector(r);
      out.node = std::move(f);
      break;
    }
    case 10: {
      ir::FilterAnd f;
      *f.left = decode_filter(r);
      *f.right = decode_filter(r);
      out.node = std::move(f);
      break;
    }
    case 11: {
      ir::FilterOr f;
      *f.left = decode_filter(r);
      *f.right = decode_filter(r);
      out.node = std::move(f);
      break;
    }
    case 12: {
      ir::FilterNot f;
      *f.inner = decode_filter(r);
      out.node = std::move(f);
      break;
    }
    case 13:
      out.node = ir::FilterUnknown{r.str()};
      break;
  }
  return out;
}

// --- entries and rules -----------------------------------------------------

void encode_entry(ByteWriter& w, const ir::Entry& entry) {
  encode_count(w, entry.afis.size());
  for (const ir::Afi& afi : entry.afis) {
    w.u8(static_cast<std::uint8_t>(afi.ip));
    w.u8(static_cast<std::uint8_t>(afi.cast));
  }
  std::visit(util::overloaded{
                 [&](const ir::EntryTerm& term) {
                   w.u8(0);
                   encode_count(w, term.factors.size());
                   for (const ir::PolicyFactor& factor : term.factors) {
                     encode_count(w, factor.peerings.size());
                     for (const ir::PeeringAction& pa : factor.peerings) {
                       encode_peering(w, pa.peering);
                       encode_count(w, pa.actions.size());
                       for (const ir::Action& a : pa.actions) encode_action(w, a);
                     }
                     encode_filter(w, factor.filter);
                   }
                 },
                 [&](const ir::EntryRefine& e) {
                   w.u8(1);
                   encode_entry(w, *e.left);
                   encode_entry(w, *e.right);
                 },
                 [&](const ir::EntryExcept& e) {
                   w.u8(2);
                   encode_entry(w, *e.left);
                   encode_entry(w, *e.right);
                 },
             },
             entry.node);
}

ir::Entry decode_entry(ByteReader& r) {
  ir::Entry out;
  decode_elements_into(r, out.afis, [&] {
    ir::Afi afi;
    afi.ip = static_cast<ir::Afi::Ip>(checked_tag(r, 2, "afi ip"));
    afi.cast = static_cast<ir::Afi::Cast>(checked_tag(r, 2, "afi cast"));
    out.afis.push_back(afi);
  });
  switch (checked_tag(r, 2, "entry")) {
    case 0: {
      ir::EntryTerm term;
      decode_elements_into(r, term.factors, [&] {
        ir::PolicyFactor factor;
        decode_elements_into(r, factor.peerings, [&] {
          ir::PeeringAction pa;
          pa.peering = decode_peering(r);
          decode_elements_into(r, pa.actions, [&] { pa.actions.push_back(decode_action(r)); });
          factor.peerings.push_back(std::move(pa));
        });
        factor.filter = decode_filter(r);
        term.factors.push_back(std::move(factor));
      });
      out.node = std::move(term);
      break;
    }
    case 1: {
      ir::EntryRefine e;
      *e.left = decode_entry(r);
      *e.right = decode_entry(r);
      out.node = std::move(e);
      break;
    }
    case 2: {
      ir::EntryExcept e;
      *e.left = decode_entry(r);
      *e.right = decode_entry(r);
      out.node = std::move(e);
      break;
    }
  }
  return out;
}

void encode_rule(ByteWriter& w, const ir::Rule& rule) {
  w.u8(static_cast<std::uint8_t>(rule.direction));
  w.u8(rule.mp ? 1 : 0);
  w.str(rule.protocol);
  w.str(rule.into);
  encode_entry(w, rule.entry);
  w.str(rule.text);
}

ir::Rule decode_rule(ByteReader& r) {
  ir::Rule rule;
  rule.direction = static_cast<ir::Rule::Direction>(checked_tag(r, 1, "rule direction"));
  rule.mp = r.u8() != 0;
  rule.protocol = r.str();
  rule.into = r.str();
  rule.entry = decode_entry(r);
  rule.text = r.str();
  return rule;
}

// --- objects ---------------------------------------------------------------

void encode_aut_num(ByteWriter& w, const ir::AutNum& an) {
  w.u32(an.asn);
  encode_symbol(w, an.as_name);
  encode_count(w, an.imports.size());
  for (const ir::Rule& rule : an.imports) encode_rule(w, rule);
  encode_count(w, an.exports.size());
  for (const ir::Rule& rule : an.exports) encode_rule(w, rule);
  encode_symbol_vector(w, an.member_of);
  encode_symbol_vector(w, an.mnt_by);
  encode_symbol(w, an.source);
}

ir::AutNum decode_aut_num(ByteReader& r) {
  ir::AutNum an;
  an.asn = r.u32();
  an.as_name = decode_symbol(r);
  decode_elements_into(r, an.imports, [&] { an.imports.push_back(decode_rule(r)); });
  decode_elements_into(r, an.exports, [&] { an.exports.push_back(decode_rule(r)); });
  an.member_of = decode_symbol_vector(r);
  an.mnt_by = decode_symbol_vector(r);
  an.source = decode_symbol(r);
  return an;
}

void encode_as_set(ByteWriter& w, const ir::AsSet& set) {
  encode_symbol(w, set.name);
  encode_count(w, set.members.size());
  for (const ir::AsSetMember& m : set.members) {
    w.u8(static_cast<std::uint8_t>(m.kind));
    w.u32(m.asn);
    encode_symbol(w, m.name);
  }
  encode_symbol_vector(w, set.mbrs_by_ref);
  encode_symbol_vector(w, set.mnt_by);
  encode_symbol(w, set.source);
}

ir::AsSet decode_as_set(ByteReader& r) {
  ir::AsSet set;
  set.name = decode_symbol(r);
  decode_elements_into(r, set.members, [&] {
    ir::AsSetMember m;
    m.kind = static_cast<ir::AsSetMember::Kind>(checked_tag(r, 2, "as-set member"));
    m.asn = r.u32();
    m.name = decode_symbol(r);
    set.members.push_back(std::move(m));
  });
  set.mbrs_by_ref = decode_symbol_vector(r);
  set.mnt_by = decode_symbol_vector(r);
  set.source = decode_symbol(r);
  return set;
}

void encode_route_set(ByteWriter& w, const ir::RouteSet& set) {
  encode_symbol(w, set.name);
  for (const auto* list : {&set.members, &set.mp_members}) {
    encode_count(w, list->size());
    for (const ir::RouteSetMember& m : *list) {
      w.u8(static_cast<std::uint8_t>(m.kind));
      encode_prefix_range(w, m.prefix);
      encode_symbol(w, m.name);
      w.u32(m.asn);
      encode_range_op(w, m.op);
    }
  }
  encode_symbol_vector(w, set.mbrs_by_ref);
  encode_symbol_vector(w, set.mnt_by);
  encode_symbol(w, set.source);
}

ir::RouteSet decode_route_set(ByteReader& r) {
  ir::RouteSet set;
  set.name = decode_symbol(r);
  for (auto* list : {&set.members, &set.mp_members}) {
    decode_elements_into(r, *list, [&] {
      ir::RouteSetMember m;
      m.kind = static_cast<ir::RouteSetMember::Kind>(checked_tag(r, 4, "route-set member"));
      m.prefix = decode_prefix_range(r);
      m.name = decode_symbol(r);
      m.asn = r.u32();
      m.op = decode_range_op(r);
      list->push_back(std::move(m));
    });
  }
  set.mbrs_by_ref = decode_symbol_vector(r);
  set.mnt_by = decode_symbol_vector(r);
  set.source = decode_symbol(r);
  return set;
}

void encode_peering_set(ByteWriter& w, const ir::PeeringSet& set) {
  encode_symbol(w, set.name);
  for (const auto* list : {&set.peerings, &set.mp_peerings}) {
    encode_count(w, list->size());
    for (const ir::Peering& p : *list) encode_peering(w, p);
  }
  encode_symbol(w, set.source);
}

ir::PeeringSet decode_peering_set(ByteReader& r) {
  ir::PeeringSet set;
  set.name = decode_symbol(r);
  for (auto* list : {&set.peerings, &set.mp_peerings}) {
    decode_elements_into(r, *list, [&] { list->push_back(decode_peering(r)); });
  }
  set.source = decode_symbol(r);
  return set;
}

void encode_filter_set(ByteWriter& w, const ir::FilterSet& set) {
  encode_symbol(w, set.name);
  w.u8(set.has_filter ? 1 : 0);
  encode_filter(w, set.filter);
  w.u8(set.has_mp_filter ? 1 : 0);
  encode_filter(w, set.mp_filter);
  encode_symbol(w, set.source);
}

ir::FilterSet decode_filter_set(ByteReader& r) {
  ir::FilterSet set;
  set.name = decode_symbol(r);
  set.has_filter = r.u8() != 0;
  set.filter = decode_filter(r);
  set.has_mp_filter = r.u8() != 0;
  set.mp_filter = decode_filter(r);
  set.source = decode_symbol(r);
  return set;
}

void encode_route_object(ByteWriter& w, const ir::RouteObject& route) {
  encode_prefix(w, route.prefix);
  w.u32(route.origin);
  encode_symbol_vector(w, route.member_of);
  encode_symbol_vector(w, route.mnt_by);
  encode_symbol(w, route.source);
}

ir::RouteObject decode_route_object(ByteReader& r) {
  ir::RouteObject route;
  route.prefix = decode_prefix(r);
  route.origin = r.u32();
  route.member_of = decode_symbol_vector(r);
  route.mnt_by = decode_symbol_vector(r);
  route.source = decode_symbol(r);
  return route;
}

}  // namespace

void encode_prefix(ByteWriter& w, const net::Prefix& p) {
  w.u8(static_cast<std::uint8_t>(p.family()));
  w.u8(p.length());
  w.u64(p.address().hi());
  w.u64(p.address().lo());
}

net::Prefix decode_prefix(ByteReader& r) {
  const auto family = static_cast<net::Family>(checked_tag(r, 1, "prefix family"));
  const std::uint8_t len = r.u8();
  const std::uint64_t hi = r.u64();
  const std::uint64_t lo = r.u64();
  return net::Prefix(net::IpAddress(family, hi, lo), len);
}

void encode_range_op(ByteWriter& w, const net::RangeOp& op) {
  w.u8(static_cast<std::uint8_t>(op.kind));
  w.u8(op.n);
  w.u8(op.m);
}

net::RangeOp decode_range_op(ByteReader& r) {
  net::RangeOp op;
  op.kind = static_cast<net::RangeOp::Kind>(checked_tag(r, 4, "range op"));
  op.n = r.u8();
  op.m = r.u8();
  return op;
}

void encode_re_token(ByteWriter& w, const ir::ReToken& token) {
  w.u8(static_cast<std::uint8_t>(token.kind));
  w.u32(token.asn);
  w.str(token.as_set);
  w.u8(token.complemented ? 1 : 0);
  encode_count(w, token.items.size());
  for (const ir::ReSetItem& item : token.items) {
    w.u8(static_cast<std::uint8_t>(item.kind));
    w.u32(item.asn);
    w.u32(item.asn_hi);
    w.str(item.as_set);
  }
}

ir::ReToken decode_re_token(ByteReader& r) {
  ir::ReToken token;
  token.kind = static_cast<ir::ReToken::Kind>(checked_tag(r, 4, "regex token"));
  token.asn = r.u32();
  token.as_set = r.str();
  token.complemented = r.u8() != 0;
  decode_elements_into(r, token.items, [&] {
    ir::ReSetItem item;
    item.kind = static_cast<ir::ReSetItem::Kind>(checked_tag(r, 3, "regex set item"));
    item.asn = r.u32();
    item.asn_hi = r.u32();
    item.as_set = r.str();
    token.items.push_back(std::move(item));
  });
  return token;
}

void encode_ir(ByteWriter& w, const ir::Ir& ir) {
  encode_count(w, ir.aut_nums.size());
  for (const auto& [asn, an] : ir.aut_nums) encode_aut_num(w, an);
  encode_count(w, ir.as_sets.size());
  for (const auto& [name, set] : ir.as_sets) encode_as_set(w, set);
  encode_count(w, ir.route_sets.size());
  for (const auto& [name, set] : ir.route_sets) encode_route_set(w, set);
  encode_count(w, ir.peering_sets.size());
  for (const auto& [name, set] : ir.peering_sets) encode_peering_set(w, set);
  encode_count(w, ir.filter_sets.size());
  for (const auto& [name, set] : ir.filter_sets) encode_filter_set(w, set);
  encode_count(w, ir.routes.size());
  for (const ir::RouteObject& route : ir.routes) encode_route_object(w, route);
}

ir::Ir decode_ir(ByteReader& r) {
  // Objects were written in map iteration order, so every key arrives
  // sorted: the end() hint turns each tree insert into an O(1) append.
  ir::Ir out;
  decode_vector_into(r, [&] {
    ir::AutNum an = decode_aut_num(r);
    const ir::Asn asn = an.asn;
    out.aut_nums.emplace_hint(out.aut_nums.end(), asn, std::move(an));
  });
  decode_vector_into(r, [&] {
    ir::AsSet set = decode_as_set(r);
    std::string name = ir::to_string(set.name);
    out.as_sets.emplace_hint(out.as_sets.end(), std::move(name), std::move(set));
  });
  decode_vector_into(r, [&] {
    ir::RouteSet set = decode_route_set(r);
    std::string name = ir::to_string(set.name);
    out.route_sets.emplace_hint(out.route_sets.end(), std::move(name), std::move(set));
  });
  decode_vector_into(r, [&] {
    ir::PeeringSet set = decode_peering_set(r);
    std::string name = ir::to_string(set.name);
    out.peering_sets.emplace_hint(out.peering_sets.end(), std::move(name), std::move(set));
  });
  decode_vector_into(r, [&] {
    ir::FilterSet set = decode_filter_set(r);
    std::string name = ir::to_string(set.name);
    out.filter_sets.emplace_hint(out.filter_sets.end(), std::move(name), std::move(set));
  });
  decode_elements_into(r, out.routes, [&] { out.routes.push_back(decode_route_object(r)); });
  return out;
}

}  // namespace rpslyzer::persist
