#pragma once
// Binary codec for the full ir::Ir inside a snapshot arena (internal to the
// persist library). Tag-encoded variants, length-prefixed strings, and
// counted vectors; decode(encode(ir)) == ir under ir::Ir::operator==, which
// tests/persist_test.cpp checks over the synthetic corpus. Cosmetic fields
// operator== ignores (Rule::text, AsPathRegex::text) are still encoded so
// restored snapshots produce byte-identical verification reports.

#include "rpslyzer/ir/objects.hpp"
#include "rpslyzer/persist/arena.hpp"

namespace rpslyzer::persist {

void encode_ir(ByteWriter& w, const ir::Ir& ir);
ir::Ir decode_ir(ByteReader& r);

// Shared with the NFA section codec (regex tokens appear in both).
void encode_re_token(ByteWriter& w, const ir::ReToken& token);
ir::ReToken decode_re_token(ByteReader& r);

void encode_prefix(ByteWriter& w, const net::Prefix& p);
net::Prefix decode_prefix(ByteReader& r);

void encode_range_op(ByteWriter& w, const net::RangeOp& op);
net::RangeOp decode_range_op(ByteReader& r);

}  // namespace rpslyzer::persist
