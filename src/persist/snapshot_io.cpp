#include "rpslyzer/persist/snapshot_io.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>
#include <vector>

#include "ir_codec.hpp"
#include "rpslyzer/obs/log.hpp"
#include "rpslyzer/obs/metrics.hpp"
#include "rpslyzer/obs/trace.hpp"
#include "rpslyzer/util/strings.hpp"

namespace rpslyzer::persist {

namespace {

using compile::CompiledPolicySnapshot;

// --- deterministic AS-path filter walk -------------------------------------
// Mirrors the compiler's build order exactly (aut-nums ascending, imports
// then exports, factor order, And/Or left before right, then filter-set
// bodies in name order), so NFA images written positionally at save time
// bind to the right ir::FilterAsPath node at restore time.

void collect_filter(const ir::Filter& filter, std::vector<const ir::FilterAsPath*>& out) {
  std::visit(util::overloaded{
                 [&](const ir::FilterAsPath& f) { out.push_back(&f); },
                 [&](const ir::FilterAnd& f) {
                   collect_filter(*f.left, out);
                   collect_filter(*f.right, out);
                 },
                 [&](const ir::FilterOr& f) {
                   collect_filter(*f.left, out);
                   collect_filter(*f.right, out);
                 },
                 [&](const ir::FilterNot& f) { collect_filter(*f.inner, out); },
                 [&](const auto&) {},
             },
             filter.node);
}

void collect_entry(const ir::Entry& entry, std::vector<const ir::FilterAsPath*>& out) {
  std::visit(util::overloaded{
                 [&](const ir::EntryTerm& term) {
                   for (const auto& factor : term.factors) collect_filter(factor.filter, out);
                 },
                 [&](const ir::EntryExcept& e) {
                   collect_entry(*e.left, out);
                   collect_entry(*e.right, out);
                 },
                 [&](const ir::EntryRefine& e) {
                   collect_entry(*e.left, out);
                   collect_entry(*e.right, out);
                 },
             },
             entry.node);
}

std::vector<const ir::FilterAsPath*> collect_aspath_filters(const ir::Ir& ir) {
  std::vector<const ir::FilterAsPath*> out;
  for (const auto& [asn, an] : ir.aut_nums) {
    for (const ir::Rule& rule : an.imports) collect_entry(rule.entry, out);
    for (const ir::Rule& rule : an.exports) collect_entry(rule.entry, out);
  }
  for (const auto& [name, set] : ir.filter_sets) {
    if (set.has_filter) collect_filter(set.filter, out);
    if (set.has_mp_filter) collect_filter(set.mp_filter, out);
  }
  return out;
}

// --- metrics ---------------------------------------------------------------

obs::Histogram& write_seconds() {
  static obs::Histogram& h = obs::MetricsRegistry::global().histogram(
      "rpslyzer_persist_write_seconds", "Snapshot arena serialization + publish duration",
      obs::exponential_bounds(1e-4, 4.0, 12));
  return h;
}

obs::Histogram& load_seconds() {
  static obs::Histogram& h = obs::MetricsRegistry::global().histogram(
      "rpslyzer_persist_load_seconds", "Snapshot mmap + validate + restore duration",
      obs::exponential_bounds(1e-4, 4.0, 12));
  return h;
}

obs::Gauge& snapshot_bytes() {
  static obs::Gauge& g = obs::MetricsRegistry::global().gauge(
      "rpslyzer_persist_snapshot_bytes", "Size of the most recently written snapshot file");
  return g;
}

obs::Counter& open_failures() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "rpslyzer_persist_open_failures_total",
      "Snapshot open/restore attempts rejected (corrupt, truncated, or wrong version)");
  return c;
}

// Rethrow any SnapshotError out of a section's decode with the section name
// and file offset prepended, so "corrupt snapshot" diagnoses to a byte
// range. fn's decode may read a sibling pool section too; blame lands on
// the entry section driving the walk, which is where the offsets that
// overran the pool were read from.
template <typename Fn>
decltype(auto) with_section(const ArenaView& view, SectionId id, Fn&& fn) {
  try {
    return std::forward<Fn>(fn)();
  } catch (const SnapshotError& e) {
    throw SnapshotError(std::string("section ") + section_name(id) + " (offset " +
                        std::to_string(view.section_offset(id)) + "): " + e.what());
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// SnapshotCodec::write
// ---------------------------------------------------------------------------

void SnapshotCodec::write(const CompiledPolicySnapshot& snap, ArenaWriter& writer) {
  const ir::Ir& ir = snap.index_->ir();

  // Interned symbols: offset table + blob, id = position (the fold-mode
  // interner assigns ids dense from 0 in intern order, so iterating ids
  // reproduces the old name-vector layout byte for byte).
  {
    ByteWriter w;
    const std::uint32_t symbol_count = snap.symbols_.size();
    w.u32(symbol_count);
    std::uint32_t offset = 0;
    for (std::uint32_t id = 0; id < symbol_count; ++id) {
      w.u32(offset);
      offset += static_cast<std::uint32_t>(snap.symbols_.view({id}).size());
    }
    w.u32(offset);
    for (std::uint32_t id = 0; id < symbol_count; ++id) {
      const std::string_view name = snap.symbols_.view({id});
      w.bytes(std::as_bytes(std::span<const char>(name.data(), name.size())));
    }
    writer.add_section(SectionId::kSymbols, std::move(w));
  }

  {
    ByteWriter w;
    encode_ir(w, ir);
    writer.add_section(SectionId::kIr, std::move(w));
  }

  // Relationships go down as binary link lists (not serial-1 text): the
  // loader re-adds links through the incremental API and re-declares the
  // tier-1 clique, skipping both text parsing and clique inference.
  {
    ByteWriter w;
    const relations::AsRelations& rel = *snap.relations_;
    const std::vector<relations::Asn> ases = rel.all_ases();
    std::uint32_t pc_links = 0;
    for (const relations::Asn asn : ases) {
      pc_links += static_cast<std::uint32_t>(rel.providers_of(asn).size());
    }
    w.u32(pc_links);
    for (const relations::Asn asn : ases) {
      for (const relations::Asn provider : rel.providers_of(asn)) {
        w.u32(provider);
        w.u32(asn);
      }
    }
    std::uint32_t peer_links = 0;
    for (const relations::Asn asn : ases) {
      for (const relations::Asn peer : rel.peers_of(asn)) {
        if (asn < peer) ++peer_links;
      }
    }
    w.u32(peer_links);
    for (const relations::Asn asn : ases) {
      for (const relations::Asn peer : rel.peers_of(asn)) {
        if (asn < peer) {
          w.u32(asn);
          w.u32(peer);
        }
      }
    }
    const std::vector<relations::Asn>& clique = rel.tier1();
    w.u32(static_cast<std::uint32_t>(clique.size()));
    for (const relations::Asn asn : clique) w.u32(asn);
    writer.add_section(SectionId::kRelations, std::move(w));
  }

  // as-sets: entries in symbol-id order reference a freshly packed pool
  // (span contents are written, not the build pools, so a restored snapshot
  // can itself be re-serialized).
  {
    ByteWriter pool;
    ByteWriter w;
    std::vector<std::pair<compile::SymbolId, const compile::CompiledAsSet*>> ordered;
    for (compile::SymbolId id = 0; id < snap.symbols_.size(); ++id) {
      if (auto it = snap.as_sets_.find(id); it != snap.as_sets_.end()) {
        ordered.emplace_back(id, &it->second);
      }
    }
    w.u32(static_cast<std::uint32_t>(ordered.size()));
    std::uint64_t offset = 0;
    for (const auto& [id, set] : ordered) {
      w.u32(id);
      w.u32((set->contains_any ? 1u : 0u) | (set->any_member_routes ? 2u : 0u));
      w.u64(offset);
      w.u64(set->asns.size());
      for (ir::Asn asn : set->asns) pool.u32(asn);
      offset += set->asns.size();
    }
    writer.add_section(SectionId::kAsSetPool, std::move(pool));
    writer.add_section(SectionId::kAsSets, std::move(w));
  }

  // Origin trie: entries in the trie's deterministic traversal order.
  {
    ByteWriter pool;
    ByteWriter w;
    std::uint64_t count = 0;
    std::uint64_t offset = 0;
    ByteWriter entries;
    snap.origins_.for_each([&](const net::Prefix& prefix, std::span<const ir::Asn> origins) {
      encode_prefix(entries, prefix);
      entries.u64(offset);
      entries.u64(origins.size());
      for (ir::Asn asn : origins) pool.u32(asn);
      offset += origins.size();
      ++count;
    });
    w.u64(count);
    w.bytes(entries.view());
    writer.add_section(SectionId::kOriginPool, std::move(pool));
    writer.add_section(SectionId::kOrigins, std::move(w));
  }

  // Route-sets: per-symbol entries, each base trie flattened in traversal
  // order with its interval run referenced by pool offset.
  {
    ByteWriter pool;
    ByteWriter w;
    std::vector<std::pair<compile::SymbolId, const compile::CompiledRouteSet*>> ordered;
    for (compile::SymbolId id = 0; id < snap.symbols_.size(); ++id) {
      if (auto it = snap.route_sets_.find(id); it != snap.route_sets_.end()) {
        ordered.emplace_back(id, &it->second);
      }
    }
    w.u32(static_cast<std::uint32_t>(ordered.size()));
    std::uint64_t offset = 0;
    for (const auto& [id, set] : ordered) {
      w.u32(id);
      w.u32((set->any ? 1u : 0u) | (set->unknown ? 2u : 0u));
      w.u64(set->bases.size());
      set->bases.for_each(
          [&](const net::Prefix& base, std::span<const compile::LengthInterval> intervals) {
            encode_prefix(w, base);
            w.u64(offset);
            w.u64(intervals.size());
            for (const compile::LengthInterval& iv : intervals) {
              pool.u8(iv.lo);
              pool.u8(iv.hi);
            }
            offset += intervals.size();
          });
    }
    writer.add_section(SectionId::kIntervalPool, std::move(pool));
    writer.add_section(SectionId::kRouteSets, std::move(w));
  }

  // aut-nums ascending; rules positionally (the restore side binds rule i
  // back to an.imports[i]/an.exports[i] of the decoded IR).
  {
    ByteWriter pool;
    ByteWriter w;
    w.u32(static_cast<std::uint32_t>(snap.aut_nums_.size()));
    std::uint64_t offset = 0;
    for (const auto& [asn, an] : ir.aut_nums) {
      auto it = snap.aut_nums_.find(asn);
      if (it == snap.aut_nums_.end()) {
        throw SnapshotError("snapshot writer: aut-num missing from compiled tables");
      }
      const compile::CompiledAutNum& can = it->second;
      w.u32(asn);
      w.u8(can.only_provider ? 1 : 0);
      w.u64(offset);
      w.u64(can.customer_cone.size());
      for (ir::Asn member : can.customer_cone) pool.u32(member);
      offset += can.customer_cone.size();
      for (const auto* rules : {&can.imports, &can.exports}) {
        w.u32(static_cast<std::uint32_t>(rules->size()));
        for (const compile::CompiledRule& rule : *rules) {
          w.u8(static_cast<std::uint8_t>((rule.covers_v4 ? 1u : 0u) |
                                         (rule.covers_v6 ? 2u : 0u) | (rule.simple ? 4u : 0u) |
                                         (rule.no_factors ? 8u : 0u)));
          w.u32(static_cast<std::uint32_t>(rule.peers.size()));
          for (ir::Asn peer : rule.peers) w.u32(peer);
          w.u32(static_cast<std::uint32_t>(rule.no_match_asns.size()));
          for (ir::Asn peer : rule.no_match_asns) w.u32(peer);
        }
      }
    }
    writer.add_section(SectionId::kConePool, std::move(pool));
    writer.add_section(SectionId::kAutNums, std::move(w));
  }

  // NFA images, positionally matched to the deterministic filter walk.
  {
    const std::vector<const ir::FilterAsPath*> filters = collect_aspath_filters(ir);
    ByteWriter w;
    w.u32(static_cast<std::uint32_t>(filters.size()));
    for (const ir::FilterAsPath* filter : filters) {
      auto it = snap.regexes_.find(filter);
      if (it == snap.regexes_.end()) {
        throw SnapshotError("snapshot writer: AS-path filter missing from regex table");
      }
      const aspath::NfaImage image = it->second.regex.image();
      w.u8(it->second.skipped ? 1 : 0);
      w.u8(image.unsupported ? 1 : 0);
      w.i32(image.start);
      w.i32(image.accept);
      w.u32(static_cast<std::uint32_t>(image.state_offsets.size()));
      for (std::uint32_t off : image.state_offsets) w.u32(off);
      w.u32(static_cast<std::uint32_t>(image.edges.size()));
      for (const aspath::NfaImage::Edge& edge : image.edges) {
        w.u8(edge.kind);
        w.i32(edge.token);
        w.i32(edge.to);
      }
      w.u32(static_cast<std::uint32_t>(image.tokens.size()));
      for (const ir::ReToken& token : image.tokens) encode_re_token(w, token);
    }
    writer.add_section(SectionId::kNfa, std::move(w));
  }
}

// ---------------------------------------------------------------------------
// SnapshotCodec::restore
// ---------------------------------------------------------------------------

std::shared_ptr<const CompiledPolicySnapshot> SnapshotCodec::restore(
    const ArenaView& view, std::shared_ptr<const irr::Index> index,
    std::shared_ptr<const relations::AsRelations> relations, std::string source) {
  std::shared_ptr<CompiledPolicySnapshot> snap(new CompiledPolicySnapshot());
  snap->index_ = std::move(index);
  snap->relations_ = std::move(relations);
  snap->build_id_ = view.build_id();
  snap->source_ = std::move(source);
  const ir::Ir& ir = snap->index_->ir();

  with_section(view, SectionId::kSymbols, [&] {
    ByteReader r(view.section(SectionId::kSymbols));
    const std::uint32_t count = r.u32();
    std::vector<std::uint32_t> offsets(count + 1);
    for (std::uint32_t i = 0; i <= count; ++i) offsets[i] = r.u32();
    snap->symbols_.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      if (offsets[i] > offsets[i + 1] || offsets[i + 1] - offsets[i] > r.remaining()) {
        throw SnapshotError("snapshot symbol table offsets out of bounds");
      }
      const std::string name = r.chars(offsets[i + 1] - offsets[i]);
      // Fold-mode ids are dense in intern order; a well-formed file interns
      // to exactly id = position. Two case-folded-equal names in one file
      // would collapse to one id — corrupt, so reject.
      if (snap->symbols_.intern(name).id != i) {
        throw SnapshotError("snapshot symbol table has case-colliding names");
      }
    }
  });

  with_section(view, SectionId::kAsSets, [&] {
    std::span<const ir::Asn> pool = view.pool<ir::Asn>(SectionId::kAsSetPool);
    ByteReader r(view.section(SectionId::kAsSets));
    const std::uint32_t count = r.u32();
    snap->as_sets_.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      const compile::SymbolId id = r.u32();
      const std::uint32_t flags = r.u32();
      const std::uint64_t off = r.u64();
      const std::uint64_t n = r.u64();
      if (id >= snap->symbols_.size() || off > pool.size() || n > pool.size() - off) {
        throw SnapshotError("snapshot as-set entry out of bounds");
      }
      compile::CompiledAsSet set;
      set.asns = pool.subspan(off, n);
      set.contains_any = (flags & 1u) != 0;
      set.any_member_routes = (flags & 2u) != 0;
      snap->as_sets_.emplace(id, set);
    }
  });

  with_section(view, SectionId::kOrigins, [&] {
    std::span<const ir::Asn> pool = view.pool<ir::Asn>(SectionId::kOriginPool);
    ByteReader r(view.section(SectionId::kOrigins));
    const std::uint64_t count = r.u64();
    for (std::uint64_t i = 0; i < count; ++i) {
      const net::Prefix prefix = decode_prefix(r);
      const std::uint64_t off = r.u64();
      const std::uint64_t n = r.u64();
      if (off > pool.size() || n > pool.size() - off) {
        throw SnapshotError("snapshot origin entry out of bounds");
      }
      snap->origins_.insert(prefix, pool.subspan(off, n));
    }
  });

  with_section(view, SectionId::kRouteSets, [&] {
    std::span<const compile::LengthInterval> pool =
        view.pool<compile::LengthInterval>(SectionId::kIntervalPool);
    ByteReader r(view.section(SectionId::kRouteSets));
    const std::uint32_t count = r.u32();
    snap->route_sets_.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      const compile::SymbolId id = r.u32();
      const std::uint32_t flags = r.u32();
      const std::uint64_t bases = r.u64();
      if (id >= snap->symbols_.size()) {
        throw SnapshotError("snapshot route-set symbol out of bounds");
      }
      compile::CompiledRouteSet set;
      set.any = (flags & 1u) != 0;
      set.unknown = (flags & 2u) != 0;
      for (std::uint64_t b = 0; b < bases; ++b) {
        const net::Prefix base = decode_prefix(r);
        const std::uint64_t off = r.u64();
        const std::uint64_t n = r.u64();
        if (off > pool.size() || n > pool.size() - off) {
          throw SnapshotError("snapshot route-set interval run out of bounds");
        }
        set.bases.insert(base, pool.subspan(off, n));
      }
      snap->route_sets_.emplace(id, std::move(set));
    }
  });

  with_section(view, SectionId::kAutNums, [&] {
    std::span<const ir::Asn> pool = view.pool<ir::Asn>(SectionId::kConePool);
    ByteReader r(view.section(SectionId::kAutNums));
    const std::uint32_t count = r.u32();
    if (count != ir.aut_nums.size()) {
      throw SnapshotError("snapshot aut-num table disagrees with its own IR");
    }
    snap->aut_nums_.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      const ir::Asn asn = r.u32();
      auto an_it = ir.aut_nums.find(asn);
      if (an_it == ir.aut_nums.end()) {
        throw SnapshotError("snapshot aut-num entry names an unknown AS");
      }
      const ir::AutNum& an = an_it->second;
      compile::CompiledAutNum can;
      can.an = &an;
      can.only_provider = r.u8() != 0;
      const std::uint64_t off = r.u64();
      const std::uint64_t n = r.u64();
      if (off > pool.size() || n > pool.size() - off) {
        throw SnapshotError("snapshot customer cone out of bounds");
      }
      can.customer_cone = pool.subspan(off, n);
      for (auto [rules, source_rules] :
           {std::pair{&can.imports, &an.imports}, std::pair{&can.exports, &an.exports}}) {
        const std::uint32_t rule_count = r.u32();
        if (rule_count != source_rules->size()) {
          throw SnapshotError("snapshot rule count disagrees with its own IR");
        }
        rules->reserve(rule_count);
        for (std::uint32_t j = 0; j < rule_count; ++j) {
          compile::CompiledRule rule;
          rule.rule = &(*source_rules)[j];
          const std::uint8_t flags = r.u8();
          rule.covers_v4 = (flags & 1u) != 0;
          rule.covers_v6 = (flags & 2u) != 0;
          rule.simple = (flags & 4u) != 0;
          rule.no_factors = (flags & 8u) != 0;
          const std::uint32_t peer_count = r.u32();
          rule.peers.reserve(peer_count);
          for (std::uint32_t k = 0; k < peer_count; ++k) rule.peers.push_back(r.u32());
          const std::uint32_t nm_count = r.u32();
          rule.no_match_asns.reserve(nm_count);
          for (std::uint32_t k = 0; k < nm_count; ++k) rule.no_match_asns.push_back(r.u32());
          rules->push_back(std::move(rule));
        }
      }
      snap->aut_nums_.emplace(asn, std::move(can));
    }
  });

  with_section(view, SectionId::kNfa, [&] {
    const std::vector<const ir::FilterAsPath*> filters = collect_aspath_filters(ir);
    ByteReader r(view.section(SectionId::kNfa));
    const std::uint32_t count = r.u32();
    if (count != filters.size()) {
      throw SnapshotError("snapshot NFA table disagrees with its own IR");
    }
    snap->regexes_.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      const bool skipped = r.u8() != 0;
      aspath::NfaImage image;
      image.unsupported = r.u8() != 0;
      image.start = r.i32();
      image.accept = r.i32();
      const std::uint32_t offsets = r.u32();
      image.state_offsets.reserve(offsets);
      for (std::uint32_t j = 0; j < offsets; ++j) image.state_offsets.push_back(r.u32());
      const std::uint32_t edges = r.u32();
      image.edges.reserve(edges);
      for (std::uint32_t j = 0; j < edges; ++j) {
        aspath::NfaImage::Edge edge;
        edge.kind = r.u8();
        edge.token = r.i32();
        edge.to = r.i32();
        image.edges.push_back(edge);
      }
      const std::uint32_t tokens = r.u32();
      image.tokens.reserve(tokens);
      for (std::uint32_t j = 0; j < tokens; ++j) image.tokens.push_back(decode_re_token(r));
      try {
        snap->regexes_.emplace(filters[i],
                               CompiledPolicySnapshot::CompiledAsPath{
                                   aspath::CompiledRegex(image), skipped});
      } catch (const std::invalid_argument& e) {
        throw SnapshotError(std::string("snapshot NFA image invalid: ") + e.what());
      }
    }
  });

  snap->trie_nodes_ = snap->origins_.node_count();
  for (const auto& [id, set] : snap->route_sets_) {
    snap->trie_nodes_ += set.bases.node_count();
  }
  return snap;
}

// ---------------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------------

std::uint64_t write_snapshot(const CompiledPolicySnapshot& snap,
                             const std::filesystem::path& path) {
  obs::Span span("persist.write");
  const auto start = std::chrono::steady_clock::now();
  ArenaWriter writer;
  SnapshotCodec::write(snap, writer);
  const std::uint64_t bytes = writer.write(path, snap.build_id());
  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
  write_seconds().observe(elapsed.count());
  snapshot_bytes().set(static_cast<std::int64_t>(bytes));
  obs::log_info("persist", "snapshot written",
                {{"path", path.string()},
                 {"bytes", bytes},
                 {"build_id", snap.build_id()},
                 {"seconds", elapsed.count()}});
  return bytes;
}

std::shared_ptr<const CompiledPolicySnapshot> open_snapshot(const std::filesystem::path& path,
                                                            std::string source) {
  obs::Span span("persist.open");
  const auto start = std::chrono::steady_clock::now();
  if (source.empty()) source = "file:" + path.string();
  try {
    auto corpus = std::make_shared<LoadedCorpus>();
    {
      obs::Span map_span("persist.open.map");
      corpus->view = ArenaView::open(path);
    }
    with_section(corpus->view, SectionId::kIr, [&] {
      obs::Span ir_span("persist.open.ir");
      ByteReader r(corpus->view.section(SectionId::kIr));
      corpus->ir = std::make_unique<ir::Ir>(decode_ir(r));
      if (!r.at_end()) throw SnapshotError("snapshot IR section has trailing bytes");
    });
    {
      obs::Span index_span("persist.open.index");
      corpus->index = std::make_shared<irr::Index>(*corpus->ir);
    }
    with_section(corpus->view, SectionId::kRelations, [&] {
      obs::Span relations_span("persist.open.relations");
      ByteReader r(corpus->view.section(SectionId::kRelations));
      auto relations = std::make_shared<relations::AsRelations>();
      const std::uint32_t pc_count = r.u32();
      // Link count bounds the AS count; pre-sizing skips incremental rehashes.
      relations->reserve(pc_count);
      for (std::uint32_t n = pc_count; n > 0; --n) {
        const relations::Asn provider = r.u32();
        const relations::Asn customer = r.u32();
        relations->add_provider_customer(provider, customer);
      }
      for (std::uint32_t n = r.u32(); n > 0; --n) {
        const relations::Asn a = r.u32();
        const relations::Asn b = r.u32();
        relations->add_peer_peer(a, b);
      }
      const std::uint32_t clique_size = r.u32();
      std::vector<relations::Asn> clique;
      clique.reserve(clique_size);
      for (std::uint32_t i = 0; i < clique_size; ++i) clique.push_back(r.u32());
      relations->set_clique(std::move(clique));
      if (!r.at_end()) throw SnapshotError("snapshot relations section has trailing bytes");
      relations->tier1();  // force the lazy memo while single-threaded
      corpus->relations = std::move(relations);
    });
    {
      obs::Span restore_span("persist.open.restore");
      corpus->snapshot =
          SnapshotCodec::restore(corpus->view, corpus->index, corpus->relations, source);
    }
    const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
    load_seconds().observe(elapsed.count());
    obs::log_info("persist", "snapshot loaded",
                  {{"path", path.string()},
                   {"source", corpus->snapshot->source()},
                   {"build_id", corpus->snapshot->build_id()},
                   {"seconds", elapsed.count()}});
    const CompiledPolicySnapshot* raw = corpus->snapshot.get();
    return std::shared_ptr<const CompiledPolicySnapshot>(std::move(corpus), raw);
  } catch (const SnapshotError& e) {
    open_failures().inc();
    obs::log_warn("persist", "snapshot rejected",
                  {{"path", path.string()}, {"error", e.what()}});
    throw;
  }
}

std::uint64_t verify_snapshot(const std::filesystem::path& path) {
  const ArenaView view = ArenaView::open(path);
  return view.build_id();
}

}  // namespace rpslyzer::persist
