#pragma once
// §5.2 result aggregation: "we report the verification statuses at three
// granularities: per AS, per AS pair, and per BGP route" (Figures 2-4),
// plus the unrecorded breakdown (Figure 5) and special-case breakdown
// (Figure 6).

#include <array>
#include <map>

#include "rpslyzer/bgp/route.hpp"
#include "rpslyzer/verify/status.hpp"

namespace rpslyzer::report {

using verify::Asn;
using verify::Status;

inline constexpr std::size_t kStatusCount = 6;

/// Counts of checks per status.
struct StatusCounts {
  std::array<std::size_t, kStatusCount> counts{};

  void add(Status s) noexcept { ++counts[static_cast<std::size_t>(s)]; }
  std::size_t of(Status s) const noexcept { return counts[static_cast<std::size_t>(s)]; }
  std::size_t total() const noexcept;
  /// All checks share one status; that status (only valid if true).
  bool single_status(Status* which = nullptr) const noexcept;
  void merge(const StatusCounts& other) noexcept;
  /// Fractions in status-lattice order; zeros when empty.
  std::array<double, kStatusCount> fractions() const noexcept;
};

/// Figure 5's unrecorded categories.
enum class UnrecordedCategory : std::uint8_t {
  kMissingAutNum,
  kNoRules,
  kZeroRouteAs,
  kMissingSet,  // as-set / route-set / peering-set / filter-set
};
inline constexpr std::size_t kUnrecordedCategoryCount = 4;
const char* to_string(UnrecordedCategory c) noexcept;

/// Figure 6's special-case categories.
enum class SpecialCategory : std::uint8_t {
  kExportSelf,
  kImportCustomer,
  kMissingRoutes,
  kOnlyProviderPolicies,
  kTier1Pair,
  kUphill,
};
inline constexpr std::size_t kSpecialCategoryCount = 6;
const char* to_string(SpecialCategory c) noexcept;

/// Streaming aggregator: feed each route's hop checks once.
class Aggregator {
 public:
  void add(const bgp::Route& route, const std::vector<verify::HopCheck>& hops);

  // --- Figure 2: per AS ---
  const std::map<Asn, StatusCounts>& as_imports() const noexcept { return as_imports_; }
  const std::map<Asn, StatusCounts>& as_exports() const noexcept { return as_exports_; }
  /// Combined (imports + exports) per AS.
  std::map<Asn, StatusCounts> as_combined() const;

  // --- Figure 3: per directed AS pair (from, to) ---
  const std::map<std::pair<Asn, Asn>, StatusCounts>& pair_imports() const noexcept {
    return pair_imports_;
  }
  const std::map<std::pair<Asn, Asn>, StatusCounts>& pair_exports() const noexcept {
    return pair_exports_;
  }

  // --- Figure 4: per route (all hops, both directions) ---
  const std::vector<StatusCounts>& routes() const noexcept { return routes_; }
  /// First-hop-only counts (the paper's route-leak discussion in §5.2).
  const StatusCounts& first_hops() const noexcept { return first_hops_; }

  // --- Figure 5: per AS, which unrecorded categories appeared ---
  const std::map<Asn, std::array<std::size_t, kUnrecordedCategoryCount>>& unrecorded()
      const noexcept {
    return unrecorded_;
  }

  // --- Figure 6: per AS, which special cases appeared ---
  const std::map<Asn, std::array<std::size_t, kSpecialCategoryCount>>& special_cases()
      const noexcept {
    return special_;
  }

  std::size_t total_checks() const noexcept { return total_checks_; }
  std::size_t total_routes() const noexcept { return routes_.size(); }

  /// Unverified checks whose items show no filter involvement — the
  /// relationship itself is undeclared ("no rules' peering covers the
  /// other AS", the paper's 98.98%).
  std::size_t unverified_checks() const noexcept { return unverified_checks_; }
  std::size_t unverified_peering_undeclared() const noexcept {
    return unverified_peering_undeclared_;
  }

 private:
  void add_check(Asn self, Asn from, Asn to, bool is_import,
                 const verify::CheckResult& check);

  std::map<Asn, StatusCounts> as_imports_;
  std::map<Asn, StatusCounts> as_exports_;
  std::map<std::pair<Asn, Asn>, StatusCounts> pair_imports_;
  std::map<std::pair<Asn, Asn>, StatusCounts> pair_exports_;
  std::vector<StatusCounts> routes_;
  StatusCounts first_hops_;
  std::map<Asn, std::array<std::size_t, kUnrecordedCategoryCount>> unrecorded_;
  std::map<Asn, std::array<std::size_t, kSpecialCategoryCount>> special_;
  std::size_t total_checks_ = 0;
  std::size_t unverified_checks_ = 0;
  std::size_t unverified_peering_undeclared_ = 0;
};

/// Prose-level summaries matching the paper's §5.2 claims.
struct Fig2Summary {
  std::size_t ases = 0;
  std::size_t all_same_status = 0;     // paper: 74.4%
  std::size_t all_verified = 0;        // paper: 14.2%
  std::size_t all_unrecorded = 0;      // paper: 51.6%
  std::size_t all_relaxed = 0;         // paper: 0.34%
  std::size_t all_safelisted = 0;      // paper: 6.9%
  std::size_t any_skip = 0;            // paper: 0.03%
  std::size_t any_unrecorded = 0;      // paper: 54.9%

  static Fig2Summary compute(const Aggregator& agg);
};

struct Fig3Summary {
  std::size_t pairs_import = 0;
  std::size_t pairs_import_single_status = 0;  // paper: 91.7%
  std::size_t pairs_export = 0;
  std::size_t pairs_export_single_status = 0;  // paper: 92%
  std::size_t pairs_with_unverified = 0;       // paper: 63.0% (of all pairs)
  std::size_t unverified_checks_peering_undeclared = 0;  // paper: 98.98%
  std::size_t unverified_checks_total = 0;

  static Fig3Summary compute(const Aggregator& agg);
};

struct Fig4Summary {
  std::size_t routes = 0;
  std::size_t single_status = 0;     // paper: 6.6%
  std::size_t single_verified = 0;   // paper: 1.6%
  std::size_t single_unrecorded = 0;  // paper: 3.0%
  std::size_t single_unverified = 0;  // paper: 1.6%

  static Fig4Summary compute(const Aggregator& agg);
};

}  // namespace rpslyzer::report
