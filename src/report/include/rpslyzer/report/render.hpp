#pragma once
// ASCII rendering of the paper's stacked-bar figures: each x position is an
// entity (AS, AS pair, or route) and the column shows the composition of
// its verification statuses, entities ordered by correctness — a terminal
// rendition of Figures 2, 3, and 4.

#include <string>
#include <vector>

#include "rpslyzer/report/aggregate.hpp"

namespace rpslyzer::report {

/// One character per status for the chart body.
char status_char(Status s) noexcept;

/// "V=verified s=skip U=unrecorded ..." legend line.
std::string render_legend();

/// Render entities as a `width`x`height` stacked chart. Entities are
/// downsampled into `width` columns (slices merged), ordered by
/// correctness (verified share, then relaxed, safelisted, skip,
/// unrecorded shares — the paper's x-axis ordering).
std::string render_stacked(std::vector<StatusCounts> entities, std::size_t width = 72,
                           std::size_t height = 16);

/// One-line composition summary "verified 29.3% | skip 0.0% | ...".
std::string render_composition(const StatusCounts& totals);

/// Simple two-column table helper used by the bench binaries.
std::string render_table(const std::vector<std::pair<std::string, std::string>>& rows,
                         std::size_t key_width = 44);

/// CSV export of a stacked-figure series: one row per entity (ordered by
/// correctness like the charts), columns = per-status fractions. Header:
/// "index,verified,skip,unrecorded,relaxed,safelisted,unverified,total".
/// Feed this to any plotting tool to redraw Figures 2-4.
std::string to_csv(std::vector<StatusCounts> entities);

}  // namespace rpslyzer::report
