#include "rpslyzer/report/render.hpp"

#include <algorithm>
#include <cstdio>

namespace rpslyzer::report {

char status_char(Status s) noexcept {
  switch (s) {
    case Status::kVerified:
      return 'V';
    case Status::kSkip:
      return 's';
    case Status::kUnrecorded:
      return 'U';
    case Status::kRelaxed:
      return 'r';
    case Status::kSafelisted:
      return 'S';
    case Status::kUnverified:
      return 'X';
  }
  return '?';
}

std::string render_legend() {
  return "V=verified  s=skip  U=unrecorded  r=relaxed  S=safelisted  X=unverified";
}

namespace {

/// Correctness key for the x-axis ordering (descending).
std::array<double, kStatusCount> order_key(const StatusCounts& c) {
  auto f = c.fractions();
  // verified, relaxed, safelisted, skip, unrecorded, unverified.
  return {f[static_cast<std::size_t>(Status::kVerified)],
          f[static_cast<std::size_t>(Status::kRelaxed)],
          f[static_cast<std::size_t>(Status::kSafelisted)],
          f[static_cast<std::size_t>(Status::kSkip)],
          f[static_cast<std::size_t>(Status::kUnrecorded)],
          f[static_cast<std::size_t>(Status::kUnverified)]};
}

}  // namespace

std::string render_stacked(std::vector<StatusCounts> entities, std::size_t width,
                           std::size_t height) {
  if (entities.empty() || width == 0 || height == 0) return "(no data)\n";
  std::sort(entities.begin(), entities.end(), [](const StatusCounts& a, const StatusCounts& b) {
    return order_key(a) > order_key(b);
  });
  if (width > entities.size()) width = entities.size();

  // Merge entities into `width` slices.
  std::vector<StatusCounts> columns(width);
  for (std::size_t i = 0; i < entities.size(); ++i) {
    const std::size_t column = i * width / entities.size();
    columns[column].merge(entities[i]);
  }

  // Paint each column bottom-up in status order.
  std::vector<std::string> grid(height, std::string(width, ' '));
  for (std::size_t x = 0; x < width; ++x) {
    auto fractions = columns[x].fractions();
    // Stack order bottom-to-top: verified, relaxed, safelisted, skip,
    // unrecorded, unverified (roughly the figures' color order).
    const Status order[] = {Status::kVerified,   Status::kRelaxed, Status::kSafelisted,
                            Status::kSkip,       Status::kUnrecorded,
                            Status::kUnverified};
    std::size_t row = 0;  // rows filled from the bottom
    double carried = 0.0;
    for (Status s : order) {
      carried += fractions[static_cast<std::size_t>(s)] * static_cast<double>(height);
      while (row < height && static_cast<double>(row) + 0.5 <= carried) {
        grid[height - 1 - row][x] = status_char(s);
        ++row;
      }
    }
    // Rounding slack: fill any leftover rows with the top-most status seen.
    while (row < height) {
      grid[height - 1 - row][x] = grid[row == 0 ? height - 1 : height - row][x];
      ++row;
    }
  }

  std::string out;
  for (const auto& line : grid) out += "|" + line + "|\n";
  out += "+" + std::string(width, '-') + "+\n";
  out += render_legend() + "\n";
  return out;
}

std::string render_composition(const StatusCounts& totals) {
  const std::size_t sum = totals.total();
  std::string out;
  char buf[64];
  const Status order[] = {Status::kVerified,   Status::kSkip,       Status::kUnrecorded,
                          Status::kRelaxed,    Status::kSafelisted, Status::kUnverified};
  for (Status s : order) {
    const double pct =
        sum == 0 ? 0.0
                 : 100.0 * static_cast<double>(totals.of(s)) / static_cast<double>(sum);
    std::snprintf(buf, sizeof buf, "%s %.1f%%", verify::to_string(s), pct);
    if (!out.empty()) out += " | ";
    out += buf;
  }
  return out;
}

std::string to_csv(std::vector<StatusCounts> entities) {
  std::sort(entities.begin(), entities.end(), [](const StatusCounts& a, const StatusCounts& b) {
    return order_key(a) > order_key(b);
  });
  std::string out = "index,verified,skip,unrecorded,relaxed,safelisted,unverified,total\n";
  char buf[160];
  for (std::size_t i = 0; i < entities.size(); ++i) {
    auto f = entities[i].fractions();
    std::snprintf(buf, sizeof buf, "%zu,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%zu\n", i,
                  f[std::size_t(Status::kVerified)], f[std::size_t(Status::kSkip)],
                  f[std::size_t(Status::kUnrecorded)], f[std::size_t(Status::kRelaxed)],
                  f[std::size_t(Status::kSafelisted)],
                  f[std::size_t(Status::kUnverified)], entities[i].total());
    out += buf;
  }
  return out;
}

std::string render_table(const std::vector<std::pair<std::string, std::string>>& rows,
                         std::size_t key_width) {
  std::string out;
  for (const auto& [key, value] : rows) {
    std::string padded = key;
    if (padded.size() < key_width) padded.append(key_width - padded.size(), ' ');
    out += "  " + padded + " " + value + "\n";
  }
  return out;
}

}  // namespace rpslyzer::report
