#include "rpslyzer/report/aggregate.hpp"

#include <optional>

namespace rpslyzer::report {

std::size_t StatusCounts::total() const noexcept {
  std::size_t sum = 0;
  for (std::size_t c : counts) sum += c;
  return sum;
}

bool StatusCounts::single_status(Status* which) const noexcept {
  int found = -1;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    if (found >= 0) return false;
    found = static_cast<int>(i);
  }
  if (found < 0) return false;
  if (which != nullptr) *which = static_cast<Status>(found);
  return true;
}

void StatusCounts::merge(const StatusCounts& other) noexcept {
  for (std::size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
}

std::array<double, kStatusCount> StatusCounts::fractions() const noexcept {
  std::array<double, kStatusCount> out{};
  const std::size_t sum = total();
  if (sum == 0) return out;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    out[i] = static_cast<double>(counts[i]) / static_cast<double>(sum);
  }
  return out;
}

const char* to_string(UnrecordedCategory c) noexcept {
  switch (c) {
    case UnrecordedCategory::kMissingAutNum:
      return "missing aut-num";
    case UnrecordedCategory::kNoRules:
      return "zero rules";
    case UnrecordedCategory::kZeroRouteAs:
      return "zero-route AS";
    case UnrecordedCategory::kMissingSet:
      return "missing set object";
  }
  return "unknown";
}

const char* to_string(SpecialCategory c) noexcept {
  switch (c) {
    case SpecialCategory::kExportSelf:
      return "export self";
    case SpecialCategory::kImportCustomer:
      return "import customer";
    case SpecialCategory::kMissingRoutes:
      return "missing routes";
    case SpecialCategory::kOnlyProviderPolicies:
      return "only provider policies";
    case SpecialCategory::kTier1Pair:
      return "Tier-1 peering";
    case SpecialCategory::kUphill:
      return "uphill propagation";
  }
  return "unknown";
}

namespace {

std::optional<UnrecordedCategory> unrecorded_category(verify::Reason reason) {
  using verify::Reason;
  switch (reason) {
    case Reason::kUnrecordedAutNum:
      return UnrecordedCategory::kMissingAutNum;
    case Reason::kUnrecordedNoRules:
      return UnrecordedCategory::kNoRules;
    case Reason::kUnrecordedZeroRouteAs:
      return UnrecordedCategory::kZeroRouteAs;
    case Reason::kUnrecordedAsSet:
    case Reason::kUnrecordedRouteSet:
    case Reason::kUnrecordedPeeringSet:
    case Reason::kUnrecordedFilterSet:
      return UnrecordedCategory::kMissingSet;
    default:
      return std::nullopt;
  }
}

std::optional<SpecialCategory> special_category(verify::Reason reason) {
  using verify::Reason;
  switch (reason) {
    case Reason::kRelaxedExportSelf:
      return SpecialCategory::kExportSelf;
    case Reason::kRelaxedImportCustomer:
      return SpecialCategory::kImportCustomer;
    case Reason::kRelaxedMissingRoutes:
      return SpecialCategory::kMissingRoutes;
    case Reason::kSpecCustomerOnlyProviderPolicies:
    case Reason::kSpecOtherOnlyProviderPolicies:
      return SpecialCategory::kOnlyProviderPolicies;
    case Reason::kSpecTier1Pair:
      return SpecialCategory::kTier1Pair;
    case Reason::kSpecUphill:
      return SpecialCategory::kUphill;
    default:
      return std::nullopt;
  }
}

}  // namespace

void Aggregator::add_check(Asn self, Asn from, Asn to, bool is_import,
                           const verify::CheckResult& check) {
  ++total_checks_;
  (is_import ? as_imports_[self] : as_exports_[self]).add(check.status);
  (is_import ? pair_imports_[{from, to}] : pair_exports_[{from, to}]).add(check.status);
  routes_.back().add(check.status);

  if (check.status == Status::kUnrecorded) {
    auto& categories = unrecorded_[self];
    for (const auto& item : check.items) {
      if (auto category = unrecorded_category(item.reason)) {
        ++categories[static_cast<std::size_t>(*category)];
      }
    }
  } else if (check.status == Status::kRelaxed || check.status == Status::kSafelisted) {
    auto& categories = special_[self];
    for (const auto& item : check.items) {
      if (auto category = special_category(item.reason)) {
        ++categories[static_cast<std::size_t>(*category)];
      }
    }
  } else if (check.status == Status::kUnverified) {
    ++unverified_checks_;
    bool filter_involved = false;
    for (const auto& item : check.items) {
      switch (item.reason) {
        case verify::Reason::kMatchFilter:
        case verify::Reason::kMatchFilterAsNum:
        case verify::Reason::kMatchFilterAsSet:
        case verify::Reason::kMatchFilterRouteSet:
        case verify::Reason::kMatchFilterPrefixes:
        case verify::Reason::kMatchFilterAsPath:
          filter_involved = true;
          break;
        default:
          break;
      }
    }
    if (!filter_involved) ++unverified_peering_undeclared_;
  }
}

void Aggregator::add(const bgp::Route& route, const std::vector<verify::HopCheck>& hops) {
  (void)route;
  routes_.emplace_back();
  for (const auto& hop : hops) {
    add_check(hop.from, hop.from, hop.to, /*is_import=*/false, hop.export_result);
    add_check(hop.to, hop.from, hop.to, /*is_import=*/true, hop.import_result);
  }
  // First hop = the origin-side pair, which is hops.front() (verify_route
  // emits origin side first).
  if (!hops.empty()) {
    first_hops_.add(hops.front().export_result.status);
    first_hops_.add(hops.front().import_result.status);
  }
}

std::map<Asn, StatusCounts> Aggregator::as_combined() const {
  std::map<Asn, StatusCounts> out = as_imports_;
  for (const auto& [asn, counts] : as_exports_) out[asn].merge(counts);
  return out;
}

Fig2Summary Fig2Summary::compute(const Aggregator& agg) {
  Fig2Summary out;
  for (const auto& [asn, counts] : agg.as_combined()) {
    ++out.ases;
    Status which;
    if (counts.single_status(&which)) {
      ++out.all_same_status;
      switch (which) {
        case Status::kVerified:
          ++out.all_verified;
          break;
        case Status::kUnrecorded:
          ++out.all_unrecorded;
          break;
        case Status::kRelaxed:
          ++out.all_relaxed;
          break;
        case Status::kSafelisted:
          ++out.all_safelisted;
          break;
        default:
          break;
      }
    }
    if (counts.of(Status::kSkip) > 0) ++out.any_skip;
    if (counts.of(Status::kUnrecorded) > 0) ++out.any_unrecorded;
  }
  return out;
}

Fig3Summary Fig3Summary::compute(const Aggregator& agg) {
  Fig3Summary out;
  // Single-status fractions are per direction (the paper: "For imports, we
  // find 91.7% of AS pairs have a single consistent status; this number is
  // 92% for exports"), while "pairs with unverified routes" looks at both
  // the export and the import side of the pair.
  for (const auto& [pair, counts] : agg.pair_imports()) {
    ++out.pairs_import;
    if (counts.single_status()) ++out.pairs_import_single_status;
    StatusCounts combined = counts;
    if (auto it = agg.pair_exports().find(pair); it != agg.pair_exports().end()) {
      combined.merge(it->second);
    }
    if (combined.of(Status::kUnverified) > 0) ++out.pairs_with_unverified;
  }
  for (const auto& [pair, counts] : agg.pair_exports()) {
    ++out.pairs_export;
    if (counts.single_status()) ++out.pairs_export_single_status;
  }
  out.unverified_checks_total = agg.unverified_checks();
  out.unverified_checks_peering_undeclared = agg.unverified_peering_undeclared();
  return out;
}

Fig4Summary Fig4Summary::compute(const Aggregator& agg) {
  Fig4Summary out;
  for (const auto& counts : agg.routes()) {
    ++out.routes;
    Status which;
    if (counts.single_status(&which)) {
      ++out.single_status;
      if (which == Status::kVerified) ++out.single_verified;
      if (which == Status::kUnrecorded) ++out.single_unrecorded;
      if (which == Status::kUnverified) ++out.single_unverified;
    }
  }
  return out;
}

}  // namespace rpslyzer::report
