#include "rpslyzer/relations/relations.hpp"

#include <algorithm>
#include <queue>

#include "rpslyzer/util/strings.hpp"

namespace rpslyzer::relations {

namespace {

bool vec_contains(const std::vector<Asn>& v, Asn x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

}  // namespace

const char* to_string(Relationship r) noexcept {
  switch (r) {
    case Relationship::kProvider:
      return "provider";
    case Relationship::kCustomer:
      return "customer";
    case Relationship::kPeer:
      return "peer";
    case Relationship::kNone:
      return "none";
  }
  return "none";
}

AsRelations AsRelations::parse(std::string_view text, util::Diagnostics& diagnostics) {
  AsRelations rel;
  std::size_t line_no = 0;
  for (auto line : util::split(text, '\n')) {
    ++line_no;
    line = util::trim(line);
    if (line.empty()) continue;
    if (line.front() == '#') {
      // "# inferred clique: 174 209 ..." / "# input clique: ...".
      const std::size_t colon = line.find(':');
      if (colon != std::string_view::npos &&
          (line.find("clique") != std::string_view::npos)) {
        std::vector<Asn> clique;
        for (auto token : util::split_ws(line.substr(colon + 1))) {
          if (auto asn = util::parse_u32(token)) clique.push_back(*asn);
        }
        if (!clique.empty()) rel.set_clique(std::move(clique));
      }
      continue;
    }
    auto fields = util::split(line, '|');
    if (fields.size() < 3) {
      diagnostics.error(util::DiagnosticKind::kSyntaxError,
                        "malformed relationship line: '" + std::string(line) + "'", {},
                        {"relationships", line_no});
      continue;
    }
    auto a = util::parse_u32(util::trim(fields[0]));
    auto b = util::parse_u32(util::trim(fields[1]));
    std::string_view rel_field = util::trim(fields[2]);
    if (!a || !b || rel_field.empty()) {
      diagnostics.error(util::DiagnosticKind::kSyntaxError,
                        "malformed relationship line: '" + std::string(line) + "'", {},
                        {"relationships", line_no});
      continue;
    }
    if (rel_field == "-1") {
      rel.add_provider_customer(*a, *b);
    } else if (rel_field == "0") {
      rel.add_peer_peer(*a, *b);
    } else {
      diagnostics.error(util::DiagnosticKind::kSyntaxError,
                        "unknown relationship type: '" + std::string(rel_field) + "'", {},
                        {"relationships", line_no});
    }
  }
  return rel;
}

void AsRelations::add_provider_customer(Asn provider, Asn customer) {
  if (vec_contains(customers_[provider], customer)) return;
  customers_[provider].push_back(customer);
  providers_[customer].push_back(provider);
  ++link_count_;
  invalidate_cache();
}

void AsRelations::add_peer_peer(Asn a, Asn b) {
  if (vec_contains(peers_[a], b)) return;
  peers_[a].push_back(b);
  peers_[b].push_back(a);
  ++link_count_;
  invalidate_cache();
}

void AsRelations::set_clique(std::vector<Asn> clique) {
  std::sort(clique.begin(), clique.end());
  clique.erase(std::unique(clique.begin(), clique.end()), clique.end());
  declared_clique_ = std::move(clique);
  invalidate_cache();
}

Relationship AsRelations::between(Asn a, Asn b) const {
  if (auto it = customers_.find(a); it != customers_.end() && vec_contains(it->second, b)) {
    return Relationship::kProvider;
  }
  if (auto it = providers_.find(a); it != providers_.end() && vec_contains(it->second, b)) {
    return Relationship::kCustomer;
  }
  if (auto it = peers_.find(a); it != peers_.end() && vec_contains(it->second, b)) {
    return Relationship::kPeer;
  }
  return Relationship::kNone;
}

namespace {

std::span<const Asn> lookup(const std::unordered_map<Asn, std::vector<Asn>>& map, Asn asn) {
  auto it = map.find(asn);
  if (it == map.end()) return {};
  return it->second;
}

}  // namespace

std::span<const Asn> AsRelations::providers_of(Asn asn) const { return lookup(providers_, asn); }
std::span<const Asn> AsRelations::customers_of(Asn asn) const { return lookup(customers_, asn); }
std::span<const Asn> AsRelations::peers_of(Asn asn) const { return lookup(peers_, asn); }

std::vector<Asn> AsRelations::customer_cone(Asn asn) const {
  std::vector<Asn> cone;
  std::unordered_set<Asn> seen{asn};
  std::queue<Asn> frontier;
  frontier.push(asn);
  while (!frontier.empty()) {
    Asn current = frontier.front();
    frontier.pop();
    for (Asn customer : customers_of(current)) {
      if (seen.insert(customer).second) {
        cone.push_back(customer);
        frontier.push(customer);
      }
    }
  }
  std::sort(cone.begin(), cone.end());
  return cone;
}

const std::vector<Asn>& AsRelations::tier1() const {
  if (tier1_cached_) return tier1_cache_;
  tier1_cached_ = true;
  if (!declared_clique_.empty()) {
    tier1_cache_ = declared_clique_;
    return tier1_cache_;
  }
  // Greedy clique over provider-free ASes: candidates sorted by peer degree
  // (descending); each is added if it peers with every member so far.
  std::vector<Asn> candidates;
  for (const auto& [asn, peer_list] : peers_) {
    if (providers_of(asn).empty() && !peer_list.empty()) candidates.push_back(asn);
  }
  std::sort(candidates.begin(), candidates.end(), [&](Asn a, Asn b) {
    const std::size_t da = peers_of(a).size();
    const std::size_t db = peers_of(b).size();
    return da != db ? da > db : a < b;
  });
  std::vector<Asn> clique;
  for (Asn candidate : candidates) {
    bool peers_with_all = true;
    for (Asn member : clique) {
      if (!are_peers(candidate, member)) {
        peers_with_all = false;
        break;
      }
    }
    if (peers_with_all) clique.push_back(candidate);
  }
  std::sort(clique.begin(), clique.end());
  tier1_cache_ = std::move(clique);
  return tier1_cache_;
}

bool AsRelations::is_tier1(Asn asn) const {
  const auto& clique = tier1();
  return std::binary_search(clique.begin(), clique.end(), asn);
}

std::vector<Asn> AsRelations::all_ases() const {
  std::unordered_set<Asn> set;
  for (const auto& [asn, list] : providers_) {
    set.insert(asn);
    set.insert(list.begin(), list.end());
  }
  for (const auto& [asn, list] : peers_) {
    set.insert(asn);
    set.insert(list.begin(), list.end());
  }
  std::vector<Asn> out(set.begin(), set.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::string AsRelations::to_serial1() const {
  std::string out;
  const auto& clique = tier1();
  if (!clique.empty()) {
    out += "# inferred clique:";
    for (Asn asn : clique) out += " " + std::to_string(asn);
    out += "\n";
  }
  // Deterministic order: sorted (a, b) pairs, p2c before p2p.
  std::vector<std::pair<Asn, Asn>> p2c;
  for (const auto& [provider, customer_list] : customers_) {
    for (Asn customer : customer_list) p2c.emplace_back(provider, customer);
  }
  std::sort(p2c.begin(), p2c.end());
  for (const auto& [provider, customer] : p2c) {
    out += std::to_string(provider) + "|" + std::to_string(customer) + "|-1\n";
  }
  std::vector<std::pair<Asn, Asn>> p2p;
  for (const auto& [a, peer_list] : peers_) {
    for (Asn b : peer_list) {
      if (a < b) p2p.emplace_back(a, b);
    }
  }
  std::sort(p2p.begin(), p2p.end());
  for (const auto& [a, b] : p2p) {
    out += std::to_string(a) + "|" + std::to_string(b) + "|0\n";
  }
  return out;
}

}  // namespace rpslyzer::relations
