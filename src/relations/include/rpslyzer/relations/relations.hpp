#pragma once
// AS business relationships (the paper's §5.1 checks "leverage the business
// relationship between each pair of ASes", sourced from CAIDA's inference
// database [46]).
//
// Parses CAIDA "serial-1" files: one `<a>|<b>|<rel>` line per link, where
// rel = -1 means a is a provider of b and rel = 0 means a and b peer.
// Comment lines start with '#'; the `# inferred clique:` (or `# input
// clique:`) comment, when present, names the Tier-1 clique. Without it, a
// greedy clique over provider-free ASes is computed.

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "rpslyzer/util/diagnostics.hpp"

namespace rpslyzer::relations {

using Asn = std::uint32_t;

/// Relationship of AS `a` toward AS `b`.
enum class Relationship : std::uint8_t {
  kProvider,  // a is a provider of b (a sells transit to b)
  kCustomer,  // a is a customer of b
  kPeer,      // settlement-free peers
  kNone,      // no known relationship
};

const char* to_string(Relationship r) noexcept;

class AsRelations {
 public:
  AsRelations() = default;

  /// Parse serial-1 text. Malformed lines raise diagnostics and are skipped.
  static AsRelations parse(std::string_view text, util::Diagnostics& diagnostics);

  /// Incremental construction (used by the synthetic Internet generator).
  void add_provider_customer(Asn provider, Asn customer);
  void add_peer_peer(Asn a, Asn b);
  /// Pre-size the adjacency tables for about `ases` networks — bulk loaders
  /// (the snapshot restore path) know the AS count up front and skip the
  /// incremental rehashing this avoids.
  void reserve(std::size_t ases) {
    providers_.reserve(ases);
    customers_.reserve(ases);
    peers_.reserve(ases);
  }
  /// Declare the Tier-1 clique explicitly (overrides inference).
  void set_clique(std::vector<Asn> clique);

  /// Relationship of `a` toward `b`.
  Relationship between(Asn a, Asn b) const;

  bool is_provider_of(Asn provider, Asn customer) const {
    return between(provider, customer) == Relationship::kProvider;
  }
  bool is_customer_of(Asn customer, Asn provider) const {
    return between(customer, provider) == Relationship::kCustomer;
  }
  bool are_peers(Asn a, Asn b) const { return between(a, b) == Relationship::kPeer; }

  std::span<const Asn> providers_of(Asn asn) const;
  std::span<const Asn> customers_of(Asn asn) const;
  std::span<const Asn> peers_of(Asn asn) const;

  /// Every AS in `asn`'s customer cone (its customers, their customers,
  /// ...), excluding `asn` itself. Sorted.
  std::vector<Asn> customer_cone(Asn asn) const;

  /// The Tier-1 clique: from the file's clique comment when present,
  /// otherwise a greedy peering clique over provider-free ASes.
  const std::vector<Asn>& tier1() const;
  bool is_tier1(Asn asn) const;

  /// All ASes appearing in any link. Sorted.
  std::vector<Asn> all_ases() const;
  std::size_t link_count() const noexcept { return link_count_; }

  /// Serialize back to serial-1 (deterministic order), including the
  /// clique comment. parse(to_serial1()) round-trips.
  std::string to_serial1() const;

 private:
  void invalidate_cache() const {
    tier1_cache_.clear();
    tier1_cached_ = false;
  }

  std::unordered_map<Asn, std::vector<Asn>> providers_;  // asn -> its providers
  std::unordered_map<Asn, std::vector<Asn>> customers_;  // asn -> its customers
  std::unordered_map<Asn, std::vector<Asn>> peers_;
  std::vector<Asn> declared_clique_;
  std::size_t link_count_ = 0;

  mutable std::vector<Asn> tier1_cache_;
  mutable bool tier1_cached_ = false;
};

}  // namespace rpslyzer::relations
