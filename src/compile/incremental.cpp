// Incremental snapshot rebuild (the delta pipeline's compile stage).
//
// build() lowers the whole corpus; build_incremental() lowers only the
// dirty set and copies everything else forward from the previous
// generation:
//
//  * clean as-set flattenings are seeded into the fresh index's memo, so
//    prewarm() resolves only the dirty flattening subgraph and
//    build_as_sets() — unchanged code — reproduces identical compiled
//    tables through cheap memo hits;
//  * the origin trie starts from the previous generation's entries and is
//    patched for origin-changed ASes only;
//  * clean route-set tries are copied; dirty ones re-run the expander;
//  * clean aut-nums'/filter-sets' AS-path NFAs are rehydrated from the
//    previous flat tables; customer cones are carried over whenever the
//    relation graph object is shared.
//
// The contract — enforced by tests/delta_test.cpp and
// scripts/delta_equiv_check.sh — is byte-identical observable behaviour
// versus a from-scratch build of the same corpus.

#include <chrono>

#include "rpslyzer/compile/snapshot.hpp"
#include "rpslyzer/obs/metrics.hpp"
#include "rpslyzer/obs/trace.hpp"

namespace rpslyzer::compile {

namespace detail {
std::uint64_t allocate_build_id();  // defined in snapshot.cpp
}  // namespace detail

std::shared_ptr<const CompiledPolicySnapshot> CompiledPolicySnapshot::build_incremental(
    std::shared_ptr<const irr::Index> index,
    std::shared_ptr<const relations::AsRelations> relations,
    const CompiledPolicySnapshot& previous, const DirtySet& dirty,
    IncrementalStats* stats) {
  IncrementalStats local;
  if (stats == nullptr) stats = &local;
  *stats = {};
  if (dirty.everything) {
    stats->full_rebuild = true;
    return build(std::move(index), std::move(relations));
  }

  obs::Span span("delta.compile");
  const auto start = std::chrono::steady_clock::now();

  // Seed clean flattenings from the previous (prewarmed, so reads are pure)
  // generation; prewarm() then walks only the dirty subgraph and leaves the
  // memo complete and untainted, keeping the serve-time thread-safety
  // contract identical to a full build.
  for (const auto& [name, set] : index->ir().as_sets) {
    if (dirty.as_sets.contains(name)) continue;
    if (const irr::FlattenedAsSet* flat = previous.index_->flattened(name)) {
      index->seed_flattened(name, *flat);
      ++stats->as_sets_seeded;
    }
  }
  index->prewarm();
  relations->tier1();

  std::shared_ptr<CompiledPolicySnapshot> snap(new CompiledPolicySnapshot());
  snap->index_ = std::move(index);
  snap->relations_ = std::move(relations);
  snap->build_id_ = detail::allocate_build_id();

  // Capacity (never content) carries across generations: names are
  // re-interned in deterministic build order so the persisted symbol
  // section cannot accumulate deleted names, but the interner's cell
  // arrays are pre-sized so the rebuild never rehashes mid-build.
  snap->symbols_.reserve(previous.interned_symbols());

  snap->build_as_sets();
  snap->build_origin_trie(&previous, &dirty);
  snap->build_route_sets(&previous, &dirty, stats);
  snap->build_aut_nums(&previous, &dirty, stats);

  snap->trie_nodes_ = snap->origins_.node_count();
  for (const auto& [id, set] : snap->route_sets_) {
    snap->trie_nodes_ += set.bases.node_count();
  }

  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
  auto& registry = obs::MetricsRegistry::global();
  static obs::Histogram& compile_seconds = registry.histogram(
      "rpslyzer_delta_compile_seconds", "Incremental snapshot rebuild duration",
      obs::exponential_bounds(1e-5, 4.0, 12));
  static obs::Gauge& interned = registry.gauge(
      "rpslyzer_compile_interned_symbols", "Interned set-name symbols in the latest snapshot");
  static obs::Gauge& nodes = registry.gauge(
      "rpslyzer_compile_trie_nodes", "Allocated prefix-trie nodes in the latest snapshot");
  compile_seconds.observe(elapsed.count());
  interned.set(static_cast<std::int64_t>(snap->interned_symbols()));
  nodes.set(static_cast<std::int64_t>(snap->trie_nodes_));

  return snap;
}

}  // namespace rpslyzer::compile
