#pragma once
// The compiled policy snapshot: a one-shot, immutable lowering of an
// irr::Index + relations::AsRelations into flat match structures, shared
// by the verifier, the query engine, and the server's generation swap.
//
// The interpreted path re-walks aut-num entry trees, lazily flattens
// as-sets under const (a latent data race when an un-prewarmed Index is
// shared), recompiles every AS-path regex per route, and re-derives
// customer cones and only-provider bits in per-Verifier caches. The
// snapshot does each of those exactly once at build time:
//
//  * set names interned into a symbol table; as-set membership flattened
//    (cycle-safe, via the Index's own resolution) into sorted ASN vectors;
//  * route objects loaded into a per-family binary prefix trie keyed by
//    base prefix, each node carrying its sorted origin ASNs;
//  * route-sets pre-expanded (cycle-safe) into a trie of base prefixes with
//    the stacked range-op length intervals pre-composed, leaving only the
//    query-time outer operator to apply;
//  * per-AS import/export rules lowered into flat CompiledRule arrays with
//    plain-ASN peer classes resolved for an O(log n) fast reject;
//  * AS-path regexes pre-lowered to the src/aspath predicate NFA;
//  * customer cones and the §5.1.2 only-provider bit computed per aut-num.
//
// Everything is const after build(); a shared_ptr<const
// CompiledPolicySnapshot> is safely shared across any number of threads
// with no prewarm dance. The behaviour contract — enforced by
// tests/compile_snapshot_test.cpp — is that verification verdicts are
// identical to the interpreted path, item for item.

#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "rpslyzer/aspath/engine.hpp"
#include "rpslyzer/irr/index.hpp"
#include "rpslyzer/net/prefix_trie.hpp"
#include "rpslyzer/relations/relations.hpp"
#include "rpslyzer/util/interner.hpp"

namespace rpslyzer::persist {
class SnapshotCodec;
}  // namespace rpslyzer::persist

namespace rpslyzer::compile {

using SymbolId = std::uint32_t;

/// A pre-flattened as-set (the compiled analogue of irr::FlattenedAsSet).
/// The member array is a span so the same struct serves both backings: an
/// in-process build points into the snapshot's ASN pools, an mmap-loaded
/// snapshot points straight into the read-only file mapping (zero copy).
struct CompiledAsSet {
  std::span<const ir::Asn> asns;  // sorted, unique
  bool contains_any = false;      // the erroneous ANY member appears
  /// Some member ASN originates at least one route object — precomputed so
  /// the all-zero-route Unknown case needs no per-query member loop.
  bool any_member_routes = false;

  bool contains(ir::Asn asn) const noexcept {
    auto it = std::lower_bound(asns.begin(), asns.end(), asn);
    return it != asns.end() && *it == asn;
  }
};

/// One pre-composed prefix-length selection: the fold of a member's own
/// range operator and every set-reference operator on the path down to it,
/// with only the query-time outer operator left to apply.
struct LengthInterval {
  std::uint8_t lo = 0;
  std::uint8_t hi = 0;

  friend bool operator==(const LengthInterval&, const LengthInterval&) = default;
};

/// A route-set pre-expanded to its base prefixes. Cycle back-edges are cut
/// (they contribute nothing new); missing referenced objects set `unknown`,
/// which is prefix-independent and therefore a build-time bit.
struct CompiledRouteSet {
  bool any = false;      // a reachable ANY member: every prefix matches
  bool unknown = false;  // some expansion path hit missing information
  net::PrefixTrie<std::span<const LengthInterval>> bases;
};

/// One import/export rule lowered for the hot loop. `rule` stays the source
/// of truth for full evaluation; the flat fields exist for the fast reject
/// of the overwhelmingly common "peering is a plain ASN list that does not
/// name this peer" case, which skips the whole entry-tree walk.
struct CompiledRule {
  const ir::Rule* rule = nullptr;
  bool covers_v4 = false;  // entry.covers_unicast(v4, mp), checked first
  bool covers_v6 = false;
  /// Top-level EntryTerm whose every peering is a plain-ASN PeeringSpec.
  /// Only then is the reject sound: structured entries and set peerings can
  /// produce other outcome classes or cross-factor item merges.
  bool simple = false;
  bool no_factors = false;             // empty term: NotApplicable, no items
  std::vector<ir::Asn> peers;          // sorted unique peer class
  std::vector<ir::Asn> no_match_asns;  // report order (factor order, deduped)
};

struct CompiledAutNum {
  const ir::AutNum* an = nullptr;
  std::vector<CompiledRule> imports;
  std::vector<CompiledRule> exports;
  std::span<const ir::Asn> customer_cone;  // sorted; export-self relaxation
  bool only_provider = false;              // §5.1.2 only-provider-policies bit
};

/// What an incremental rebuild must recompile: the transitive closure of
/// everything whose compiled form can differ from the previous generation
/// after a journal batch. Computed by the delta pipeline (src/delta) from
/// the merged-object diff; anything NOT listed here is reused verbatim from
/// the previous snapshot, so an under-approximated dirty set is a
/// correctness bug (the differential-equivalence harness exists to catch
/// exactly that).
struct DirtySet {
  /// Conservative fallback: ignore every other field and rebuild from
  /// scratch (used by the `delta.dirty` failpoint and any change the dirty
  /// analysis cannot bound).
  bool everything = false;
  /// The (prefix, origin) route key set changed: the origin trie is patched
  /// for `origins_changed` instead of copied wholesale.
  bool routes_changed = false;
  /// Closed under reverse membership edges: a dirty as-set dirties every
  /// set that references it.
  std::set<std::string, util::ILess> as_sets;
  /// Closed under reverse route-set references, including kAsn members of
  /// origin-changed ASes and kAsSet members of dirty as-sets.
  std::set<std::string, util::ILess> route_sets;
  std::set<std::string, util::ILess> filter_sets;
  /// aut-num objects whose merged form changed (their NFA tables cannot be
  /// paired with the previous generation's).
  std::set<ir::Asn> aut_nums;
  /// ASes whose route-object prefix set changed; sorted unique.
  std::vector<ir::Asn> origins_changed;

  std::size_t size() const noexcept {
    return as_sets.size() + route_sets.size() + filter_sets.size() + aut_nums.size() +
           origins_changed.size() + (routes_changed ? 1 : 0);
  }
};

/// What build_incremental() actually reused vs recompiled — surfaced
/// through `!stats`, rpslyzer_delta_* metrics, and the perf_delta gate.
struct IncrementalStats {
  bool full_rebuild = false;       // DirtySet::everything (or no previous)
  std::size_t as_sets_seeded = 0;  // flatten memo entries copied forward
  std::size_t route_sets_reused = 0;
  std::size_t route_sets_recompiled = 0;
  std::size_t regexes_reused = 0;      // NFA tables rehydrated from previous
  std::size_t regexes_recompiled = 0;  // Thompson constructions run
  std::size_t cones_reused = 0;
};

/// Does `asn` only specify rules for its providers (§5.1.2)? The canonical
/// definition shared by the snapshot build and the interpreted Verifier so
/// the two paths cannot drift: a transit AS (nonempty customer set) with an
/// aut-num whose every import/export peering is a plain ASN, at least one
/// such remote, and every remote a provider of `asn`.
bool only_provider_policies(const irr::Index& index,
                            const relations::AsRelations& relations, ir::Asn asn);

class CompiledPolicySnapshot : public aspath::AsSetMembership {
 public:
  /// Build a snapshot. Forces index->prewarm() and relations->tier1() so
  /// every lazily-memoized structure is materialized before sharing; the
  /// returned object performs no mutation after this returns. Honors the
  /// `compile.build` failpoint (error kind throws std::runtime_error, which
  /// the server's reload path quarantines to the last good generation).
  static std::shared_ptr<const CompiledPolicySnapshot> build(
      std::shared_ptr<const irr::Index> index,
      std::shared_ptr<const relations::AsRelations> relations);

  /// Incremental rebuild after a journal batch: recompiles only what
  /// `dirty` names and reuses everything else from `previous` — clean
  /// as-set flattenings are seeded into the new index's memo (so prewarm
  /// only walks the dirty subgraph), clean route-set tries and origin-trie
  /// entries are copied forward, customer cones are carried over whenever
  /// `relations` is the same object, and clean aut-nums' AS-path NFAs are
  /// rehydrated from the previous tables instead of re-running Thompson
  /// construction. The result must be observably byte-identical to
  /// build(index, relations) — the delta differential harness enforces
  /// this after every batch. dirty.everything falls back to build().
  static std::shared_ptr<const CompiledPolicySnapshot> build_incremental(
      std::shared_ptr<const irr::Index> index,
      std::shared_ptr<const relations::AsRelations> relations,
      const CompiledPolicySnapshot& previous, const DirtySet& dirty,
      IncrementalStats* stats = nullptr);

  const irr::Index& index() const noexcept { return *index_; }
  const relations::AsRelations& relations() const noexcept { return *relations_; }

  /// Monotone process-wide id for in-process builds; a snapshot restored
  /// from an arena file reports the id recorded at write time instead.
  std::uint64_t build_id() const noexcept { return build_id_; }
  std::size_t interned_symbols() const noexcept { return symbols_.size(); }
  /// Allocated nodes across the origin trie and every route-set trie.
  std::size_t trie_nodes() const noexcept { return trie_nodes_; }
  /// Where this snapshot came from: "memory" for in-process builds,
  /// "file:<path>" / "cache:<key>" when restored from an arena file by the
  /// persistence layer. Surfaced through the server's `!stats`.
  const std::string& source() const noexcept { return source_; }

  // --- the verifier's corpus surface (mirrors the interpreted Index) ---
  /// nullptr when the as-set is not defined.
  const CompiledAsSet* flattened(std::string_view name) const;
  const ir::PeeringSet* peering_set(std::string_view name) const {
    return index_->peering_set(name);
  }
  const ir::FilterSet* filter_set(std::string_view name) const {
    return index_->filter_set(name);
  }

  // aspath::AsSetMembership (backed by the compiled tables, so regex
  // matching never touches the Index's lazy memo):
  bool contains(std::string_view as_set, ir::Asn asn) const override;
  bool is_known(std::string_view as_set) const override;

  irr::Lookup origin_matches(ir::Asn asn, const net::RangeOp& op,
                             const net::Prefix& p) const;
  irr::Lookup as_set_originates(std::string_view name, const net::RangeOp& op,
                                const net::Prefix& p) const;
  irr::Lookup route_set_matches(std::string_view name, const net::RangeOp& outer,
                                const net::Prefix& p) const;

  /// AS-path filter match through the precompiled NFA (falling back to the
  /// backtracking engine for unsupported constructs), with this snapshot as
  /// the set-membership oracle.
  aspath::RegexMatch match_as_path(const ir::FilterAsPath& filter,
                                   std::span<const ir::Asn> path, ir::Asn peer) const;
  /// Precomputed ir::uses_skipped_constructs for the paper-faithful skips.
  bool as_path_skipped(const ir::FilterAsPath& filter) const;

  /// nullptr when no aut-num object exists for `asn`.
  const CompiledAutNum* compiled_aut_num(ir::Asn asn) const;

  /// Origin ASNs with a route object exactly at `prefix` (sorted); empty
  /// span when none. Drives the export-self relaxation without a cone loop.
  std::span<const ir::Asn> exact_origins(const net::Prefix& prefix) const;

 private:
  /// The persistence codec serializes the compiled tables into an arena
  /// file and reconstructs them (spans pointing into the mapping) without
  /// recompiling; it is the only writer besides build() itself.
  friend class rpslyzer::persist::SnapshotCodec;

  struct CompiledAsPath {
    aspath::CompiledRegex regex;
    bool skipped = false;  // ir::uses_skipped_constructs(filter.regex)
  };

  CompiledPolicySnapshot() = default;

  SymbolId intern(std::string_view name);
  std::optional<SymbolId> symbol(std::string_view name) const;
  // The build phases take an optional previous generation + dirty set; with
  // both null they are the from-scratch build() path, otherwise clean
  // structures are copied forward instead of recomputed.
  void build_as_sets();
  void build_origin_trie(const CompiledPolicySnapshot* previous = nullptr,
                         const DirtySet* dirty = nullptr);
  void build_route_sets(const CompiledPolicySnapshot* previous = nullptr,
                        const DirtySet* dirty = nullptr, IncrementalStats* stats = nullptr);
  void build_aut_nums(const CompiledPolicySnapshot* previous = nullptr,
                      const DirtySet* dirty = nullptr, IncrementalStats* stats = nullptr);
  void compile_filter(const ir::Filter& filter);
  CompiledRule compile_rule(const ir::Rule& rule) const;

  std::shared_ptr<const irr::Index> index_;
  std::shared_ptr<const relations::AsRelations> relations_;
  std::uint64_t build_id_ = 0;
  std::size_t trie_nodes_ = 0;
  std::string source_ = "memory";

  // Interned set names: fold-mode flat table (one id per case-insensitive
  // class, first-seen spelling kept, ids dense from 0 in intern order) —
  // the same id assignment the old IHash-keyed map + name vector produced,
  // so the persisted symbol-section layout (id = position) is unchanged.
  // Reused capacity (not content) carries across build_incremental
  // generations via reserve(); content must be re-interned per generation
  // or deleted names would linger in the persisted symbols section.
  util::SymbolTable symbols_{util::SymbolTable::Mode::kCaseFold};

  std::unordered_map<SymbolId, CompiledAsSet> as_sets_;
  std::unordered_map<SymbolId, CompiledRouteSet> route_sets_;

  // Route objects: base prefix -> sorted unique origin ASNs.
  net::PrefixTrie<std::span<const ir::Asn>> origins_;

  std::unordered_map<const ir::FilterAsPath*, CompiledAsPath> regexes_;
  std::unordered_map<ir::Asn, CompiledAutNum> aut_nums_;

  // Backing storage for every span above when the snapshot is built in
  // process. Each pool is reserved to its exact final size before the first
  // span into it is taken (vector growth would invalidate them); an
  // mmap-restored snapshot leaves the pools empty and points the spans into
  // the file mapping instead, whose lifetime the persistence layer ties to
  // this object via an aliasing shared_ptr.
  std::vector<ir::Asn> as_set_pool_;
  std::vector<ir::Asn> origin_pool_;
  std::vector<ir::Asn> cone_pool_;
  std::vector<LengthInterval> interval_pool_;
};

}  // namespace rpslyzer::compile
