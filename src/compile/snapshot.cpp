#include "rpslyzer/compile/snapshot.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <stdexcept>
#include <unordered_set>

#include "rpslyzer/ir/policy.hpp"
#include "rpslyzer/obs/metrics.hpp"
#include "rpslyzer/obs/trace.hpp"
#include "rpslyzer/util/failpoint.hpp"
#include "rpslyzer/util/strings.hpp"

namespace rpslyzer::compile {

namespace {

namespace fp = util::failpoint;

using net::Prefix;
using net::RangeOp;

/// Two sorted unique vectors share an element?
bool intersects(std::span<const ir::Asn> a, std::span<const ir::Asn> b) {
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return true;
    if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

/// All remote ASNs named by plain-ASN peerings of this entry. False when
/// any peering is not a plain ASN (sets and AS-ANY mean the AS maintains
/// policies beyond a fixed provider list). Shared §5.1.2 primitive.
bool collect_peering_asns(const ir::Entry& entry, std::vector<ir::Asn>& out) {
  return std::visit(
      util::overloaded{
          [&](const ir::EntryTerm& term) {
            for (const auto& factor : term.factors) {
              for (const auto& pa : factor.peerings) {
                const auto* spec = std::get_if<ir::PeeringSpec>(&pa.peering.node);
                if (spec == nullptr) return false;
                const auto* asn = std::get_if<ir::AsExprAsn>(&spec->as_expr.node);
                if (asn == nullptr) return false;
                out.push_back(asn->asn);
              }
            }
            return true;
          },
          [&](const ir::EntryExcept& e) {
            return collect_peering_asns(*e.left, out) && collect_peering_asns(*e.right, out);
          },
          [&](const ir::EntryRefine& e) {
            return collect_peering_asns(*e.left, out) && collect_peering_asns(*e.right, out);
          },
      },
      entry.node);
}

}  // namespace

namespace detail {

// Shared by build() and build_incremental() (incremental.cpp): one
// monotone process-wide id sequence for in-process snapshot builds.
std::uint64_t allocate_build_id() {
  static std::atomic<std::uint64_t> next_build_id{0};
  return next_build_id.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace detail

bool only_provider_policies(const irr::Index& index,
                            const relations::AsRelations& relations, ir::Asn asn) {
  // §5.1.2 scopes this to transit ASes ("46 transit ASes only specify rules
  // for their providers"); edge networks with provider-only rules are the
  // normal case, not a safelist.
  const ir::AutNum* an = relations.customers_of(asn).empty() ? nullptr : index.aut_num(asn);
  if (an == nullptr) return false;
  std::vector<ir::Asn> remotes;
  for (const auto* rules : {&an->imports, &an->exports}) {
    for (const auto& rule : *rules) {
      if (!collect_peering_asns(rule.entry, remotes)) return false;
    }
  }
  if (remotes.empty()) return false;
  for (ir::Asn remote : remotes) {
    if (!relations.is_customer_of(asn, remote)) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Build
// ---------------------------------------------------------------------------

std::shared_ptr<const CompiledPolicySnapshot> CompiledPolicySnapshot::build(
    std::shared_ptr<const irr::Index> index,
    std::shared_ptr<const relations::AsRelations> relations) {
  if (auto hit = fp::hit("compile.build"); hit.is_error()) {
    throw std::runtime_error("compile.build failpoint: " + hit.message);
  }
  obs::Span span("compile.build");
  const auto start = std::chrono::steady_clock::now();

  // Materialize every lazily-memoized structure while we are still the only
  // owner; afterwards all Index/AsRelations queries the snapshot forwards
  // are pure reads.
  index->prewarm();
  relations->tier1();

  std::shared_ptr<CompiledPolicySnapshot> snap(new CompiledPolicySnapshot());
  snap->index_ = std::move(index);
  snap->relations_ = std::move(relations);
  snap->build_id_ = detail::allocate_build_id();

  snap->build_as_sets();
  snap->build_origin_trie();
  snap->build_route_sets();
  snap->build_aut_nums();

  snap->trie_nodes_ = snap->origins_.node_count();
  for (const auto& [id, set] : snap->route_sets_) {
    snap->trie_nodes_ += set.bases.node_count();
  }

  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
  auto& registry = obs::MetricsRegistry::global();
  static obs::Histogram& build_seconds = registry.histogram(
      "rpslyzer_compile_build_seconds", "Compiled-policy-snapshot build duration",
      obs::exponential_bounds(1e-4, 4.0, 12));
  static obs::Gauge& interned = registry.gauge(
      "rpslyzer_compile_interned_symbols", "Interned set-name symbols in the latest snapshot");
  static obs::Gauge& nodes = registry.gauge(
      "rpslyzer_compile_trie_nodes", "Allocated prefix-trie nodes in the latest snapshot");
  build_seconds.observe(elapsed.count());
  interned.set(static_cast<std::int64_t>(snap->interned_symbols()));
  nodes.set(static_cast<std::int64_t>(snap->trie_nodes_));

  return snap;
}

SymbolId CompiledPolicySnapshot::intern(std::string_view name) {
  return symbols_.intern(name).id;
}

std::optional<SymbolId> CompiledPolicySnapshot::symbol(std::string_view name) const {
  const std::optional<util::Symbol> s = symbols_.find(name);  // case-insensitive
  if (!s) return std::nullopt;
  return s->id;
}

void CompiledPolicySnapshot::build_as_sets() {
  // Pass 1 sizes the pool exactly: spans into it are taken in pass 2 and
  // must never be invalidated by reallocation.
  std::size_t total = 0;
  for (const auto& [name, set] : index_->ir().as_sets) {
    if (const irr::FlattenedAsSet* flat = index_->flattened(name)) total += flat->asns.size();
  }
  as_set_pool_.reserve(total);
  for (const auto& [name, set] : index_->ir().as_sets) {
    const irr::FlattenedAsSet* flat = index_->flattened(name);
    if (flat == nullptr) continue;  // unreachable post-prewarm; stay safe
    CompiledAsSet compiled;
    const std::size_t offset = as_set_pool_.size();
    as_set_pool_.insert(as_set_pool_.end(), flat->asns.begin(), flat->asns.end());
    compiled.asns = std::span<const ir::Asn>(as_set_pool_).subspan(offset, flat->asns.size());
    compiled.contains_any = flat->contains_any;
    for (ir::Asn asn : compiled.asns) {
      if (index_->has_routes(asn)) {
        compiled.any_member_routes = true;
        break;
      }
    }
    as_sets_.emplace(intern(name), std::move(compiled));
  }
}

void CompiledPolicySnapshot::build_origin_trie(const CompiledPolicySnapshot* previous,
                                               const DirtySet* dirty) {
  // PrefixTrie::insert overwrites, so accumulate per-prefix origin lists
  // first and insert each base exactly once.
  std::map<Prefix, std::vector<ir::Asn>> acc;
  if (previous != nullptr && dirty != nullptr) {
    // Incremental: start from the previous generation's trie (its lists are
    // already sorted unique) and patch only the origin-changed ASes —
    // remove their old prefixes, insert their new ones. Every untouched
    // (prefix, origins) entry is carried over verbatim.
    previous->origins_.for_each([&](const Prefix& base, std::span<const ir::Asn> origins) {
      acc.emplace(base, std::vector<ir::Asn>(origins.begin(), origins.end()));
    });
    if (dirty->routes_changed) {
      for (ir::Asn asn : dirty->origins_changed) {
        for (const Prefix& base : previous->index_->origins_of(asn)) {
          auto it = acc.find(base);
          if (it == acc.end()) continue;
          auto pos = std::lower_bound(it->second.begin(), it->second.end(), asn);
          if (pos != it->second.end() && *pos == asn) it->second.erase(pos);
          if (it->second.empty()) acc.erase(it);
        }
        for (const Prefix& base : index_->origins_of(asn)) {
          auto& origins = acc[base];
          auto pos = std::lower_bound(origins.begin(), origins.end(), asn);
          if (pos == origins.end() || *pos != asn) origins.insert(pos, asn);
        }
      }
    }
  } else {
    for (const ir::RouteObject& r : index_->ir().routes) acc[r.prefix].push_back(r.origin);
    for (auto& [prefix, origins] : acc) {
      std::sort(origins.begin(), origins.end());
      origins.erase(std::unique(origins.begin(), origins.end()), origins.end());
    }
  }
  std::size_t total = 0;
  for (const auto& [prefix, origins] : acc) total += origins.size();
  origin_pool_.reserve(total);
  for (const auto& [prefix, origins] : acc) {
    const std::size_t offset = origin_pool_.size();
    origin_pool_.insert(origin_pool_.end(), origins.begin(), origins.end());
    origins_.insert(prefix,
                    std::span<const ir::Asn>(origin_pool_).subspan(offset, origins.size()));
  }
}

namespace {

/// Accumulator for one route-set expansion: base prefix -> pre-outer
/// length intervals (deduped at insertion into the trie).
using BaseAccumulator = std::map<Prefix, std::vector<LengthInterval>>;

/// Record base^own with `chain` (innermost first, outer excluded) folded on
/// top. Dead selections (empty interval) are dropped, mirroring
/// matches_with_chain returning false for every prefix.
void add_base(BaseAccumulator& acc, const Prefix& base, const RangeOp& own,
              std::span<const RangeOp> chain) {
  auto interval = net::length_interval(own, base.length(), base.family());
  const std::uint8_t family_max = base.max_length();
  for (const RangeOp& op : chain) {
    if (!interval) return;
    interval = net::step_interval(*interval, op, family_max);
  }
  if (!interval) return;
  acc[base].push_back({interval->first, interval->second});
}

}  // namespace

void CompiledPolicySnapshot::build_route_sets(const CompiledPolicySnapshot* previous,
                                              const DirtySet* dirty,
                                              IncrementalStats* stats) {
  const ir::Ir& ir = index_->ir();

  // member-of reverse map for route objects (the Index keeps its own copy
  // private): canon set symbol -> indices into ir.routes.
  std::unordered_map<ir::Symbol, std::vector<std::size_t>> member_of;
  for (std::size_t i = 0; i < ir.routes.size(); ++i) {
    for (const ir::Symbol set_name : ir.routes[i].member_of) {
      member_of[ir::symbols().canon(set_name)].push_back(i);
    }
  }

  // Expansion mirrors Index::route_set_matches_rec with the query-time
  // prefix abstracted away: matches become (base, pre-outer interval)
  // entries, unknown contributions become the static `unknown` bit (they
  // are all prefix-independent), cycles are cut.
  struct Expander {
    const CompiledPolicySnapshot& snap;
    const ir::Ir& ir;
    const decltype(member_of)& members_by_ref;

    void expand(const ir::RouteSet& set, std::vector<RangeOp>& chain, CompiledRouteSet& out,
                BaseAccumulator& acc, std::unordered_set<ir::Symbol>& visiting) const {
      for (const auto* list : {&set.members, &set.mp_members}) {
        for (const auto& member : *list) {
          switch (member.kind) {
            case ir::RouteSetMember::Kind::kAny:
              out.any = true;
              break;
            case ir::RouteSetMember::Kind::kPrefix:
              add_base(acc, member.prefix.prefix, member.prefix.op, chain);
              break;
            case ir::RouteSetMember::Kind::kAsn: {
              std::span<const Prefix> prefixes = snap.index_->origins_of(member.asn);
              if (prefixes.empty()) {
                out.unknown = true;  // zero-route AS: missing information
              } else {
                for (const Prefix& base : prefixes) add_base(acc, base, member.op, chain);
              }
              break;
            }
            case ir::RouteSetMember::Kind::kAsSet: {
              const CompiledAsSet* flat = snap.flattened(ir::sym_view(member.name));
              if (flat == nullptr) {
                out.unknown = true;
                break;
              }
              bool any_routes = false;
              for (ir::Asn asn : flat->asns) {
                std::span<const Prefix> prefixes = snap.index_->origins_of(asn);
                if (prefixes.empty()) continue;
                any_routes = true;
                for (const Prefix& base : prefixes) add_base(acc, base, member.op, chain);
              }
              if (!any_routes && !flat->asns.empty()) out.unknown = true;
              break;
            }
            case ir::RouteSetMember::Kind::kRouteSet: {
              const ir::Symbol member_key = ir::symbols().canon(member.name);
              if (visiting.contains(member_key)) break;  // cycle: nothing new
              const ir::RouteSet* child = snap.index_->route_set(ir::sym_view(member.name));
              if (child == nullptr) {
                out.unknown = true;
                break;
              }
              visiting.insert(member_key);
              // The member's operator applies to the child set first, then
              // the current chain stacks on top (innermost first).
              std::vector<RangeOp> child_chain;
              if (!member.op.is_none()) child_chain.push_back(member.op);
              child_chain.insert(child_chain.end(), chain.begin(), chain.end());
              expand(*child, child_chain, out, acc, visiting);
              visiting.erase(member_key);
              break;
            }
          }
        }
      }

      // Indirect members by reference: route objects naming this set in
      // member-of, admitted by the set's mbrs-by-ref maintainer list.
      if (!set.mbrs_by_ref.empty()) {
        if (auto it = members_by_ref.find(ir::symbols().canon(set.name));
            it != members_by_ref.end()) {
          for (std::size_t idx : it->second) {
            const ir::RouteObject& r = ir.routes[idx];
            if (irr::mbrs_by_ref_allows(set.mbrs_by_ref, r.mnt_by)) {
              add_base(acc, r.prefix, RangeOp::none(), chain);
            }
          }
        }
      }
    }
  };

  // Stage every expansion first so the interval pool can be reserved to its
  // exact size before any span into it is handed to a trie.
  Expander expander{*this, ir, member_of};
  std::vector<std::pair<CompiledRouteSet, BaseAccumulator>> staged;
  staged.reserve(ir.route_sets.size());
  std::size_t total = 0;
  for (const auto& [name, set] : ir.route_sets) {
    CompiledRouteSet compiled;
    BaseAccumulator acc;
    // Incremental: a clean route-set's expansion cannot have changed, so
    // its staged form is reconstructed from the previous generation's trie
    // (already sorted unique) instead of re-running the expander.
    const CompiledRouteSet* reusable = nullptr;
    if (previous != nullptr && dirty != nullptr && !dirty->route_sets.contains(name)) {
      if (const std::optional<SymbolId> id = previous->symbol(name)) {
        auto it = previous->route_sets_.find(*id);
        if (it != previous->route_sets_.end()) reusable = &it->second;
      }
    }
    if (reusable != nullptr) {
      compiled.any = reusable->any;
      compiled.unknown = reusable->unknown;
      reusable->bases.for_each(
          [&](const Prefix& base, std::span<const LengthInterval> intervals) {
            acc.emplace(base,
                        std::vector<LengthInterval>(intervals.begin(), intervals.end()));
          });
      for (const auto& [base, intervals] : acc) total += intervals.size();
      if (stats != nullptr) ++stats->route_sets_reused;
    } else {
      std::unordered_set<ir::Symbol> visiting;
      visiting.insert(ir::symbols().canon(set.name));
      std::vector<RangeOp> chain;
      expander.expand(set, chain, compiled, acc, visiting);
      for (auto& [base, intervals] : acc) {
        std::sort(intervals.begin(), intervals.end(),
                  [](const LengthInterval& a, const LengthInterval& b) {
                    return a.lo != b.lo ? a.lo < b.lo : a.hi < b.hi;
                  });
        intervals.erase(std::unique(intervals.begin(), intervals.end()), intervals.end());
        total += intervals.size();
      }
      if (stats != nullptr) ++stats->route_sets_recompiled;
    }
    staged.emplace_back(std::move(compiled), std::move(acc));
  }
  interval_pool_.reserve(total);
  std::size_t i = 0;
  for (const auto& [name, set] : ir.route_sets) {
    auto& [compiled, acc] = staged[i++];
    for (const auto& [base, intervals] : acc) {
      const std::size_t offset = interval_pool_.size();
      interval_pool_.insert(interval_pool_.end(), intervals.begin(), intervals.end());
      compiled.bases.insert(base, std::span<const LengthInterval>(interval_pool_)
                                      .subspan(offset, intervals.size()));
    }
    route_sets_.emplace(intern(name), std::move(compiled));
  }
}

void CompiledPolicySnapshot::compile_filter(const ir::Filter& filter) {
  std::visit(util::overloaded{
                 [&](const ir::FilterAsPath& f) {
                   if (regexes_.contains(&f)) return;
                   CompiledAsPath compiled{aspath::CompiledRegex(f.regex),
                                           ir::uses_skipped_constructs(f.regex)};
                   regexes_.emplace(&f, std::move(compiled));
                 },
                 [&](const ir::FilterAnd& f) {
                   compile_filter(*f.left);
                   compile_filter(*f.right);
                 },
                 [&](const ir::FilterOr& f) {
                   compile_filter(*f.left);
                   compile_filter(*f.right);
                 },
                 [&](const ir::FilterNot& f) { compile_filter(*f.inner); },
                 [&](const auto&) {},
             },
             filter.node);
}

namespace {

/// Visit every filter reachable in an entry tree.
template <typename Fn>
void for_each_filter(const ir::Entry& entry, Fn&& fn) {
  std::visit(util::overloaded{
                 [&](const ir::EntryTerm& term) {
                   for (const auto& factor : term.factors) fn(factor.filter);
                 },
                 [&](const ir::EntryExcept& e) {
                   for_each_filter(*e.left, fn);
                   for_each_filter(*e.right, fn);
                 },
                 [&](const ir::EntryRefine& e) {
                   for_each_filter(*e.left, fn);
                   for_each_filter(*e.right, fn);
                 },
             },
             entry.node);
}

/// Collect every FilterAsPath in `filter`, in the exact traversal order
/// compile_filter uses. Two parses of identical policy text yield
/// identical sequences, which is what lets the incremental build pair a
/// clean aut-num's filters with the previous generation's positionally.
void collect_as_paths(const ir::Filter& filter, std::vector<const ir::FilterAsPath*>& out) {
  std::visit(util::overloaded{
                 [&](const ir::FilterAsPath& f) { out.push_back(&f); },
                 [&](const ir::FilterAnd& f) {
                   collect_as_paths(*f.left, out);
                   collect_as_paths(*f.right, out);
                 },
                 [&](const ir::FilterOr& f) {
                   collect_as_paths(*f.left, out);
                   collect_as_paths(*f.right, out);
                 },
                 [&](const ir::FilterNot& f) { collect_as_paths(*f.inner, out); },
                 [&](const auto&) {},
             },
             filter.node);
}

std::vector<const ir::FilterAsPath*> collect_as_paths(const ir::AutNum& an) {
  std::vector<const ir::FilterAsPath*> out;
  for (const auto* rules : {&an.imports, &an.exports}) {
    for (const ir::Rule& rule : *rules) {
      for_each_filter(rule.entry, [&](const ir::Filter& f) { collect_as_paths(f, out); });
    }
  }
  return out;
}

std::vector<const ir::FilterAsPath*> collect_as_paths(const ir::FilterSet& set) {
  std::vector<const ir::FilterAsPath*> out;
  if (set.has_filter) collect_as_paths(set.filter, out);
  if (set.has_mp_filter) collect_as_paths(set.mp_filter, out);
  return out;
}

}  // namespace

CompiledRule CompiledPolicySnapshot::compile_rule(const ir::Rule& rule) const {
  CompiledRule out;
  out.rule = &rule;
  out.covers_v4 = rule.entry.covers_unicast(net::Family::kIpv4, rule.mp);
  out.covers_v6 = rule.entry.covers_unicast(net::Family::kIpv6, rule.mp);
  const auto* term = std::get_if<ir::EntryTerm>(&rule.entry.node);
  if (term == nullptr) return out;  // structured entry: always fully evaluated
  out.no_factors = term->factors.empty();
  for (const auto& factor : term->factors) {
    for (const auto& pa : factor.peerings) {
      const auto* spec = std::get_if<ir::PeeringSpec>(&pa.peering.node);
      const auto* asn = spec != nullptr ? std::get_if<ir::AsExprAsn>(&spec->as_expr.node)
                                        : nullptr;
      if (asn == nullptr) {
        out.no_match_asns.clear();
        return out;  // simple stays false
      }
      // Report order mirrors the interpreted item merge: factor order,
      // first occurrence wins (append() dedups).
      if (std::find(out.no_match_asns.begin(), out.no_match_asns.end(), asn->asn) ==
          out.no_match_asns.end()) {
        out.no_match_asns.push_back(asn->asn);
      }
    }
  }
  out.simple = true;
  out.peers = out.no_match_asns;
  std::sort(out.peers.begin(), out.peers.end());
  return out;
}

void CompiledPolicySnapshot::build_aut_nums(const CompiledPolicySnapshot* previous,
                                            const DirtySet* dirty,
                                            IncrementalStats* stats) {
  // Incremental: rehydrate clean objects' AS-path NFAs from the previous
  // generation's flat tables (image() -> CompiledRegex skips Thompson
  // construction) before the compile loop runs; compile_filter's
  // regexes_.contains() check then skips recompilation. Pairing is
  // positional over the deterministic filter walk, guarded by a merged-
  // object equality re-check so a missed dirty entry degrades to a
  // recompile, never to a stale automaton.
  if (previous != nullptr && dirty != nullptr) {
    auto seed_pairs = [&](const std::vector<const ir::FilterAsPath*>& olds,
                          const std::vector<const ir::FilterAsPath*>& news) {
      if (olds.size() != news.size()) return;
      for (std::size_t i = 0; i < news.size(); ++i) {
        if (regexes_.contains(news[i])) continue;
        auto it = previous->regexes_.find(olds[i]);
        if (it == previous->regexes_.end() || !it->second.regex.supported()) continue;
        regexes_.emplace(news[i],
                         CompiledAsPath{aspath::CompiledRegex(it->second.regex.image()),
                                        it->second.skipped});
        if (stats != nullptr) ++stats->regexes_reused;
      }
    };
    for (const auto& [asn, an] : index_->ir().aut_nums) {
      if (dirty->aut_nums.contains(asn)) continue;
      const ir::AutNum* prev_an = previous->index_->aut_num(asn);
      if (prev_an == nullptr || !(*prev_an == an)) continue;
      seed_pairs(collect_as_paths(*prev_an), collect_as_paths(an));
    }
    for (const auto& [name, set] : index_->ir().filter_sets) {
      if (dirty->filter_sets.contains(name)) continue;
      const ir::FilterSet* prev_fs = previous->index_->filter_set(name);
      if (prev_fs == nullptr || !(*prev_fs == set)) continue;
      seed_pairs(collect_as_paths(*prev_fs), collect_as_paths(set));
    }
  }

  // Materialize every cone first so the pool reserves exactly once (spans
  // into a growing vector would dangle). Cones depend only on the relation
  // graph, so when the incremental build shares the previous generation's
  // AsRelations the previous cone span is copied instead of re-deriving.
  const bool reuse_cones =
      previous != nullptr && previous->relations_.get() == relations_.get();
  std::vector<std::vector<ir::Asn>> cones;
  cones.reserve(index_->ir().aut_nums.size());
  std::size_t total = 0;
  for (const auto& [asn, an] : index_->ir().aut_nums) {
    const CompiledAutNum* prev_can =
        reuse_cones ? previous->compiled_aut_num(asn) : nullptr;
    if (prev_can != nullptr) {
      cones.emplace_back(prev_can->customer_cone.begin(), prev_can->customer_cone.end());
      if (stats != nullptr) ++stats->cones_reused;
    } else {
      cones.push_back(relations_->customer_cone(asn));
    }
    total += cones.back().size();
  }
  cone_pool_.reserve(total);
  std::size_t i = 0;
  for (const auto& [asn, an] : index_->ir().aut_nums) {
    CompiledAutNum compiled;
    compiled.an = &an;
    compiled.imports.reserve(an.imports.size());
    compiled.exports.reserve(an.exports.size());
    for (const ir::Rule& rule : an.imports) {
      compiled.imports.push_back(compile_rule(rule));
      for_each_filter(rule.entry, [&](const ir::Filter& f) { compile_filter(f); });
    }
    for (const ir::Rule& rule : an.exports) {
      compiled.exports.push_back(compile_rule(rule));
      for_each_filter(rule.entry, [&](const ir::Filter& f) { compile_filter(f); });
    }
    const std::vector<ir::Asn>& cone = cones[i++];
    const std::size_t offset = cone_pool_.size();
    cone_pool_.insert(cone_pool_.end(), cone.begin(), cone.end());
    compiled.customer_cone = std::span<const ir::Asn>(cone_pool_).subspan(offset, cone.size());
    compiled.only_provider = only_provider_policies(*index_, *relations_, asn);
    aut_nums_.emplace(asn, std::move(compiled));
  }
  // Filter-set bodies are reached by name at evaluation time; precompile
  // their regexes too so the hot path never falls back to per-call NFA
  // construction.
  for (const auto& [name, set] : index_->ir().filter_sets) {
    if (set.has_filter) compile_filter(set.filter);
    if (set.has_mp_filter) compile_filter(set.mp_filter);
  }
  if (stats != nullptr) {
    stats->regexes_recompiled = regexes_.size() - stats->regexes_reused;
  }
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

const CompiledAsSet* CompiledPolicySnapshot::flattened(std::string_view name) const {
  const std::optional<SymbolId> id = symbol(name);
  if (!id) return nullptr;
  auto it = as_sets_.find(*id);
  return it == as_sets_.end() ? nullptr : &it->second;
}

bool CompiledPolicySnapshot::contains(std::string_view as_set, ir::Asn asn) const {
  const CompiledAsSet* flat = flattened(as_set);
  return flat != nullptr && flat->contains(asn);
}

bool CompiledPolicySnapshot::is_known(std::string_view as_set) const {
  return index_->is_known(as_set);
}

irr::Lookup CompiledPolicySnapshot::origin_matches(ir::Asn asn, const net::RangeOp& op,
                                                   const net::Prefix& p) const {
  if (!index_->has_routes(asn)) return irr::Lookup::kUnknown;  // zero-route AS
  bool hit = false;
  origins_.for_each_cover(p, [&](const Prefix& base, std::span<const ir::Asn> origins) {
    if (std::binary_search(origins.begin(), origins.end(), asn) &&
        net::matches_with_chain(base, op, {}, p)) {
      hit = true;
      return false;
    }
    return true;
  });
  return hit ? irr::Lookup::kMatch : irr::Lookup::kNoMatch;
}

irr::Lookup CompiledPolicySnapshot::as_set_originates(std::string_view name,
                                                      const net::RangeOp& op,
                                                      const net::Prefix& p) const {
  const CompiledAsSet* flat = flattened(name);
  if (flat == nullptr) return irr::Lookup::kUnknown;
  bool hit = false;
  origins_.for_each_cover(p, [&](const Prefix& base, std::span<const ir::Asn> origins) {
    if (net::matches_with_chain(base, op, {}, p) && intersects(origins, flat->asns)) {
      hit = true;
      return false;
    }
    return true;
  });
  if (hit) return irr::Lookup::kMatch;
  if (!flat->any_member_routes && !flat->asns.empty()) {
    return irr::Lookup::kUnknown;  // all members are zero-route ASes
  }
  return irr::Lookup::kNoMatch;
}

irr::Lookup CompiledPolicySnapshot::route_set_matches(std::string_view name,
                                                      const net::RangeOp& outer,
                                                      const net::Prefix& p) const {
  const std::optional<SymbolId> id = symbol(name);
  const CompiledRouteSet* set = nullptr;
  if (id) {
    auto it = route_sets_.find(*id);
    if (it != route_sets_.end()) set = &it->second;
  }
  if (set == nullptr) return irr::Lookup::kUnknown;
  if (set->any) return irr::Lookup::kMatch;
  const std::uint8_t family_max = p.max_length();
  bool hit = false;
  set->bases.for_each_cover(
      p, [&](const Prefix&, std::span<const LengthInterval> intervals) {
        for (const LengthInterval& iv : intervals) {
          std::optional<std::pair<std::uint8_t, std::uint8_t>> stepped{{iv.lo, iv.hi}};
          if (!outer.is_none()) stepped = net::step_interval(*stepped, outer, family_max);
          if (stepped && p.length() >= stepped->first && p.length() <= stepped->second) {
            hit = true;
            return false;
          }
        }
        return true;
      });
  if (hit) return irr::Lookup::kMatch;
  return set->unknown ? irr::Lookup::kUnknown : irr::Lookup::kNoMatch;
}

aspath::RegexMatch CompiledPolicySnapshot::match_as_path(const ir::FilterAsPath& filter,
                                                         std::span<const ir::Asn> path,
                                                         ir::Asn peer) const {
  aspath::MatchEnv env{path, peer, this};
  auto it = regexes_.find(&filter);
  aspath::RegexMatch result = it != regexes_.end() ? it->second.regex.match(env)
                                                   : aspath::match_nfa(filter.regex, env);
  if (result == aspath::RegexMatch::kUnsupported) {
    result = aspath::match_backtrack(filter.regex, env);
  }
  return result;
}

bool CompiledPolicySnapshot::as_path_skipped(const ir::FilterAsPath& filter) const {
  auto it = regexes_.find(&filter);
  return it != regexes_.end() ? it->second.skipped
                              : ir::uses_skipped_constructs(filter.regex);
}

const CompiledAutNum* CompiledPolicySnapshot::compiled_aut_num(ir::Asn asn) const {
  auto it = aut_nums_.find(asn);
  return it == aut_nums_.end() ? nullptr : &it->second;
}

std::span<const ir::Asn> CompiledPolicySnapshot::exact_origins(
    const net::Prefix& prefix) const {
  const std::span<const ir::Asn>* origins = origins_.exact(prefix);
  if (origins == nullptr) return {};
  return *origins;
}

}  // namespace rpslyzer::compile
