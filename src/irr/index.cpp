#include "rpslyzer/irr/index.hpp"

#include <algorithm>
#include <array>

#include "rpslyzer/obs/trace.hpp"

namespace rpslyzer::irr {

namespace {

using net::Prefix;
using net::RangeOp;
using net::matches_with_chain;  // stacked range-op matching lives in net now

/// Canonical (case-insensitive class) id of an interned symbol.
ir::Symbol canon(ir::Symbol s) noexcept { return ir::symbols().canon(s); }

/// Canon symbol for a set name arriving as text, or nullopt when no
/// spelling of that class was ever interned — in which case no object by
/// that name exists either (parsing interns every name it keeps).
std::optional<ir::Symbol> canon_of(std::string_view name) noexcept {
  return ir::symbols().find_canon(name);
}

}  // namespace

bool mbrs_by_ref_allows(const std::vector<ir::Symbol>& mbrs_by_ref,
                        const std::vector<ir::Symbol>& mnt_by) {
  if (mbrs_by_ref.empty()) return false;  // member-of claims need opt-in
  static const ir::Symbol kAny = canon(ir::sym("ANY"));
  for (const ir::Symbol n : mbrs_by_ref) {
    if (canon(n) == kAny) return true;
  }
  for (const ir::Symbol mnt : mnt_by) {
    const ir::Symbol want = canon(mnt);
    for (const ir::Symbol n : mbrs_by_ref) {
      if (canon(n) == want) return true;
    }
  }
  return false;
}

Index::Index(const ir::Ir& ir) : ir_(ir) {
  obs::Span span("index.build");
  for (std::size_t i = 0; i < ir_.routes.size(); ++i) {
    const ir::RouteObject& r = ir_.routes[i];
    routes_by_origin_[r.origin].push_back(r.prefix);
    for (const ir::Symbol set_name : r.member_of) {
      route_set_member_of_[canon(set_name)].push_back(i);
    }
  }
  for (auto& [asn, prefixes] : routes_by_origin_) {
    std::sort(prefixes.begin(), prefixes.end());
    prefixes.erase(std::unique(prefixes.begin(), prefixes.end()), prefixes.end());
  }
  for (const auto& [asn, an] : ir_.aut_nums) {
    for (const ir::Symbol set_name : an.member_of) {
      as_set_member_of_[canon(set_name)].push_back(asn);
    }
  }
}

const ir::AutNum* Index::aut_num(ir::Asn asn) const {
  auto it = ir_.aut_nums.find(asn);
  return it == ir_.aut_nums.end() ? nullptr : &it->second;
}

const ir::AsSet* Index::as_set(std::string_view name) const {
  auto it = ir_.as_sets.find(name);
  return it == ir_.as_sets.end() ? nullptr : &it->second;
}

const ir::RouteSet* Index::route_set(std::string_view name) const {
  auto it = ir_.route_sets.find(name);
  return it == ir_.route_sets.end() ? nullptr : &it->second;
}

const ir::PeeringSet* Index::peering_set(std::string_view name) const {
  auto it = ir_.peering_sets.find(name);
  return it == ir_.peering_sets.end() ? nullptr : &it->second;
}

const ir::FilterSet* Index::filter_set(std::string_view name) const {
  auto it = ir_.filter_sets.find(name);
  return it == ir_.filter_sets.end() ? nullptr : &it->second;
}

// ---------------------------------------------------------------------------
// as-set flattening
// ---------------------------------------------------------------------------

struct Index::FlattenState {
  std::unordered_set<ir::Symbol> visiting;  // gray, keyed by canon symbol
  bool touched_gray = false;  // subtree reached an in-progress set
};

void Index::prewarm() const {
  obs::Span span("index.resolve_sets");
  // Root queries leave complete, untainted memo entries; repeat once so
  // entries tainted by the first pass (mid-cycle computations) get their
  // root recomputation too.
  for (int pass = 0; pass < 8; ++pass) {
    for (const auto& [name, set] : ir_.as_sets) flattened(name);
    if (tainted_.empty()) break;
  }
}

void Index::seed_flattened(std::string_view name, FlattenedAsSet value) const {
  if (as_set(name) == nullptr) return;  // only defined sets carry memo entries
  const std::optional<ir::Symbol> key = canon_of(name);
  if (!key) return;
  // Seeds are complete closures by contract, so they enter untainted; a
  // stale tainted marker from an earlier partial computation is cleared.
  tainted_.erase(*key);
  flattened_.insert_or_assign(*key, std::move(value));
}

const FlattenedAsSet* Index::flattened(std::string_view name) const {
  const std::optional<ir::Symbol> key = canon_of(name);
  return key ? flattened(*key) : nullptr;
}

const FlattenedAsSet* Index::flattened(ir::Symbol name) const {
  const ir::Symbol key = canon(name);
  if (as_set(ir::sym_view(key)) == nullptr) return nullptr;
  FlattenState state;
  // Root computations always produce the complete closure and are memoized
  // untainted, so pointers handed out here stay valid and correct.
  return flatten_locked(key, state, /*is_root=*/true);
}

const FlattenedAsSet* Index::flatten_locked(ir::Symbol name, FlattenState& state,
                                            bool is_root) const {
  if (auto it = flattened_.find(name); it != flattened_.end()) {
    if (!tainted_.contains(name)) return &it->second;
    // Tainted (computed mid-cycle, possibly incomplete): recompute. Only
    // tainted entries are ever erased, and external callers only receive
    // untainted root results, so no escaped pointer dangles.
    flattened_.erase(it);
    tainted_.erase(name);
  }
  const ir::AsSet* set = as_set(ir::sym_view(name));
  if (set == nullptr) return nullptr;

  state.visiting.insert(name);
  const bool outer_touched_gray = state.touched_gray;
  state.touched_gray = false;

  FlattenedAsSet out;
  auto merge_child = [&](ir::Symbol child_name) {
    const ir::Symbol child_key = canon(child_name);
    if (state.visiting.contains(child_key)) {
      // Cycle back to an ancestor in the current DFS.
      out.has_loop = true;
      state.touched_gray = true;
      return;
    }
    const FlattenedAsSet* child = flatten_locked(child_key, state, /*is_root=*/false);
    if (child == nullptr) {
      // Record the member's exact spelling, as the pre-symbol code did.
      out.missing_sets.emplace_back(ir::sym_view(child_name));
      return;
    }
    out.asns.insert(out.asns.end(), child->asns.begin(), child->asns.end());
    out.missing_sets.insert(out.missing_sets.end(), child->missing_sets.begin(),
                            child->missing_sets.end());
    out.contains_any = out.contains_any || child->contains_any;
    out.has_loop = out.has_loop || child->has_loop;
    if (child->depth + 1 > out.depth) out.depth = child->depth + 1;
  };

  for (const auto& member : set->members) {
    switch (member.kind) {
      case ir::AsSetMember::Kind::kAsn:
        out.asns.push_back(member.asn);
        break;
      case ir::AsSetMember::Kind::kSet:
        merge_child(member.name);
        break;
      case ir::AsSetMember::Kind::kAny:
        out.contains_any = true;
        break;
    }
  }

  // Indirect members by reference: aut-nums whose member-of names this set
  // and whose maintainer the set's mbrs-by-ref admits.
  if (!set->mbrs_by_ref.empty()) {
    if (auto it = as_set_member_of_.find(name); it != as_set_member_of_.end()) {
      for (ir::Asn asn : it->second) {
        const ir::AutNum* an = aut_num(asn);
        if (an != nullptr && mbrs_by_ref_allows(set->mbrs_by_ref, an->mnt_by)) {
          out.asns.push_back(asn);
        }
      }
    }
  }

  std::sort(out.asns.begin(), out.asns.end());
  out.asns.erase(std::unique(out.asns.begin(), out.asns.end()), out.asns.end());
  std::sort(out.missing_sets.begin(), out.missing_sets.end());
  out.missing_sets.erase(std::unique(out.missing_sets.begin(), out.missing_sets.end()),
                         out.missing_sets.end());

  state.visiting.erase(name);
  const bool this_touched_gray = state.touched_gray;
  state.touched_gray = outer_touched_gray || this_touched_gray;

  // A DFS root always computes its complete closure (gray cuts only remove
  // back-edges to ancestors, which contribute no new reachable ASNs). A
  // non-root that touched a gray ancestor may be missing that ancestor's
  // contribution — memoize it for pointer stability but mark it tainted so
  // the next root query recomputes it.
  if (this_touched_gray && !is_root) tainted_.insert(name);
  auto [it, inserted] = flattened_.emplace(name, std::move(out));
  return &it->second;
}

bool Index::contains(std::string_view as_set, ir::Asn asn) const {
  const FlattenedAsSet* flat = flattened(as_set);
  return flat != nullptr && flat->contains(asn);
}

bool Index::is_known(std::string_view as_set) const { return this->as_set(as_set) != nullptr; }

// ---------------------------------------------------------------------------
// route-object index
// ---------------------------------------------------------------------------

std::span<const net::Prefix> Index::origins_of(ir::Asn asn) const {
  auto it = routes_by_origin_.find(asn);
  if (it == routes_by_origin_.end()) return {};
  return it->second;
}

namespace {

/// Binary-search `sorted` for an exact prefix.
bool contains_prefix(std::span<const Prefix> sorted, const Prefix& p) {
  auto it = std::lower_bound(sorted.begin(), sorted.end(), p);
  return it != sorted.end() && *it == p;
}

/// Does any route-object prefix of this origin, taken as base^own with
/// `chain` on top, match `p`? Bases must cover `p`, so candidates are the
/// (≤ 129) left-truncations of `p`, each located by binary search — the
/// paper's "binary search for the route's prefix over each AS's route
/// objects" (Appendix B).
bool any_base_matches(std::span<const Prefix> sorted, const RangeOp& own,
                      std::span<const RangeOp> chain, const Prefix& p) {
  if (sorted.empty()) return false;
  for (std::uint8_t len = 0; len <= p.length(); ++len) {
    Prefix base(p.address(), len);
    if (contains_prefix(sorted, base) && matches_with_chain(base, own, chain, p)) return true;
  }
  return false;
}

}  // namespace

Lookup Index::origin_matches(ir::Asn asn, const RangeOp& op, const Prefix& p) const {
  std::span<const Prefix> prefixes = origins_of(asn);
  if (prefixes.empty()) return Lookup::kUnknown;  // zero-route AS
  return any_base_matches(prefixes, op, {}, p) ? Lookup::kMatch : Lookup::kNoMatch;
}

Lookup Index::as_set_originates(std::string_view name, const RangeOp& op,
                                const Prefix& p) const {
  const FlattenedAsSet* flat = flattened(name);
  if (flat == nullptr) return Lookup::kUnknown;
  bool any_routes = false;
  for (ir::Asn asn : flat->asns) {
    std::span<const Prefix> prefixes = origins_of(asn);
    if (prefixes.empty()) continue;
    any_routes = true;
    if (any_base_matches(prefixes, op, {}, p)) return Lookup::kMatch;
  }
  if (!any_routes && !flat->asns.empty()) return Lookup::kUnknown;  // all zero-route
  return Lookup::kNoMatch;
}

bool Index::asn_originates_exact(ir::Asn asn, const Prefix& p) const {
  return contains_prefix(origins_of(asn), p);
}

// ---------------------------------------------------------------------------
// route-set evaluation
// ---------------------------------------------------------------------------

Lookup Index::route_set_matches(std::string_view name, const RangeOp& outer,
                                const Prefix& p) const {
  const ir::RouteSet* set = route_set(name);
  if (set == nullptr) return Lookup::kUnknown;
  std::unordered_set<ir::Symbol> visiting;
  visiting.insert(canon(set->name));
  std::vector<RangeOp> chain;
  if (!outer.is_none()) chain.push_back(outer);
  return route_set_matches_rec(*set, chain, p, visiting);
}

Lookup Index::route_set_matches_rec(
    const ir::RouteSet& set, const std::vector<RangeOp>& chain, const Prefix& p,
    std::unordered_set<ir::Symbol>& visiting) const {
  bool unknown_seen = false;
  const std::array<const std::vector<ir::RouteSetMember>*, 2> member_lists = {&set.members,
                                                                              &set.mp_members};
  for (const auto* members : member_lists) {
    for (const auto& member : *members) {
      switch (member.kind) {
        case ir::RouteSetMember::Kind::kAny:
          return Lookup::kMatch;
        case ir::RouteSetMember::Kind::kPrefix:
          if (matches_with_chain(member.prefix.prefix, member.prefix.op, chain, p)) {
            return Lookup::kMatch;
          }
          break;
        case ir::RouteSetMember::Kind::kAsn: {
          std::span<const Prefix> prefixes = origins_of(member.asn);
          if (prefixes.empty()) {
            unknown_seen = true;  // zero-route AS: missing information
          } else if (any_base_matches(prefixes, member.op, chain, p)) {
            return Lookup::kMatch;
          }
          break;
        }
        case ir::RouteSetMember::Kind::kAsSet: {
          const FlattenedAsSet* flat = flattened(member.name);
          if (flat == nullptr) {
            unknown_seen = true;
            break;
          }
          bool any_routes = false;
          for (ir::Asn asn : flat->asns) {
            std::span<const Prefix> prefixes = origins_of(asn);
            if (prefixes.empty()) continue;
            any_routes = true;
            if (any_base_matches(prefixes, member.op, chain, p)) return Lookup::kMatch;
          }
          if (!any_routes && !flat->asns.empty()) unknown_seen = true;
          break;
        }
        case ir::RouteSetMember::Kind::kRouteSet: {
          const ir::Symbol member_key = canon(member.name);
          if (visiting.contains(member_key)) break;  // cycle: nothing new
          const ir::RouteSet* child = route_set(ir::sym_view(member.name));
          if (child == nullptr) {
            unknown_seen = true;
            break;
          }
          visiting.insert(member_key);
          // The member's operator applies to the child set first, then the
          // current chain stacks on top (innermost first).
          std::vector<RangeOp> child_chain;
          if (!member.op.is_none()) child_chain.push_back(member.op);
          child_chain.insert(child_chain.end(), chain.begin(), chain.end());
          Lookup sub = route_set_matches_rec(*child, child_chain, p, visiting);
          visiting.erase(member_key);
          if (sub == Lookup::kMatch) return Lookup::kMatch;
          if (sub == Lookup::kUnknown) unknown_seen = true;
          break;
        }
      }
    }
  }

  // Indirect members by reference: route objects naming this set in
  // member-of, admitted by the set's mbrs-by-ref maintainer list.
  if (!set.mbrs_by_ref.empty()) {
    if (auto it = route_set_member_of_.find(canon(set.name));
        it != route_set_member_of_.end()) {
      for (std::size_t idx : it->second) {
        const ir::RouteObject& r = ir_.routes[idx];
        if (mbrs_by_ref_allows(set.mbrs_by_ref, r.mnt_by) &&
            matches_with_chain(r.prefix, RangeOp::none(), chain, p)) {
          return Lookup::kMatch;
        }
      }
    }
  }
  return unknown_seen ? Lookup::kUnknown : Lookup::kNoMatch;
}

}  // namespace rpslyzer::irr
