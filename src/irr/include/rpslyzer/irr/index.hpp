#pragma once
// Queryable index over a merged IR corpus.
//
// Implements the paper's performance-critical resolutions (Appendix B):
//  * as-sets are recursively flattened to member ASNs (memoized, cycle-safe)
//    including indirect "members by reference" via aut-num member-of;
//  * route objects are indexed per origin AS as sorted prefix vectors, and
//    prefix lookups binary-search them;
//  * route-sets are evaluated recursively with cycle guards, including
//    members-by-ref from route objects and the non-standard range-operator-
//    on-set syntax.

#include <optional>
#include <span>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "rpslyzer/aspath/engine.hpp"
#include "rpslyzer/ir/objects.hpp"

namespace rpslyzer::irr {

/// Tri-state query outcome: referenced data may simply be missing from the
/// IRRs, which the verifier must distinguish from a clean mismatch
/// ("Unrecorded" vs "Unverified", §5).
enum class Lookup : std::uint8_t {
  kMatch,
  kNoMatch,
  kUnknown,  // the referenced object is not defined in any loaded IRR
};

/// mbrs-by-ref check: the referencing object's maintainers must intersect
/// the set's mbrs-by-ref list, or the list contains ANY (RFC 2622 §5.1).
/// Shared by the lazy Index resolution and the compiled-snapshot build.
/// Interned operands: the intersection test is canon-id equality, no
/// string bytes are touched.
bool mbrs_by_ref_allows(const std::vector<ir::Symbol>& mbrs_by_ref,
                        const std::vector<ir::Symbol>& mnt_by);

/// A flattened as-set: every ASN reachable through member edges.
struct FlattenedAsSet {
  std::vector<ir::Asn> asns;               // sorted, unique
  std::vector<std::string> missing_sets;   // referenced but undefined sets
  bool contains_any = false;               // the erroneous ANY member appears
  bool has_loop = false;                   // a member cycle reaches this set
  std::size_t depth = 0;                   // longest member chain below this set

  bool contains(ir::Asn asn) const noexcept {
    auto it = std::lower_bound(asns.begin(), asns.end(), asn);
    return it != asns.end() && *it == asn;
  }
};

class Index : public aspath::AsSetMembership {
 public:
  /// Builds the route-origin index eagerly; as-set flattening is lazy and
  /// memoized. The Ir must outlive the Index.
  explicit Index(const ir::Ir& ir);

  const ir::Ir& ir() const noexcept { return ir_; }

  // --- object lookups (case-insensitive names) ---
  const ir::AutNum* aut_num(ir::Asn asn) const;
  const ir::AsSet* as_set(std::string_view name) const;
  const ir::RouteSet* route_set(std::string_view name) const;
  const ir::PeeringSet* peering_set(std::string_view name) const;
  const ir::FilterSet* filter_set(std::string_view name) const;

  // --- as-set flattening ---
  /// nullptr when the set is not defined.
  const FlattenedAsSet* flattened(std::string_view name) const;
  /// Symbol-keyed fast path (skips the name → canon-symbol lookup).
  const FlattenedAsSet* flattened(ir::Symbol name) const;

  /// Flatten every defined as-set now. Afterwards all flattening queries
  /// are pure reads, making the Index safely shareable across threads
  /// (the §5-scale verification runs on many cores).
  void prewarm() const;

  /// Seed the flattening memo with a known-complete closure computed
  /// elsewhere (the incremental snapshot rebuild copies clean entries from
  /// the previous generation's prewarmed index so prewarm() only walks the
  /// dirty subgraph). The entry is recorded untainted; a prewarm() after
  /// seeding then completes the remaining sets via cheap memo hits. Only
  /// valid before the index is shared across threads, exactly like
  /// prewarm(); ignored when `name` is not a defined as-set.
  void seed_flattened(std::string_view name, FlattenedAsSet value) const;

  // aspath::AsSetMembership:
  bool contains(std::string_view as_set, ir::Asn asn) const override;
  bool is_known(std::string_view as_set) const override;

  // --- route-object origin index ---
  /// Sorted prefixes whose route objects have `origin == asn`.
  std::span<const net::Prefix> origins_of(ir::Asn asn) const;
  bool has_routes(ir::Asn asn) const { return !origins_of(asn).empty(); }
  /// Is `asn` ever used as an origin, and does one of its route objects
  /// match `p` under `op`? kUnknown when the AS has no route objects at all
  /// (the paper's "zero-route AS" unrecorded case).
  Lookup origin_matches(ir::Asn asn, const net::RangeOp& op, const net::Prefix& p) const;

  /// Any member of the (flattened) as-set originates a route object
  /// matching `p` under `op`. kUnknown when the set is undefined.
  Lookup as_set_originates(std::string_view name, const net::RangeOp& op,
                           const net::Prefix& p) const;

  /// Does route-set `name` (with `outer` applied) match prefix `p`?
  /// kUnknown when the set (or a transitively required set) is undefined
  /// and nothing else matched.
  Lookup route_set_matches(std::string_view name, const net::RangeOp& outer,
                           const net::Prefix& p) const;

  /// All origin ASNs of route objects exactly covering `p` (used by the
  /// "missing routes" relaxation and PeerAS filters).
  bool asn_originates_exact(ir::Asn asn, const net::Prefix& p) const;

 private:
  struct FlattenState;

  // All internal set-name keys are *canonical* symbols (the first-seen
  // spelling of a case-insensitive class), so map lookups are u32 hashes —
  // the symbol-era replacement for the old IHash/IEqual string keys.
  const FlattenedAsSet* flatten_locked(ir::Symbol name, FlattenState& state,
                                       bool is_root) const;
  Lookup route_set_matches_rec(const ir::RouteSet& set,
                               const std::vector<net::RangeOp>& chain, const net::Prefix& p,
                               std::unordered_set<ir::Symbol>& visiting) const;

  const ir::Ir& ir_;

  // Route origin index: origin ASN -> sorted unique prefixes.
  std::unordered_map<ir::Asn, std::vector<net::Prefix>> routes_by_origin_;

  // member-of reverse index for as-sets (canon set symbol -> candidate
  // member ASNs whose aut-num lists the set in member-of),
  // maintainer-checked lazily.
  std::unordered_map<ir::Symbol, std::vector<ir::Asn>> as_set_member_of_;
  // Same for route-sets: canon set symbol -> indices into ir_.routes.
  std::unordered_map<ir::Symbol, std::vector<std::size_t>> route_set_member_of_;

  // Memoized flattenings, keyed by canon symbol. Entries in `tainted_` were
  // computed mid-cycle and may be incomplete; they are recomputed when
  // queried as a root, so pointers returned by flattened() always hold the
  // complete closure.
  mutable std::unordered_map<ir::Symbol, FlattenedAsSet> flattened_;
  mutable std::unordered_set<ir::Symbol> tainted_;
};

}  // namespace rpslyzer::irr
