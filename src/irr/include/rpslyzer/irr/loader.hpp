#pragma once
// IRR dump loading and multi-IRR merging.
//
// The paper parses 13 IRRs and resolves conflicts by priority: authoritative
// regional/national registries first, then RADB, then other databases,
// ordered by size within each group (§4, Table 1). Loading here takes an
// ordered source list; the first definition of an object key wins.

#include <filesystem>
#include <string>
#include <vector>

#include "rpslyzer/ir/objects.hpp"
#include "rpslyzer/util/diagnostics.hpp"

namespace rpslyzer::irr {

/// One IRR dump: a name (e.g. "RIPE") and where its RPSL text lives.
struct IrrSource {
  std::string name;
  std::filesystem::path path;
};

/// Per-IRR census used for Table 1.
struct IrrCounts {
  std::string name;
  std::size_t bytes = 0;
  std::size_t objects = 0;       // raw objects lexed (any class)
  std::size_t aut_nums = 0;
  std::size_t routes = 0;        // route + route6
  std::size_t imports = 0;       // import + mp-import attributes
  std::size_t exports = 0;       // export + mp-export attributes
  std::size_t as_sets = 0;
  std::size_t route_sets = 0;
  std::size_t peering_sets = 0;
  std::size_t filter_sets = 0;
};

struct LoadResult {
  ir::Ir ir;                      // merged, priority-resolved corpus
  std::vector<IrrCounts> counts;  // per source, in priority order
  util::Diagnostics diagnostics;
  std::size_t raw_route_objects = 0;  // before (prefix, origin) dedup
};

/// Parse one dump text into a fresh Ir. `counts` may be null.
ir::Ir parse_dump(std::string_view text, std::string_view source,
                  util::Diagnostics& diagnostics, IrrCounts* counts = nullptr);

/// Merge `src` into `dst` with first-wins priority (dst's existing objects
/// are kept). Route objects are deduplicated by (prefix, origin).
void merge_into(ir::Ir& dst, ir::Ir&& src);

/// Load and merge dump files in priority order. Missing files raise a
/// diagnostic and are skipped (the paper tolerates unavailable dumps, §4).
LoadResult load_irrs(const std::vector<IrrSource>& sources);

/// The paper's 13 IRRs in priority order (Table 1): names only; callers
/// supply the directory holding "<name>.db" files.
std::vector<IrrSource> table1_sources(const std::filesystem::path& directory);

}  // namespace rpslyzer::irr
