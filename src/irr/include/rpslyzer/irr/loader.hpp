#pragma once
// IRR dump loading and multi-IRR merging.
//
// The paper parses 13 IRRs and resolves conflicts by priority: authoritative
// regional/national registries first, then RADB, then other databases,
// ordered by size within each group (§4, Table 1). Loading here takes an
// ordered source list; the first definition of an object key wins.
//
// Real dumps are dirty in more ways than bad syntax: a mirror can be
// missing, a transfer can die mid-file, a corrupt dump can present one
// endless pseudo-object. Loading therefore tracks a per-source *outcome* —
// ok / degraded (unavailable, skipped) / quarantined (present but failed
// integrity checks mid-load) — and keeps going, mirroring the paper's
// missing-dump tolerance (§4): one bad registry never takes down the other
// twelve. Failpoint sites ("irr.open", "irr.read", "irr.parse", "irr.merge";
// see util/failpoint.hpp) make every failure deterministic to test.

#include <filesystem>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "rpslyzer/ir/objects.hpp"
#include "rpslyzer/util/diagnostics.hpp"

namespace rpslyzer::irr {

/// One IRR dump: a name (e.g. "RIPE") and where its RPSL text lives.
struct IrrSource {
  std::string name;
  std::filesystem::path path;
};

/// Per-IRR census used for Table 1.
struct IrrCounts {
  std::string name;
  std::size_t bytes = 0;
  std::size_t objects = 0;       // raw objects lexed (any class)
  std::size_t aut_nums = 0;
  std::size_t routes = 0;        // route + route6
  std::size_t imports = 0;       // import + mp-import attributes
  std::size_t exports = 0;       // export + mp-export attributes
  std::size_t as_sets = 0;
  std::size_t route_sets = 0;
  std::size_t peering_sets = 0;
  std::size_t filter_sets = 0;
};

/// How loading one source ended.
enum class SourceStatus : std::uint8_t {
  kOk,           // parsed and merged completely
  kDegraded,     // dump unavailable; skipped with a warning (paper §4)
  kQuarantined,  // dump present but failed mid-load; none of it was merged
};

struct SourceOutcome {
  std::string name;
  SourceStatus status = SourceStatus::kOk;
  std::string detail;  // human-readable reason for degraded/quarantined
};

const char* to_string(SourceStatus s) noexcept;

/// Knobs for integrity checks and parallelism during loading.
struct LoadOptions {
  /// A single raw object larger than this is treated as dump corruption
  /// (e.g. lost blank-line separators) and quarantines the source.
  /// 0 disables the guard.
  std::size_t max_object_bytes = 8u << 20;

  /// Worker threads for the parallel ingestion pipeline: sources are read
  /// concurrently and each dump is lexed/parsed as blank-line-separated
  /// shards across the pool, then merged deterministically so the result is
  /// byte-identical to the serial path. 0 = hardware_concurrency; 1 forces
  /// the reference serial path.
  unsigned threads = 0;

  /// Target shard size for within-dump parse parallelism. Shards are cut
  /// only at true object boundaries, so a single object larger than this
  /// becomes one oversized shard rather than being split.
  std::size_t shard_target_bytes = 1u << 20;
};

struct LoadResult {
  ir::Ir ir;                      // merged, priority-resolved corpus
  std::vector<IrrCounts> counts;  // per source, in priority order
  std::vector<SourceOutcome> outcomes;  // per source, in priority order
  util::Diagnostics diagnostics;
  std::size_t raw_route_objects = 0;  // before (prefix, origin) dedup

  std::size_t count_with(SourceStatus status) const noexcept;
  const SourceOutcome* outcome(std::string_view name) const noexcept;
};

/// Route objects dedup on (prefix, origin) across IRRs; this is the key set
/// load_irrs maintains incrementally and merge_into can share.
using RouteKeySet = std::set<std::pair<net::Prefix, ir::Asn>>;

/// Parse one dump text into a fresh Ir. `counts` may be null.
ir::Ir parse_dump(std::string_view text, std::string_view source,
                  util::Diagnostics& diagnostics, IrrCounts* counts = nullptr);

/// Parse one dump by cutting it into blank-line-separated shards and
/// lexing/parsing them on `threads` workers (0 = hardware_concurrency;
/// <= 1 delegates to parse_dump). Shard fragments are merged in shard
/// order — maps first-wins, routes concatenated undeduplicated — so the
/// returned Ir, `diagnostics` (including line numbers), and `counts` are
/// identical to parse_dump's regardless of thread count. The "irr.parse"
/// failpoint is evaluated exactly once, on the calling thread, before
/// sharding; a shard worker exception is rethrown after the completed
/// shard prefix's diagnostics are merged, mirroring the serial path's
/// fail-mid-dump behavior.
ir::Ir parse_dump_parallel(std::string_view text, std::string_view source,
                           util::Diagnostics& diagnostics, IrrCounts* counts,
                           unsigned threads, std::size_t shard_target_bytes = 1u << 20);

/// Merge `src` into `dst` with first-wins priority (dst's existing objects
/// are kept). Route objects are deduplicated by (prefix, origin). When
/// `seen` is given it must already cover dst's routes; it is updated in
/// place, letting repeated merges (load_irrs) skip the per-call rebuild.
void merge_into(ir::Ir& dst, ir::Ir&& src, RouteKeySet* seen = nullptr);

/// Load and merge dump files in priority order. Unavailable files degrade
/// (warning, skipped); files failing mid-read, integrity guards, or parser
/// exceptions are quarantined (error, nothing merged). Either way the
/// remaining sources still load.
///
/// With options.threads > 1 (the default resolves to hardware_concurrency)
/// sources are read on a bounded pool and each dump parses as parallel
/// shards, but outcomes, diagnostics, counts, and the merged corpus are
/// byte-identical to the threads == 1 serial reference: per-source results
/// merge on the coordinating thread in priority order, and within a source
/// shard fragments merge in shard order. A fault in one shard quarantines
/// only that source. The "irr.parse" and "irr.merge" failpoints still fire
/// once per source, in priority order, on the coordinating thread;
/// "irr.open"/"irr.read" fire per source on pool workers, so their N*
/// budgets land on a nondeterministic *subset* of sources under parallel
/// loading (unbounded actions behave identically either way).
LoadResult load_irrs(const std::vector<IrrSource>& sources,
                     const LoadOptions& options = {});

/// The paper's 13 IRRs in priority order (Table 1): names only; callers
/// supply the directory holding "<name>.db" files.
std::vector<IrrSource> table1_sources(const std::filesystem::path& directory);

}  // namespace rpslyzer::irr
