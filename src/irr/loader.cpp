#include "rpslyzer/irr/loader.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <stdexcept>

#include "rpslyzer/obs/log.hpp"
#include "rpslyzer/obs/metrics.hpp"
#include "rpslyzer/obs/trace.hpp"
#include "rpslyzer/rpsl/object_lexer.hpp"
#include "rpslyzer/rpsl/object_parser.hpp"
#include "rpslyzer/util/failpoint.hpp"
#include "rpslyzer/util/strings.hpp"

namespace rpslyzer::irr {

namespace {

namespace fp = util::failpoint;

void count_rules(const ir::AutNum& an, IrrCounts& counts) {
  counts.imports += an.imports.size();
  counts.exports += an.exports.size();
}

/// Slurp a stream chunk-wise so stream state reflects how the read ended:
/// eof = complete, bad/fail-without-eof = the transfer died mid-file.
/// Returns false (with *detail set) on an I/O error; the partial bytes read
/// so far stay in *text for diagnostics but must not be parsed as complete.
bool slurp(std::ifstream& in, std::string* text, std::string* detail) {
  char chunk[64 * 1024];
  while (in.read(chunk, sizeof(chunk)) || in.gcount() > 0) {
    text->append(chunk, static_cast<std::size_t>(in.gcount()));
    if (in.eof()) break;
    if (in.bad()) break;
  }
  if (in.bad() || (in.fail() && !in.eof())) {
    *detail = "I/O error after " + std::to_string(text->size()) + " bytes";
    return false;
  }
  if (const fp::Hit hit = fp::hit("irr.read")) {
    if (hit.is_error()) {
      *detail = "injected read fault: " + hit.message;
      return false;
    }
    if (hit.is_truncate()) {
      // Simulates a transfer that died mid-file *and was detected*: the
      // stream handed back fewer bytes than the dump holds.
      text->resize(std::min(text->size(), hit.truncate_at));
      *detail = "injected mid-read truncation at " +
                std::to_string(text->size()) + " bytes";
      return false;
    }
  }
  return true;
}

/// Longest blank-line-separated paragraph, i.e. what the lexer will treat
/// as one raw object. A corrupt dump that lost its separators shows up as
/// one pathological multi-megabyte "object".
std::size_t largest_object_bytes(std::string_view text) {
  std::size_t largest = 0;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t sep = text.find("\n\n", start);
    const std::size_t end = sep == std::string_view::npos ? text.size() : sep;
    largest = std::max(largest, end - start);
    if (sep == std::string_view::npos) break;
    start = sep + 2;
  }
  return largest;
}

}  // namespace

const char* to_string(SourceStatus s) noexcept {
  switch (s) {
    case SourceStatus::kOk:
      return "ok";
    case SourceStatus::kDegraded:
      return "degraded";
    case SourceStatus::kQuarantined:
      return "quarantined";
  }
  return "?";
}

std::size_t LoadResult::count_with(SourceStatus status) const noexcept {
  std::size_t n = 0;
  for (const auto& outcome : outcomes) {
    if (outcome.status == status) ++n;
  }
  return n;
}

const SourceOutcome* LoadResult::outcome(std::string_view name) const noexcept {
  for (const auto& outcome : outcomes) {
    if (outcome.name == name) return &outcome;
  }
  return nullptr;
}

ir::Ir parse_dump(std::string_view text, std::string_view source,
                  util::Diagnostics& diagnostics, IrrCounts* counts) {
  obs::Span span("irr.parse", source);
  if (const fp::Hit hit = fp::hit("irr.parse")) {
    if (hit.is_error()) throw std::runtime_error("irr.parse: " + hit.message);
    // Silent truncation at the parse layer: the lexer sees a shorter dump
    // and must still produce a clean (if smaller) object stream.
    if (hit.is_truncate()) text = text.substr(0, std::min(text.size(), hit.truncate_at));
  }
  ir::Ir ir;
  auto raw_objects = rpsl::lex_objects(text, source, diagnostics);
  if (counts != nullptr) {
    counts->bytes = text.size();
    counts->objects += raw_objects.size();
  }
  for (const auto& raw : raw_objects) {
    rpsl::ParsedObject parsed = rpsl::parse_object(raw, diagnostics);
    std::visit(util::overloaded{
                   [](std::monostate) {},
                   [&](ir::AutNum& an) {
                     if (counts != nullptr) {
                       ++counts->aut_nums;
                       count_rules(an, *counts);
                     }
                     ir.aut_nums.emplace(an.asn, std::move(an));
                   },
                   [&](ir::AsSet& s) {
                     if (counts != nullptr) ++counts->as_sets;
                     ir.as_sets.emplace(s.name, std::move(s));
                   },
                   [&](ir::RouteSet& s) {
                     if (counts != nullptr) ++counts->route_sets;
                     ir.route_sets.emplace(s.name, std::move(s));
                   },
                   [&](ir::PeeringSet& s) {
                     if (counts != nullptr) ++counts->peering_sets;
                     ir.peering_sets.emplace(s.name, std::move(s));
                   },
                   [&](ir::FilterSet& s) {
                     if (counts != nullptr) ++counts->filter_sets;
                     ir.filter_sets.emplace(s.name, std::move(s));
                   },
                   [&](ir::RouteObject& r) {
                     if (counts != nullptr) ++counts->routes;
                     ir.routes.push_back(std::move(r));
                   },
               },
               parsed);
  }
  return ir;
}

void merge_into(ir::Ir& dst, ir::Ir&& src, RouteKeySet* seen) {
  if (const fp::Hit hit = fp::hit("irr.merge")) {
    if (hit.is_error()) throw std::runtime_error("irr.merge: " + hit.message);
  }
  // map::merge keeps dst's entry on key conflict — exactly first-wins.
  dst.aut_nums.merge(src.aut_nums);
  dst.as_sets.merge(src.as_sets);
  dst.route_sets.merge(src.route_sets);
  dst.peering_sets.merge(src.peering_sets);
  dst.filter_sets.merge(src.filter_sets);

  // Routes: dedup by (prefix, origin); the first (higher-priority) object
  // is kept. Callers merging repeatedly (load_irrs) pass a persistent key
  // set so the rebuild below only happens on the standalone path.
  RouteKeySet rebuilt;
  if (seen == nullptr) {
    for (const auto& r : dst.routes) rebuilt.emplace(r.prefix, r.origin);
    seen = &rebuilt;
  }
  for (auto& r : src.routes) {
    if (seen->emplace(r.prefix, r.origin).second) dst.routes.push_back(std::move(r));
  }
  src.routes.clear();
}

LoadResult load_irrs(const std::vector<IrrSource>& sources, const LoadOptions& options) {
  obs::Span load_span("irr.load");
  auto& registry = obs::MetricsRegistry::global();
  obs::Counter& bytes_read = registry.counter(
      "rpslyzer_loader_bytes_read_total", "Bytes read from IRR dump files");
  obs::Counter& objects_parsed = registry.counter(
      "rpslyzer_loader_objects_parsed_total", "RPSL objects parsed from IRR dumps");
  obs::Histogram& source_seconds = registry.histogram(
      "rpslyzer_loader_source_seconds", "Wall time loading one IRR source",
      obs::exponential_bounds(0.001, 4.0, 10));

  LoadResult result;
  RouteKeySet seen_routes;
  for (const auto& source : sources) {
    obs::Span source_span("irr.source", source.name);
    const auto source_start = std::chrono::steady_clock::now();
    IrrCounts counts;
    counts.name = source.name;
    SourceOutcome outcome;
    outcome.name = source.name;

    const auto degrade = [&](std::string detail) {
      outcome.status = SourceStatus::kDegraded;
      result.diagnostics.warning(util::DiagnosticKind::kOther, detail, source.name,
                                 {source.name, 0});
      obs::log_warn("loader", "source degraded",
                    {{"source", source.name}, {"reason", detail}});
      outcome.detail = std::move(detail);
    };
    // Quarantine: the dump exists but cannot be trusted; merging a prefix
    // of it would silently shrink the corpus, so none of it is merged and
    // the failure is recorded as a hard error (unlike a missing dump).
    const auto quarantine = [&](std::string detail) {
      outcome.status = SourceStatus::kQuarantined;
      result.diagnostics.error(util::DiagnosticKind::kOther,
                               "IRR dump quarantined: " + detail, source.name,
                               {source.name, 0});
      obs::log_error("loader", "source quarantined",
                     {{"source", source.name}, {"reason", detail}});
      outcome.detail = std::move(detail);
    };

    const auto finish = [&] {
      registry
          .counter("rpslyzer_loader_sources_total", "IRR source load outcomes",
                   {{"source", source.name}, {"status", to_string(outcome.status)}})
          .inc();
      source_seconds.observe(
          std::chrono::duration<double>(std::chrono::steady_clock::now() - source_start)
              .count());
      result.counts.push_back(std::move(counts));
      result.outcomes.push_back(std::move(outcome));
    };

    std::ifstream in;
    {
      obs::Span open_span("irr.open", source.name);
      if (const fp::Hit hit = fp::hit("irr.open"); hit && hit.is_error()) {
        degrade("IRR dump unavailable: injected open fault: " + hit.message);
        finish();
        continue;
      }
      std::error_code ec;
      const bool exists = std::filesystem::exists(source.path, ec);
      if (exists && !std::filesystem::is_regular_file(source.path, ec)) {
        quarantine("not a regular file: " + source.path.string());
        finish();
        continue;
      }
      in.open(source.path, std::ios::binary);
      if (!in) {
        degrade("IRR dump unavailable: " + source.path.string());
        finish();
        continue;
      }
    }
    std::string text;
    std::string read_error;
    bool read_ok;
    {
      obs::Span read_span("irr.read", source.name);
      read_ok = slurp(in, &text, &read_error);
    }
    bytes_read.inc(text.size());
    if (!read_ok) {
      quarantine("read failed mid-dump (" + read_error + "): " + source.path.string());
      finish();
      continue;
    }
    if (options.max_object_bytes > 0) {
      const std::size_t largest = largest_object_bytes(text);
      if (largest > options.max_object_bytes) {
        quarantine("pathological object of " + std::to_string(largest) +
                   " bytes (limit " + std::to_string(options.max_object_bytes) +
                   "): " + source.path.string());
        finish();
        continue;
      }
    }
    try {
      ir::Ir parsed = parse_dump(text, source.name, result.diagnostics, &counts);
      const std::size_t raw_routes = parsed.routes.size();
      {
        obs::Span merge_span("irr.merge", source.name);
        merge_into(result.ir, std::move(parsed), &seen_routes);
      }
      result.raw_route_objects += raw_routes;
      objects_parsed.inc(counts.objects);
    } catch (const std::exception& e) {
      quarantine(std::string("exception mid-load: ") + e.what());
      counts = IrrCounts{};  // partial counts would misstate the census
      counts.name = source.name;
    }
    finish();
  }
  obs::log_info("loader", "load complete",
                {{"sources", sources.size()},
                 {"degraded", result.count_with(SourceStatus::kDegraded)},
                 {"quarantined", result.count_with(SourceStatus::kQuarantined)},
                 {"routes", result.ir.routes.size()},
                 {"aut_nums", result.ir.aut_nums.size()}});
  return result;
}

std::vector<IrrSource> table1_sources(const std::filesystem::path& directory) {
  // Table 1 order: authoritative regional and national registries, RADB,
  // then other databases.
  static const char* kNames[] = {"APNIC", "AFRINIC", "ARIN",   "LACNIC", "RIPE",
                                 "IDNIC", "JPIRR",   "RADB",   "NTTCOM", "LEVEL3",
                                 "TC",    "REACH",   "ALTDB"};
  std::vector<IrrSource> sources;
  for (const char* name : kNames) {
    sources.push_back({name, directory / (util::lower(name) + ".db")});
  }
  return sources;
}

}  // namespace rpslyzer::irr
