#include "rpslyzer/irr/loader.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <fstream>
#include <stdexcept>
#include <thread>

#include "rpslyzer/obs/log.hpp"
#include "rpslyzer/obs/metrics.hpp"
#include "rpslyzer/obs/trace.hpp"
#include "rpslyzer/rpsl/object_lexer.hpp"
#include "rpslyzer/rpsl/object_parser.hpp"
#include "rpslyzer/util/failpoint.hpp"
#include "rpslyzer/util/strings.hpp"

namespace rpslyzer::irr {

namespace {

namespace fp = util::failpoint;

void count_rules(const ir::AutNum& an, IrrCounts& counts) {
  counts.imports += an.imports.size();
  counts.exports += an.exports.size();
}

/// Slurp a stream chunk-wise so stream state reflects how the read ended:
/// eof = complete, bad/fail-without-eof = the transfer died mid-file.
/// Returns false (with *detail set) on an I/O error; the partial bytes read
/// so far stay in *text for diagnostics but must not be parsed as complete.
bool slurp(std::ifstream& in, std::string* text, std::string* detail) {
  char chunk[64 * 1024];
  while (in.read(chunk, sizeof(chunk)) || in.gcount() > 0) {
    text->append(chunk, static_cast<std::size_t>(in.gcount()));
    if (in.eof()) break;
    if (in.bad()) break;
  }
  if (in.bad() || (in.fail() && !in.eof())) {
    *detail = "I/O error after " + std::to_string(text->size()) + " bytes";
    return false;
  }
  if (const fp::Hit hit = fp::hit("irr.read")) {
    if (hit.is_error()) {
      *detail = "injected read fault: " + hit.message;
      return false;
    }
    if (hit.is_truncate()) {
      // Simulates a transfer that died mid-file *and was detected*: the
      // stream handed back fewer bytes than the dump holds.
      text->resize(std::min(text->size(), hit.truncate_at));
      *detail = "injected mid-read truncation at " +
                std::to_string(text->size()) + " bytes";
      return false;
    }
  }
  return true;
}

/// Longest blank-line-separated paragraph, i.e. what the lexer will treat
/// as one raw object. A corrupt dump that lost its separators shows up as
/// one pathological multi-megabyte "object".
std::size_t largest_object_bytes(std::string_view text) {
  std::size_t largest = 0;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t sep = text.find("\n\n", start);
    const std::size_t end = sep == std::string_view::npos ? text.size() : sep;
    largest = std::max(largest, end - start);
    if (sep == std::string_view::npos) break;
    start = sep + 2;
  }
  return largest;
}

unsigned resolve_threads(unsigned threads) {
  return threads == 0 ? std::max(1u, std::thread::hardware_concurrency()) : threads;
}

/// The lex+parse core shared by the serial and sharded paths: no failpoint,
/// no span, no counts->bytes — callers own those so each fires exactly once
/// per dump regardless of shard count. Lexer and parser diagnostics go to
/// *separate* sinks because the serial path reports all lexer diagnostics
/// before any parser diagnostic (lex_objects finishes before the parse
/// loop starts); the shard merge preserves that phase order by merging
/// every shard's lex sink before any shard's parse sink. Serial callers
/// pass the same sink twice.
void parse_text_into(std::string_view text, std::string_view source,
                     std::size_t line_offset, ir::Ir& ir,
                     util::Diagnostics& lex_diagnostics,
                     util::Diagnostics& diagnostics, IrrCounts* counts) {
  // Zero-copy hot path: raw attribute names/values are slices of `text`
  // (plus arena spill for joins), valid exactly as long as this frame —
  // parse_object materializes everything it keeps into interned symbols
  // and IR values before the arena dies with the shard.
  util::Arena arena;
  auto raw_objects = rpsl::lex_objects_view(text, source, lex_diagnostics, arena,
                                            line_offset);
  if (counts != nullptr) counts->objects += raw_objects.size();
  for (const auto& raw : raw_objects) {
    rpsl::ParsedObject parsed = rpsl::parse_object(raw, diagnostics);
    std::visit(util::overloaded{
                   [](std::monostate) {},
                   [&](ir::AutNum& an) {
                     if (counts != nullptr) {
                       ++counts->aut_nums;
                       count_rules(an, *counts);
                     }
                     ir.aut_nums.emplace(an.asn, std::move(an));
                   },
                   [&](ir::AsSet& s) {
                     if (counts != nullptr) ++counts->as_sets;
                     ir.as_sets.emplace(ir::to_string(s.name), std::move(s));
                   },
                   [&](ir::RouteSet& s) {
                     if (counts != nullptr) ++counts->route_sets;
                     ir.route_sets.emplace(ir::to_string(s.name), std::move(s));
                   },
                   [&](ir::PeeringSet& s) {
                     if (counts != nullptr) ++counts->peering_sets;
                     ir.peering_sets.emplace(ir::to_string(s.name), std::move(s));
                   },
                   [&](ir::FilterSet& s) {
                     if (counts != nullptr) ++counts->filter_sets;
                     ir.filter_sets.emplace(ir::to_string(s.name), std::move(s));
                   },
                   [&](ir::RouteObject& r) {
                     if (counts != nullptr) ++counts->routes;
                     ir.routes.push_back(std::move(r));
                   },
               },
               parsed);
  }
}

/// Merge a shard fragment into the per-dump accumulator. Unlike merge_into
/// this must NOT deduplicate routes: the serial parse_dump keeps every
/// route object it sees (dedup happens later, across sources, in
/// merge_into), so shard fragments concatenate routes in shard order and
/// only the keyed maps resolve first-wins (dst = earlier shards).
void append_fragment(ir::Ir& dst, ir::Ir&& src) {
  dst.aut_nums.merge(src.aut_nums);
  dst.as_sets.merge(src.as_sets);
  dst.route_sets.merge(src.route_sets);
  dst.peering_sets.merge(src.peering_sets);
  dst.filter_sets.merge(src.filter_sets);
  dst.routes.insert(dst.routes.end(), std::make_move_iterator(src.routes.begin()),
                    std::make_move_iterator(src.routes.end()));
  src.routes.clear();
}

/// Sum a shard's census into the per-dump census (bytes excluded: it is
/// set once from the whole dump, matching serial parse_dump).
void accumulate_counts(IrrCounts& total, const IrrCounts& shard) {
  total.objects += shard.objects;
  total.aut_nums += shard.aut_nums;
  total.routes += shard.routes;
  total.imports += shard.imports;
  total.exports += shard.exports;
  total.as_sets += shard.as_sets;
  total.route_sets += shard.route_sets;
  total.peering_sets += shard.peering_sets;
  total.filter_sets += shard.filter_sets;
}

}  // namespace

const char* to_string(SourceStatus s) noexcept {
  switch (s) {
    case SourceStatus::kOk:
      return "ok";
    case SourceStatus::kDegraded:
      return "degraded";
    case SourceStatus::kQuarantined:
      return "quarantined";
  }
  return "?";
}

std::size_t LoadResult::count_with(SourceStatus status) const noexcept {
  std::size_t n = 0;
  for (const auto& outcome : outcomes) {
    if (outcome.status == status) ++n;
  }
  return n;
}

const SourceOutcome* LoadResult::outcome(std::string_view name) const noexcept {
  for (const auto& outcome : outcomes) {
    if (outcome.name == name) return &outcome;
  }
  return nullptr;
}

ir::Ir parse_dump(std::string_view text, std::string_view source,
                  util::Diagnostics& diagnostics, IrrCounts* counts) {
  obs::Span span("irr.parse", source);
  if (const fp::Hit hit = fp::hit("irr.parse")) {
    if (hit.is_error()) throw std::runtime_error("irr.parse: " + hit.message);
    // Silent truncation at the parse layer: the lexer sees a shorter dump
    // and must still produce a clean (if smaller) object stream.
    if (hit.is_truncate()) text = text.substr(0, std::min(text.size(), hit.truncate_at));
  }
  ir::Ir ir;
  if (counts != nullptr) counts->bytes = text.size();
  parse_text_into(text, source, 0, ir, diagnostics, diagnostics, counts);
  return ir;
}

ir::Ir parse_dump_parallel(std::string_view text, std::string_view source,
                           util::Diagnostics& diagnostics, IrrCounts* counts,
                           unsigned threads, std::size_t shard_target_bytes) {
  threads = resolve_threads(threads);
  if (threads <= 1) return parse_dump(text, source, diagnostics, counts);

  obs::Span span("irr.parse", source);
  // Same prologue as parse_dump, evaluated exactly once for the whole dump
  // so failpoint budgets and truncation semantics match the serial path.
  if (const fp::Hit hit = fp::hit("irr.parse")) {
    if (hit.is_error()) throw std::runtime_error("irr.parse: " + hit.message);
    if (hit.is_truncate()) text = text.substr(0, std::min(text.size(), hit.truncate_at));
  }
  if (counts != nullptr) counts->bytes = text.size();

  const std::vector<rpsl::Shard> shards = rpsl::shard_objects(text, shard_target_bytes);
  auto& registry = obs::MetricsRegistry::global();
  registry
      .counter("rpslyzer_loader_shards_total",
               "Parse shards cut from IRR dumps for parallel lexing")
      .inc(shards.size());
  obs::Histogram& throughput = registry.histogram(
      "rpslyzer_loader_parse_throughput_bytes_per_second",
      "Per-shard lex+parse throughput", obs::exponential_bounds(1e6, 2.0, 14));

  struct ShardSlot {
    ir::Ir ir;
    util::Diagnostics lex_diagnostics;
    util::Diagnostics parse_diagnostics;
    IrrCounts counts;
    std::exception_ptr error;
  };
  std::vector<ShardSlot> slots(shards.size());

  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1);
      if (i >= shards.size()) break;
      ShardSlot& slot = slots[i];
      const auto start = std::chrono::steady_clock::now();
      try {
        obs::Span shard_span("irr.shard", source);
        parse_text_into(shards[i].text, source, shards[i].line_offset, slot.ir,
                        slot.lex_diagnostics, slot.parse_diagnostics, &slot.counts);
      } catch (...) {
        slot.error = std::current_exception();
      }
      const double seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
      throughput.observe(static_cast<double>(shards[i].text.size()) /
                         std::max(seconds, 1e-9));
    }
  };
  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(threads, shards.size()));
  if (workers <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned t = 0; t < workers; ++t) pool.emplace_back(worker);
    for (auto& thread : pool) thread.join();
  }

  // Deterministic merge in shard (= text) order, lexer phase before parser
  // phase — exactly the serial ordering, where lex_objects finishes over
  // the whole dump before the parse loop starts. On a worker exception the
  // completed prefix's parser diagnostics are still delivered — like the
  // serial path failing mid-dump — before the exception resumes here.
  ir::Ir ir;
  for (ShardSlot& slot : slots) diagnostics.merge(std::move(slot.lex_diagnostics));
  for (ShardSlot& slot : slots) {
    diagnostics.merge(std::move(slot.parse_diagnostics));
    if (slot.error) std::rethrow_exception(slot.error);
    if (counts != nullptr) accumulate_counts(*counts, slot.counts);
    append_fragment(ir, std::move(slot.ir));
  }
  return ir;
}

void merge_into(ir::Ir& dst, ir::Ir&& src, RouteKeySet* seen) {
  if (const fp::Hit hit = fp::hit("irr.merge")) {
    if (hit.is_error()) throw std::runtime_error("irr.merge: " + hit.message);
  }
  // map::merge keeps dst's entry on key conflict — exactly first-wins.
  dst.aut_nums.merge(src.aut_nums);
  dst.as_sets.merge(src.as_sets);
  dst.route_sets.merge(src.route_sets);
  dst.peering_sets.merge(src.peering_sets);
  dst.filter_sets.merge(src.filter_sets);

  // Routes: dedup by (prefix, origin); the first (higher-priority) object
  // is kept. Callers merging repeatedly (load_irrs) pass a persistent key
  // set so the rebuild below only happens on the standalone path.
  RouteKeySet rebuilt;
  if (seen == nullptr) {
    for (const auto& r : dst.routes) rebuilt.emplace(r.prefix, r.origin);
    seen = &rebuilt;
  }
  for (auto& r : src.routes) {
    if (seen->emplace(r.prefix, r.origin).second) dst.routes.push_back(std::move(r));
  }
  src.routes.clear();
}

namespace {

/// The serial reference pipeline (options.threads == 1): one source at a
/// time, slurp → lex → parse → merge. The parallel pipeline is proven
/// byte-identical to this by tests/parallel_loader_test.cpp, so this body
/// stays deliberately independent of the sharded path.
LoadResult load_irrs_serial(const std::vector<IrrSource>& sources,
                            const LoadOptions& options) {
  obs::Span load_span("irr.load");
  auto& registry = obs::MetricsRegistry::global();
  obs::Counter& bytes_read = registry.counter(
      "rpslyzer_loader_bytes_read_total", "Bytes read from IRR dump files");
  obs::Counter& objects_parsed = registry.counter(
      "rpslyzer_loader_objects_parsed_total", "RPSL objects parsed from IRR dumps");
  obs::Histogram& source_seconds = registry.histogram(
      "rpslyzer_loader_source_seconds", "Wall time loading one IRR source",
      obs::exponential_bounds(0.001, 4.0, 10));

  LoadResult result;
  RouteKeySet seen_routes;
  for (const auto& source : sources) {
    obs::Span source_span("irr.source", source.name);
    const auto source_start = std::chrono::steady_clock::now();
    IrrCounts counts;
    counts.name = source.name;
    SourceOutcome outcome;
    outcome.name = source.name;

    const auto degrade = [&](std::string detail) {
      outcome.status = SourceStatus::kDegraded;
      result.diagnostics.warning(util::DiagnosticKind::kOther, detail, source.name,
                                 {source.name, 0});
      obs::log_warn("loader", "source degraded",
                    {{"source", source.name}, {"reason", detail}});
      outcome.detail = std::move(detail);
    };
    // Quarantine: the dump exists but cannot be trusted; merging a prefix
    // of it would silently shrink the corpus, so none of it is merged and
    // the failure is recorded as a hard error (unlike a missing dump).
    const auto quarantine = [&](std::string detail) {
      outcome.status = SourceStatus::kQuarantined;
      result.diagnostics.error(util::DiagnosticKind::kOther,
                               "IRR dump quarantined: " + detail, source.name,
                               {source.name, 0});
      obs::log_error("loader", "source quarantined",
                     {{"source", source.name}, {"reason", detail}});
      outcome.detail = std::move(detail);
    };

    const auto finish = [&] {
      registry
          .counter("rpslyzer_loader_sources_total", "IRR source load outcomes",
                   {{"source", source.name}, {"status", to_string(outcome.status)}})
          .inc();
      source_seconds.observe(
          std::chrono::duration<double>(std::chrono::steady_clock::now() - source_start)
              .count());
      result.counts.push_back(std::move(counts));
      result.outcomes.push_back(std::move(outcome));
    };

    std::ifstream in;
    {
      obs::Span open_span("irr.open", source.name);
      if (const fp::Hit hit = fp::hit("irr.open"); hit && hit.is_error()) {
        degrade("IRR dump unavailable: injected open fault: " + hit.message);
        finish();
        continue;
      }
      std::error_code ec;
      const bool exists = std::filesystem::exists(source.path, ec);
      if (exists && !std::filesystem::is_regular_file(source.path, ec)) {
        quarantine("not a regular file: " + source.path.string());
        finish();
        continue;
      }
      in.open(source.path, std::ios::binary);
      if (!in) {
        degrade("IRR dump unavailable: " + source.path.string());
        finish();
        continue;
      }
    }
    std::string text;
    std::string read_error;
    bool read_ok;
    {
      obs::Span read_span("irr.read", source.name);
      read_ok = slurp(in, &text, &read_error);
    }
    bytes_read.inc(text.size());
    if (!read_ok) {
      quarantine("read failed mid-dump (" + read_error + "): " + source.path.string());
      finish();
      continue;
    }
    if (options.max_object_bytes > 0) {
      const std::size_t largest = largest_object_bytes(text);
      if (largest > options.max_object_bytes) {
        quarantine("pathological object of " + std::to_string(largest) +
                   " bytes (limit " + std::to_string(options.max_object_bytes) +
                   "): " + source.path.string());
        finish();
        continue;
      }
    }
    try {
      ir::Ir parsed = parse_dump(text, source.name, result.diagnostics, &counts);
      const std::size_t raw_routes = parsed.routes.size();
      {
        obs::Span merge_span("irr.merge", source.name);
        merge_into(result.ir, std::move(parsed), &seen_routes);
      }
      result.raw_route_objects += raw_routes;
      objects_parsed.inc(counts.objects);
    } catch (const std::exception& e) {
      quarantine(std::string("exception mid-load: ") + e.what());
      counts = IrrCounts{};  // partial counts would misstate the census
      counts.name = source.name;
    }
    finish();
  }
  obs::log_info("loader", "load complete",
                {{"sources", sources.size()},
                 {"degraded", result.count_with(SourceStatus::kDegraded)},
                 {"quarantined", result.count_with(SourceStatus::kQuarantined)},
                 {"routes", result.ir.routes.size()},
                 {"aut_nums", result.ir.aut_nums.size()}});
  return result;
}

/// What phase A (concurrent per-source I/O) hands to phase B: either the
/// complete, guard-checked dump bytes or a pre-parse verdict. Diagnostics,
/// logs, and metrics for the verdict are deliberately NOT emitted here —
/// phase B materializes them on the coordinating thread in priority order
/// so their order matches the serial reference exactly.
struct PreloadedSource {
  std::string text;
  bool ready = false;  // text is complete and passed the integrity guards
  SourceStatus status = SourceStatus::kOk;
  std::string detail;  // degrade/quarantine reason when !ready
  double read_seconds = 0;
};

PreloadedSource preload_source(const IrrSource& source, const LoadOptions& options,
                               obs::Counter& bytes_read) {
  PreloadedSource pre;
  const auto start = std::chrono::steady_clock::now();
  const auto done = [&](SourceStatus status, std::string detail) {
    pre.status = status;
    pre.detail = std::move(detail);
    pre.read_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  };

  std::ifstream in;
  {
    obs::Span open_span("irr.open", source.name);
    if (const fp::Hit hit = fp::hit("irr.open"); hit && hit.is_error()) {
      done(SourceStatus::kDegraded,
           "IRR dump unavailable: injected open fault: " + hit.message);
      return pre;
    }
    std::error_code ec;
    const bool exists = std::filesystem::exists(source.path, ec);
    if (exists && !std::filesystem::is_regular_file(source.path, ec)) {
      done(SourceStatus::kQuarantined, "not a regular file: " + source.path.string());
      return pre;
    }
    in.open(source.path, std::ios::binary);
    if (!in) {
      done(SourceStatus::kDegraded, "IRR dump unavailable: " + source.path.string());
      return pre;
    }
  }
  std::string read_error;
  bool read_ok;
  {
    obs::Span read_span("irr.read", source.name);
    read_ok = slurp(in, &pre.text, &read_error);
  }
  bytes_read.inc(pre.text.size());
  if (!read_ok) {
    done(SourceStatus::kQuarantined,
         "read failed mid-dump (" + read_error + "): " + source.path.string());
    return pre;
  }
  if (options.max_object_bytes > 0) {
    const std::size_t largest = largest_object_bytes(pre.text);
    if (largest > options.max_object_bytes) {
      done(SourceStatus::kQuarantined,
           "pathological object of " + std::to_string(largest) + " bytes (limit " +
               std::to_string(options.max_object_bytes) + "): " + source.path.string());
      return pre;
    }
  }
  pre.ready = true;
  pre.read_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return pre;
}

/// The parallel pipeline: phase A reads + integrity-checks every source on
/// a bounded pool, phase B walks sources in priority order on this thread,
/// parsing each ready dump as parallel shards (parse_dump_parallel) and
/// merging through the shared RouteKeySet. All ordering-sensitive effects
/// (diagnostics, outcomes, counts, merge, "irr.parse"/"irr.merge"
/// failpoints) happen in phase B, in priority order — which is why the
/// result is byte-identical to load_irrs_serial.
LoadResult load_irrs_parallel(const std::vector<IrrSource>& sources,
                              const LoadOptions& options, unsigned threads) {
  obs::Span load_span("irr.load");
  auto& registry = obs::MetricsRegistry::global();
  obs::Counter& bytes_read = registry.counter(
      "rpslyzer_loader_bytes_read_total", "Bytes read from IRR dump files");
  obs::Counter& objects_parsed = registry.counter(
      "rpslyzer_loader_objects_parsed_total", "RPSL objects parsed from IRR dumps");
  obs::Histogram& source_seconds = registry.histogram(
      "rpslyzer_loader_source_seconds", "Wall time loading one IRR source",
      obs::exponential_bounds(0.001, 4.0, 10));

  // Phase A: concurrent reads. Workers pull source indices off an atomic
  // cursor; each source's open/read/guard work stays on one worker, so the
  // per-source failpoint ordering (irr.open before irr.read) holds.
  std::vector<PreloadedSource> preloaded(sources.size());
  {
    obs::Span read_span("irr.read_all");
    std::atomic<std::size_t> next{0};
    auto reader = [&] {
      while (true) {
        const std::size_t i = next.fetch_add(1);
        if (i >= sources.size()) break;
        obs::Span source_span("irr.source", sources[i].name);
        preloaded[i] = preload_source(sources[i], options, bytes_read);
      }
    };
    const unsigned readers =
        static_cast<unsigned>(std::min<std::size_t>(threads, sources.size()));
    if (readers <= 1) {
      reader();
    } else {
      std::vector<std::thread> pool;
      pool.reserve(readers);
      for (unsigned t = 0; t < readers; ++t) pool.emplace_back(reader);
      for (auto& thread : pool) thread.join();
    }
  }

  // Phase B: priority-order parse + merge on this thread. Shard-level
  // parallelism inside parse_dump_parallel keeps the pool busy while the
  // ordering-sensitive merge stays sequential.
  LoadResult result;
  RouteKeySet seen_routes;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const IrrSource& source = sources[i];
    PreloadedSource& pre = preloaded[i];
    const auto phase_b_start = std::chrono::steady_clock::now();
    IrrCounts counts;
    counts.name = source.name;
    SourceOutcome outcome;
    outcome.name = source.name;

    const auto degrade = [&](std::string detail) {
      outcome.status = SourceStatus::kDegraded;
      result.diagnostics.warning(util::DiagnosticKind::kOther, detail, source.name,
                                 {source.name, 0});
      obs::log_warn("loader", "source degraded",
                    {{"source", source.name}, {"reason", detail}});
      outcome.detail = std::move(detail);
    };
    const auto quarantine = [&](std::string detail) {
      outcome.status = SourceStatus::kQuarantined;
      result.diagnostics.error(util::DiagnosticKind::kOther,
                               "IRR dump quarantined: " + detail, source.name,
                               {source.name, 0});
      obs::log_error("loader", "source quarantined",
                     {{"source", source.name}, {"reason", detail}});
      outcome.detail = std::move(detail);
    };

    if (!pre.ready) {
      if (pre.status == SourceStatus::kDegraded) {
        degrade(std::move(pre.detail));
      } else {
        quarantine(std::move(pre.detail));
      }
    } else {
      try {
        ir::Ir parsed = parse_dump_parallel(pre.text, source.name, result.diagnostics,
                                            &counts, threads, options.shard_target_bytes);
        const std::size_t raw_routes = parsed.routes.size();
        {
          obs::Span merge_span("irr.merge", source.name);
          merge_into(result.ir, std::move(parsed), &seen_routes);
        }
        result.raw_route_objects += raw_routes;
        objects_parsed.inc(counts.objects);
      } catch (const std::exception& e) {
        quarantine(std::string("exception mid-load: ") + e.what());
        counts = IrrCounts{};  // partial counts would misstate the census
        counts.name = source.name;
      }
    }
    pre.text.clear();
    pre.text.shrink_to_fit();

    registry
        .counter("rpslyzer_loader_sources_total", "IRR source load outcomes",
                 {{"source", source.name}, {"status", to_string(outcome.status)}})
        .inc();
    source_seconds.observe(
        pre.read_seconds +
        std::chrono::duration<double>(std::chrono::steady_clock::now() - phase_b_start)
            .count());
    result.counts.push_back(std::move(counts));
    result.outcomes.push_back(std::move(outcome));
  }
  obs::log_info("loader", "load complete",
                {{"sources", sources.size()},
                 {"threads", threads},
                 {"degraded", result.count_with(SourceStatus::kDegraded)},
                 {"quarantined", result.count_with(SourceStatus::kQuarantined)},
                 {"routes", result.ir.routes.size()},
                 {"aut_nums", result.ir.aut_nums.size()}});
  return result;
}

}  // namespace

LoadResult load_irrs(const std::vector<IrrSource>& sources, const LoadOptions& options) {
  const unsigned threads = resolve_threads(options.threads);
  if (threads <= 1 || sources.empty()) return load_irrs_serial(sources, options);
  return load_irrs_parallel(sources, options, threads);
}

std::vector<IrrSource> table1_sources(const std::filesystem::path& directory) {
  // Table 1 order: authoritative regional and national registries, RADB,
  // then other databases.
  static const char* kNames[] = {"APNIC", "AFRINIC", "ARIN",   "LACNIC", "RIPE",
                                 "IDNIC", "JPIRR",   "RADB",   "NTTCOM", "LEVEL3",
                                 "TC",    "REACH",   "ALTDB"};
  std::vector<IrrSource> sources;
  for (const char* name : kNames) {
    sources.push_back({name, directory / (util::lower(name) + ".db")});
  }
  return sources;
}

}  // namespace rpslyzer::irr
