#include "rpslyzer/irr/loader.hpp"

#include <fstream>
#include <set>
#include <sstream>

#include "rpslyzer/rpsl/object_lexer.hpp"
#include "rpslyzer/rpsl/object_parser.hpp"
#include "rpslyzer/util/strings.hpp"

namespace rpslyzer::irr {

namespace {

void count_rules(const ir::AutNum& an, IrrCounts& counts) {
  counts.imports += an.imports.size();
  counts.exports += an.exports.size();
}

}  // namespace

ir::Ir parse_dump(std::string_view text, std::string_view source,
                  util::Diagnostics& diagnostics, IrrCounts* counts) {
  ir::Ir ir;
  auto raw_objects = rpsl::lex_objects(text, source, diagnostics);
  if (counts != nullptr) {
    counts->bytes = text.size();
    counts->objects += raw_objects.size();
  }
  for (const auto& raw : raw_objects) {
    rpsl::ParsedObject parsed = rpsl::parse_object(raw, diagnostics);
    std::visit(util::overloaded{
                   [](std::monostate) {},
                   [&](ir::AutNum& an) {
                     if (counts != nullptr) {
                       ++counts->aut_nums;
                       count_rules(an, *counts);
                     }
                     ir.aut_nums.emplace(an.asn, std::move(an));
                   },
                   [&](ir::AsSet& s) {
                     if (counts != nullptr) ++counts->as_sets;
                     ir.as_sets.emplace(s.name, std::move(s));
                   },
                   [&](ir::RouteSet& s) {
                     if (counts != nullptr) ++counts->route_sets;
                     ir.route_sets.emplace(s.name, std::move(s));
                   },
                   [&](ir::PeeringSet& s) {
                     if (counts != nullptr) ++counts->peering_sets;
                     ir.peering_sets.emplace(s.name, std::move(s));
                   },
                   [&](ir::FilterSet& s) {
                     if (counts != nullptr) ++counts->filter_sets;
                     ir.filter_sets.emplace(s.name, std::move(s));
                   },
                   [&](ir::RouteObject& r) {
                     if (counts != nullptr) ++counts->routes;
                     ir.routes.push_back(std::move(r));
                   },
               },
               parsed);
  }
  return ir;
}

void merge_into(ir::Ir& dst, ir::Ir&& src) {
  // map::merge keeps dst's entry on key conflict — exactly first-wins.
  dst.aut_nums.merge(src.aut_nums);
  dst.as_sets.merge(src.as_sets);
  dst.route_sets.merge(src.route_sets);
  dst.peering_sets.merge(src.peering_sets);
  dst.filter_sets.merge(src.filter_sets);

  // Routes: dedup by (prefix, origin); the first (higher-priority) object
  // is kept. Rebuild the key set each call would be quadratic over many
  // merges, so callers merging repeatedly should prefer load_irrs (which
  // maintains the key set across merges); this standalone path recomputes.
  std::set<std::pair<net::Prefix, ir::Asn>> seen;
  for (const auto& r : dst.routes) seen.emplace(r.prefix, r.origin);
  for (auto& r : src.routes) {
    if (seen.emplace(r.prefix, r.origin).second) dst.routes.push_back(std::move(r));
  }
  src.routes.clear();
}

LoadResult load_irrs(const std::vector<IrrSource>& sources) {
  LoadResult result;
  std::set<std::pair<net::Prefix, ir::Asn>> seen_routes;
  for (const auto& source : sources) {
    IrrCounts counts;
    counts.name = source.name;

    std::ifstream in(source.path, std::ios::binary);
    if (!in) {
      result.diagnostics.warning(util::DiagnosticKind::kOther,
                                 "IRR dump unavailable: " + source.path.string(),
                                 source.name, {source.name, 0});
      result.counts.push_back(std::move(counts));
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string text = std::move(buffer).str();

    ir::Ir parsed = parse_dump(text, source.name, result.diagnostics, &counts);
    result.raw_route_objects += parsed.routes.size();

    result.ir.aut_nums.merge(parsed.aut_nums);
    result.ir.as_sets.merge(parsed.as_sets);
    result.ir.route_sets.merge(parsed.route_sets);
    result.ir.peering_sets.merge(parsed.peering_sets);
    result.ir.filter_sets.merge(parsed.filter_sets);
    for (auto& r : parsed.routes) {
      if (seen_routes.emplace(r.prefix, r.origin).second) {
        result.ir.routes.push_back(std::move(r));
      }
    }
    result.counts.push_back(std::move(counts));
  }
  return result;
}

std::vector<IrrSource> table1_sources(const std::filesystem::path& directory) {
  // Table 1 order: authoritative regional and national registries, RADB,
  // then other databases.
  static const char* kNames[] = {"APNIC", "AFRINIC", "ARIN",   "LACNIC", "RIPE",
                                 "IDNIC", "JPIRR",   "RADB",   "NTTCOM", "LEVEL3",
                                 "TC",    "REACH",   "ALTDB"};
  std::vector<IrrSource> sources;
  for (const char* name : kNames) {
    sources.push_back({name, directory / (util::lower(name) + ".db")});
  }
  return sources;
}

}  // namespace rpslyzer::irr
