#pragma once
// IP address substrate: a single 128-bit value type covering IPv4 and IPv6.
//
// RPSL policies are address-family aware (afi specifiers, route vs route6),
// so the address type carries its family. Storage is two big-endian 64-bit
// halves, which makes prefix masking and comparison cheap; IPv4 addresses
// occupy the top 32 bits of `hi` so that prefix-length arithmetic is uniform
// across families.

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace rpslyzer::net {

enum class Family : std::uint8_t { kIpv4, kIpv6 };

constexpr std::uint8_t max_prefix_len(Family f) noexcept {
  return f == Family::kIpv4 ? 32 : 128;
}

/// An IPv4 or IPv6 address. Value type, totally ordered within a family
/// (IPv4 sorts before IPv6).
class IpAddress {
 public:
  constexpr IpAddress() noexcept = default;
  constexpr IpAddress(Family family, std::uint64_t hi, std::uint64_t lo) noexcept
      : hi_(hi), lo_(lo), family_(family) {}

  /// Build an IPv4 address from a host-order 32-bit value.
  static constexpr IpAddress v4(std::uint32_t value) noexcept {
    return IpAddress(Family::kIpv4, static_cast<std::uint64_t>(value) << 32, 0);
  }

  /// Build an IPv6 address from two host-order 64-bit halves.
  static constexpr IpAddress v6(std::uint64_t hi, std::uint64_t lo) noexcept {
    return IpAddress(Family::kIpv6, hi, lo);
  }

  /// Parse dotted-quad IPv4 or RFC 4291 IPv6 (including "::" compression and
  /// embedded IPv4 tails). Returns nullopt on malformed input.
  static std::optional<IpAddress> parse(std::string_view text) noexcept;

  constexpr Family family() const noexcept { return family_; }
  constexpr bool is_v4() const noexcept { return family_ == Family::kIpv4; }
  constexpr std::uint64_t hi() const noexcept { return hi_; }
  constexpr std::uint64_t lo() const noexcept { return lo_; }

  /// The IPv4 value in host order; only meaningful when is_v4().
  constexpr std::uint32_t v4_value() const noexcept {
    return static_cast<std::uint32_t>(hi_ >> 32);
  }

  /// Bit `i` counting from the most significant bit (bit 0 = top bit).
  constexpr bool bit(std::uint8_t i) const noexcept {
    return i < 64 ? ((hi_ >> (63 - i)) & 1) != 0 : ((lo_ >> (127 - i)) & 1) != 0;
  }

  /// Zero out all bits below position `len` (keep the top `len` bits).
  constexpr IpAddress masked(std::uint8_t len) const noexcept {
    std::uint64_t hi = hi_;
    std::uint64_t lo = lo_;
    if (len >= 128) {
      // keep everything
    } else if (len >= 64) {
      lo &= ~std::uint64_t{0} << (128 - len);
      if (len == 64) lo = 0;
    } else {
      lo = 0;
      hi = (len == 0) ? 0 : hi & (~std::uint64_t{0} << (64 - len));
    }
    return IpAddress(family_, hi, lo);
  }

  /// Canonical text form ("192.0.2.1", "2001:db8::1").
  std::string to_string() const;

  friend constexpr auto operator<=>(const IpAddress& a, const IpAddress& b) noexcept {
    if (auto c = a.family_ <=> b.family_; c != 0) return c;
    if (auto c = a.hi_ <=> b.hi_; c != 0) return c;
    return a.lo_ <=> b.lo_;
  }
  friend constexpr bool operator==(const IpAddress&, const IpAddress&) noexcept = default;

 private:
  std::uint64_t hi_ = 0;
  std::uint64_t lo_ = 0;
  Family family_ = Family::kIpv4;
};

}  // namespace rpslyzer::net
