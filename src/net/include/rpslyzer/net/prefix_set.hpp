#pragma once
// Address-prefix sets: the `{ 1.2.3.0/24^+, ... }` construct in RPSL filters
// and the member lists of route-set objects.

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "rpslyzer/net/prefix.hpp"

namespace rpslyzer::net {

/// One element of an address-prefix set: a prefix plus an optional range
/// operator ("1.2.3.0/24^25-32").
struct PrefixRange {
  Prefix prefix;
  RangeOp op;

  /// Parse "prefix[^op]".
  static std::optional<PrefixRange> parse(std::string_view text) noexcept;

  /// Does route prefix `p` fall into this element?
  bool matches(const Prefix& p) const noexcept { return net::matches(prefix, op, p); }

  /// Same with an extra operator applied on top (set-level operator).
  bool matches_with(const RangeOp& outer, const Prefix& p) const noexcept {
    return net::matches_composed(prefix, op, outer, p);
  }

  std::string to_string() const { return prefix.to_string() + op.to_string(); }

  friend bool operator==(const PrefixRange&, const PrefixRange&) noexcept = default;
};

/// A flat set of prefix ranges with linear matching. Policy filters in the
/// wild hold at most a handful of inline prefixes, so a vector scan wins
/// over a trie here; large collections (route objects) use PrefixTrie or the
/// per-origin sorted index instead.
class PrefixSet {
 public:
  PrefixSet() = default;
  explicit PrefixSet(std::vector<PrefixRange> ranges) : ranges_(std::move(ranges)) {}

  void add(PrefixRange r) { ranges_.push_back(r); }
  const std::vector<PrefixRange>& ranges() const noexcept { return ranges_; }
  bool empty() const noexcept { return ranges_.empty(); }
  std::size_t size() const noexcept { return ranges_.size(); }

  bool matches(const Prefix& p) const noexcept;
  bool matches_with(const RangeOp& outer, const Prefix& p) const noexcept;

  std::string to_string() const;

  friend bool operator==(const PrefixSet&, const PrefixSet&) noexcept = default;

 private:
  std::vector<PrefixRange> ranges_;
};

}  // namespace rpslyzer::net
