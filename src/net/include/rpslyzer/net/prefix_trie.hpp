#pragma once
// Binary prefix trie with per-family roots.
//
// Used for martian lookups and coverage queries ("is this route prefix
// covered by any prefix in the set, possibly with a range operator?").
// Header-only template so payload types stay flexible.

#include <cstdint>
#include <memory>
#include <optional>
#include <type_traits>
#include <vector>

#include "rpslyzer/net/prefix.hpp"

namespace rpslyzer::net {

template <typename T>
class PrefixTrie {
 public:
  /// Insert (or overwrite) the value stored at `prefix`.
  void insert(const Prefix& prefix, T value) {
    Node* node = &root(prefix.family());
    for (std::uint8_t i = 0; i < prefix.length(); ++i) {
      auto& child = prefix.address().bit(i) ? node->one : node->zero;
      if (!child) child = std::make_unique<Node>();
      node = child.get();
    }
    node->value = std::move(value);
  }

  /// Value stored exactly at `prefix`, if any.
  const T* exact(const Prefix& prefix) const noexcept {
    const Node* node = &root(prefix.family());
    for (std::uint8_t i = 0; i < prefix.length(); ++i) {
      node = (prefix.address().bit(i) ? node->one : node->zero).get();
      if (node == nullptr) return nullptr;
    }
    return node->value ? &*node->value : nullptr;
  }

  /// Longest stored prefix covering `prefix` (including itself); returns the
  /// covering prefix and its value.
  std::optional<std::pair<Prefix, const T*>> longest_match(const Prefix& prefix) const {
    const Node* node = &root(prefix.family());
    const T* best = node->value ? &*node->value : nullptr;
    std::uint8_t best_len = 0;
    std::uint8_t i = 0;
    for (; i < prefix.length(); ++i) {
      node = (prefix.address().bit(i) ? node->one : node->zero).get();
      if (node == nullptr) break;
      if (node->value) {
        best = &*node->value;
        best_len = static_cast<std::uint8_t>(i + 1);
      }
    }
    if (best == nullptr) return std::nullopt;
    return std::make_pair(Prefix(prefix.address(), best_len), best);
  }

  /// Visit every stored (covering) prefix on the path to `prefix`, most
  /// general first. `visit(covering_prefix, value)` returns false to stop.
  template <typename Visit>
  void for_each_cover(const Prefix& prefix, Visit visit) const {
    const Node* node = &root(prefix.family());
    if (node->value && !visit(Prefix(prefix.address(), 0), *node->value)) return;
    for (std::uint8_t i = 0; i < prefix.length(); ++i) {
      node = (prefix.address().bit(i) ? node->one : node->zero).get();
      if (node == nullptr) return;
      if (node->value &&
          !visit(Prefix(prefix.address(), static_cast<std::uint8_t>(i + 1)), *node->value)) {
        return;
      }
    }
  }

  /// Visit every stored (prefix, value) pair in deterministic order:
  /// IPv4 before IPv6, then ascending Prefix order (pre-order DFS with the
  /// zero child first — identical to std::map<Prefix, T> iteration). The
  /// snapshot persistence layer relies on this order being reproducible.
  /// `visit(prefix, value)` returns void or bool (false stops early).
  template <typename Visit>
  void for_each(Visit visit) const {
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;
    if (!walk(&v4_root_, Family::kIpv4, 0, hi, lo, visit)) return;
    hi = lo = 0;
    walk(&v6_root_, Family::kIpv6, 0, hi, lo, visit);
  }

  /// Number of stored values.
  std::size_t size() const noexcept { return count(&v4_root_) + count(&v6_root_); }
  bool empty() const noexcept { return size() == 0; }

  /// Number of allocated trie nodes across both family roots (capacity
  /// metric: interior nodes included, stored values or not).
  std::size_t node_count() const noexcept {
    return count_nodes(&v4_root_) + count_nodes(&v6_root_);
  }

 private:
  struct Node {
    std::unique_ptr<Node> zero;
    std::unique_ptr<Node> one;
    std::optional<T> value;
  };

  Node& root(Family f) noexcept { return f == Family::kIpv4 ? v4_root_ : v6_root_; }
  const Node& root(Family f) const noexcept { return f == Family::kIpv4 ? v4_root_ : v6_root_; }

  static std::size_t count(const Node* node) noexcept {
    if (node == nullptr) return 0;
    return (node->value ? 1 : 0) + count(node->zero.get()) + count(node->one.get());
  }

  static std::size_t count_nodes(const Node* node) noexcept {
    if (node == nullptr) return 0;
    return 1 + count_nodes(node->zero.get()) + count_nodes(node->one.get());
  }

  template <typename Visit>
  static bool walk(const Node* node, Family family, std::uint8_t depth, std::uint64_t& hi,
                   std::uint64_t& lo, Visit& visit) {
    if (node == nullptr) return true;
    if (node->value) {
      const Prefix prefix(IpAddress(family, hi, lo), depth);
      if constexpr (std::is_void_v<decltype(visit(prefix, *node->value))>) {
        visit(prefix, *node->value);
      } else {
        if (!visit(prefix, *node->value)) return false;
      }
    }
    if (depth >= max_prefix_len(family)) return true;
    if (!walk(node->zero.get(), family, static_cast<std::uint8_t>(depth + 1), hi, lo, visit)) {
      return false;
    }
    // Set bit `depth` (counting from the most significant bit) for the one
    // branch, then clear it on the way back out.
    std::uint64_t& half = depth < 64 ? hi : lo;
    const std::uint64_t bit = std::uint64_t{1} << (depth < 64 ? 63 - depth : 127 - depth);
    half |= bit;
    const bool go_on =
        walk(node->one.get(), family, static_cast<std::uint8_t>(depth + 1), hi, lo, visit);
    half &= ~bit;
    return go_on;
  }

  Node v4_root_;
  Node v6_root_;
};

}  // namespace rpslyzer::net
