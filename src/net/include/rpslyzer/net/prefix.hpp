#pragma once
// IP prefixes and RPSL range operators.
//
// RFC 2622 §2 defines range operators on address prefixes:
//   ^-     exclusive more-specifics,
//   ^+     inclusive more-specifics,
//   ^n     more-specifics of exactly length n,
//   ^n-m   more-specifics of lengths n through m.
// This module implements their semantics, including composition (an operator
// applied to an already-ranged prefix), which the resolver needs for the
// non-standard "route-set followed by range operator" syntax the paper
// supports (Appendix B).

#include <compare>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "rpslyzer/net/ip.hpp"

namespace rpslyzer::net {

/// A CIDR prefix. The stored address is always masked to the prefix length,
/// so equal prefixes compare equal bytewise.
class Prefix {
 public:
  constexpr Prefix() noexcept = default;
  constexpr Prefix(IpAddress addr, std::uint8_t len) noexcept
      : addr_(addr.masked(normalize_len(addr.family(), len))),
        len_(normalize_len(addr.family(), len)) {}

  /// Parse "a.b.c.d/len" or "hex:groups::/len". A bare address parses as a
  /// host prefix (/32 or /128). Returns nullopt on malformed input or
  /// out-of-range length.
  static std::optional<Prefix> parse(std::string_view text) noexcept;

  constexpr IpAddress address() const noexcept { return addr_; }
  constexpr std::uint8_t length() const noexcept { return len_; }
  constexpr Family family() const noexcept { return addr_.family(); }
  constexpr bool is_v4() const noexcept { return addr_.is_v4(); }
  constexpr std::uint8_t max_length() const noexcept { return max_prefix_len(family()); }

  /// True if `other` is equal to or more specific than this prefix.
  constexpr bool covers(const Prefix& other) const noexcept {
    return family() == other.family() && len_ <= other.len_ &&
           other.addr_.masked(len_) == addr_;
  }

  /// True if the address falls inside this prefix.
  constexpr bool contains(const IpAddress& addr) const noexcept {
    return family() == addr.family() && addr.masked(len_) == addr_;
  }

  std::string to_string() const;

  friend constexpr auto operator<=>(const Prefix& a, const Prefix& b) noexcept {
    if (auto c = a.addr_ <=> b.addr_; c != 0) return c;
    return a.len_ <=> b.len_;
  }
  friend constexpr bool operator==(const Prefix&, const Prefix&) noexcept = default;

 private:
  static constexpr std::uint8_t normalize_len(Family f, std::uint8_t len) noexcept {
    const std::uint8_t max = max_prefix_len(f);
    return len > max ? max : len;
  }

  IpAddress addr_{};
  std::uint8_t len_ = 0;
};

/// An RPSL range operator.
struct RangeOp {
  enum class Kind : std::uint8_t {
    kNone,   // no operator: exact-prefix match
    kMinus,  // ^- : strictly more specific
    kPlus,   // ^+ : this prefix or more specific
    kExact,  // ^n : more specifics of exactly length n (n may equal len)
    kRange,  // ^n-m
  };

  Kind kind = Kind::kNone;
  std::uint8_t n = 0;  // kExact: the length; kRange: lower bound
  std::uint8_t m = 0;  // kRange: upper bound

  static constexpr RangeOp none() noexcept { return {}; }
  static constexpr RangeOp minus() noexcept { return {Kind::kMinus, 0, 0}; }
  static constexpr RangeOp plus() noexcept { return {Kind::kPlus, 0, 0}; }
  static constexpr RangeOp exact(std::uint8_t n) noexcept { return {Kind::kExact, n, n}; }
  static constexpr RangeOp range(std::uint8_t n, std::uint8_t m) noexcept {
    return {Kind::kRange, n, m};
  }

  constexpr bool is_none() const noexcept { return kind == Kind::kNone; }

  /// Parse the text after '^': "-", "+", "n", or "n-m".
  static std::optional<RangeOp> parse(std::string_view text) noexcept;

  /// Render including the leading '^' ("" for kNone).
  std::string to_string() const;

  friend constexpr bool operator==(const RangeOp&, const RangeOp&) noexcept = default;
};

/// The inclusive [lo, hi] prefix-length interval a range operator selects
/// when applied to a base prefix of length `len` in family `family`;
/// nullopt when the selection is empty (e.g. ^8 applied to a /16).
std::optional<std::pair<std::uint8_t, std::uint8_t>> length_interval(
    const RangeOp& op, std::uint8_t len, Family family) noexcept;

/// True if route prefix `p` matches `base` under range operator `op`
/// (RFC 2622 semantics: p must be inside base and its length must fall in
/// the operator's interval).
bool matches(const Prefix& base, const RangeOp& op, const Prefix& p) noexcept;

/// The length interval selected by applying `outer` to the set
/// "base^inner" where base has length `len` (the composition case: a range
/// operator attached to a set reference that already carries per-member
/// operators, Appendix B's non-standard syntax). RFC 2622 reduces the
/// composition to a single interval; nullopt when empty.
std::optional<std::pair<std::uint8_t, std::uint8_t>> composed_interval(
    const RangeOp& inner, const RangeOp& outer, std::uint8_t len, Family family) noexcept;

/// True if `p` matches "base^inner" with `outer` applied on top.
bool matches_composed(const Prefix& base, const RangeOp& inner, const RangeOp& outer,
                      const Prefix& p) noexcept;

/// Apply one more range operator on top of an already-computed length
/// interval (the iterated form of `composed_interval`: stacked operators
/// fold innermost-first). nullopt when the selection becomes empty.
std::optional<std::pair<std::uint8_t, std::uint8_t>> step_interval(
    std::pair<std::uint8_t, std::uint8_t> interval, const RangeOp& op,
    std::uint8_t family_max) noexcept;

/// True if `p` matches base^own with the operators in `chain` applied on
/// top, innermost (chain.front()) to outermost (chain.back()). This is the
/// fully general stacked form the route-set resolver needs: a member's own
/// operator plus one operator per set reference on the path down to it.
bool matches_with_chain(const Prefix& base, const RangeOp& own, std::span<const RangeOp> chain,
                        const Prefix& p) noexcept;

}  // namespace rpslyzer::net
