#pragma once
// The `fltr-martian` built-in: reserved, private, and otherwise unroutable
// address space. RPSL policies commonly reject these ("accept NOT
// fltr-martian", Appendix A example #4).

#include "rpslyzer/net/prefix.hpp"

namespace rpslyzer::net {

/// True if `p` falls inside well-known martian/bogon space or has a length
/// conventionally rejected in the DFZ (IPv4 longer than /24 when covered by
/// no martian, is NOT treated as a martian here — only address-space rules).
bool is_martian(const Prefix& p) noexcept;

}  // namespace rpslyzer::net
