#include "rpslyzer/net/prefix_set.hpp"

#include "rpslyzer/util/strings.hpp"

namespace rpslyzer::net {

std::optional<PrefixRange> PrefixRange::parse(std::string_view text) noexcept {
  text = util::trim(text);
  const std::size_t caret = text.find('^');
  RangeOp op = RangeOp::none();
  if (caret != std::string_view::npos) {
    auto parsed = RangeOp::parse(text.substr(caret + 1));
    if (!parsed) return std::nullopt;
    op = *parsed;
    text = text.substr(0, caret);
  }
  auto prefix = Prefix::parse(text);
  if (!prefix) return std::nullopt;
  return PrefixRange{*prefix, op};
}

bool PrefixSet::matches(const Prefix& p) const noexcept {
  for (const auto& r : ranges_) {
    if (r.matches(p)) return true;
  }
  return false;
}

bool PrefixSet::matches_with(const RangeOp& outer, const Prefix& p) const noexcept {
  for (const auto& r : ranges_) {
    if (r.matches_with(outer, p)) return true;
  }
  return false;
}

std::string PrefixSet::to_string() const {
  std::string out = "{";
  bool first = true;
  for (const auto& r : ranges_) {
    if (!first) out += ", ";
    first = false;
    out += r.to_string();
  }
  out += "}";
  return out;
}

}  // namespace rpslyzer::net
