#include "rpslyzer/net/ip.hpp"

#include <array>
#include <cstdio>

#include "rpslyzer/util/strings.hpp"

namespace rpslyzer::net {

namespace {

std::optional<std::uint32_t> parse_v4_value(std::string_view text) noexcept {
  auto parts = util::split(text, '.');
  if (parts.size() != 4) return std::nullopt;
  std::uint32_t value = 0;
  for (auto part : parts) {
    if (part.empty() || part.size() > 3) return std::nullopt;
    auto octet = util::parse_u32(part);
    if (!octet || *octet > 255) return std::nullopt;
    value = (value << 8) | *octet;
  }
  return value;
}

std::optional<std::uint16_t> parse_hex_group(std::string_view text) noexcept {
  if (text.empty() || text.size() > 4) return std::nullopt;
  std::uint32_t value = 0;
  for (char c : text) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<std::uint32_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      value |= static_cast<std::uint32_t>(c - 'A' + 10);
    } else {
      return std::nullopt;
    }
  }
  return static_cast<std::uint16_t>(value);
}

std::optional<IpAddress> parse_v6(std::string_view text) noexcept {
  // Split at "::" if present; each side is a colon-separated group list.
  std::array<std::uint16_t, 8> groups{};
  std::size_t double_colon = text.find("::");
  std::vector<std::uint16_t> head;
  std::vector<std::uint16_t> tail;

  auto parse_groups = [](std::string_view part,
                         std::vector<std::uint16_t>& out) noexcept -> bool {
    if (part.empty()) return true;
    auto fields = util::split(part, ':');
    for (std::size_t i = 0; i < fields.size(); ++i) {
      std::string_view field = fields[i];
      if (field.find('.') != std::string_view::npos) {
        // Embedded IPv4 tail, must be the last field.
        if (i + 1 != fields.size()) return false;
        auto v4 = parse_v4_value(field);
        if (!v4) return false;
        out.push_back(static_cast<std::uint16_t>(*v4 >> 16));
        out.push_back(static_cast<std::uint16_t>(*v4 & 0xFFFF));
        return true;
      }
      auto group = parse_hex_group(field);
      if (!group) return false;
      out.push_back(*group);
    }
    return true;
  };

  if (double_colon == std::string_view::npos) {
    if (!parse_groups(text, head) || head.size() != 8) return std::nullopt;
    for (std::size_t i = 0; i < 8; ++i) groups[i] = head[i];
  } else {
    std::string_view left = text.substr(0, double_colon);
    std::string_view right = text.substr(double_colon + 2);
    // Reject a second "::".
    if (right.find("::") != std::string_view::npos) return std::nullopt;
    if (!parse_groups(left, head) || !parse_groups(right, tail)) return std::nullopt;
    if (head.size() + tail.size() > 7) return std::nullopt;  // "::" covers >= 1 group
    for (std::size_t i = 0; i < head.size(); ++i) groups[i] = head[i];
    for (std::size_t i = 0; i < tail.size(); ++i) groups[8 - tail.size() + i] = tail[i];
  }

  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  for (int i = 0; i < 4; ++i) hi = (hi << 16) | groups[static_cast<std::size_t>(i)];
  for (int i = 4; i < 8; ++i) lo = (lo << 16) | groups[static_cast<std::size_t>(i)];
  return IpAddress::v6(hi, lo);
}

}  // namespace

std::optional<IpAddress> IpAddress::parse(std::string_view text) noexcept {
  if (text.empty()) return std::nullopt;
  if (text.find(':') != std::string_view::npos) return parse_v6(text);
  auto v4 = parse_v4_value(text);
  if (!v4) return std::nullopt;
  return IpAddress::v4(*v4);
}

std::string IpAddress::to_string() const {
  char buf[48];
  if (is_v4()) {
    const std::uint32_t v = v4_value();
    std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (v >> 24) & 0xFF, (v >> 16) & 0xFF,
                  (v >> 8) & 0xFF, v & 0xFF);
    return buf;
  }
  std::array<std::uint16_t, 8> groups{};
  for (int i = 0; i < 4; ++i)
    groups[static_cast<std::size_t>(i)] = static_cast<std::uint16_t>(hi_ >> (48 - 16 * i));
  for (int i = 0; i < 4; ++i)
    groups[static_cast<std::size_t>(4 + i)] = static_cast<std::uint16_t>(lo_ >> (48 - 16 * i));

  // RFC 5952: compress the longest run of zero groups (length >= 2).
  int best_start = -1;
  int best_len = 0;
  int run_start = -1;
  int run_len = 0;
  for (int i = 0; i < 8; ++i) {
    if (groups[static_cast<std::size_t>(i)] == 0) {
      if (run_start < 0) run_start = i;
      ++run_len;
      if (run_len > best_len) {
        best_len = run_len;
        best_start = run_start;
      }
    } else {
      run_start = -1;
      run_len = 0;
    }
  }
  if (best_len < 2) best_start = -1;

  std::string out;
  for (int i = 0; i < 8;) {
    if (i == best_start) {
      out += "::";
      i += best_len;
      continue;
    }
    if (!out.empty() && out.back() != ':') out.push_back(':');
    std::snprintf(buf, sizeof buf, "%x", groups[static_cast<std::size_t>(i)]);
    out += buf;
    ++i;
  }
  return out;
}

}  // namespace rpslyzer::net
