#include "rpslyzer/net/prefix.hpp"

#include "rpslyzer/util/strings.hpp"

namespace rpslyzer::net {

std::optional<Prefix> Prefix::parse(std::string_view text) noexcept {
  text = util::trim(text);
  if (text.empty()) return std::nullopt;
  const std::size_t slash = text.rfind('/');
  std::string_view addr_part = (slash == std::string_view::npos) ? text : text.substr(0, slash);
  auto addr = IpAddress::parse(addr_part);
  if (!addr) return std::nullopt;
  std::uint8_t len = max_prefix_len(addr->family());
  if (slash != std::string_view::npos) {
    auto parsed = util::parse_u8(text.substr(slash + 1));
    if (!parsed || *parsed > max_prefix_len(addr->family())) return std::nullopt;
    len = *parsed;
  }
  return Prefix(*addr, len);
}

std::string Prefix::to_string() const {
  return addr_.to_string() + "/" + std::to_string(len_);
}

std::optional<RangeOp> RangeOp::parse(std::string_view text) noexcept {
  text = util::trim(text);
  if (text == "-") return minus();
  if (text == "+") return plus();
  const std::size_t dash = text.find('-');
  if (dash == std::string_view::npos) {
    auto n = util::parse_u8(text);
    if (!n) return std::nullopt;
    return exact(*n);
  }
  auto n = util::parse_u8(text.substr(0, dash));
  auto m = util::parse_u8(text.substr(dash + 1));
  if (!n || !m || *n > *m) return std::nullopt;
  return range(*n, *m);
}

std::string RangeOp::to_string() const {
  switch (kind) {
    case Kind::kNone:
      return "";
    case Kind::kMinus:
      return "^-";
    case Kind::kPlus:
      return "^+";
    case Kind::kExact:
      return "^" + std::to_string(n);
    case Kind::kRange:
      return "^" + std::to_string(n) + "-" + std::to_string(m);
  }
  return "";
}

std::optional<std::pair<std::uint8_t, std::uint8_t>> length_interval(const RangeOp& op,
                                                                     std::uint8_t len,
                                                                     Family family) noexcept {
  const std::uint8_t max = max_prefix_len(family);
  if (len > max) return std::nullopt;
  std::uint8_t lo = 0;
  std::uint8_t hi = 0;
  switch (op.kind) {
    case RangeOp::Kind::kNone:
      lo = hi = len;
      break;
    case RangeOp::Kind::kMinus:
      if (len == max) return std::nullopt;  // a host prefix has no more specifics
      lo = static_cast<std::uint8_t>(len + 1);
      hi = max;
      break;
    case RangeOp::Kind::kPlus:
      lo = len;
      hi = max;
      break;
    case RangeOp::Kind::kExact:
    case RangeOp::Kind::kRange:
      // "More specifics of length n to m": lengths below the base prefix
      // length select nothing, so clamp the lower bound up to `len`.
      lo = op.n > len ? op.n : len;
      hi = op.m < max ? op.m : max;
      break;
  }
  if (lo > hi) return std::nullopt;
  return std::make_pair(lo, hi);
}

bool matches(const Prefix& base, const RangeOp& op, const Prefix& p) noexcept {
  if (!base.covers(p)) return false;
  auto interval = length_interval(op, base.length(), base.family());
  return interval && p.length() >= interval->first && p.length() <= interval->second;
}

std::optional<std::pair<std::uint8_t, std::uint8_t>> composed_interval(
    const RangeOp& inner, const RangeOp& outer, std::uint8_t len, Family family) noexcept {
  auto in = length_interval(inner, len, family);
  if (!in) return std::nullopt;
  if (outer.is_none()) return in;
  const std::uint8_t max = max_prefix_len(family);
  const auto [ilo, ihi] = *in;
  std::uint8_t lo = 0;
  std::uint8_t hi = 0;
  switch (outer.kind) {
    case RangeOp::Kind::kNone:
      return in;  // handled above; keep the compiler satisfied
    case RangeOp::Kind::kPlus:
      // More-specific-or-self of any selected element: lengths from the
      // shortest selected element down to host routes.
      lo = ilo;
      hi = max;
      break;
    case RangeOp::Kind::kMinus:
      // Strictly more specific than some selected element; the loosest
      // constraint comes from the shortest element.
      if (ilo == max) return std::nullopt;
      lo = static_cast<std::uint8_t>(ilo + 1);
      hi = max;
      break;
    case RangeOp::Kind::kExact:
    case RangeOp::Kind::kRange:
      lo = outer.n > ilo ? outer.n : ilo;
      hi = outer.m < max ? outer.m : max;
      break;
  }
  if (lo > hi) return std::nullopt;
  return std::make_pair(lo, hi);
}

bool matches_composed(const Prefix& base, const RangeOp& inner, const RangeOp& outer,
                      const Prefix& p) noexcept {
  if (!base.covers(p)) return false;
  auto interval = composed_interval(inner, outer, base.length(), base.family());
  return interval && p.length() >= interval->first && p.length() <= interval->second;
}

std::optional<std::pair<std::uint8_t, std::uint8_t>> step_interval(
    std::pair<std::uint8_t, std::uint8_t> interval, const RangeOp& op,
    std::uint8_t family_max) noexcept {
  auto [lo, hi] = interval;
  switch (op.kind) {
    case RangeOp::Kind::kNone:
      return interval;
    case RangeOp::Kind::kPlus:
      return std::make_pair(lo, family_max);
    case RangeOp::Kind::kMinus:
      if (lo == family_max) return std::nullopt;
      return std::make_pair(static_cast<std::uint8_t>(lo + 1), family_max);
    case RangeOp::Kind::kExact:
    case RangeOp::Kind::kRange: {
      const std::uint8_t new_lo = op.n > lo ? op.n : lo;
      const std::uint8_t new_hi = op.m < family_max ? op.m : family_max;
      if (new_lo > new_hi) return std::nullopt;
      return std::make_pair(new_lo, new_hi);
    }
  }
  return std::nullopt;
}

bool matches_with_chain(const Prefix& base, const RangeOp& own, std::span<const RangeOp> chain,
                        const Prefix& p) noexcept {
  if (!base.covers(p)) return false;
  auto interval = length_interval(own, base.length(), base.family());
  const std::uint8_t family_max = max_prefix_len(base.family());
  for (const RangeOp& op : chain) {
    if (!interval) return false;
    interval = step_interval(*interval, op, family_max);
  }
  return interval && p.length() >= interval->first && p.length() <= interval->second;
}

}  // namespace rpslyzer::net
