#include "rpslyzer/net/martians.hpp"

#include <array>

namespace rpslyzer::net {

namespace {

Prefix p4(std::uint32_t a, std::uint32_t b, std::uint32_t c, std::uint32_t d,
          std::uint8_t len) {
  return Prefix(IpAddress::v4((a << 24) | (b << 16) | (c << 8) | d), len);
}

// IPv4 martians per RFC 6890 and conventional bogon lists.
const std::array<Prefix, 13>& v4_martians() {
  static const std::array<Prefix, 13> table = {
      p4(0, 0, 0, 0, 8),        // "this" network
      p4(10, 0, 0, 0, 8),       // RFC 1918
      p4(100, 64, 0, 0, 10),    // CGNAT
      p4(127, 0, 0, 0, 8),      // loopback
      p4(169, 254, 0, 0, 16),   // link local
      p4(172, 16, 0, 0, 12),    // RFC 1918
      p4(192, 0, 0, 0, 24),     // IETF protocol assignments
      p4(192, 0, 2, 0, 24),     // TEST-NET-1
      p4(192, 168, 0, 0, 16),   // RFC 1918
      p4(198, 18, 0, 0, 15),    // benchmarking
      p4(198, 51, 100, 0, 24),  // TEST-NET-2
      p4(203, 0, 113, 0, 24),   // TEST-NET-3
      p4(224, 0, 0, 0, 3),      // multicast + class E
  };
  return table;
}

// IPv6 martians: everything outside 2000::/3 plus documentation/ULA space.
const std::array<Prefix, 3>& v6_martians() {
  static const std::array<Prefix, 3> table = {
      Prefix(IpAddress::v6(0xfc00'0000'0000'0000ULL, 0), 7),   // ULA
      Prefix(IpAddress::v6(0xfe80'0000'0000'0000ULL, 0), 10),  // link local
      Prefix(IpAddress::v6(0x2001'0db8'0000'0000ULL, 0), 32),  // documentation
  };
  return table;
}

}  // namespace

bool is_martian(const Prefix& p) noexcept {
  if (p.is_v4()) {
    for (const auto& m : v4_martians()) {
      if (m.covers(p)) return true;
    }
    return false;
  }
  // Global unicast is 2000::/3; anything else is martian.
  static const Prefix global_unicast(IpAddress::v6(0x2000'0000'0000'0000ULL, 0), 3);
  if (!global_unicast.covers(p)) return true;
  for (const auto& m : v6_martians()) {
    if (m.covers(p)) return true;
  }
  return false;
}

}  // namespace rpslyzer::net
