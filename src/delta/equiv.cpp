#include "rpslyzer/delta/equiv.hpp"

#include <algorithm>
#include <set>
#include <vector>

#include "rpslyzer/bgp/route.hpp"
#include "rpslyzer/query/query.hpp"
#include "rpslyzer/verify/verifier.hpp"

namespace rpslyzer::delta {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv(std::uint64_t& hash, std::string_view bytes) {
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= kFnvPrime;
  }
  hash ^= 0xff;  // probe separator so concatenations can't collide
  hash *= kFnvPrime;
}

struct ProbeSet {
  std::vector<std::string> queries;
  std::vector<bgp::Route> routes;
};

/// Corpus-derived probes. Reads only sorted object keys (std::map order),
/// never vector order, so both snapshots of the same corpus — however their
/// loads ordered internal containers — derive the identical probe set.
ProbeSet build_probes(const compile::CompiledPolicySnapshot& snapshot,
                      const EquivalenceOptions& options) {
  const ir::Ir& ir = snapshot.index().ir();
  ProbeSet probes;

  std::size_t n = 0;
  for (const auto& [name, set] : ir.as_sets) {
    if (n++ >= options.max_sets) break;
    probes.queries.push_back("!i" + name);
    probes.queries.push_back("!i" + name + ",1");
    probes.queries.push_back("!a" + name);
  }
  n = 0;
  for (const auto& [name, set] : ir.route_sets) {
    if (n++ >= options.max_sets) break;
    probes.queries.push_back("!i" + name);
    probes.queries.push_back("!i" + name + ",1");
  }
  n = 0;
  for (const auto& [asn, an] : ir.aut_nums) {
    if (n++ >= options.max_asns) break;
    const std::string as = "AS" + std::to_string(asn);
    probes.queries.push_back("!g" + as);
    probes.queries.push_back("!6" + as);
    probes.queries.push_back("!o" + as);
  }

  if (options.include_reports) {
    std::set<std::pair<net::Prefix, ir::Asn>> keys;
    for (const ir::RouteObject& route : ir.routes) {
      keys.insert({route.prefix, route.origin});
    }
    const relations::AsRelations& rels = snapshot.relations();
    n = 0;
    for (const auto& [prefix, origin] : keys) {
      if (n++ >= options.max_routes) break;
      // Walk up to two provider hops uphill from the origin so reports
      // exercise both the origin-side and transit-side rule checks.
      std::vector<bgp::Asn> path{origin};
      for (int hop = 0; hop < 2; ++hop) {
        const auto providers = rels.providers_of(path.back());
        if (providers.empty()) break;
        const bgp::Asn next = providers.front();
        if (std::find(path.begin(), path.end(), next) != path.end()) break;
        path.push_back(next);
      }
      if (path.size() == 1) {
        const auto peers = rels.peers_of(origin);
        path.push_back(peers.empty() ? origin + 1 : peers.front());
      }
      std::reverse(path.begin(), path.end());  // BGP order: origin last
      probes.routes.push_back({prefix, std::move(path)});
    }
  }
  return probes;
}

std::uint64_t digest_one(std::shared_ptr<const compile::CompiledPolicySnapshot> snapshot,
                         const ProbeSet& probes) {
  std::uint64_t digest = kFnvOffset;
  const query::QueryEngine engine(*snapshot);
  for (const std::string& q : probes.queries) fnv(digest, engine.evaluate(q));
  if (!probes.routes.empty()) {
    const verify::Verifier verifier(std::move(snapshot));
    for (const bgp::Route& route : probes.routes) fnv(digest, verifier.report(route));
  }
  return digest;
}

std::string excerpt(std::string_view text) {
  constexpr std::size_t kMax = 160;
  if (text.size() <= kMax) return std::string(text);
  return std::string(text.substr(0, kMax)) + "...";
}

}  // namespace

EquivalenceResult compare_snapshots(
    std::shared_ptr<const compile::CompiledPolicySnapshot> left,
    std::shared_ptr<const compile::CompiledPolicySnapshot> right,
    const EquivalenceOptions& options) {
  EquivalenceResult result;
  result.digest_left = kFnvOffset;
  result.digest_right = kFnvOffset;
  const ProbeSet probes = build_probes(*left, options);

  const auto check = [&](const std::string& label, const std::string& a,
                         const std::string& b) {
    ++result.probes;
    fnv(result.digest_left, a);
    fnv(result.digest_right, b);
    if (a == b) return;
    ++result.mismatches;
    result.equal = false;
    if (result.first_mismatch.empty()) {
      result.first_mismatch =
          label + ":\n  left:  " + excerpt(a) + "\n  right: " + excerpt(b);
    }
  };

  {
    const query::QueryEngine left_engine(*left);
    const query::QueryEngine right_engine(*right);
    for (const std::string& q : probes.queries) {
      check(q, left_engine.evaluate(q), right_engine.evaluate(q));
    }
  }
  if (!probes.routes.empty()) {
    const verify::Verifier left_verifier(left);
    const verify::Verifier right_verifier(right);
    for (const bgp::Route& route : probes.routes) {
      check("report " + route.prefix.to_string(), left_verifier.report(route),
            right_verifier.report(route));
    }
  }
  return result;
}

std::uint64_t snapshot_digest(
    std::shared_ptr<const compile::CompiledPolicySnapshot> snapshot,
    const EquivalenceOptions& options) {
  const ProbeSet probes = build_probes(*snapshot, options);
  return digest_one(std::move(snapshot), probes);
}

}  // namespace rpslyzer::delta
