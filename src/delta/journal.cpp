#include "rpslyzer/delta/journal.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>

#include "rpslyzer/rpsl/object_lexer.hpp"
#include "rpslyzer/util/strings.hpp"

namespace rpslyzer::delta {

namespace {

bool fail(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

bool is_blank(std::string_view line) {
  return line.find_first_not_of(" \t") == std::string_view::npos;
}

std::optional<std::uint64_t> parse_serial(std::string_view token) {
  if (token.empty()) return std::nullopt;
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || ptr != token.data() + token.size()) return std::nullopt;
  return value;
}

std::vector<std::string_view> split_lines(std::string_view text) {
  std::vector<std::string_view> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) {
      if (start < text.size()) lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

/// "ADD <serial> <SOURCE>" / "DEL <serial> <SOURCE>" — exactly three
/// whitespace-separated tokens, or nullopt.
std::optional<JournalOp> parse_op_header(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t pos = 0;
  while (pos < line.size()) {
    const std::size_t start = line.find_first_not_of(" \t", pos);
    if (start == std::string_view::npos) break;
    std::size_t end = line.find_first_of(" \t", start);
    if (end == std::string_view::npos) end = line.size();
    tokens.push_back(line.substr(start, end - start));
    pos = end;
  }
  if (tokens.size() != 3) return std::nullopt;
  JournalOp op;
  if (tokens[0] == "ADD") {
    op.kind = JournalOp::Kind::kAdd;
  } else if (tokens[0] == "DEL") {
    op.kind = JournalOp::Kind::kDel;
  } else {
    return std::nullopt;
  }
  const auto serial = parse_serial(tokens[1]);
  if (!serial.has_value()) return std::nullopt;
  op.serial = *serial;
  op.source = std::string(tokens[2]);
  return op;
}

/// The paragraph must lex to exactly one object with zero lexer
/// diagnostics; anything else is interleaved garbage and refuses the batch.
bool validate_paragraph(const std::string& paragraph, std::uint64_t serial,
                        std::string* error) {
  util::Diagnostics diags;
  const auto objects = rpsl::lex_objects(paragraph, "journal", diags);
  if (objects.size() != 1) {
    return fail(error, "op serial " + std::to_string(serial) + ": paragraph lexes to " +
                           std::to_string(objects.size()) + " objects, expected 1");
  }
  if (!diags.empty()) {
    return fail(error, "op serial " + std::to_string(serial) +
                           ": malformed paragraph: " + diags.all().front().message);
  }
  return true;
}

}  // namespace

std::optional<JournalBatch> parse_journal(std::string_view text, std::string* error) {
  if (text.find('\r') != std::string_view::npos) {
    fail(error, "CRLF line endings are not valid journal text");
    return std::nullopt;
  }
  const std::vector<std::string_view> lines = split_lines(text);

  std::size_t i = 0;
  while (i < lines.size() && is_blank(lines[i])) ++i;
  if (i >= lines.size() || !lines[i].starts_with("%START ")) {
    fail(error, "missing %START header");
    return std::nullopt;
  }
  const auto start_serial = parse_serial(util::trim(lines[i].substr(7)));
  if (!start_serial.has_value()) {
    fail(error, "unparseable %START serial");
    return std::nullopt;
  }
  ++i;

  JournalBatch batch;
  batch.first_serial = *start_serial;
  std::optional<std::uint64_t> end_serial;

  while (i < lines.size()) {
    if (is_blank(lines[i])) {
      ++i;
      continue;
    }
    if (lines[i].starts_with("%END")) {
      const auto serial = parse_serial(util::trim(lines[i].substr(4)));
      if (!serial.has_value()) {
        fail(error, "unparseable %END serial");
        return std::nullopt;
      }
      end_serial = *serial;
      ++i;
      break;
    }
    auto op = parse_op_header(lines[i]);
    if (!op.has_value()) {
      fail(error, "expected ADD/DEL header or %END, got \"" + std::string(lines[i]) + "\"");
      return std::nullopt;
    }
    if (!batch.ops.empty() && op->serial <= batch.ops.back().serial) {
      fail(error, "serial " + std::to_string(op->serial) +
                      " does not increase over previous op serial " +
                      std::to_string(batch.ops.back().serial));
      return std::nullopt;
    }
    ++i;
    while (i < lines.size() && is_blank(lines[i])) ++i;
    std::string paragraph;
    while (i < lines.size() && !is_blank(lines[i])) {
      paragraph += lines[i];
      paragraph += '\n';
      ++i;
    }
    if (paragraph.empty()) {
      fail(error, "op serial " + std::to_string(op->serial) + " has no paragraph");
      return std::nullopt;
    }
    if (!validate_paragraph(paragraph, op->serial, error)) return std::nullopt;
    op->paragraph = std::move(paragraph);
    batch.ops.push_back(std::move(*op));
  }

  if (!end_serial.has_value()) {
    fail(error, "truncated journal: missing %END");
    return std::nullopt;
  }
  for (; i < lines.size(); ++i) {
    if (!is_blank(lines[i])) {
      fail(error, "trailing content after %END");
      return std::nullopt;
    }
  }
  if (batch.ops.empty()) {
    fail(error, "empty batch");
    return std::nullopt;
  }
  if (batch.ops.front().serial != batch.first_serial) {
    fail(error, "%START serial does not match first op serial");
    return std::nullopt;
  }
  batch.last_serial = batch.ops.back().serial;
  if (*end_serial != batch.last_serial) {
    fail(error, "%END serial does not match last op serial");
    return std::nullopt;
  }
  return batch;
}

std::string render_journal(const JournalBatch& batch) {
  std::string out;
  out += "%START " + std::to_string(batch.first_serial) + "\n\n";
  for (const JournalOp& op : batch.ops) {
    out += op.kind == JournalOp::Kind::kAdd ? "ADD " : "DEL ";
    out += std::to_string(op.serial);
    out += ' ';
    out += op.source;
    out += "\n\n";
    out += op.paragraph;
    if (!op.paragraph.ends_with('\n')) out += '\n';
    out += '\n';
  }
  out += "%END " + std::to_string(batch.last_serial) + "\n";
  return out;
}

std::string journal_file_name(std::uint64_t first_serial) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "batch-%09llu.nrtm",
                static_cast<unsigned long long>(first_serial));
  return buffer;
}

std::vector<std::filesystem::path> list_journal_files(const std::filesystem::path& dir) {
  std::vector<std::filesystem::path> files;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    if (entry.path().extension() == ".nrtm") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end(),
            [](const auto& a, const auto& b) { return a.filename() < b.filename(); });
  return files;
}

}  // namespace rpslyzer::delta
