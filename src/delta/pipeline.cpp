#include "rpslyzer/delta/pipeline.hpp"

#include <chrono>
#include <map>
#include <set>
#include <stdexcept>
#include <variant>

#include "rpslyzer/irr/index.hpp"
#include "rpslyzer/obs/metrics.hpp"
#include "rpslyzer/obs/trace.hpp"
#include "rpslyzer/util/failpoint.hpp"

namespace rpslyzer::delta {

namespace fp = util::failpoint;

namespace {

struct Metrics {
  obs::Counter& batches_applied;
  obs::Counter& batches_refused;
  obs::Counter& ops_applied;
  obs::Counter& ops_skipped;
  obs::Gauge& dirty_objects;
  obs::Gauge& reused_sets;
  obs::Gauge& journal_serial;
  obs::Histogram& apply_seconds;
};

Metrics& metrics() {
  auto& registry = obs::MetricsRegistry::global();
  static Metrics m{
      registry.counter("rpslyzer_delta_batches_applied_total",
                       "Journal batches applied and published"),
      registry.counter("rpslyzer_delta_batches_refused_total",
                       "Journal batches refused atomically"),
      registry.counter("rpslyzer_delta_ops_applied_total",
                       "Journal ADD/DEL operations applied"),
      registry.counter("rpslyzer_delta_ops_skipped_total",
                       "Journal operations skipped as idempotent serial replay"),
      registry.gauge("rpslyzer_delta_dirty_objects",
                     "Dirty-set size of the last applied batch"),
      registry.gauge("rpslyzer_delta_reused_sets",
                     "Set tables reused from the previous generation by the last apply"),
      registry.gauge("rpslyzer_delta_journal_serial",
                     "Last applied journal serial"),
      registry.histogram("rpslyzer_delta_apply_seconds",
                         "End-to-end journal batch apply duration",
                         obs::exponential_bounds(1e-4, 4.0, 12)),
  };
  return m;
}

/// Identity of one touched object plus its merged (priority-resolved) value
/// before the batch mutated the store. monostate = absent.
struct TouchedValue {
  ObjectClass cls = ObjectClass::kOther;
  ir::Asn asn = 0;
  std::string name;
  std::pair<net::Prefix, ir::Asn> route_key{};
  rpsl::ParsedObject value;
};

rpsl::ParsedObject merged_value(const CorpusStore& store, const TouchedValue& t) {
  switch (t.cls) {
    case ObjectClass::kAutNum:
      if (const auto* p = store.merged_aut_num(t.asn)) return *p;
      break;
    case ObjectClass::kAsSet:
      if (const auto* p = store.merged_as_set(t.name)) return *p;
      break;
    case ObjectClass::kRouteSet:
      if (const auto* p = store.merged_route_set(t.name)) return *p;
      break;
    case ObjectClass::kPeeringSet:
      if (const auto* p = store.merged_peering_set(t.name)) return *p;
      break;
    case ObjectClass::kFilterSet:
      if (const auto* p = store.merged_filter_set(t.name)) return *p;
      break;
    case ObjectClass::kRoute:
      if (const auto* p = store.merged_route(t.route_key)) return *p;
      break;
    case ObjectClass::kOther:
      break;
  }
  return {};
}

void add_member_of(const rpsl::ParsedObject& value,
                   std::set<std::string, util::ILess>& into) {
  if (const auto* an = std::get_if<ir::AutNum>(&value)) {
    for (const ir::Symbol s : an->member_of) into.insert(ir::to_string(s));
  } else if (const auto* route = std::get_if<ir::RouteObject>(&value)) {
    for (const ir::Symbol s : route->member_of) into.insert(ir::to_string(s));
  }
}

/// Close the dirty seeds over the dependency edges the compiler reads:
///  * as-sets: reverse member (kSet) edges — a set containing a dirty set
///    re-flattens;
///  * route-sets: reverse member edges for set references, plus referencing
///    sets whose kAsn/kAsSet members expand origin-changed ASes (as-set
///    expansion is checked against the previous generation's flattening —
///    if the flattening itself changed the set is already dirty).
void close_dirty(compile::DirtySet& dirty, const ir::Ir& new_ir,
                 const compile::CompiledPolicySnapshot& previous,
                 const std::set<std::string, util::ILess>& as_set_seeds,
                 const std::set<std::string, util::ILess>& route_set_seeds,
                 const std::set<ir::Asn>& origins_changed) {
  // --- as-set closure over reverse kSet edges ---
  std::map<std::string, std::vector<std::string>, util::ILess> as_rev;
  for (const auto& [name, set] : new_ir.as_sets) {
    for (const ir::AsSetMember& m : set.members) {
      if (m.kind == ir::AsSetMember::Kind::kSet) as_rev[ir::to_string(m.name)].push_back(name);
    }
  }
  std::vector<std::string> stack(as_set_seeds.begin(), as_set_seeds.end());
  dirty.as_sets.insert(as_set_seeds.begin(), as_set_seeds.end());
  while (!stack.empty()) {
    const std::string name = std::move(stack.back());
    stack.pop_back();
    if (const auto it = as_rev.find(name); it != as_rev.end()) {
      for (const std::string& referrer : it->second) {
        if (dirty.as_sets.insert(referrer).second) stack.push_back(referrer);
      }
    }
  }

  // --- route-set reverse reference maps ---
  std::map<std::string, std::vector<std::string>, util::ILess> rs_rev_set;
  std::map<std::string, std::vector<std::string>, util::ILess> rs_rev_as_set;
  std::map<ir::Asn, std::vector<std::string>> rs_rev_asn;
  for (const auto& [name, set] : new_ir.route_sets) {
    const auto note = [&](const ir::RouteSetMember& m) {
      switch (m.kind) {
        case ir::RouteSetMember::Kind::kRouteSet:
          rs_rev_set[ir::to_string(m.name)].push_back(name);
          break;
        case ir::RouteSetMember::Kind::kAsSet:
          rs_rev_as_set[ir::to_string(m.name)].push_back(name);
          break;
        case ir::RouteSetMember::Kind::kAsn:
          rs_rev_asn[m.asn].push_back(name);
          break;
        default:
          break;
      }
    };
    for (const auto& m : set.members) note(m);
    for (const auto& m : set.mp_members) note(m);
  }

  std::set<std::string, util::ILess> rs_seeds = route_set_seeds;
  for (const ir::Asn asn : origins_changed) {
    if (const auto it = rs_rev_asn.find(asn); it != rs_rev_asn.end()) {
      rs_seeds.insert(it->second.begin(), it->second.end());
    }
  }
  for (const auto& [as_set, referrers] : rs_rev_as_set) {
    bool affected = dirty.as_sets.contains(as_set);
    if (!affected) {
      if (const irr::FlattenedAsSet* flat = previous.index().flattened(as_set)) {
        for (const ir::Asn asn : origins_changed) {
          if (flat->contains(asn)) {
            affected = true;
            break;
          }
        }
      }
      // Undefined in the previous generation and not newly dirty: a set
      // that stays undefined contributes the same unknown bit either way.
    }
    if (affected) rs_seeds.insert(referrers.begin(), referrers.end());
  }

  stack.assign(rs_seeds.begin(), rs_seeds.end());
  dirty.route_sets.insert(rs_seeds.begin(), rs_seeds.end());
  while (!stack.empty()) {
    const std::string name = std::move(stack.back());
    stack.pop_back();
    if (const auto it = rs_rev_set.find(name); it != rs_rev_set.end()) {
      for (const std::string& referrer : it->second) {
        if (dirty.route_sets.insert(referrer).second) stack.push_back(referrer);
      }
    }
  }
}

}  // namespace

DeltaPipeline::DeltaPipeline(std::vector<std::pair<std::string, std::string>> dumps,
                             std::string_view relationships_serial1, Options options)
    : options_(options) {
  store_.init(dumps);
  util::Diagnostics diags;
  auto relations = std::make_shared<relations::AsRelations>(
      relations::AsRelations::parse(relationships_serial1, diags));
  if (relations->link_count() == 0 && diags.error_count() > 0) {
    throw std::runtime_error("delta: unusable relationships text: " +
                             diags.all().front().message);
  }
  relations_ = std::move(relations);

  auto gen = std::make_shared<Generation>();
  gen->ir = std::make_shared<const ir::Ir>(store_.materialize());
  gen->index = std::make_shared<const irr::Index>(*gen->ir);
  gen->snapshot = compile::CompiledPolicySnapshot::build(gen->index, relations_);
  gen->stats.full_rebuild = true;
  publish(std::move(gen));

  reclaimer_ = std::thread([this] { reclaim_loop(); });
}

DeltaPipeline::~DeltaPipeline() {
  {
    std::lock_guard<std::mutex> lock(reclaim_mutex_);
    reclaim_stop_ = true;
  }
  reclaim_cv_.notify_one();
  if (reclaimer_.joinable()) reclaimer_.join();
}

void DeltaPipeline::retire(std::shared_ptr<const Generation> generation) {
  if (generation == nullptr) return;
  // Enqueue only — no notify. Waking the reclaimer here can preempt the
  // apply thread (on saturated hosts the scheduler hands it the CPU at the
  // notify), pulling the teardown right back onto the path we are evicting
  // it from. The reclaimer's timed wait picks the queue up within its poll
  // interval instead; only shutdown notifies.
  std::lock_guard<std::mutex> lock(reclaim_mutex_);
  retired_.push_back(std::move(generation));
}

void DeltaPipeline::reclaim_loop() {
  constexpr auto kPollInterval = std::chrono::milliseconds(20);
  std::unique_lock<std::mutex> lock(reclaim_mutex_);
  for (;;) {
    reclaim_cv_.wait_for(lock, kPollInterval,
                         [this] { return reclaim_stop_; });
    if (retired_.empty()) {
      if (reclaim_stop_) return;
      continue;
    }
    std::vector<std::shared_ptr<const Generation>> drained = std::move(retired_);
    retired_.clear();
    lock.unlock();
    // The actual teardown (if these are the last references), off every lock
    // so apply() and readers never wait on it.
    drained.clear();
    lock.lock();
  }
}

std::shared_ptr<const Generation> DeltaPipeline::current() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return current_;
}

std::shared_ptr<const compile::CompiledPolicySnapshot> DeltaPipeline::current_snapshot()
    const {
  auto gen = current();
  return {gen, gen->snapshot.get()};
}

std::uint64_t DeltaPipeline::applied_serial() const {
  return current()->serial;
}

void DeltaPipeline::publish(std::shared_ptr<const Generation> generation) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  current_ = std::move(generation);
}

ApplyResult DeltaPipeline::apply(const JournalBatch& batch) {
  ApplyResult result;
  std::lock_guard<std::mutex> apply_lock(apply_mutex_);
  obs::Span span("delta.apply");
  const auto start = std::chrono::steady_clock::now();
  auto& m = metrics();

  const auto refuse = [&](std::string error) {
    result.refused = true;
    result.error = std::move(error);
    m.batches_refused.inc();
    std::lock_guard<std::mutex> lock(state_mutex_);
    ++batches_refused_;
    last_error_ = result.error;
  };

  if (const auto hit = fp::hit("delta.apply"); hit.is_error()) {
    refuse(hit.message.empty() ? "delta.apply failpoint" : hit.message);
    return result;
  }

  auto previous = current();
  std::size_t skipped = 0;
  std::string error;
  auto prepared = store_.prepare(batch, previous->serial, &skipped, &error);
  result.ops_skipped = skipped;
  if (!prepared.has_value()) {
    refuse(std::move(error));
    return result;
  }
  if (skipped != 0) m.ops_skipped.inc(skipped);
  if (prepared->empty()) {
    // Pure replay: every serial was already applied. Success, no new
    // generation.
    std::lock_guard<std::mutex> lock(state_mutex_);
    ops_skipped_ += skipped;
    return result;
  }

  // Merged view of every touched identity before mutation (one entry per
  // identity: the pre-batch state, even when a batch touches it twice).
  std::map<std::string, TouchedValue, util::ILess> before;
  for (const PreparedOp& op : *prepared) {
    if (before.contains(op.identity)) continue;
    TouchedValue t{op.cls, op.asn, op.name, op.route_key, {}};
    t.value = merged_value(store_, t);
    before.emplace(op.identity, std::move(t));
  }

  auto undo = store_.apply(*prepared);
  bool ok = false;
  std::shared_ptr<const Generation> next;
  compile::DirtySet dirty;
  try {
    // Seed the dirty set from before/after diffs of the merged view — this
    // naturally handles priority shadowing (an ADD in a low-priority source
    // under a high-priority definition changes nothing).
    std::set<std::string, util::ILess> as_set_seeds;
    std::set<std::string, util::ILess> route_set_seeds;
    std::set<ir::Asn> origins_changed;
    for (const auto& [identity, old] : before) {
      const rpsl::ParsedObject now = merged_value(store_, old);
      if (old.value == now) continue;
      switch (old.cls) {
        case ObjectClass::kAutNum:
          dirty.aut_nums.insert(old.asn);
          add_member_of(old.value, as_set_seeds);
          add_member_of(now, as_set_seeds);
          break;
        case ObjectClass::kAsSet:
          as_set_seeds.insert(old.name);
          break;
        case ObjectClass::kRouteSet:
          route_set_seeds.insert(old.name);
          break;
        case ObjectClass::kFilterSet:
          dirty.filter_sets.insert(old.name);
          break;
        case ObjectClass::kPeeringSet:
          // Peering sets are resolved live from the fresh index at
          // evaluation time; nothing compiled depends on them.
          break;
        case ObjectClass::kRoute: {
          const bool was = std::holds_alternative<ir::RouteObject>(old.value);
          const bool is = std::holds_alternative<ir::RouteObject>(now);
          if (was != is) {
            dirty.routes_changed = true;
            origins_changed.insert(old.route_key.second);
          }
          add_member_of(old.value, route_set_seeds);
          add_member_of(now, route_set_seeds);
          break;
        }
        case ObjectClass::kOther:
          break;
      }
    }

    auto ir = std::make_shared<const ir::Ir>(store_.materialize());
    auto index = std::make_shared<const irr::Index>(*ir);

    const auto compile_start = std::chrono::steady_clock::now();
    {
      obs::Span dirty_span("delta.dirty");
      if (const auto hit = fp::hit("delta.dirty"); hit.is_error()) {
        dirty.everything = true;  // degrade to a full, still-correct rebuild
      } else {
        close_dirty(dirty, *ir, *previous->snapshot, as_set_seeds, route_set_seeds,
                    origins_changed);
        dirty.origins_changed.assign(origins_changed.begin(), origins_changed.end());
      }
    }

    compile::IncrementalStats stats;
    std::shared_ptr<const compile::CompiledPolicySnapshot> snapshot;
    if (options_.always_full || dirty.everything) {
      stats.full_rebuild = true;
      snapshot = compile::CompiledPolicySnapshot::build(index, relations_);
    } else {
      snapshot = compile::CompiledPolicySnapshot::build_incremental(
          index, relations_, *previous->snapshot, dirty, &stats);
    }
    result.compile_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - compile_start)
            .count();

    auto gen = std::make_shared<Generation>();
    gen->ir = std::move(ir);
    gen->index = std::move(index);
    gen->snapshot = std::move(snapshot);
    gen->serial = prepared->back().serial;
    gen->number = previous->number + 1;
    gen->stats = stats;
    gen->dirty_objects = dirty.size();
    next = std::move(gen);
    ok = true;
  } catch (const std::exception& e) {
    error = std::string("apply failed: ") + e.what();
  }

  if (!ok) {
    store_.revert(std::move(undo));
    refuse(std::move(error));
    return result;
  }

  result.applied = true;
  result.ops_applied = prepared->size();
  result.dirty_objects = next->dirty_objects;

  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  m.batches_applied.inc();
  m.ops_applied.inc(prepared->size());
  m.dirty_objects.set(static_cast<std::int64_t>(next->dirty_objects));
  m.reused_sets.set(static_cast<std::int64_t>(next->stats.as_sets_seeded +
                                              next->stats.route_sets_reused));
  m.journal_serial.set(static_cast<std::int64_t>(next->serial));
  m.apply_seconds.observe(elapsed.count());

  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    current_ = next;
    ++batches_applied_;
    ops_applied_ += prepared->size();
    ops_skipped_ += skipped;
    last_error_.clear();
  }
  // Tear the superseded generation down on the reclaimer thread: freeing a
  // corpus-sized Ir + index + snapshot costs as much as the incremental
  // rebuild itself and must not extend the apply critical path.
  retire(std::move(previous));
  return result;
}

std::string DeltaPipeline::stats_line() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  const Generation& gen = *current_;
  std::string line = "delta: serial=" + std::to_string(gen.serial) +
                     " generation=" + std::to_string(gen.number) +
                     " batches=" + std::to_string(batches_applied_) +
                     " refused=" + std::to_string(batches_refused_) +
                     " ops=" + std::to_string(ops_applied_) +
                     " skipped=" + std::to_string(ops_skipped_) +
                     " dirty=" + std::to_string(gen.dirty_objects) +
                     " reused=" +
                     std::to_string(gen.stats.as_sets_seeded + gen.stats.route_sets_reused +
                                    gen.stats.regexes_reused) +
                     " full_rebuild=" + (gen.stats.full_rebuild ? "1" : "0");
  if (!last_error_.empty()) line += " last_error=\"" + last_error_ + "\"";
  return line;
}

}  // namespace rpslyzer::delta
