#include "rpslyzer/delta/corpus_store.hpp"

#include <variant>

#include "rpslyzer/irr/loader.hpp"
#include "rpslyzer/rpsl/object_lexer.hpp"
#include "rpslyzer/util/strings.hpp"

namespace rpslyzer::delta {

namespace {

/// Canonical paragraph rendering: one "name: value" line per attribute, in
/// declaration order, comments already stripped and continuations already
/// joined by the lexer. Re-lexing the rendering reproduces the same
/// RawObject (up to line numbers), which is what makes the store's dump
/// rendering parse-equivalent to the original text.
std::string render_paragraph(const rpsl::RawObject& raw) {
  std::string out;
  for (const rpsl::RawAttribute& attr : raw.attributes) {
    out += attr.name;
    out += ':';
    if (!attr.value.empty()) {
      out += ' ';
      out += attr.value;
    }
    out += '\n';
  }
  return out;
}

struct Classified {
  ObjectClass cls = ObjectClass::kOther;
  std::string identity;
  ir::Asn asn = 0;
  std::string name;
  std::pair<net::Prefix, ir::Asn> route_key{};
};

Classified classify(const rpsl::ParsedObject& object, const rpsl::RawObject& raw) {
  Classified c;
  if (const auto* an = std::get_if<ir::AutNum>(&object)) {
    c.cls = ObjectClass::kAutNum;
    c.asn = an->asn;
    c.identity = "aut-num:AS" + std::to_string(an->asn);
  } else if (const auto* as = std::get_if<ir::AsSet>(&object)) {
    c.cls = ObjectClass::kAsSet;
    c.name = ir::to_string(as->name);
    c.identity = "as-set:" + c.name;
  } else if (const auto* rs = std::get_if<ir::RouteSet>(&object)) {
    c.cls = ObjectClass::kRouteSet;
    c.name = ir::to_string(rs->name);
    c.identity = "route-set:" + c.name;
  } else if (const auto* ps = std::get_if<ir::PeeringSet>(&object)) {
    c.cls = ObjectClass::kPeeringSet;
    c.name = ir::to_string(ps->name);
    c.identity = "peering-set:" + c.name;
  } else if (const auto* fs = std::get_if<ir::FilterSet>(&object)) {
    c.cls = ObjectClass::kFilterSet;
    c.name = ir::to_string(fs->name);
    c.identity = "filter-set:" + c.name;
  } else if (const auto* route = std::get_if<ir::RouteObject>(&object)) {
    c.cls = ObjectClass::kRoute;
    c.route_key = {route->prefix, route->origin};
    c.identity =
        "route:" + route->prefix.to_string() + ":AS" + std::to_string(route->origin);
  } else {
    // Unmodeled class, or a modeled class whose key failed to parse — the
    // loader would skip it too; it survives only in the text store.
    c.cls = ObjectClass::kOther;
    c.identity = raw.class_name + ":" + raw.key;
  }
  return c;
}

}  // namespace

void CorpusStore::init(const std::vector<std::pair<std::string, std::string>>& dumps) {
  sources_.clear();
  sources_.reserve(dumps.size());
  for (const auto& [name, text] : dumps) {
    SourceState src;
    src.name = name;
    util::Diagnostics diags;
    for (const rpsl::RawObject& raw : rpsl::lex_objects(text, name, diags)) {
      util::Diagnostics object_diags;
      rpsl::ParsedObject object = rpsl::parse_object(raw, object_diags);
      Classified c = classify(object, raw);
      if (src.texts.contains(c.identity)) continue;  // first definition wins
      PreparedOp op;
      op.kind = JournalOp::Kind::kAdd;
      op.source_index = sources_.size();
      op.cls = c.cls;
      op.identity = std::move(c.identity);
      op.text = render_paragraph(raw);
      op.object = std::move(object);
      op.asn = c.asn;
      op.name = std::move(c.name);
      op.route_key = c.route_key;
      store_object(src, op);
    }
    sources_.push_back(std::move(src));
  }
}

std::optional<std::size_t> CorpusStore::source_index(std::string_view name) const {
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    if (util::iequals(sources_[i].name, name)) return i;
  }
  return std::nullopt;
}

std::optional<std::vector<PreparedOp>> CorpusStore::prepare(const JournalBatch& batch,
                                                            std::uint64_t applied_serial,
                                                            std::size_t* skipped,
                                                            std::string* error) const {
  if (skipped != nullptr) *skipped = 0;
  std::vector<PreparedOp> out;
  out.reserve(batch.ops.size());
  for (const JournalOp& jop : batch.ops) {
    if (jop.serial <= applied_serial) {
      if (skipped != nullptr) ++*skipped;  // idempotent replay
      continue;
    }
    const auto idx = source_index(jop.source);
    if (!idx.has_value()) {
      if (error != nullptr) {
        *error = "op serial " + std::to_string(jop.serial) + ": unknown source \"" +
                 jop.source + "\"";
      }
      return std::nullopt;
    }
    util::Diagnostics lex_diags;
    const auto raws =
        rpsl::lex_objects(jop.paragraph, sources_[*idx].name, lex_diags);
    if (raws.size() != 1 || !lex_diags.empty()) {
      if (error != nullptr) {
        *error = "op serial " + std::to_string(jop.serial) + ": unusable paragraph";
      }
      return std::nullopt;
    }
    // Parse diagnostics are tolerated exactly like the loader tolerates
    // them: a recoverable problem still yields an object; a fatal one
    // classifies as kOther (text only).
    util::Diagnostics parse_diags;
    rpsl::ParsedObject object = rpsl::parse_object(raws[0], parse_diags);
    Classified c = classify(object, raws[0]);
    PreparedOp op;
    op.kind = jop.kind;
    op.serial = jop.serial;
    op.source_index = *idx;
    op.cls = c.cls;
    op.identity = std::move(c.identity);
    op.asn = c.asn;
    op.name = std::move(c.name);
    op.route_key = c.route_key;
    if (jop.kind == JournalOp::Kind::kAdd) {
      op.text = render_paragraph(raws[0]);
      op.object = std::move(object);
    }
    out.push_back(std::move(op));
  }
  return out;
}

void CorpusStore::store_object(SourceState& src, const PreparedOp& op) {
  src.texts.insert_or_assign(op.identity, op.text);
  switch (op.cls) {
    case ObjectClass::kAutNum:
      src.aut_nums.insert_or_assign(op.asn, std::get<ir::AutNum>(op.object));
      break;
    case ObjectClass::kAsSet:
      src.as_sets.insert_or_assign(op.name, std::get<ir::AsSet>(op.object));
      break;
    case ObjectClass::kRouteSet:
      src.route_sets.insert_or_assign(op.name, std::get<ir::RouteSet>(op.object));
      break;
    case ObjectClass::kPeeringSet:
      src.peering_sets.insert_or_assign(op.name, std::get<ir::PeeringSet>(op.object));
      break;
    case ObjectClass::kFilterSet:
      src.filter_sets.insert_or_assign(op.name, std::get<ir::FilterSet>(op.object));
      break;
    case ObjectClass::kRoute:
      src.routes.insert_or_assign(op.route_key, std::get<ir::RouteObject>(op.object));
      break;
    case ObjectClass::kOther:
      break;
  }
}

void CorpusStore::erase_object(SourceState& src, const PreparedOp& op) {
  src.texts.erase(op.identity);
  switch (op.cls) {
    case ObjectClass::kAutNum:
      src.aut_nums.erase(op.asn);
      break;
    case ObjectClass::kAsSet:
      src.as_sets.erase(op.name);
      break;
    case ObjectClass::kRouteSet:
      src.route_sets.erase(op.name);
      break;
    case ObjectClass::kPeeringSet:
      src.peering_sets.erase(op.name);
      break;
    case ObjectClass::kFilterSet:
      src.filter_sets.erase(op.name);
      break;
    case ObjectClass::kRoute:
      src.routes.erase(op.route_key);
      break;
    case ObjectClass::kOther:
      break;
  }
}

CorpusStore::UndoLog CorpusStore::apply(const std::vector<PreparedOp>& ops) {
  UndoLog undo;
  undo.reserve(ops.size());
  for (const PreparedOp& op : ops) {
    SourceState& src = sources_[op.source_index];
    UndoEntry entry;
    entry.source_index = op.source_index;
    entry.cls = op.cls;
    entry.identity = op.identity;
    entry.asn = op.asn;
    entry.name = op.name;
    entry.route_key = op.route_key;
    if (const auto it = src.texts.find(op.identity); it != src.texts.end()) {
      entry.old_text = it->second;
      switch (op.cls) {
        case ObjectClass::kAutNum:
          entry.old_object = src.aut_nums.at(op.asn);
          break;
        case ObjectClass::kAsSet:
          entry.old_object = src.as_sets.at(op.name);
          break;
        case ObjectClass::kRouteSet:
          entry.old_object = src.route_sets.at(op.name);
          break;
        case ObjectClass::kPeeringSet:
          entry.old_object = src.peering_sets.at(op.name);
          break;
        case ObjectClass::kFilterSet:
          entry.old_object = src.filter_sets.at(op.name);
          break;
        case ObjectClass::kRoute:
          entry.old_object = src.routes.at(op.route_key);
          break;
        case ObjectClass::kOther:
          break;
      }
    }
    undo.push_back(std::move(entry));
    if (op.kind == JournalOp::Kind::kAdd) {
      store_object(src, op);
    } else {
      erase_object(src, op);  // DEL of an absent identity is a clean no-op
    }
  }
  return undo;
}

void CorpusStore::revert(UndoLog&& undo) {
  for (auto it = undo.rbegin(); it != undo.rend(); ++it) {
    UndoEntry& entry = *it;
    SourceState& src = sources_[entry.source_index];
    PreparedOp op;
    op.source_index = entry.source_index;
    op.cls = entry.cls;
    op.identity = std::move(entry.identity);
    op.asn = entry.asn;
    op.name = std::move(entry.name);
    op.route_key = entry.route_key;
    if (!entry.old_text.has_value()) {
      erase_object(src, op);
    } else {
      op.text = std::move(*entry.old_text);
      op.object = std::move(entry.old_object);
      store_object(src, op);
    }
  }
  undo.clear();
}

const ir::AutNum* CorpusStore::merged_aut_num(ir::Asn asn) const {
  for (const SourceState& src : sources_) {
    if (const auto it = src.aut_nums.find(asn); it != src.aut_nums.end()) {
      return &it->second;
    }
  }
  return nullptr;
}

const ir::AsSet* CorpusStore::merged_as_set(std::string_view name) const {
  for (const SourceState& src : sources_) {
    if (const auto it = src.as_sets.find(std::string(name)); it != src.as_sets.end()) {
      return &it->second;
    }
  }
  return nullptr;
}

const ir::RouteSet* CorpusStore::merged_route_set(std::string_view name) const {
  for (const SourceState& src : sources_) {
    if (const auto it = src.route_sets.find(std::string(name));
        it != src.route_sets.end()) {
      return &it->second;
    }
  }
  return nullptr;
}

const ir::PeeringSet* CorpusStore::merged_peering_set(std::string_view name) const {
  for (const SourceState& src : sources_) {
    if (const auto it = src.peering_sets.find(std::string(name));
        it != src.peering_sets.end()) {
      return &it->second;
    }
  }
  return nullptr;
}

const ir::FilterSet* CorpusStore::merged_filter_set(std::string_view name) const {
  for (const SourceState& src : sources_) {
    if (const auto it = src.filter_sets.find(std::string(name));
        it != src.filter_sets.end()) {
      return &it->second;
    }
  }
  return nullptr;
}

const ir::RouteObject* CorpusStore::merged_route(
    const std::pair<net::Prefix, ir::Asn>& key) const {
  for (const SourceState& src : sources_) {
    if (const auto it = src.routes.find(key); it != src.routes.end()) {
      return &it->second;
    }
  }
  return nullptr;
}

ir::Ir CorpusStore::materialize() const {
  ir::Ir out;
  irr::RouteKeySet seen;
  for (const SourceState& src : sources_) {
    ir::Ir fragment;
    fragment.aut_nums = src.aut_nums;
    fragment.as_sets = src.as_sets;
    fragment.route_sets = src.route_sets;
    fragment.peering_sets = src.peering_sets;
    fragment.filter_sets = src.filter_sets;
    fragment.routes.reserve(src.routes.size());
    for (const auto& [key, route] : src.routes) fragment.routes.push_back(route);
    irr::merge_into(out, std::move(fragment), &seen);
  }
  return out;
}

std::vector<std::pair<std::string, std::string>> CorpusStore::source_texts() const {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(sources_.size());
  for (const SourceState& src : sources_) {
    std::string text;
    for (const auto& [identity, paragraph] : src.texts) {
      text += paragraph;
      text += '\n';
    }
    out.emplace_back(src.name, std::move(text));
  }
  return out;
}

std::size_t CorpusStore::object_count() const noexcept {
  std::size_t total = 0;
  for (const SourceState& src : sources_) total += src.texts.size();
  return total;
}

}  // namespace rpslyzer::delta
