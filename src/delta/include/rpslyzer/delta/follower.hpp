#pragma once
// Journal directory follower: polls a directory for NRTM batch files and
// feeds them to the DeltaPipeline in file-name (= serial) order.
//
// Files are processed exactly once after a successful apply or full serial
// replay. A file that fails to *parse* is poisoned by (name, size): the
// follower stops at it — preserving serial order — and retries only when
// its size changes (a writer completing a truncated upload) or it
// disappears. A file whose *apply* is refused (failpoint, internal fault)
// is retried every poll, because those refusals are transient by design.
// Either way the last-good generation keeps serving.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>

#include "rpslyzer/delta/pipeline.hpp"

namespace rpslyzer::delta {

struct FollowerConfig {
  std::filesystem::path directory;
  std::chrono::milliseconds poll_interval{1000};
};

class JournalFollower {
 public:
  JournalFollower(std::shared_ptr<DeltaPipeline> pipeline, FollowerConfig config);
  ~JournalFollower();

  JournalFollower(const JournalFollower&) = delete;
  JournalFollower& operator=(const JournalFollower&) = delete;

  /// Invoked after every batch that published a new generation, with the
  /// new serial. The server wiring uses this to request a reload.
  void set_activation_callback(std::function<void(std::uint64_t serial)> callback);

  void start();
  void stop();

  /// One synchronous scan of the directory (also what the poll thread
  /// runs). Returns the number of batches that published a generation.
  std::size_t poll_now();

  /// One-line status for !stats, composed with the pipeline's line.
  std::string stats_line() const;

 private:
  void run();

  std::shared_ptr<DeltaPipeline> pipeline_;
  FollowerConfig config_;
  std::function<void(std::uint64_t)> callback_;

  mutable std::mutex mutex_;  // guards the fields below
  std::set<std::string> done_;
  std::optional<std::pair<std::string, std::uintmax_t>> poisoned_;
  std::string last_error_;

  std::mutex thread_mutex_;
  std::condition_variable wake_;
  std::thread thread_;
  bool running_ = false;
  bool stop_requested_ = false;
};

}  // namespace rpslyzer::delta
