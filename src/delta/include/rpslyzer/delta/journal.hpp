#pragma once
// NRTM-style journal batches: serial-numbered ADD/DEL operations carrying
// RPSL paragraphs, one batch per file.
//
// IRRd mirrors propagate IRR churn as NRTM streams — a monotonically
// serial-numbered sequence of ADD/DEL object operations per source. The
// delta pipeline consumes the same shape from journal files:
//
//   %START <first-serial>
//
//   ADD <serial> <SOURCE>
//
//   aut-num: AS64500
//   ...
//
//   DEL <serial> <SOURCE>
//
//   route: 192.0.2.0/24
//   origin: AS64500
//
//   %END <last-serial>
//
// Parsing is strict and atomic: a batch either parses completely or is
// refused with a reason, never partially. Refusals cover CRLF line endings,
// missing/mismatched %START/%END framing, truncation (EOF before %END),
// trailing content after %END, empty batches, non-increasing serials within
// a batch, and paragraphs that do not lex to exactly one clean RPSL object
// (interleaved garbage). Serial *gaps* between batches are legal — NRTM
// serials are sparse in the wild — and replayed serials (<= the consumer's
// last applied serial) are skipped idempotently at apply time, not here.

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace rpslyzer::delta {

/// One journal operation: add/replace or delete the object described by the
/// attached RPSL paragraph in the named source.
struct JournalOp {
  enum class Kind : std::uint8_t { kAdd, kDel };

  Kind kind = Kind::kAdd;
  std::uint64_t serial = 0;
  std::string source;     // IRR source name, e.g. "RADB"
  std::string paragraph;  // one RPSL object, '\n' endings, trailing '\n'

  friend bool operator==(const JournalOp&, const JournalOp&) = default;
};

/// One journal batch (one file): a contiguous run of operations framed by
/// %START/%END serials. Serials are strictly increasing within a batch.
struct JournalBatch {
  std::uint64_t first_serial = 0;
  std::uint64_t last_serial = 0;
  std::vector<JournalOp> ops;

  friend bool operator==(const JournalBatch&, const JournalBatch&) = default;
};

/// Parse one journal file's text. Returns nullopt and fills *error (when
/// given) on any malformation; a returned batch is complete and every
/// paragraph lexes to exactly one clean RPSL object.
std::optional<JournalBatch> parse_journal(std::string_view text,
                                          std::string* error = nullptr);

/// Render a batch back to canonical journal text. parse_journal() of the
/// result reproduces the batch exactly (paragraphs are normalized to end in
/// one '\n').
std::string render_journal(const JournalBatch& batch);

/// Canonical file name for a batch: "batch-%09<first-serial>.nrtm". Zero
/// padding makes lexicographic directory order equal serial order.
std::string journal_file_name(std::uint64_t first_serial);

/// All "*.nrtm" files in `dir`, sorted by file name (= serial order for
/// canonically named files). Missing directory yields an empty list.
std::vector<std::filesystem::path> list_journal_files(const std::filesystem::path& dir);

}  // namespace rpslyzer::delta
