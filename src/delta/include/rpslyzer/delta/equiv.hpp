#pragma once
// Differential-equivalence engine: prove two compiled snapshots of the same
// corpus byte-identical on every observable surface.
//
// The incremental rebuild's correctness contract is byte equality with a
// from-scratch compile — not "semantically close". This module derives a
// deterministic probe set from the corpus itself (every as-set/route-set's
// member and prefix expansions, every aut-num's origin queries and rule
// summary, Appendix-C verification reports over sampled routes), evaluates
// it against both snapshots, and compares responses byte for byte. The
// probe count adapts to corpus size up to per-class caps; an FNV-1a digest
// over all responses gives soak scripts a one-number comparison surface.

#include <cstdint>
#include <memory>
#include <string>

#include "rpslyzer/compile/snapshot.hpp"

namespace rpslyzer::delta {

struct EquivalenceOptions {
  std::size_t max_sets = 250;    // as-sets + route-sets probed (each)
  std::size_t max_asns = 250;    // aut-nums probed
  std::size_t max_routes = 250;  // routes probed with verification reports
  bool include_reports = true;   // Appendix-C reports (the expensive part)
};

struct EquivalenceResult {
  bool equal = true;
  std::size_t probes = 0;
  std::size_t mismatches = 0;
  std::uint64_t digest_left = 0;
  std::uint64_t digest_right = 0;
  std::string first_mismatch;  // probe + response excerpts, empty when equal
};

/// Evaluate the corpus-derived probe set against both snapshots and compare
/// every response byte for byte. Probe selection reads sorted object keys
/// only, so it is independent of internal container order — the two
/// snapshots may come from differently-ordered loads of the same corpus.
EquivalenceResult compare_snapshots(
    std::shared_ptr<const compile::CompiledPolicySnapshot> left,
    std::shared_ptr<const compile::CompiledPolicySnapshot> right,
    const EquivalenceOptions& options = {});

/// Digest of one snapshot's responses to its own probe set (for logging /
/// cross-process comparison in soak scripts).
std::uint64_t snapshot_digest(
    std::shared_ptr<const compile::CompiledPolicySnapshot> snapshot,
    const EquivalenceOptions& options = {});

}  // namespace rpslyzer::delta
