#pragma once
// The incremental delta pipeline: journal batches in, atomically published
// compiled-snapshot generations out.
//
// Per batch the pipeline (1) validates and applies the ops to the
// CorpusStore under an undo log, (2) diffs the merged view of every touched
// identity before/after to seed the dirty set, (3) closes the seeds over
// the dependency edges the compiler consumes — as-set member graphs
// (including member-of), route-set member references (set, as-set, ASN),
// and origin changes against the previous generation's flattenings — and
// (4) runs CompiledPolicySnapshot::build_incremental, reusing every
// untouched table from the previous generation. Publish is atomic: the new
// generation becomes visible only after the compile succeeds; any failure
// rolls the store back and the last-good generation keeps serving.
//
// Failpoints: "delta.apply" (error refuses the batch before any mutation),
// "delta.dirty" (error degrades the dirty set to everything — a full,
// still-correct rebuild). Metrics: the rpslyzer_delta_* family (DESIGN.md).

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "rpslyzer/compile/snapshot.hpp"
#include "rpslyzer/delta/corpus_store.hpp"
#include "rpslyzer/delta/journal.hpp"
#include "rpslyzer/relations/relations.hpp"

namespace rpslyzer::delta {

/// One published generation. Members are declared in dependency order (the
/// index references the ir, the snapshot holds the index), so destruction
/// tears down in the reverse, safe order.
struct Generation {
  std::shared_ptr<const ir::Ir> ir;
  std::shared_ptr<const irr::Index> index;
  std::shared_ptr<const compile::CompiledPolicySnapshot> snapshot;
  std::uint64_t serial = 0;        // last applied journal serial (0 initially)
  std::uint64_t number = 1;        // generation counter; 1 = initial build
  compile::IncrementalStats stats; // incremental reuse accounting
  std::size_t dirty_objects = 0;   // dirty-set size that produced this gen
};

struct ApplyResult {
  bool applied = false;   // a new generation was published
  bool refused = false;   // batch rejected atomically; store untouched
  std::string error;      // refusal / failure detail
  std::size_t ops_applied = 0;
  std::size_t ops_skipped = 0;  // serial <= already applied (replay)
  std::size_t dirty_objects = 0;
  /// The rebuild portion of the apply: dirty-set closure + snapshot
  /// (re)compile. Excludes the corpus materialize/index cost every apply
  /// pays identically — this is the number the incremental path improves,
  /// and what bench/perf_delta.cpp gates on.
  double compile_seconds = 0.0;
};

struct PipelineOptions {
  /// Force from-scratch compiles for every batch (the differential
  /// harness uses this as the reference side).
  bool always_full = false;
};

class DeltaPipeline {
 public:
  using Options = PipelineOptions;

  /// Builds the initial generation from dump texts (priority order) and a
  /// CAIDA serial-1 relationships text. Throws on an unusable relationships
  /// text; dump diagnostics are tolerated like the batch loader's.
  DeltaPipeline(std::vector<std::pair<std::string, std::string>> dumps,
                std::string_view relationships_serial1, Options options = {});
  /// Drains and joins the background reclaimer.
  ~DeltaPipeline();

  /// The current generation (never null after construction).
  std::shared_ptr<const Generation> current() const;

  /// Aliasing pointer to the current snapshot that keeps the whole
  /// generation (ir, index, snapshot) alive — the server's corpus loader
  /// contract.
  std::shared_ptr<const compile::CompiledPolicySnapshot> current_snapshot() const;

  /// Apply one batch. Serialized internally; readers of current() are never
  /// blocked by an in-flight apply.
  ApplyResult apply(const JournalBatch& batch);

  std::uint64_t applied_serial() const;

  /// One-line status for !stats: serial, generation, counters, last dirty
  /// set size and reuse accounting.
  std::string stats_line() const;

  const CorpusStore& store() const noexcept { return store_; }
  std::shared_ptr<const relations::AsRelations> relations() const { return relations_; }

 private:
  void publish(std::shared_ptr<const Generation> generation);
  /// Queue a no-longer-current generation for teardown on the reclaimer
  /// thread. Freeing a full corpus of maps and pools costs milliseconds —
  /// comparable to the incremental rebuild itself — so it must not ride on
  /// the apply path (or on a reader dropping the last reference late).
  void retire(std::shared_ptr<const Generation> generation);
  void reclaim_loop();

  std::mutex apply_mutex_;          // serializes apply()
  mutable std::mutex state_mutex_;  // guards current_ + counters below
  CorpusStore store_;               // mutated only under apply_mutex_
  std::shared_ptr<const relations::AsRelations> relations_;
  std::shared_ptr<const Generation> current_;
  Options options_;

  std::uint64_t batches_applied_ = 0;
  std::uint64_t batches_refused_ = 0;
  std::uint64_t ops_applied_ = 0;
  std::uint64_t ops_skipped_ = 0;
  std::string last_error_;

  // Background teardown of retired generations (see retire()).
  std::mutex reclaim_mutex_;
  std::condition_variable reclaim_cv_;
  std::vector<std::shared_ptr<const Generation>> retired_;
  bool reclaim_stop_ = false;
  std::thread reclaimer_;
};

}  // namespace rpslyzer::delta
