#pragma once
// Mutable multi-source RPSL corpus behind the delta pipeline.
//
// The batch loader (irr::load_irrs) is a one-shot function from dump texts
// to a merged Ir; journals need the inverse view — a keyed, per-source
// object store that ADD/DEL operations mutate and that can re-materialize
// the exact Ir the loader would produce from the equivalent dump texts.
//
// The store keeps one SourceState per IRR in priority order. Each object
// lives under a canonical *identity* ("aut-num:AS64500",
// "route:192.0.2.0/24:AS64500", ...) alongside its canonical paragraph
// rendering; within a source there is exactly one object per identity
// (first-wins on initial load, upsert on ADD), and merged_* lookups resolve
// across sources in priority order exactly like irr::merge_into.
//
// Mutation is two-phase: prepare() validates a whole batch without touching
// anything; apply() mutates and returns an UndoLog that revert() replays
// backwards, so a failure *after* apply (dirty-set computation, compile)
// rolls the store back and the batch refuses atomically.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "rpslyzer/delta/journal.hpp"
#include "rpslyzer/ir/objects.hpp"
#include "rpslyzer/rpsl/object_parser.hpp"

namespace rpslyzer::delta {

/// Class of a stored object, for dirty-set bookkeeping. kOther covers
/// classes the IR does not model (person, mntner, ...): they live in the
/// text store only and never affect compiled semantics.
enum class ObjectClass : std::uint8_t {
  kAutNum,
  kAsSet,
  kRouteSet,
  kPeeringSet,
  kFilterSet,
  kRoute,
  kOther,
};

/// One validated journal operation, ready to apply.
struct PreparedOp {
  JournalOp::Kind kind = JournalOp::Kind::kAdd;
  std::uint64_t serial = 0;
  std::size_t source_index = 0;
  ObjectClass cls = ObjectClass::kOther;
  std::string identity;
  std::string text;           // canonical paragraph rendering (ADD only)
  rpsl::ParsedObject object;  // typed value (ADD only; monostate for kOther)
  ir::Asn asn = 0;                                // kAutNum
  std::string name;                               // set classes
  std::pair<net::Prefix, ir::Asn> route_key{};    // kRoute
};

class CorpusStore {
 public:
  /// Load initial dump texts, in priority order (name, text). Mirrors the
  /// loader: objects lex and parse with the same code, first definition of
  /// an identity within a source wins, diagnostics are discarded.
  void init(const std::vector<std::pair<std::string, std::string>>& dumps);

  std::size_t source_count() const noexcept { return sources_.size(); }
  const std::string& source_name(std::size_t i) const { return sources_[i].name; }
  std::optional<std::size_t> source_index(std::string_view name) const;

  /// Validate a batch without mutating. Ops with serial <= applied_serial
  /// are dropped (idempotent replay) and counted in *skipped. Refusal
  /// (unknown source, unusable paragraph) returns nullopt and fills *error.
  std::optional<std::vector<PreparedOp>> prepare(const JournalBatch& batch,
                                                 std::uint64_t applied_serial,
                                                 std::size_t* skipped,
                                                 std::string* error) const;

  /// Undo journal for one apply(); replay backwards to roll back.
  struct UndoEntry {
    std::size_t source_index = 0;
    ObjectClass cls = ObjectClass::kOther;
    std::string identity;
    std::optional<std::string> old_text;  // nullopt = identity was absent
    rpsl::ParsedObject old_object;        // typed value before the op
    ir::Asn asn = 0;
    std::string name;
    std::pair<net::Prefix, ir::Asn> route_key{};
  };
  using UndoLog = std::vector<UndoEntry>;

  UndoLog apply(const std::vector<PreparedOp>& ops);
  void revert(UndoLog&& undo);

  // --- merged (priority-resolved) object views ---
  const ir::AutNum* merged_aut_num(ir::Asn asn) const;
  const ir::AsSet* merged_as_set(std::string_view name) const;
  const ir::RouteSet* merged_route_set(std::string_view name) const;
  const ir::PeeringSet* merged_peering_set(std::string_view name) const;
  const ir::FilterSet* merged_filter_set(std::string_view name) const;
  const ir::RouteObject* merged_route(const std::pair<net::Prefix, ir::Asn>& key) const;

  /// Merge every source into one Ir with irr::merge_into semantics. Equals
  /// what irr loading of source_texts() produces, up to route vector order
  /// (which no consumer observes — the Index re-sorts per origin).
  ir::Ir materialize() const;

  /// Canonical dump text per source, identity-ordered paragraphs separated
  /// by blank lines. Loading these with the batch loader reproduces the
  /// store's semantics — the differential harness compiles them from
  /// scratch as the reference side.
  std::vector<std::pair<std::string, std::string>> source_texts() const;

  std::size_t object_count() const noexcept;

 private:
  struct SourceState {
    std::string name;
    std::map<ir::Asn, ir::AutNum> aut_nums;
    ir::NameMap<ir::AsSet> as_sets;
    ir::NameMap<ir::RouteSet> route_sets;
    ir::NameMap<ir::PeeringSet> peering_sets;
    ir::NameMap<ir::FilterSet> filter_sets;
    std::map<std::pair<net::Prefix, ir::Asn>, ir::RouteObject> routes;
    ir::NameMap<std::string> texts;  // identity -> canonical paragraph
  };

  void store_object(SourceState& src, const PreparedOp& op);
  void erase_object(SourceState& src, const PreparedOp& op);

  std::vector<SourceState> sources_;
};

}  // namespace rpslyzer::delta
