#include "rpslyzer/delta/follower.hpp"

#include <fstream>
#include <sstream>

namespace rpslyzer::delta {

namespace {

std::optional<std::string> read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return std::nullopt;
  return std::move(buffer).str();
}

}  // namespace

JournalFollower::JournalFollower(std::shared_ptr<DeltaPipeline> pipeline,
                                 FollowerConfig config)
    : pipeline_(std::move(pipeline)), config_(std::move(config)) {}

JournalFollower::~JournalFollower() { stop(); }

void JournalFollower::set_activation_callback(
    std::function<void(std::uint64_t serial)> callback) {
  callback_ = std::move(callback);
}

void JournalFollower::start() {
  std::lock_guard<std::mutex> lock(thread_mutex_);
  if (running_) return;
  running_ = true;
  stop_requested_ = false;
  thread_ = std::thread([this] { run(); });
}

void JournalFollower::stop() {
  {
    std::lock_guard<std::mutex> lock(thread_mutex_);
    if (!running_) return;
    stop_requested_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
  std::lock_guard<std::mutex> lock(thread_mutex_);
  running_ = false;
}

void JournalFollower::run() {
  while (true) {
    poll_now();
    std::unique_lock<std::mutex> lock(thread_mutex_);
    if (stop_requested_) return;
    wake_.wait_for(lock, config_.poll_interval, [this] { return stop_requested_; });
    if (stop_requested_) return;
  }
}

std::size_t JournalFollower::poll_now() {
  std::size_t published = 0;
  for (const std::filesystem::path& file : list_journal_files(config_.directory)) {
    const std::string name = file.filename().string();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (done_.contains(name)) continue;
    }
    const auto text = read_file(file);
    if (!text.has_value()) break;  // transient read failure: retry next poll
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (poisoned_.has_value() && poisoned_->first == name &&
          poisoned_->second == text->size()) {
        break;  // still malformed, still blocking serial order
      }
    }
    std::string error;
    const auto batch = parse_journal(*text, &error);
    if (!batch.has_value()) {
      std::lock_guard<std::mutex> lock(mutex_);
      poisoned_ = {name, text->size()};
      last_error_ = name + ": " + error;
      break;
    }
    const ApplyResult result = pipeline_->apply(*batch);
    if (result.refused) {
      // Transient by contract (failpoints, internal faults roll back
      // atomically); retry this file on the next poll, keep order.
      std::lock_guard<std::mutex> lock(mutex_);
      last_error_ = name + ": " + result.error;
      break;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      done_.insert(name);
      poisoned_.reset();
      last_error_.clear();
    }
    if (result.applied) {
      ++published;
      if (callback_) callback_(pipeline_->applied_serial());
    }
  }
  return published;
}

std::string JournalFollower::stats_line() const {
  std::string line = pipeline_->stats_line();
  std::lock_guard<std::mutex> lock(mutex_);
  line += " journal=" + config_.directory.string() +
          " files_done=" + std::to_string(done_.size());
  if (poisoned_.has_value()) line += " poisoned=" + poisoned_->first;
  if (!last_error_.empty()) line += " follower_error=\"" + last_error_ + "\"";
  return line;
}

}  // namespace rpslyzer::delta
