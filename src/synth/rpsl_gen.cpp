#include "rpslyzer/synth/rpsl_gen.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string_view>

namespace rpslyzer::synth {

namespace {

bool chance(std::mt19937& rng, double p) {
  return std::uniform_real_distribution<double>(0.0, 1.0)(rng) < p;
}

std::size_t pick(std::mt19937& rng, std::size_t lo, std::size_t hi) {
  if (hi <= lo) return lo;
  return std::uniform_int_distribution<std::size_t>(lo, hi)(rng);
}

/// Weighted IRR choice. Weights loosely follow Table 1's per-class counts.
struct IrrWeights {
  std::vector<std::pair<std::string, double>> weights;

  std::string pick_irr(std::mt19937& rng) const {
    double total = 0;
    for (const auto& [name, w] : weights) total += w;
    double roll = std::uniform_real_distribution<double>(0.0, total)(rng);
    for (const auto& [name, w] : weights) {
      if (roll < w) return name;
      roll -= w;
    }
    return weights.back().first;
  }
};

const IrrWeights& aut_num_weights() {
  static const IrrWeights w{{
      {"RIPE", 49.0}, {"APNIC", 26.0}, {"RADB", 12.0},  {"TC", 5.3},
      {"ARIN", 3.9},  {"IDNIC", 2.9},  {"AFRINIC", 2.9}, {"LACNIC", 2.3},
      {"ALTDB", 2.1}, {"JPIRR", 0.6},  {"NTTCOM", 0.7},  {"LEVEL3", 0.4},
      {"REACH", 0.1},
  }};
  return w;
}

const IrrWeights& route_weights() {
  static const IrrWeights w{{
      {"RADB", 48.0},  {"APNIC", 29.0}, {"RIPE", 16.0},  {"NTTCOM", 11.0},
      {"AFRINIC", 3.1}, {"ARIN", 2.8},  {"LEVEL3", 2.4}, {"TC", 0.8},
      {"ALTDB", 0.9},  {"REACH", 0.6},  {"LACNIC", 0.4}, {"JPIRR", 0.4},
      {"IDNIC", 0.2},
  }};
  return w;
}

const IrrWeights& set_weights() {
  static const IrrWeights w{{
      {"RIPE", 40.0}, {"RADB", 30.0}, {"APNIC", 18.0}, {"ARIN", 4.0},
      {"TC", 3.0},    {"ALTDB", 2.5}, {"LEVEL3", 1.5}, {"NTTCOM", 1.0},
  }};
  return w;
}

/// Simple attribute-value object renderer.
class ObjText {
 public:
  ObjText& attr(std::string_view name, std::string_view value) {
    text_ += std::string(name) + ": " + std::string(value) + "\n";
    return *this;
  }
  std::string finish() { return std::move(text_) + "\n"; }

 private:
  std::string text_;
};

std::string as_ref(Asn asn) { return "AS" + std::to_string(asn); }

/// How much administrative boilerplate an object class carries in real
/// dumps: policy objects (aut-num, sets) are maintained by humans and pick
/// up the full contact block; route objects are usually tool-generated and
/// carry a thinner one.
enum class AdminProfile { kPolicy, kRoute };

/// Real IRR objects are mostly administrative cruft the policy parser lexes
/// and discards: descr, org, contact handles, notify, changed history, and
/// the created/last-modified timestamps every modern dump stamps on. Emit
/// the same density here so parse-side costs match real dumps. Presence and
/// values vary per object via a hash of its key — deliberately NOT the
/// generator rng, so adding or reshaping this block never shifts the random
/// streams that drive topology, plans, and anomaly injection.
void add_admin_attrs(ObjText& obj, std::string_view key, AdminProfile profile) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  const auto dated = [&](std::uint64_t salt) {
    const std::uint64_t v = h ^ (salt * 0x9e3779b97f4a7c15ull);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%04u-%02u-%02uT%02u:%02u:%02uZ",
                  static_cast<unsigned>(2002 + v % 22), static_cast<unsigned>(1 + (v >> 8) % 12),
                  static_cast<unsigned>(1 + (v >> 16) % 28), static_cast<unsigned>((v >> 24) % 24),
                  static_cast<unsigned>((v >> 32) % 60), static_cast<unsigned>((v >> 40) % 60));
    return std::string(buf);
  };
  const std::string handle = "DUMY" + std::to_string(100 + h % 900) + "-EXAMPLE";
  obj.attr("descr", "synthetic registration for " + std::string(key));
  if (profile == AdminProfile::kPolicy) {
    obj.attr("org", "ORG-SYN" + std::to_string(100 + (h >> 16) % 900) + "-EXAMPLE");
    obj.attr("admin-c", handle);
    obj.attr("tech-c", handle);
    obj.attr("notify", "noc" + std::to_string(h % 97) + "@example.net");
    if (h % 3 == 0) {
      obj.attr("remarks", "filters generated from IRR data; peering requests via NOC");
    }
  } else {
    if (h % 4 == 0) obj.attr("notify", "noc" + std::to_string(h % 97) + "@example.net");
    if (h % 2 == 0) {
      obj.attr("remarks", "registration generated from internal provisioning data");
      obj.attr("remarks", "contact noc" + std::to_string(h % 97) +
                              "@example.net for corrections");
    }
  }
  obj.attr("changed", "noc@example.net " + dated(1).substr(0, 10));
  obj.attr("created", dated(2));
  obj.attr("last-modified", dated(3));
}

}  // namespace

const std::vector<std::string>& irr_names() {
  static const std::vector<std::string> names = {"APNIC",  "AFRINIC", "ARIN",  "LACNIC",
                                                 "RIPE",   "IDNIC",   "JPIRR", "RADB",
                                                 "NTTCOM", "LEVEL3",  "TC",    "REACH",
                                                 "ALTDB"};
  return names;
}

RpslGenerator::RpslGenerator(const Topology& topo, const SynthConfig& config)
    : topo_(topo), config_(config.scaled()), rng_(config.seed ^ 0x5eed1234u) {}

std::map<std::string, std::string> RpslGenerator::generate() {
  std::map<std::string, std::string> dumps;
  for (const auto& name : irr_names()) dumps[name];  // ensure all 13 exist

  auto emit = [&](const std::string& irr, std::string text) { dumps[irr] += text; };

  // --- plan per-AS behaviours --------------------------------------------
  struct AsPlan {
    bool has_aut_num = true;
    bool zero_rules = false;
    bool export_self = false;
    bool import_customer = false;
    bool import_peeras = false;
    bool only_providers = false;
    bool cone_set = false;         // defines AS<asn>:AS-CUST or AS-<asn>-CONE
    bool route_set = false;        // defines and uses RS-AS<asn>
    bool hierarchical_name = false;
    std::string home_irr;
  };
  std::map<Asn, AsPlan> plans;
  for (const auto& as : topo_.ases()) {
    AsPlan plan;
    plan.home_irr = aut_num_weights().pick_irr(rng_);
    if (chance(rng_, config_.p_missing_aut_num)) {
      plan.has_aut_num = false;
      plan_.missing_aut_num.insert(as.asn);
    } else if (chance(rng_, config_.p_zero_rules) || plan.home_irr == "LACNIC") {
      // The LACNIC dump carries no import/export rules (§4, Table 1).
      plan.zero_rules = true;
      plan_.zero_rules.insert(as.asn);
    }
    if (as.is_transit()) {
      plan.export_self = chance(rng_, config_.p_export_self_misuse);
      plan.import_customer = chance(rng_, config_.p_import_customer_misuse);
      plan.import_peeras = !plan.import_customer && chance(rng_, config_.p_import_peeras);
      plan.only_providers = chance(rng_, config_.p_only_provider_policies);
      plan.cone_set = !plan.export_self || chance(rng_, 0.3);
      plan.hierarchical_name = chance(rng_, 0.5);
    } else {
      // Many edge networks maintain a (usually single-member) as-set and
      // announce it — as-sets dominate the filter census (§4: 43.4%).
      plan.cone_set = chance(rng_, config_.stub_cone_set_probability);
    }
    plan.route_set = chance(rng_, config_.p_route_set_filter);
    plans[as.asn] = plan;
  }

  // Figure 1's heavy tail: the first few rule-bearing tier2 networks emit
  // per-session rule variants.
  std::set<Asn> policy_rich;
  for (Asn asn : topo_.tier_members(Tier::kTier2)) {
    if (policy_rich.size() >= config_.policy_rich_ases) break;
    const AsPlan& plan = plans.at(asn);
    if (plan.has_aut_num && !plan.zero_rules) policy_rich.insert(asn);
  }
  plan_.policy_rich = policy_rich;

  auto cone_set_name = [&](Asn asn) {
    const AsPlan& plan = plans.at(asn);
    return plan.hierarchical_name ? as_ref(asn) + ":AS-CUST" : "AS-" + std::to_string(asn) + "-CONE";
  };
  auto route_set_name = [&](Asn asn) { return "RS-" + as_ref(asn); };
  auto maintainer = [&](Asn asn) { return "MAINT-" + as_ref(asn); };

  // Track which skip-class rules remain to inject.
  std::size_t community_rules_left = config_.community_filter_rules;
  std::size_t range_regex_left = config_.asn_range_regex_rules;
  std::size_t same_pattern_left = config_.same_pattern_regex_rules;

  // --- aut-num objects ----------------------------------------------------
  for (const auto& as : topo_.ases()) {
    const AsPlan& plan = plans.at(as.asn);
    if (!plan.has_aut_num) continue;

    ObjText obj;
    obj.attr("aut-num", as_ref(as.asn));
    obj.attr("as-name", "SYNTH-" + std::to_string(as.asn));
    add_admin_attrs(obj, as_ref(as.asn), AdminProfile::kPolicy);
    obj.attr("mnt-by", maintainer(as.asn));

    std::vector<std::pair<std::string, std::string>> emitted_rules;
    auto rule = [&](std::string_view attr_name, const std::string& body) {
      obj.attr(attr_name, body);
      emitted_rules.emplace_back(std::string(attr_name), body);
      ++plan_.rules_emitted;
    };

    if (!plan.zero_rules) {
      // What does this AS announce to upstreams/peers? The plan records
      // the choice only once a rule actually uses it (tier-1s, say, may
      // have no provider/peer rules to hang the filter on).
      enum class AnnounceKind { kSelf, kConeSet, kRouteSet, kPlainSelf };
      AnnounceKind announce_kind;
      std::string announce_filter;
      if (as.is_transit() && plan.export_self) {
        announce_kind = AnnounceKind::kSelf;
        announce_filter = as_ref(as.asn);
      } else if (plan.cone_set) {
        announce_kind = AnnounceKind::kConeSet;
        announce_filter = cone_set_name(as.asn);
      } else if (plan.route_set) {
        announce_kind = AnnounceKind::kRouteSet;
        announce_filter = route_set_name(as.asn);
      } else {
        announce_kind = AnnounceKind::kPlainSelf;
        announce_filter = as_ref(as.asn);
      }
      auto record_announce_use = [&] {
        switch (announce_kind) {
          case AnnounceKind::kSelf:
            plan_.export_self_misuse.insert(as.asn);
            break;
          case AnnounceKind::kConeSet:
            plan_.uses_cone_as_set.insert(as.asn);
            break;
          case AnnounceKind::kRouteSet:
            plan_.uses_route_set.insert(as.asn);
            break;
          case AnnounceKind::kPlainSelf:
            break;
        }
      };

      auto declare = [&](Asn neighbor) {
        // Partial neighbor coverage drives the dominant unverified case;
        // the first provider is always declared (providers often mandate
        // RPSL for filter generation, §1).
        return chance(rng_, config_.neighbor_coverage) ||
               (!as.providers.empty() && neighbor == as.providers.front());
      };

      // Neighbors left out of the rules: the raw material for the
      // unrecorded/unverified and skip injections below.
      std::vector<Asn> undeclared;

      // Providers.
      for (Asn provider : as.providers) {
        if (!declare(provider)) {
          undeclared.push_back(provider);
          continue;
        }
        rule("import", "from " + as_ref(provider) + " accept ANY");
        rule("export", "to " + as_ref(provider) + " announce " + announce_filter);
        record_announce_use();
      }
      if (!plan.only_providers) {
        // Customers.
        for (Asn customer : as.customers) {
          if (!chance(rng_, config_.neighbor_coverage)) {
            undeclared.push_back(customer);
            continue;
          }
          std::string accept_filter;
          if (plan.import_customer) {
            accept_filter = as_ref(customer);
          } else if (plan.import_peeras) {
            accept_filter = "PeerAS";
          } else if (plans.at(customer).cone_set) {
            accept_filter = cone_set_name(customer);
          } else {
            // "from C accept C" — still the import-customer shape even
            // when C is a plain stub (strict RPSL only admits C's own
            // route objects, §5.1.1).
            accept_filter = as_ref(customer);
          }
          if (accept_filter == as_ref(customer) || accept_filter == "PeerAS") {
            plan_.import_customer_misuse.insert(as.asn);
          }
          // A small minority of peerings use as-set names instead of ASNs
          // (the AS8323 pattern in Appendix A; §4: 98.4% are single
          // ASN/ANY, so keep this rare).
          const bool set_peering =
              plans.at(customer).cone_set && chance(rng_, 0.015);
          const std::string peering_text =
              set_peering ? cone_set_name(customer) : as_ref(customer);
          rule("import", "from " + peering_text + " accept " + accept_filter);
          rule("export", "to " + peering_text + " announce ANY");
        }
        // Peers: transit networks document some peers, edge networks
        // hardly any — the dominant unverified case (§5.2).
        const double peer_coverage = as.is_transit() ? config_.peer_coverage_transit
                                                     : config_.peer_coverage_stub;
        for (Asn peer : as.peers) {
          if (!chance(rng_, peer_coverage)) {
            undeclared.push_back(peer);
            continue;
          }
          const std::string peer_filter =
              plans.at(peer).cone_set ? cone_set_name(peer) : as_ref(peer);
          rule("import", "from " + as_ref(peer) + " accept " + peer_filter);
          rule("export", "to " + as_ref(peer) + " announce " + announce_filter);
          record_announce_use();
        }
      } else if (!as.customers.empty()) {
        plan_.only_provider_policies.insert(as.asn);
      }

      // A handful of rules reference as-sets defined in no IRR (Figure 5's
      // "missing set object" category). The rule must name a neighbor not
      // already covered by a strict rule, or a Verified match hides it.
      if (!undeclared.empty() && chance(rng_, config_.p_missing_set_reference)) {
        rule("import", "from " + as_ref(undeclared.front()) + " accept " +
                           as_ref(as.asn) + ":AS-MISSING");
        rule("export", "to " + as_ref(undeclared.front()) + " announce " +
                           as_ref(as.asn) + ":AS-MISSING");
        plan_.missing_set_reference.insert(as.asn);
        undeclared.erase(undeclared.begin());
      }

      // Compound rules for flavor (a small fraction, §4).
      if (chance(rng_, config_.p_compound_rule) && !as.providers.empty()) {
        const Asn p = as.providers.front();
        switch (pick(rng_, 0, 2)) {
          case 0:
            rule("mp-import",
                 "afi any.unicast from " + as_ref(p) +
                     " accept ANY AND NOT {0.0.0.0/0, ::0/0}");
            break;
          case 1:
            rule("import", "from " + as_ref(p) +
                               " action pref=100; community .= {65000:100}; accept ANY");
            break;
          default:
            rule("mp-import", "afi any.unicast { from " + as_ref(p) +
                                  " accept ANY; } REFINE afi any.unicast { from AS-ANY "
                                  "accept NOT {0.0.0.0/0, ::0/0}; }");
        }
      }
      // Skip-class rules, a handful across the corpus (Appendix B). They
      // name an otherwise-undeclared neighbor so the skip is observable
      // (a strict match on another rule would rank above it).
      if (undeclared.empty()) {
        // fall through: no free neighbor to hang the rule on
      } else if (community_rules_left > 0 && as.is_transit() && chance(rng_, 0.2)) {
        --community_rules_left;
        ++plan_.skip_class_rules;
        rule("import",
             "from " + as_ref(undeclared.front()) + " accept community(65535:666)");
      } else if (range_regex_left > 0 && as.is_transit() && chance(rng_, 0.2)) {
        --range_regex_left;
        ++plan_.skip_class_rules;
        rule("import", "from " + as_ref(undeclared.front()) +
                           " accept <^[AS64512-AS65535]+$>");
      } else if (same_pattern_left > 0 && as.is_transit() && chance(rng_, 0.2)) {
        --same_pattern_left;
        ++plan_.skip_class_rules;
        rule("import",
             "from " + as_ref(undeclared.front()) + " accept <" + as_ref(as.asn) + "~+>");
      }

      // Policy-rich networks: duplicate the rule set with per-session
      // preference variants (real aut-nums with thousands of rules look
      // exactly like this — one rule per neighbor per router).
      if (policy_rich.contains(as.asn)) {
        const auto base_rules = emitted_rules;
        for (std::size_t copy = 0; copy < config_.policy_rich_copies; ++copy) {
          for (const auto& [attr_name, body] : base_rules) {
            const std::string keyword = attr_name == "export" ? " announce " : " accept ";
            const std::size_t pos = body.find(keyword);
            if (pos == std::string::npos) continue;
            rule(attr_name, body.substr(0, pos) + " action pref=" +
                                std::to_string(100 + copy) + ";" + body.substr(pos));
          }
        }
      }
    }
    emit(plan.home_irr, obj.finish());
  }

  // --- as-sets -------------------------------------------------------------
  for (const auto& as : topo_.ases()) {
    const AsPlan& plan = plans.at(as.asn);
    if (!plan.cone_set) continue;
    ObjText obj;
    obj.attr("as-set", cone_set_name(as.asn));
    add_admin_attrs(obj, cone_set_name(as.asn), AdminProfile::kPolicy);
    std::string members = as_ref(as.asn);
    for (Asn customer : as.customers) {
      members += ", ";
      if (plans.at(customer).cone_set && chance(rng_, config_.p_recursive_as_set)) {
        members += cone_set_name(customer);
      } else {
        members += as_ref(customer);
      }
    }
    // Loop injection: occasionally reference a provider's set (back edge).
    if (!as.providers.empty() && chance(rng_, config_.p_as_set_loop)) {
      const Asn provider = as.providers.front();
      if (plans.at(provider).cone_set) members += ", " + cone_set_name(provider);
    }
    obj.attr("members", members);
    obj.attr("mnt-by", maintainer(as.asn));
    emit(set_weights().pick_irr(rng_), obj.finish());
  }

  // Decorative set pathologies (§4's opacity census).
  for (std::size_t i = 0; i < config_.decorative_empty_sets; ++i) {
    ObjText obj;
    obj.attr("as-set", "AS-EMPTY-" + std::to_string(i));
    obj.attr("mnt-by", "MAINT-DECOR");
    emit(set_weights().pick_irr(rng_), obj.finish());
  }
  for (std::size_t i = 0; i < config_.decorative_singleton_sets; ++i) {
    const auto& all = topo_.ases();
    ObjText obj;
    obj.attr("as-set", "AS-ONE-" + std::to_string(i));
    obj.attr("members", as_ref(all[pick(rng_, 0, all.size() - 1)].asn));
    emit(set_weights().pick_irr(rng_), obj.finish());
  }
  for (std::size_t i = 0; i < config_.as_sets_with_any; ++i) {
    ObjText obj;
    obj.attr("as-set", "AS-WILD-" + std::to_string(i));
    obj.attr("members", "ANY");
    emit(set_weights().pick_irr(rng_), obj.finish());
  }
  // Deep member chains, every third one closed into a loop (§4's depth and
  // loop census: 23.0% of recursive sets have depth >= 5, 22.4% loop).
  for (std::size_t i = 0; i < config_.decorative_chain_sets; ++i) {
    const std::size_t length = std::max<std::size_t>(2, config_.decorative_chain_length);
    for (std::size_t j = 0; j < length; ++j) {
      ObjText obj;
      obj.attr("as-set", "AS-CHAIN-" + std::to_string(i) + "-" + std::to_string(j));
      std::string members = as_ref(topo_.ases()[(i + j) % topo_.ases().size()].asn);
      if (j + 1 < length) {
        members += ", AS-CHAIN-" + std::to_string(i) + "-" + std::to_string(j + 1);
      } else if (i % 3 == 0) {
        members += ", AS-CHAIN-" + std::to_string(i) + "-0";  // close the loop
      }
      obj.attr("members", members);
      emit(set_weights().pick_irr(rng_), obj.finish());
    }
  }
  if (config_.inject_as_any_set) {
    // The §4 anomaly: an empty as-set named after the reserved keyword.
    ObjText obj;
    obj.attr("as-set", "AS-ANY");
    emit("RADB", obj.finish());
  }
  for (std::size_t i = 0; i < config_.invalid_as_set_names; ++i) {
    ObjText obj;
    obj.attr("as-set", "BADSET" + std::to_string(i));  // missing AS- prefix
    obj.attr("members", as_ref(topo_.ases().front().asn));
    emit(set_weights().pick_irr(rng_), obj.finish());
  }

  // --- route-sets -----------------------------------------------------------
  for (const auto& as : topo_.ases()) {
    // Defined-but-unreferenced route-sets (Table 2's underuse point).
    if (!plans.at(as.asn).route_set && chance(rng_, config_.p_unused_route_set)) {
      ObjText extra;
      extra.attr("route-set", route_set_name(as.asn) + ":RS-EXTRA");
      extra.attr("members", as.prefixes.front().to_string());
      extra.attr("mnt-by", maintainer(as.asn));
      emit(set_weights().pick_irr(rng_), extra.finish());
    }
    if (!plans.at(as.asn).route_set) continue;
    ObjText obj;
    obj.attr("route-set", route_set_name(as.asn));
    add_admin_attrs(obj, route_set_name(as.asn), AdminProfile::kPolicy);
    std::string members;
    std::string mp_members;
    for (const auto& prefix : as.prefixes) {
      std::string& target = prefix.is_v4() ? members : mp_members;
      if (!target.empty()) target += ", ";
      target += prefix.to_string();
      if (chance(rng_, 0.3)) target += "^+";  // range operators on members
    }
    if (!members.empty()) obj.attr("members", members);
    if (!mp_members.empty()) obj.attr("mp-members", mp_members);
    obj.attr("mnt-by", maintainer(as.asn));
    emit(set_weights().pick_irr(rng_), obj.finish());
  }
  for (std::size_t i = 0; i < config_.invalid_route_set_names; ++i) {
    ObjText obj;
    obj.attr("route-set", "ROUTES-" + std::to_string(i));  // missing RS- prefix
    obj.attr("members", "192.0.2.0/24");
    emit(set_weights().pick_irr(rng_), obj.finish());
  }

  // --- peering-sets / filter-sets (rare, Table 2) ---------------------------
  {
    auto tier2 = topo_.tier_members(Tier::kTier2);
    const std::size_t prng_count = std::min<std::size_t>(4, tier2.size());
    for (std::size_t i = 0; i < prng_count; ++i) {
      const SynthAs* as = topo_.find(tier2[i]);
      ObjText obj;
      obj.attr("peering-set", "PRNG-" + as_ref(as->asn));
      add_admin_attrs(obj, "PRNG-" + as_ref(as->asn), AdminProfile::kPolicy);
      for (Asn peer : as->peers) obj.attr("peering", as_ref(peer));
      if (as->peers.empty() && !as->providers.empty()) {
        obj.attr("peering", as_ref(as->providers.front()));
      }
      emit(set_weights().pick_irr(rng_), obj.finish());
    }
    const std::size_t fltr_count = std::min<std::size_t>(3, tier2.size());
    for (std::size_t i = 0; i < fltr_count; ++i) {
      const SynthAs* as = topo_.find(tier2[i]);
      ObjText obj;
      obj.attr("filter-set", "FLTR-" + as_ref(as->asn));
      add_admin_attrs(obj, "FLTR-" + as_ref(as->asn), AdminProfile::kPolicy);
      obj.attr("filter", "{ " + as->prefixes.front().to_string() + "^+ }");
      emit(set_weights().pick_irr(rng_), obj.finish());
    }
  }

  // --- route / route6 objects ------------------------------------------------
  auto emit_route = [&](const net::Prefix& prefix, Asn origin, const std::string& mnt) {
    ObjText obj;
    obj.attr(prefix.is_v4() ? "route" : "route6", prefix.to_string());
    obj.attr("origin", as_ref(origin));
    add_admin_attrs(obj, prefix.to_string() + as_ref(origin), AdminProfile::kRoute);
    obj.attr("mnt-by", mnt);
    std::string irr = route_weights().pick_irr(rng_);
    std::string text = obj.finish();
    emit(irr, text);
    ++plan_.route_objects_emitted;
    if (chance(rng_, config_.p_second_irr_copy)) {
      // The same registration duplicated in another database.
      std::string second = route_weights().pick_irr(rng_);
      if (second != irr) {
        emit(second, text);
        ++plan_.route_objects_emitted;
      }
    }
  };

  for (const auto& as : topo_.ases()) {
    // Some networks register nothing at all — the "zero-route AS"
    // unrecorded category (Figure 5) when rules reference them.
    if (chance(rng_, config_.p_no_route_objects)) {
      plan_.zero_route_ases.insert(as.asn);
      plan_.ases_with_missing_route_objects.insert(as.asn);
      continue;
    }
    bool missing_some = false;
    for (const auto& prefix : as.prefixes) {
      if (chance(rng_, config_.p_missing_route_object)) {
        missing_some = true;
        continue;  // unregistered announcement (the "missing routes" cases)
      }
      emit_route(prefix, as.asn, maintainer(as.asn));
      // Multi-origin: the provider also registers the customer's prefix.
      if (!as.providers.empty() && chance(rng_, config_.p_multi_origin)) {
        const Asn provider = as.providers.front();
        emit_route(prefix, provider, maintainer(provider));
      }
    }
    if (missing_some) plan_.ases_with_missing_route_objects.insert(as.asn);
    // Stale registrations: more-specific slices prepared for traffic
    // engineering but never announced (the paper's 3x inflation).
    const auto stale_count =
        static_cast<std::size_t>(config_.stale_route_factor * double(as.prefixes.size()));
    for (std::size_t i = 0; i < stale_count; ++i) {
      const net::Prefix& base = as.prefixes[i % as.prefixes.size()];
      if (!base.is_v4()) continue;
      const std::uint8_t more = base.length() >= 24 ? 28 : std::uint8_t(base.length() + 8);
      const std::uint32_t offset = static_cast<std::uint32_t>(i)
                                   << (32 - more);  // distinct subnets
      net::Prefix stale(net::IpAddress::v4(base.address().v4_value() + offset), more);
      if (!base.covers(stale)) continue;
      emit_route(stale, as.asn, maintainer(as.asn));
    }
  }

  // --- non-policy admin objects ----------------------------------------------
  // Real dumps are dominated by object classes RPSLyzer skips entirely:
  // mntner (every mnt-by above references one), person/role contacts,
  // organisation records, and inetnum address registrations. The loader
  // lexes them and drops them at classification, which is exactly the cost
  // a real ingest pays — a corpus without them makes parsing look far
  // cheaper than production dumps do. All values hash off the object key
  // so no generator rng draws are consumed.
  auto admin_hash = [](std::string_view key) {
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (char c : key) {
      h ^= static_cast<unsigned char>(c);
      h *= 0x100000001b3ull;
    }
    return h;
  };
  const std::vector<std::string> rir_irrs = {"RIPE", "APNIC", "ARIN", "AFRINIC", "LACNIC"};
  for (const auto& as : topo_.ases()) {
    const std::uint64_t h = admin_hash(as_ref(as.asn));
    const std::string& home = plans.at(as.asn).home_irr;
    const std::string handle = "DUMY" + std::to_string(100 + h % 900) + "-EXAMPLE";
    {
      ObjText obj;
      obj.attr("mntner", maintainer(as.asn));
      add_admin_attrs(obj, maintainer(as.asn), AdminProfile::kPolicy);
      obj.attr("upd-to", "noc" + std::to_string(h % 97) + "@example.net");
      obj.attr("mnt-nfy", "noc" + std::to_string(h % 97) + "@example.net");
      obj.attr("auth", h % 2 == 0 ? "MD5-PW $1$SaltSalt$DummyHashValueDummyHashVal/"
                                  : "PGPKEY-" + std::to_string(10000000 + h % 90000000));
      obj.attr("mnt-by", maintainer(as.asn));
      emit(home, obj.finish());
    }
    // Registries carry several contacts per network (NOC role, admin,
    // billing, abuse); person/role records outnumber policy objects in
    // every production dump.
    const std::uint64_t contact_count = 6 + h % 4;
    for (std::uint64_t c = 0; c < contact_count; ++c) {
      const std::uint64_t ch = h ^ (c * 0x9e3779b97f4a7c15ull);
      ObjText obj;
      obj.attr(ch % 5 == 0 ? "role" : "person",
               "Synthetic Operator " + std::to_string(ch % 9973));
      obj.attr("address", "1 Example Street");
      obj.attr("address", "Suite " + std::to_string(100 + ch % 900));
      obj.attr("address", "Exampleville " + std::to_string(ch % 89999 + 10000));
      obj.attr("phone", "+1 555 " + std::to_string(1000000 + ch % 9000000));
      if (ch % 2 == 0) obj.attr("fax-no", "+1 555 " + std::to_string(1000000 + ch % 8999999));
      obj.attr("e-mail", "noc" + std::to_string(ch % 97) + "@example.net");
      obj.attr("nic-hdl", c == 0 ? handle
                                 : "DUMY" + std::to_string(1000 + ch % 9000) + "-EXAMPLE");
      obj.attr("remarks", "office hours 09:00-17:00 UTC");
      obj.attr("remarks",
               "for abuse reports use abuse" + std::to_string(ch % 97) + "@example.net");
      obj.attr("mnt-by", maintainer(as.asn));
      obj.attr("changed", "noc@example.net 2019-07-0" + std::to_string(1 + ch % 9));
      emit(home, obj.finish());
    }
    if (h % 2 == 0) {
      ObjText obj;
      obj.attr("organisation", "ORG-SYN" + std::to_string(100 + (h >> 16) % 900) + "-EXAMPLE");
      obj.attr("org-name", "Synthetic Network " + std::to_string(as.asn));
      obj.attr("org-type", "LIR");
      obj.attr("address", "1 Example Street, Exampleville");
      obj.attr("e-mail", "noc" + std::to_string(h % 97) + "@example.net");
      obj.attr("mnt-ref", maintainer(as.asn));
      obj.attr("mnt-by", maintainer(as.asn));
      emit(home, obj.finish());
    }
    for (const auto& prefix : as.prefixes) {
      const std::uint64_t ph = admin_hash(prefix.to_string());
      const std::string& rir = rir_irrs[ph % rir_irrs.size()];
      ObjText obj;
      if (prefix.is_v4()) {
        const std::uint32_t start = prefix.address().v4_value();
        const std::uint32_t end =
            start + (prefix.length() >= 32 ? 0u : (0xffffffffu >> prefix.length()));
        char range[40];
        std::snprintf(range, sizeof(range), "%u.%u.%u.%u - %u.%u.%u.%u", start >> 24,
                      (start >> 16) & 0xff, (start >> 8) & 0xff, start & 0xff, end >> 24,
                      (end >> 16) & 0xff, (end >> 8) & 0xff, end & 0xff);
        obj.attr("inetnum", range);
      } else {
        obj.attr("inet6num", prefix.to_string());
      }
      obj.attr("netname", "SYNTH-NET-" + std::to_string(as.asn));
      obj.attr("country", ph % 3 == 0 ? "US" : (ph % 3 == 1 ? "DE" : "JP"));
      obj.attr("admin-c", handle);
      obj.attr("tech-c", handle);
      obj.attr("status", prefix.length() <= 16 ? "ALLOCATED PA" : "ASSIGNED PA");
      if (ph % 2 == 0) {
        obj.attr("remarks", "Geofeed https://as" + std::to_string(as.asn) +
                                ".example.net/geofeed.csv");
        obj.attr("remarks", "abuse reports to abuse" + std::to_string(ph % 97) +
                                "@example.net");
      }
      obj.attr("mnt-by", maintainer(as.asn));
      obj.attr("created", "2010-01-0" + std::to_string(1 + ph % 9) + "T00:00:00Z");
      obj.attr("last-modified", "2022-01-0" + std::to_string(1 + ph % 9) + "T00:00:00Z");
      emit(rir, obj.finish());
      // Sub-assignments: registries record ASSIGNED children under most
      // allocations (customer assignments, infrastructure blocks), so each
      // allocated block usually appears several times at distinct sizes.
      if (prefix.is_v4() && prefix.length() <= 22) {
        const std::uint32_t start = prefix.address().v4_value();
        const std::uint8_t child_len = static_cast<std::uint8_t>(prefix.length() + 2);
        for (std::uint32_t child = 0; child < 3 + ph % 2; ++child) {
          const std::uint32_t child_start = start + (child << (32 - child_len));
          const std::uint32_t child_end = child_start + (0xffffffffu >> child_len);
          char range[40];
          std::snprintf(range, sizeof(range), "%u.%u.%u.%u - %u.%u.%u.%u", child_start >> 24,
                        (child_start >> 16) & 0xff, (child_start >> 8) & 0xff, child_start & 0xff,
                        child_end >> 24, (child_end >> 16) & 0xff, (child_end >> 8) & 0xff,
                        child_end & 0xff);
          ObjText sub;
          sub.attr("inetnum", range);
          sub.attr("netname", "SYNTH-CUST-" + std::to_string(as.asn) + "-" +
                                  std::to_string(child));
          sub.attr("descr", "customer assignment " + std::to_string(child));
          sub.attr("country", ph % 3 == 0 ? "US" : (ph % 3 == 1 ? "DE" : "JP"));
          sub.attr("admin-c", handle);
          sub.attr("tech-c", handle);
          sub.attr("status", "ASSIGNED PA");
          sub.attr("mnt-by", maintainer(as.asn));
          sub.attr("created", "2015-01-0" + std::to_string(1 + (ph + child) % 9) + "T00:00:00Z");
          sub.attr("last-modified",
                   "2023-01-0" + std::to_string(1 + (ph + child) % 9) + "T00:00:00Z");
          emit(rir, sub.finish());
          // Second assignment tier: customers re-assign slices of their
          // block to sites, so deep allocations appear at several depths.
          if (child_len <= 24 && (ph + child) % 2 == 0) {
            const std::uint8_t gc_len = static_cast<std::uint8_t>(child_len + 2);
            for (std::uint32_t g = 0; g < 2; ++g) {
              const std::uint32_t gc_start = child_start + (g << (32 - gc_len));
              const std::uint32_t gc_end = gc_start + (0xffffffffu >> gc_len);
              std::snprintf(range, sizeof(range), "%u.%u.%u.%u - %u.%u.%u.%u", gc_start >> 24,
                            (gc_start >> 16) & 0xff, (gc_start >> 8) & 0xff, gc_start & 0xff,
                            gc_end >> 24, (gc_end >> 16) & 0xff, (gc_end >> 8) & 0xff,
                            gc_end & 0xff);
              ObjText site;
              site.attr("inetnum", range);
              site.attr("netname", "SYNTH-SITE-" + std::to_string(as.asn) + "-" +
                                       std::to_string(child) + "-" + std::to_string(g));
              site.attr("descr", "site assignment " + std::to_string(g));
              site.attr("country", ph % 3 == 0 ? "US" : (ph % 3 == 1 ? "DE" : "JP"));
              site.attr("admin-c", handle);
              site.attr("tech-c", handle);
              site.attr("status", "ASSIGNED PA");
              site.attr("mnt-by", maintainer(as.asn));
              site.attr("created",
                        "2017-01-0" + std::to_string(1 + (ph + g) % 9) + "T00:00:00Z");
              site.attr("last-modified",
                        "2024-01-0" + std::to_string(1 + (ph + g) % 9) + "T00:00:00Z");
              emit(rir, site.finish());
            }
          }
        }
      }
      if (ph % 3 == 0 && prefix.is_v4()) {
        ObjText dom;
        const std::uint32_t start = prefix.address().v4_value();
        dom.attr("domain", std::to_string((start >> 16) & 0xff) + "." +
                               std::to_string(start >> 24) + ".in-addr.arpa");
        dom.attr("descr", "reverse zone for " + prefix.to_string());
        dom.attr("nserver", "ns1.as" + std::to_string(as.asn) + ".example.net");
        dom.attr("nserver", "ns2.as" + std::to_string(as.asn) + ".example.net");
        dom.attr("mnt-by", maintainer(as.asn));
        emit(rir, dom.finish());
      }
    }
  }

  // --- syntax error injection -------------------------------------------------
  for (std::size_t i = 0; i < config_.syntax_error_objects; ++i) {
    std::string irr = set_weights().pick_irr(rng_);
    switch (i % 4) {
      case 0:
        // Keyword typo inside a rule.
        emit(irr, "aut-num: AS" + std::to_string(64000 + i) +
                      "\nimport: fron AS100 accept ANY\n\n");
        break;
      case 1:
        // Broken comma-separated list.
        emit(irr, "as-set: AS-BROKEN-" + std::to_string(i) +
                      "\nmembers: AS100,, AS200\n\n");
        break;
      case 2:
        // Out-of-place text (no attribute line).
        emit(irr, "route: 198.51.100.0/24\norigin: AS100\nthis line is misplaced\n\n");
        break;
      default:
        // Misplaced comment / stray continuation.
        emit(irr, "   stray continuation line\nas-set: AS-STRAY-" + std::to_string(i) +
                      "\nmembers: AS100\n\n");
    }
    ++plan_.syntax_errors_injected;
  }

  return dumps;
}

}  // namespace rpslyzer::synth
