#pragma once
// Synthetic IRR churn: NRTM-style journal batches generated against a
// ground-truth corpus.
//
// The delta pipeline's differential harness needs realistic mutation
// streams — route add/withdraw, set membership edits, policy edits, replay
// and serial gaps — with a seeded, reproducible mix. The generator catalogs
// the corpus dumps once, then emits batches whose operations stay
// internally consistent (DELs target objects that exist, modifications
// re-emit the current attribute list) while exercising the edge cases the
// pipeline must survive: DEL of nonexistent objects, duplicate serials via
// replayed ops, and serial gaps between and within batches.

#include <cstdint>
#include <map>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "rpslyzer/delta/journal.hpp"
#include "rpslyzer/rpsl/object_lexer.hpp"
#include "rpslyzer/synth/topology.hpp"

namespace rpslyzer::synth {

struct ChurnConfig {
  std::uint32_t seed = 1;
  std::size_t ops_per_batch = 20;
  std::uint64_t start_serial = 1;
  /// Route objects with these origins are never added or deleted — the
  /// chaos harness pins its byte-exact `!g` oracle to a protected AS.
  std::set<Asn> protect_origins;
};

class ChurnGenerator {
 public:
  /// Catalogs `dumps` (IRR name -> RPSL text, e.g. RpslGenerator output).
  ChurnGenerator(const std::map<std::string, std::string>& dumps, ChurnConfig config);

  /// Next batch; deterministic for a given (dumps, config). Serials advance
  /// with occasional gaps; most batches lead with a replay of the previous
  /// batch's final op (same serial — the consumer must skip it).
  delta::JournalBatch next_batch();

  std::uint64_t next_serial() const noexcept { return serial_; }

 private:
  struct RouteEntry {
    std::string source;
    std::string prefix;  // text form
    Asn origin = 0;
    bool v6 = false;
  };
  struct ObjectEntry {  // aut-num or as-set, kept re-renderable for edits
    std::string source;
    rpsl::RawObject raw;
  };

  delta::JournalOp make_op(std::uint64_t serial);
  std::string fresh_prefix(bool v6);

  ChurnConfig config_;
  std::mt19937 rng_;
  std::uint64_t serial_;
  std::vector<std::string> source_names_;
  std::vector<RouteEntry> routes_;
  std::vector<ObjectEntry> aut_nums_;
  std::vector<ObjectEntry> as_sets_;
  std::vector<Asn> known_asns_;
  std::set<std::string> used_prefixes_;
  std::uint64_t prefix_counter_ = 0;
  std::vector<delta::JournalOp> last_tail_;  // previous batch's final op
};

}  // namespace rpslyzer::synth
