#pragma once
// Synthetic AS-level topology: a Tier-1 clique, two transit tiers, and
// stubs, wired with Gao-Rexford style provider/customer/peer relationships
// and allocated real-looking address space.

#include <random>
#include <unordered_map>
#include <vector>

#include "rpslyzer/net/prefix.hpp"
#include "rpslyzer/relations/relations.hpp"
#include "rpslyzer/synth/config.hpp"

namespace rpslyzer::synth {

using Asn = relations::Asn;

enum class Tier : std::uint8_t { kTier1, kTier2, kTier3, kStub };

struct SynthAs {
  Asn asn = 0;
  Tier tier = Tier::kStub;
  std::vector<Asn> providers;
  std::vector<Asn> customers;
  std::vector<Asn> peers;
  std::vector<net::Prefix> prefixes;  // announced address space

  bool is_transit() const noexcept { return !customers.empty(); }
  std::size_t degree() const noexcept {
    return providers.size() + customers.size() + peers.size();
  }
};

class Topology {
 public:
  /// Deterministic for a given config (including seed).
  static Topology generate(const SynthConfig& config);

  const std::vector<SynthAs>& ases() const noexcept { return ases_; }
  const SynthAs* find(Asn asn) const;
  const relations::AsRelations& relations() const noexcept { return relations_; }
  std::size_t size() const noexcept { return ases_.size(); }

  /// All ASes of a tier, in generation order.
  std::vector<Asn> tier_members(Tier tier) const;

  /// Total announced prefixes.
  std::size_t prefix_count() const noexcept;

 private:
  std::vector<SynthAs> ases_;
  std::unordered_map<Asn, std::size_t> by_asn_;
  relations::AsRelations relations_;
};

/// Sequential IPv4 /16 (and sub-/20) allocator that skips martian space.
class PrefixAllocator {
 public:
  /// A fresh /16 for transit ASes.
  net::Prefix next_v4_16();
  /// A /20 slice (four per /16) for stubs.
  net::Prefix next_v4_20();
  /// A fresh IPv6 /32 under 2a00::/12-like synthetic space.
  net::Prefix next_v6_32();

 private:
  std::uint32_t next16_ = 11u << 24;  // start at 11.0.0.0
  std::uint32_t slice_base_ = 0;      // /16 currently being sliced into /20s
  int slice_index_ = 4;               // 4 = exhausted
  std::uint32_t v6_counter_ = 0;
};

}  // namespace rpslyzer::synth
