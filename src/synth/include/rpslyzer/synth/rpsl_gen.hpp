#pragma once
// RPSL emission for the synthetic Internet: renders aut-num, as-set,
// route-set, peering-set, filter-set and route/route6 objects as whois-
// format text spread over the paper's 13 IRRs (Table 1), with the §4/§5
// phenomena injected: adoption gaps, filter misuses, set pathologies,
// stale/multi-origin route objects, and syntax errors.

#include <map>
#include <set>
#include <string>

#include "rpslyzer/synth/topology.hpp"

namespace rpslyzer::synth {

/// Ground truth about what was injected — used by tests and EXPERIMENTS.md
/// to sanity-check that analyses recover the planted phenomena.
struct RpslPlan {
  std::set<Asn> missing_aut_num;
  std::set<Asn> zero_rules;            // aut-num exists but has no rules
  std::set<Asn> export_self_misuse;    // transit announcing only itself
  std::set<Asn> import_customer_misuse;
  std::set<Asn> only_provider_policies;
  std::set<Asn> uses_cone_as_set;
  std::set<Asn> uses_route_set;
  std::set<Asn> ases_with_missing_route_objects;
  std::set<Asn> zero_route_ases;        // no route objects at all
  std::set<Asn> missing_set_reference;  // rules referencing undefined sets
  std::set<Asn> policy_rich;            // Figure 1's heavy tail
  std::size_t rules_emitted = 0;
  std::size_t skip_class_rules = 0;
  std::size_t route_objects_emitted = 0;  // including duplicates and stale
  std::size_t syntax_errors_injected = 0;
};

class RpslGenerator {
 public:
  RpslGenerator(const Topology& topo, const SynthConfig& config);

  /// Generate all dumps; deterministic for a given config.
  /// Key: IRR name (APNIC...ALTDB), value: RPSL dump text.
  std::map<std::string, std::string> generate();

  const RpslPlan& plan() const noexcept { return plan_; }

 private:
  const Topology& topo_;
  SynthConfig config_;
  std::mt19937 rng_;
  RpslPlan plan_;
};

/// The 13 IRR names in Table 1 priority order.
const std::vector<std::string>& irr_names();

}  // namespace rpslyzer::synth
