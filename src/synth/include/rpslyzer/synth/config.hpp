#pragma once
// Configuration for the synthetic Internet (the substitution for the
// paper's IRR dumps, CAIDA relationships, and BGP collector data —
// DESIGN.md §1). Probabilities are calibrated to the fractions §4 and §5
// report so the reproduced figures have the paper's shape.

#include <cstddef>
#include <cstdint>

namespace rpslyzer::synth {

struct SynthConfig {
  std::uint32_t seed = 42;

  // Topology sizes (multiplied by `scale`).
  double scale = 1.0;
  std::size_t tier1_count = 8;    // provider-free clique
  std::size_t tier2_count = 48;   // regional transit
  std::size_t tier3_count = 220;  // small transit
  std::size_t stub_count = 1100;  // edge networks

  // Connectivity.
  std::size_t tier2_providers_min = 2, tier2_providers_max = 3;
  std::size_t tier3_providers_min = 1, tier3_providers_max = 3;
  std::size_t stub_providers_min = 1, stub_providers_max = 2;
  // Transit peering is dense on the real Internet; routes cross exactly one
  // peer link (valley-free), and which link varies per (origin, collector),
  // so these mostly-undeclared lateral pairs dominate the observed-pair
  // census (Figure 3's 63% pairs with unverified routes).
  double tier2_peer_density = 0.30;   // probability per tier2 pair
  double tier3_peer_density = 0.35;   // probability per tier3 pair
  double tier23_peer_density = 0.08;  // probability per tier2 x tier3 pair
  /// Lateral (IXP-style) peer links among tier3 + stub networks, as a
  /// multiple of their count. These mostly-undeclared peerings drive the
  /// paper's dominant unverified case (§5.2: 98.98% of unverified checks
  /// are undeclared relationships).
  double edge_peer_links_factor = 3.0;

  // Addressing.
  double extra_prefix_probability = 0.5;  // chance of a 2nd/3rd prefix
  double v6_adoption = 0.35;              // AS announces an IPv6 prefix too

  // RPSL adoption (§4: 27.2% of ASes missing aut-nums, 35.2% of aut-nums
  // with zero rules).
  double p_missing_aut_num = 0.25;
  double p_zero_rules = 0.33;
  /// Fraction of an AS's provider/customer neighbors covered by its rules
  /// (undeclared peerings drive the paper's dominant unverified case).
  double neighbor_coverage = 0.55;
  /// Rule coverage for peer links: transit networks document some peers,
  /// edge networks hardly any (IXP peerings are notoriously undeclared).
  double peer_coverage_transit = 0.30;
  double peer_coverage_stub = 0.12;
  /// Stubs defining a (typically single-member) as-set and announcing it.
  double stub_cone_set_probability = 0.4;
  /// A couple of "policy-rich" networks emit per-session rule variants,
  /// reproducing Figure 1's heavy tail (101 aut-nums above 1000 rules).
  std::size_t policy_rich_ases = 2;
  std::size_t policy_rich_copies = 30;

  // Filter-style mix for transit ASes (§5.1.1: 64.4% of transit ASes use
  // "export self"; 29.8% use "import customer").
  double p_export_self_misuse = 0.62;
  double p_import_customer_misuse = 0.30;
  double p_import_peeras = 0.10;          // PeerAS filters (Appendix A)
  double p_only_provider_policies = 0.01;  // §5.1.2: 46 ASes (0.44%)

  // Route-object hygiene (§4/§5: missing route objects explain 6.2% of
  // special-cased ASes; route objects are ~3x announced prefixes; 24.7% of
  // prefixes have multiple route objects).
  double p_missing_route_object = 0.08;
  double p_no_route_objects = 0.03;  // AS registers nothing (zero-route AS)
  double stale_route_factor = 2.1;   // extra unannounced registrations per AS
  double p_multi_origin = 0.25;      // also registered under the provider
  double p_second_irr_copy = 0.15;   // object duplicated in a lower-priority IRR

  // Set structure (§4: 14.5% empty, 32.7% single member, 25.5% recursive,
  // of which 22.4% in loops and 23.0% depth >= 5).
  double p_recursive_as_set = 0.75;   // transit set references customer sets
  double p_as_set_loop = 0.05;        // back-edge injection
  std::size_t decorative_empty_sets = 60;
  std::size_t decorative_singleton_sets = 90;
  std::size_t as_sets_with_any = 3;
  /// Deep member chains (AS-CHAIN-i-0 -> ... -> AS-CHAIN-i-5), every third
  /// one closed into a loop — the §4 depth/loop census.
  std::size_t decorative_chain_sets = 10;
  std::size_t decorative_chain_length = 6;
  /// route-set adoption (Table 2: fewer route-sets referenced than as-sets).
  double p_route_set_filter = 0.06;
  /// route-sets defined but never referenced by any rule (Table 2's point:
  /// route-sets are underused relative to how many exist).
  double p_unused_route_set = 0.12;
  /// Rules referencing an as-set that exists in no IRR (Figure 5's
  /// "missing set object" unrecorded category).
  double p_missing_set_reference = 0.012;

  // Compound rules and skip-class constructs (§5: 114 skipped rules out of
  // 822k; keep the fraction tiny but non-zero).
  double p_compound_rule = 0.04;     // regex / NOT / refine flavored rules
  std::size_t community_filter_rules = 3;
  std::size_t asn_range_regex_rules = 2;
  std::size_t same_pattern_regex_rules = 2;

  // Error injection (§4: 663 syntax errors, 12/17 invalid set names).
  std::size_t syntax_error_objects = 40;
  std::size_t invalid_as_set_names = 3;
  std::size_t invalid_route_set_names = 4;
  bool inject_as_any_set = true;  // the empty as-set named AS-ANY

  // BGP collection.
  std::size_t collectors = 40;

  /// Apply `scale` to the topology sizes.
  SynthConfig scaled() const {
    SynthConfig c = *this;
    auto apply = [&](std::size_t v) {
      auto scaled = static_cast<std::size_t>(static_cast<double>(v) * c.scale);
      return scaled == 0 ? std::size_t{1} : scaled;
    };
    c.tier1_count = apply(c.tier1_count);
    c.tier2_count = apply(c.tier2_count);
    c.tier3_count = apply(c.tier3_count);
    c.stub_count = apply(c.stub_count);
    c.scale = 1.0;  // idempotent: scaling an already-scaled config is a no-op
    return c;
  }
};

}  // namespace rpslyzer::synth
