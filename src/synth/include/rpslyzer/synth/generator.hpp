#pragma once
// Facade over the synthetic-Internet substrates: one call produces the IRR
// dumps, the CAIDA-format relationship file, and the BGP collector dumps
// that substitute for the paper's input datasets (DESIGN.md §1).

#include <filesystem>

#include "rpslyzer/synth/bgp_sim.hpp"
#include "rpslyzer/synth/rpsl_gen.hpp"

namespace rpslyzer::synth {

class InternetGenerator {
 public:
  explicit InternetGenerator(SynthConfig config = {});

  const Topology& topology() const noexcept { return topology_; }
  const relations::AsRelations& relations() const noexcept { return topology_.relations(); }
  const RpslPlan& plan() const noexcept { return plan_; }
  const SynthConfig& config() const noexcept { return config_; }

  /// IRR name -> RPSL dump text (13 entries, Table 1 order via irr_names()).
  const std::map<std::string, std::string>& irr_dumps() const noexcept { return dumps_; }

  /// CAIDA serial-1 relationship text (including the clique comment).
  std::string caida_serial1() const { return topology_.relations().to_serial1(); }

  /// Per-collector BGP table dumps ("prefix|path" lines).
  std::vector<std::string> bgp_dumps() const;
  const std::vector<Asn>& collector_peers() const noexcept { return collector_peers_; }

  /// Write everything under `directory`: <irr>.db files, relationships.txt,
  /// and collector-<n>.dump files. Returns the number of files written.
  std::size_t write_to(const std::filesystem::path& directory) const;

 private:
  SynthConfig config_;
  Topology topology_;
  RpslPlan plan_;
  std::map<std::string, std::string> dumps_;
  std::vector<Asn> collector_peers_;
};

}  // namespace rpslyzer::synth
