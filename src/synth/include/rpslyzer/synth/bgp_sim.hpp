#pragma once
// Gao-Rexford route propagation over the synthetic topology, producing
// per-collector table dumps (the substitution for RIPE RIS / RouteViews).
//
// Export policy: routes learned from customers (or originated) are exported
// to everyone; routes learned from peers or providers are exported only to
// customers. Selection prefers customer > peer > provider routes, then
// shorter paths, then the lowest next-hop ASN — the standard valley-free
// model [24].

#include <string>
#include <vector>

#include "rpslyzer/synth/topology.hpp"

namespace rpslyzer::synth {

/// How an AS learned its best route toward some origin.
enum class RouteType : std::uint8_t { kSelf, kCustomer, kPeer, kProvider, kNone };

/// The best-route tree for one origin AS: for every AS that has a route,
/// its (type, path length, parent).
class RouteTree {
 public:
  static RouteTree compute(const Topology& topo, Asn origin);

  bool reachable(Asn asn) const;
  RouteType type(Asn asn) const;
  /// AS path in BGP order as announced by `asn` to a collector:
  /// [asn, ..., origin]. Empty when unreachable.
  std::vector<Asn> path_from(Asn asn) const;

 private:
  struct Entry {
    RouteType type = RouteType::kNone;
    std::uint32_t length = 0;  // number of AS hops from the origin
    Asn parent = 0;            // neighbor the route was learned from
  };

  const Topology* topo_ = nullptr;
  Asn origin_ = 0;
  std::unordered_map<Asn, Entry> entries_;
};

/// Render per-collector table dumps in the simple "prefix|path" format.
/// `collector_peers[i]` is the AS peering with collector i; every announced
/// prefix reachable at that AS yields one line.
std::vector<std::string> render_collector_dumps(const Topology& topo,
                                                const std::vector<Asn>& collector_peers);

/// Pick collector-peer ASes spread across tiers (deterministic).
std::vector<Asn> default_collector_peers(const Topology& topo, std::size_t count);

}  // namespace rpslyzer::synth
