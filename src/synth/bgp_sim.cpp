#include "rpslyzer/synth/bgp_sim.hpp"

#include <algorithm>
#include <queue>

namespace rpslyzer::synth {

namespace {

/// Selection key: lower is better (type, length, next-hop ASN).
struct Key {
  RouteType type;
  std::uint32_t length;
  Asn parent;

  friend bool operator<(const Key& a, const Key& b) {
    if (a.type != b.type) return a.type < b.type;
    if (a.length != b.length) return a.length < b.length;
    return a.parent < b.parent;
  }
};

}  // namespace

RouteTree RouteTree::compute(const Topology& topo, Asn origin) {
  RouteTree tree;
  tree.topo_ = &topo;
  tree.origin_ = origin;
  if (topo.find(origin) == nullptr) return tree;

  auto better = [&](const Entry& candidate, const Entry& current) {
    return Key{candidate.type, candidate.length, candidate.parent} <
           Key{current.type, current.length, current.parent};
  };

  auto& entries = tree.entries_;
  entries[origin] = Entry{RouteType::kSelf, 0, 0};

  // Phase A — uphill: customer-learned routes climb provider chains.
  // Dijkstra over (length, asn) with only self/customer-type sources.
  {
    using Item = std::pair<std::uint32_t, Asn>;  // (length, asn)
    std::priority_queue<Item, std::vector<Item>, std::greater<>> queue;
    queue.push({0, origin});
    while (!queue.empty()) {
      auto [length, asn] = queue.top();
      queue.pop();
      auto it = entries.find(asn);
      if (it == entries.end() || it->second.length != length) continue;
      if (it->second.type != RouteType::kSelf && it->second.type != RouteType::kCustomer) {
        continue;
      }
      for (Asn provider : topo.find(asn)->providers) {
        Entry candidate{RouteType::kCustomer, length + 1, asn};
        auto existing = entries.find(provider);
        if (existing == entries.end() || better(candidate, existing->second)) {
          entries[provider] = candidate;
          queue.push({candidate.length, provider});
        }
      }
    }
  }

  // Phase B — one peer hop: peers of ASes holding self/customer routes.
  {
    std::vector<std::pair<Asn, Entry>> additions;
    for (const auto& [asn, entry] : entries) {
      if (entry.type != RouteType::kSelf && entry.type != RouteType::kCustomer) continue;
      for (Asn peer : topo.find(asn)->peers) {
        Entry candidate{RouteType::kPeer, entry.length + 1, asn};
        auto existing = entries.find(peer);
        if (existing == entries.end()) {
          additions.emplace_back(peer, candidate);
        } else if (better(candidate, existing->second)) {
          existing->second = candidate;
        }
      }
    }
    for (auto& [asn, entry] : additions) {
      auto existing = entries.find(asn);
      if (existing == entries.end() || better(entry, existing->second)) {
        entries[asn] = entry;
      }
    }
  }

  // Phase C — downhill: anything propagates to customers, recursively.
  {
    using Item = std::pair<std::uint32_t, Asn>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> queue;
    for (const auto& [asn, entry] : entries) queue.push({entry.length, asn});
    while (!queue.empty()) {
      auto [length, asn] = queue.top();
      queue.pop();
      auto it = entries.find(asn);
      if (it == entries.end() || it->second.length != length) continue;
      for (Asn customer : topo.find(asn)->customers) {
        Entry candidate{RouteType::kProvider, length + 1, asn};
        auto existing = entries.find(customer);
        if (existing == entries.end() || better(candidate, existing->second)) {
          entries[customer] = candidate;
          queue.push({candidate.length, customer});
        }
      }
    }
  }
  return tree;
}

bool RouteTree::reachable(Asn asn) const { return entries_.contains(asn); }

RouteType RouteTree::type(Asn asn) const {
  auto it = entries_.find(asn);
  return it == entries_.end() ? RouteType::kNone : it->second.type;
}

std::vector<Asn> RouteTree::path_from(Asn asn) const {
  std::vector<Asn> path;
  auto it = entries_.find(asn);
  while (it != entries_.end()) {
    path.push_back(asn);
    if (it->second.type == RouteType::kSelf) return path;
    if (path.size() > entries_.size()) return {};  // defensive: no cycles expected
    asn = it->second.parent;
    it = entries_.find(asn);
  }
  return {};
}

std::vector<std::string> render_collector_dumps(const Topology& topo,
                                                const std::vector<Asn>& collector_peers) {
  std::vector<std::string> dumps(collector_peers.size());
  for (const auto& origin_as : topo.ases()) {
    RouteTree tree = RouteTree::compute(topo, origin_as.asn);
    for (std::size_t c = 0; c < collector_peers.size(); ++c) {
      const Asn peer = collector_peers[c];
      if (!tree.reachable(peer)) continue;
      std::vector<Asn> path = tree.path_from(peer);
      if (path.empty()) continue;
      std::string path_text;
      for (Asn asn : path) {
        if (!path_text.empty()) path_text.push_back(' ');
        path_text += std::to_string(asn);
      }
      for (const auto& prefix : origin_as.prefixes) {
        dumps[c] += prefix.to_string() + "|" + path_text + "\n";
      }
    }
  }
  return dumps;
}

std::vector<Asn> default_collector_peers(const Topology& topo, std::size_t count) {
  // Spread across tiers. Real collector peers range from Tier-1s to edge
  // networks; edge vantage points are what observe downhill hops, so they
  // get the largest share.
  std::vector<Asn> peers;
  auto take = [&](Tier tier, std::size_t how_many) {
    for (Asn asn : topo.tier_members(tier)) {
      if (how_many == 0 || peers.size() >= count) break;
      peers.push_back(asn);
      --how_many;
    }
  };
  take(Tier::kTier1, count >= 4 ? 1 : 0);
  take(Tier::kTier2, count / 4);
  take(Tier::kTier3, count / 4);
  take(Tier::kStub, count);  // fill the remainder with edge vantage points
  take(Tier::kTier2, count);  // top up if the topology lacks stubs
  take(Tier::kTier1, count);
  if (peers.size() > count) peers.resize(count);
  return peers;
}

}  // namespace rpslyzer::synth
