#include "rpslyzer/synth/churn.hpp"

#include <cinttypes>
#include <cstdio>

#include "rpslyzer/ir/objects.hpp"
#include "rpslyzer/util/diagnostics.hpp"

namespace rpslyzer::synth {

namespace {

/// Canonical paragraph rendering, matching the delta store's (one
/// "name: value" line per attribute, declaration order).
std::string render(const rpsl::RawObject& raw) {
  std::string out;
  for (const rpsl::RawAttribute& attr : raw.attributes) {
    out += attr.name;
    out += ':';
    if (!attr.value.empty()) {
      out += ' ';
      out += attr.value;
    }
    out += '\n';
  }
  return out;
}

std::string as_ref(Asn asn) { return "AS" + std::to_string(asn); }

}  // namespace

ChurnGenerator::ChurnGenerator(const std::map<std::string, std::string>& dumps,
                               ChurnConfig config)
    : config_(std::move(config)), rng_(config_.seed), serial_(config_.start_serial) {
  for (const auto& [name, text] : dumps) {
    source_names_.push_back(name);
    util::Diagnostics diags;
    for (rpsl::RawObject& raw : rpsl::lex_objects(text, name, diags)) {
      if (raw.class_name == "route" || raw.class_name == "route6") {
        const auto origin = ir::parse_as_ref(raw.first("origin"));
        if (!origin.has_value()) continue;
        used_prefixes_.insert(std::string(raw.key));
        routes_.push_back({name, raw.key, *origin, raw.class_name == "route6"});
      } else if (raw.class_name == "aut-num") {
        const auto asn = ir::parse_as_ref(raw.key);
        if (!asn.has_value()) continue;
        known_asns_.push_back(*asn);
        aut_nums_.push_back({name, std::move(raw)});
      } else if (raw.class_name == "as-set") {
        as_sets_.push_back({name, std::move(raw)});
      }
    }
  }
  if (source_names_.empty()) source_names_.push_back("RADB");
}

std::string ChurnGenerator::fresh_prefix(bool v6) {
  while (true) {
    const std::uint64_t c = prefix_counter_++;
    char buffer[48];
    if (v6) {
      // 2001:db8::/32 is reserved for documentation — collision-free with
      // the topology allocator, which skips martian space.
      std::snprintf(buffer, sizeof(buffer), "2001:db8:%" PRIx64 "::/48",
                    c & 0xffff);
    } else {
      // 10/8 is martian, so the synthetic corpus never allocates from it.
      std::snprintf(buffer, sizeof(buffer), "10.%u.%u.0/24",
                    static_cast<unsigned>((c >> 8) & 0xff),
                    static_cast<unsigned>(c & 0xff));
    }
    std::string prefix(buffer);
    if (used_prefixes_.insert(prefix).second) return prefix;
  }
}

delta::JournalOp ChurnGenerator::make_op(std::uint64_t serial) {
  delta::JournalOp op;
  op.serial = serial;
  const auto pick_source = [&]() -> const std::string& {
    return source_names_[rng_() % source_names_.size()];
  };
  const auto pick_asn = [&]() -> Asn {
    if (known_asns_.empty()) return 64512 + static_cast<Asn>(rng_() % 1024);
    return known_asns_[rng_() % known_asns_.size()];
  };
  const auto pick_unprotected_asn = [&]() -> Asn {
    for (int attempt = 0; attempt < 16; ++attempt) {
      const Asn asn = pick_asn();
      if (!config_.protect_origins.contains(asn)) return asn;
    }
    return 64512 + static_cast<Asn>(rng_() % 1024);
  };

  const unsigned roll = rng_() % 100;
  if (roll < 30 || roll >= 85) {
    // Add a route (v4 or, at the tail of the roll space, v6).
    const bool v6 = roll >= 85 && roll < 95;
    if (roll >= 95) {
      // DEL of a nonexistent as-set: a legal no-op the pipeline must absorb.
      op.kind = delta::JournalOp::Kind::kDel;
      op.source = pick_source();
      op.paragraph = "as-set: AS-NONE" + std::to_string(serial) + "\n";
      return op;
    }
    const Asn origin = pick_unprotected_asn();
    const std::string prefix = fresh_prefix(v6);
    op.kind = delta::JournalOp::Kind::kAdd;
    op.source = pick_source();
    op.paragraph = std::string(v6 ? "route6: " : "route: ") + prefix +
                   "\norigin: " + as_ref(origin) + "\n";
    routes_.push_back({op.source, prefix, origin, v6});
    return op;
  }
  if (roll < 45) {
    // Delete an existing route (never a protected origin's).
    for (int attempt = 0; attempt < 8 && !routes_.empty(); ++attempt) {
      const std::size_t i = rng_() % routes_.size();
      if (config_.protect_origins.contains(routes_[i].origin)) continue;
      const RouteEntry entry = routes_[i];
      routes_[i] = routes_.back();
      routes_.pop_back();
      op.kind = delta::JournalOp::Kind::kDel;
      op.source = entry.source;
      op.paragraph = std::string(entry.v6 ? "route6: " : "route: ") + entry.prefix +
                     "\norigin: " + as_ref(entry.origin) + "\n";
      return op;
    }
    // No deletable route: DEL of a nonexistent one instead.
    op.kind = delta::JournalOp::Kind::kDel;
    op.source = pick_source();
    op.paragraph = "route: " + fresh_prefix(false) + "\norigin: " +
                   as_ref(pick_unprotected_asn()) + "\n";
    return op;
  }
  if (roll < 55 && !aut_nums_.empty()) {
    // Modify an aut-num: append one simple import rule and re-emit.
    ObjectEntry& entry = aut_nums_[rng_() % aut_nums_.size()];
    const Asn peer = pick_asn();
    entry.raw.attributes.push_back(
        {"import", "from " + as_ref(peer) + " accept " + as_ref(peer), 0});
    op.kind = delta::JournalOp::Kind::kAdd;
    op.source = entry.source;
    op.paragraph = render(entry.raw);
    return op;
  }
  if (roll < 65) {
    // Add a fresh as-set (members: two ASNs, sometimes an existing set).
    rpsl::RawObject raw;
    raw.class_name = "as-set";
    raw.key = "AS-CHURN" + std::to_string(serial);
    std::string members = as_ref(pick_asn()) + ", " + as_ref(pick_asn());
    if (!as_sets_.empty() && rng_() % 2 == 0) {
      members += ", " + as_sets_[rng_() % as_sets_.size()].raw.key;
    }
    raw.attributes.push_back({"as-set", raw.key, 0});
    raw.attributes.push_back({"members", std::move(members), 0});
    op.kind = delta::JournalOp::Kind::kAdd;
    op.source = pick_source();
    op.paragraph = render(raw);
    as_sets_.push_back({op.source, std::move(raw)});
    return op;
  }
  if (roll < 75 && !as_sets_.empty()) {
    // Modify an as-set: append a member and re-emit.
    ObjectEntry& entry = as_sets_[rng_() % as_sets_.size()];
    entry.raw.attributes.push_back({"members", as_ref(pick_asn()), 0});
    op.kind = delta::JournalOp::Kind::kAdd;
    op.source = entry.source;
    op.paragraph = render(entry.raw);
    return op;
  }
  if (roll < 80 && !as_sets_.empty()) {
    // Delete an as-set.
    const std::size_t i = rng_() % as_sets_.size();
    const ObjectEntry entry = std::move(as_sets_[i]);
    as_sets_[i] = std::move(as_sets_.back());
    as_sets_.pop_back();
    op.kind = delta::JournalOp::Kind::kDel;
    op.source = entry.source;
    op.paragraph = "as-set: " + entry.raw.key + "\n";
    return op;
  }
  // Fallback (and roll 80-84): DEL of a route that was never registered.
  op.kind = delta::JournalOp::Kind::kDel;
  op.source = pick_source();
  op.paragraph =
      "route: " + fresh_prefix(false) + "\norigin: " + as_ref(pick_unprotected_asn()) + "\n";
  return op;
}

delta::JournalBatch ChurnGenerator::next_batch() {
  delta::JournalBatch batch;
  // Most batches lead with a replay of the previous batch's last op: same
  // serial, so the consumer must recognize and skip it idempotently.
  if (!last_tail_.empty() && rng_() % 4 != 0) {
    batch.ops.push_back(last_tail_.front());
  }
  for (std::size_t i = 0; i < config_.ops_per_batch; ++i) {
    batch.ops.push_back(make_op(serial_));
    serial_ += 1 + (rng_() % 8 == 0 ? rng_() % 3 : 0);  // occasional gaps
  }
  batch.first_serial = batch.ops.front().serial;
  batch.last_serial = batch.ops.back().serial;
  last_tail_ = {batch.ops.back()};
  serial_ += rng_() % 3;  // occasional inter-batch gap
  return batch;
}

}  // namespace rpslyzer::synth
