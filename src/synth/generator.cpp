#include "rpslyzer/synth/generator.hpp"

#include <fstream>

#include "rpslyzer/util/strings.hpp"

namespace rpslyzer::synth {

InternetGenerator::InternetGenerator(SynthConfig config)
    : config_(config.scaled()), topology_(Topology::generate(config_)) {
  RpslGenerator rpsl(topology_, config_);
  dumps_ = rpsl.generate();
  plan_ = rpsl.plan();
  collector_peers_ = default_collector_peers(topology_, config_.collectors);
}

std::vector<std::string> InternetGenerator::bgp_dumps() const {
  return render_collector_dumps(topology_, collector_peers_);
}

std::size_t InternetGenerator::write_to(const std::filesystem::path& directory) const {
  std::filesystem::create_directories(directory);
  std::size_t files = 0;
  auto write = [&](const std::filesystem::path& path, const std::string& text) {
    std::ofstream out(path, std::ios::binary);
    out << text;
    ++files;
  };
  for (const auto& [irr, text] : dumps_) {
    write(directory / (util::lower(irr) + ".db"), text);
  }
  write(directory / "relationships.txt", caida_serial1());
  const auto dumps = bgp_dumps();
  for (std::size_t i = 0; i < dumps.size(); ++i) {
    write(directory / ("collector-" + std::to_string(i) + ".dump"), dumps[i]);
  }
  return files;
}

}  // namespace rpslyzer::synth
