#include "rpslyzer/synth/topology.hpp"

#include <algorithm>

#include "rpslyzer/net/martians.hpp"

namespace rpslyzer::synth {

namespace {

/// Uniform integer in [lo, hi].
std::size_t pick(std::mt19937& rng, std::size_t lo, std::size_t hi) {
  if (hi <= lo) return lo;
  return std::uniform_int_distribution<std::size_t>(lo, hi)(rng);
}

bool chance(std::mt19937& rng, double p) {
  return std::uniform_real_distribution<double>(0.0, 1.0)(rng) < p;
}

}  // namespace

net::Prefix PrefixAllocator::next_v4_16() {
  while (true) {
    net::Prefix candidate(net::IpAddress::v4(next16_), 16);
    next16_ += 1u << 16;
    // Skip anything overlapping martian space in either direction.
    if (!net::is_martian(candidate) && !net::is_martian(net::Prefix(candidate.address(), 8))) {
      return candidate;
    }
  }
}

net::Prefix PrefixAllocator::next_v4_20() {
  if (slice_index_ >= 4) {
    slice_base_ = next_v4_16().address().v4_value();
    slice_index_ = 0;
  }
  net::Prefix p(net::IpAddress::v4(slice_base_ +
                                   (static_cast<std::uint32_t>(slice_index_) << 12)),
                20);
  ++slice_index_;
  return p;
}

net::Prefix PrefixAllocator::next_v6_32() {
  // 2a0x:yyyy::/32 — global unicast, clear of documentation space. The
  // counter must land in the top 32 bits or the /32 mask would erase it.
  const std::uint64_t group1 = 0x2a00ULL + (v6_counter_ >> 16);
  const std::uint64_t group2 = v6_counter_ & 0xFFFF;
  ++v6_counter_;
  return net::Prefix(net::IpAddress::v6((group1 << 48) | (group2 << 32), 0), 32);
}

const SynthAs* Topology::find(Asn asn) const {
  auto it = by_asn_.find(asn);
  return it == by_asn_.end() ? nullptr : &ases_[it->second];
}

std::vector<Asn> Topology::tier_members(Tier tier) const {
  std::vector<Asn> out;
  for (const auto& as : ases_) {
    if (as.tier == tier) out.push_back(as.asn);
  }
  return out;
}

std::size_t Topology::prefix_count() const noexcept {
  std::size_t n = 0;
  for (const auto& as : ases_) n += as.prefixes.size();
  return n;
}

Topology Topology::generate(const SynthConfig& raw_config) {
  const SynthConfig config = raw_config.scaled();
  std::mt19937 rng(config.seed);
  Topology topo;

  auto add_as = [&](Asn asn, Tier tier) -> SynthAs& {
    topo.by_asn_.emplace(asn, topo.ases_.size());
    topo.ases_.push_back(SynthAs{asn, tier, {}, {}, {}, {}});
    return topo.ases_.back();
  };
  auto as_of = [&](Asn asn) -> SynthAs& { return topo.ases_[topo.by_asn_.at(asn)]; };

  auto link_p2c = [&](Asn provider, Asn customer) {
    auto& p = as_of(provider);
    auto& c = as_of(customer);
    if (std::find(p.customers.begin(), p.customers.end(), customer) != p.customers.end()) {
      return;
    }
    p.customers.push_back(customer);
    c.providers.push_back(provider);
    topo.relations_.add_provider_customer(provider, customer);
  };
  auto link_p2p = [&](Asn a, Asn b) {
    auto& x = as_of(a);
    if (std::find(x.peers.begin(), x.peers.end(), b) != x.peers.end()) return;
    x.peers.push_back(b);
    as_of(b).peers.push_back(a);
    topo.relations_.add_peer_peer(a, b);
  };

  // --- ASN blocks per tier ---
  std::vector<Asn> tier1, tier2, tier3, stubs;
  for (std::size_t i = 0; i < config.tier1_count; ++i) tier1.push_back(100 + Asn(i));
  for (std::size_t i = 0; i < config.tier2_count; ++i) tier2.push_back(1000 + Asn(i));
  for (std::size_t i = 0; i < config.tier3_count; ++i) tier3.push_back(5000 + Asn(i));
  for (std::size_t i = 0; i < config.stub_count; ++i) stubs.push_back(20000 + Asn(i));

  for (Asn asn : tier1) add_as(asn, Tier::kTier1);
  for (Asn asn : tier2) add_as(asn, Tier::kTier2);
  for (Asn asn : tier3) add_as(asn, Tier::kTier3);
  for (Asn asn : stubs) add_as(asn, Tier::kStub);

  // --- wiring ---
  // Tier-1: full peering clique.
  for (std::size_t i = 0; i < tier1.size(); ++i) {
    for (std::size_t j = i + 1; j < tier1.size(); ++j) link_p2p(tier1[i], tier1[j]);
  }
  topo.relations_.set_clique(tier1);

  auto pick_distinct_providers = [&](const std::vector<Asn>& pool, std::size_t lo,
                                     std::size_t hi) {
    // Clamp to the pool: tiny scaled topologies may not have `lo` distinct
    // candidates.
    std::size_t want = pick(rng, std::min(lo, pool.size()), std::min(hi, pool.size()));
    std::vector<Asn> chosen;
    while (chosen.size() < want) {
      Asn candidate = pool[pick(rng, 0, pool.size() - 1)];
      if (std::find(chosen.begin(), chosen.end(), candidate) == chosen.end()) {
        chosen.push_back(candidate);
      }
    }
    return chosen;
  };

  for (Asn asn : tier2) {
    for (Asn p : pick_distinct_providers(tier1, config.tier2_providers_min,
                                         config.tier2_providers_max)) {
      link_p2c(p, asn);
    }
  }
  for (std::size_t i = 0; i < tier2.size(); ++i) {
    for (std::size_t j = i + 1; j < tier2.size(); ++j) {
      if (chance(rng, config.tier2_peer_density)) link_p2p(tier2[i], tier2[j]);
    }
  }
  for (Asn asn : tier3) {
    for (Asn p : pick_distinct_providers(tier2, config.tier3_providers_min,
                                         config.tier3_providers_max)) {
      link_p2c(p, asn);
    }
  }
  for (std::size_t i = 0; i < tier3.size(); ++i) {
    for (std::size_t j = i + 1; j < tier3.size(); ++j) {
      if (chance(rng, config.tier3_peer_density)) link_p2p(tier3[i], tier3[j]);
    }
  }
  // Cross-tier transit peering (regional networks at exchanges).
  for (Asn t2 : tier2) {
    for (Asn t3 : tier3) {
      if (chance(rng, config.tier23_peer_density) &&
          topo.relations_.between(t2, t3) == relations::Relationship::kNone) {
        link_p2p(t2, t3);
      }
    }
  }
  // Stubs attach to tier2 or tier3 providers.
  std::vector<Asn> transit_pool = tier2;
  transit_pool.insert(transit_pool.end(), tier3.begin(), tier3.end());
  for (Asn asn : stubs) {
    for (Asn p : pick_distinct_providers(transit_pool, config.stub_providers_min,
                                         config.stub_providers_max)) {
      link_p2c(p, asn);
    }
  }

  // Lateral IXP-style peering among tier3 + stub networks: abundant on the
  // real Internet, mostly undocumented in the RPSL — the raw material for
  // the paper's dominant unverified case.
  std::vector<Asn> edge_pool = tier3;
  edge_pool.insert(edge_pool.end(), stubs.begin(), stubs.end());
  if (edge_pool.size() >= 2) {
    const auto edge_links = static_cast<std::size_t>(config.edge_peer_links_factor *
                                                     double(edge_pool.size()));
    for (std::size_t i = 0; i < edge_links; ++i) {
      Asn a = edge_pool[pick(rng, 0, edge_pool.size() - 1)];
      Asn b = edge_pool[pick(rng, 0, edge_pool.size() - 1)];
      if (a == b) continue;
      // Keep the graph valley-free: never peer a provider with its customer.
      if (topo.relations_.between(a, b) != relations::Relationship::kNone) continue;
      link_p2p(a, b);
    }
  }

  // --- addressing ---
  PrefixAllocator alloc;
  for (auto& as : topo.ases_) {
    const bool big = as.tier != Tier::kStub;
    as.prefixes.push_back(big ? alloc.next_v4_16() : alloc.next_v4_20());
    if (chance(rng, config.extra_prefix_probability)) {
      as.prefixes.push_back(big ? alloc.next_v4_16() : alloc.next_v4_20());
      if (big && chance(rng, config.extra_prefix_probability / 2)) {
        as.prefixes.push_back(alloc.next_v4_16());
      }
    }
    if (chance(rng, config.v6_adoption)) as.prefixes.push_back(alloc.next_v6_32());
  }

  // Deterministic neighbor ordering simplifies tests and tie-breaking.
  for (auto& as : topo.ases_) {
    std::sort(as.providers.begin(), as.providers.end());
    std::sort(as.customers.begin(), as.customers.end());
    std::sort(as.peers.begin(), as.peers.end());
  }
  return topo;
}

}  // namespace rpslyzer::synth
