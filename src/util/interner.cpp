#include "rpslyzer/util/interner.hpp"

#include <cstring>

#include "rpslyzer/util/rand.hpp"
#include "rpslyzer/util/strings.hpp"

namespace rpslyzer::util {

namespace {

constexpr std::size_t kInitialCapacity = 64;

std::uint64_t load_word(const char* p, std::size_t n) noexcept {
  std::uint64_t w = 0;
  std::memcpy(&w, p, n);
  return w;
}

}  // namespace

std::uint64_t symbol_hash_bytes(std::string_view s, bool fold) noexcept {
  // Folding ORs 0x20 into every byte: ASCII letters lowercase, everything
  // else may alias onto a different byte — but aliasing only ever merges
  // hash values, so case-insensitively equal strings still hash equal,
  // which is the one property the fold index needs.
  const std::uint64_t fold_mask = fold ? 0x2020202020202020ULL : 0;
  std::uint64_t h = kSplitMix64Gamma ^ (static_cast<std::uint64_t>(s.size()) *
                                        0xbf58476d1ce4e5b9ULL);
  const char* p = s.data();
  std::size_t n = s.size();
  while (n >= 8) {
    h = mix64(h ^ (load_word(p, 8) | fold_mask)) + kSplitMix64Gamma;
    p += 8;
    n -= 8;
  }
  if (n > 0) h = mix64(h ^ (load_word(p, n) | fold_mask)) + kSplitMix64Gamma;
  return mix64(h);
}

SymbolTable::CellArray::CellArray(std::size_t capacity)
    : cells(new std::atomic<std::uint64_t>[capacity]), mask(capacity - 1) {
  for (std::size_t i = 0; i < capacity; ++i) {
    cells[i].store(0, std::memory_order_relaxed);
  }
}

SymbolTable::SymbolTable(Mode mode, HashFn hash)
    : mode_(mode),
      hash_(hash),
      blocks_(new std::atomic<Entry*>[kMaxBlocks]) {
  for (std::size_t i = 0; i < kMaxBlocks; ++i) {
    blocks_[i].store(nullptr, std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  grow_locked(table_, mode_ == Mode::kCaseFold, kInitialCapacity);
  if (mode_ == Mode::kExact) grow_locked(fold_index_, true, kInitialCapacity);
  // Exact mode reserves id 0 for the empty spelling so a default Symbol{}
  // views "" — mirroring a default std::string. Fold mode must keep ids
  // dense from the first real intern (the persisted snapshot symbol
  // section equates id with position), so it starts truly empty.
  if (mode_ == Mode::kExact) {
    Entry* block = new Entry[kBlockSize]();
    owned_blocks_.push_back(block);
    blocks_[0].store(block, std::memory_order_release);
    block[0] = Entry{"", 0, 0};
    insert_cell(table_, this->hash("", false), 0);
    ++table_used_;
    insert_cell(fold_index_, this->hash("", true), 0);
    ++fold_used_;
    count_.store(1, std::memory_order_release);
  }
}

SymbolTable::SymbolTable(const SymbolTable& other)
    : SymbolTable(other.mode_, other.hash_) {
  copy_from(other);
}

SymbolTable& SymbolTable::operator=(const SymbolTable& other) {
  if (this == &other) return *this;
  SymbolTable fresh(other.mode_, other.hash_);
  fresh.copy_from(other);
  // Swap guts under our lock; `fresh` was never visible to other threads.
  std::lock_guard<std::mutex> lock(mutex_);
  mode_ = fresh.mode_;
  hash_ = fresh.hash_;
  retired_.swap(fresh.retired_);
  table_.store(fresh.table_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
  fold_index_.store(fresh.fold_index_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  blocks_.swap(fresh.blocks_);
  owned_blocks_.swap(fresh.owned_blocks_);
  count_.store(fresh.count_.load(std::memory_order_relaxed),
               std::memory_order_release);
  table_used_ = fresh.table_used_;
  fold_used_ = fresh.fold_used_;
  pool_ = std::move(fresh.pool_);
  pool_string_bytes_ = fresh.pool_string_bytes_;
  return *this;
}

SymbolTable::~SymbolTable() {
  for (Entry* block : owned_blocks_) delete[] block;
}

void SymbolTable::copy_from(const SymbolTable& other) {
  const std::uint32_t n = other.size();
  reserve(n);
  for (std::uint32_t id = 0; id < n; ++id) {
    // Re-interning in id order reproduces ids and canon assignments
    // verbatim (first case-insensitive spelling wins by order).
    intern(other.view(Symbol{id}));
  }
}

const SymbolTable::Entry* SymbolTable::entry(std::uint32_t id) const noexcept {
  const std::size_t block = id >> kBlockShift;
  if (block >= kMaxBlocks) return nullptr;
  const Entry* base = blocks_[block].load(std::memory_order_acquire);
  if (base == nullptr) return nullptr;
  return base + (id & (kBlockSize - 1));
}

std::uint64_t SymbolTable::hash(std::string_view s, bool fold) const noexcept {
  return hash_ != nullptr ? hash_(s, fold) : symbol_hash_bytes(s, fold);
}

bool SymbolTable::equal(std::string_view a, std::string_view b,
                        bool fold) const noexcept {
  if (fold) return iequals(a, b);
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size()) == 0);
}

std::optional<std::uint32_t> SymbolTable::probe(
    const std::atomic<CellArray*>& index, std::string_view s,
    bool fold) const noexcept {
  const CellArray* array = index.load(std::memory_order_acquire);
  if (array == nullptr) return std::nullopt;
  const std::uint64_t h = hash(s, fold);
  const std::uint64_t tag = h >> 32;
  std::size_t i = static_cast<std::size_t>(h) & array->mask;
  while (true) {
    const std::uint64_t cell = array->cells[i].load(std::memory_order_acquire);
    if (cell == 0) return std::nullopt;
    if ((cell >> 32) == tag) {
      const std::uint32_t id = static_cast<std::uint32_t>(cell) - 1;
      const Entry* e = entry(id);
      if (e != nullptr && equal({e->data, e->length}, s, fold)) return id;
    }
    i = (i + 1) & array->mask;
  }
}

void SymbolTable::insert_cell(std::atomic<CellArray*>& index, std::uint64_t h,
                              std::uint32_t id) {
  CellArray* array = index.load(std::memory_order_relaxed);
  const std::uint64_t tag = h >> 32;
  std::size_t i = static_cast<std::size_t>(h) & array->mask;
  while (array->cells[i].load(std::memory_order_relaxed) != 0) {
    i = (i + 1) & array->mask;
  }
  array->cells[i].store((tag << 32) | (id + 1), std::memory_order_release);
}

void SymbolTable::grow_locked(std::atomic<CellArray*>& index, bool fold,
                              std::size_t min_capacity) {
  std::size_t capacity = kInitialCapacity;
  while (capacity < min_capacity) capacity *= 2;
  const CellArray* old = index.load(std::memory_order_relaxed);
  if (old != nullptr && old->mask + 1 >= capacity) return;
  auto fresh = std::make_unique<CellArray>(capacity);
  if (old != nullptr) {
    for (std::size_t i = 0; i <= old->mask; ++i) {
      const std::uint64_t cell = old->cells[i].load(std::memory_order_relaxed);
      if (cell == 0) continue;
      const std::uint32_t id = static_cast<std::uint32_t>(cell) - 1;
      const Entry* e = entry(id);
      const std::uint64_t h = hash({e->data, e->length}, fold);
      std::size_t j = static_cast<std::size_t>(h) & fresh->mask;
      while (fresh->cells[j].load(std::memory_order_relaxed) != 0) {
        j = (j + 1) & fresh->mask;
      }
      fresh->cells[j].store(cell, std::memory_order_relaxed);
    }
  }
  CellArray* published = fresh.get();
  retired_.push_back(std::move(fresh));
  index.store(published, std::memory_order_release);
}

Symbol SymbolTable::intern(std::string_view s) {
  const bool fold_native = mode_ == Mode::kCaseFold;
  if (auto hit = probe(table_, s, fold_native)) return Symbol{*hit};

  std::lock_guard<std::mutex> lock(mutex_);
  if (auto hit = probe(table_, s, fold_native)) return Symbol{*hit};

  const std::uint32_t id = count_.load(std::memory_order_relaxed);
  const std::size_t block = id >> kBlockShift;
  if (block >= kMaxBlocks) return Symbol{0};  // 2^27 symbols: table is full.
  Entry* base = blocks_[block].load(std::memory_order_relaxed);
  if (base == nullptr) {
    base = new Entry[kBlockSize]();
    owned_blocks_.push_back(base);
    blocks_[block].store(base, std::memory_order_release);
  }

  const std::string_view stored = pool_.copy(s);
  pool_string_bytes_ += stored.size();
  Entry& e = base[id & (kBlockSize - 1)];
  e.data = stored.empty() ? "" : stored.data();
  e.length = static_cast<std::uint32_t>(stored.size());

  if (mode_ == Mode::kExact) {
    // Canon = first spelling of this case-insensitive class; the fold
    // index maps the class to that representative.
    if (auto klass = probe(fold_index_, s, true)) {
      e.canon = *klass;
    } else {
      e.canon = id;
      CellArray* fold_array = fold_index_.load(std::memory_order_relaxed);
      if ((fold_used_ + 1) * 10 >= (fold_array->mask + 1) * 7) {
        grow_locked(fold_index_, true, (fold_array->mask + 1) * 2);
      }
      insert_cell(fold_index_, hash(s, true), id);
      ++fold_used_;
    }
  } else {
    e.canon = id;
  }

  CellArray* array = table_.load(std::memory_order_relaxed);
  if ((table_used_ + 1) * 10 >= (array->mask + 1) * 7) {
    grow_locked(table_, fold_native, (array->mask + 1) * 2);
  }
  insert_cell(table_, hash(s, fold_native), id);
  ++table_used_;
  count_.store(id + 1, std::memory_order_release);
  return Symbol{id};
}

std::optional<Symbol> SymbolTable::find(std::string_view s) const noexcept {
  if (auto hit = probe(table_, s, mode_ == Mode::kCaseFold)) return Symbol{*hit};
  return std::nullopt;
}

std::optional<Symbol> SymbolTable::find_canon(
    std::string_view s) const noexcept {
  if (mode_ == Mode::kCaseFold) return find(s);
  if (auto hit = probe(fold_index_, s, true)) return Symbol{*hit};
  return std::nullopt;
}

std::string_view SymbolTable::view(Symbol s) const noexcept {
  if (s.id >= size()) return {};
  const Entry* e = entry(s.id);
  if (e == nullptr || e->data == nullptr) return {};
  return {e->data, e->length};
}

Symbol SymbolTable::canon(Symbol s) const noexcept {
  if (s.id >= size()) return s;
  const Entry* e = entry(s.id);
  return e == nullptr ? s : Symbol{e->canon};
}

std::size_t SymbolTable::pool_bytes() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return pool_string_bytes_;
}

void SymbolTable::reserve(std::size_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Size for n entries at < 70% load.
  const std::size_t want = (n * 10) / 7 + 1;
  grow_locked(table_, mode_ == Mode::kCaseFold, want);
  if (mode_ == Mode::kExact) grow_locked(fold_index_, true, want);
}

SymbolTable& global_symbols() {
  // Leaked on purpose: ir::Symbol views escape into objects with static
  // storage duration (tests, caches), so the table must outlive everything.
  static SymbolTable* table = new SymbolTable(SymbolTable::Mode::kExact);
  return *table;
}

}  // namespace rpslyzer::util
