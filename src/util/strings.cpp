#include "rpslyzer/util/strings.hpp"

#include <limits>

namespace rpslyzer::util {

std::string lower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) out.push_back(to_lower(c));
  return out;
}

std::string upper(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) out.push_back(to_upper(c));
  return out;
}

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (to_lower(a[i]) != to_lower(b[i])) return false;
  }
  return true;
}

bool istarts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && iequals(s.substr(0, prefix.size()), prefix);
}

bool iends_with(std::string_view s, std::string_view suffix) noexcept {
  return s.size() >= suffix.size() && iequals(s.substr(s.size() - suffix.size()), suffix);
}

std::string_view trim_left(std::string_view s) noexcept {
  std::size_t i = 0;
  while (i < s.size() && is_space(s[i])) ++i;
  return s.substr(i);
}

std::string_view trim_right(std::string_view s) noexcept {
  std::size_t n = s.size();
  while (n > 0 && is_space(s[n - 1])) --n;
  return s.substr(0, n);
}

std::string_view trim(std::string_view s) noexcept { return trim_right(trim_left(s)); }

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_space(s[i])) ++i;
    std::size_t start = i;
    while (i < s.size() && !is_space(s[i])) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

std::optional<std::uint32_t> parse_u32(std::string_view s) noexcept {
  if (s.empty() || s.size() > 10) return std::nullopt;
  std::uint64_t value = 0;
  for (char c : s) {
    if (!is_digit(c)) return std::nullopt;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  if (value > std::numeric_limits<std::uint32_t>::max()) return std::nullopt;
  return static_cast<std::uint32_t>(value);
}

std::optional<std::uint8_t> parse_u8(std::string_view s) noexcept {
  auto v = parse_u32(s);
  if (!v || *v > std::numeric_limits<std::uint8_t>::max()) return std::nullopt;
  return static_cast<std::uint8_t>(*v);
}

std::size_t IHash::operator()(std::string_view s) const noexcept {
  // FNV-1a over lowercased bytes.
  std::size_t h = 1469598103934665603ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(to_lower(c));
    h *= 1099511628211ULL;
  }
  return h;
}

bool ILess::operator()(std::string_view a, std::string_view b) const noexcept {
  const std::size_t n = a.size() < b.size() ? a.size() : b.size();
  for (std::size_t i = 0; i < n; ++i) {
    const char la = to_lower(a[i]);
    const char lb = to_lower(b[i]);
    if (la != lb) return la < lb;
  }
  return a.size() < b.size();
}

}  // namespace rpslyzer::util
