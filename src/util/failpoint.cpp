#include "rpslyzer/util/failpoint.hpp"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "rpslyzer/util/strings.hpp"

namespace rpslyzer::util::failpoint {

namespace detail {
std::atomic<std::uint32_t> armed_sites{0};
}  // namespace detail

namespace {
std::atomic<FireHook> fire_hook{nullptr};
}  // namespace

void set_fire_hook(FireHook hook) noexcept {
  fire_hook.store(hook, std::memory_order_relaxed);
}

namespace {

struct Action {
  Hit::Kind kind = Hit::Kind::kNone;
  std::string message;
  std::chrono::milliseconds delay{0};
  std::size_t truncate_at = 0;
  // SIZE_MAX = unlimited; otherwise decremented per firing, 0 disarms.
  std::size_t remaining = SIZE_MAX;

  std::string describe() const {
    std::string out;
    if (remaining != SIZE_MAX) out += std::to_string(remaining) + "*";
    switch (kind) {
      case Hit::Kind::kError:
        out += message.empty() ? "error" : "error(" + message + ")";
        break;
      case Hit::Kind::kDelay:
        out += "delay(" + std::to_string(delay.count()) + "ms)";
        break;
      case Hit::Kind::kTruncate:
        out += "truncate(" + std::to_string(truncate_at) + ")";
        break;
      case Hit::Kind::kNone:
        out += "off";
        break;
    }
    return out;
  }
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, Action> sites;
  std::unordered_map<std::string, std::uint64_t> hits;
};

Registry& registry() {
  static Registry* instance = new Registry();  // leaked: usable at any exit stage
  return *instance;
}

bool parse_action(std::string_view spec, Action* out, std::string* error) {
  Action action;
  spec = trim(spec);
  // Optional "N*" firing budget.
  const std::size_t star = spec.find('*');
  if (star != std::string_view::npos) {
    const auto n = parse_u32(trim(spec.substr(0, star)));
    if (!n) {
      if (error) *error = "bad count in failpoint action: " + std::string(spec);
      return false;
    }
    action.remaining = *n;
    spec = trim(spec.substr(star + 1));
  }
  std::string_view name = spec;
  std::string_view arg;
  const std::size_t paren = spec.find('(');
  if (paren != std::string_view::npos) {
    if (spec.back() != ')') {
      if (error) *error = "unbalanced parens in failpoint action: " + std::string(spec);
      return false;
    }
    name = trim(spec.substr(0, paren));
    arg = trim(spec.substr(paren + 1, spec.size() - paren - 2));
  }
  if (iequals(name, "off") || name.empty()) {
    action.kind = Hit::Kind::kNone;
  } else if (iequals(name, "error")) {
    action.kind = Hit::Kind::kError;
    action.message = std::string(arg.empty() ? "injected fault" : arg);
  } else if (iequals(name, "delay")) {
    action.kind = Hit::Kind::kDelay;
    std::string_view digits = arg;
    std::uint64_t scale = 1;  // bare numbers are milliseconds
    if (iends_with(digits, "ms")) {
      digits.remove_suffix(2);
    } else if (iends_with(digits, "s")) {
      digits.remove_suffix(1);
      scale = 1000;
    }
    const auto n = parse_u32(trim(digits));
    if (!n) {
      if (error) *error = "bad delay in failpoint action: " + std::string(spec);
      return false;
    }
    action.delay = std::chrono::milliseconds(static_cast<std::uint64_t>(*n) * scale);
  } else if (iequals(name, "truncate")) {
    const auto n = parse_u32(arg);
    if (!n) {
      if (error) *error = "bad truncate size in failpoint action: " + std::string(spec);
      return false;
    }
    action.kind = Hit::Kind::kTruncate;
    action.truncate_at = *n;
  } else {
    if (error) *error = "unknown failpoint action: " + std::string(spec);
    return false;
  }
  if (action.remaining == 0) action.kind = Hit::Kind::kNone;  // "0*x" = off
  *out = action;
  return true;
}

// One-time environment arming. Runs on first registry touch from any public
// entry point, so binaries need no explicit init call; a malformed env spec
// is reported once on stderr rather than silently ignored.
std::once_flag env_once;

void arm_from_env_locked(Registry& reg) {
  const char* env = std::getenv("RPSLYZER_FAILPOINTS");
  if (env == nullptr || *env == '\0') return;
  for (std::string_view clause : split(env, ';')) {
    clause = trim(clause);
    if (clause.empty()) continue;
    const std::size_t eq = clause.find('=');
    std::string parse_error;
    Action action;
    if (eq == std::string_view::npos ||
        !parse_action(clause.substr(eq + 1), &action, &parse_error)) {
      std::fprintf(stderr, "RPSLYZER_FAILPOINTS: ignoring %.*s%s%s\n",
                   static_cast<int>(clause.size()), clause.data(),
                   parse_error.empty() ? "" : ": ", parse_error.c_str());
      continue;
    }
    const std::string site(trim(clause.substr(0, eq)));
    if (action.kind == Hit::Kind::kNone) continue;
    if (reg.sites.emplace(site, action).second) {
      detail::armed_sites.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

Registry& env_armed_registry() {
  Registry& reg = registry();
  std::call_once(env_once, [&reg] {
    std::lock_guard<std::mutex> lock(reg.mu);
    arm_from_env_locked(reg);
  });
  return reg;
}

// Arm the environment spec during static initialization: the any_armed()
// fast path must see env-armed sites even in processes that never call
// set()/configure() — otherwise armed_sites stays 0 and hit() short-circuits
// before anything could have read RPSLYZER_FAILPOINTS.
[[maybe_unused]] const bool env_armed_at_startup = (env_armed_registry(), true);

}  // namespace

namespace detail {

Hit evaluate_slow(std::string_view site) {
  Registry& reg = env_armed_registry();
  Hit out;
  {
    std::lock_guard<std::mutex> lock(reg.mu);
    auto found = reg.sites.find(std::string(site));
    if (found == reg.sites.end()) return {};
    Action& action = found->second;
    out.kind = action.kind;
    out.message = action.message;
    out.delay = action.delay;
    out.truncate_at = action.truncate_at;
    ++reg.hits[found->first];
    if (action.remaining != SIZE_MAX && --action.remaining == 0) {
      reg.sites.erase(found);
      armed_sites.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  // Notify before the delay sleep so observers see the firing when it
  // happens, not after an injected stall; the hook runs outside the
  // registry lock and may take its own (logging, metrics).
  if (out.kind != Hit::Kind::kNone) {
    if (FireHook hook = fire_hook.load(std::memory_order_relaxed)) hook(site, out);
  }
  // Sleep outside the registry lock so a delay on one site never stalls
  // evaluation (or arming) of another.
  if (out.kind == Hit::Kind::kDelay && out.delay.count() > 0) {
    std::this_thread::sleep_for(out.delay);
  }
  return out;
}

}  // namespace detail

bool set(std::string_view site, std::string_view action_spec, std::string* error) {
  Action action;
  if (!parse_action(action_spec, &action, error)) return false;
  Registry& reg = env_armed_registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  const std::string key(trim(site));
  auto found = reg.sites.find(key);
  if (action.kind == Hit::Kind::kNone) {
    if (found != reg.sites.end()) {
      reg.sites.erase(found);
      detail::armed_sites.fetch_sub(1, std::memory_order_relaxed);
    }
    return true;
  }
  if (found == reg.sites.end()) {
    reg.sites.emplace(key, std::move(action));
    detail::armed_sites.fetch_add(1, std::memory_order_relaxed);
  } else {
    found->second = std::move(action);
  }
  return true;
}

void clear(std::string_view site) { set(site, "off"); }

void clear_all() {
  Registry& reg = env_armed_registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  if (!reg.sites.empty()) {
    detail::armed_sites.fetch_sub(static_cast<std::uint32_t>(reg.sites.size()),
                                  std::memory_order_relaxed);
  }
  reg.sites.clear();
  reg.hits.clear();
}

bool configure(std::string_view spec, std::string* error) {
  // Two-phase: parse every clause first so a bad one changes nothing.
  std::vector<std::pair<std::string, Action>> parsed;
  for (std::string_view clause : split(spec, ';')) {
    clause = trim(clause);
    if (clause.empty()) continue;
    const std::size_t eq = clause.find('=');
    if (eq == std::string_view::npos) {
      if (error) *error = "missing '=' in failpoint clause: " + std::string(clause);
      return false;
    }
    Action action;
    if (!parse_action(clause.substr(eq + 1), &action, error)) return false;
    parsed.emplace_back(std::string(trim(clause.substr(0, eq))), std::move(action));
  }
  Registry& reg = env_armed_registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (auto& [site, action] : parsed) {
    auto found = reg.sites.find(site);
    if (action.kind == Hit::Kind::kNone) {
      if (found != reg.sites.end()) {
        reg.sites.erase(found);
        detail::armed_sites.fetch_sub(1, std::memory_order_relaxed);
      }
    } else if (found == reg.sites.end()) {
      reg.sites.emplace(std::move(site), std::move(action));
      detail::armed_sites.fetch_add(1, std::memory_order_relaxed);
    } else {
      found->second = std::move(action);
    }
  }
  return true;
}

std::uint64_t hit_count(std::string_view site) {
  Registry& reg = env_armed_registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto found = reg.hits.find(std::string(site));
  return found == reg.hits.end() ? 0 : found->second;
}

std::vector<std::pair<std::string, std::uint64_t>> hit_counts() {
  Registry& reg = env_armed_registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(reg.hits.size());
  for (const auto& [site, count] : reg.hits) out.emplace_back(site, count);
  return out;
}

std::vector<std::pair<std::string, std::string>> active() {
  Registry& reg = env_armed_registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(reg.sites.size());
  for (const auto& [site, action] : reg.sites) {
    out.emplace_back(site, action.describe());
  }
  return out;
}

}  // namespace rpslyzer::util::failpoint
