#pragma once
// String utilities shared across RPSLyzer modules.
//
// RPSL is case-insensitive for keywords and object names (RFC 2622 §2), so
// most helpers here come in case-insensitive flavours. All functions are
// ASCII-only on purpose: RPSL attribute values are ASCII per the RFC.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace rpslyzer::util {

/// ASCII-lowercase a single character; non-letters pass through.
constexpr char to_lower(char c) noexcept {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

/// ASCII-uppercase a single character; non-letters pass through.
constexpr char to_upper(char c) noexcept {
  return (c >= 'a' && c <= 'z') ? static_cast<char>(c - 'a' + 'A') : c;
}

constexpr bool is_space(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' || c == '\v';
}

constexpr bool is_digit(char c) noexcept { return c >= '0' && c <= '9'; }

constexpr bool is_alpha(char c) noexcept {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}

constexpr bool is_alnum(char c) noexcept { return is_alpha(c) || is_digit(c); }

/// Returns a lowercased copy of `s`.
std::string lower(std::string_view s);

/// Returns an uppercased copy of `s`.
std::string upper(std::string_view s);

/// Case-insensitive equality of two ASCII strings.
bool iequals(std::string_view a, std::string_view b) noexcept;

/// Case-insensitive "does `s` start with `prefix`".
bool istarts_with(std::string_view s, std::string_view prefix) noexcept;

/// Case-insensitive "does `s` end with `suffix`".
bool iends_with(std::string_view s, std::string_view suffix) noexcept;

/// Strip leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s) noexcept;

/// Strip leading ASCII whitespace.
std::string_view trim_left(std::string_view s) noexcept;

/// Strip trailing ASCII whitespace.
std::string_view trim_right(std::string_view s) noexcept;

/// Split on a single character; empty fields are kept.
std::vector<std::string_view> split(std::string_view s, char sep);

/// Split on runs of ASCII whitespace; empty fields are dropped.
std::vector<std::string_view> split_ws(std::string_view s);

/// Parse a decimal unsigned 32-bit integer; rejects signs, empty input,
/// overflow and trailing garbage.
std::optional<std::uint32_t> parse_u32(std::string_view s) noexcept;

/// Parse a decimal unsigned 8-bit integer (used for prefix lengths).
std::optional<std::uint8_t> parse_u8(std::string_view s) noexcept;

/// Case-insensitive ASCII hash, usable with unordered containers.
struct IHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const noexcept;
};

/// Case-insensitive ASCII equality, usable with unordered containers.
struct IEqual {
  using is_transparent = void;
  bool operator()(std::string_view a, std::string_view b) const noexcept {
    return iequals(a, b);
  }
};

/// Case-insensitive less-than, usable with ordered containers.
struct ILess {
  using is_transparent = void;
  bool operator()(std::string_view a, std::string_view b) const noexcept;
};

/// Helper for std::visit with lambda overload sets.
template <class... Ts>
struct overloaded : Ts... {
  using Ts::operator()...;
};
template <class... Ts>
overloaded(Ts...) -> overloaded<Ts...>;

}  // namespace rpslyzer::util
