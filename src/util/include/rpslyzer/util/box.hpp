#pragma once
// Box<T>: heap-allocated T with value semantics (deep copy, deep equality).
// Used to break recursion in the policy ASTs (Filter contains Filter, Entry
// contains Entry) while keeping the whole IR copyable and comparable.

#include <memory>
#include <utility>

namespace rpslyzer::util {

template <typename T>
class Box {
 public:
  Box() : ptr_(std::make_unique<T>()) {}
  Box(T value) : ptr_(std::make_unique<T>(std::move(value))) {}

  Box(const Box& other) : ptr_(std::make_unique<T>(*other.ptr_)) {}
  Box& operator=(const Box& other) {
    if (this != &other) *ptr_ = *other.ptr_;
    return *this;
  }
  Box(Box&&) noexcept = default;
  Box& operator=(Box&&) noexcept = default;
  ~Box() = default;

  T& operator*() noexcept { return *ptr_; }
  const T& operator*() const noexcept { return *ptr_; }
  T* operator->() noexcept { return ptr_.get(); }
  const T* operator->() const noexcept { return ptr_.get(); }

  friend bool operator==(const Box& a, const Box& b) { return *a.ptr_ == *b.ptr_; }

 private:
  std::unique_ptr<T> ptr_;
};

}  // namespace rpslyzer::util
