#pragma once
// Flat string interner: string_view → dense u32 Symbol with span-pooled
// backing storage. Two indexes back each table — an open-addressing cell
// array of (hash tag, id) packed into one atomic u64 per cell, and a
// stable two-level entry block array (pointers into an arena-owned byte
// pool), so `view()` and `canon()` never move memory and never lock.
//
// Two modes:
//  * kExact — one id per distinct byte spelling, plus a second fold index
//    that maps every case-insensitive class to its first-seen spelling's
//    id (`canon`). This is the process-wide table behind ir::Symbol: exact
//    ids preserve `operator==`-on-bytes and JSON/wire byte-identity, canon
//    ids give O(1) case-insensitive comparison (RPSL names are
//    case-insensitive per RFC 2622 §2).
//  * kCaseFold — one id per case-insensitive class, first spelling stored,
//    ids dense from 0 in intern order. This reproduces the compile-time
//    snapshot interning semantics (and its persisted symbol section
//    layout) exactly.
//
// Concurrency: intern() takes one mutex on the miss path only; find(),
// view(), canon() and size() are lock-free reads (acquire loads pair with
// the release publication of each cell). A lock-free find that races a
// concurrent intern of the *same* string may miss and report nullopt —
// callers that need an authoritative miss must not race writers. Entry
// data reached through a published cell, or through a Symbol handed across
// threads with ordinary synchronization (e.g. a thread join), is safe to
// read forever: entries and pooled bytes are never moved or freed before
// the table dies.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string_view>
#include <vector>

#include "rpslyzer/util/arena.hpp"

namespace rpslyzer::util {

/// Interned string handle: a dense table-assigned id. Equality is id
/// equality, which for an exact-mode table is byte equality of spellings.
/// Deliberately no operator< — id order is intern order, not string order.
struct Symbol {
  std::uint32_t id = 0;
  friend constexpr bool operator==(Symbol, Symbol) noexcept = default;
};

/// Default byte hash (splitmix64-mixed 8-byte chunks). `fold` OR-s 0x20
/// into every byte so case-insensitively-equal strings hash identically
/// (non-letter aliasing under |0x20 only adds collisions, never misses).
std::uint64_t symbol_hash_bytes(std::string_view s, bool fold) noexcept;

class SymbolTable {
 public:
  enum class Mode : std::uint8_t { kExact, kCaseFold };

  /// Tests inject a degenerate `hash` to force collision pile-ups;
  /// production callers leave it null for symbol_hash_bytes.
  using HashFn = std::uint64_t (*)(std::string_view, bool fold) noexcept;

  explicit SymbolTable(Mode mode = Mode::kExact, HashFn hash = nullptr);
  SymbolTable(const SymbolTable& other);
  SymbolTable& operator=(const SymbolTable& other);
  SymbolTable(SymbolTable&&) = delete;
  ~SymbolTable();

  /// Intern `s`, returning its stable Symbol. kExact: id per byte
  /// spelling. kCaseFold: id per case-insensitive class (first spelling
  /// kept). Thread-safe.
  Symbol intern(std::string_view s);

  /// Mode-native lookup without inserting: byte-exact in kExact,
  /// case-insensitive in kCaseFold. Lock-free.
  std::optional<Symbol> find(std::string_view s) const noexcept;

  /// Case-insensitive lookup returning the canonical (first-seen) class
  /// representative. In kCaseFold mode identical to find(). Lock-free.
  std::optional<Symbol> find_canon(std::string_view s) const noexcept;

  /// The interned spelling. Lock-free; out-of-range symbols view "".
  std::string_view view(Symbol s) const noexcept;

  /// Canonical representative of `s`'s case-insensitive class (kExact) or
  /// `s` itself (kCaseFold). canon(a) == canon(b) ⇔ iequals(view(a),
  /// view(b)). Lock-free.
  Symbol canon(Symbol s) const noexcept;

  std::uint32_t size() const noexcept {
    return count_.load(std::memory_order_acquire);
  }

  /// Bytes held in the backing pool (spellings only, not index cells).
  std::size_t pool_bytes() const noexcept;

  /// Pre-size the cell arrays for `n` symbols so a rebuild that interns a
  /// known-size generation never rehashes mid-build.
  void reserve(std::size_t n);

  Mode mode() const noexcept { return mode_; }

 private:
  // One atomic u64 per cell: (upper 32 bits of hash) << 32 | (id + 1).
  // Zero means empty. Arrays are retired, never freed, until destruction,
  // so a reader holding a stale array pointer stays safe.
  struct CellArray {
    explicit CellArray(std::size_t capacity);
    std::unique_ptr<std::atomic<std::uint64_t>[]> cells;
    std::size_t mask = 0;  // capacity - 1 (capacity is a power of two)
  };

  struct Entry {
    const char* data = nullptr;
    std::uint32_t length = 0;
    std::uint32_t canon = 0;
  };

  static constexpr std::size_t kBlockShift = 12;
  static constexpr std::size_t kBlockSize = std::size_t{1} << kBlockShift;
  static constexpr std::size_t kMaxBlocks = std::size_t{1} << 15;

  const Entry* entry(std::uint32_t id) const noexcept;
  std::uint64_t hash(std::string_view s, bool fold) const noexcept;
  bool equal(std::string_view a, std::string_view b, bool fold) const noexcept;
  std::optional<std::uint32_t> probe(const std::atomic<CellArray*>& index,
                                     std::string_view s,
                                     bool fold) const noexcept;
  void insert_cell(std::atomic<CellArray*>& index, std::uint64_t h,
                   std::uint32_t id);
  void grow_locked(std::atomic<CellArray*>& index, bool fold,
                   std::size_t min_capacity);
  void copy_from(const SymbolTable& other);

  Mode mode_;
  HashFn hash_;
  mutable std::mutex mutex_;
  std::atomic<CellArray*> table_{nullptr};
  std::atomic<CellArray*> fold_index_{nullptr};  // kExact only
  std::vector<std::unique_ptr<CellArray>> retired_;
  std::unique_ptr<std::atomic<Entry*>[]> blocks_;
  std::vector<Entry*> owned_blocks_;
  std::atomic<std::uint32_t> count_{0};
  std::size_t table_used_ = 0;       // filled cells in table_
  std::size_t fold_used_ = 0;        // filled cells in fold_index_
  Arena pool_;
  std::size_t pool_string_bytes_ = 0;
};

/// The process-wide exact-mode table behind ir::Symbol. Append-only for
/// the process lifetime: a hostile infinite-churn feed grows it without
/// bound, which is an accepted trade (see DESIGN.md "Memory
/// architecture") — corpus vocabularies are finite in practice.
SymbolTable& global_symbols();

}  // namespace rpslyzer::util

template <>
struct std::hash<rpslyzer::util::Symbol> {
  std::size_t operator()(rpslyzer::util::Symbol s) const noexcept {
    return std::hash<std::uint32_t>{}(s.id);
  }
};
