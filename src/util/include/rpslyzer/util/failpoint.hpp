#pragma once
// Failpoint framework: deterministic fault injection at named sites.
//
// Verification infrastructure breaks where real-world dirt meets the code —
// dumps that vanish mid-read, sockets that stall, caches that lie. The paper
// treats unavailable and malformed registry data as first-class phenomena
// (§4, Table 1); this framework lets tests (and operators reproducing
// incidents) inject exactly those failures at the pipeline's hot seams
// without recompiling.
//
// A *site* is a string name compiled into the code path, e.g. "irr.read" in
// the dump loader or "server.send" in the daemon's write path. Each site is
// evaluated through `failpoint::hit(site)`, which is a single relaxed atomic
// load and a predictable branch when no failpoint is armed — cheap enough
// for per-read and per-send call sites.
//
// Activation:
//   * environment (read once at process start):
//       RPSLYZER_FAILPOINTS="irr.read=error;server.send=delay(50ms);irr.parse=truncate(4096)"
//   * programmatically (tests): failpoint::set("irr.read", "2*error")
//
// Action grammar (one per site):
//   error            fail the operation (site-specific semantics)
//   error(message)   fail with a custom message
//   delay(50ms)      sleep before the operation ("50" alone means ms)
//   truncate(4096)   site-specific byte truncation (reads, buffers)
//   off              disarm the site
// Any action may be prefixed "N*" to fire only on the first N evaluations
// ("1*error" = fail once, then behave normally) — the N-times form is how
// tests drive "fault, then recovery" schedules deterministically.
//
// Sites interpret only the kinds that make sense for them and ignore the
// rest; every site honors `delay`. The compiled-in sites are listed in
// DESIGN.md ("Fault model & degradation").

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rpslyzer::util::failpoint {

/// What an armed site asks the call site to do. kNone means "proceed".
struct Hit {
  enum class Kind : std::uint8_t { kNone, kError, kDelay, kTruncate };

  Kind kind = Kind::kNone;
  std::string message;                  // kError: injected failure text
  std::chrono::milliseconds delay{0};   // kDelay: already slept by hit()
  std::size_t truncate_at = 0;          // kTruncate: keep this many bytes

  explicit operator bool() const noexcept { return kind != Kind::kNone; }
  bool is_error() const noexcept { return kind == Kind::kError; }
  bool is_truncate() const noexcept { return kind == Kind::kTruncate; }
};

namespace detail {
// Count of armed sites; the fast path is one relaxed load of this.
extern std::atomic<std::uint32_t> armed_sites;
Hit evaluate_slow(std::string_view site);
}  // namespace detail

/// True when at least one failpoint is armed anywhere in the process.
inline bool any_armed() noexcept {
  return detail::armed_sites.load(std::memory_order_relaxed) != 0;
}

/// Evaluate `site`. With nothing armed this is a load + branch; with the
/// site armed it consumes one firing (for N-times actions), performs the
/// sleep itself for delay actions, and returns what the caller should do.
inline Hit hit(std::string_view site) {
  if (!any_armed()) return {};
  return detail::evaluate_slow(site);
}

/// Arm `site` with an action spec ("error", "1*delay(50ms)", ...). "off"
/// (or an empty spec) disarms. Returns false and fills *error on a
/// malformed spec, leaving the site unchanged.
bool set(std::string_view site, std::string_view action, std::string* error = nullptr);

/// Disarm one site / every site. clear_all also resets hit counters.
void clear(std::string_view site);
void clear_all();

/// Parse a full configuration string ("site=action;site=action"). Applied
/// atomically: on any parse error nothing changes and *error names the bad
/// clause. Empty clauses (trailing ';') are ignored.
bool configure(std::string_view spec, std::string* error = nullptr);

/// How many times `site` actually fired (post-disarm firings not counted).
/// Survives clear(); reset by clear_all().
std::uint64_t hit_count(std::string_view site);

/// Every site that has ever fired, with its firing count — the feed for the
/// telemetry collector that mirrors firings into the metrics page.
std::vector<std::pair<std::string, std::uint64_t>> hit_counts();

/// Currently armed sites with their remaining-spec, for diagnostics.
std::vector<std::pair<std::string, std::string>> active();

/// Observer invoked once per actual firing, after the registry lock is
/// released (so it may log, take other locks, bump metrics). Plain function
/// pointer behind an atomic: installing it is race-free and evaluating it
/// costs one relaxed load on the already-slow armed path. The telemetry
/// layer installs exactly one hook; nullptr uninstalls.
using FireHook = void (*)(std::string_view site, const Hit& hit);
void set_fire_hook(FireHook hook) noexcept;

}  // namespace rpslyzer::util::failpoint
