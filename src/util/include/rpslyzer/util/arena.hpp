#pragma once
// Chunked bump allocator for parse-phase scratch. One Arena per ingestion
// shard: the lexer spills continuation-joined values and lowercased
// attribute names into it, so every RawAttributeView stays valid exactly as
// long as (dump buffer, shard arena) both live. Freeing is wholesale —
// destroy or reset() the arena — which is the point: parse IR has stack
// discipline per shard, so per-node free bookkeeping is pure overhead.
//
// Ownership is movable (shard slots are moved through the phase-B
// materialization queue) but not copyable. Never allocate from one arena on
// two threads at once; hand the whole arena off instead.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <string_view>
#include <utility>
#include <vector>

namespace rpslyzer::util {

class Arena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

  explicit Arena(std::size_t first_chunk_bytes = kDefaultChunkBytes) noexcept
      : next_chunk_bytes_(first_chunk_bytes == 0 ? kDefaultChunkBytes
                                                 : first_chunk_bytes) {}

  Arena(Arena&& other) noexcept
      : chunks_(std::move(other.chunks_)),
        cursor_(other.cursor_),
        chunk_end_(other.chunk_end_),
        next_chunk_bytes_(other.next_chunk_bytes_),
        used_bytes_(other.used_bytes_),
        reserved_bytes_(other.reserved_bytes_) {
    other.cursor_ = nullptr;
    other.chunk_end_ = nullptr;
    other.used_bytes_ = 0;
    other.reserved_bytes_ = 0;
  }

  Arena& operator=(Arena&& other) noexcept {
    if (this != &other) {
      chunks_ = std::move(other.chunks_);
      cursor_ = other.cursor_;
      chunk_end_ = other.chunk_end_;
      next_chunk_bytes_ = other.next_chunk_bytes_;
      used_bytes_ = other.used_bytes_;
      reserved_bytes_ = other.reserved_bytes_;
      other.cursor_ = nullptr;
      other.chunk_end_ = nullptr;
      other.used_bytes_ = 0;
      other.reserved_bytes_ = 0;
    }
    return *this;
  }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocate `bytes` with the given power-of-two alignment. Never
  /// returns nullptr (new[] throws on exhaustion).
  void* allocate(std::size_t bytes,
                 std::size_t align = alignof(std::max_align_t)) {
    auto addr = reinterpret_cast<std::uintptr_t>(cursor_);
    const std::uintptr_t aligned = (addr + (align - 1)) & ~(align - 1);
    const std::size_t padding = aligned - addr;
    if (cursor_ == nullptr ||
        bytes + padding > static_cast<std::size_t>(chunk_end_ - cursor_)) {
      grow(bytes + align);
      addr = reinterpret_cast<std::uintptr_t>(cursor_);
      const std::uintptr_t realigned = (addr + (align - 1)) & ~(align - 1);
      cursor_ = reinterpret_cast<char*>(realigned);
    } else {
      cursor_ = reinterpret_cast<char*>(aligned);
    }
    char* out = cursor_;
    cursor_ += bytes;
    used_bytes_ += bytes;
    return out;
  }

  /// Copy `s` into the arena; the returned view lives until reset/destroy.
  std::string_view copy(std::string_view s) {
    if (s.empty()) return {};
    char* dst = static_cast<char*>(allocate(s.size(), 1));
    std::memcpy(dst, s.data(), s.size());
    return {dst, s.size()};
  }

  /// Uninitialized array of `count` chars with byte alignment — the lexer's
  /// continuation-join scratch writes into this directly.
  char* alloc_chars(std::size_t count) {
    return static_cast<char*>(allocate(count, 1));
  }

  /// Typed uninitialized array; caller placement-constructs trivial Ts.
  template <typename T>
  T* alloc_array(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena never runs destructors");
    return static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
  }

  /// Drop all allocations but keep the largest chunk for reuse — the shard
  /// loop pattern (lex, materialize, reset, next file).
  void reset() noexcept {
    if (chunks_.size() > 1) {
      // Keep only the most recent (largest, geometric growth) chunk.
      Chunk keep = std::move(chunks_.back());
      chunks_.clear();
      reserved_bytes_ = keep.size;
      chunks_.push_back(std::move(keep));
    }
    if (!chunks_.empty()) {
      cursor_ = chunks_.back().data.get();
      chunk_end_ = cursor_ + chunks_.back().size;
    }
    used_bytes_ = 0;
  }

  std::size_t used_bytes() const noexcept { return used_bytes_; }
  std::size_t reserved_bytes() const noexcept { return reserved_bytes_; }
  std::size_t chunk_count() const noexcept { return chunks_.size(); }

 private:
  struct Chunk {
    std::unique_ptr<char[]> data;
    std::size_t size = 0;
  };

  void grow(std::size_t min_bytes) {
    std::size_t size = next_chunk_bytes_;
    while (size < min_bytes) size *= 2;
    Chunk chunk;
    chunk.data = std::make_unique<char[]>(size);
    chunk.size = size;
    cursor_ = chunk.data.get();
    chunk_end_ = cursor_ + size;
    reserved_bytes_ += size;
    chunks_.push_back(std::move(chunk));
    // Geometric growth, capped so a pathological shard cannot demand one
    // giant allocation per doubling forever.
    if (next_chunk_bytes_ < (std::size_t{1} << 24)) next_chunk_bytes_ = size * 2;
  }

  std::vector<Chunk> chunks_;
  char* cursor_ = nullptr;
  char* chunk_end_ = nullptr;
  std::size_t next_chunk_bytes_;
  std::size_t used_bytes_ = 0;
  std::size_t reserved_bytes_ = 0;
};

}  // namespace rpslyzer::util
