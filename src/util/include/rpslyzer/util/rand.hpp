#pragma once
// splitmix64 — the one shared copy. Three sites used to carry their own
// transcription of the same finalizer (server reload backoff, repl
// reconnect backoff, obs/loadgen trace-id minting); copy-paste drift there
// would silently re-correlate jitter streams that are supposed to be
// decorrelated *by seed*. The finalizer is Sebastiano Vigna's splitmix64
// (public domain), a bijection on 64-bit words, so distinct inputs can
// never collide to the same output.
//
// Pure functions only: every caller owns its own state word (a plain
// counter, an atomic, or a seed+attempt pair), which keeps the streams
// reproducible and thread-ownership explicit. tests/rand_test.cpp pins the
// exact output vectors so a future "cleanup" cannot drift the constants.

#include <cstdint>

namespace rpslyzer::util {

/// splitmix64 golden-gamma increment (2^64 / phi, odd).
inline constexpr std::uint64_t kSplitMix64Gamma = 0x9e3779b97f4a7c15ULL;

/// The splitmix64 output finalizer: a 64-bit bijective mix. On its own
/// this is a strong integer hash; fed a counter * gamma it is the
/// splitmix64 PRNG.
constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless indexed stream: the `counter`-th sample of the stream seeded
/// by `seed`. Counter 0 yields mix64(seed + gamma) — i.e. the stream skips
/// the raw seed itself, matching the historical backoff call sites that
/// hashed `seed + gamma * (attempt + 1)`.
constexpr std::uint64_t splitmix64_at(std::uint64_t seed,
                                      std::uint64_t counter) noexcept {
  return mix64(seed + kSplitMix64Gamma * (counter + 1));
}

/// Minimal sequential splitmix64 stream for call sites that want a
/// stateful generator (loadgen worker streams, trace-id minting). Not
/// thread-safe: one instance per owning thread, or wrap the state word in
/// an atomic and call mix64 on the post-increment value.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    state_ += kSplitMix64Gamma;
    return mix64(state_);
  }

 private:
  std::uint64_t state_;
};

}  // namespace rpslyzer::util
