#pragma once
// Diagnostic collection for RPSL parsing.
//
// The paper reports RPSLyzer found "663 syntax errors, 12 invalid as-set
// names, and 17 invalid route-set names" (§4); instead of aborting on bad
// input, parsers record diagnostics and keep going, and the stats module
// later aggregates them into the RPSL-error census.

#include <cstddef>
#include <string>
#include <vector>

namespace rpslyzer::util {

enum class Severity { kWarning, kError };

/// What kind of problem a diagnostic describes; used by the §4 error census.
enum class DiagnosticKind {
  kSyntaxError,       // unparseable policy text, broken lists, stray tokens
  kInvalidSetName,    // as-set/route-set name violating RFC 2622 naming rules
  kInvalidAttribute,  // attribute value that fails domain validation
  kUnknownObject,     // object class we do not model
  kOther,
};

/// Where a diagnostic was raised: IRR source file + line.
struct SourceLocation {
  std::string source;    // IRR name or file path, e.g. "RIPE"
  std::size_t line = 0;  // 1-based line within the source; 0 = unknown

  friend bool operator==(const SourceLocation&, const SourceLocation&) = default;
};

struct Diagnostic {
  Severity severity = Severity::kError;
  DiagnosticKind kind = DiagnosticKind::kSyntaxError;
  std::string message;
  std::string object_key;  // class:name of the object being parsed, if known
  SourceLocation location;
};

/// Append-only diagnostic sink shared by the lexer and parsers.
class Diagnostics {
 public:
  void add(Diagnostic d) { diagnostics_.push_back(std::move(d)); }

  void error(DiagnosticKind kind, std::string message, std::string object_key = {},
             SourceLocation location = {});
  void warning(DiagnosticKind kind, std::string message, std::string object_key = {},
               SourceLocation location = {});

  const std::vector<Diagnostic>& all() const noexcept { return diagnostics_; }
  std::size_t count(DiagnosticKind kind) const noexcept;
  std::size_t error_count() const noexcept;
  bool empty() const noexcept { return diagnostics_.empty(); }
  void clear() noexcept { diagnostics_.clear(); }

  /// Merge another sink's diagnostics into this one (used when combining
  /// per-IRR parses into one corpus).
  void merge(Diagnostics other);

 private:
  std::vector<Diagnostic> diagnostics_;
};

const char* to_string(Severity s) noexcept;
const char* to_string(DiagnosticKind k) noexcept;

}  // namespace rpslyzer::util
