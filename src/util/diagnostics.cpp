#include "rpslyzer/util/diagnostics.hpp"

#include <iterator>

namespace rpslyzer::util {

void Diagnostics::error(DiagnosticKind kind, std::string message, std::string object_key,
                        SourceLocation location) {
  diagnostics_.push_back(Diagnostic{Severity::kError, kind, std::move(message),
                                    std::move(object_key), std::move(location)});
}

void Diagnostics::warning(DiagnosticKind kind, std::string message, std::string object_key,
                          SourceLocation location) {
  diagnostics_.push_back(Diagnostic{Severity::kWarning, kind, std::move(message),
                                    std::move(object_key), std::move(location)});
}

std::size_t Diagnostics::count(DiagnosticKind kind) const noexcept {
  std::size_t n = 0;
  for (const auto& d : diagnostics_) {
    if (d.kind == kind) ++n;
  }
  return n;
}

std::size_t Diagnostics::error_count() const noexcept {
  std::size_t n = 0;
  for (const auto& d : diagnostics_) {
    if (d.severity == Severity::kError) ++n;
  }
  return n;
}

void Diagnostics::merge(Diagnostics other) {
  diagnostics_.insert(diagnostics_.end(), std::make_move_iterator(other.diagnostics_.begin()),
                      std::make_move_iterator(other.diagnostics_.end()));
}

const char* to_string(Severity s) noexcept {
  switch (s) {
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

const char* to_string(DiagnosticKind k) noexcept {
  switch (k) {
    case DiagnosticKind::kSyntaxError:
      return "syntax-error";
    case DiagnosticKind::kInvalidSetName:
      return "invalid-set-name";
    case DiagnosticKind::kInvalidAttribute:
      return "invalid-attribute";
    case DiagnosticKind::kUnknownObject:
      return "unknown-object";
    case DiagnosticKind::kOther:
      return "other";
  }
  return "unknown";
}

}  // namespace rpslyzer::util
