#include "rpslyzer/repl/edge.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "rpslyzer/obs/log.hpp"
#include "rpslyzer/obs/metrics.hpp"
#include "rpslyzer/obs/trace.hpp"
#include "rpslyzer/persist/arena.hpp"
#include "rpslyzer/util/failpoint.hpp"

namespace rpslyzer::repl {

namespace {

namespace fp = util::failpoint;

obs::Counter& syncs_total() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "rpslyzer_repl_syncs_total", "Completed edge sync cycles (poll + any download)");
  return c;
}

obs::Counter& sync_failures_total() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "rpslyzer_repl_sync_failures_total",
      "Edge sync cycles aborted by connection, protocol, or verification errors");
  return c;
}

obs::Counter& fetch_chunks_total() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "rpslyzer_repl_fetch_chunks_total", "Replication chunks fetched by edges");
  return c;
}

obs::Counter& bytes_fetched_total() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "rpslyzer_repl_bytes_fetched_total", "Replication payload bytes fetched by edges");
  return c;
}

obs::Counter& verify_failures_total() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "rpslyzer_repl_verify_failures_total",
      "Downloaded generations refused for a whole-file digest mismatch");
  return c;
}

obs::Counter& activations_total() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "rpslyzer_repl_activations_total", "Generations verified and swapped in by edges");
  return c;
}

obs::Counter& resumes_total() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "rpslyzer_repl_resumes_total", "Interrupted transfers resumed at their last offset");
  return c;
}

obs::Counter& heartbeats_sent_total() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "rpslyzer_repl_heartbeats_sent_total", "Heartbeats delivered to the origin");
  return c;
}

obs::Counter& heartbeat_failures_total() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "rpslyzer_repl_heartbeat_failures_total",
      "Heartbeats dropped by the repl.heartbeat failpoint or a dead origin connection");
  return c;
}

/// Transfer-layer failure: drops the connection and backs off, but never
/// touches the generation currently being served.
class SyncError : public std::runtime_error {
 public:
  explicit SyncError(const std::string& what) : std::runtime_error(what) {}
};

/// A parsed framed response off the origin connection.
struct Reply {
  char kind = 'F';      // 'A', 'C', 'D', or 'F'
  std::string payload;  // A: exact payload bytes; F: error text
};

Reply parse_reply(const std::string& resp) {
  if (resp == "C\n") return {'C', {}};
  if (resp == "D\n") return {'D', {}};
  if (!resp.empty() && resp.front() == 'F') {
    std::string msg = resp.substr(1);
    if (!msg.empty() && msg.front() == ' ') msg.erase(0, 1);
    if (!msg.empty() && msg.back() == '\n') msg.pop_back();
    return {'F', std::move(msg)};
  }
  if (!resp.empty() && resp.front() == 'A') {
    const std::size_t nl = resp.find('\n');
    if (nl != std::string::npos) {
      // Client::read_response already sized the buffer off this length
      // field, so the arithmetic below cannot overrun.
      const std::size_t len = resp.size() - nl - 3;  // minus "A..\n" and "C\n"
      return {'A', resp.substr(nl + 1, len)};
    }
  }
  throw SyncError("malformed framed response from origin");
}

std::string errno_message(const char* what, const std::filesystem::path& path) {
  return std::string(what) + " " + path.string() + ": " + std::strerror(errno);
}

struct Fd {
  int fd = -1;
  ~Fd() {
    if (fd >= 0) ::close(fd);
  }
};

std::vector<std::byte> read_file(const std::filesystem::path& path) {
  Fd fd{::open(path.c_str(), O_RDONLY | O_CLOEXEC)};
  if (fd.fd < 0) throw SyncError(errno_message("cannot open", path));
  struct stat st{};
  if (::fstat(fd.fd, &st) != 0) throw SyncError(errno_message("cannot stat", path));
  std::vector<std::byte> out(static_cast<std::size_t>(st.st_size));
  std::size_t done = 0;
  while (done < out.size()) {
    const ssize_t n = ::read(fd.fd, out.data() + done, out.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw SyncError(errno_message("cannot read", path));
    }
    if (n == 0) break;
    done += static_cast<std::size_t>(n);
  }
  out.resize(done);
  return out;
}

}  // namespace

ReplicationClient::ReplicationClient(EdgeConfig config)
    : config_(std::move(config)),
      seed_(config_.jitter_seed != 0 ? config_.jitter_seed
                                     : persist::digest64(config_.edge_id)) {
  std::filesystem::create_directories(config_.state_dir);
}

ReplicationClient::~ReplicationClient() { stop(); }

void ReplicationClient::set_activation_callback(std::function<void(const Current&)> cb) {
  std::lock_guard<std::mutex> lock(mu_);
  on_activate_ = std::move(cb);
}

void ReplicationClient::set_local_state(std::function<LocalState()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  local_state_ = std::move(fn);
}

bool ReplicationClient::recover_last_good() {
  const std::filesystem::path rps = config_.state_dir / "current.rps";
  const std::filesystem::path meta = config_.state_dir / "current.meta";
  std::error_code ec;
  if (!std::filesystem::exists(rps, ec) || !std::filesystem::exists(meta, ec)) return false;

  Current cur;
  cur.path = rps;
  {
    std::ifstream in(meta);
    std::string line;
    unsigned seen = 0;
    while (std::getline(in, line)) {
      const std::size_t colon = line.find(": ");
      if (colon == std::string::npos) continue;
      const std::string key = line.substr(0, colon);
      const std::string value = line.substr(colon + 2);
      if (key == "gen") {
        cur.gen = std::strtoull(value.c_str(), nullptr, 10);
        seen |= 1;
      } else if (key == "checksum") {
        if (auto v = parse_hex64(value)) cur.checksum = *v, seen |= 2;
      } else if (key == "digest") {
        if (auto v = parse_hex64(value)) cur.digest = *v, seen |= 4;
      }
    }
    if (seen != 7 || cur.gen == 0) return false;
  }

  // The snapshot must still hash to what the meta file promised — a torn
  // write during the crash we are recovering from must not get served.
  try {
    const std::vector<std::byte> bytes = read_file(rps);
    if (persist::digest64(std::span<const std::byte>(bytes)) != cur.digest) {
      obs::log_warn("repl", "last-good snapshot digest mismatch; discarding",
                    {{"path", rps.string()}});
      return false;
    }
  } catch (const SyncError&) {
    return false;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    current_ = cur;
    activated_ = true;
  }
  cv_.notify_all();
  obs::log_info("repl", "recovered last-good generation",
                {{"gen", cur.gen}, {"path", rps.string()}});
  return true;
}

void ReplicationClient::start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (running_) return;
    running_ = true;
  }
  thread_ = std::thread([this] { run(); });
}

void ReplicationClient::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_ && !thread_.joinable()) return;
    running_ = false;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  drop_connection();
}

bool ReplicationClient::wait_for_snapshot(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  // Gate on activated_, not current_: current_ is published before the
  // activation callback runs (the callback reads current()), and waiters
  // must not observe a generation whose activation side effects — the
  // daemon reload request above all — are still in flight.
  cv_.wait_for(lock, timeout, [&] { return activated_ || !running_; });
  return current_.has_value();
}

std::optional<Current> ReplicationClient::current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

void ReplicationClient::run() {
  using clock = std::chrono::steady_clock;
  auto next_poll = clock::now();  // first sync fires immediately
  auto next_beat = clock::now() + heartbeat_interval(config_.heartbeat_period, seed_, beat_tick_++);

  std::unique_lock<std::mutex> lock(mu_);
  while (running_) {
    const auto wake = std::min(next_poll, next_beat);
    cv_.wait_until(lock, wake, [&] { return !running_; });
    if (!running_) break;
    const auto now = clock::now();

    if (now >= next_poll) {
      lock.unlock();
      bool ok = false;
      try {
        sync_once();
        ok = true;
      } catch (const std::exception& e) {
        drop_connection();
        origin_up_.store(false, std::memory_order_relaxed);
        sync_failures_.fetch_add(1, std::memory_order_relaxed);
        sync_failures_total().inc();
        obs::log_warn("repl", "sync failed",
                      {{"edge", config_.edge_id}, {"error", e.what()}});
      }
      lock.lock();
      if (ok) {
        failures_ = 0;
        next_poll = clock::now() + config_.poll_interval;
      } else {
        const auto delay = reconnect_backoff(failures_, config_.backoff_initial,
                                             config_.backoff_max, seed_);
        ++failures_;
        next_poll = clock::now() + delay;
      }
    }

    if (now >= next_beat && running_) {
      lock.unlock();
      try {
        heartbeat_once();
      } catch (const std::exception& e) {
        drop_connection();
        origin_up_.store(false, std::memory_order_relaxed);
        heartbeat_failures_.fetch_add(1, std::memory_order_relaxed);
        heartbeat_failures_total().inc();
        obs::log_warn("repl", "heartbeat failed",
                      {{"edge", config_.edge_id}, {"error", e.what()}});
      }
      lock.lock();
      next_beat =
          clock::now() + heartbeat_interval(config_.heartbeat_period, seed_, beat_tick_++);
    }
  }
}

bool ReplicationClient::ensure_connected() {
  if (conn_) return true;
  std::string error;
  auto conn = server::Client::connect(config_.origin_host, config_.origin_port, &error);
  if (!conn) {
    throw SyncError("cannot reach origin " + config_.origin_host + ":" +
                    std::to_string(config_.origin_port) + ": " + error);
  }
  conn_ = std::move(*conn);
  return true;
}

void ReplicationClient::drop_connection() { conn_.reset(); }

std::optional<GenerationInfo> ReplicationClient::fetch_info() {
  if (!conn_->send_line("!repl.info")) throw SyncError("origin connection lost (info)");
  const auto resp = conn_->read_response();
  if (!resp) throw SyncError("origin closed the connection (info)");
  const Reply reply = parse_reply(*resp);
  if (reply.kind == 'D') return std::nullopt;  // nothing published yet
  if (reply.kind == 'F') throw SyncError("origin refused info: " + reply.payload);
  if (reply.kind != 'A') throw SyncError("unexpected info response");
  auto info = parse_info(reply.payload);
  if (!info) throw SyncError("malformed generation announcement");
  return info;
}

void ReplicationClient::sync_once() {
  obs::Span span("repl.sync");
  ensure_connected();
  const std::optional<GenerationInfo> info = fetch_info();
  origin_up_.store(true, std::memory_order_relaxed);
  if (!info) return;

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (current_ && current_->checksum == info->checksum) {
      // Same content under a new label (typically an origin restart that
      // reset its generation counter): adopt the label, skip the bytes.
      if (current_->gen != info->gen) {
        current_->gen = info->gen;
        write_meta(*current_);
      }
      syncs_.fetch_add(1, std::memory_order_relaxed);
      syncs_total().inc();
      return;
    }
  }

  fetch_generation(*info);
  verify_and_activate(*info);
  syncs_.fetch_add(1, std::memory_order_relaxed);
  syncs_total().inc();
}

void ReplicationClient::fetch_generation(const GenerationInfo& info) {
  obs::Span span("repl.fetch");
  const std::filesystem::path partial_path = config_.state_dir / "incoming.partial";

  std::uint64_t offset = 0;
  if (partial_ && partial_->checksum == info.checksum && partial_->digest == info.digest &&
      partial_->size == info.size && partial_->offset > 0) {
    std::error_code ec;
    const auto on_disk = std::filesystem::file_size(partial_path, ec);
    if (!ec && on_disk == partial_->offset) {
      offset = partial_->offset;
      resumes_.fetch_add(1, std::memory_order_relaxed);
      resumes_total().inc();
      obs::log_info("repl", "resuming interrupted transfer",
                    {{"edge", config_.edge_id}, {"gen", info.gen}, {"offset", offset}});
    }
  }
  if (offset == 0) partial_ = Partial{info.checksum, info.digest, info.size, 0};

  Fd fd{::open(partial_path.c_str(), O_WRONLY | O_CREAT | O_CLOEXEC, 0644)};
  if (fd.fd < 0) throw SyncError(errno_message("cannot create", partial_path));
  if (::ftruncate(fd.fd, static_cast<off_t>(offset)) != 0 ||
      ::lseek(fd.fd, static_cast<off_t>(offset), SEEK_SET) < 0) {
    throw SyncError(errno_message("cannot position", partial_path));
  }

  const std::uint64_t chunk = std::max<std::uint64_t>(info.chunk_bytes, 4096);
  while (offset < info.size) {
    const std::uint64_t len = std::min<std::uint64_t>(chunk, info.size - offset);
    if (!conn_->send_line("!repl.fetch " + std::to_string(info.gen) + " " +
                          std::to_string(offset) + " " + std::to_string(len))) {
      throw SyncError("origin connection lost (fetch)");
    }
    const auto resp = conn_->read_response();
    if (!resp) throw SyncError("origin closed the connection mid-transfer");
    const Reply reply = parse_reply(*resp);
    if (reply.kind == 'F') throw SyncError("origin refused chunk: " + reply.payload);
    if (reply.kind != 'A' || reply.payload.size() != len) {
      throw SyncError("short chunk from origin");
    }

    // Edge-side fault injection: an error abandons this sync (resumable);
    // a truncation keeps only a prefix of the chunk and tears the
    // transfer, exercising the partial-resume path end to end.
    std::size_t keep = reply.payload.size();
    bool torn = false;
    if (auto hit = fp::hit("repl.fetch"); hit.is_error()) {
      throw SyncError("repl.fetch failpoint: " + hit.message);
    } else if (hit.is_truncate()) {
      keep = std::min<std::size_t>(keep, hit.truncate_at);
      torn = true;
    }

    std::size_t done = 0;
    while (done < keep) {
      const ssize_t n = ::write(fd.fd, reply.payload.data() + done, keep - done);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw SyncError(errno_message("cannot write", partial_path));
      }
      done += static_cast<std::size_t>(n);
    }
    offset += keep;
    partial_->offset = offset;
    fetch_chunks_total().inc();
    bytes_fetched_total().inc(keep);
    if (torn) throw SyncError("transfer torn by repl.fetch failpoint");
  }
  if (::fsync(fd.fd) != 0) throw SyncError(errno_message("cannot sync", partial_path));
}

void ReplicationClient::verify_and_activate(const GenerationInfo& info) {
  obs::Span span("repl.activate");
  const std::filesystem::path partial_path = config_.state_dir / "incoming.partial";
  const std::filesystem::path rps = config_.state_dir / "current.rps";

  const std::vector<std::byte> bytes = read_file(partial_path);
  std::uint64_t digest = persist::digest64(std::span<const std::byte>(bytes));
  if (auto hit = fp::hit("repl.verify"); hit.is_error()) digest = ~digest;
  if (bytes.size() != info.size || digest != info.digest) {
    // A transfer that completed but does not hash out is poison, not a
    // partial: delete it so the next poll starts clean.
    verify_failures_.fetch_add(1, std::memory_order_relaxed);
    verify_failures_total().inc();
    partial_.reset();
    std::error_code ec;
    std::filesystem::remove(partial_path, ec);
    throw SyncError("downloaded generation failed digest verification");
  }

  if (auto hit = fp::hit("repl.activate"); hit.is_error()) {
    // Verified bytes stay on disk; the next sync resumes at offset==size
    // and goes straight back to activation.
    throw SyncError("repl.activate failpoint: " + hit.message);
  }

  if (::rename(partial_path.c_str(), rps.c_str()) != 0) {
    throw SyncError(errno_message("cannot activate", rps));
  }
  partial_.reset();

  Current cur;
  cur.path = rps;
  cur.gen = info.gen;
  cur.checksum = info.checksum;
  cur.digest = info.digest;
  write_meta(cur);

  // Publish current_ first (the activation callback reads current()), run
  // the callback, and only then mark the activation complete for
  // wait_for_snapshot() waiters — a woken waiter must see the callback's
  // side effects (the daemon reload request), not race ahead of them.
  std::function<void(const Current&)> cb;
  {
    std::lock_guard<std::mutex> lock(mu_);
    current_ = cur;
    cb = on_activate_;
  }
  activations_.fetch_add(1, std::memory_order_relaxed);
  activations_total().inc();
  obs::log_info("repl", "generation activated",
                {{"edge", config_.edge_id}, {"gen", cur.gen}, {"bytes", info.size}});
  if (cb) cb(cur);
  {
    std::lock_guard<std::mutex> lock(mu_);
    activated_ = true;
  }
  cv_.notify_all();
}

void ReplicationClient::write_meta(const Current& cur) const {
  const std::filesystem::path meta = config_.state_dir / "current.meta";
  const std::filesystem::path tmp = meta.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    out << "gen: " << cur.gen << "\n"
        << "checksum: " << hex64(cur.checksum) << "\n"
        << "digest: " << hex64(cur.digest) << "\n";
  }
  std::error_code ec;
  std::filesystem::rename(tmp, meta, ec);
}

void ReplicationClient::heartbeat_once() {
  if (auto hit = fp::hit("repl.heartbeat"); hit.is_error()) {
    heartbeat_failures_.fetch_add(1, std::memory_order_relaxed);
    heartbeat_failures_total().inc();
    return;  // skipped, not a connection failure
  }

  LocalState state;
  std::uint64_t gen = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (local_state_) state = local_state_();
    if (current_) gen = current_->gen;
  }

  const auto now = std::chrono::steady_clock::now();
  double qps = 0.0;
  if (last_beat_time_.time_since_epoch().count() != 0 &&
      state.queries_total >= last_beat_queries_) {
    const std::chrono::duration<double> dt = now - last_beat_time_;
    if (dt.count() > 0) {
      qps = static_cast<double>(state.queries_total - last_beat_queries_) / dt.count();
    }
  }
  last_beat_time_ = now;
  last_beat_queries_ = state.queries_total;

  ensure_connected();
  // The digest token can outgrow a fixed buffer (one count per latency
  // bucket), so the beat is assembled as a string.
  char head[192];
  std::snprintf(head, sizeof(head), "!repl.beat %s %llu %s %.1f",
                config_.edge_id.c_str(), static_cast<unsigned long long>(gen),
                state.health.c_str(), qps);
  MetricDigest digest;
  digest.queries_total = state.queries_total;
  digest.cache_hits = state.cache_hits;
  digest.cache_misses = state.cache_misses;
  digest.recorder_drops = state.recorder_drops;
  digest.heartbeat_ms =
      static_cast<std::uint64_t>(std::max<std::int64_t>(config_.heartbeat_period.count(), 0));
  digest.latency_count = state.latency_count;
  digest.latency_sum_micros = state.latency_sum_micros;
  digest.latency_buckets = state.latency_buckets;
  const std::string beat = std::string(head) + " " + render_digest(digest);
  if (!conn_->send_line(beat)) throw SyncError("origin connection lost (beat)");
  const auto resp = conn_->read_response();
  if (!resp) throw SyncError("origin closed the connection (beat)");
  const Reply reply = parse_reply(*resp);
  if (reply.kind == 'F') throw SyncError("origin refused beat: " + reply.payload);
  heartbeats_.fetch_add(1, std::memory_order_relaxed);
  heartbeats_sent_total().inc();
}

std::string ReplicationClient::status_payload() const {
  std::ostringstream out;
  out << "role: edge\n";
  out << "origin: " << config_.origin_host << ":" << config_.origin_port << "\n";
  out << "origin-up: " << (origin_up() ? 1 : 0) << "\n";
  {
    std::lock_guard<std::mutex> lock(mu_);
    out << "gen: " << (current_ ? current_->gen : 0) << "\n";
    if (current_) out << "checksum: " << hex64(current_->checksum) << "\n";
  }
  out << "syncs: " << syncs_.load(std::memory_order_relaxed) << "\n";
  out << "sync-failures: " << sync_failures_.load(std::memory_order_relaxed) << "\n";
  out << "activations: " << activations_.load(std::memory_order_relaxed) << "\n";
  out << "resumes: " << resumes_.load(std::memory_order_relaxed) << "\n";
  out << "verify-failures: " << verify_failures_.load(std::memory_order_relaxed) << "\n";
  out << "heartbeats: " << heartbeats_.load(std::memory_order_relaxed) << "\n";
  out << "heartbeat-failures: " << heartbeat_failures_.load(std::memory_order_relaxed)
      << "\n";
  return out.str();
}

std::string ReplicationClient::stats_line() const {
  std::uint64_t gen = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (current_) gen = current_->gen;
  }
  return "repl: role=edge gen=" + std::to_string(gen) +
         " origin-up=" + (origin_up() ? std::string("1") : std::string("0"));
}

}  // namespace rpslyzer::repl
