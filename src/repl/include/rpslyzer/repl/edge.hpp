#pragma once
// Edge-side replication: keep a local last-good snapshot file in sync with
// an origin, surviving every way the origin or the network can fail.
//
// One agent thread owns the entire protocol conversation (poll, fetch,
// verify, activate, heartbeat); the serving daemon only ever reads the
// published Current descriptor under a mutex. State machine per poll:
//
//       .--------------------- same checksum --------------------.
//       v                                                        |
//   [poll info] -> changed? -> [fetch chunks] -> [verify digest] -+-> [activate]
//       |                          |                  |                 |
//       |  conn/parse error        |  torn transfer   |  mismatch       |  rename/mmap error
//       v                          v                  v                 v
//   [backoff, keep serving last-good; partial downloads resume at their offset]
//
// Failure policy: any error drops the origin connection, counts a sync
// failure, and schedules the next poll by reconnect_backoff — the edge
// NEVER stops serving whatever generation it last activated, including
// one recovered from disk at startup (`recover_last_good`). A transfer
// interrupted mid-fetch leaves `incoming.partial` + its offset in memory;
// if the origin still announces the same content on reconnect the fetch
// resumes where it stopped instead of restarting.
//
// Failpoints (edge side): `repl.fetch` (error → fetch aborts; truncate(n)
// → only the first n bytes of a chunk are kept, forcing a torn transfer),
// `repl.verify` (error → digest deliberately mismatched, transfer
// refused), `repl.activate` (error → activation aborts after verify),
// `repl.heartbeat` (error → beat skipped and counted). Metrics are
// `rpslyzer_repl_*`, spans `repl.sync` / `repl.fetch` / `repl.activate`.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "rpslyzer/repl/protocol.hpp"
#include "rpslyzer/server/client.hpp"

namespace rpslyzer::repl {

struct EdgeConfig {
  std::string origin_host = "127.0.0.1";
  std::uint16_t origin_port = 0;
  std::filesystem::path state_dir;  // holds current.rps / current.meta / incoming.partial
  std::string edge_id = "edge";     // identity reported in heartbeats
  std::chrono::milliseconds poll_interval{2000};
  std::chrono::milliseconds heartbeat_period{1000};
  std::chrono::milliseconds backoff_initial{200};
  std::chrono::milliseconds backoff_max{10000};
  std::uint64_t jitter_seed = 0;  // 0 → derived from edge_id
};

/// What the edge currently serves: a verified snapshot file plus the
/// generation identity it was downloaded (or recovered) as.
struct Current {
  std::filesystem::path path;
  std::uint64_t gen = 0;
  std::uint64_t checksum = 0;
  std::uint64_t digest = 0;
};

/// Live state the serving daemon exposes to heartbeats. Beyond health and
/// the query counter (which drives the origin's qps estimate), the daemon
/// can fill the metric-digest fields; they ride each beat as the optional
/// fifth field and feed the origin's `!fleet` aggregation.
struct LocalState {
  std::string health = "starting";
  std::uint64_t queries_total = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t recorder_drops = 0;
  std::uint64_t latency_count = 0;
  std::uint64_t latency_sum_micros = 0;
  std::vector<std::uint64_t> latency_buckets;  // the daemon's own layout
};

class ReplicationClient {
 public:
  explicit ReplicationClient(EdgeConfig config);
  ~ReplicationClient();

  /// Called (from the agent thread) after a new generation has been
  /// verified and renamed into place — the daemon hook that triggers a
  /// reload of current().path.
  void set_activation_callback(std::function<void(const Current&)> cb);

  /// Supplies health + cumulative query count for heartbeats; QPS is
  /// computed from deltas between beats.
  void set_local_state(std::function<LocalState()> fn);

  /// Adopt `state_dir/current.rps` if its digest matches current.meta —
  /// the crash-recovery path that lets an edge serve last-good before (or
  /// without) ever reaching the origin. Returns true when recovered.
  bool recover_last_good();

  void start();
  void stop();

  /// Block until some generation is available (downloaded or recovered),
  /// the timeout lapses, or stop() is called. True when available. On a
  /// download, "available" includes the activation callback having
  /// completed — a true return means the full activation side effects
  /// (reload request, counters) are visible, not just current().
  bool wait_for_snapshot(std::chrono::milliseconds timeout);

  std::optional<Current> current() const;

  /// True while the last origin exchange succeeded.
  bool origin_up() const noexcept { return origin_up_.load(std::memory_order_relaxed); }

  /// Framed `!repl` status page (role: edge) and the `!stats` extra line.
  std::string status_payload() const;
  std::string stats_line() const;

 private:
  struct Partial {
    std::uint64_t checksum = 0;  // content identity being fetched
    std::uint64_t digest = 0;
    std::uint64_t size = 0;
    std::uint64_t offset = 0;  // bytes already on disk
  };

  void run();
  void sync_once();
  void heartbeat_once();
  bool ensure_connected();
  void drop_connection();
  std::optional<GenerationInfo> fetch_info();
  void fetch_generation(const GenerationInfo& info);
  void verify_and_activate(const GenerationInfo& info);
  void write_meta(const Current& cur) const;

  const EdgeConfig config_;
  const std::uint64_t seed_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool running_ = false;
  bool activated_ = false;  // an activation (or recovery) fully completed
  std::optional<Current> current_;
  std::function<void(const Current&)> on_activate_;
  std::function<LocalState()> local_state_;

  // Agent-thread-only state (no lock): the origin conversation.
  std::optional<server::Client> conn_;
  std::optional<Partial> partial_;
  unsigned failures_ = 0;
  std::uint64_t beat_tick_ = 0;
  std::uint64_t last_beat_queries_ = 0;
  std::chrono::steady_clock::time_point last_beat_time_{};

  std::atomic<bool> origin_up_{false};
  std::atomic<std::uint64_t> syncs_{0};
  std::atomic<std::uint64_t> sync_failures_{0};
  std::atomic<std::uint64_t> activations_{0};
  std::atomic<std::uint64_t> resumes_{0};
  std::atomic<std::uint64_t> verify_failures_{0};
  std::atomic<std::uint64_t> heartbeats_{0};
  std::atomic<std::uint64_t> heartbeat_failures_{0};

  std::thread thread_;
};

}  // namespace rpslyzer::repl
