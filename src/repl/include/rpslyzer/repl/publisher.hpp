#pragma once
// Origin-side replication: serve snapshot generations to a fleet of edges.
//
// The publisher owns one immutable in-memory arena image at a time (the
// exact bytes ArenaWriter would put on disk). publish() serializes a
// CompiledPolicySnapshot and — only if its content checksum differs from
// the current generation's — bumps the generation counter and swaps the
// image in under a shared_ptr, so in-flight fetches of the previous
// generation keep their bytes alive until the last chunk is served.
// handle() answers the `!repl*` admin verbs and returns fully framed
// responses; the server routes the verbs here via
// Server::set_repl_handler, bypassing the response cache (a chunk response
// can be megabytes, and caching it would evict the entire query LRU).
//
// All handle() calls arrive on the server's event-loop thread; publish()
// arrives on whatever thread runs the reload. One mutex covers both — the
// critical sections are pointer swaps and map updates, never byte copies.

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "rpslyzer/repl/protocol.hpp"

namespace rpslyzer::compile {
class CompiledPolicySnapshot;
}

namespace rpslyzer::repl {

/// Last heartbeat received from one edge, for the `!repl` fleet table and
/// the `!fleet` aggregation. `digest` is absent for legacy four-field
/// beats; such edges appear in the fleet table but contribute nothing to
/// the merged totals or histogram.
struct EdgeRecord {
  std::uint64_t gen = 0;
  std::string health;
  double qps = 0.0;
  std::chrono::steady_clock::time_point last_seen{};
  std::optional<MetricDigest> digest;
};

class Publisher {
 public:
  /// chunk_bytes is the fetch granularity announced to edges; requests for
  /// larger ranges are refused (an edge that ignores the announcement
  /// cannot DoS the origin's event loop with one giant frame).
  explicit Publisher(std::size_t chunk_bytes = 256 * 1024);

  /// Serialize and (if content changed) publish a new generation. Returns
  /// the generation now current. Safe to call from the reload path on
  /// every successful load — identical content is deduplicated by arena
  /// checksum, so a `kill -HUP` with unchanged dumps does not force the
  /// fleet to re-download anything.
  std::uint64_t publish(const compile::CompiledPolicySnapshot& snap);

  /// Handle the body of a `!repl...` admin query (everything after the
  /// "repl" token: "", ".info", ".fetch <gen> <off> <len>",
  /// ".beat <id> <gen> <health> <qps>"). Returns a complete framed
  /// response ("A<n>\n...C\n", "C\n", "D\n", or "F ...\n").
  std::string handle(std::string_view body);

  /// Announcement for the current generation; gen == 0 before the first
  /// publish.
  GenerationInfo current_info() const;

  /// One "repl: ..." line for the extended `!stats` payload.
  std::string stats_line() const;

  /// The latency-bucket layout fleet histograms are merged against; edges
  /// whose digest carries a different bucket count are skipped (their
  /// counters still aggregate). Defaults to ServerStats'
  /// default_latency_bounds. Call before serving traffic.
  void set_latency_bounds(std::vector<double> bounds);

  /// Unframed `!fleet` payload: merged totals, fleet-wide percentiles, and
  /// one row per edge. An edge whose last beat is older than four
  /// heartbeat periods (its digest's `hb`, or 5 s for legacy beats) is
  /// marked `stale=1` and excluded from totals and the merged histogram —
  /// a SIGKILLed edge must not freeze the fleet p99 at its last numbers.
  std::string fleet_payload() const;

  /// The same aggregation as complete Prometheus families
  /// (`rpslyzer_fleet_*`, per-edge series labelled {edge="<id>"}), ready
  /// to append to a `!metrics` page via Server::set_metrics_extra.
  std::string fleet_prometheus() const;

 private:
  struct FleetView;  // one locked pass over edges_, shared by both renderers

  std::string handle_info() const;
  std::string handle_fetch(std::string_view args);
  std::string handle_beat(std::string_view args);
  std::string status_payload() const;
  FleetView fleet_view() const;

  mutable std::mutex mu_;
  std::shared_ptr<const std::vector<std::byte>> image_;
  GenerationInfo info_;
  std::map<std::string, EdgeRecord> edges_;
  std::vector<double> latency_bounds_;
  const std::size_t chunk_bytes_;
};

}  // namespace rpslyzer::repl
