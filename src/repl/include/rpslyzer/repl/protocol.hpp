#pragma once
// Origin/edge snapshot replication: the wire vocabulary.
//
// Replication rides the IRRd framed protocol the daemon already speaks —
// no second listener, no second framing layer. An origin (`serve
// --publish`) answers three extra admin verbs; an edge (`serve --origin`)
// issues them from a background agent thread:
//
//   !repl.info                     current generation announcement:
//                                  "gen/build-id/checksum/digest/size/
//                                  chunk-bytes" key: value lines (framed A
//                                  response), or "D\n" before the first
//                                  publish.
//   !repl.fetch <gen> <off> <len>  one checksummed chunk of the arena
//                                  image, framed as "A<n>\n<bytes>C\n"
//                                  (binary-safe: the frame is length-
//                                  prefixed, never newline-delimited).
//                                  "F generation ... is not current" tells
//                                  a mid-transfer edge to re-poll.
//   !repl.beat <id> <gen> <health> <qps> [digest]
//                                  edge heartbeat; origin records it for
//                                  the `!repl` fleet table and answers
//                                  "C\n". The optional fifth field is a
//                                  single-token metric digest (see
//                                  MetricDigest below) that feeds the
//                                  origin's `!fleet` aggregation; origins
//                                  accept the four-field legacy form from
//                                  older edges.
//   !repl                          role-specific status page (both sides).
//
// Generation identity is *content*, not labels: `checksum` is the arena's
// internal digest over everything after the fixed header (stable across
// origin restarts, which reset the gen counter and mint a new build-id),
// while `digest` covers the whole transferable image (header included) and
// is what an edge verifies a completed download against. An edge whose
// local checksum matches the announcement adopts the announced gen without
// re-fetching a byte.

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace rpslyzer::repl {

/// One published snapshot generation, as announced by `!repl.info`.
struct GenerationInfo {
  std::uint64_t gen = 0;       // origin-incarnation-local counter, from 1
  std::uint64_t build_id = 0;  // compile-time id of the snapshot
  std::uint64_t checksum = 0;  // content identity (excludes the header)
  std::uint64_t digest = 0;    // whole-image transfer digest
  std::uint64_t size = 0;      // image bytes
  std::uint64_t chunk_bytes = 0;  // origin's preferred fetch granularity

  bool same_content(const GenerationInfo& other) const noexcept {
    return checksum == other.checksum && size == other.size;
  }
};

/// Render / parse the `!repl.info` payload (unframed "key: value" lines).
/// parse_info returns nullopt on any missing or malformed field, so a
/// half-garbled announcement can never start a transfer.
std::string render_info(const GenerationInfo& info);
std::optional<GenerationInfo> parse_info(std::string_view payload);

/// Compact per-edge metric digest, piggybacked on `!repl.beat` as one
/// space-free token so the beat stays a single line:
///
///   v1;qt=<queries>;ch=<cache-hits>;cm=<cache-misses>;rd=<recorder-drops>;
///   hb=<heartbeat-ms>;lc=<latency-count>;ls=<latency-sum-us>;lb=<b0:b1:...>
///
/// `lb` carries the edge's raw latency histogram bucket counts (the edge's
/// own bucket layout; the origin only merges layouts whose bucket count
/// matches its own bounds). `hb` lets the origin derive a staleness
/// threshold per edge instead of guessing a global one. Unknown keys are
/// forward-compatible noise, mirroring parse_info.
struct MetricDigest {
  std::uint64_t queries_total = 0;      // qt: cumulative accepted queries
  std::uint64_t cache_hits = 0;         // ch: response-cache hits
  std::uint64_t cache_misses = 0;       // cm: response-cache misses (= evaluations)
  std::uint64_t recorder_drops = 0;     // rd: flight-recorder overwrites
  std::uint64_t heartbeat_ms = 0;       // hb: configured heartbeat period
  std::uint64_t latency_count = 0;      // lc: histogram sample count
  std::uint64_t latency_sum_micros = 0; // ls: histogram sum, microseconds
  std::vector<std::uint64_t> latency_buckets;  // lb: raw per-bucket counts
};

/// Render / parse the beat digest token. parse_digest returns nullopt on a
/// missing version tag, duplicate key, or any malformed numeric field — a
/// garbled digest refuses the whole beat rather than polluting the fleet
/// aggregate with partial numbers.
std::string render_digest(const MetricDigest& digest);
std::optional<MetricDigest> parse_digest(std::string_view token);

/// Deterministic capped exponential backoff with multiplicative jitter in
/// [0.75, 1.25]·step — the edge's reconnect schedule after a failed sync
/// or heartbeat. Attempt 0 ≈ initial, doubling up to `max_backoff`. Pure:
/// the whole retry ladder is unit-testable without a clock, mirroring
/// server::reload_backoff (same contract, independent jitter stream so an
/// edge's reconnects do not phase-lock with its server's reload retries).
std::chrono::milliseconds reconnect_backoff(unsigned attempt,
                                            std::chrono::milliseconds initial,
                                            std::chrono::milliseconds max_backoff,
                                            std::uint64_t seed) noexcept;

/// Jittered heartbeat period: base scaled into [0.80, 1.20], deterministic
/// in (seed, tick). Jitter is load-bearing fleet hygiene — N edges started
/// by the same orchestrator must not beat against the origin in lockstep.
std::chrono::milliseconds heartbeat_interval(std::chrono::milliseconds base,
                                             std::uint64_t seed,
                                             std::uint64_t tick) noexcept;

/// Fixed-width lowercase hex (16 digits) for checksums/digests on the wire
/// and in status pages; parse_hex64 accepts exactly that form.
std::string hex64(std::uint64_t v);
std::optional<std::uint64_t> parse_hex64(std::string_view text) noexcept;

}  // namespace rpslyzer::repl
