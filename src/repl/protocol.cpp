#include "rpslyzer/repl/protocol.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "rpslyzer/util/rand.hpp"

namespace rpslyzer::repl {

namespace {

// util::splitmix64_at gives one well-mixed word from (seed, counter); each
// stream below perturbs the seed with its own constant so reconnect and
// heartbeat jitter are decorrelated even under the same base seed.
std::uint64_t mix(std::uint64_t seed, std::uint64_t counter) noexcept {
  return util::splitmix64_at(seed, counter);
}

}  // namespace

std::chrono::milliseconds reconnect_backoff(unsigned attempt,
                                            std::chrono::milliseconds initial,
                                            std::chrono::milliseconds max_backoff,
                                            std::uint64_t seed) noexcept {
  if (initial.count() <= 0) initial = std::chrono::milliseconds(1);
  if (max_backoff < initial) max_backoff = initial;
  const std::uint64_t cap = static_cast<std::uint64_t>(max_backoff.count());
  std::uint64_t base = static_cast<std::uint64_t>(initial.count());
  for (unsigned i = 0; i < attempt && base < cap; ++i) base *= 2;
  base = std::min(base, cap);
  // The stream constant distinguishes this ladder from reload_backoff's
  // (which hashes the bare attempt): an edge daemon running both must not
  // retry its origin and its local reload in phase.
  const std::uint64_t z = mix(seed ^ 0x7265706c2e726571ULL,  // "repl.req"
                              static_cast<std::uint64_t>(attempt));
  const std::uint64_t jittered = base * (750 + z % 501) / 1000;
  return std::chrono::milliseconds(std::clamp<std::uint64_t>(jittered, 1, cap));
}

std::chrono::milliseconds heartbeat_interval(std::chrono::milliseconds base,
                                             std::uint64_t seed,
                                             std::uint64_t tick) noexcept {
  if (base.count() <= 0) base = std::chrono::milliseconds(1);
  const std::uint64_t z = mix(seed ^ 0x7265706c2e626561ULL,  // "repl.bea"
                              tick);
  // [0.80, 1.20]·base, never below 1ms.
  const std::uint64_t b = static_cast<std::uint64_t>(base.count());
  const std::uint64_t jittered = b * (800 + z % 401) / 1000;
  return std::chrono::milliseconds(std::max<std::uint64_t>(jittered, 1));
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return std::string(buf, 16);
}

std::optional<std::uint64_t> parse_hex64(std::string_view text) noexcept {
  if (text.size() != 16) return std::nullopt;
  std::uint64_t v = 0;
  for (char c : text) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return std::nullopt;
    }
  }
  return v;
}

std::string render_info(const GenerationInfo& info) {
  std::string out;
  out.reserve(160);
  out += "gen: " + std::to_string(info.gen) + "\n";
  out += "build-id: " + std::to_string(info.build_id) + "\n";
  out += "checksum: " + hex64(info.checksum) + "\n";
  out += "digest: " + hex64(info.digest) + "\n";
  out += "size: " + std::to_string(info.size) + "\n";
  out += "chunk-bytes: " + std::to_string(info.chunk_bytes) + "\n";
  return out;
}

namespace {

std::optional<std::uint64_t> parse_dec(std::string_view text) noexcept {
  if (text.empty() || text.size() > 20) return std::nullopt;
  std::uint64_t v = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    const std::uint64_t d = static_cast<std::uint64_t>(c - '0');
    if (v > (UINT64_MAX - d) / 10) return std::nullopt;
    v = v * 10 + d;
  }
  return v;
}

}  // namespace

std::optional<GenerationInfo> parse_info(std::string_view payload) {
  GenerationInfo info;
  // Bitmask of the six required fields; a duplicate key or any parse
  // failure aborts — a garbled announcement must never start a transfer.
  unsigned seen = 0;
  std::size_t pos = 0;
  while (pos < payload.size()) {
    std::size_t eol = payload.find('\n', pos);
    if (eol == std::string_view::npos) eol = payload.size();
    const std::string_view line = payload.substr(pos, eol - pos);
    pos = eol + 1;
    const std::size_t colon = line.find(": ");
    if (colon == std::string_view::npos) continue;
    const std::string_view key = line.substr(0, colon);
    const std::string_view value = line.substr(colon + 2);
    std::optional<std::uint64_t> parsed;
    unsigned bit = 0;
    if (key == "gen") {
      bit = 1u << 0;
      parsed = parse_dec(value);
      if (parsed) info.gen = *parsed;
    } else if (key == "build-id") {
      bit = 1u << 1;
      parsed = parse_dec(value);
      if (parsed) info.build_id = *parsed;
    } else if (key == "checksum") {
      bit = 1u << 2;
      parsed = parse_hex64(value);
      if (parsed) info.checksum = *parsed;
    } else if (key == "digest") {
      bit = 1u << 3;
      parsed = parse_hex64(value);
      if (parsed) info.digest = *parsed;
    } else if (key == "size") {
      bit = 1u << 4;
      parsed = parse_dec(value);
      if (parsed) info.size = *parsed;
    } else if (key == "chunk-bytes") {
      bit = 1u << 5;
      parsed = parse_dec(value);
      if (parsed) info.chunk_bytes = *parsed;
    } else {
      continue;  // unknown keys are forward-compatible noise
    }
    if (!parsed || (seen & bit) != 0) return std::nullopt;
    seen |= bit;
  }
  if (seen != 0x3f) return std::nullopt;
  if (info.gen == 0 || info.size == 0 || info.chunk_bytes == 0) return std::nullopt;
  return info;
}

std::string render_digest(const MetricDigest& digest) {
  std::string out;
  out.reserve(96 + digest.latency_buckets.size() * 8);
  out += "v1";
  out += ";qt=" + std::to_string(digest.queries_total);
  out += ";ch=" + std::to_string(digest.cache_hits);
  out += ";cm=" + std::to_string(digest.cache_misses);
  out += ";rd=" + std::to_string(digest.recorder_drops);
  out += ";hb=" + std::to_string(digest.heartbeat_ms);
  out += ";lc=" + std::to_string(digest.latency_count);
  out += ";ls=" + std::to_string(digest.latency_sum_micros);
  out += ";lb=";
  for (std::size_t i = 0; i < digest.latency_buckets.size(); ++i) {
    if (i != 0) out += ':';
    out += std::to_string(digest.latency_buckets[i]);
  }
  return out;
}

std::optional<MetricDigest> parse_digest(std::string_view token) {
  if (token.substr(0, 2) != "v1") return std::nullopt;
  if (token.size() > 2 && token[2] != ';') return std::nullopt;
  MetricDigest digest;
  unsigned seen = 0;
  std::size_t pos = token.size() > 2 ? 3 : token.size();
  while (pos < token.size()) {
    std::size_t sep = token.find(';', pos);
    if (sep == std::string_view::npos) sep = token.size();
    const std::string_view field = token.substr(pos, sep - pos);
    pos = sep + 1;
    const std::size_t eq = field.find('=');
    if (eq == std::string_view::npos) return std::nullopt;
    const std::string_view key = field.substr(0, eq);
    const std::string_view value = field.substr(eq + 1);
    std::uint64_t* slot = nullptr;
    unsigned bit = 0;
    if (key == "qt") {
      slot = &digest.queries_total;
      bit = 1u << 0;
    } else if (key == "ch") {
      slot = &digest.cache_hits;
      bit = 1u << 1;
    } else if (key == "cm") {
      slot = &digest.cache_misses;
      bit = 1u << 2;
    } else if (key == "rd") {
      slot = &digest.recorder_drops;
      bit = 1u << 3;
    } else if (key == "hb") {
      slot = &digest.heartbeat_ms;
      bit = 1u << 4;
    } else if (key == "lc") {
      slot = &digest.latency_count;
      bit = 1u << 5;
    } else if (key == "ls") {
      slot = &digest.latency_sum_micros;
      bit = 1u << 6;
    } else if (key == "lb") {
      bit = 1u << 7;
      if ((seen & bit) != 0) return std::nullopt;
      seen |= bit;
      std::size_t bpos = 0;
      while (bpos <= value.size() && !value.empty()) {
        std::size_t bsep = value.find(':', bpos);
        if (bsep == std::string_view::npos) bsep = value.size();
        const auto count = parse_dec(value.substr(bpos, bsep - bpos));
        if (!count) return std::nullopt;
        digest.latency_buckets.push_back(*count);
        bpos = bsep + 1;
        if (bsep == value.size()) break;
      }
      continue;
    } else {
      continue;  // unknown keys are forward-compatible noise
    }
    if ((seen & bit) != 0) return std::nullopt;  // duplicate key
    const auto parsed = parse_dec(value);
    if (!parsed) return std::nullopt;
    *slot = *parsed;
    seen |= bit;
  }
  // Every numeric field is required; `lb` may be absent (an edge whose
  // histogram layout the origin cannot merge may omit the buckets).
  if ((seen & 0x7f) != 0x7f) return std::nullopt;
  return digest;
}

}  // namespace rpslyzer::repl
