#include "rpslyzer/repl/publisher.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>

#include "rpslyzer/compile/snapshot.hpp"
#include "rpslyzer/obs/log.hpp"
#include "rpslyzer/obs/metrics.hpp"
#include "rpslyzer/obs/trace.hpp"
#include "rpslyzer/persist/snapshot_io.hpp"
#include "rpslyzer/query/query.hpp"
#include "rpslyzer/server/stats.hpp"

namespace rpslyzer::repl {

namespace {

obs::Counter& publishes_total() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "rpslyzer_repl_publishes_total",
      "Snapshot generations published by the origin (content changes only)");
  return c;
}

obs::Counter& chunks_served_total() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "rpslyzer_repl_chunks_served_total", "Replication chunks served to edges");
  return c;
}

obs::Counter& bytes_served_total() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "rpslyzer_repl_bytes_served_total", "Replication payload bytes served to edges");
  return c;
}

obs::Counter& beats_received_total() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "rpslyzer_repl_beats_received_total", "Edge heartbeats received by the origin");
  return c;
}

/// Split on single spaces; empty fields collapse (the verbs are
/// origin-generated or edge-generated, never human-typed, but a stray
/// double space should not turn into an empty edge id).
std::vector<std::string_view> split_fields(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    while (pos < s.size() && s[pos] == ' ') ++pos;
    std::size_t end = pos;
    while (end < s.size() && s[end] != ' ') ++end;
    if (end > pos) out.push_back(s.substr(pos, end - pos));
    pos = end;
  }
  return out;
}

std::optional<std::uint64_t> to_u64(std::string_view s) {
  if (s.empty() || s.size() > 20) return std::nullopt;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    const std::uint64_t d = static_cast<std::uint64_t>(c - '0');
    if (v > (UINT64_MAX - d) / 10) return std::nullopt;
    v = v * 10 + d;
  }
  return v;
}

/// Staleness threshold for one edge: four heartbeat periods from its own
/// digest (so a slow-beating fleet is not declared dead by a fast default),
/// 5 s for legacy digest-less beats.
std::chrono::milliseconds stale_after(const EdgeRecord& rec) {
  if (rec.digest && rec.digest->heartbeat_ms > 0) {
    return std::chrono::milliseconds(
        4 * std::max<std::uint64_t>(rec.digest->heartbeat_ms, 250));
  }
  return std::chrono::milliseconds(5000);
}

/// Prometheus label-value escaping (backslash, quote, newline), local copy
/// of what obs::to_prometheus does for registry-rendered labels — edge ids
/// arrive off the wire and must not be able to break the exposition.
std::string escape_label(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\' || c == '"') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

std::string format_bound(double bound) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", bound);
  return buf;
}

}  // namespace

Publisher::Publisher(std::size_t chunk_bytes)
    : latency_bounds_(server::ServerStats::default_latency_bounds()),
      chunk_bytes_(std::max<std::size_t>(chunk_bytes, 4096)) {}

void Publisher::set_latency_bounds(std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  latency_bounds_ = std::move(bounds);
}

std::uint64_t Publisher::publish(const compile::CompiledPolicySnapshot& snap) {
  obs::Span span("repl.publish");
  persist::ArenaWriter writer;
  persist::SnapshotCodec::write(snap, writer);
  auto image = std::make_shared<std::vector<std::byte>>(writer.build_image(snap.build_id()));

  // Content identity: the header-internal checksum excludes the fixed
  // header (and with it the per-process build_id), so a reload that
  // recompiled identical dumps produces the same checksum and is a no-op
  // for the fleet.
  std::uint64_t checksum = 0;
  std::memcpy(&checksum, image->data() + persist::kChecksumOffset, sizeof(checksum));
  const std::uint64_t digest = persist::digest64(std::span<const std::byte>(*image));

  std::lock_guard<std::mutex> lock(mu_);
  if (info_.gen != 0 && info_.checksum == checksum && info_.size == image->size()) {
    return info_.gen;  // same content: keep the generation, drop the copy
  }
  info_.gen += 1;
  info_.build_id = snap.build_id();
  info_.checksum = checksum;
  info_.digest = digest;
  info_.size = image->size();
  info_.chunk_bytes = chunk_bytes_;
  image_ = std::move(image);
  publishes_total().inc();
  obs::log_info("repl", "generation published",
                {{"gen", info_.gen},
                 {"build_id", info_.build_id},
                 {"bytes", info_.size},
                 {"checksum", hex64(checksum)}});
  return info_.gen;
}

std::string Publisher::handle(std::string_view body) {
  if (body.empty()) return query::frame_response(status_payload());
  if (body == ".info") return handle_info();
  if (body.substr(0, 7) == ".fetch ") return handle_fetch(body.substr(7));
  if (body.substr(0, 6) == ".beat ") return handle_beat(body.substr(6));
  return "F unknown repl verb\n";
}

GenerationInfo Publisher::current_info() const {
  std::lock_guard<std::mutex> lock(mu_);
  return info_;
}

std::string Publisher::handle_info() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (info_.gen == 0) return "D\n";
  return query::frame_response(render_info(info_));
}

std::string Publisher::handle_fetch(std::string_view args) {
  const std::vector<std::string_view> fields = split_fields(args);
  if (fields.size() != 3) return "F fetch expects <gen> <offset> <length>\n";
  const auto gen = to_u64(fields[0]);
  const auto off = to_u64(fields[1]);
  const auto len = to_u64(fields[2]);
  if (!gen || !off || !len) return "F fetch expects numeric <gen> <offset> <length>\n";

  std::shared_ptr<const std::vector<std::byte>> image;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (info_.gen == 0) return "F nothing published yet\n";
    if (*gen != info_.gen) {
      return "F generation " + std::to_string(*gen) + " is not current\n";
    }
    image = image_;
  }
  if (*off >= image->size() || *len == 0 || *len > chunk_bytes_ ||
      *len > image->size() - *off) {
    return "F bad range\n";
  }
  // Binary chunk: frame by hand. frame_response would append a newline to
  // the payload, corrupting the byte count an edge reassembles by.
  std::string out;
  out.reserve(*len + 32);
  out += "A" + std::to_string(*len) + "\n";
  out.append(reinterpret_cast<const char*>(image->data() + *off), *len);
  out += "C\n";
  chunks_served_total().inc();
  bytes_served_total().inc(*len);
  return out;
}

std::string Publisher::handle_beat(std::string_view args) {
  const std::vector<std::string_view> fields = split_fields(args);
  if (fields.size() != 4 && fields.size() != 5) {
    return "F beat expects <id> <gen> <health> <qps> [digest]\n";
  }
  const auto gen = to_u64(fields[1]);
  if (!gen) return "F beat expects a numeric generation\n";
  const std::string qps_text(fields[3]);
  char* end = nullptr;
  const double qps = std::strtod(qps_text.c_str(), &end);
  if (end == qps_text.c_str() || *end != '\0' || qps < 0) {
    return "F beat expects a numeric qps\n";
  }
  std::optional<MetricDigest> digest;
  if (fields.size() == 5) {
    digest = parse_digest(fields[4]);
    if (!digest) return "F beat digest is malformed\n";
  }

  std::lock_guard<std::mutex> lock(mu_);
  EdgeRecord& rec = edges_[std::string(fields[0])];
  rec.gen = *gen;
  rec.health = std::string(fields[2]);
  rec.qps = qps;
  rec.last_seen = std::chrono::steady_clock::now();
  // A legacy beat after a digest-bearing one keeps the old digest: losing
  // the counters because one beat was minimal would dent fleet totals.
  if (digest) rec.digest = std::move(digest);
  beats_received_total().inc();
  return "C\n";
}

std::string Publisher::status_payload() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "role: origin\n";
  out += "gen: " + std::to_string(info_.gen) + "\n";
  if (info_.gen != 0) {
    out += "checksum: " + hex64(info_.checksum) + "\n";
    out += "size: " + std::to_string(info_.size) + "\n";
  }
  out += "edges: " + std::to_string(edges_.size()) + "\n";
  const auto now = std::chrono::steady_clock::now();
  for (const auto& [id, rec] : edges_) {
    const auto age =
        std::chrono::duration_cast<std::chrono::milliseconds>(now - rec.last_seen);
    char line[256];
    std::snprintf(line, sizeof(line), "edge: %s gen=%llu health=%s qps=%.1f age-ms=%lld\n",
                  id.c_str(), static_cast<unsigned long long>(rec.gen), rec.health.c_str(),
                  rec.qps, static_cast<long long>(age.count()));
    out += line;
  }
  return out;
}

std::string Publisher::stats_line() const {
  std::lock_guard<std::mutex> lock(mu_);
  return "repl: role=origin gen=" + std::to_string(info_.gen) +
         " edges=" + std::to_string(edges_.size());
}

// ---------------------------------------------------------------------------
// Fleet aggregation (`!fleet` and the merged Prometheus exposition)
// ---------------------------------------------------------------------------

/// One locked pass over the edge table: per-edge rows with staleness
/// resolved, plus merged totals and a merged latency histogram over the
/// non-stale digest-bearing edges. Both renderers consume this so the text
/// page and the Prometheus page can never disagree about who is stale.
struct Publisher::FleetView {
  struct Row {
    std::string id;
    EdgeRecord rec;
    std::int64_t age_ms = 0;
    bool stale = false;
    std::uint64_t p99_us = 0;  // this edge's own digest histogram
  };
  std::vector<Row> rows;  // map order: sorted by edge id, deterministic
  std::size_t stale_count = 0;
  std::uint64_t origin_gen = 0;
  // Merged over non-stale edges with a digest:
  std::uint64_t queries = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t drops = 0;
  double qps = 0.0;
  obs::Histogram::Snapshot merged;  // layout-matching edges only
  std::vector<double> bounds;
};

Publisher::FleetView Publisher::fleet_view() const {
  FleetView view;
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  view.origin_gen = info_.gen;
  view.bounds = latency_bounds_;
  view.merged.buckets.assign(view.bounds.size() + 1, 0);
  for (const auto& [id, rec] : edges_) {
    FleetView::Row row;
    row.id = id;
    row.rec = rec;
    row.age_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(now - rec.last_seen)
            .count();
    row.stale = now - rec.last_seen >= stale_after(rec);
    if (rec.digest &&
        rec.digest->latency_buckets.size() == view.bounds.size() + 1) {
      obs::Histogram::Snapshot own;
      own.buckets = rec.digest->latency_buckets;
      own.count = rec.digest->latency_count;
      row.p99_us = static_cast<std::uint64_t>(
          own.percentile(99, view.bounds) * 1e6 + 0.5);
    }
    if (row.stale) {
      ++view.stale_count;
    } else if (rec.digest) {
      view.queries += rec.digest->queries_total;
      view.hits += rec.digest->cache_hits;
      view.misses += rec.digest->cache_misses;
      view.drops += rec.digest->recorder_drops;
      view.qps += rec.qps;
      if (rec.digest->latency_buckets.size() == view.merged.buckets.size()) {
        for (std::size_t i = 0; i < view.merged.buckets.size(); ++i) {
          view.merged.buckets[i] += rec.digest->latency_buckets[i];
        }
        view.merged.count += rec.digest->latency_count;
        view.merged.sum +=
            static_cast<double>(rec.digest->latency_sum_micros) / 1e6;
      }
    }
    view.rows.push_back(std::move(row));
  }
  return view;
}

std::string Publisher::fleet_payload() const {
  const FleetView view = fleet_view();
  std::string out;
  out.reserve(256 + view.rows.size() * 160);
  out += "role: origin\n";
  out += "gen: " + std::to_string(view.origin_gen) + "\n";
  out += "edges: " + std::to_string(view.rows.size()) +
         " stale=" + std::to_string(view.stale_count) + "\n";
  // `lookups` and `evaluations` are derived, not separately summed, so the
  // identity lookups == hits + evaluations holds in every rendered page —
  // it is what the chaos harness reconciles against per-edge `!stats`.
  char line[320];
  std::snprintf(line, sizeof(line),
                "totals: queries=%llu lookups=%llu hits=%llu evaluations=%llu "
                "recorder-drops=%llu\n",
                static_cast<unsigned long long>(view.queries),
                static_cast<unsigned long long>(view.hits + view.misses),
                static_cast<unsigned long long>(view.hits),
                static_cast<unsigned long long>(view.misses),
                static_cast<unsigned long long>(view.drops));
  out += line;
  const std::uint64_t p50_us = static_cast<std::uint64_t>(
      view.merged.percentile(50, view.bounds) * 1e6 + 0.5);
  const std::uint64_t p99_us = static_cast<std::uint64_t>(
      view.merged.percentile(99, view.bounds) * 1e6 + 0.5);
  std::snprintf(line, sizeof(line),
                "fleet: qps=%.1f p50-us=%llu p99-us=%llu samples=%llu\n", view.qps,
                static_cast<unsigned long long>(p50_us),
                static_cast<unsigned long long>(p99_us),
                static_cast<unsigned long long>(view.merged.count));
  out += line;
  for (const FleetView::Row& row : view.rows) {
    const MetricDigest* d = row.rec.digest ? &*row.rec.digest : nullptr;
    std::snprintf(line, sizeof(line),
                  "edge: %s gen=%llu health=%s qps=%.1f queries=%llu hits=%llu "
                  "evaluations=%llu p99-us=%llu recorder-drops=%llu age-ms=%lld "
                  "stale=%d\n",
                  row.id.c_str(), static_cast<unsigned long long>(row.rec.gen),
                  row.rec.health.c_str(), row.rec.qps,
                  static_cast<unsigned long long>(d ? d->queries_total : 0),
                  static_cast<unsigned long long>(d ? d->cache_hits : 0),
                  static_cast<unsigned long long>(d ? d->cache_misses : 0),
                  static_cast<unsigned long long>(row.p99_us),
                  static_cast<unsigned long long>(d ? d->recorder_drops : 0),
                  static_cast<long long>(row.age_ms), row.stale ? 1 : 0);
    out += line;
  }
  return out;
}

std::string Publisher::fleet_prometheus() const {
  const FleetView view = fleet_view();
  std::string out;
  out.reserve(512 + view.rows.size() * 512);
  const auto emit_family = [&](const char* name, const char* help,
                               const char* type, auto&& per_edge) {
    out += "# HELP ";
    out += name;
    out += ' ';
    out += help;
    out += "\n# TYPE ";
    out += name;
    out += ' ';
    out += type;
    out += '\n';
    for (const FleetView::Row& row : view.rows) {
      out += name;
      out += "{edge=\"" + escape_label(row.id) + "\"} ";
      out += per_edge(row);
      out += '\n';
    }
  };
  const auto u64 = [](std::uint64_t v) { return std::to_string(v); };

  out += "# HELP rpslyzer_fleet_edges Edges known to this origin\n";
  out += "# TYPE rpslyzer_fleet_edges gauge\n";
  out += "rpslyzer_fleet_edges " + std::to_string(view.rows.size()) + "\n";
  out += "# HELP rpslyzer_fleet_edges_stale Edges whose last heartbeat is older "
         "than four heartbeat periods\n";
  out += "# TYPE rpslyzer_fleet_edges_stale gauge\n";
  out += "rpslyzer_fleet_edges_stale " + std::to_string(view.stale_count) + "\n";
  emit_family("rpslyzer_fleet_queries_total",
              "Cumulative queries reported by each edge's heartbeat digest",
              "counter", [&](const FleetView::Row& r) {
                return u64(r.rec.digest ? r.rec.digest->queries_total : 0);
              });
  emit_family("rpslyzer_fleet_cache_hits_total",
              "Response-cache hits reported by each edge", "counter",
              [&](const FleetView::Row& r) {
                return u64(r.rec.digest ? r.rec.digest->cache_hits : 0);
              });
  emit_family("rpslyzer_fleet_cache_misses_total",
              "Response-cache misses (= evaluations) reported by each edge",
              "counter", [&](const FleetView::Row& r) {
                return u64(r.rec.digest ? r.rec.digest->cache_misses : 0);
              });
  emit_family("rpslyzer_fleet_recorder_dropped_total",
              "Flight-recorder ring overwrites reported by each edge", "counter",
              [&](const FleetView::Row& r) {
                return u64(r.rec.digest ? r.rec.digest->recorder_drops : 0);
              });
  emit_family("rpslyzer_fleet_generation",
              "Snapshot generation each edge reports serving", "gauge",
              [&](const FleetView::Row& r) { return u64(r.rec.gen); });
  emit_family("rpslyzer_fleet_qps",
              "Query rate each edge reported in its last heartbeat", "gauge",
              [&](const FleetView::Row& r) {
                char buf[32];
                std::snprintf(buf, sizeof(buf), "%.1f", r.rec.qps);
                return std::string(buf);
              });
  emit_family("rpslyzer_fleet_stale",
              "1 when the edge's last heartbeat is past its staleness threshold",
              "gauge",
              [&](const FleetView::Row& r) { return u64(r.stale ? 1 : 0); });

  // Merged fleet latency histogram (non-stale, layout-matching edges).
  out += "# HELP rpslyzer_fleet_latency_seconds Query latency merged across "
         "non-stale edges\n";
  out += "# TYPE rpslyzer_fleet_latency_seconds histogram\n";
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < view.bounds.size(); ++i) {
    cumulative += view.merged.buckets[i];
    out += "rpslyzer_fleet_latency_seconds_bucket{le=\"" +
           format_bound(view.bounds[i]) + "\"} " + std::to_string(cumulative) +
           "\n";
  }
  out += "rpslyzer_fleet_latency_seconds_bucket{le=\"+Inf\"} " +
         std::to_string(view.merged.count) + "\n";
  char sum_line[64];
  std::snprintf(sum_line, sizeof(sum_line), "%.6f", view.merged.sum);
  out += "rpslyzer_fleet_latency_seconds_sum " + std::string(sum_line) + "\n";
  out += "rpslyzer_fleet_latency_seconds_count " +
         std::to_string(view.merged.count) + "\n";
  return out;
}

}  // namespace rpslyzer::repl
