#include "rpslyzer/repl/publisher.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>

#include "rpslyzer/compile/snapshot.hpp"
#include "rpslyzer/obs/log.hpp"
#include "rpslyzer/obs/metrics.hpp"
#include "rpslyzer/obs/trace.hpp"
#include "rpslyzer/persist/snapshot_io.hpp"
#include "rpslyzer/query/query.hpp"

namespace rpslyzer::repl {

namespace {

obs::Counter& publishes_total() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "rpslyzer_repl_publishes_total",
      "Snapshot generations published by the origin (content changes only)");
  return c;
}

obs::Counter& chunks_served_total() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "rpslyzer_repl_chunks_served_total", "Replication chunks served to edges");
  return c;
}

obs::Counter& bytes_served_total() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "rpslyzer_repl_bytes_served_total", "Replication payload bytes served to edges");
  return c;
}

obs::Counter& beats_received_total() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "rpslyzer_repl_beats_received_total", "Edge heartbeats received by the origin");
  return c;
}

/// Split on single spaces; empty fields collapse (the verbs are
/// origin-generated or edge-generated, never human-typed, but a stray
/// double space should not turn into an empty edge id).
std::vector<std::string_view> split_fields(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    while (pos < s.size() && s[pos] == ' ') ++pos;
    std::size_t end = pos;
    while (end < s.size() && s[end] != ' ') ++end;
    if (end > pos) out.push_back(s.substr(pos, end - pos));
    pos = end;
  }
  return out;
}

std::optional<std::uint64_t> to_u64(std::string_view s) {
  if (s.empty() || s.size() > 20) return std::nullopt;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    const std::uint64_t d = static_cast<std::uint64_t>(c - '0');
    if (v > (UINT64_MAX - d) / 10) return std::nullopt;
    v = v * 10 + d;
  }
  return v;
}

}  // namespace

Publisher::Publisher(std::size_t chunk_bytes)
    : chunk_bytes_(std::max<std::size_t>(chunk_bytes, 4096)) {}

std::uint64_t Publisher::publish(const compile::CompiledPolicySnapshot& snap) {
  obs::Span span("repl.publish");
  persist::ArenaWriter writer;
  persist::SnapshotCodec::write(snap, writer);
  auto image = std::make_shared<std::vector<std::byte>>(writer.build_image(snap.build_id()));

  // Content identity: the header-internal checksum excludes the fixed
  // header (and with it the per-process build_id), so a reload that
  // recompiled identical dumps produces the same checksum and is a no-op
  // for the fleet.
  std::uint64_t checksum = 0;
  std::memcpy(&checksum, image->data() + persist::kChecksumOffset, sizeof(checksum));
  const std::uint64_t digest = persist::digest64(std::span<const std::byte>(*image));

  std::lock_guard<std::mutex> lock(mu_);
  if (info_.gen != 0 && info_.checksum == checksum && info_.size == image->size()) {
    return info_.gen;  // same content: keep the generation, drop the copy
  }
  info_.gen += 1;
  info_.build_id = snap.build_id();
  info_.checksum = checksum;
  info_.digest = digest;
  info_.size = image->size();
  info_.chunk_bytes = chunk_bytes_;
  image_ = std::move(image);
  publishes_total().inc();
  obs::log_info("repl", "generation published",
                {{"gen", info_.gen},
                 {"build_id", info_.build_id},
                 {"bytes", info_.size},
                 {"checksum", hex64(checksum)}});
  return info_.gen;
}

std::string Publisher::handle(std::string_view body) {
  if (body.empty()) return query::frame_response(status_payload());
  if (body == ".info") return handle_info();
  if (body.substr(0, 7) == ".fetch ") return handle_fetch(body.substr(7));
  if (body.substr(0, 6) == ".beat ") return handle_beat(body.substr(6));
  return "F unknown repl verb\n";
}

GenerationInfo Publisher::current_info() const {
  std::lock_guard<std::mutex> lock(mu_);
  return info_;
}

std::string Publisher::handle_info() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (info_.gen == 0) return "D\n";
  return query::frame_response(render_info(info_));
}

std::string Publisher::handle_fetch(std::string_view args) {
  const std::vector<std::string_view> fields = split_fields(args);
  if (fields.size() != 3) return "F fetch expects <gen> <offset> <length>\n";
  const auto gen = to_u64(fields[0]);
  const auto off = to_u64(fields[1]);
  const auto len = to_u64(fields[2]);
  if (!gen || !off || !len) return "F fetch expects numeric <gen> <offset> <length>\n";

  std::shared_ptr<const std::vector<std::byte>> image;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (info_.gen == 0) return "F nothing published yet\n";
    if (*gen != info_.gen) {
      return "F generation " + std::to_string(*gen) + " is not current\n";
    }
    image = image_;
  }
  if (*off >= image->size() || *len == 0 || *len > chunk_bytes_ ||
      *len > image->size() - *off) {
    return "F bad range\n";
  }
  // Binary chunk: frame by hand. frame_response would append a newline to
  // the payload, corrupting the byte count an edge reassembles by.
  std::string out;
  out.reserve(*len + 32);
  out += "A" + std::to_string(*len) + "\n";
  out.append(reinterpret_cast<const char*>(image->data() + *off), *len);
  out += "C\n";
  chunks_served_total().inc();
  bytes_served_total().inc(*len);
  return out;
}

std::string Publisher::handle_beat(std::string_view args) {
  const std::vector<std::string_view> fields = split_fields(args);
  if (fields.size() != 4) return "F beat expects <id> <gen> <health> <qps>\n";
  const auto gen = to_u64(fields[1]);
  if (!gen) return "F beat expects a numeric generation\n";
  const std::string qps_text(fields[3]);
  char* end = nullptr;
  const double qps = std::strtod(qps_text.c_str(), &end);
  if (end == qps_text.c_str() || *end != '\0' || qps < 0) {
    return "F beat expects a numeric qps\n";
  }

  std::lock_guard<std::mutex> lock(mu_);
  EdgeRecord& rec = edges_[std::string(fields[0])];
  rec.gen = *gen;
  rec.health = std::string(fields[2]);
  rec.qps = qps;
  rec.last_seen = std::chrono::steady_clock::now();
  beats_received_total().inc();
  return "C\n";
}

std::string Publisher::status_payload() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "role: origin\n";
  out += "gen: " + std::to_string(info_.gen) + "\n";
  if (info_.gen != 0) {
    out += "checksum: " + hex64(info_.checksum) + "\n";
    out += "size: " + std::to_string(info_.size) + "\n";
  }
  out += "edges: " + std::to_string(edges_.size()) + "\n";
  const auto now = std::chrono::steady_clock::now();
  for (const auto& [id, rec] : edges_) {
    const auto age =
        std::chrono::duration_cast<std::chrono::milliseconds>(now - rec.last_seen);
    char line[256];
    std::snprintf(line, sizeof(line), "edge: %s gen=%llu health=%s qps=%.1f age-ms=%lld\n",
                  id.c_str(), static_cast<unsigned long long>(rec.gen), rec.health.c_str(),
                  rec.qps, static_cast<long long>(age.count()));
    out += line;
  }
  return out;
}

std::string Publisher::stats_line() const {
  std::lock_guard<std::mutex> lock(mu_);
  return "repl: role=origin gen=" + std::to_string(info_.gen) +
         " edges=" + std::to_string(edges_.size());
}

}  // namespace rpslyzer::repl
